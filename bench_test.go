package rpls_test

import (
	"fmt"
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/crossing"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/mst"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment (E1–E17); each regenerates its DESIGN.md
// table in quick mode. `go test -bench 'E[0-9]+' -benchtime 1x` reproduces
// the full sweep cheaply.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		table, err := spec.Run(42, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE1Compiler(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2EqualityProtocol(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3Universal(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4LowerBound(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5CrossingDet(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6CrossingRand(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7MST(b *testing.B)               { benchExperiment(b, "E7") }
func BenchmarkE8Biconnectivity(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9CycleAtLeast(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10IteratedCrossing(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11CycleAtMost(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Boosting(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13KFlow(b *testing.B)            { benchExperiment(b, "E13") }
func BenchmarkE14Symmetry(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15SelfStab(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16SharedRandomness(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17STConnectivity(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18LabelShape(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE19WireAccounting(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20RoundTradeoff(b *testing.B)    { benchExperiment(b, "E20") }

// ---------------------------------------------------------------------------
// Operational micro-benchmarks: the costs a deployment would care about.
// ---------------------------------------------------------------------------

// BenchmarkFingerprint measures one Lemma A.1 certificate generation as a
// function of the fingerprinted string length.
func BenchmarkFingerprint(b *testing.B) {
	for _, lambda := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("lambda=%d", lambda), func(b *testing.B) {
			rng := prng.New(1)
			bits := make([]byte, lambda)
			for i := range bits {
				bits[i] = rng.Bit()
			}
			s := bitstring.FromBits(bits)
			p := field.PrimeForLength(lambda)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fp := field.NewFingerprint(s, p, rng)
				if !fp.Matches(s) {
					b.Fatal("self-mismatch")
				}
			}
		})
	}
}

// BenchmarkVerificationRound measures a full distributed verification round
// (goroutine per node) for the two MST schemes — the paper's headline
// predicate — across network sizes.
func BenchmarkVerificationRound(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		cfg, err := experiments.BuildMSTConfig(n, uint64(n))
		if err != nil {
			b.Fatal(err)
		}
		det := mst.NewPLS()
		detLabels, err := det.Label(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rand := mst.NewRPLS()
		randLabels, err := rand.Label(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("det/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !engine.Verify(engine.FromPLS(det), cfg, detLabels).Accepted {
					b.Fatal("rejected")
				}
			}
			b.ReportMetric(float64(core.MaxBits(detLabels)), "labelbits")
		})
		b.Run(fmt.Sprintf("rand/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !engine.Verify(engine.FromRPLS(rand), cfg, randLabels, engine.WithSeed(uint64(i))).Accepted {
					b.Fatal("rejected")
				}
			}
			b.ReportMetric(float64(engine.MaxCertBits(engine.FromRPLS(rand), cfg, randLabels, 1, 1)), "certbits")
		})
	}
}

// BenchmarkProver measures certificate construction (the prover side) for
// the heaviest scheme, the Borůvka hierarchy.
func BenchmarkProver(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		cfg, err := experiments.BuildMSTConfig(n, uint64(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("mst/n=%d", n), func(b *testing.B) {
			det := mst.NewPLS()
			for i := 0; i < b.N; i++ {
				if _, err := det.Label(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossingAttack measures the full Proposition 4.3 pipeline:
// prove, collide, cross, re-verify.
func BenchmarkCrossingAttack(b *testing.B) {
	cfg := graph.NewConfig(graph.Path(210))
	gadgets := crossing.PathGadgets(210)
	s := crossing.ModularDistPLS{Bits: 3}
	for i := 0; i < b.N; i++ {
		atk, err := crossing.AttackPLS(s, acyclicity.Predicate{}, cfg, gadgets)
		if err != nil {
			b.Fatal(err)
		}
		if !atk.Fooled {
			b.Fatal("attack failed")
		}
	}
}

// ---------------------------------------------------------------------------
// Engine executor benchmarks: the hot verification path across backends.
// Sequential and Pool are expected to beat Goroutines from n = 1024 up —
// the goroutine-per-node model pays per-edge channels and n goroutines per
// round, which is exactly what the engine redesign amortizes away.
// ---------------------------------------------------------------------------

func engineExecutors() []engine.Executor {
	return []engine.Executor{
		engine.NewSequential(),
		engine.NewPool(0),
		engine.NewGoroutines(),
		engine.NewBatched(),
	}
}

// BenchmarkEngineExecutorsRand measures one randomized round (fingerprints
// of a 32-byte payload) per executor across network sizes.
func BenchmarkEngineExecutorsRand(b *testing.B) {
	s := engine.FromRPLS(uniform.NewRPLS())
	for _, n := range []int{256, 1024, 4096} {
		cfg := experiments.BuildUniformConfig(n, 32, uint64(n))
		labels, err := s.Label(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ex := range engineExecutors() {
			b.Run(fmt.Sprintf("%s/n=%d", ex.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !engine.Verify(s, cfg, labels, engine.WithSeed(uint64(i)), engine.WithExecutor(ex)).Accepted {
						b.Fatal("rejected")
					}
				}
			})
		}
	}
}

// BenchmarkEngineExecutorsDet measures one deterministic round (labels on
// every port, no certificate generation) per executor across sizes.
func BenchmarkEngineExecutorsDet(b *testing.B) {
	s := engine.FromPLS(spanningtree.NewPLS())
	for _, n := range []int{256, 1024, 4096} {
		cfg := experiments.BuildTreeConfig(n, uint64(n))
		labels, err := s.Label(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ex := range engineExecutors() {
			b.Run(fmt.Sprintf("%s/n=%d", ex.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !engine.Verify(s, cfg, labels, engine.WithExecutor(ex)).Accepted {
						b.Fatal("rejected")
					}
				}
			})
		}
	}
}

// BenchmarkEngineEstimate measures the Monte-Carlo estimator end to end —
// the workload self-stabilization monitors and experiment sweeps run.
func BenchmarkEngineEstimate(b *testing.B) {
	s := engine.FromRPLS(spanningtree.NewRPLS())
	cfg := experiments.BuildTreeConfig(1024, 3)
	labels, err := s.Label(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
			engine.WithTrials(10), engine.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if sum.Acceptance != 1.0 {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkEstimateParallel measures the trial-parallel Monte-Carlo
// estimator across worker counts on a large instance. The Summary is
// bit-identical at every level (the determinism property test enforces it),
// so the only question is wall-clock: p=8 is expected to land >= 3x over
// p=1 on an 8-core runner.
func BenchmarkEstimateParallel(b *testing.B) {
	const n, trials = 4096, 256
	s := engine.FromRPLS(uniform.NewRPLS())
	cfg := experiments.BuildUniformConfig(n, 32, uint64(n))
	labels, err := s.Label(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ref engine.Summary
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			exec := engine.NewSequential()
			for i := 0; i < b.N; i++ {
				sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
					engine.WithTrials(trials), engine.WithSeed(7),
					engine.WithExecutor(exec), engine.WithParallelism(p))
				if err != nil {
					b.Fatal(err)
				}
				if sum.Accepted != trials {
					b.Fatalf("rejected: %+v", sum)
				}
				if ref.Trials == 0 {
					ref = sum
				} else if sum != ref {
					b.Fatalf("p=%d summary diverged: %+v != %+v", p, sum, ref)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// BenchmarkAblationRoundExecution compares the goroutine-per-node round to
// the sequential fast path (identical semantics; see runtime).
func BenchmarkAblationRoundExecution(b *testing.B) {
	cfg := experiments.BuildUniformConfig(512, 32, 9)
	s := uniform.NewRPLS()
	labels, err := s.Label(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !engine.Verify(engine.FromRPLS(s), cfg, labels, engine.WithSeed(uint64(i))).Accepted {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if engine.Acceptance(engine.FromRPLS(s), cfg, labels, 1, uint64(i)) != 1.0 {
				b.Fatal("rejected")
			}
		}
	})
}

// BenchmarkAblationBoost measures how certificate size and round cost scale
// with the boosting factor t (footnote 1: linear cost, exponential
// confidence).
func BenchmarkAblationBoost(b *testing.B) {
	cfg := experiments.BuildUniformConfig(128, 32, 11)
	for _, t := range []int{1, 4, 16} {
		s := core.Boost(uniform.NewRPLS(), t)
		labels, err := s.Label(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !engine.Verify(engine.FromRPLS(s), cfg, labels, engine.WithSeed(uint64(i))).Accepted {
					b.Fatal("rejected")
				}
			}
			b.ReportMetric(float64(engine.MaxCertBits(engine.FromRPLS(s), cfg, labels, 1, 2)), "certbits")
		})
	}
}

// BenchmarkAblationFieldSize measures the ε-obliviousness knob: smaller
// target error ⇒ larger field ⇒ marginally larger certificates (§1).
func BenchmarkAblationFieldSize(b *testing.B) {
	rng := prng.New(13)
	bits := make([]byte, 4096)
	for i := range bits {
		bits[i] = rng.Bit()
	}
	s := bitstring.FromBits(bits)
	for _, eps := range []float64{1.0 / 3, 0.01, 0.0001} {
		p := field.PrimeForError(s.Len(), eps)
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fp := field.NewFingerprint(s, p, rng)
				if !fp.Matches(s) {
					b.Fatal("self-mismatch")
				}
			}
			b.ReportMetric(float64(field.Fingerprint{P: p}.Bits()), "certbits")
		})
	}
}
