package core_test

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/uniform"
)

// ExampleCompile demonstrates Theorem 3.1: wrap any deterministic scheme
// and the labels stay local while only logarithmic-size fingerprints cross
// the wire.
func ExampleCompile() {
	// Four nodes replicating the same payload; the deterministic scheme
	// ships the payload itself (64 bits); the compiled scheme ships a
	// fingerprint.
	cfg := graph.NewConfig(graph.Path(4))
	for v := range cfg.States {
		cfg.States[v].Data = []byte("payload!")
	}
	det := uniform.NewPLS()
	rand := core.Compile(det)

	detLabels, _ := det.Label(cfg)
	randLabels, _ := rand.Label(cfg)
	detRes := engine.Verify(engine.FromPLS(det), cfg, detLabels, engine.WithStats(true))
	randRes := engine.Verify(engine.FromRPLS(rand), cfg, randLabels, engine.WithSeed(1), engine.WithStats(true))

	fmt.Println("deterministic accepted:", detRes.Accepted, "- bits on wire per message:", detRes.Stats.MaxLabelBits)
	fmt.Println("randomized accepted:", randRes.Accepted, "- bits on wire per message:", randRes.Stats.MaxCertBits)
	// Output:
	// deterministic accepted: true - bits on wire per message: 64
	// randomized accepted: true - bits on wire per message: 29
}

// ExampleBoost demonstrates footnote 1: error decays exponentially in the
// repetition count while legal instances still always accept.
func ExampleBoost() {
	cfg := graph.NewConfig(graph.Path(2))
	cfg.States[0].Data = []byte{0x00}
	cfg.States[1].Data = []byte{0x40} // illegal: payloads differ

	weak := uniform.NewTruncatedRPLS(2) // per-round escape probability 1/4
	labels := make([]core.Label, 2)
	for _, t := range []int{1, 4} {
		s := core.Boost(weak, t)
		rate := engine.Acceptance(engine.FromRPLS(s), cfg, labels, 4000, 9)
		fmt.Printf("t=%d: illegal acceptance ≈ %.2f\n", t, rate)
	}
	// Output:
	// t=1: illegal acceptance ≈ 0.25
	// t=4: illegal acceptance ≈ 0.00
}
