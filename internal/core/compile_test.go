package core_test

import (
	"strings"
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

func uniformConfig(g *graph.Graph, payload []byte) *graph.Config {
	c := graph.NewConfig(g)
	for v := range c.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		c.States[v].Data = d
	}
	return c
}

func TestCompileName(t *testing.T) {
	s := core.Compile(uniform.NewPLS())
	if !strings.Contains(s.Name(), "compiled") {
		t.Errorf("compiled name = %q", s.Name())
	}
	if !s.OneSided() {
		t.Error("Theorem 3.1 compilation must be one-sided")
	}
}

func TestCompiledCompleteness(t *testing.T) {
	// Legal configurations with honest labels accept with probability 1.
	rng := prng.New(1)
	s := core.Compile(uniform.NewPLS())
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(15)
		c := uniformConfig(graph.RandomConnected(n, rng.Intn(n), rng), []byte("corpus"))
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 50, uint64(trial)); rate != 1.0 {
			t.Fatalf("trial %d: acceptance %v on legal config, want 1.0", trial, rate)
		}
	}
}

func TestCompiledSoundnessOnIllegalConfig(t *testing.T) {
	// Transplant honest labels from a legal twin onto an illegal config.
	// The replicas are then internally consistent, so detection must come
	// from the embedded deterministic verifier — and it is deterministic:
	// acceptance probability must be far below 1/3... in fact 0, because
	// with faithful replicas the deterministic uniform verifier at the
	// deviant node rejects its own label/state mismatch with certainty.
	legal := uniformConfig(graph.Path(6), []byte("main"))
	s := core.Compile(uniform.NewPLS())
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	illegal := legal.Clone()
	illegal.States[3].Data = []byte("evil")
	if rate := engine.Acceptance(engine.FromRPLS(s), illegal, labels, 200, 7); rate != 0 {
		t.Errorf("acceptance = %v on illegal config with transplanted labels", rate)
	}
}

func TestCompiledSoundnessAgainstInconsistentReplicas(t *testing.T) {
	// The adversary lies in the replicas: node 3's replica of node 2's label
	// diverges from what node 2 actually holds. The fingerprint exchange
	// must catch this with probability > 2/3.
	c := uniformConfig(graph.Path(6), []byte("main"))
	det := uniform.NewPLS()
	s := core.Compile(det)
	honest, err := s.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	// Make the configuration illegal at node 2 and craft labels where every
	// node *claims* node 2 still matches: node 2's own sub-label and all its
	// replicas elsewhere assert the original payload. Node 2's label/state
	// check would fail, so the adversary must instead lie to node 2's
	// neighbors about node 2's sub-label — producing replica inconsistency.
	illegal := c.Clone()
	illegal.States[2].Data = []byte("evil")
	labels := make([]core.Label, len(honest))
	copy(labels, honest)
	// Rebuild node 2's composite label so its own sub-label says "evil"
	// (passing its local check) while neighbors keep replicas saying "main".
	evil := bitstring.FromBytes([]byte("evil"))
	main := bitstring.FromBytes([]byte("main"))
	var w bitstring.Writer
	w.WriteGamma(uint64(evil.Len()))
	w.WriteString(evil)
	for i := 0; i < illegal.G.Degree(2); i++ {
		w.WriteGamma(uint64(main.Len()))
		w.WriteString(main)
	}
	labels[2] = w.String()
	rate := engine.Acceptance(engine.FromRPLS(s), illegal, labels, 2000, 11)
	if rate > 1.0/3 {
		t.Errorf("acceptance = %v with inconsistent replicas, want <= 1/3", rate)
	}
	if rate == 0 {
		t.Log("note: fingerprints caught every trial (allowed; bound is 1/3)")
	}
}

func TestCompiledCertificatesAreLogarithmicInKappa(t *testing.T) {
	// κ = payload bits; compiled certificates must grow like O(log κ).
	s := core.Compile(uniform.NewPLS())
	type row struct{ kappa, bits int }
	var rows []row
	for _, kBytes := range []int{1, 4, 32, 256, 2048} {
		c := uniformConfig(graph.Path(4), make([]byte, kBytes))
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		bits := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 3, 5)
		rows = append(rows, row{kappa: kBytes * 8, bits: bits})
	}
	for _, r := range rows {
		if r.bits > 6*log2ceil(r.kappa)+20 {
			t.Errorf("κ=%d: certificate %d bits, exceeds O(log κ) envelope", r.kappa, r.bits)
		}
	}
	// Exponential κ growth must produce ~linear certificate growth.
	if rows[len(rows)-1].bits > rows[0].bits+60 {
		t.Errorf("certificates grew too fast: %v", rows)
	}
}

func TestCompiledCertBitsPredictsMeasuredCost(t *testing.T) {
	// CompiledCertBits is the analytic wire cost: for equal-length inner
	// labels it must match the metered certificate size bit for bit.
	s := core.Compile(uniform.NewPLS())
	for _, kBytes := range []int{1, 4, 32, 256} {
		kappa := kBytes * 8
		c := uniformConfig(graph.Path(4), make([]byte, kBytes))
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		measured := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 3, 5)
		if want := core.CompiledCertBits(kappa); measured != want {
			t.Errorf("κ=%d: measured %d cert bits, CompiledCertBits predicts %d",
				kappa, measured, want)
		}
	}
	// Monotone in κ, so the max over mixed-length labels is the max-κ cost.
	prev := 0
	for _, kappa := range []int{0, 1, 7, 8, 100, 1000, 100000} {
		b := core.CompiledCertBits(kappa)
		if b < prev {
			t.Errorf("CompiledCertBits not monotone at κ=%d: %d < %d", kappa, b, prev)
		}
		prev = b
	}
}

func TestCompiledRejectsMalformedLabels(t *testing.T) {
	c := uniformConfig(graph.Path(3), []byte("ab"))
	s := core.Compile(uniform.NewPLS())
	view := core.ViewOf(c, 1)
	garbage := bitstring.FromBytes([]byte{0xFF, 0xFF, 0xFF})
	rng := prng.New(9)
	certs := s.Certs(view, garbage, rng)
	if len(certs) != view.Deg {
		t.Fatalf("Certs returned %d certificates for degree %d", len(certs), view.Deg)
	}
	if s.Decide(view, garbage, certs) {
		t.Error("malformed label accepted")
	}
	// Wrong number of received certificates.
	honest, err := s.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Decide(view, honest[1], nil) {
		t.Error("missing certificates accepted")
	}
}

func TestCompiledRejectsLengthLie(t *testing.T) {
	// A certificate claiming a different label length must be rejected even
	// if the fingerprint would match (trailing-zero ambiguity).
	c := uniformConfig(graph.Path(2), []byte{0x00}) // payload 0x00: all-zero bits
	s := core.Compile(uniform.NewPLS())
	labels, err := s.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	view := core.ViewOf(c, 0)
	// Forge a certificate for a 4-bit all-zero label: polynomial identical
	// (zero), but length differs from the true 8 bits.
	var w bitstring.Writer
	w.WriteGamma(4)
	p := field.PrimeForLength(4)
	wWidth := bitstring.UintBits(p - 1)
	w.WriteUint(2%p, wWidth) // x
	w.WriteUint(0, wWidth)   // A(x) = 0 for the zero polynomial
	if s.Decide(view, labels[0], []core.Cert{w.String()}) {
		t.Error("length lie accepted despite matching zero polynomial")
	}
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
