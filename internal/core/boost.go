package core

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Boost implements footnote 1 of the paper: running the verification
// procedure t times independently drives the error probability to 2^−Θ(t),
// so confidence 1−δ costs a factor O(log 1/δ) in certificate size.
//
// For a one-sided scheme the combination rule is conjunction: legal
// configurations still accept with probability 1, and an illegal one
// survives only if every repetition accepts, probability ≤ (1−p_reject)^t.
// For two-sided schemes each node takes the majority of its t outputs.
// Boost(r, 1) returns r unchanged.
func Boost(r RPLS, t int) RPLS {
	if t <= 1 {
		return r
	}
	return &boosted{inner: r, t: t}
}

type boosted struct {
	inner RPLS
	t     int
}

var _ RPLS = (*boosted)(nil)

func (b *boosted) Name() string {
	return fmt.Sprintf("%s×%d", b.inner.Name(), b.t)
}

func (b *boosted) OneSided() bool { return b.inner.OneSided() }

func (b *boosted) Label(c *graph.Config) ([]Label, error) {
	return b.inner.Label(c)
}

// Certs concatenates t independently drawn certificate vectors, each
// sub-certificate framed with a gamma length prefix.
func (b *boosted) Certs(view View, own Label, rng *prng.Rand) []Cert {
	writers := make([]bitstring.Writer, view.Deg)
	for rep := 0; rep < b.t; rep++ {
		certs := b.inner.Certs(view, own, rng.Fork(uint64(rep)))
		for i := 0; i < view.Deg; i++ {
			var c Cert
			if i < len(certs) {
				c = certs[i]
			}
			writers[i].WriteGamma(uint64(c.Len()))
			writers[i].WriteString(c)
		}
	}
	out := make([]Cert, view.Deg)
	for i := range out {
		out[i] = writers[i].String()
	}
	return out
}

func (b *boosted) Decide(view View, own Label, received []Cert) bool {
	if len(received) != view.Deg {
		return false
	}
	readers := make([]*bitstring.Reader, view.Deg)
	for i, c := range received {
		readers[i] = bitstring.NewReader(c)
	}
	accepts := 0
	for rep := 0; rep < b.t; rep++ {
		round := make([]Cert, view.Deg)
		for i := range readers {
			n, err := readers[i].ReadGamma()
			if err != nil {
				return false
			}
			if n > 1<<30 {
				return false
			}
			sub, err := readers[i].ReadString(int(n))
			if err != nil {
				return false
			}
			round[i] = sub
		}
		if b.inner.Decide(view, own, round) {
			accepts++
		} else if b.inner.OneSided() {
			return false // conjunction rule: any rejection kills acceptance
		}
	}
	for i := range readers {
		if readers[i].Remaining() != 0 {
			return false
		}
	}
	if b.inner.OneSided() {
		return true
	}
	return 2*accepts > b.t
}
