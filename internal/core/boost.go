package core

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Boost implements footnote 1 of the paper: running the verification
// procedure t times independently drives the error probability to 2^−Θ(t),
// so confidence 1−δ costs a factor O(log 1/δ) in certificate size.
//
// For a one-sided scheme the combination rule is conjunction: legal
// configurations still accept with probability 1, and an illegal one
// survives only if every repetition accepts, probability ≤ (1−p_reject)^t.
// For two-sided schemes each node takes the majority of its t outputs.
// Boost(r, 1) returns r unchanged.
func Boost(r RPLS, t int) RPLS {
	if t <= 1 {
		return r
	}
	return &boosted{inner: r, t: t}
}

type boosted struct {
	inner RPLS
	t     int
}

var _ RPLS = (*boosted)(nil)

func (b *boosted) Name() string {
	return fmt.Sprintf("%s×%d", b.inner.Name(), b.t)
}

func (b *boosted) OneSided() bool { return b.inner.OneSided() }

func (b *boosted) Label(c *graph.Config) ([]Label, error) {
	return b.inner.Label(c)
}

// Certs concatenates t independently drawn certificate vectors, each
// sub-certificate framed with a gamma length prefix.
func (b *boosted) Certs(view View, own Label, rng *prng.Rand) []Cert {
	writers := make([]bitstring.Writer, view.Deg)
	for rep := 0; rep < b.t; rep++ {
		certs := b.inner.Certs(view, own, rng.Fork(uint64(rep)))
		for i := 0; i < view.Deg; i++ {
			var c Cert
			if i < len(certs) {
				c = certs[i]
			}
			writers[i].WriteGamma(uint64(c.Len()))
			writers[i].WriteString(c)
		}
	}
	out := make([]Cert, view.Deg)
	for i := range out {
		out[i] = writers[i].String()
	}
	return out
}

var _ LaneRPLS = (*boosted)(nil)

// CertsLanes implements LaneRPLS. Each repetition is delegated to the
// inner scheme's lane path with the per-lane rep forks rngs[l].Fork(rep) —
// the exact streams Certs would hand it one lane at a time — so the inner
// scheme amortizes its parsing and evaluation across lanes once per rep
// instead of once per lane × rep. A non-lane inner scheme falls back to
// the one-lane path per lane.
func (b *boosted) CertsLanes(view View, own Label, rngs []*prng.Rand, out [][]Cert) {
	lanes := len(rngs)
	inner, ok := b.inner.(LaneRPLS)
	if !ok {
		for l, rng := range rngs {
			copy(out[l][:view.Deg], b.Certs(view, own, rng))
		}
		return
	}
	deg := view.Deg
	// Pass 1: collect every repetition's certificates. Each rep writes a
	// distinct window of allReps, so the inner scheme's reused-storage
	// contract is honored while all reps stay live for framing.
	allReps := make([]Cert, b.t*lanes*deg)
	repOut := make([][]Cert, lanes)
	repVals := make([]prng.Rand, lanes)
	repRngs := make([]*prng.Rand, lanes)
	for l := range repRngs {
		repRngs[l] = &repVals[l]
	}
	for rep := 0; rep < b.t; rep++ {
		base := rep * lanes * deg
		for l, rng := range rngs {
			repVals[l] = *rng.Fork(uint64(rep))
			repOut[l] = allReps[base+l*deg : base+(l+1)*deg]
		}
		inner.CertsLanes(view, own, repRngs, repOut)
	}
	// Pass 2: frame each (lane, port)'s repetitions — gamma length prefix
	// plus payload, rep-major, the exact wire format of Certs — into one
	// exactly-sized slab shared by the whole call.
	frameBits := func(l, i int) int {
		bits := 0
		for rep := 0; rep < b.t; rep++ {
			c := allReps[rep*lanes*deg+l*deg+i]
			bits += bitstring.GammaBits(uint64(c.Len())) + c.Len()
		}
		return bits
	}
	totalBytes := 0
	for l := 0; l < lanes; l++ {
		for i := 0; i < deg; i++ {
			totalBytes += (frameBits(l, i) + 7) / 8
		}
	}
	slab := make([]byte, totalBytes)
	var w bitstring.Writer
	off := 0
	for l := 0; l < lanes; l++ {
		for i := 0; i < deg; i++ {
			nb := (frameBits(l, i) + 7) / 8
			w.ResetInto(slab[off : off : off+nb])
			for rep := 0; rep < b.t; rep++ {
				c := allReps[rep*lanes*deg+l*deg+i]
				w.WriteGamma(uint64(c.Len()))
				w.WriteString(c)
			}
			out[l][i] = w.TakeString()
			off += nb
		}
	}
}

// DecideLanes implements LaneRPLS: the framed repetitions of every lane
// are unpacked in lockstep and each rep is judged by one inner
// DecideLanes call. A lane that fails to parse votes false; under the
// one-sided conjunction rule a single inner rejection also pins the
// lane's vote to false (parsing continues for the other lanes, which
// cannot change the outcome — Decide would simply have stopped earlier).
func (b *boosted) DecideLanes(view View, own Label, recv [][]Cert) uint64 {
	lanes := len(recv)
	inner, ok := b.inner.(LaneRPLS)
	if !ok {
		var votes uint64
		for l := 0; l < lanes; l++ {
			if b.Decide(view, own, recv[l]) {
				votes |= 1 << uint(l)
			}
		}
		return votes
	}
	deg := view.Deg
	live := LaneMask(lanes) // lanes whose framing has parsed cleanly so far
	// Flat value readers and one sub-certificate slab: a rep's unframed
	// certificate for (lane, port) lands in a fixed window of slab — its
	// size bounds any single rep's share — and is consumed by the inner
	// DecideLanes before the next rep overwrites it.
	readers := make([]bitstring.Reader, lanes*deg)
	roundFlat := make([]Cert, lanes*deg)
	round := make([][]Cert, lanes)
	offs := make([]int, lanes*deg+1)
	for l := 0; l < lanes; l++ {
		round[l] = roundFlat[l*deg : (l+1)*deg]
		if len(recv[l]) != deg {
			live &^= 1 << uint(l)
			for i := 0; i < deg; i++ {
				offs[l*deg+i+1] = offs[l*deg+i]
			}
			continue
		}
		for i, c := range recv[l] {
			readers[l*deg+i].Reset(c)
			offs[l*deg+i+1] = offs[l*deg+i] + (c.Len()+7)/8
		}
	}
	slab := make([]byte, offs[lanes*deg])
	var rejected uint64
	accepts := make([]int, lanes)
	oneSided := b.inner.OneSided()
	for rep := 0; rep < b.t && live != 0; rep++ {
		for l := 0; l < lanes; l++ {
			if live&(1<<uint(l)) == 0 {
				continue
			}
			for i := 0; i < deg; i++ {
				k := l*deg + i
				n, err := readers[k].ReadGamma()
				if err == nil && n <= 1<<30 {
					round[l][i], err = readers[k].ReadStringInto(int(n), slab[offs[k]:offs[k]:offs[k+1]])
				}
				if err != nil || n > 1<<30 {
					live &^= 1 << uint(l)
					for j := range round[l] {
						round[l][j] = Cert{}
					}
					break
				}
			}
		}
		mask := inner.DecideLanes(view, own, round)
		for l := 0; l < lanes; l++ {
			if live&(1<<uint(l)) == 0 {
				continue
			}
			if mask&(1<<uint(l)) != 0 {
				accepts[l]++
			} else if oneSided {
				rejected |= 1 << uint(l)
			}
		}
	}
	var votes uint64
	for l := 0; l < lanes; l++ {
		if live&(1<<uint(l)) == 0 || rejected&(1<<uint(l)) != 0 {
			continue
		}
		clean := true
		for i := 0; i < deg; i++ {
			if readers[l*deg+i].Remaining() != 0 {
				clean = false
				break
			}
		}
		if clean && (oneSided || 2*accepts[l] > b.t) {
			votes |= 1 << uint(l)
		}
	}
	return votes
}

func (b *boosted) Decide(view View, own Label, received []Cert) bool {
	if len(received) != view.Deg {
		return false
	}
	readers := make([]*bitstring.Reader, view.Deg)
	for i, c := range received {
		readers[i] = bitstring.NewReader(c)
	}
	accepts := 0
	for rep := 0; rep < b.t; rep++ {
		round := make([]Cert, view.Deg)
		for i := range readers {
			n, err := readers[i].ReadGamma()
			if err != nil {
				return false
			}
			if n > 1<<30 {
				return false
			}
			sub, err := readers[i].ReadString(int(n))
			if err != nil {
				return false
			}
			round[i] = sub
		}
		if b.inner.Decide(view, own, round) {
			accepts++
		} else if b.inner.OneSided() {
			return false // conjunction rule: any rejection kills acceptance
		}
	}
	for i := range readers {
		if readers[i].Remaining() != 0 {
			return false
		}
	}
	if b.inner.OneSided() {
		return true
	}
	return 2*accepts > b.t
}
