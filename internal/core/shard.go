package core

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Multi-round verification (the t-PLS space–time tradeoff).
//
// The paper's second headline result is that verification time buys proof
// bandwidth: a scheme with verification complexity κ can spread its strings
// over t rounds, sending only ⌈κ/t⌉ bits per port per round (sharpened by
// Patt-Shamir & Perry and nearly resolved by Filtser & Fischer in the t-PLS
// model). ShardCompile and ShardPLS implement the constructive direction of
// that tradeoff: any one-round scheme becomes a t-round scheme by slicing
// each per-port string into t round-shards and folding the reassembled
// strings through the original decision at the end.
//
// The shard layout is fixed and self-describing: for a base string of L
// bits, the shard width is s = ShardWidth(L, t) = ⌈L/t⌉ and round r carries
// bits [r·s, min((r+1)·s, L)). Every shard but possibly the last is exactly
// s bits, rounds past ⌈L/s⌉ carry empty strings (so t > κ is legal and the
// late rounds are free), and concatenating the shards in round order
// reconstructs the base string bit for bit — no padding, no length field.
// The receiver therefore needs no per-round bookkeeping beyond appending
// what arrived, and the final decision is the unmodified base decision.

// MultiRPLS is a t-round proof-labeling scheme: the prover is unchanged,
// but verification spans Rounds() synchronous rounds. In round r every node
// derives one string per port from its label and private coins
// (RoundCerts); after the final round it decides from the per-port
// concatenation, in round order, of everything that arrived on that port.
//
// The coin contract makes RoundCerts stateless: the executor hands every
// round the same freshly re-created stream for the node (the coins of trial
// seed are prng.New(seed).Fork(v) in every round), so an implementation
// re-derives its base certificates identically each round and slices out
// the round's shard. Per-round state therefore lives nowhere — which is
// exactly what keeps t-round execution deterministic across executors and
// parallelism levels.
type MultiRPLS interface {
	Prover
	// Name identifies the scheme in reports.
	Name() string
	// Rounds is the number of verification rounds t >= 1.
	Rounds() int
	// RoundCerts generates the round-r string for every port (index i =
	// port i+1). The rng stream is identical for every round of one trial.
	RoundCerts(round int, view View, own Label, rng *prng.Rand) []Cert
	// Decide is the node's output given, per port, the concatenation of the
	// strings received on that port across all rounds.
	Decide(view View, own Label, received []Cert) bool
	// OneSided reports whether legal, honestly labeled configurations are
	// accepted with probability 1.
	OneSided() bool
}

// CoinFree is implemented by multi-round schemes whose rounds draw no
// coins (a sharded deterministic scheme): one trial measures them exactly.
type CoinFree interface {
	CoinFree() bool
}

// ShardWidth is the per-round shard width for a base string of `bits` bits
// spread over `rounds` rounds: ⌈bits/rounds⌉, and 0 for an empty string.
func ShardWidth(bits, rounds int) int {
	if bits <= 0 || rounds <= 0 {
		return 0
	}
	return (bits + rounds - 1) / rounds
}

// Shard returns round r's slice of the base string under the fixed layout:
// bits [r·s, (r+1)·s) for s = ShardWidth(base.Len(), rounds), clamped to
// the string — empty for rounds past the content.
func Shard(base bitstring.String, round, rounds int) bitstring.String {
	s := ShardWidth(base.Len(), rounds)
	return base.Slice(round*s, (round+1)*s)
}

// checkRounds validates a shard-compilation round count: t = 0 (and any
// negative t) is rejected — a zero-round scheme verifies nothing — while
// t > κ is legal and simply makes the late rounds empty.
func checkRounds(name string, t int) error {
	if t < 1 {
		return fmt.Errorf("core: shard %s into %d rounds: need t >= 1", name, t)
	}
	return nil
}

// ShardCompile turns a one-round randomized scheme into a t-round scheme
// sending ⌈κ/t⌉ bits per port per round. Labels, coins, acceptance, and
// one-sidedness are exactly the base scheme's: round r re-derives the base
// certificates from the (per-round identical) coin stream and sends their
// r-th shards, and the receiver's concatenation reconstructs the base
// certificates bit for bit before the base decision runs.
func ShardCompile(s RPLS, t int) (MultiRPLS, error) {
	if err := checkRounds(s.Name(), t); err != nil {
		return nil, err
	}
	return &shardRPLS{base: s, rounds: t}, nil
}

type shardRPLS struct {
	base   RPLS
	rounds int
}

func (s *shardRPLS) Name() string {
	return fmt.Sprintf("%s+shard%d", s.base.Name(), s.rounds)
}

func (s *shardRPLS) Rounds() int                            { return s.rounds }
func (s *shardRPLS) OneSided() bool                         { return s.base.OneSided() }
func (s *shardRPLS) Label(c *graph.Config) ([]Label, error) { return s.base.Label(c) }
func (s *shardRPLS) RoundCerts(round int, view View, own Label, rng *prng.Rand) []Cert {
	certs := s.base.Certs(view, own, rng)
	out := make([]Cert, view.Deg)
	for i := range out {
		if i < len(certs) {
			out[i] = Shard(certs[i], round, s.rounds)
		}
	}
	return out
}

func (s *shardRPLS) Decide(view View, own Label, received []Cert) bool {
	return s.base.Decide(view, own, received)
}

// ShardPLS turns a deterministic scheme into a t-round scheme: the
// one-round deterministic convention ships the node's label on every port,
// so round r ships the label's r-th shard and the receiver reassembles its
// neighbors' labels before the base Verify runs. The rounds draw no coins
// (CoinFree), so one trial still measures the scheme exactly; the per-port
// cost drops from κ = max label bits to ⌈κ/t⌉ per round.
func ShardPLS(p PLS, t int) (MultiRPLS, error) {
	if err := checkRounds(p.Name(), t); err != nil {
		return nil, err
	}
	return &shardPLS{base: p, rounds: t}, nil
}

type shardPLS struct {
	base   PLS
	rounds int
}

func (s *shardPLS) Name() string {
	return fmt.Sprintf("%s+shard%d", s.base.Name(), s.rounds)
}

func (s *shardPLS) Rounds() int                            { return s.rounds }
func (s *shardPLS) OneSided() bool                         { return true }
func (s *shardPLS) CoinFree() bool                         { return true }
func (s *shardPLS) Label(c *graph.Config) ([]Label, error) { return s.base.Label(c) }

func (s *shardPLS) RoundCerts(round int, view View, own Label, _ *prng.Rand) []Cert {
	shard := Shard(own, round, s.rounds)
	out := make([]Cert, view.Deg)
	for i := range out {
		out[i] = shard
	}
	return out
}

func (s *shardPLS) Decide(view View, own Label, received []Cert) bool {
	return s.base.Verify(view, own, received)
}
