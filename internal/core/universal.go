package core

import (
	"bytes"
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/graph"
)

// UniversalPLS implements the universal scheme of Lemma 3.3 (Appendix B):
// for any sequentially decidable predicate P, the prover hands every node
// the full representation R of the configuration plus the node's own index
// in R; each node checks that
//
//  1. R is well-formed, connected, and satisfies P;
//  2. its own record in R matches its actual state and degree exactly;
//  3. every neighbor carries a bit-identical copy of R, and the neighbor on
//     port i is the node R claims sits across that port.
//
// If every node accepts, the identity-matching makes the map node→index an
// injective local isomorphism into R; since R is connected and degrees
// match, it is onto, so the actual configuration is isomorphic to R and
// satisfies P. Label size is O(min(n², m log n) + nk) bits.
func UniversalPLS(pred Predicate) PLS {
	return &universal{pred: pred}
}

// UniversalRPLS is Corollary 3.4: the compiled universal scheme, with
// certificates of O(log n + log k) bits.
func UniversalRPLS(pred Predicate) RPLS {
	return Compile(UniversalPLS(pred))
}

type universal struct {
	pred Predicate
}

var _ PLS = (*universal)(nil)

func (u *universal) Name() string { return "universal[" + u.pred.Name() + "]" }

func (u *universal) Label(c *graph.Config) ([]Label, error) {
	if !u.pred.Eval(c) {
		return nil, ErrIllegalConfig
	}
	enc := c.Encode()
	out := make([]Label, c.G.N())
	for v := range out {
		var w bitstring.Writer
		w.WriteUint(uint64(v), 32)
		w.WriteString(enc)
		out[v] = w.String()
	}
	return out, nil
}

// parseUniversalLabel splits a label into (index, R-bits, decoded config).
func parseUniversalLabel(l Label) (int, bitstring.String, *graph.Config, error) {
	r := bitstring.NewReader(l)
	idx, err := r.ReadUint(32)
	if err != nil {
		return 0, bitstring.String{}, nil, fmt.Errorf("universal label index: %w", err)
	}
	rep, err := r.ReadString(r.Remaining())
	if err != nil {
		return 0, bitstring.String{}, nil, err
	}
	cfg, err := graph.DecodeConfig(rep)
	if err != nil {
		return 0, bitstring.String{}, nil, fmt.Errorf("universal label config: %w", err)
	}
	return int(idx), rep, cfg, nil
}

func (u *universal) Verify(view View, own Label, nbrs []Label) bool {
	idx, rep, cfg, err := parseUniversalLabel(own)
	if err != nil {
		return false
	}
	if idx >= cfg.G.N() {
		return false
	}
	if !cfg.G.IsConnected() {
		return false
	}
	if !u.pred.Eval(cfg) {
		return false
	}
	// Own record must match reality bit for bit.
	if cfg.G.Degree(idx) != view.Deg {
		return false
	}
	if !statesEqual(cfg.States[idx], view.State) {
		return false
	}
	if len(nbrs) != view.Deg {
		return false
	}
	// Each neighbor must hold the same R and sit where R says it sits.
	for i, nl := range nbrs {
		r := bitstring.NewReader(nl)
		nIdx, err := r.ReadUint(32)
		if err != nil {
			return false
		}
		nRep, err := r.ReadString(r.Remaining())
		if err != nil {
			return false
		}
		if !nRep.Equal(rep) {
			return false
		}
		h := cfg.G.Neighbor(idx, i+1)
		if int(nIdx) != h.To {
			return false
		}
	}
	return true
}

func statesEqual(a, b graph.State) bool {
	if a.ID != b.ID || a.Parent != b.Parent || a.Color != b.Color || a.Flags != b.Flags {
		return false
	}
	if len(a.Weights) != len(b.Weights) {
		return false
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return bytes.Equal(a.Data, b.Data)
}
