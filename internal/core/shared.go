package core

import "rpls/internal/prng"

// SharedRPLS is the shared-randomness variant of an RPLS, one of the open
// models named in the paper's conclusion ("what about the model that allows
// shared randomness between nodes?"). In each verification round every node
// observes one public random string — modeled as an identically seeded coin
// stream handed to every node — in addition to its private coins.
//
// Shared coins change the accounting: with a public evaluation point x, a
// fingerprint certificate needs only the value A(x), not the pair (x, A(x)),
// halving the exchanged bits. They also void Theorem 4.7's edge-independence
// hypothesis — certificates on different edges become correlated by design —
// which is precisely why the paper lists the model as open.
type SharedRPLS interface {
	Prover
	// Name identifies the scheme in reports.
	Name() string
	// CertsShared generates one certificate per port. All nodes receive
	// byte-identical `shared` streams; draws from it must not depend on
	// node identity, or the coins stop being shared. `private` is the
	// node's own stream.
	CertsShared(view View, own Label, shared, private *prng.Rand) []Cert
	// DecideShared is the node's output; `shared` replays the same public
	// stream the certificate generators saw.
	DecideShared(view View, own Label, received []Cert, shared *prng.Rand) bool
	// OneSided reports whether legal configurations are accepted with
	// probability 1.
	OneSided() bool
}

// SharedCoins derives the public stream for a round from the round seed.
// Every participant must construct it identically.
func SharedCoins(roundSeed uint64) *prng.Rand {
	return prng.New(roundSeed).Fork(0xC0157A11ED)
}
