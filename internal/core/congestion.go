package core

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

// Congestion-bounded verification (Patt-Shamir & Perry: broadcast, unicast
// and in between). A message-multiplicity cap m partitions each node's
// ports into at most m classes; within one round, every port of a class
// must carry an identical payload. m = 1 is the broadcast model (one
// message repeated on every port), m >= deg is classic unicast (every port
// independent), and the values in between interpolate. The cap never
// changes what a round IS — one string per port — only how many distinct
// strings a node may mint, so executors, gathering, and wire accounting
// are untouched; the cap acts entirely on the certificate generator.
//
// The class assignment is fixed and global: 0-based port i belongs to
// class PortClass(i, m) = i mod m. Round-robin keeps class sizes balanced
// (every class has ⌈deg/m⌉ or ⌊deg/m⌋ members) and lets a receiver locate
// its edge inside the sender's class without knowing the sender's port
// numbering, because the partition depends only on m.

// PortClass returns the class of 0-based port index i under cap m. Ports
// are partitioned round-robin; m <= 0 means uncapped (every port its own
// class).
func PortClass(i, m int) int {
	if m <= 0 {
		return i
	}
	return i % m
}

// CappedRPLS is the optional degradation interface: a randomized scheme
// that knows how to verify under a multiplicity cap implements it to elect
// or merge per-class payloads itself (e.g. concatenating the class
// members' fields so receivers can check set-membership). CapCerts must
// return one certificate per port, with all ports of one PortClass class
// carrying byte-identical payloads; the engine meters whatever it returns
// and guarantees nothing else.
//
// A native scheme owns both directions of the wire format: its merged
// class messages are generally unreadable by the unicast Decide, so the
// engine routes decisions through CapDecide whenever certificates came
// from CapCerts. The pairing is part of the contract — implement both or
// neither.
type CappedRPLS interface {
	RPLS
	// CapCerts generates the certificates of one round under cap m >= 1.
	// The coin contract is unchanged: rng is the node's per-trial stream,
	// and the coins behind each original port's contribution must be the
	// ones unicast Certs would have drawn (typically rng.Fork(port)), so a
	// capped run at m >= deg carries exactly the unicast fingerprints.
	CapCerts(m int, view View, own Label, rng *prng.Rand) []Cert
	// CapDecide is the decision rule matching CapCerts' wire format:
	// received[i] is the class message minted by the neighbor on port i
	// for whichever of ITS port classes the reverse edge falls in. The
	// receiver does not learn the sender's degree or class sizes; formats
	// must be self-delimiting (see CapMerge).
	CapDecide(m int, view View, own Label, received []Cert) bool
}

// CapMerge is the payload-merging degradation: it concatenates the
// certificates of each round-robin class into one self-delimiting class
// message and replicates it onto every member port. The class message is
//
//	gamma(classSize) · ( gamma(len(cert)) · cert )*   in member port order
//
// and is framed even for singleton classes (any m >= 1, including
// m >= deg), so a receiver can CapSplit a message without knowing the
// sender's degree or which class it is reading. Merging is what makes the
// congestion axis bite: class sizes are ⌈deg/m⌉ or ⌊deg/m⌋, so a node's
// total wire bits scale like Σ_k size_k² — strictly falling from deg²
// at broadcast (m=1) to deg framed singletons at unicast — whereas the
// CapReplicate fallback is flat in m. m <= 0 returns certs untouched.
func CapMerge(certs []Cert, m int) []Cert {
	if m <= 0 {
		return certs
	}
	deg := len(certs)
	classes := m
	if deg < classes {
		classes = deg
	}
	for k := 0; k < classes; k++ {
		size := (deg - k + m - 1) / m
		var w bitstring.Writer
		w.WriteGamma(uint64(size))
		for i := k; i < deg; i += m {
			w.WriteGamma(uint64(certs[i].Len()))
			w.WriteString(certs[i])
		}
		msg := w.String()
		for i := k; i < deg; i += m {
			certs[i] = msg
		}
	}
	return certs
}

// CapSplit parses one CapMerge class message back into its member
// certificates, in the sender's member port order. Errors on malformed
// framing; a scheme's CapDecide should reject such a message.
func CapSplit(msg Cert) ([]Cert, error) {
	r := bitstring.NewReader(msg)
	size, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("class size: %w", err)
	}
	if size > 1<<20 {
		return nil, fmt.Errorf("implausible class size %d", size)
	}
	out := make([]Cert, size)
	for j := range out {
		n, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("member %d length: %w", j, err)
		}
		if n > 1<<30 {
			return nil, fmt.Errorf("implausible member %d length %d", j, n)
		}
		out[j], err = r.ReadString(int(n))
		if err != nil {
			return nil, fmt.Errorf("member %d payload: %w", j, err)
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("trailing bits after %d members", size)
	}
	return out, nil
}

// CapReplicate is the generic fallback degradation: it rewrites certs in
// place so every port of a round-robin class carries the class's
// max-length payload (ties broken by lowest port), and returns the slice.
// Replication keeps every registered scheme runnable at any m — all the
// repository's randomized schemes send a fingerprint of the node's own
// payload per port, and a fingerprint drawn for one port verifies on any
// other — at a wire cost that is flat in m: the separation from genuinely
// unicast-natural schemes is the point of the congestion axis.
// m <= 0 and m >= len(certs) are the uncapped cases and return certs
// untouched. The rewrite allocates nothing.
func CapReplicate(certs []Cert, m int) []Cert {
	if m <= 0 || m >= len(certs) {
		return certs
	}
	for k := 0; k < m; k++ {
		rep := k
		for i := k + m; i < len(certs); i += m {
			if certs[i].Len() > certs[rep].Len() {
				rep = i
			}
		}
		for i := k; i < len(certs); i += m {
			certs[i] = certs[rep]
		}
	}
	return certs
}
