package core

import (
	"rpls/internal/bitstring"
	"rpls/internal/field"
	"rpls/internal/prng"
)

// LaneRPLS is the optional batched extension of RPLS. A batched executor
// runs up to 64 Monte-Carlo trials ("lanes") through one graph traversal;
// a scheme implementing LaneRPLS generates certificates and decisions for
// all lanes of a node in one call, amortizing the seed-independent work —
// label parsing, prime selection, the coefficient walk of polynomial
// evaluation — that Certs/Decide would redo per trial.
//
// The contract is strict bit-equivalence with the one-lane entry points:
//
//   - CertsLanes fills out[l][i] for every lane l and port i < view.Deg
//     with exactly Certs(view, own, rngs[l])[i], using the empty Cert for
//     ports past the end of that slice. Every slot must be written — the
//     executor hands in reused storage.
//   - DecideLanes returns a bitmask whose bit l is exactly
//     Decide(view, own, recv[l]).
//
// rngs[l] is the node's forked stream for lane l (the executor derives it
// as prng.New(seed+l).Fork(v)), so coin draws inside a lane are the same
// streams the sequential path would use. len(rngs) and len(recv) are at
// most 64.
type LaneRPLS interface {
	RPLS
	CertsLanes(view View, own Label, rngs []*prng.Rand, out [][]Cert)
	DecideLanes(view View, own Label, recv [][]Cert) uint64
}

// LaneMask returns the bitmask with the low `lanes` bits set — the
// all-accept vote for a batch of that width.
func LaneMask(lanes int) uint64 {
	if lanes >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(lanes) - 1
}

// FingerprintLanes writes the standard fingerprint certificate — gamma
// length prefix plus (x, A(x)) over GF(p) — for every (lane, port) pair,
// drawing x from rngs[l].Fork(i) exactly as the one-lane schemes do, and
// evaluating the shared polynomial at all points in one batched pass
// (through cache when the scheme provides one; nil evaluates directly). It
// is the common core of the compiled and uniform CertsLanes.
//
// All certificates of a call have the same bit length, so they are framed
// into one shared slab: two allocations per call — evaluation points and
// slab — instead of two per certificate.
func FingerprintLanes(s bitstring.String, p uint64, rngs []*prng.Rand, deg int, cache *field.EvalCache, out [][]Cert) {
	lanes := len(rngs)
	buf := make([]uint64, 2*lanes*deg)
	xs, ys := buf[:lanes*deg], buf[lanes*deg:]
	for l, rng := range rngs {
		row := xs[l*deg : (l+1)*deg]
		for i := 0; i < deg; i++ {
			row[i] = rng.Fork(uint64(i)).Uint64n(p)
		}
	}
	cache.EvalMany(s, p, xs, ys)
	width := bitstring.UintBits(p - 1)
	n := uint64(s.Len())
	certBytes := (bitstring.GammaBits(n) + 2*width + 7) / 8
	slab := make([]byte, lanes*deg*certBytes)
	var w bitstring.Writer
	for l := 0; l < lanes; l++ {
		for i := 0; i < deg; i++ {
			k := (l*deg + i) * certBytes
			w.ResetInto(slab[k : k : k+certBytes])
			w.WriteGamma(n)
			w.WriteUint(xs[l*deg+i], width)
			w.WriteUint(ys[l*deg+i], width)
			out[l][i] = w.TakeString()
		}
	}
}

var _ LaneRPLS = (*compiled)(nil)

// CertsLanes implements LaneRPLS: the label is parsed and the field chosen
// once, and the self sub-label's polynomial is evaluated at all
// lanes × ports points in one coefficient walk.
func (c *compiled) CertsLanes(view View, own Label, rngs []*prng.Rand, out [][]Cert) {
	self, _, err := c.splitLabel(own, view.Deg)
	if err != nil {
		// Same as Certs: a malformed label sends empty certificates.
		for l := range rngs {
			for i := 0; i < view.Deg; i++ {
				out[l][i] = Cert{}
			}
		}
		return
	}
	// No cache: the self sub-label differs per node, so a shared one-entry
	// memo would thrash.
	FingerprintLanes(self, field.PrimeForLength(self.Len()), rngs, view.Deg, nil, out)
}

// DecideLanes implements LaneRPLS. Per port, each lane's certificate is
// parsed individually (lanes fail independently under adversarial input),
// but the replica polynomial is evaluated at all surviving lanes' points
// in one batched pass, and the inner deterministic verifier — which sees
// only the replicas, never the coins — runs once for the whole batch.
func (c *compiled) DecideLanes(view View, own Label, recv [][]Cert) uint64 {
	lanes := len(recv)
	self, replicas, err := c.splitLabel(own, view.Deg)
	if err != nil {
		return 0
	}
	live := LaneMask(lanes)
	for l, r := range recv {
		if len(r) != view.Deg {
			live &^= 1 << uint(l)
		}
	}
	buf := make([]uint64, 3*lanes)
	xs, ys, got := buf[:lanes], buf[lanes:2*lanes], buf[2*lanes:]
	for i := 0; i < view.Deg && live != 0; i++ {
		rep := replicas[i]
		p := field.PrimeForLength(rep.Len())
		for l := 0; l < lanes; l++ {
			xs[l], ys[l] = 0, 0
			if live&(1<<uint(l)) == 0 {
				continue
			}
			r := bitstring.NewReader(recv[l][i])
			n, err := r.ReadGamma()
			if err != nil || int(n) != rep.Len() {
				live &^= 1 << uint(l)
				continue
			}
			fp, err := field.DecodeFingerprint(r, p)
			if err != nil || r.Remaining() != 0 {
				live &^= 1 << uint(l)
				continue
			}
			xs[l], ys[l] = fp.X, fp.Y
		}
		if live == 0 {
			break
		}
		field.NewPoly(rep, p).EvalMany(xs, got)
		for l := 0; l < lanes; l++ {
			if live&(1<<uint(l)) != 0 && got[l] != ys[l] {
				live &^= 1 << uint(l)
			}
		}
	}
	if live == 0 {
		return 0
	}
	if !c.inner.Verify(view, self, replicas) {
		return 0
	}
	return live
}
