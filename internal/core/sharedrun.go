package core

import (
	"fmt"

	"rpls/internal/graph"
	"rpls/internal/prng"
)

// The shared-coin round runner. SharedRPLS is the one round shape the
// engine's executors do not run — every node must see the identical
// public stream before drawing its private fork — so the model keeps its
// own reference runner here, next to the SharedRPLS interface and
// SharedCoins stream it executes. The runner is the sole metering
// authority for its rounds: its SharedStats is deliberately a distinct
// type from the engine's metered Stats, so the engine's meter-flow
// invariants (and the plsvet analyzer enforcing them) keep their single
// authority per round shape.

// SharedStats records the measured communication cost of one shared-coin
// verification round.
type SharedStats struct {
	MaxLabelBits  int   // largest label in the assignment
	MaxCertBits   int   // largest certificate any node generated
	TotalWireBits int64 // bits on the wire across all directed edges
	Messages      int   // directed-edge sends (one per port per round)
}

// SharedResult is the outcome of one shared-coin verification round.
type SharedResult struct {
	Accepted bool   // AND of all votes
	Votes    []bool // per-node verdicts
	Stats    SharedStats
}

// RunShared labels the configuration with the scheme's prover and runs
// one shared-randomness verification round.
func RunShared(s SharedRPLS, c *graph.Config, seed uint64) (SharedResult, error) {
	labels, err := s.Label(c)
	if err != nil {
		return SharedResult{}, fmt.Errorf("prover %s: %w", s.Name(), err)
	}
	return VerifyShared(s, c, labels, seed), nil
}

// VerifyShared runs one round of the shared-coin model: every node
// receives an identically seeded public stream plus a private fork.
func VerifyShared(s SharedRPLS, c *graph.Config, labels []Label, seed uint64) SharedResult {
	n := c.G.N()
	root := prng.New(seed)
	all := make([][]Cert, n)
	certBits := 0
	for v := 0; v < n; v++ {
		certs := s.CertsShared(ViewOf(c, v), labels[v], SharedCoins(seed), root.Fork(uint64(v)))
		all[v] = certs
		if b := MaxBits(certs); b > certBits {
			certBits = b
		}
	}
	votes := make([]bool, n)
	accepted := true
	stats := SharedStats{MaxLabelBits: MaxBits(labels), MaxCertBits: certBits}
	for v := 0; v < n; v++ {
		deg := c.G.Degree(v)
		received := make([]Cert, deg)
		for i := 0; i < deg; i++ {
			h := c.G.Neighbor(v, i+1)
			if h.RevPort-1 < len(all[h.To]) {
				received[i] = all[h.To][h.RevPort-1]
				stats.TotalWireBits += int64(received[i].Len())
			}
		}
		stats.Messages += deg
		votes[v] = s.DecideShared(ViewOf(c, v), labels[v], received, SharedCoins(seed))
		accepted = accepted && votes[v]
	}
	return SharedResult{Accepted: accepted, Votes: votes, Stats: stats}
}

// EstimateAcceptanceShared is the Monte-Carlo acceptance estimator for
// the shared-coin model. Seeds are seed, seed+1, … so estimates are
// reproducible.
func EstimateAcceptanceShared(s SharedRPLS, c *graph.Config, labels []Label, trials int, seed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	accepted := 0
	for t := 0; t < trials; t++ {
		if VerifyShared(s, c, labels, seed+uint64(t)).Accepted {
			accepted++
		}
	}
	return float64(accepted) / float64(trials)
}
