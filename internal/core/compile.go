package core

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Compile implements Theorem 3.1: given a deterministic PLS with
// verification complexity κ, it returns a one-sided, edge-independent RPLS
// with verification complexity O(log κ).
//
// Construction (Appendix A): the compiled prover replicates each node's
// label onto all its neighbors — the new label of v is the vector
// (ℓ(v), ℓ(w₁), …, ℓ(w_d)) ordered by port. During verification, v does not
// send its label; instead, per port it draws a uniform x in GF(p) for a
// prime 3κ < p < 6κ and sends the fingerprint (x, A(x)) of ℓ(v) viewed as a
// polynomial (Lemma A.1). The receiver checks the fingerprint against its
// stored replica of the sender's label and, if every replica passes, runs
// the original deterministic verifier on the replicas.
//
// Equal strings always fingerprint-match, so legal configurations are
// accepted with probability 1 (one-sided). On illegal configurations either
// some replica is inconsistent — detected with probability > 2/3 on that
// edge — or all replicas are faithful and the deterministic verifier
// rejects outright.
//
// The transmitted certificate also carries the label length in Elias-gamma
// form (2⌊log κ⌋+1 bits): a fingerprint alone cannot distinguish a string
// from the same string with trailing zero bits, since both induce the same
// polynomial.
func Compile(p PLS) RPLS {
	return &compiled{inner: p}
}

// CompiledCertBits predicts the exact number of bits a compiled scheme
// puts on one port when the inner label is kappa bits long: the
// Elias-gamma length prefix plus the (x, A(x)) fingerprint over GF(p) for
// p = PrimeForLength(kappa). This is the analytic form of the Theorem 3.1
// O(log κ) bound; the wire-accounting tests and the E1/E19 experiment
// tables check the metered cost against it bit for bit.
func CompiledCertBits(kappa int) int {
	if kappa < 0 {
		kappa = 0
	}
	p := field.PrimeForLength(kappa)
	return bitstring.GammaBits(uint64(kappa)) + 2*bitstring.UintBits(p-1)
}

type compiled struct {
	inner PLS
}

var _ RPLS = (*compiled)(nil)

func (c *compiled) Name() string   { return c.inner.Name() + "+compiled" }
func (c *compiled) OneSided() bool { return true }

// Label builds the replicated label vector. Each sub-label is written with
// a gamma length prefix so it can be decoded without trusting the content.
func (c *compiled) Label(cfg *graph.Config) ([]Label, error) {
	base, err := c.inner.Label(cfg)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", c.inner.Name(), err)
	}
	if len(base) != cfg.G.N() {
		return nil, fmt.Errorf("compile %s: %d labels for %d nodes", c.inner.Name(), len(base), cfg.G.N())
	}
	out := make([]Label, cfg.G.N())
	for v := range out {
		var w bitstring.Writer
		writeSub(&w, base[v])
		for _, h := range cfg.G.AdjView(v) {
			writeSub(&w, base[h.To])
		}
		out[v] = w.String()
	}
	return out, nil
}

func writeSub(w *bitstring.Writer, s bitstring.String) {
	w.WriteGamma(uint64(s.Len()))
	w.WriteString(s)
}

func readSub(r *bitstring.Reader) (bitstring.String, error) {
	n, err := r.ReadGamma()
	if err != nil {
		return bitstring.String{}, err
	}
	if n > 1<<30 {
		return bitstring.String{}, fmt.Errorf("compiled label: implausible sub-label length %d", n)
	}
	return r.ReadString(int(n))
}

// splitLabel decodes the replicated vector: own label plus one replica per
// port. Returns an error on malformed (adversarial) labels.
func (c *compiled) splitLabel(own Label, deg int) (self Label, replicas []Label, err error) {
	r := bitstring.NewReader(own)
	self, err = readSub(r)
	if err != nil {
		return Label{}, nil, fmt.Errorf("own sub-label: %w", err)
	}
	replicas = make([]Label, deg)
	for i := 0; i < deg; i++ {
		replicas[i], err = readSub(r)
		if err != nil {
			return Label{}, nil, fmt.Errorf("replica %d: %w", i, err)
		}
	}
	if r.Remaining() != 0 {
		return Label{}, nil, fmt.Errorf("trailing bits in compiled label")
	}
	return self, replicas, nil
}

// Certs fingerprints the node's own sub-label once per port with
// independent coins (edge independence, Definition 4.5).
func (c *compiled) Certs(view View, own Label, rng *prng.Rand) []Cert {
	self, _, err := c.splitLabel(own, view.Deg)
	if err != nil {
		// A node with a malformed label sends empty certificates; its
		// neighbors reject them, and the node itself rejects in Decide.
		return make([]Cert, view.Deg)
	}
	p := field.PrimeForLength(self.Len())
	certs := make([]Cert, view.Deg)
	for i := range certs {
		fp := field.NewFingerprint(self, p, rng.Fork(uint64(i)))
		var w bitstring.Writer
		w.WriteGamma(uint64(self.Len()))
		fp.Encode(&w)
		certs[i] = w.String()
	}
	return certs
}

// Decide checks every received fingerprint against the stored replica of
// that neighbor's label, then runs the original deterministic verifier on
// the replicas.
func (c *compiled) Decide(view View, own Label, received []Cert) bool {
	self, replicas, err := c.splitLabel(own, view.Deg)
	if err != nil {
		return false
	}
	if len(received) != view.Deg {
		return false
	}
	for i, cert := range received {
		if !checkFingerprint(cert, replicas[i]) {
			return false
		}
	}
	return c.inner.Verify(view, self, replicas)
}

// checkFingerprint verifies one transmitted certificate — gamma length
// prefix plus (x, A(x)) — against the receiver's stored replica of the
// sender's label.
func checkFingerprint(cert Cert, replica Label) bool {
	r := bitstring.NewReader(cert)
	n, err := r.ReadGamma()
	if err != nil {
		return false
	}
	if int(n) != replica.Len() {
		return false // length mismatch: replica cannot equal sender's label
	}
	p := field.PrimeForLength(int(n))
	fp, err := field.DecodeFingerprint(r, p)
	if err != nil {
		return false
	}
	if r.Remaining() != 0 {
		return false
	}
	return fp.Matches(replica)
}

var _ CappedRPLS = (*compiled)(nil)

// CapCerts implements CappedRPLS by payload merging: every port's
// fingerprint is a fingerprint of the SAME string — the node's own
// sub-label, drawn with the unicast coins rng.Fork(port) — so the class
// messages are just CapMerge bundles of the unicast certificates. Any
// deterministic scheme run through Compile therefore degrades natively
// under a multiplicity cap.
func (c *compiled) CapCerts(m int, view View, own Label, rng *prng.Rand) []Cert {
	return CapMerge(c.Certs(view, own, rng), m)
}

// CapDecide mirrors Decide for the merged wire format: every member of
// the class message received on port i fingerprints the sender's own
// sub-label, so all of them must match the stored replica of that label.
// Equal strings always match (one-sided completeness); the reverse edge's
// own fingerprint is among the members, so soundness is at least unicast.
func (c *compiled) CapDecide(_ int, view View, own Label, received []Cert) bool {
	self, replicas, err := c.splitLabel(own, view.Deg)
	if err != nil {
		return false
	}
	if len(received) != view.Deg {
		return false
	}
	for i, msg := range received {
		members, err := CapSplit(msg)
		if err != nil {
			return false
		}
		if len(members) == 0 {
			return false // the reverse edge's fingerprint must be present
		}
		for _, cert := range members {
			if !checkFingerprint(cert, replicas[i]) {
				return false
			}
		}
	}
	return c.inner.Verify(view, self, replicas)
}
