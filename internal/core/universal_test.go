package core_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// alwaysTrue accepts every configuration; with it, the universal scheme is
// certifying pure structure, which isolates the consistency machinery.
type alwaysTrue struct{}

func (alwaysTrue) Name() string              { return "true" }
func (alwaysTrue) Eval(_ *graph.Config) bool { return true }

func TestUniversalPLSCompleteness(t *testing.T) {
	rng := prng.New(1)
	s := core.UniversalPLS(uniform.Predicate{})
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		c := uniformConfig(graph.RandomConnected(n, rng.Intn(n), rng), []byte("zz"))
		c.AssignRandomIDs(rng)
		res, err := engine.Run(engine.FromPLS(s), c, engine.WithStats(true))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d: legal config rejected, votes %v", trial, res.Votes)
		}
	}
}

func TestUniversalProverRefusesIllegal(t *testing.T) {
	c := uniformConfig(graph.Path(4), []byte("a"))
	c.States[1].Data = []byte("b")
	if _, err := core.UniversalPLS(uniform.Predicate{}).Label(c); err == nil {
		t.Error("universal prover labeled an illegal configuration")
	}
}

func TestUniversalSoundTransplantFromLegalTwin(t *testing.T) {
	// Labels describe a legal twin configuration; the actual config differs
	// in one node's state. That node's record check must fail.
	legal := uniformConfig(graph.Path(5), []byte("x"))
	s := core.UniversalPLS(uniform.Predicate{})
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	illegal := legal.Clone()
	illegal.States[2].Data = []byte("y")
	res := engine.Verify(engine.FromPLS(s), illegal, labels, engine.WithStats(true))
	if res.Accepted {
		t.Error("universal scheme fooled by legal-twin transplant")
	}
	if res.Votes[2] {
		t.Error("node 2 must reject: its R record mismatches its state")
	}
}

func TestUniversalSoundAgainstHonestRButIllegalConfig(t *testing.T) {
	// Labels honestly describe the *illegal* configuration: every structural
	// check passes but P(R) is false, so every node must reject.
	illegal := uniformConfig(graph.Path(4), []byte("x"))
	illegal.States[3].Data = []byte("y")
	enc := illegal.Encode()
	labels := make([]core.Label, 4)
	for v := range labels {
		var w bitstring.Writer
		w.WriteUint(uint64(v), 32)
		w.WriteString(enc)
		labels[v] = w.String()
	}
	s := core.UniversalPLS(uniform.Predicate{})
	res := engine.Verify(engine.FromPLS(s), illegal, labels, engine.WithStats(true))
	if res.Accepted {
		t.Fatal("illegal config accepted with honest self-description")
	}
	for v, vote := range res.Votes {
		if vote {
			t.Errorf("node %d accepted even though P(R) is false", v)
		}
	}
}

func TestUniversalSoundAgainstIndexSwap(t *testing.T) {
	// Swapping two nodes' labels makes their claimed indices disagree with
	// their actual identities.
	legal := uniformConfig(graph.Path(5), []byte("x"))
	s := core.UniversalPLS(uniform.Predicate{})
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	labels[0], labels[4] = labels[4], labels[0]
	if engine.Verify(engine.FromPLS(s), legal, labels).Accepted {
		t.Error("index swap accepted")
	}
}

func TestUniversalSoundAgainstDisagreeingR(t *testing.T) {
	// Two halves of the network hold different (each internally consistent)
	// representations; some frontier node must reject the mismatch.
	cfgA := uniformConfig(graph.Path(6), []byte("x"))
	cfgB := cfgA.Clone()
	cfgB.States[5].Flags = graph.FlagMarked // a legal but different config
	s := core.UniversalPLS(alwaysTrue{})
	labelsA, err := s.Label(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	labelsB, err := s.Label(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	mixed := make([]core.Label, 6)
	copy(mixed, labelsA[:3])
	copy(mixed[3:], labelsB[3:])
	// Run on cfgB: nodes 0..2 describe cfgA, nodes 3..5 describe cfgB.
	res := engine.Verify(engine.FromPLS(s), cfgB, mixed)
	if res.Accepted {
		t.Error("disagreeing representations accepted")
	}
}

func TestUniversalSoundAgainstPhantomNodes(t *testing.T) {
	// R describes a *larger* legal configuration that contains the actual
	// one as an induced prefix. The extra claimed neighbor at the boundary
	// must be missed by the degree check.
	small := uniformConfig(graph.Path(3), []byte("x"))
	big := uniformConfig(graph.Path(5), []byte("x"))
	s := core.UniversalPLS(uniform.Predicate{})
	bigLabels, err := s.Label(big)
	if err != nil {
		t.Fatal(err)
	}
	labels := bigLabels[:3]
	res := engine.Verify(engine.FromPLS(s), small, labels, engine.WithStats(true))
	if res.Accepted {
		t.Error("phantom-node representation accepted")
	}
	if res.Votes[2] {
		t.Error("boundary node must reject: R claims degree 2, reality is 1")
	}
}

func TestUniversalRejectsGarbageLabels(t *testing.T) {
	c := uniformConfig(graph.Path(3), []byte("x"))
	s := core.UniversalPLS(uniform.Predicate{})
	garbage := make([]core.Label, 3)
	for i := range garbage {
		garbage[i] = bitstring.FromBytes([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	}
	res := engine.Verify(engine.FromPLS(s), c, garbage, engine.WithStats(true))
	if res.Accepted {
		t.Error("garbage labels accepted")
	}
	for v, vote := range res.Votes {
		if vote {
			t.Errorf("node %d accepted garbage", v)
		}
	}
}

func TestUniversalRPLSCertificateSize(t *testing.T) {
	// Corollary 3.4: certificates are O(log n + log k) even though labels
	// are Ω(n + k) — measure both to exhibit the gap.
	rng := prng.New(2)
	s := core.UniversalRPLS(uniform.Predicate{})
	for _, n := range []int{4, 8, 16} {
		c := uniformConfig(graph.RandomConnected(n, n/2, rng), make([]byte, 16))
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		labelBits := core.MaxBits(labels)
		certBits := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 3, 3)
		if labelBits < n*100 {
			t.Errorf("n=%d: universal labels suspiciously small (%d bits)", n, labelBits)
		}
		if certBits > 6*log2ceil(labelBits)+20 {
			t.Errorf("n=%d: certificates %d bits for κ=%d, want O(log κ)", n, certBits, labelBits)
		}
		if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 20, 4); rate != 1.0 {
			t.Errorf("n=%d: acceptance %v on legal config", n, rate)
		}
	}
}

func TestUniversalRPLSSoundOnIllegal(t *testing.T) {
	legal := uniformConfig(graph.Path(5), []byte("x"))
	s := core.UniversalRPLS(uniform.Predicate{})
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	illegal := legal.Clone()
	illegal.States[2].Data = []byte("y")
	if rate := engine.Acceptance(engine.FromRPLS(s), illegal, labels, 200, 5); rate > 1.0/3 {
		t.Errorf("acceptance %v on illegal config, want <= 1/3", rate)
	}
}
