package core_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

func randomString(bits int, rng *prng.Rand) bitstring.String {
	var w bitstring.Writer
	for i := 0; i < bits; i++ {
		w.WriteBit(rng.Bit())
	}
	return w.String()
}

// TestShardLayout pins the fixed shard layout: every shard but the last is
// exactly ShardWidth bits, rounds past the content are empty, and the
// round-order concatenation reconstructs the base string bit for bit —
// including the t = 1, t = L, and t > L edge cases.
func TestShardLayout(t *testing.T) {
	rng := prng.New(7)
	for _, bits := range []int{0, 1, 5, 8, 17, 64, 129} {
		base := randomString(bits, rng)
		for _, rounds := range []int{1, 2, 3, 4, bits, bits + 3, 200} {
			if rounds < 1 {
				continue
			}
			width := core.ShardWidth(bits, rounds)
			if bits > 0 {
				if want := (bits + rounds - 1) / rounds; width != want {
					t.Fatalf("ShardWidth(%d, %d) = %d, want ⌈bits/rounds⌉ = %d", bits, rounds, width, want)
				}
			} else if width != 0 {
				t.Fatalf("ShardWidth(0, %d) = %d, want 0", rounds, width)
			}
			shards := make([]bitstring.String, rounds)
			for r := range shards {
				shards[r] = core.Shard(base, r, rounds)
				if shards[r].Len() > width {
					t.Fatalf("bits=%d rounds=%d: shard %d is %d bits, over the %d-bit width",
						bits, rounds, r, shards[r].Len(), width)
				}
			}
			if got := bitstring.Concat(shards...); !got.Equal(base) {
				t.Fatalf("bits=%d rounds=%d: reassembly %q != base %q", bits, rounds, got, base)
			}
		}
	}
}

// TestShardCompileRejectsBadRounds pins the t = 0 contract: zero and
// negative round counts are rejected by both compilers, while t > κ is
// legal (the late rounds just carry empty shards).
func TestShardCompileRejectsBadRounds(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if _, err := core.ShardCompile(uniform.NewRPLS(), bad); err == nil {
			t.Errorf("ShardCompile(t=%d) accepted, want error", bad)
		}
		if _, err := core.ShardPLS(spanningtree.NewPLS(), bad); err == nil {
			t.Errorf("ShardPLS(t=%d) accepted, want error", bad)
		}
	}
	if _, err := core.ShardCompile(uniform.NewRPLS(), 1_000_000); err != nil {
		t.Errorf("ShardCompile(t≫κ): %v, want accepted", err)
	}
}

// TestShardPLSReassemblesLabels runs a sharded deterministic scheme by hand
// for one node: concatenating the per-round broadcasts of each neighbor
// must reconstruct that neighbor's label, and the final Decide is the base
// verifier's verdict on the reassembled labels.
func TestShardPLSReassemblesLabels(t *testing.T) {
	cfg := graph.NewConfig(graph.RandomTree(12, prng.New(3)))
	base := spanningtree.NewPLS()
	for v, p := range cfg.G.SpanningTreeParents(0) {
		cfg.States[v].Parent = p
	}
	cfg.AssignRandomIDs(prng.New(4))
	labels, err := base.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	sharded, err := core.ShardPLS(base, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.OneSided() || sharded.Rounds() != rounds {
		t.Fatalf("sharded scheme: one-sided=%v rounds=%d", sharded.OneSided(), sharded.Rounds())
	}
	cf, ok := sharded.(core.CoinFree)
	if !ok || !cf.CoinFree() {
		t.Fatal("a sharded deterministic scheme must declare itself coin-free")
	}
	for v := 0; v < cfg.G.N(); v++ {
		view := core.ViewOf(cfg, v)
		recv := make([]core.Cert, view.Deg)
		for i, h := range cfg.G.Adj(v) {
			nview := core.ViewOf(cfg, h.To)
			var parts []bitstring.String
			for r := 0; r < rounds; r++ {
				msgs := sharded.RoundCerts(r, nview, labels[h.To], prng.New(1))
				parts = append(parts, msgs[h.RevPort-1])
			}
			recv[i] = bitstring.Concat(parts...)
			if !recv[i].Equal(labels[h.To]) {
				t.Fatalf("node %d port %d: reassembled %q != neighbor label %q", v, i+1, recv[i], labels[h.To])
			}
		}
		if !sharded.Decide(view, labels[v], recv) {
			t.Fatalf("node %d rejects honest reassembled labels", v)
		}
	}
}

// TestShardCompilePreservesCerts checks the randomized compiler's coin
// contract: with the per-round identical rng stream, the round shards of
// each port concatenate back to exactly the base certificate of that draw.
func TestShardCompilePreservesCerts(t *testing.T) {
	cfg := graph.NewConfig(graph.Complete(6))
	base := uniform.NewRPLS()
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	for v := range cfg.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		cfg.States[v].Data = d
	}
	labels, err := base.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rounds := range []int{1, 2, 4, 7, 1000} {
		sharded, err := core.ShardCompile(base, rounds)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < cfg.G.N(); v++ {
			view := core.ViewOf(cfg, v)
			want := base.Certs(view, labels[v], prng.New(11).Fork(uint64(v)))
			for port := 0; port < view.Deg; port++ {
				var parts []bitstring.String
				for r := 0; r < rounds; r++ {
					msgs := sharded.RoundCerts(r, view, labels[v], prng.New(11).Fork(uint64(v)))
					parts = append(parts, msgs[port])
				}
				if got := bitstring.Concat(parts...); !got.Equal(want[port]) {
					t.Fatalf("rounds=%d node %d port %d: reassembled cert differs from base draw", rounds, v, port)
				}
			}
		}
	}
}

// FuzzShardReassembly fuzzes the round-count edge cases: any t >= 1 must
// reassemble any string exactly under the fixed layout with per-shard
// width ⌈L/t⌉, and t <= 0 must be rejected by the compilers.
func FuzzShardReassembly(f *testing.F) {
	f.Add([]byte{0xa5, 0x0f}, 13, 3)
	f.Add([]byte{}, 0, 1)
	f.Add([]byte{0xff}, 8, 100) // t > κ
	f.Add([]byte{0x01}, 5, 0)   // t = 0 rejected
	f.Add([]byte{0x80, 0x01}, 9, -4)
	f.Fuzz(func(t *testing.T, data []byte, bits, rounds int) {
		if bits < 0 || bits > 8*len(data) {
			bits = 8 * len(data)
		}
		base := bitstring.FromBytes(data).Truncate(bits)
		if rounds < 1 {
			if _, err := core.ShardPLS(spanningtree.NewPLS(), rounds); err == nil {
				t.Fatalf("ShardPLS accepted t=%d", rounds)
			}
			if _, err := core.ShardCompile(uniform.NewRPLS(), rounds); err == nil {
				t.Fatalf("ShardCompile accepted t=%d", rounds)
			}
			return
		}
		if rounds > 1<<16 {
			rounds = 1 + rounds%(1<<16)
		}
		width := core.ShardWidth(base.Len(), rounds)
		shards := make([]bitstring.String, rounds)
		for r := range shards {
			shards[r] = core.Shard(base, r, rounds)
			if shards[r].Len() > width {
				t.Fatalf("shard %d of %d: %d bits exceeds width %d", r, rounds, shards[r].Len(), width)
			}
		}
		if got := bitstring.Concat(shards...); !got.Equal(base) {
			t.Fatalf("t=%d: reassembly mismatch for %d-bit string", rounds, base.Len())
		}
	})
}
