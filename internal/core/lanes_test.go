package core_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// laneSchemes enumerates the LaneRPLS implementations under test together
// with a config on which their labels are valid. The compiled scheme
// exercises the replica-splitting path, uniform the shared-polynomial
// path, the truncated variant a fixed tiny field (p = 2), and Boost both
// the lane-capable delegation (uniform inner) and the per-lane fallback
// (coinRPLS inner, which does not implement LaneRPLS).
func laneSchemes(t *testing.T) []struct {
	name   string
	scheme core.RPLS
	cfg    *graph.Config
	labels []core.Label
} {
	t.Helper()
	legal := func(n int) *graph.Config {
		g := graph.RandomTree(n, prng.New(77))
		for i := 0; i < n/2; i++ {
			u, v := int(prng.New(uint64(i)).Uint64n(uint64(n))), int(prng.New(uint64(i)+99).Uint64n(uint64(n)))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		c := graph.NewConfig(g)
		for v := range c.States {
			c.States[v].Data = []byte("lane-test-payload")
		}
		return c
	}
	broken := legal(12)
	broken.States[5].Data = []byte("lane-test-payloaX")

	var out []struct {
		name   string
		scheme core.RPLS
		cfg    *graph.Config
		labels []core.Label
	}
	add := func(name string, s core.RPLS, c *graph.Config, mustLabel bool) {
		labels, err := s.Label(c)
		if err != nil {
			if mustLabel {
				t.Fatalf("%s: Label: %v", name, err)
			}
			labels = make([]core.Label, c.G.N())
		}
		out = append(out, struct {
			name   string
			scheme core.RPLS
			cfg    *graph.Config
			labels []core.Label
		}{name, s, c, labels})
	}
	add("uniform", uniform.NewRPLS(), legal(14), true)
	add("uniform-illegal", uniform.NewRPLS(), broken, false)
	add("truncated", uniform.NewTruncatedRPLS(2), legal(10), true)
	add("compiled", core.Compile(uniform.NewPLS()), legal(14), true)
	add("boost3", core.Boost(uniform.NewRPLS(), 3), legal(12), true)
	add("boost3-illegal", core.Boost(uniform.NewRPLS(), 3), broken, false)
	add("boost5-two-sided", core.Boost(coinRPLS{bits: 2}, 5), legal(8), true)
	return out
}

// TestLanesMatchPerLane pins the LaneRPLS contract: CertsLanes slot (l, i)
// is bit-identical to Certs with rngs[l] (empty past the short tail), and
// DecideLanes bit l equals Decide on lane l's certificates — both on the
// honest exchange and with one lane's certificate corrupted.
func TestLanesMatchPerLane(t *testing.T) {
	for _, tc := range laneSchemes(t) {
		t.Run(tc.name, func(t *testing.T) {
			ls, ok := tc.scheme.(core.LaneRPLS)
			if !ok {
				t.Fatalf("%s does not implement LaneRPLS", tc.scheme.Name())
			}
			for _, lanes := range []int{1, 3, 64} {
				n := tc.cfg.G.N()
				// Per-lane reference streams and batched streams: trial l at
				// node v forks prng.New(seed+l).Fork(v), as the executors do.
				want := make([][][]core.Cert, lanes) // lane -> node -> certs
				for l := 0; l < lanes; l++ {
					want[l] = make([][]core.Cert, n)
					for v := 0; v < n; v++ {
						rng := prng.New(uint64(1000 + l)).Fork(uint64(v))
						want[l][v] = tc.scheme.Certs(core.ViewOf(tc.cfg, v), tc.labels[v], rng)
					}
				}
				for v := 0; v < n; v++ {
					view := core.ViewOf(tc.cfg, v)
					rngs := make([]*prng.Rand, lanes)
					out := make([][]core.Cert, lanes)
					for l := 0; l < lanes; l++ {
						rngs[l] = prng.New(uint64(1000 + l)).Fork(uint64(v))
						out[l] = make([]core.Cert, view.Deg)
						for i := range out[l] {
							// Pre-fill with junk: every slot must be overwritten.
							out[l][i] = core.Cert(bitstring.FromBytes([]byte{0xA5, 0x5A}))
						}
					}
					ls.CertsLanes(view, tc.labels[v], rngs, out)
					for l := 0; l < lanes; l++ {
						for i := 0; i < view.Deg; i++ {
							var ref core.Cert
							if i < len(want[l][v]) {
								ref = want[l][v][i]
							}
							if !out[l][i].Equal(ref) {
								t.Fatalf("lanes=%d node %d lane %d port %d: CertsLanes != Certs", lanes, v, l, i)
							}
						}
					}
				}
				// Exchange honestly, then decide — batch vs per-lane — and once
				// more with a corrupted lane to hit the rejection paths.
				for _, corrupt := range []bool{false, true} {
					for v := 0; v < n; v++ {
						view := core.ViewOf(tc.cfg, v)
						recv := make([][]core.Cert, lanes)
						for l := 0; l < lanes; l++ {
							recv[l] = make([]core.Cert, view.Deg)
							for i, h := range tc.cfg.G.AdjView(v) {
								nbrCerts := want[l][h.To]
								if h.RevPort-1 < len(nbrCerts) {
									recv[l][i] = nbrCerts[h.RevPort-1]
								}
							}
							if corrupt && l == lanes/2 && view.Deg > 0 {
								recv[l][0] = recv[l][0].Truncate(recv[l][0].Len() / 2)
							}
						}
						got := ls.DecideLanes(view, tc.labels[v], recv)
						for l := 0; l < lanes; l++ {
							ref := tc.scheme.Decide(view, tc.labels[v], recv[l])
							if ref != (got&(1<<uint(l)) != 0) {
								t.Fatalf("corrupt=%v lanes=%d node %d lane %d: DecideLanes bit %v, Decide %v",
									corrupt, lanes, v, l, got&(1<<uint(l)) != 0, ref)
							}
						}
					}
				}
			}
		})
	}
}

// TestLaneMask checks the boundary lane counts.
func TestLaneMask(t *testing.T) {
	for _, tc := range []struct {
		lanes int
		want  uint64
	}{{0, 0}, {1, 1}, {2, 3}, {63, 1<<63 - 1}, {64, ^uint64(0)}} {
		if got := core.LaneMask(tc.lanes); got != tc.want {
			t.Errorf("LaneMask(%d) = %#x, want %#x", tc.lanes, got, tc.want)
		}
	}
}
