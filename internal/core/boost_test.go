package core_test

import (
	"strings"
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// coinRPLS is a synthetic two-sided scheme used to exercise the majority
// combination rule: each node sends `bits` random bits per port and accepts
// iff every received word is all-zero. Per-vote acceptance at a node with
// degree d is 2^(−bits·d), adjustable below or above 1/2 via `invert`.
type coinRPLS struct {
	bits   int
	invert bool // accept iff NOT all-zero: flips the acceptance probability
}

func (c coinRPLS) Name() string   { return "coin" }
func (c coinRPLS) OneSided() bool { return false }

func (c coinRPLS) Label(cfg *graph.Config) ([]core.Label, error) {
	return make([]core.Label, cfg.G.N()), nil
}

func (c coinRPLS) Certs(view core.View, _ core.Label, rng *prng.Rand) []core.Cert {
	out := make([]core.Cert, view.Deg)
	for i := range out {
		var w bitstring.Writer
		port := rng.Fork(uint64(i))
		for b := 0; b < c.bits; b++ {
			w.WriteBit(port.Bit())
		}
		out[i] = w.String()
	}
	return out
}

func (c coinRPLS) Decide(view core.View, _ core.Label, received []core.Cert) bool {
	if len(received) != view.Deg {
		return false
	}
	allZero := true
	for _, cert := range received {
		if cert.Len() != c.bits {
			return false
		}
		for i := 0; i < cert.Len(); i++ {
			if cert.Bit(i) == 1 {
				allZero = false
			}
		}
	}
	if c.invert {
		return !allZero
	}
	return allZero
}

func TestBoostIdentityForTOne(t *testing.T) {
	inner := uniform.NewRPLS()
	if got := core.Boost(inner, 1); got.Name() != inner.Name() {
		t.Error("Boost(r, 1) should return r unchanged")
	}
	if got := core.Boost(inner, 0); got.Name() != inner.Name() {
		t.Error("Boost(r, 0) should return r unchanged")
	}
}

func TestBoostName(t *testing.T) {
	b := core.Boost(uniform.NewRPLS(), 5)
	if !strings.Contains(b.Name(), "×5") {
		t.Errorf("boosted name = %q", b.Name())
	}
}

func TestBoostPreservesOneSidedCompleteness(t *testing.T) {
	c := graph.NewConfig(graph.Path(6))
	for v := range c.States {
		c.States[v].Data = []byte("same")
	}
	for _, reps := range []int{2, 5, 16} {
		s := core.Boost(uniform.NewRPLS(), reps)
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 100, 1); rate != 1.0 {
			t.Errorf("t=%d: acceptance %v on legal config, want 1.0", reps, rate)
		}
	}
}

func TestBoostConjunctionDrivesErrorDown(t *testing.T) {
	// One-sided boosting: acceptance of an illegal config must be
	// (weakly) decreasing in t and eventually negligible.
	c := graph.NewConfig(graph.Path(4))
	for v := range c.States {
		c.States[v].Data = []byte{0x00, 0x00}
	}
	c.States[2].Data = []byte{0x00, 0x01}
	labels := make([]core.Label, 4)
	inner := uniform.NewRPLS()
	prev := 1.1
	for _, reps := range []int{1, 2, 4, 8} {
		s := core.Boost(inner, reps)
		rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 3000, 42)
		if rate > prev+0.02 {
			t.Errorf("t=%d: acceptance %v rose from %v", reps, rate, prev)
		}
		prev = rate
	}
	if prev > 0.01 {
		t.Errorf("t=8: acceptance %v, want near 0", prev)
	}
}

func TestBoostMajorityAmplifiesAdvantage(t *testing.T) {
	// A two-sided vote with per-round acceptance p should move toward
	// 0 (p < 1/2) or 1 (p > 1/2) under majority boosting.
	cfg := graph.NewConfig(graph.Path(2))

	// p = 1/4 per node per round.
	low := coinRPLS{bits: 2}
	labels := make([]core.Label, 2)
	base := engine.Acceptance(engine.FromRPLS(low), cfg, labels, 4000, 7)
	boosted := engine.Acceptance(engine.FromRPLS(core.Boost(low, 9)), cfg, labels, 4000, 8)
	if !(boosted < base) {
		t.Errorf("below-half acceptance should shrink: base %v, boosted %v", base, boosted)
	}

	// p = 3/4 per node per round.
	high := coinRPLS{bits: 2, invert: true}
	base = engine.Acceptance(engine.FromRPLS(high), cfg, labels, 4000, 9)
	boosted = engine.Acceptance(engine.FromRPLS(core.Boost(high, 9)), cfg, labels, 4000, 10)
	if !(boosted > base) {
		t.Errorf("above-half acceptance should grow: base %v, boosted %v", base, boosted)
	}
	if boosted < 0.9 {
		t.Errorf("boosted above-half acceptance %v, want > 0.9", boosted)
	}
}

func TestBoostCertificateSizeScalesLinearly(t *testing.T) {
	c := graph.NewConfig(graph.Path(3))
	for v := range c.States {
		c.States[v].Data = []byte("data")
	}
	inner := uniform.NewRPLS()
	labels, err := inner.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	base := engine.MaxCertBits(engine.FromRPLS(inner), c, labels, 3, 3)
	for _, reps := range []int{2, 4} {
		s := core.Boost(inner, reps)
		got := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 3, 3)
		// Linear in t with small framing overhead per repetition.
		if got < reps*base || got > reps*(base+16) {
			t.Errorf("t=%d: boosted cert %d bits, base %d", reps, got, base)
		}
	}
}

func TestBoostRejectsTruncatedCertificates(t *testing.T) {
	c := graph.NewConfig(graph.Path(2))
	for v := range c.States {
		c.States[v].Data = []byte("d")
	}
	s := core.Boost(uniform.NewRPLS(), 3)
	labels := make([]core.Label, 2)
	view := core.ViewOf(c, 0)
	certs := s.Certs(view, labels[0], prng.New(3))
	truncated := certs[0].Truncate(certs[0].Len() / 2)
	if s.Decide(view, labels[0], []core.Cert{truncated}) {
		t.Error("truncated boosted certificate accepted")
	}
}
