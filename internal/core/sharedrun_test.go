package core_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// echoShared verifies shared-coin plumbing: every node emits the public
// stream's first value; receivers check it matches their own draw.
type echoShared struct{}

func (echoShared) Name() string   { return "echo-shared" }
func (echoShared) OneSided() bool { return true }

func (echoShared) Label(c *graph.Config) ([]core.Label, error) {
	return make([]core.Label, c.G.N()), nil
}

func (echoShared) CertsShared(view core.View, _ core.Label, shared, _ *prng.Rand) []core.Cert {
	v := shared.Uint64()
	var w bitstring.Writer
	w.WriteUint(v, 64)
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		certs[i] = w.String()
	}
	return certs
}

func (echoShared) DecideShared(view core.View, _ core.Label, received []core.Cert, shared *prng.Rand) bool {
	want := shared.Uint64()
	if len(received) != view.Deg {
		return false
	}
	for _, cert := range received {
		r := bitstring.NewReader(cert)
		got, err := r.ReadUint(64)
		if err != nil || got != want {
			return false
		}
	}
	return true
}

func TestSharedCoinsAreGloballyConsistent(t *testing.T) {
	// If any node saw a different public stream, echoShared would reject.
	rng := prng.New(1)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, rng.Intn(n), rng)
		c := graph.NewConfig(g)
		res, err := core.RunShared(echoShared{}, c, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d: shared coin streams inconsistent across nodes", trial)
		}
		if res.Stats.MaxCertBits != 64 {
			t.Errorf("MaxCertBits = %d, want 64", res.Stats.MaxCertBits)
		}
		if res.Stats.Messages != 2*g.M() {
			t.Errorf("Messages = %d, want %d", res.Stats.Messages, 2*g.M())
		}
	}
}

func TestSharedDiffersAcrossRounds(t *testing.T) {
	// Different round seeds must give different public coins; verify via
	// the uniform shared scheme accepting under both (completeness) while
	// the raw streams differ.
	a := core.SharedCoins(1).Uint64()
	b := core.SharedCoins(2).Uint64()
	if a == b {
		t.Error("round seeds 1 and 2 produced identical first public draws")
	}
}

func TestEstimateAcceptanceShared(t *testing.T) {
	c := graph.NewConfig(graph.Path(4))
	for v := range c.States {
		c.States[v].Data = []byte("same")
	}
	s := uniform.NewSharedRPLS()
	labels := make([]core.Label, 4)
	if rate := core.EstimateAcceptanceShared(s, c, labels, 50, 3); rate != 1.0 {
		t.Errorf("legal shared acceptance %v, want 1.0", rate)
	}
	if got := core.EstimateAcceptanceShared(s, c, labels, 0, 3); got != 0 {
		t.Errorf("zero trials should return 0, got %v", got)
	}
	c.States[2].Data = []byte("diff")
	if rate := core.EstimateAcceptanceShared(s, c, labels, 400, 5); rate > 1.0/3 {
		t.Errorf("illegal shared acceptance %v, want <= 1/3", rate)
	}
}
