package core_test

import (
	"fmt"
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
)

// makeCerts builds deg distinct certificates of varying lengths.
func makeCerts(deg int) []core.Cert {
	certs := make([]core.Cert, deg)
	for i := range certs {
		var w bitstring.Writer
		w.WriteGamma(uint64(i + 1))
		for j := 0; j <= i%3; j++ {
			w.WriteUint(uint64(i*31+j), 16)
		}
		certs[i] = w.String()
	}
	return certs
}

func TestPortClassRoundRobin(t *testing.T) {
	for m := 1; m <= 5; m++ {
		for i := 0; i < 20; i++ {
			if got := core.PortClass(i, m); got != i%m {
				t.Fatalf("PortClass(%d, %d) = %d, want %d", i, m, got, i%m)
			}
		}
	}
	if core.PortClass(7, 0) != 7 || core.PortClass(7, -1) != 7 {
		t.Error("uncapped PortClass must leave every port its own class")
	}
	// Round-robin balance: class sizes differ by at most one.
	for deg := 1; deg <= 12; deg++ {
		for m := 1; m <= deg+2; m++ {
			sizes := map[int]int{}
			for i := 0; i < deg; i++ {
				sizes[core.PortClass(i, m)]++
			}
			lo, hi := deg, 0
			for _, s := range sizes {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if hi-lo > 1 {
				t.Fatalf("deg=%d m=%d: class sizes unbalanced (%d..%d)", deg, m, lo, hi)
			}
		}
	}
}

func TestCapMergeSplitRoundTrip(t *testing.T) {
	for deg := 0; deg <= 9; deg++ {
		for m := 1; m <= deg+2; m++ {
			t.Run(fmt.Sprintf("deg=%d/m=%d", deg, m), func(t *testing.T) {
				orig := makeCerts(deg)
				merged := core.CapMerge(makeCerts(deg), m)
				if len(merged) != deg {
					t.Fatalf("CapMerge changed arity: %d != %d", len(merged), deg)
				}
				// Class uniformity: every port of a class carries the same
				// message, and splitting it recovers the class members in
				// member port order.
				for k := 0; k < m && k < deg; k++ {
					var wantMembers []core.Cert
					for i := k; i < deg; i += m {
						wantMembers = append(wantMembers, orig[i])
						if !merged[i].Equal(merged[k]) {
							t.Fatalf("port %d differs from its class representative %d", i, k)
						}
					}
					got, err := core.CapSplit(merged[k])
					if err != nil {
						t.Fatalf("CapSplit class %d: %v", k, err)
					}
					if len(got) != len(wantMembers) {
						t.Fatalf("class %d: %d members, want %d", k, len(got), len(wantMembers))
					}
					for j := range got {
						if !got[j].Equal(wantMembers[j]) {
							t.Fatalf("class %d member %d corrupted by round trip", k, j)
						}
					}
				}
			})
		}
	}
}

func TestCapMergeFramesSingletons(t *testing.T) {
	// m >= deg still frames each certificate: the receiver cannot know the
	// sender's degree, so the wire format must be uniform for every m >= 1.
	certs := makeCerts(3)
	merged := core.CapMerge(makeCerts(3), 7)
	for i := range merged {
		if merged[i].Equal(certs[i]) {
			t.Fatalf("port %d: singleton class not framed", i)
		}
		got, err := core.CapSplit(merged[i])
		if err != nil {
			t.Fatalf("port %d: %v", i, err)
		}
		if len(got) != 1 || !got[0].Equal(certs[i]) {
			t.Fatalf("port %d: singleton round trip lost the payload", i)
		}
	}
	// m <= 0 is the uncapped identity.
	if un := core.CapMerge(makeCerts(3), 0); !un[1].Equal(certs[1]) {
		t.Error("CapMerge(certs, 0) must return certs untouched")
	}
}

func TestCapSplitRejectsMalformed(t *testing.T) {
	merged := core.CapMerge(makeCerts(4), 2)
	msg := merged[0]
	// Truncation mid-member.
	if _, err := core.CapSplit(msg.Truncate(msg.Len() - 3)); err == nil {
		t.Error("truncated class message parsed")
	}
	// Trailing garbage after the last member.
	var w bitstring.Writer
	w.WriteString(msg)
	w.WriteUint(1, 1)
	if _, err := core.CapSplit(w.String()); err == nil {
		t.Error("trailing bits accepted")
	}
	// Empty message.
	if _, err := core.CapSplit(bitstring.String{}); err == nil {
		t.Error("empty message parsed")
	}
}

func TestCapReplicateElectsMaxLength(t *testing.T) {
	certs := makeCerts(7)
	orig := makeCerts(7)
	rep := core.CapReplicate(certs, 3)
	for k := 0; k < 3; k++ {
		// The elected payload is the max-length member (lowest port on ties)
		// and every member port carries it.
		best := k
		for i := k + 3; i < 7; i += 3 {
			if orig[i].Len() > orig[best].Len() {
				best = i
			}
		}
		for i := k; i < 7; i += 3 {
			if !rep[i].Equal(orig[best]) {
				t.Fatalf("class %d port %d: payload is not the elected representative %d", k, i, best)
			}
		}
	}
	// Uncapped and m >= deg are identities.
	id := core.CapReplicate(makeCerts(5), 0)
	for i, c := range makeCerts(5) {
		if !id[i].Equal(c) {
			t.Fatal("CapReplicate(certs, 0) must be the identity")
		}
	}
	id = core.CapReplicate(makeCerts(5), 5)
	for i, c := range makeCerts(5) {
		if !id[i].Equal(c) {
			t.Fatal("CapReplicate(certs, deg) must be the identity")
		}
	}
}
