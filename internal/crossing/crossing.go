// Package crossing implements the generic lower-bound machinery of §4 of
// the paper and makes it constructive: given a configuration containing r
// pairwise independent isomorphic single-edge gadgets, it hunts for the
// pigeonhole collision the proofs of Propositions 4.3, 4.6 and 4.8
// guarantee, performs the edge crossing of Definition 4.2, and re-runs the
// verifier to observe the fooling.
//
//   - For deterministic schemes (Prop 4.3): if κ < log(r)/2s, two gadgets
//     carry identical label vectors; crossing them changes the predicate's
//     value but not a single local view, so the verifier's decision cannot
//     change.
//
//   - For one-sided randomized schemes (Prop 4.8): if κ < (1/2s)·log log r,
//     two gadgets have identical certificate *supports*; swapping
//     certificates edge by edge shows the crossed configuration is accepted
//     with probability 1.
//
//   - For edge-independent two-sided schemes (Prop 4.6): ε-rounded
//     certificate distributions collide, bounding the acceptance gap.
//
// Run against honest schemes the attack fails (labels are long enough);
// run against the deliberately under-provisioned schemes in this package
// (labels below the bound) it succeeds every time — the observable form of
// Theorems 4.4, 4.7, 5.4, 5.5 and 5.6.
package crossing

import (
	"fmt"
	"sort"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Gadget is a single-edge subgraph H_i = {U, V}; the isomorphisms map the
// U of one gadget to the U of another (and V to V), so gadget families must
// be built port-preservingly (the generators in package graph are).
type Gadget struct {
	U, V int
}

// PathGadgets returns the gadget family from the proof of Theorem 5.1 on
// the n-node path: H_i = {u_{3i}, u_{3i+1}} for i = 1..⌊n/3⌋−1. Spacing by
// three keeps every pair of gadgets independent (Definition 4.1).
func PathGadgets(n int) []Gadget {
	var out []Gadget
	for i := 1; 3*i+1 < n; i++ {
		out = append(out, Gadget{U: 3 * i, V: 3*i + 1})
	}
	return out
}

// RingGadgets returns the family used by Theorems 5.2 and 5.4 on graphs
// whose first c nodes form a consistently ported ring (CycleWithChords,
// CycleWithHub): H_i = {v_{3i}, v_{3i+1}}, i = 1..⌊c/3⌋−1.
func RingGadgets(c int) []Gadget {
	var out []Gadget
	for i := 1; 3*i+1 < c; i++ {
		out = append(out, Gadget{U: 3 * i, V: 3*i + 1})
	}
	return out
}

// ChainGadgets returns the Theorem 5.6 family on ChainOfCycles(n, c): one
// edge {base+1, base+2} inside each cycle, away from the chain joints.
func ChainGadgets(n, c int) []Gadget {
	var out []Gadget
	for _, base := range graph.CycleBases(n, c) {
		out = append(out, Gadget{U: base + 1, V: base + 2})
	}
	return out
}

// Pair converts a gadget pair into the EdgePair of the crossing operator,
// honoring the σ_j ∘ σ_i⁻¹ orientation (U→U, V→V).
func Pair(a, b Gadget) graph.EdgePair {
	return graph.EdgePair{U1: a.U, V1: a.V, U2: b.U, V2: b.V}
}

// Attack reports the outcome of one crossing attack.
type Attack struct {
	Collision      bool    // a colliding, independent, port-preserving pair exists
	I, J           int     // indices of the collided gadgets
	Gadgets        int     // r: size of the family searched
	LabelBits      int     // κ under attack (max label bits)
	CrossedLegal   bool    // predicate value of the crossed configuration
	Fooled         bool    // verifier's decision did not change despite the predicate changing
	AcceptanceRate float64 // randomized attacks: acceptance of the crossed configuration
}

// AttackPLS performs the Proposition 4.3 attack on a deterministic scheme:
// label the legal configuration honestly, find two gadgets whose label
// vectors collide, cross them, and re-run the verifier with the unchanged
// labels.
func AttackPLS(s core.PLS, pred core.Predicate, cfg *graph.Config, gadgets []Gadget) (Attack, error) {
	labels, err := s.Label(cfg)
	if err != nil {
		return Attack{}, fmt.Errorf("attack prover: %w", err)
	}
	atk := Attack{Gadgets: len(gadgets), LabelBits: core.MaxBits(labels)}
	i, j, ok := findLabelCollision(cfg, labels, gadgets)
	if !ok {
		return atk, nil // labels are long enough; the pigeonhole has room
	}
	atk.Collision, atk.I, atk.J = true, i, j
	crossed, err := cfg.CrossConfigAll([]graph.EdgePair{Pair(gadgets[i], gadgets[j])})
	if err != nil {
		return atk, fmt.Errorf("crossing: %w", err)
	}
	atk.CrossedLegal = pred.Eval(crossed)
	res := engine.Verify(engine.FromPLS(s), crossed, labels)
	// The original configuration is legal and honestly labeled, hence
	// accepted; the attack succeeds when the crossed one is accepted too
	// although the predicate flipped.
	atk.Fooled = res.Accepted && !atk.CrossedLegal
	return atk, nil
}

// findLabelCollision searches for gadgets i < j whose concatenated label
// vectors (in σ-order: U then V) are identical, the crossing is
// port-preserving, and the gadgets are independent.
func findLabelCollision(cfg *graph.Config, labels []core.Label, gadgets []Gadget) (int, int, bool) {
	seen := make(map[string][]int)
	for idx, g := range gadgets {
		key := labels[g.U].Key() + "\x00" + labels[g.V].Key()
		seen[key] = append(seen[key], idx)
	}
	var keys []string
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := seen[k]
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				i, j := group[a], group[b]
				p := Pair(gadgets[i], gadgets[j])
				if !cfg.G.PortPreserving(p) {
					continue
				}
				if !cfg.G.Independent(
					[]int{p.U1, p.V1}, []int{p.U2, p.V2}) {
					continue
				}
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// AttackRPLSOneSided performs the Proposition 4.8 attack: estimate the
// certificate support of each gadget's edge (both directions) by sampling,
// find two gadgets with identical supports, cross them, and measure the
// acceptance probability of the crossed configuration under the original
// labels.
func AttackRPLSOneSided(s core.RPLS, pred core.Predicate, cfg *graph.Config, gadgets []Gadget, samples, trials int, seed uint64) (Attack, error) {
	labels, err := s.Label(cfg)
	if err != nil {
		return Attack{}, fmt.Errorf("attack prover: %w", err)
	}
	atk := Attack{Gadgets: len(gadgets), LabelBits: core.MaxBits(labels)}
	i, j, ok := findSupportCollision(s, cfg, labels, gadgets, samples, seed)
	if !ok {
		return atk, nil
	}
	atk.Collision, atk.I, atk.J = true, i, j
	crossed, err := cfg.CrossConfigAll([]graph.EdgePair{Pair(gadgets[i], gadgets[j])})
	if err != nil {
		return atk, fmt.Errorf("crossing: %w", err)
	}
	atk.CrossedLegal = pred.Eval(crossed)
	sum, err := engine.Estimate(engine.FromRPLS(s), crossed,
		engine.WithLabels(labels), engine.WithTrials(trials), engine.WithSeed(seed+1),
		engine.WithParallelism(0)) // bit-identical to serial for any worker count
	if err != nil {
		return atk, fmt.Errorf("acceptance estimate: %w", err)
	}
	atk.AcceptanceRate = sum.Acceptance
	atk.Fooled = !atk.CrossedLegal && atk.AcceptanceRate > 1.0/2
	return atk, nil
}

// findSupportCollision matches gadgets by the sampled support of the
// certificates their endpoints send across the gadget edge.
func findSupportCollision(s core.RPLS, cfg *graph.Config, labels []core.Label, gadgets []Gadget, samples int, seed uint64) (int, int, bool) {
	seen := make(map[string][]int)
	for idx, g := range gadgets {
		key := supportKey(s, cfg, labels, g.U, g.V, samples, seed) + "\x00" +
			supportKey(s, cfg, labels, g.V, g.U, samples, seed)
		seen[key] = append(seen[key], idx)
	}
	var keys []string
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := seen[k]
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				i, j := group[a], group[b]
				p := Pair(gadgets[i], gadgets[j])
				if !cfg.G.PortPreserving(p) {
					continue
				}
				if !cfg.G.Independent([]int{p.U1, p.V1}, []int{p.U2, p.V2}) {
					continue
				}
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// supportKey samples the certificates node `from` sends toward node `to`
// and returns a canonical encoding of the observed support set.
func supportKey(s core.RPLS, cfg *graph.Config, labels []core.Label, from, to, samples int, seed uint64) string {
	port, ok := cfg.G.PortTo(from, to)
	if !ok {
		return "?"
	}
	set := make(map[string]bool)
	view := core.ViewOf(cfg, from)
	rng := prng.New(seed).Fork(uint64(from) * 2654435761)
	for t := 0; t < samples; t++ {
		certs := s.Certs(view, labels[from], rng.Fork(uint64(t)))
		if port-1 < len(certs) {
			set[certs[port-1].Key()] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\x01"
	}
	return out
}

// Distribution is an empirical certificate distribution over one directed
// gadget edge.
type Distribution map[string]float64

// EmpiricalDistribution samples the certificate node `from` sends toward
// `to` and returns the relative frequencies.
func EmpiricalDistribution(s core.RPLS, cfg *graph.Config, labels []core.Label, from, to, samples int, seed uint64) Distribution {
	port, ok := cfg.G.PortTo(from, to)
	if !ok {
		return nil
	}
	counts := make(map[string]int)
	view := core.ViewOf(cfg, from)
	rng := prng.New(seed).Fork(uint64(from) * 0x9E3779B9)
	for t := 0; t < samples; t++ {
		certs := s.Certs(view, labels[from], rng.Fork(uint64(t)))
		if port-1 < len(certs) {
			counts[certs[port-1].Key()]++
		}
	}
	d := make(Distribution, len(counts))
	for k, c := range counts {
		d[k] = float64(c) / float64(samples)
	}
	return d
}

// RoundedKey returns the ε-rounded signature of the distribution used in
// the proof of Proposition 4.6: every probability is rounded down to a
// multiple of eps; distributions with equal signatures differ by at most
// |support|·eps on every event.
func (d Distribution) RoundedKey(eps float64) string {
	if eps <= 0 {
		eps = 1e-9
	}
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		bucket := int(d[k] / eps)
		if bucket > 0 { // zero buckets are indistinguishable from absence
			out += fmt.Sprintf("%s=%d;", k, bucket)
		}
	}
	return out
}

// TotalVariation returns the total-variation distance between two
// empirical distributions.
func TotalVariation(a, b Distribution) float64 {
	sum := 0.0
	for k, pa := range a {
		diff := pa - b[k]
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	for k, pb := range b {
		if _, ok := a[k]; !ok {
			sum += pb
		}
	}
	return sum / 2
}
