package crossing_test

import (
	"testing"

	"rpls/internal/crossing"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/cycle"
)

func TestModularChainCompleteness(t *testing.T) {
	for _, tc := range []struct{ n, c, bits int }{
		{16, 4, 1}, {24, 4, 3}, {32, 8, 2},
	} {
		g, err := graph.ChainOfCycles(tc.n, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		cfg := graph.NewConfig(g)
		s := crossing.ModularChainCyclePLS{C: tc.c, Bits: tc.bits}
		res, err := engine.Run(engine.FromPLS(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Errorf("n=%d c=%d bits=%d: legal chain rejected, votes %v",
				tc.n, tc.c, tc.bits, res.Votes)
		}
	}
}

func TestModularChainAttackBelowBound(t *testing.T) {
	// Theorem 5.6 constructive: r = 8 cycles, 1-bit ids → cycles 0 and 2
	// share id; crossing them fuses a 2c-cycle the verifier cannot see.
	const n, c, bits = 32, 4, 1
	g, err := graph.ChainOfCycles(n, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	s := crossing.ModularChainCyclePLS{C: c, Bits: bits}
	pred := cycle.AtMostPredicate{C: c}
	gadgets := crossing.ChainGadgets(n, c)
	atk, err := crossing.AttackPLS(s, pred, cfg, gadgets)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Collision {
		t.Fatal("no id collision among 8 cycles with 1-bit ids")
	}
	if atk.CrossedLegal {
		t.Fatal("crossing failed to create a long cycle")
	}
	if !atk.Fooled {
		t.Error("weak chain scheme not fooled below the Ω(log n/c) bound")
	}
}

func TestModularChainResistsAboveBound(t *testing.T) {
	// With 2^bits >= r all ids are distinct: no collision, no fooling.
	const n, c, bits = 32, 4, 4 // 8 cycles, 16 ids
	g, err := graph.ChainOfCycles(n, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	s := crossing.ModularChainCyclePLS{C: c, Bits: bits}
	atk, err := crossing.AttackPLS(s, cycle.AtMostPredicate{C: c}, cfg, crossing.ChainGadgets(n, c))
	if err != nil {
		t.Fatal(err)
	}
	if atk.Collision {
		t.Error("distinct ids collided")
	}
	if atk.Fooled {
		t.Error("scheme above the bound was fooled")
	}
}

func TestModularChainRejectsManualSplice(t *testing.T) {
	// Direct check without the attack machinery: cross two DIFFERENT-id
	// cycles; the splice edge connects distinct ids at ring positions, so
	// the nodes there see only 1 same-id ring neighbor and reject.
	const n, c, bits = 16, 4, 2 // 4 cycles, ids 0..3 distinct
	g, err := graph.ChainOfCycles(n, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	s := crossing.ModularChainCyclePLS{C: c, Bits: bits}
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gadgets := crossing.ChainGadgets(n, c)
	crossed, err := cfg.CrossConfigAll([]graph.EdgePair{crossing.Pair(gadgets[0], gadgets[1])})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Verify(engine.FromPLS(s), crossed, labels).Accepted {
		t.Error("splice across distinct ids accepted")
	}
}
