package crossing_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/crossing"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/cycle"
)

func TestGadgetFamiliesAreIndependentAndPortPreserving(t *testing.T) {
	p := graph.Path(40)
	gs := crossing.PathGadgets(40)
	if len(gs) < 10 {
		t.Fatalf("only %d path gadgets", len(gs))
	}
	for i := 0; i < len(gs); i++ {
		for j := i + 1; j < len(gs); j++ {
			pair := crossing.Pair(gs[i], gs[j])
			if !p.PortPreserving(pair) {
				t.Fatalf("pair (%d,%d) not port-preserving", i, j)
			}
			if !p.Independent([]int{pair.U1, pair.V1}, []int{pair.U2, pair.V2}) {
				t.Fatalf("pair (%d,%d) not independent", i, j)
			}
		}
	}

	hub, err := graph.CycleWithHub(30, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range crossing.RingGadgets(24) {
		if _, ok := hub.PortTo(g.U, g.V); !ok {
			t.Fatalf("ring gadget {%d,%d} is not an edge", g.U, g.V)
		}
	}

	chain, err := graph.ChainOfCycles(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range crossing.ChainGadgets(24, 8) {
		if _, ok := chain.PortTo(g.U, g.V); !ok {
			t.Fatalf("chain gadget {%d,%d} is not an edge", g.U, g.V)
		}
	}
}

func TestModularDistCompletenessOnPaths(t *testing.T) {
	for _, bits := range []int{2, 3, 5} {
		s := crossing.ModularDistPLS{Bits: bits}
		c := graph.NewConfig(graph.Path(50))
		res, err := engine.Run(engine.FromPLS(s), c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Errorf("bits=%d: legal path rejected; votes %v", bits, res.Votes)
		}
	}
}

func TestModularDistRejectsShortCycles(t *testing.T) {
	// Cycles of length not divisible by 2^bits are rejected under the
	// honest prover's path labels (and any labels, by the local-max
	// argument).
	s := crossing.ModularDistPLS{Bits: 3}
	g, err := graph.Cycle(10) // 10 mod 8 != 0
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	pathLabels, err := s.Label(graph.NewConfig(graph.Path(10)))
	if err != nil {
		t.Fatal(err)
	}
	if engine.Verify(engine.FromPLS(s), illegal, pathLabels).Accepted {
		t.Error("10-cycle accepted by mod-8 scheme")
	}
}

func TestAttackPLSBelowTheBoundAlwaysFools(t *testing.T) {
	// Proposition 4.3/Theorem 4.4 made constructive: κ = 2·bits per gadget
	// (two nodes); with r gadgets and 2κ < log₂ r a collision is forced.
	// bits=3 → gadget label vectors have 6 bits → 64 patterns; r = 69
	// gadgets on a 210-node path forces a collision, and the crossing
	// splices out a cycle of length ≡ 0 (mod 8) that the verifier accepts.
	const n = 210
	const bits = 3
	s := crossing.ModularDistPLS{Bits: bits}
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	if len(gadgets) < 1<<(2*bits) {
		t.Fatalf("need > %d gadgets for the pigeonhole, have %d", 1<<(2*bits), len(gadgets))
	}
	atk, err := crossing.AttackPLS(s, acyclicity.Predicate{}, cfg, gadgets)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Collision {
		t.Fatal("pigeonhole collision not found despite r > 2^{2κ}")
	}
	if atk.CrossedLegal {
		t.Fatal("crossing produced a legal configuration; gadget family broken")
	}
	if !atk.Fooled {
		t.Error("verifier was not fooled below the lower bound")
	}
}

func TestAttackPLSAboveTheBoundFails(t *testing.T) {
	// The honest Θ(log n) acyclicity scheme assigns distinct distances
	// along a path: no collision exists and the attack reports failure.
	const n = 210
	cfg := graph.NewConfig(graph.Path(n))
	atk, err := crossing.AttackPLS(acyclicity.NewPLS(), acyclicity.Predicate{}, cfg, crossing.PathGadgets(n))
	if err != nil {
		t.Fatal(err)
	}
	if atk.Collision {
		t.Error("honest scheme produced colliding labels on a path")
	}
	if atk.Fooled {
		t.Error("honest scheme was fooled")
	}
}

func TestAttackThresholdSweep(t *testing.T) {
	// Sweep the label budget across the pigeonhole threshold: below it the
	// attack must succeed, and the transition must be monotone in spirit —
	// once labels are long enough to give every gadget a distinct vector,
	// the attack finds nothing.
	const n = 210
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	r := len(gadgets) // 69
	fooledAt := -1
	safeAt := -1
	for _, bits := range []int{2, 3, 8} {
		atk, err := crossing.AttackPLS(crossing.ModularDistPLS{Bits: bits}, acyclicity.Predicate{}, cfg, gadgets)
		if err != nil {
			t.Fatal(err)
		}
		if 1<<(2*bits) < r {
			// Below the bound: collision guaranteed.
			if !atk.Collision || !atk.Fooled {
				t.Errorf("bits=%d (below bound, r=%d): collision=%v fooled=%v",
					bits, r, atk.Collision, atk.Fooled)
			}
			fooledAt = bits
		} else if !atk.Collision {
			safeAt = bits
		}
	}
	if fooledAt == -1 || safeAt == -1 {
		t.Errorf("sweep did not observe both regimes: fooled at %d, safe at %d", fooledAt, safeAt)
	}
}

func TestAttackRPLSOneSidedBelowBound(t *testing.T) {
	// Proposition 4.8: the compiled mod-dist scheme inherits the collision
	// (identical labels ⇒ identical certificate supports); the crossed
	// configuration is accepted with probability 1.
	const n = 210
	const bits = 3
	s := core.Compile(crossing.ModularDistPLS{Bits: bits})
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	atk, err := crossing.AttackRPLSOneSided(s, acyclicity.Predicate{}, cfg, gadgets, 120, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Collision {
		t.Fatal("support collision not found")
	}
	if atk.CrossedLegal {
		t.Fatal("crossed configuration unexpectedly legal")
	}
	if atk.AcceptanceRate != 1.0 {
		t.Errorf("crossed acceptance %v, want 1.0 (one-sided support swap)", atk.AcceptanceRate)
	}
	if !atk.Fooled {
		t.Error("one-sided RPLS not fooled below the bound")
	}
}

func TestAttackRPLSHonestSchemeResists(t *testing.T) {
	const n = 120
	s := acyclicity.NewRPLS()
	cfg := graph.NewConfig(graph.Path(n))
	atk, err := crossing.AttackRPLSOneSided(s, acyclicity.Predicate{}, cfg, crossing.PathGadgets(n), 60, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if atk.Fooled {
		t.Error("honest randomized scheme fooled")
	}
}

func TestAttackCycleAtLeastTheorem54(t *testing.T) {
	// Theorem 5.4 scenario on the hub graph: the mod-index scheme with
	// 2^bits | c accepts the crossed configuration although every simple
	// cycle shrank below c.
	const n = 40
	const c = 32 // divisible by 8 = 2^3
	const bits = 3
	g, err := graph.CycleWithHub(n, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	s := crossing.ModularIndexCyclePLS{C: c, Bits: bits, FindCycle: cycle.FindCycleAtLeast}
	pred := cycle.AtLeastPredicate{C: c}
	gadgets := crossing.RingGadgets(c)
	atk, err := crossing.AttackPLS(s, pred, cfg, gadgets)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Collision {
		t.Fatal("no index collision on the ring")
	}
	if atk.CrossedLegal {
		t.Fatal("crossing left a >= c cycle")
	}
	if !atk.Fooled {
		t.Error("mod-index scheme not fooled (Theorem 5.4 demonstration failed)")
	}
	// The honest scheme on the same instance resists.
	honest, err := crossing.AttackPLS(cycle.NewPLS(c), pred, cfg, gadgets)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Fooled {
		t.Error("honest cycle-at-least scheme fooled")
	}
}

func TestEpsRoundedDistributionsCollide(t *testing.T) {
	// Proposition 4.6 ingredient: gadgets with equal labels have equal
	// (hence equal ε-rounded) certificate distributions, and distributions
	// with equal rounded keys are close in total variation.
	const n = 210
	const bits = 3
	s := core.Compile(crossing.ModularDistPLS{Bits: bits})
	cfg := graph.NewConfig(graph.Path(n))
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gadgets := crossing.PathGadgets(n)
	// Gadgets 1 and 1+2^bits·? : positions 3 and 3+24k... find a genuinely
	// colliding pair via the attack machinery first.
	atk, err := crossing.AttackPLS(crossing.ModularDistPLS{Bits: bits}, acyclicity.Predicate{}, cfg, gadgets)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Collision {
		t.Fatal("no collision")
	}
	gi, gj := gadgets[atk.I], gadgets[atk.J]
	const samples = 400
	di := crossing.EmpiricalDistribution(s, cfg, labels, gi.U, gi.V, samples, 3)
	dj := crossing.EmpiricalDistribution(s, cfg, labels, gj.U, gj.V, samples, 3)
	if tv := crossing.TotalVariation(di, dj); tv > 0.15 {
		t.Errorf("colliding gadgets have TV distance %v", tv)
	}
	const eps = 0.05
	if di.RoundedKey(eps) != dj.RoundedKey(eps) {
		t.Log("rounded keys differ (sampling noise at bucket boundaries is allowed)")
	}
	// A non-colliding pair (different residues) must be far apart.
	other := gadgets[(atk.I+1)%len(gadgets)]
	dk := crossing.EmpiricalDistribution(s, cfg, labels, other.U, other.V, samples, 3)
	if tv := crossing.TotalVariation(di, dk); tv < 0.5 {
		t.Errorf("distinct-residue gadgets have TV distance only %v", tv)
	}
}

func TestAttackChainOfCyclesTheorem56(t *testing.T) {
	// Theorem 5.6 (Figure 5): on the chain of c-cycles, crossing two edges
	// from distinct cycles fuses them into a 2c-cycle. The mod-dist
	// acyclicity machinery does not apply; here we check the crossing
	// geometry and that the honest universal scheme's predicate flips.
	const n = 24
	const c = 8
	g, err := graph.ChainOfCycles(n, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	pred := cycle.AtMostPredicate{C: c}
	if !pred.Eval(cfg) {
		t.Fatal("chain should satisfy cycle-at-most-c")
	}
	gadgets := crossing.ChainGadgets(n, c)
	crossed, err := cfg.CrossConfigAll([]graph.EdgePair{crossing.Pair(gadgets[0], gadgets[1])})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Eval(crossed) {
		t.Error("crossing two cycles should create a cycle longer than c")
	}
	if got := cycle.LongestCycle(crossed.G); got != 2*c {
		t.Errorf("fused cycle has %d nodes, want %d", got, 2*c)
	}
}
