package crossing

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// This file holds deliberately under-provisioned schemes: correct provers
// paired with verifiers whose labels are shorter than the lower bounds of
// §4 and §5 allow. They are the objects the crossing attacks demolish,
// turning the paper's pigeonhole arguments into observable events.

// ModularDistPLS is a b-bit scheme for acyclicity that stores distances
// modulo M = 2^b. Every node checks that all neighbors sit at d±1 (mod M)
// and that at most one neighbor sits at d−1 (mod M). Forests are always
// accepted; a cycle is accepted if and only if its length is ≡ 0 (mod M) —
// so when b < log(r)/2s the crossing attack of Proposition 4.3 finds two
// path positions with equal residues and splices out an accepted cycle.
type ModularDistPLS struct {
	Bits int
}

var _ core.PLS = ModularDistPLS{}

// Name implements core.PLS.
func (s ModularDistPLS) Name() string {
	return fmt.Sprintf("acyclicity-mod-dist(%d bits)", s.Bits)
}

func (s ModularDistPLS) modulus() uint64 { return 1 << uint(s.Bits) }

// Label assigns BFS depth mod 2^b per component.
func (s ModularDistPLS) Label(c *graph.Config) ([]core.Label, error) {
	if s.Bits < 2 || s.Bits > 30 {
		return nil, fmt.Errorf("crossing: ModularDistPLS needs 2 <= bits <= 30, got %d", s.Bits)
	}
	if c.G.M() != c.G.N()-len(c.G.Components()) {
		return nil, core.ErrIllegalConfig // not a forest
	}
	m := s.modulus()
	out := make([]core.Label, c.G.N())
	for _, comp := range c.G.Components() {
		dist := c.G.BFSDist(comp[0])
		for _, v := range comp {
			var w bitstring.Writer
			w.WriteUint(uint64(dist[v])%m, s.Bits)
			out[v] = w.String()
		}
	}
	return out, nil
}

// Verify implements core.PLS.
func (s ModularDistPLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	m := s.modulus()
	d, ok := readMod(own, s.Bits, m)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	preds := 0
	for _, nl := range nbrs {
		nd, ok := readMod(nl, s.Bits, m)
		if !ok {
			return false
		}
		switch nd {
		case (d + 1) % m:
			// successor; several allowed (tree branching)
		case (d + m - 1) % m:
			preds++
		default:
			return false
		}
		// With m == 2 the two cases coincide; treat as a predecessor too.
		if m == 2 && nd == (d+1)%m {
			continue
		}
	}
	return preds <= 1
}

func readMod(l core.Label, bits int, m uint64) (uint64, bool) {
	r := bitstring.NewReader(l)
	v, err := r.ReadUint(bits)
	if err != nil || r.Remaining() != 0 || v >= m {
		return 0, false
	}
	return v, true
}

// ModularIndexCyclePLS is a scheme for cycle-at-least-c that stores cycle
// indices modulo M = 2^b (plus an exact 32-bit distance-to-cycle, which is
// not where the Theorem 5.4 bound bites). The wrap check degenerates to
// +1 (mod M), so any cycle whose length is divisible by M verifies — the
// verifier can no longer count to c. The prover only labels instances
// whose witness cycle length is divisible by M.
type ModularIndexCyclePLS struct {
	C    int
	Bits int
	// FindCycle locates a witness cycle of length >= C; injected to avoid
	// an import cycle with the schemes package. It must return the cycle
	// as an ordered node sequence or nil.
	FindCycle func(g *graph.Graph, c int) []int
}

var _ core.PLS = ModularIndexCyclePLS{}

// Name implements core.PLS.
func (s ModularIndexCyclePLS) Name() string {
	return fmt.Sprintf("cycle-at-least-%d-mod-index(%d bits)", s.C, s.Bits)
}

func (s ModularIndexCyclePLS) modulus() uint64 { return 1 << uint(s.Bits) }

// Label marks a witness cycle with indices mod 2^b and BFS distances to it.
func (s ModularIndexCyclePLS) Label(c *graph.Config) ([]core.Label, error) {
	if s.Bits < 1 || s.Bits > 30 {
		return nil, fmt.Errorf("crossing: ModularIndexCyclePLS needs 1 <= bits <= 30")
	}
	if s.FindCycle == nil {
		return nil, fmt.Errorf("crossing: ModularIndexCyclePLS.FindCycle not set")
	}
	cyc := s.FindCycle(c.G, s.C)
	if cyc == nil {
		return nil, core.ErrIllegalConfig
	}
	m := s.modulus()
	if uint64(len(cyc))%m != 0 {
		return nil, fmt.Errorf("crossing: witness cycle length %d not divisible by modulus %d", len(cyc), m)
	}
	n := c.G.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for i, v := range cyc {
		idx[v] = i
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := append([]int(nil), cyc...)
	for _, v := range cyc {
		dist[v] = 0
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 1; p <= c.G.Degree(v); p++ {
			u := c.G.Neighbor(v, p).To
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	out := make([]core.Label, n)
	for v := 0; v < n; v++ {
		if dist[v] == -1 {
			return nil, fmt.Errorf("crossing: configuration not connected")
		}
		var w bitstring.Writer
		w.WriteUint(uint64(dist[v]), 32)
		if idx[v] >= 0 {
			w.WriteUint(uint64(idx[v])%m, s.Bits)
		} else {
			w.WriteUint(0, s.Bits)
		}
		out[v] = w.String()
	}
	return out, nil
}

// ModularChainCyclePLS is a scheme for cycle-at-most-c on ChainOfCycles
// configurations that identifies each constituent cycle by its index
// modulo M = 2^b. A node is labeled (cycle id mod M, position in cycle);
// locally it checks that exactly two neighbors share its id with positions
// ±1 (mod c) — its ring — and that every other neighbor carries a
// different id. With M ≥ r = n/c ids are distinct and crossing two rings
// is always caught at the splice (ids differ); with M < r two rings share
// an id, and crossing them fuses a 2c-cycle whose splice looks exactly
// like a ring edge — the Theorem 5.6 Ω(log n/c) bound made constructive.
type ModularChainCyclePLS struct {
	C    int
	Bits int
}

var _ core.PLS = ModularChainCyclePLS{}

// Name implements core.PLS.
func (s ModularChainCyclePLS) Name() string {
	return fmt.Sprintf("cycle-at-most-%d-mod-chain(%d bits)", s.C, s.Bits)
}

func (s ModularChainCyclePLS) modulus() uint64 { return 1 << uint(s.Bits) }

// Label assigns (cycle index mod 2^b, position) on a ChainOfCycles(n, C)
// configuration; every constituent cycle must have exactly C nodes.
func (s ModularChainCyclePLS) Label(c *graph.Config) ([]core.Label, error) {
	if s.Bits < 1 || s.Bits > 30 {
		return nil, fmt.Errorf("crossing: ModularChainCyclePLS needs 1 <= bits <= 30")
	}
	n := c.G.N()
	if n%s.C != 0 {
		return nil, fmt.Errorf("crossing: %d nodes do not form whole %d-cycles", n, s.C)
	}
	m := s.modulus()
	out := make([]core.Label, n)
	for idx, base := range graph.CycleBases(n, s.C) {
		for pos := 0; pos < s.C; pos++ {
			var w bitstring.Writer
			w.WriteUint(uint64(idx)%m, s.Bits)
			w.WriteUint(uint64(pos), 32)
			out[base+pos] = w.String()
		}
	}
	return out, nil
}

type chainLabel struct {
	cid uint64
	pos uint64
}

func (s ModularChainCyclePLS) decodeChain(l core.Label) (chainLabel, bool) {
	r := bitstring.NewReader(l)
	var out chainLabel
	var err error
	if out.cid, err = r.ReadUint(s.Bits); err != nil {
		return out, false
	}
	if out.pos, err = r.ReadUint(32); err != nil || r.Remaining() != 0 {
		return out, false
	}
	return out, out.pos < uint64(s.C)
}

// Verify implements core.PLS.
func (s ModularChainCyclePLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := s.decodeChain(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ringNeighbors := 0
	cc := uint64(s.C)
	for _, nl := range nbrs {
		n, ok := s.decodeChain(nl)
		if !ok {
			return false
		}
		if n.cid == me.cid {
			if n.pos != (me.pos+1)%cc && (n.pos+1)%cc != me.pos {
				return false // same ring but not adjacent on it
			}
			ringNeighbors++
		}
	}
	return ringNeighbors == 2
}

type modIdxLabel struct {
	dist uint64
	idx  uint64
}

func (s ModularIndexCyclePLS) decode(l core.Label) (modIdxLabel, bool) {
	r := bitstring.NewReader(l)
	var out modIdxLabel
	var err error
	if out.dist, err = r.ReadUint(32); err != nil {
		return out, false
	}
	if out.idx, err = r.ReadUint(s.Bits); err != nil || r.Remaining() != 0 {
		return out, false
	}
	return out, true
}

// Verify implements core.PLS.
func (s ModularIndexCyclePLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := s.decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]modIdxLabel, view.Deg)
	for i, nl := range nbrs {
		n, ok := s.decode(nl)
		if !ok {
			return false
		}
		ns[i] = n
	}
	m := s.modulus()
	if me.dist > 0 {
		for _, n := range ns {
			if n.dist == me.dist-1 {
				return true
			}
		}
		return false
	}
	hasSucc, hasPred := false, false
	for _, n := range ns {
		if n.dist != 0 {
			continue
		}
		if n.idx == (me.idx+1)%m {
			hasSucc = true
		}
		if me.idx == (n.idx+1)%m {
			hasPred = true
		}
	}
	return hasSucc && hasPred
}
