// Package maporder is a maporder fixture: map ranges feeding
// order-sensitive output are flagged, the sorted-keys idiom and order-free
// bodies are not.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// CollectValues appends map values in iteration order — flagged.
func CollectValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration feeds order-sensitive output"
		out = append(out, v)
	}
	return out
}

// Dump writes in iteration order — flagged.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration feeds order-sensitive output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Join builds a string in iteration order — flagged.
func Join(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration feeds order-sensitive output"
		s += k
	}
	return s
}

// SortedValues is the sanctioned fix: collect the keys (exempt), sort,
// index the map. Nothing here is flagged.
func SortedValues(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Sum folds commutatively — order-free, not flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes only to another map — order-free for distinct values, and
// genuinely order-dependent sites use the escape hatch.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Allowed demonstrates the escape hatch on a site the analyzer would flag.
func Allowed(m map[string]int) []int {
	var out []int
	//plsvet:allow maporder — fixture demonstrating the escape hatch
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
