// Package meterflow is a meterflow fixture mounted outside
// rpls/internal/engine: writes to the engine's metering types are flagged,
// reads and zero-value construction are not.
package meterflow

import "rpls/internal/engine"

// Cook tries every way of cooking the books — all flagged.
func Cook(st *engine.Stats, sum *engine.Summary) {
	st.MaxCertBits = 1                     // want "write to engine.Stats.MaxCertBits outside the engine"
	st.TotalWireBits += 64                 // want "write to engine.Stats.TotalWireBits outside the engine"
	st.Messages++                          // want "write to engine.Stats.Messages outside the engine"
	sum.TotalBits = 0                      // want "write to engine.Summary.TotalBits outside the engine"
	forged := engine.Stats{MaxPortBits: 3} // want "construction of engine.Stats with field values outside the engine"
	*st = forged
}

// Read consumes measurements — reads are free, and so is the zero value.
func Read(st engine.Stats) (int64, engine.Stats) {
	perEdge := st.TotalWireBits / int64(max(st.Messages, 1))
	return perEdge, engine.Stats{}
}

// Justified demonstrates the escape hatch.
func Justified(st *engine.Stats) {
	//plsvet:allow meterflow — fixture demonstrating the escape hatch
	st.Messages = 0
}
