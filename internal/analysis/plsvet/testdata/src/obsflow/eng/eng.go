// Package eng is an obsflow fixture mounted at a deterministic import path
// (under rpls/internal/engine/): telemetry below must be write-only, and
// wall-clock reads must go through the obs clock seam.
package eng

import (
	"time"

	"rpls/internal/obs"
)

// Write-only handles: constructors are part of the allowed surface.
var (
	trials = obs.NewCounter("fixture.trials")
	depth  = obs.NewGauge("fixture.depth")
	nanos  = obs.NewHistogram("fixture.batch", "ns")
)

// Instrument exercises every sanctioned recording call: none may be flagged.
func Instrument(n int) {
	trials.Inc()
	trials.Add(uint64(n))
	depth.Set(int64(n))
	depth.SetMax(int64(n))
	nanos.Observe(int64(n))

	t0 := nanos.Start()
	nanos.Stop(t0)

	sp := obs.Begin("fixture.round")
	sp.A, sp.B = int64(n), 0 // span field writes are writes, not read-backs
	obs.End(sp)

	if obs.Enabled() { // the gate itself is part of the write path
		trials.Inc()
	}
	start := obs.Clock() // the sanctioned clock seam
	_ = obs.Since(start)
	// Conversions into the opaque Time domain (lease-deadline arithmetic)
	// are neither read-backs nor clock reads.
	deadline := start + obs.Time(time.Millisecond)
	_ = deadline
}

// Cheat reads telemetry and the wall clock back inside the engine: every
// site below must be flagged.
func Cheat() int64 {
	v := int64(trials.Value())   // want "call to obs.Value in deterministic package"
	s := obs.TakeSnapshot()      // want "call to obs.TakeSnapshot in deterministic package"
	t := time.Now().UnixNano()   // want "call to time.Now: wall-clock read outside"
	d := time.Since(time.Time{}) // want "call to time.Since: wall-clock read outside"
	v += int64(len(s.Counters)) + t + int64(d)

	// The escape hatch: a justified exception is honored.
	v += time.Now().Unix() //plsvet:allow obsflow — fixture demonstrating the escape hatch
	return v
}
