// Package free is an obsflow fixture mounted outside the deterministic set
// (under rpls/cmd/): reading telemetry back is fine here — CLIs print
// snapshots — but the wall clock is still barred module-wide in favor of
// the obs clock seam.
package free

import (
	"time"

	"rpls/internal/obs"
)

// Report drives the read surface a CLI legitimately uses.
func Report() uint64 {
	obs.SetEnabled(true)
	snap := obs.TakeSnapshot()
	start := obs.Clock()
	_ = obs.Since(start)
	return snap.Counter("fixture.trials")
}

// Drift still may not read the wall clock directly.
func Drift() int64 {
	return time.Now().UnixNano() // want "call to time.Now: wall-clock read outside"
}
