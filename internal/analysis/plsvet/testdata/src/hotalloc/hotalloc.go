// Package hotalloc is a hotalloc fixture: allocating constructs inside
// //pls:hotpath functions are flagged; un-annotated functions and justified
// amortized grows are not.
package hotalloc

import "fmt"

type buf struct {
	votes []bool
	log   string
}

// Hot is the annotated hot path: every allocating construct is flagged.
//
//pls:hotpath
func Hot(b *buf, n int) {
	b.votes = make([]bool, n)         // want "make in //pls:hotpath function Hot allocates"
	p := new(int)                     // want "new in //pls:hotpath function Hot allocates"
	b.votes = append(b.votes, true)   // want "append in //pls:hotpath function Hot allocates"
	s := fmt.Sprintf("n=%d", n)       // want "fmt.Sprintf in //pls:hotpath function Hot allocates"
	b.log = s + "!"                   // want "string concatenation in //pls:hotpath function Hot allocates"
	b.log += "x"                      // want "string concatenation in //pls:hotpath function Hot allocates"
	f := func() { b.votes[0] = true } // want "closure in //pls:hotpath function Hot may allocate its captures"
	f()
	_ = p
}

// Grow shows the sanctioned amortized pattern: a capacity-guarded grow with
// a justification is exempt; steady-state statements are clean.
//
//pls:hotpath
func Grow(b *buf, n int) {
	if cap(b.votes) < n {
		b.votes = make([]bool, n) //plsvet:allow hotalloc — capacity-guarded grow, amortized across rounds
	}
	b.votes = b.votes[:n]
	for i := range b.votes {
		b.votes[i] = false
	}
}

// Cold is not annotated: it may allocate freely.
func Cold(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%d", i))
	}
	return out
}
