// Package fabric is a detrand fixture mounted under
// rpls/internal/campaign/fabric/: the distributed-campaign transport sits
// inside the deterministic zone on purpose, so ambient randomness and
// wall-clock reads are flagged even though the package talks to a
// network. Lease deadlines read time through the audited obs.Clock seam,
// which must pass clean.
package fabric

import (
	"math/rand" // want "import of math/rand in deterministic package"
	"time"

	"rpls/internal/obs"
)

// Deadline computes a lease deadline the sanctioned way: an obs.Clock
// reading plus a duration, never a wall-clock read.
func Deadline(ttl time.Duration) obs.Time {
	return obs.Clock() + obs.Time(ttl)
}

// Expired compares against the seam clock; durations and timers
// (time.NewTimer, time.NewTicker) stay legal — only wall-clock reads and
// ambient coins are not.
func Expired(deadline obs.Time) bool {
	return deadline < obs.Clock()
}

// Cheat seeds scheduling from ambient sources: every source below is a
// finding.
func Cheat() int64 {
	jitter := rand.Int63()       // the import is the finding; uses are not re-flagged
	now := time.Now().UnixNano() // want "call to time.Now in deterministic package"

	// The escape hatch: a justified, audited exception is honored.
	now ^= time.Now().Unix() //plsvet:allow detrand — fixture demonstrating the audited escape hatch
	return jitter + now
}
