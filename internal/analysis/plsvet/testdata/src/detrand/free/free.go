// Package free is a detrand fixture mounted at a non-deterministic import
// path (under rpls/cmd/), where ambient randomness and clocks are fine:
// nothing here may be flagged.
package free

import (
	"math/rand"
	"time"
)

// Jitter is allowed to use whatever it likes outside the deterministic set.
func Jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Since(time.Now()) + 1)))
}
