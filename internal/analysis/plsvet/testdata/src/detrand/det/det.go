// Package det is a detrand fixture mounted at a deterministic import path
// (under rpls/internal/engine/), so every ambient-randomness construct
// below must be flagged.
package det

import (
	crand "crypto/rand" // want "import of crypto/rand in deterministic package"
	"math/rand"         // want "import of math/rand in deterministic package"
	"os"
	"time"

	"rpls/internal/prng"
)

// Seed draws from every forbidden source and one legitimate one.
func Seed() uint64 {
	s := uint64(rand.Int63())              // the import is the finding; uses are not re-flagged
	s ^= uint64(time.Now().UnixNano())     // want "call to time.Now in deterministic package"
	s ^= uint64(len(os.Getenv("PLSSEED"))) // want "call to os.Getenv in deterministic package"
	var b [1]byte
	crand.Read(b[:])
	s ^= uint64(b[0])

	// The sanctioned coin source: an explicit-parameter prng stream.
	r := prng.New(42)
	s ^= r.Uint64()

	// The escape hatch: a justified exception is honored.
	s ^= uint64(time.Now().Unix()) //plsvet:allow detrand — fixture demonstrating the escape hatch
	return s
}

// Elapsed uses time legitimately (no wall-clock reads): durations are fine.
func Elapsed(d time.Duration) time.Duration { return d * 2 }
