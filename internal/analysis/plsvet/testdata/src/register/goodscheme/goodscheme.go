// Package goodscheme is a register fixture: it self-registers from init()
// and is imported by the fixture registry, so nothing is flagged.
package goodscheme

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "goodscheme",
		Description: "register-analyzer fixture",
	})
}
