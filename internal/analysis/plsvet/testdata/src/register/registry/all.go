// Package all is the register fixture's registry: it imports goodscheme
// but not badscheme, so the missing blank import is flagged here.
package all // want "registry package rpls/internal/schemes/all does not import scheme package rpls/internal/schemes/badscheme"

import (
	_ "rpls/internal/schemes/goodscheme"
)
