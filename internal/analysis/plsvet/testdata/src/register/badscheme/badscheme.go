// Package badscheme is a register fixture: it has an init, but never calls
// engine.Register, and the fixture registry does not import it.
package badscheme // want "scheme package rpls/internal/schemes/badscheme never calls engine.Register from an init"

import "rpls/internal/engine"

var entries int

func init() {
	// Counting entries is not registering.
	entries = len(engine.Entries())
}
