package plsvet

import "testing"

// TestMapOrder covers the order-sensitivity triggers (outer append, writer
// calls, string building), the exemptions (sorted-keys idiom, commutative
// folds, map-to-map rewrites), and the escape hatch.
func TestMapOrder(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: MapOrder,
		Packages: map[string]string{
			"rpls/internal/campaign/mapfixture": "maporder",
		},
	})
}
