package plsvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// MeterFlow enforces the wire-accounting contract: engine.Stats and
// engine.Summary are measurements, produced exclusively by the engine's
// executors and estimator. If a scheme, driver, or aggregate could write
// those fields, a single misplaced assignment would cook the very numbers
// the paper's Θ(λ) vs O(log λ) separation and the ⌈κ/t⌉ tradeoff are read
// from. Outside rpls/internal/engine the analyzer flags every field write
// (assignment, compound assignment, increment) and every non-zero composite
// literal of the two metering types; reading fields is of course free.
var MeterFlow = &Analyzer{
	Name: "meterflow",
	Doc: "engine.Stats / engine.Summary metering fields may only be written inside " +
		"rpls/internal/engine; everywhere else they are read-only measurements",
	Run: runMeterFlow,
}

// meteredTypes are the engine measurement types whose fields are write-
// protected outside the engine.
var meteredTypes = []string{"Stats", "Summary"}

func runMeterFlow(pass *Pass) error {
	if pass.Path == enginePath || strings.HasPrefix(pass.Path, enginePath+"/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkMeterWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkMeterWrite(pass, n.X)
			case *ast.CompositeLit:
				if len(n.Elts) == 0 {
					return true
				}
				if tv, ok := pass.Info.Types[n]; ok {
					if name := meteredTypeName(tv.Type); name != "" {
						pass.Reportf(n.Pos(),
							"construction of engine.%s with field values outside the engine; "+
								"metering is produced only by internal/engine executors", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkMeterWrite flags lhs when it is a field selection on one of the
// metered engine types.
func checkMeterWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	if name := meteredTypeName(s.Recv()); name != "" {
		pass.Reportf(lhs.Pos(),
			"write to engine.%s.%s outside the engine; "+
				"metering fields are read-only measurements here", name, sel.Sel.Name)
	}
}

// meteredTypeName returns "Stats" or "Summary" when t is (a pointer to)
// that engine type, else "".
func meteredTypeName(t types.Type) string {
	for _, name := range meteredTypes {
		if namedFromEngine(t, name) {
			return name
		}
	}
	return ""
}
