package plsvet

import "testing"

// TestHotAlloc covers the annotated hot path (every allocating construct
// flagged), the justified amortized-grow escape hatch, and an un-annotated
// function that may allocate freely.
func TestHotAlloc(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: HotAlloc,
		Packages: map[string]string{
			"rpls/internal/engine/hotfixture": "hotalloc",
		},
	})
}
