package plsvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces the output-determinism contract: results.jsonl, the
// BENCH_*.json aggregates, and every printed table must be byte-identical
// run over run, so no Go map iteration (randomized order by the runtime)
// may feed an order-sensitive accumulator. The analyzer flags a `range`
// over a map whose body appends to a slice declared outside the loop,
// writes through a writer/encoder-shaped method, or concatenates onto an
// outer string. The fix is to iterate a sorted key slice and index the map
// (which produces no diagnostic); a site that is genuinely order-free can
// carry a //plsvet:allow maporder justification instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map while feeding order-sensitive output " +
		"(appends to outer slices, writer/encoder calls, string building); iterate sorted keys instead",
	Run: runMapOrder,
}

// orderSensitiveCalls are method/function names that emit or accumulate in
// call order: stream writers, encoders, and printers.
var orderSensitiveCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "rpls") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
				return true
			}
			if why := orderSensitiveUse(pass, rng); why != "" {
				pass.Reportf(rng.Pos(), "map iteration feeds order-sensitive output (%s); iterate sorted keys instead", why)
			}
			return true
		})
	}
	return nil
}

// orderSensitiveUse scans the range body for a construct whose result
// depends on iteration order, returning a description of the first one
// found ("" when the body is order-free).
func orderSensitiveUse(pass *Pass, rng *ast.RangeStmt) string {
	var why string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) where x outlives the loop. Appending only
			// the range *keys* is exempt: it is the first half of the
			// sanctioned fix (collect keys, sort, index the map), and a key
			// slice is useless for output until sorted.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") {
					continue
				}
				if appendsOnlyKey(pass, call, rng) {
					continue
				}
				if i < len(n.Lhs) && outlivesLoop(pass, n.Lhs[i], rng) {
					why = "append to a slice declared outside the loop"
					return false
				}
			}
			// s += ... on an outer string.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok {
					if b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if outlivesLoop(pass, n.Lhs[0], rng) {
							why = "string concatenation onto a variable declared outside the loop"
							return false
						}
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := calleeName(n.Fun); ok && orderSensitiveCalls[name] {
				why = "call to " + name + " inside the loop"
				return false
			}
		}
		return true
	})
	return why
}

// calleeName extracts the bare name of a call target.
func calleeName(fun ast.Expr) (string, bool) {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// isBuiltin reports whether fun names the given universe builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pass.Info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// appendsOnlyKey reports whether every appended element of the call is the
// range statement's key variable — the collect-keys-for-sorting idiom.
func appendsOnlyKey(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.Info.Uses[keyID]
	}
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != keyObj {
			return false
		}
	}
	return true
}

// outlivesLoop reports whether the assignment target lhs refers to storage
// declared outside the range statement: a selector or index expression
// (backing storage is elsewhere), or an identifier whose declaration
// precedes the loop.
func outlivesLoop(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return outlivesLoop(pass, lhs.X, rng)
	}
	return false
}
