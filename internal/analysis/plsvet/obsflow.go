package plsvet

import (
	"go/ast"
	"strings"
)

// ObsFlow enforces the observability contract's static half: telemetry is
// strictly write-only from the packages whose output is byte-compared. The
// internal/obs recorder guarantees that nothing recorded can influence a
// result — but only if instrumented code never reads a counter, gauge,
// histogram, or snapshot back. A single Value() call in the engine could
// branch on timing and silently break the metrics-on/off byte-compare, so
// the read surface of obs is banned from deterministic packages outright.
//
// The analyzer also closes the module-wide clock loophole: time.Now, Since,
// and Until are forbidden everywhere outside internal/obs itself, so every
// wall-clock reading flows through the audited obs.Clock seam (detrand
// already bans them inside deterministic packages; obsflow extends the ban
// to cmd/ and the remaining support packages).
var ObsFlow = &Analyzer{
	Name: "obsflow",
	Doc: "telemetry is write-only from deterministic packages (no reading internal/obs " +
		"counters, snapshots, or traces back) and wall-clock time is read only through " +
		"the internal/obs clock seam",
	Run: runObsFlow,
}

// obsPath is the telemetry package; it alone may read its own state and the
// wall clock.
const obsPath = "rpls/internal/obs"

// obsWriteOnly is the allowlist of obs package members callable from
// deterministic packages: constructors, recording methods, and the clock
// seam. Everything else — Value, TakeSnapshot, WriteTrace, ServeDebug,
// SetEnabled — is a read-back or control-plane surface that belongs in
// cmd/ and tests.
var obsWriteOnly = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
	"Add":          true,
	"Inc":          true,
	"Set":          true,
	"SetMax":       true,
	"Observe":      true,
	"Start":        true,
	"Stop":         true,
	"Begin":        true,
	"End":          true,
	"Clock":        true,
	"Since":        true,
	"Enabled":      true,
	// Time is the opaque clock-reading type; a conversion into it (e.g.
	// deadline arithmetic on obs.Clock values in campaign/fabric's lease
	// table) neither reads telemetry back nor touches the wall clock.
	"Time": true,
}

// obsClockCalls are the wall-clock reads barred module-wide in favor of the
// obs.Clock / obs.Since seam.
var obsClockCalls = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runObsFlow(pass *Pass) error {
	if pass.Path == obsPath || strings.HasPrefix(pass.Path, obsPath+"/") {
		return nil // the seam itself
	}
	deterministic := isDeterministicPackage(pass.Path)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.Info, call.Fun)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && obsClockCalls[obj.Name()] {
				pass.Reportf(call.Pos(), "call to time.%s: wall-clock read outside the %s clock seam; use obs.Clock/obs.Since",
					obj.Name(), obsPath)
			}
			if deterministic && obj.Pkg().Path() == obsPath && !obsWriteOnly[obj.Name()] {
				pass.Reportf(call.Pos(), "call to obs.%s in deterministic package %s: telemetry read-back; "+
					"obs is write-only here so recording provably cannot influence results",
					obj.Name(), pass.Path)
			}
			return true
		})
	}
	return nil
}
