package plsvet

// A miniature analysistest: fixture packages live under testdata/src, are
// mounted at engine-relative import paths (so package-path-scoped analyzers
// like detrand and register see realistic paths and fixtures may import the
// real rpls/internal/engine), and carry `// want "regexp"` comments on the
// lines where a diagnostic is expected. The runner type-checks the fixture
// against the real module, runs one analyzer, and requires an exact match
// between expected and reported diagnostics.

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"
)

// sharedLoaderState memoizes one loader per module root across fixture
// runs, so the standard library and the module's packages are type-checked
// once per test binary rather than once per fixture.
var sharedLoaderState struct {
	sync.Mutex
	loaders map[string]*Loader
}

// sharedLoader returns the memoized loader for the module containing dir.
func sharedLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	sharedLoaderState.Lock()
	defer sharedLoaderState.Unlock()
	if sharedLoaderState.loaders == nil {
		sharedLoaderState.loaders = map[string]*Loader{}
	}
	if l, ok := sharedLoaderState.loaders[root]; ok {
		return l, nil
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	sharedLoaderState.loaders[root] = l
	return l, nil
}

// Fixture describes one analysistest run: the analyzer under test, the
// fixture packages to mount (import path → directory under testdata/src),
// and the import paths to analyze (all mounted packages when empty).
type Fixture struct {
	Analyzer *Analyzer
	// Packages maps import paths to testdata/src-relative directories.
	Packages map[string]string
	// Analyze lists the mounted import paths to run the analyzer on;
	// empty means every mounted package.
	Analyze []string
}

// RunFixture type-checks the fixture's packages against the real module,
// runs the analyzer, and fails the test unless the diagnostics match the
// `// want` expectations exactly.
func RunFixture(t *testing.T, fx Fixture) {
	t.Helper()
	loader, err := sharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Fixture mounts are per-run: shadow then restore the shared loader's
	// override and package tables for the mounted paths.
	sharedLoaderState.Lock()
	defer sharedLoaderState.Unlock()
	defer func() {
		for path := range fx.Packages {
			delete(loader.overrides, path)
			delete(loader.pkgs, path)
		}
	}()

	analyze := fx.Analyze
	for path, dir := range fx.Packages {
		// A mount must shadow any previously memoized package at the same
		// import path (e.g. the real internal/schemes/all).
		delete(loader.pkgs, path)
		loader.Override(path, filepath.Join("testdata", "src", filepath.FromSlash(dir)))
		if len(fx.Analyze) == 0 {
			analyze = append(analyze, path)
		}
	}
	sort.Strings(analyze)

	pkgs := make([]*Package, 0, len(analyze))
	allPaths := make([]string, 0, len(fx.Packages))
	for path := range fx.Packages {
		if _, err := loader.Load(path); err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		allPaths = append(allPaths, path)
	}
	sort.Strings(allPaths)
	for _, path := range analyze {
		pkgs = append(pkgs, loader.pkgs[path])
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer: fx.Analyzer,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			AllPaths: allPaths,
			sink:     &diags,
		}
		pass.buildAllow()
		if err := fx.Analyzer.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", fx.Analyzer.Name, pkg.Path, err)
		}
	}

	want := map[token.Position][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		collectWants(t, loader.Fset, pkg, want)
	}
	checkDiagnostics(t, diags, want)
}

// wantRE matches `// want "re"` comments; each quoted string is one
// expected diagnostic on that line.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantArgs = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// collectWants parses the `// want` expectations out of a fixture
// package's comments, keyed by (file, line).
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package, want map[token.Position][]*regexp.Regexp) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := token.Position{Filename: pos.Filename, Line: pos.Line}
				for _, arg := range wantArgs.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, arg[1], err)
					}
					want[key] = append(want[key], re)
				}
			}
		}
	}
}

// checkDiagnostics matches reported diagnostics against expectations
// one-to-one per line.
func checkDiagnostics(t *testing.T, diags []Diagnostic, want map[token.Position][]*regexp.Regexp) {
	t.Helper()
	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		res := want[key]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		want[key] = append(res[:matched], res[matched+1:]...)
	}
	keys := make([]token.Position, 0, len(want))
	for key := range want {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Filename != keys[j].Filename {
			return keys[i].Filename < keys[j].Filename
		}
		return keys[i].Line < keys[j].Line
	})
	for _, key := range keys {
		for _, re := range want[key] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.Filename, key.Line, re)
		}
	}
}

// CheckModule loads every package of the module containing dir and runs
// the full suite, returning the findings. The meta-test and cmd/plsvet
// share this entry point.
func CheckModule(dir string) ([]Diagnostic, error) {
	loader, err := sharedLoader(dir)
	if err != nil {
		return nil, err
	}
	sharedLoaderState.Lock()
	defer sharedLoaderState.Unlock()
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	return Check(Suite(), pkgs)
}
