package plsvet

import "testing"

// TestDetRand covers both sides of the determinism contract: a fixture
// mounted at a deterministic import path where every ambient source is
// flagged (and the //plsvet:allow escape hatch honored), and one mounted
// outside the deterministic set where the same constructs are fine.
func TestDetRand(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: DetRand,
		Packages: map[string]string{
			"rpls/internal/engine/detfixture":          "detrand/det",
			"rpls/cmd/freefixture":                     "detrand/free",
			"rpls/internal/campaign/fabric/detfixture": "detrand/fabric",
		},
	})
}

// TestDeterministicPackageSet pins the package-path scope of the contract.
func TestDeterministicPackageSet(t *testing.T) {
	for path, want := range map[string]bool{
		"rpls/internal/engine":          true,
		"rpls/internal/engine/sub":      true,
		"rpls/internal/core":            true,
		"rpls/internal/campaign":        true,
		"rpls/internal/campaign/fabric": true,
		"rpls/internal/schemes/uniform": true,
		"rpls/internal/obs":             true,
		"rpls/internal/obs/sub":         true,
		"rpls/cmd/plsrun":               false,
		"rpls/internal/experiments":     false,
		"rpls/internal/enginex":         false,
	} {
		if got := isDeterministicPackage(path); got != want {
			t.Errorf("isDeterministicPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
