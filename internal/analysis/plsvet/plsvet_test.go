package plsvet

import "testing"

// TestModuleIsClean is the meta-test the CI lint job mirrors: the whole
// module must pass the full plsvet suite. A finding here means either new
// code broke a contract (fix it) or a justified exception is missing its
// //plsvet:allow annotation (add one, with the justification).
func TestModuleIsClean(t *testing.T) {
	diags, err := CheckModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteShape pins the suite: six analyzers, stable order, documented.
func TestSuiteShape(t *testing.T) {
	want := []string{"detrand", "maporder", "hotalloc", "register", "meterflow", "obsflow"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
