package plsvet

import (
	"strings"
	"testing"
)

// TestRegister covers both halves of the registry contract with one
// fixture set: a scheme that self-registers and is imported (clean), a
// scheme that neither registers nor is imported (flagged twice — once at
// its own package clause, once at the registry's).
func TestRegister(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: Register,
		Packages: map[string]string{
			"rpls/internal/schemes/goodscheme": "register/goodscheme",
			"rpls/internal/schemes/badscheme":  "register/badscheme",
			"rpls/internal/schemes/all":        "register/registry",
		},
	})
}

// TestRegisterMissingRegistry exercises the engine-anchored existence
// check: a run containing scheme packages but no internal/schemes/all
// must be a finding, and the same run with the registry present must not.
func TestRegisterMissingRegistry(t *testing.T) {
	loader, err := sharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	sharedLoaderState.Lock()
	defer sharedLoaderState.Unlock()
	pkg, err := loader.Load(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	run := func(allPaths []string) []Diagnostic {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer: Register,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			AllPaths: allPaths,
			sink:     &diags,
		}
		pass.buildAllow()
		if err := Register.Run(pass); err != nil {
			t.Fatal(err)
		}
		return diags
	}

	diags := run([]string{enginePath, schemesPath + "/uniform"})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no "+registryPath) {
		t.Fatalf("without the registry: got %v, want one missing-registry finding", diags)
	}
	if diags := run([]string{enginePath, schemesPath + "/uniform", registryPath}); len(diags) != 0 {
		t.Fatalf("with the registry present: got %v, want none", diags)
	}
	if diags := run([]string{enginePath}); len(diags) != 0 {
		t.Fatalf("with no scheme packages at all: got %v, want none", diags)
	}
}
