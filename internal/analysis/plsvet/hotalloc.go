package plsvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the allocation discipline of functions annotated
// //pls:hotpath (the Sequential deterministic verify loop and the
// estimator's inner trial loop): these run millions of times per campaign
// and their zero-alloc steady state is what the benchgate allocation band
// locks in dynamically. The analyzer flags the allocating constructs a
// reviewer would otherwise have to spot by eye — make, new, append, any
// fmt call, string concatenation, and closures. A deliberate, amortized
// allocation (a guarded buffer grow) carries a //plsvet:allow hotalloc
// justification.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocating constructs (make/new/append, fmt, string concatenation, closures) " +
		"inside functions annotated //pls:hotpath",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isB := pass.Info.Uses[id].(*types.Builtin); isB {
					switch id.Name {
					case "make", "new", "append":
						pass.Reportf(n.Pos(), "%s in //pls:hotpath function %s allocates", id.Name, name)
					}
				}
			}
			if obj := usedObject(pass.Info, n.Fun); objectFromPkg(obj, "fmt", "") {
				pass.Reportf(n.Pos(), "fmt.%s in //pls:hotpath function %s allocates", obj.Name(), name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in //pls:hotpath function %s allocates", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation in //pls:hotpath function %s allocates", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //pls:hotpath function %s may allocate its captures", name)
			return false // the literal's own body is not the annotated hot path
		}
		return true
	})
}

// isStringExpr reports whether e has string type.
func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
