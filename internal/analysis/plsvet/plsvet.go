// Package plsvet is a suite of static analyzers that machine-check the
// engine-specific contracts this repository's headline results rest on:
// determinism of everything feeding byte-compared output, honesty of the
// wire-cost accounting, and allocation discipline on the measured hot
// paths. The golden byte-compares, the conformance battery, and the
// benchgate allocation gate verify these properties dynamically, minutes
// after a violation lands; plsvet rejects the violating AST before it is
// ever executed — the same move go vet and staticcheck make for generic
// Go, specialized to this engine.
//
// The suite (see DESIGN.md, "Static invariants", for the full contracts):
//
//   - detrand   — no ambient randomness or environment inside deterministic
//     packages: math/rand, crypto/rand, time.Now-style clocks, and
//     os.Getenv-style environment reads are forbidden in internal/engine,
//     internal/core, internal/campaign, and internal/schemes/...; coins
//     come only from internal/prng streams seeded by explicit parameters.
//   - maporder  — no Go map iteration may feed order-sensitive output:
//     a `range` over a map whose body appends to an outer slice, writes
//     through a writer/encoder, or concatenates onto an outer string is
//     flagged; iterate a sorted key slice instead.
//   - hotalloc  — functions annotated `//pls:hotpath` must not contain
//     allocating constructs: make, new, append, fmt calls, string
//     concatenation, or closures.
//   - register  — every package under internal/schemes/ must self-register
//     a scheme in an init() and be blank-imported by the
//     internal/schemes/all registry, so a new scheme cannot silently skip
//     the conformance battery.
//   - meterflow — engine.Stats / engine.Summary metering fields may only
//     be written inside internal/engine, so a scheme or driver cannot cook
//     its own cost accounting.
//   - obsflow   — telemetry is write-only from deterministic packages: code
//     in internal/engine, internal/core, internal/campaign, and
//     internal/schemes/... may record into internal/obs (counters, gauges,
//     histograms, spans, the obs clock) but never read telemetry back, so
//     the recorder provably cannot influence byte-compared output; and
//     time.Now/Since/Until are barred module-wide outside internal/obs —
//     every wall-clock read flows through the audited obs.Clock seam.
//
// Annotation grammar. A justified exception is granted per line:
//
//	//plsvet:allow <analyzer> — <why this site is safe>
//
// placed either at the end of the flagged line or alone on the line
// directly above it. Hot paths are opted in per function:
//
//	//pls:hotpath
//
// as a line of the function's doc comment.
//
// The framework is a deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API (Analyzer / Pass / Reportf and an
// analysistest-style fixture runner): this module has no external
// dependencies and the build environment has no module proxy, so the
// suite is built on go/ast + go/types + go/importer alone. Adding an
// analyzer is three steps: declare an *Analyzer, append it to Suite,
// and give it a fixture suite under testdata/src (see DESIGN.md).
package plsvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named check over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //plsvet:allow comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// Suite returns the full plsvet analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, HotAlloc, Register, MeterFlow, ObsFlow}
}

// A Pass provides one analyzer with a single type-checked package and a
// diagnostic sink. Mirrors the x/tools analysis.Pass surface we need.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path; Dir its directory on disk.
	Path string
	Dir  string
	Pkg  *types.Package
	Info *types.Info
	// AllPaths lists the import paths of every package in the run, so
	// suite-level contracts (the register analyzer's registry check) need
	// no filesystem access of their own.
	AllPaths []string

	allow map[allowKey]bool // (file, line, analyzer) exceptions
	sink  *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowRE matches the exception grammar: //plsvet:allow <name> [— reason].
var allowRE = regexp.MustCompile(`^//plsvet:allow\s+([a-z]+)\b`)

// buildAllow indexes every //plsvet:allow comment of the pass's files. An
// allow comment grants its named analyzer an exception on the comment's own
// line and on the line directly below (so it can trail the flagged line or
// sit alone above it).
func (p *Pass) buildAllow() {
	p.allow = map[allowKey]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.allow[allowKey{pos.Filename, pos.Line, m[1]}] = true
				p.allow[allowKey{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
	}
}

// allowed reports whether an exception covers the given position.
func (p *Pass) allowed(pos token.Pos) bool {
	pp := p.Fset.Position(pos)
	return p.allow[allowKey{pp.Filename, pp.Line, p.Analyzer.Name}]
}

// Reportf records a finding at pos unless a //plsvet:allow comment for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// hotpathMarker is the per-function opt-in for the hotalloc analyzer.
const hotpathMarker = "//pls:hotpath"

// isHotpath reports whether the function declaration's doc comment carries
// the //pls:hotpath marker.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

// enginePath is the one package allowed to write metering fields; it also
// anchors the deterministic-package set and the registry contract.
const (
	enginePath  = "rpls/internal/engine"
	schemesPath = "rpls/internal/schemes"
	// registryPath is the blank-import registry every scheme package must
	// appear in so that registry-driven conformance sees it.
	registryPath = schemesPath + "/all"
	// harnessPath is the scheme test harness: under internal/schemes/ but
	// not a scheme package itself.
	harnessPath = schemesPath + "/schemetest"
)

// isSchemePackage reports whether path is a scheme implementation package
// (under internal/schemes/, excluding the registry and the test harness).
func isSchemePackage(path string) bool {
	if !strings.HasPrefix(path, schemesPath+"/") {
		return false
	}
	return path != registryPath && path != harnessPath &&
		!strings.HasPrefix(path, harnessPath+"/")
}

// Check runs every analyzer of suite over every package, returning the
// combined findings sorted by position. Packages are analyzed
// independently; AllPaths carries the run's full package list to each pass.
func Check(suite []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	paths := make([]string, len(pkgs))
	for i, p := range pkgs {
		paths[i] = p.Path
	}
	sort.Strings(paths)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Dir:      pkg.Dir,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				AllPaths: paths,
				sink:     &diags,
			}
			pass.buildAllow()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("plsvet: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags, nil
}

// usedObject resolves an expression that names a function or variable — an
// identifier or a package-qualified selector — to its types.Object.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return usedObject(info, e.X)
	}
	return nil
}

// objectFromPkg reports whether obj belongs to the package with the given
// import path and has the given name; name "" matches any member.
func objectFromPkg(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && (name == "" || obj.Name() == name)
}

// namedFromEngine unwraps aliases and pointers and reports whether t is the
// named type rpls/internal/engine.<name>. Aliases are unwrapped so a
// package re-exporting an engine type (`type Stats = engine.Stats`)
// cannot smuggle meter writes past the check.
func namedFromEngine(t types.Type, name string) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return objectFromPkg(n.Obj(), enginePath, name)
}
