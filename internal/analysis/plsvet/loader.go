package plsvet

// The package loader. plsvet deliberately depends on nothing outside the
// standard library (this module has no external dependencies and the build
// environment has no module proxy), so instead of
// golang.org/x/tools/go/packages it parses and type-checks the module
// itself: module packages are located by walking the tree rooted at go.mod,
// standard-library imports are type-checked from GOROOT source via the
// go/importer "source" importer, and everything is memoized per Loader.
// Only non-test files are loaded — the contracts plsvet enforces target
// production code; _test.go files may freely use time.Now, map ranges, etc.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package of the run.
type Package struct {
	Path  string // import path
	Dir   string // directory on disk
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module, memoizing both
// module packages and the standard library.
type Loader struct {
	Fset   *token.FileSet
	root   string // module root (directory containing go.mod)
	module string // module path from go.mod

	// overrides maps import paths to directories outside the normal module
	// layout; the fixture runner uses it to mount testdata/src packages
	// under engine-relative import paths.
	overrides map[string]string

	std     types.ImporterFrom  // GOROOT source importer for the stdlib
	pkgs    map[string]*Package // loaded module/override packages
	loading map[string]bool     // cycle detection
}

// NewLoader returns a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		root:      root,
		module:    mod,
		overrides: map[string]string{},
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
	}, nil
}

// Override mounts dir as the source of the given import path, shadowing
// any module-layout resolution. Used by the fixture runner.
func (l *Loader) Override(path, dir string) { l.overrides[path] = dir }

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("plsvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("plsvet: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("plsvet: no module line in %s", gomod)
}

// LoadAll loads every package of the module (every directory under the
// root containing non-test .go files, skipping testdata and hidden
// directories), in deterministic path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if ok, err := hasGoFiles(p); err != nil {
			return err
		} else if ok {
			rel, err := filepath.Rel(l.root, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.module)
			} else {
				paths = append(paths, l.module+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// .go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the package with the given import path,
// loading its module dependencies first. Standard-library paths are
// delegated to the GOROOT source importer.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("plsvet: %s is not a module package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("plsvet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("plsvet: no Go files in %s", dir)
	}

	// Load module dependencies first so the type-checker finds them
	// memoized; stdlib imports resolve lazily through the importer.
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, isModule := l.dirFor(p); isModule {
				if _, err := l.Load(p); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("plsvet: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// dirFor resolves an import path to a directory if it belongs to the
// module or the override set.
func (l *Loader) dirFor(path string) (string, bool) {
	if dir, ok := l.overrides[path]; ok {
		return dir, true
	}
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses every non-test .go file of dir, with comments (the
// annotation grammar lives in comments).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts the Loader to types.Importer for the checker:
// module and override paths are served by the loader itself, everything
// else by the GOROOT source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}
