package plsvet

import (
	"go/ast"
	"strings"
)

// DetRand enforces the determinism contract of the packages whose output is
// byte-compared in CI: every coin flip must flow from an internal/prng
// stream seeded by an explicit parameter, never from ambient randomness,
// the clock, or the environment. A stray math/rand draw or time.Now-derived
// seed in these packages silently breaks campaign resume, the parallelism
// byte-compare, and every golden summary at once.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness, clocks, and environment reads in deterministic packages; " +
		"coins come only from internal/prng streams seeded by explicit parameters",
	Run: runDetRand,
}

// detRandPackages are the import-path prefixes the contract covers: the
// engine and everything whose results feed byte-compared output.
var detRandPackages = []string{
	"rpls/internal/engine",
	"rpls/internal/core",
	// The prefix match keeps campaign's sub-packages in-zone — deliberately
	// including campaign/fabric, the distributed transport: network I/O and
	// lease timing (obs.Clock deadlines, time.NewTicker heartbeats) decide
	// only scheduling there, and anything that could decide bytes stays
	// under the same contract as the rest of the campaign layer.
	"rpls/internal/campaign",
	"rpls/internal/schemes",
	// The telemetry package sits inside the deterministic zone so its two
	// ambient sources — the clock seam and the shard-index PRNG — stay
	// individually audited //plsvet:allow sites rather than a blanket pass.
	"rpls/internal/obs",
}

// detRandImports are the packages whose import alone is a violation: every
// use of them is a nondeterminism source here.
var detRandImports = map[string]string{
	"math/rand":    "ambient PRNG; use internal/prng with an explicit seed",
	"math/rand/v2": "ambient PRNG; use internal/prng with an explicit seed",
	"crypto/rand":  "nondeterministic entropy; use internal/prng with an explicit seed",
}

// detRandCalls are individual functions banned from otherwise-legitimate
// packages (time is fine for durations, os for files — but not for seeding
// or ordering anything).
var detRandCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getenv":    "environment-derived value",
		"LookupEnv": "environment-derived value",
		"Environ":   "environment-derived value",
	},
}

// isDeterministicPackage reports whether the contract covers path.
func isDeterministicPackage(path string) bool {
	for _, p := range detRandPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runDetRand(pass *Pass) error {
	if !isDeterministicPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := detRandImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: %s", path, pass.Path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.Info, call.Fun)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if why, bad := detRandCalls[obj.Pkg().Path()][obj.Name()]; bad {
				pass.Reportf(call.Pos(), "call to %s.%s in deterministic package %s: %s",
					obj.Pkg().Path(), obj.Name(), pass.Path, why)
			}
			return true
		})
	}
	return nil
}
