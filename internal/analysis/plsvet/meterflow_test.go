package plsvet

import "testing"

// TestMeterFlow covers the write protection of the engine's metering types
// outside rpls/internal/engine — field assignment, compound assignment,
// increment, and non-zero construction — plus the free reads, the zero
// value, and the escape hatch.
func TestMeterFlow(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: MeterFlow,
		Packages: map[string]string{
			"rpls/internal/campaign/meterfixture": "meterflow",
		},
	})
}
