package plsvet

import "testing"

// TestObsFlow covers both halves of the observability contract: a fixture
// mounted at a deterministic import path where telemetry read-backs and
// direct wall-clock reads are flagged (write-only recording, spans, and the
// obs clock seam pass), and one mounted under cmd/ where reading snapshots
// is fine but the wall clock is still barred.
func TestObsFlow(t *testing.T) {
	RunFixture(t, Fixture{
		Analyzer: ObsFlow,
		Packages: map[string]string{
			"rpls/internal/engine/obsfixture": "obsflow/eng",
			"rpls/cmd/obsfixture":             "obsflow/free",
		},
	})
}

// TestObsFlowSkipsSeam pins that the seam package itself is exempt: obsflow
// must report nothing on internal/obs, whose whole point is reading the
// clock and its own state.
func TestObsFlowSkipsSeam(t *testing.T) {
	loader, err := sharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	sharedLoaderState.Lock()
	pkg, err := loader.Load(obsPath)
	sharedLoaderState.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: ObsFlow,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Dir:      pkg.Dir,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		sink:     &diags,
	}
	pass.buildAllow()
	if err := ObsFlow.Run(pass); err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("obsflow flagged the seam package: %s", d)
	}
}
