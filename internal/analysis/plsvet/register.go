package plsvet

import (
	"go/ast"
	"strings"
)

// Register enforces the registry contract that keeps the conformance
// battery exhaustive: every scheme package under internal/schemes/ must
// (a) call engine.Register from an init function, and (b) be blank-imported
// by the internal/schemes/all registry package, which binaries and the
// registry-driven conformance tests import. A scheme satisfying (a) but
// not (b) would compile, pass its own unit tests, and silently never be
// exercised by the battery, the campaign cross products, or the CLIs.
var Register = &Analyzer{
	Name: "register",
	Doc: "every internal/schemes/ package must engine.Register itself in an init() " +
		"and be blank-imported by internal/schemes/all",
	Run: runRegister,
}

func runRegister(pass *Pass) error {
	if isSchemePackage(pass.Path) {
		checkSelfRegisters(pass)
	}
	if pass.Path == registryPath {
		checkRegistryImports(pass)
	}
	if pass.Path == enginePath {
		checkRegistryExists(pass)
	}
	return nil
}

// checkRegistryExists anchors the registry's existence on the engine
// package (the registry's owner): if the run contains scheme packages but
// no internal/schemes/all, the per-import check above never fires, so the
// missing registry itself must be a finding.
func checkRegistryExists(pass *Pass) {
	schemes := false
	for _, path := range pass.AllPaths {
		if path == registryPath {
			return
		}
		schemes = schemes || isSchemePackage(path)
	}
	if schemes {
		pass.Reportf(pass.Files[0].Name.Pos(),
			"module has scheme packages but no %s registry package; "+
				"binaries and conformance tests have nothing to import", registryPath)
	}
}

// checkSelfRegisters requires an init() containing a call that resolves to
// engine.Register.
func checkSelfRegisters(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || fn.Name.Name != "init" || fn.Body == nil {
				continue
			}
			registers := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if objectFromPkg(usedObject(pass.Info, call.Fun), enginePath, "Register") {
					registers = true
				}
				return true
			})
			if registers {
				return
			}
		}
	}
	pass.Reportf(pass.Files[0].Name.Pos(),
		"scheme package %s never calls engine.Register from an init(); "+
			"it will be invisible to the registry and skip the conformance battery", pass.Path)
}

// checkRegistryImports requires the registry package to import every scheme
// package of the run.
func checkRegistryImports(pass *Pass) {
	imported := map[string]bool{}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			imported[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	for _, path := range pass.AllPaths {
		if isSchemePackage(path) && !imported[path] {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"registry package %s does not import scheme package %s; "+
					"add a blank import so the conformance battery sees it", registryPath, path)
		}
	}
}
