package commcc

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

func randomString(rng *prng.Rand, lambda int) bitstring.String {
	bits := make([]byte, lambda)
	for i := range bits {
		bits[i] = rng.Bit()
	}
	return bitstring.FromBits(bits)
}

func flipOne(s bitstring.String, pos int) bitstring.String {
	bits := make([]byte, s.Len())
	for i := range bits {
		bits[i] = s.Bit(i)
	}
	bits[pos] = 1 - bits[pos]
	return bitstring.FromBits(bits)
}

func TestDeterministicExact(t *testing.T) {
	rng := prng.New(1)
	p := Deterministic()
	for trial := 0; trial < 50; trial++ {
		a := randomString(rng, 1+rng.Intn(100))
		eq, tr := p.Run(a, a, rng)
		if !eq {
			t.Fatal("deterministic EQ rejected equal strings")
		}
		if tr.Bits != a.Len()+1 {
			t.Errorf("transcript %d bits, want %d", tr.Bits, a.Len()+1)
		}
		if a.Len() > 0 {
			b := flipOne(a, rng.Intn(a.Len()))
			if eq, _ := p.Run(a, b, rng); eq {
				t.Fatal("deterministic EQ accepted distinct strings")
			}
		}
	}
}

func TestRandomizedOneSided(t *testing.T) {
	// Equal strings must always be accepted (Lemma A.1).
	rng := prng.New(2)
	p := Randomized()
	for trial := 0; trial < 300; trial++ {
		a := randomString(rng, 1+rng.Intn(300))
		if eq, _ := p.Run(a, a, rng); !eq {
			t.Fatal("randomized EQ rejected equal strings")
		}
	}
}

func TestRandomizedSoundnessBelowThird(t *testing.T) {
	for _, lambda := range []int{8, 64, 512} {
		a, b := WorstCasePair(lambda)
		if rate := MeasureError(Randomized(), a, b, 3000, 3); rate >= 1.0/3 {
			t.Errorf("λ=%d: error rate %v >= 1/3", lambda, rate)
		}
	}
}

func TestRandomizedTranscriptLogarithmic(t *testing.T) {
	rng := prng.New(4)
	p := Randomized()
	prev := 0
	for _, lambda := range []int{8, 64, 512, 4096, 1 << 15} {
		a := randomString(rng, lambda)
		_, tr := p.Run(a, a, rng)
		if tr.Bits > 2*(log2ceil(lambda)+3)+1 {
			t.Errorf("λ=%d: transcript %d bits, want <= 2(log λ + 3)+1", lambda, tr.Bits)
		}
		if prev > 0 && tr.Bits > prev+8 {
			t.Errorf("λ=%d: transcript jumped %d -> %d", lambda, prev, tr.Bits)
		}
		prev = tr.Bits
	}
}

func TestRandomizedWithErrorTunesField(t *testing.T) {
	// Tighter ε costs more bits but errs less: the §1 obliviousness knob.
	const lambda = 256
	a, b := WorstCasePair(lambda)
	loose := MeasureError(RandomizedWithError(0.3), a, b, 4000, 5)
	tight := MeasureError(RandomizedWithError(0.01), a, b, 4000, 6)
	if tight >= 0.01 {
		t.Errorf("ε=0.01 protocol errs at %v", tight)
	}
	if loose >= 0.3 {
		t.Errorf("ε=0.3 protocol errs at %v, violating its contract", loose)
	}
	rng := prng.New(7)
	s := randomString(rng, lambda)
	_, trLoose := RandomizedWithError(0.3).Run(s, s, rng)
	_, trTight := RandomizedWithError(0.01).Run(s, s, rng)
	if trTight.Bits <= trLoose.Bits {
		t.Errorf("tighter ε should cost more bits: %d vs %d", trTight.Bits, trLoose.Bits)
	}
}

func TestTruncatedProtocolIsFooled(t *testing.T) {
	// The constructive lower bound: a field far below 3λ admits a pair of
	// distinct inputs it can NEVER distinguish (x vs x^p by Fermat), so the
	// truncated protocol errs with probability 1 on that pair.
	const lambda = 4096
	p := TruncatedPrime(4)
	a, b, err := FoolingPair(lambda, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("fooling pair must be distinct strings")
	}
	rate := MeasureError(Truncated(4), a, b, 500, 8)
	if rate != 1.0 {
		t.Errorf("4-bit field on λ=%d: error rate %v, want exactly 1 (perfect fooling)", lambda, rate)
	}
	// And with the properly sized field the same pair is handled.
	if ok := MeasureError(Randomized(), a, b, 2000, 9); ok >= 1.0/3 {
		t.Errorf("full protocol errs at %v on the same pair", ok)
	}
}

func TestTruncatedErrorDecreasesWithFieldBits(t *testing.T) {
	// Fix the pair fooling the 4-bit field and grow the field: the error
	// rate must fall off as (#roots of x^p − x in GF(q))/q.
	const lambda = 1024
	p := TruncatedPrime(4)
	a, b, err := FoolingPair(lambda, p)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, bits := range []int{4, 8, 12, 16} {
		rate := MeasureError(Truncated(bits), a, b, 2000, uint64(10+bits))
		if rate > prev+0.05 {
			t.Errorf("field %d bits: error rate %v rose from %v", bits, rate, prev)
		}
		prev = rate
	}
	if prev > 0.05 {
		t.Errorf("16-bit field still errs at %v on the 4-bit fooling pair", prev)
	}
}

func TestFoolingPairRequiresLongInput(t *testing.T) {
	if _, _, err := FoolingPair(5, 11); err == nil {
		t.Error("FoolingPair with λ <= p should fail")
	}
}

func TestLengthMismatchDecidedForFree(t *testing.T) {
	// One convention across every protocol: λ is common knowledge, so a
	// length mismatch costs zero bits and zero messages everywhere.
	rng := prng.New(11)
	a := randomString(rng, 10)
	b := randomString(rng, 12)
	for _, p := range []EQProtocol{Deterministic(), Randomized(), RandomizedWithError(0.05), Truncated(4)} {
		eq, tr := p.Run(a, b, rng)
		if eq {
			t.Errorf("%s: length mismatch accepted", p.Name())
		}
		if tr.Bits != 0 || tr.Messages != 0 || tr.Distinct != 0 {
			t.Errorf("%s: length mismatch cost %d bits / %d messages / %d distinct, want 0 / 0 / 0",
				p.Name(), tr.Bits, tr.Messages, tr.Distinct)
		}
	}
}

func TestTranscriptConventionConsistent(t *testing.T) {
	// Equal-length inputs: every protocol reports payload + 1 verdict bit
	// in exactly 2 messages, so deterministic and randomized transcripts
	// are comparable bit for bit.
	rng := prng.New(12)
	for _, lambda := range []int{1, 8, 100} {
		a := randomString(rng, lambda)
		b := randomString(rng, lambda)
		for _, p := range []EQProtocol{Deterministic(), Randomized(), Truncated(6)} {
			_, tr := p.Run(a, b, rng)
			if tr.Messages != 2 {
				t.Errorf("%s λ=%d: %d messages, want 2", p.Name(), lambda, tr.Messages)
			}
			if tr.Distinct != 2 {
				t.Errorf("%s λ=%d: %d distinct, want 2 (both messages minted)", p.Name(), lambda, tr.Distinct)
			}
			if tr.Bits < 2 { // at least 1 payload bit + the verdict bit
				t.Errorf("%s λ=%d: %d bits, want >= 2", p.Name(), lambda, tr.Bits)
			}
		}
		_, det := Deterministic().Run(a, b, rng)
		if det.Bits != lambda+1 {
			t.Errorf("deterministic λ=%d: %d bits, want λ+1 = %d", lambda, det.Bits, lambda+1)
		}
	}
}

func TestMulticastCompleteAndConserved(t *testing.T) {
	// One Alice, k Bobs with Alice's string: every Bob accepts at every cap,
	// the wire cost is charged per crossing (so it is invariant in m), and
	// the Distinct <= Messages conservation law holds with equality exactly
	// at unicast.
	rng := prng.New(13)
	const k = 7
	a := randomString(rng, 64)
	bs := make([]bitstring.String, k)
	for i := range bs {
		bs[i] = a
	}
	for _, p := range []EQProtocol{Deterministic(), Randomized(), Truncated(6)} {
		for _, m := range []int{0, 1, 2, 3, k, k + 5} {
			equal, tr := Multicast(p, a, bs, m, rng)
			for i, eq := range equal {
				if !eq {
					t.Fatalf("%s m=%d: Bob %d rejected Alice's own string", p.Name(), m, i)
				}
			}
			if tr.Messages != 2*k {
				t.Errorf("%s m=%d: %d messages, want %d", p.Name(), m, tr.Messages, 2*k)
			}
			classes := k
			if m >= 1 && m < k {
				classes = m
			}
			if want := classes + k; tr.Distinct != want {
				t.Errorf("%s m=%d: %d distinct, want %d payloads + %d verdicts", p.Name(), m, tr.Distinct, classes, k)
			}
			if tr.Distinct > tr.Messages {
				t.Errorf("%s m=%d: conservation violated: %d distinct > %d messages", p.Name(), m, tr.Distinct, tr.Messages)
			}
			if (tr.Distinct == tr.Messages) != (classes == k) {
				t.Errorf("%s m=%d: distinct==messages must hold exactly at unicast", p.Name(), m)
			}
			_, unicast := Multicast(p, a, bs, 0, rng)
			if tr.Bits != unicast.Bits && p.Name() == Deterministic().Name() {
				t.Errorf("%s m=%d: %d bits, want the per-crossing cost %d at any cap", p.Name(), m, tr.Bits, unicast.Bits)
			}
		}
	}
}

func TestMulticastBroadcastStillSound(t *testing.T) {
	// Under m=1 a single fingerprint serves every Bob; a Bob holding a
	// worst-case distinct string must still be caught well over 2/3 of the
	// time, and mismatched-length Bobs are decided for free without
	// spending a mint on their class.
	const lambda, k = 256, 5
	a, bad := WorstCasePair(lambda)
	rng := prng.New(14)
	caught := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		bs := []bitstring.String{a, a, bad, a, a}
		equal, tr := Multicast(Randomized(), a, bs, 1, rng)
		if equal[0] != true || equal[1] != true || equal[3] != true || equal[4] != true {
			t.Fatal("broadcast rejected an equal Bob")
		}
		if !equal[2] {
			caught++
		}
		if tr.Distinct != 1+k {
			t.Fatalf("m=1: %d distinct, want 1 payload + %d verdicts", tr.Distinct, k)
		}
	}
	if rate := float64(caught) / trials; rate < 2.0/3 {
		t.Errorf("broadcast caught the bad Bob at rate %v, want > 2/3", rate)
	}
	short := randomString(rng, 10)
	equal, tr := Multicast(Randomized(), a, []bitstring.String{short, short, short}, 1, rng)
	for i, eq := range equal {
		if eq {
			t.Errorf("mismatched-length Bob %d accepted", i)
		}
	}
	if tr.Bits != 0 || tr.Messages != 0 || tr.Distinct != 0 {
		t.Errorf("all-mismatch multicast cost %d/%d/%d, want free", tr.Bits, tr.Messages, tr.Distinct)
	}
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
