// Package commcc implements 2-party communication complexity protocols for
// the EQUALITY predicate, the engine behind both the compiler of Theorem 3.1
// and the lower bound of Theorem 3.5.
//
// Lemma 3.2 (Kushilevitz–Nisan): the randomized communication complexity of
// EQ over λ-bit strings is Θ(log λ). Lemma A.1 realizes the upper bound:
// Alice views her string as a polynomial over GF(p), 3λ < p < 6λ, picks a
// uniform point x, and sends (x, A(x)) in O(log λ) bits; Bob accepts iff his
// polynomial agrees there. Equal strings always pass; distinct ones pass
// with probability at most (λ−1)/p < 1/3.
//
// The package also provides the deterministic baseline (λ bits) and an
// adversarially truncated variant whose field is too small, which makes the
// Ω(log λ) lower bound observable: below the bound the protocol is fooled
// more than a third of the time on worst-case inputs.
package commcc

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/field"
	"rpls/internal/prng"
)

// Transcript records the communication cost of one protocol run.
//
// Accounting convention, shared by every protocol in this package: the
// transcript is Alice's payload (λ bits deterministically, the fingerprint
// otherwise) plus Bob's 1-bit verdict reply — Bits = payload + 1,
// Messages = 2. A length mismatch is decided for free (Bits = 0,
// Messages = 0): λ is part of the EQ problem statement, so both parties
// already know the lengths differ without exchanging anything. The tests
// pin both halves of the convention for the deterministic, fingerprint,
// and truncated protocols alike.
//
// Distinct is the congestion-axis counter, mirroring the engine's
// Stats.DistinctMessages convention: Bits and Messages are wire counts —
// a payload replicated to several receivers is charged per crossing —
// while Distinct counts the messages structurally minted. A 2-party run
// mints both of its messages (Distinct = 2); a Multicast run under cap m
// mints at most m payloads however many wires carry them. The
// conservation law Distinct <= Messages holds everywhere, with equality
// exactly in the unicast regime.
type Transcript struct {
	Bits     int // total bits crossing all wires
	Messages int // number of point-to-point messages
	Distinct int // structurally distinct messages minted (<= Messages)
}

// EQProtocol decides whether two bit strings of equal length are identical.
type EQProtocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Run executes the protocol on Alice's input a and Bob's input b.
	Run(a, b bitstring.String, rng *prng.Rand) (equal bool, tr Transcript)
}

// Deterministic returns the trivial protocol: Alice ships her whole string.
// Communication λ bits; never errs.
func Deterministic() EQProtocol { return deterministicEQ{} }

type deterministicEQ struct{}

func (deterministicEQ) Name() string { return "eq-deterministic" }

func (deterministicEQ) Run(a, b bitstring.String, _ *prng.Rand) (bool, Transcript) {
	if a.Len() != b.Len() {
		// Same convention as the fingerprint protocols: lengths are part of
		// the problem statement, so a mismatch costs no communication. The
		// old accounting charged the full λ+1 bits here, inflating the
		// deterministic baseline relative to the randomized protocols.
		return false, Transcript{Bits: 0, Messages: 0}
	}
	// Alice → Bob: the full string (λ bits); Bob replies with the verdict.
	return a.Equal(b), Transcript{Bits: a.Len() + 1, Messages: 2, Distinct: 2}
}

// mint implements minter: Alice's message is the whole string.
func (deterministicEQ) mint(a bitstring.String, _ *prng.Rand) (func(bitstring.String) bool, int) {
	return a.Equal, a.Len()
}

// Randomized returns the Lemma A.1 protocol with the paper's parameters:
// p ∈ (3λ, 6λ), one-sided error < 1/3.
func Randomized() EQProtocol {
	return fingerprintEQ{name: "eq-randomized", prime: field.PrimeForLength}
}

// RandomizedWithError returns the protocol tuned for per-run error below
// eps (ε-obliviousness: only the field size changes).
func RandomizedWithError(eps float64) EQProtocol {
	return fingerprintEQ{
		name:  fmt.Sprintf("eq-randomized(ε=%g)", eps),
		prime: func(lambda int) uint64 { return field.PrimeForError(lambda, eps) },
	}
}

// Truncated returns an adversarially under-provisioned protocol whose field
// has only fieldBits bits, regardless of the input length. When
// 2^fieldBits ≪ 3λ the soundness guarantee collapses — the constructive
// form of the Ω(log λ) lower bound (Theorem 3.5 / Lemma 3.2).
func Truncated(fieldBits int) EQProtocol {
	if fieldBits < 2 {
		fieldBits = 2
	}
	p := field.NextPrime(1 << uint(fieldBits-1))
	return fingerprintEQ{
		name:  fmt.Sprintf("eq-truncated(%d-bit field)", fieldBits),
		prime: func(int) uint64 { return p },
	}
}

type fingerprintEQ struct {
	name  string
	prime func(lambda int) uint64
}

func (f fingerprintEQ) Name() string { return f.name }

func (f fingerprintEQ) Run(a, b bitstring.String, rng *prng.Rand) (bool, Transcript) {
	if a.Len() != b.Len() {
		// Lengths are part of the problem statement for EQ; a length
		// mismatch is decided for free (both parties know λ).
		return false, Transcript{Bits: 0, Messages: 0}
	}
	p := f.prime(a.Len())
	fp := field.NewFingerprint(a, p, rng)
	// Alice → Bob: (x, A(x)); Bob replies with the verdict bit.
	return fp.Matches(b), Transcript{Bits: fp.Bits() + 1, Messages: 2, Distinct: 2}
}

// mint implements minter: Alice's message is one fingerprint of a, valid
// against any receiver's string.
func (f fingerprintEQ) mint(a bitstring.String, rng *prng.Rand) (func(bitstring.String) bool, int) {
	fp := field.NewFingerprint(a, f.prime(a.Len()), rng)
	return fp.Matches, fp.Bits()
}

// minter is the hook behind Multicast: a protocol that can commit to one
// Alice-side message and evaluate it against any Bob implements it. The
// returned check must be coin-free — all the randomness is spent minting —
// which is exactly what lets one minted message serve a whole port class.
type minter interface {
	mint(a bitstring.String, rng *prng.Rand) (check func(b bitstring.String) bool, payloadBits int)
}

// Multicast runs the protocol between one Alice and k Bobs under a
// message-multiplicity cap m: Alice may mint at most m distinct payload
// messages per round, so the Bobs are partitioned round-robin into
// min(m, k) classes (class of Bob i = i mod m, matching core.PortClass)
// and every Bob of a class is served by the same minted message. m <= 0
// means unicast (every Bob its own class). Wire accounting follows the
// Transcript convention: the class payload is charged once per Bob whose
// wire it crosses, each verdict is 1 bit, and Distinct counts minted
// messages — used class payloads plus verdicts. Bobs whose length differs
// from Alice's are decided for free, and a class with only such Bobs
// mints nothing.
func Multicast(pr EQProtocol, a bitstring.String, bs []bitstring.String, m int, rng *prng.Rand) ([]bool, Transcript) {
	mt, ok := pr.(minter)
	if !ok {
		// Every protocol in this package mints; an external EQProtocol
		// degenerates to k independent 2-party runs (unicast semantics).
		equal := make([]bool, len(bs))
		var tr Transcript
		for i, b := range bs {
			got, one := pr.Run(a, b, rng)
			equal[i] = got
			tr.Bits += one.Bits
			tr.Messages += one.Messages
			tr.Distinct += one.Distinct
		}
		return equal, tr
	}
	k := len(bs)
	classes := k
	if m >= 1 && m < k {
		classes = m
	}
	equal := make([]bool, k)
	var tr Transcript
	for c := 0; c < classes; c++ {
		var check func(bitstring.String) bool
		payloadBits := 0
		for i := c; i < k; i += classes {
			if bs[i].Len() != a.Len() {
				continue // decided for free; mints nothing on this Bob's account
			}
			if check == nil {
				check, payloadBits = mt.mint(a, rng)
				tr.Distinct++ // the class payload, minted once
			}
			equal[i] = check(bs[i])
			tr.Bits += payloadBits + 1 // payload crosses this Bob's wire + verdict
			tr.Messages += 2
			tr.Distinct++ // each Bob's verdict is its own message
		}
	}
	return equal, tr
}

// MeasureError estimates the probability that the protocol errs on the
// given input pair over `trials` runs.
func MeasureError(pr EQProtocol, a, b bitstring.String, trials int, seed uint64) float64 {
	truth := a.Equal(b)
	rng := prng.New(seed)
	wrong := 0
	for t := 0; t < trials; t++ {
		got, _ := pr.Run(a, b, rng)
		if got != truth {
			wrong++
		}
	}
	return float64(wrong) / float64(trials)
}

// WorstCasePair returns a pair of distinct λ-bit strings whose difference
// polynomial has many roots modulo moderately sized fields: a is the zero
// string and b has ones in the low ⌈λ/2⌉ positions, so A−B vanishes on the
// (λ/2)-th roots of unity present in the field.
func WorstCasePair(lambda int) (bitstring.String, bitstring.String) {
	za := make([]byte, lambda)
	zb := make([]byte, lambda)
	for i := 0; i < (lambda+1)/2; i++ {
		zb[i] = 1
	}
	return bitstring.FromBits(za), bitstring.FromBits(zb)
}

// FoolingPair returns two distinct λ-bit strings that are *perfectly*
// indistinguishable by polynomial fingerprints over GF(p): by Fermat's
// little theorem x^p ≡ x for every x in GF(p), so the strings with a single
// one-bit at position 1 and at position p induce the same function on the
// whole field. Requires λ > p; this is the constructive heart of the
// Ω(log λ) lower bound (Lemma 3.2 / Theorem 3.5): a field too small for the
// input length admits inputs it can never tell apart.
func FoolingPair(lambda int, p uint64) (bitstring.String, bitstring.String, error) {
	if uint64(lambda) <= p {
		return bitstring.String{}, bitstring.String{}, fmt.Errorf(
			"commcc: FoolingPair needs λ > p, got λ=%d p=%d", lambda, p)
	}
	za := make([]byte, lambda)
	zb := make([]byte, lambda)
	za[1] = 1
	zb[p] = 1
	return bitstring.FromBits(za), bitstring.FromBits(zb), nil
}

// TruncatedPrime exposes the field modulus a Truncated(fieldBits) protocol
// uses, so experiments can build tailored fooling pairs.
func TruncatedPrime(fieldBits int) uint64 {
	if fieldBits < 2 {
		fieldBits = 2
	}
	return field.NextPrime(1 << uint(fieldBits-1))
}
