package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// The congestion aggregate: BENCH_congest.json condenses every
// comm-bearing single-round record into verified-bits × m curves, the
// broadcast ⇄ unicast axis of Patt-Shamir–Perry. One curve covers one
// (scheme, variant, family, size) point across the campaign's
// multiplicity axis; each curve point is the exact metered wire cost of
// verifying under cap m. Points are ordered along the congestion axis —
// capped values ascending, the unconstrained m = 0 cell (classic unicast)
// last — so "non-increasing" reads left-to-right from broadcast toward
// unicast. A payload-merging scheme's verified bits fall like Σ class²
// along the axis; the replication fallback is flat. CI asserts the
// conservation direction on every curve (verified-bits(m=1) >= the
// unicast extreme) and counts the schemes showing a genuine separation.

// BenchCongestFile is the congestion aggregate's file name.
const BenchCongestFile = "BENCH_congest.json"

// CongestPoint is one multiplicity value of a curve.
type CongestPoint struct {
	// Multiplicity is the cap m; 0 is the unconstrained classic round,
	// which sorts last on the axis (it is the unicast extreme).
	Multiplicity int `json:"multiplicity"`
	// VerifiedBits sums the wire bits of the point's cells: the total
	// communication the verification round put on the wire under honest
	// labels, over the cell's executed trials.
	VerifiedBits int64 `json:"verifiedBits"`
	// DistinctMessages sums the structurally distinct payloads minted
	// (<= Messages; the conservation law of the congestion axis).
	DistinctMessages int64 `json:"distinctMessages"`
	// AvgBitsPerEdge is the mean bits one directed edge carries, averaged
	// over the point's cells.
	AvgBitsPerEdge float64 `json:"avgBitsPerEdge"`
	Cells          int     `json:"cells"`
}

// CongestCurve is the verified-bits × m curve of one scenario point.
type CongestCurve struct {
	Scheme  string         `json:"scheme"`
	Variant string         `json:"variant"`
	Family  string         `json:"family"`
	N       int            `json:"n"`
	Points  []CongestPoint `json:"points"` // axis order: capped m ascending, then m=0
	// NonIncreasing reports that the curve has at least two points and
	// VerifiedBits never rises along the axis — the acceptance criterion
	// every scheme must satisfy (replication fallback included).
	NonIncreasing bool `json:"nonIncreasing"`
	// Separated reports that the curve's broadcast end costs strictly more
	// than its unicast end: the scheme degrades by genuine payload
	// merging, not flat replication.
	Separated bool `json:"separated"`
}

// BenchCongest is the BENCH_congest.json layout.
type BenchCongest struct {
	Spec    string         `json:"spec"`
	Records int            `json:"records"` // comm-bearing ok records folded
	Curves  []CongestCurve `json:"curves"`
	// ViolatingCurves counts multi-point curves that are NOT
	// non-increasing — the CI gate requires 0. SeparatedCurves counts
	// curves with a strict broadcast/unicast gap; SeparatedSchemes and
	// SeparatedFamilies count the distinct schemes and families
	// contributing at least one.
	ViolatingCurves   int `json:"violatingCurves"`
	SeparatedCurves   int `json:"separatedCurves"`
	SeparatedSchemes  int `json:"separatedSchemes"`
	SeparatedFamilies int `json:"separatedFamilies"`
}

// congestAxisPos orders multiplicities along the congestion axis:
// broadcast (1) first, larger caps after, the unconstrained classic round
// (0) last as the unicast extreme.
func congestAxisPos(m int) int {
	if m == 0 {
		return math.MaxInt
	}
	return m
}

// AggregateCongest folds records into the congestion summary. Like
// AggregateComm, only single-round records are folded: the multiplicity
// cap composes with t-PLS sharding, but mixing shard widths into one
// curve would compare different wire formats.
func AggregateCongest(specName string, recs []Record) BenchCongest {
	b := BenchCongest{Spec: specName}
	type curveKey struct {
		scheme, variant, family string
		n                       int
	}
	type pointKey struct {
		curveKey
		mult int
	}
	points := map[pointKey]*CongestPoint{}
	curves := map[curveKey][]*CongestPoint{}
	for _, rec := range recs {
		if !commBearing(rec) || rec.RoundCount() != 1 {
			continue
		}
		b.Records++
		ck := curveKey{rec.Scheme, rec.Variant, rec.Family, rec.N}
		pk := pointKey{ck, rec.Multiplicity}
		p := points[pk]
		if p == nil {
			p = &CongestPoint{Multiplicity: pk.mult}
			points[pk] = p
			curves[ck] = append(curves[ck], p)
		}
		p.AvgBitsPerEdge = (p.AvgBitsPerEdge*float64(p.Cells) + rec.AvgBitsPerEdge) / float64(p.Cells+1)
		p.Cells++
		p.VerifiedBits += rec.TotalBits
		p.DistinctMessages += rec.TotalDistinct
	}

	// Iterate the curve keys in sorted order (never the map itself), per
	// plsvet's maporder check.
	keys := make([]curveKey, 0, len(curves))
	for ck := range curves {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.scheme != kj.scheme {
			return ki.scheme < kj.scheme
		}
		if ki.variant != kj.variant {
			return ki.variant < kj.variant
		}
		if ki.family != kj.family {
			return ki.family < kj.family
		}
		return ki.n < kj.n
	})
	sepSchemes, sepFamilies := map[string]bool{}, map[string]bool{}
	for _, ck := range keys {
		ps := curves[ck]
		curve := CongestCurve{Scheme: ck.scheme, Variant: ck.variant, Family: ck.family, N: ck.n}
		sort.Slice(ps, func(i, j int) bool {
			return congestAxisPos(ps[i].Multiplicity) < congestAxisPos(ps[j].Multiplicity)
		})
		for _, p := range ps {
			curve.Points = append(curve.Points, *p)
		}
		curve.NonIncreasing = nonIncreasingBits(curve.Points)
		if len(curve.Points) >= 2 && !curve.NonIncreasing {
			b.ViolatingCurves++
		}
		curve.Separated = len(curve.Points) >= 2 &&
			curve.Points[0].VerifiedBits > curve.Points[len(curve.Points)-1].VerifiedBits
		if curve.Separated {
			b.SeparatedCurves++
			sepSchemes[ck.scheme] = true
			sepFamilies[ck.family] = true
		}
		b.Curves = append(b.Curves, curve)
	}
	b.SeparatedSchemes = len(sepSchemes)
	b.SeparatedFamilies = len(sepFamilies)
	return b
}

// nonIncreasingBits reports whether the curve spans at least two
// multiplicity values and its verified bits never rise along the axis.
func nonIncreasingBits(ps []CongestPoint) bool {
	if len(ps) < 2 {
		return false
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].VerifiedBits > ps[i-1].VerifiedBits {
			return false
		}
	}
	return true
}

// WriteBenchCongest regenerates BENCH_congest.json from the directory's
// full results stream.
func WriteBenchCongest(dir, specName string) (BenchCongest, error) {
	recs, err := ReadRecords(dir)
	if err != nil {
		return BenchCongest{}, err
	}
	b := AggregateCongest(specName, recs)
	return b, writeBenchJSON(filepath.Join(dir, BenchCongestFile), b)
}

// ReadBenchCongest loads a campaign directory's congestion aggregate.
func ReadBenchCongest(dir string) (BenchCongest, error) {
	data, err := os.ReadFile(filepath.Join(dir, BenchCongestFile))
	if err != nil {
		return BenchCongest{}, fmt.Errorf("campaign: %w", err)
	}
	var b BenchCongest
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchCongest{}, fmt.Errorf("campaign: parse %s: %w", BenchCongestFile, err)
	}
	return b, nil
}
