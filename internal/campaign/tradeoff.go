package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The κ/t tradeoff aggregate: BENCH_tradeoff.json condenses every
// comm-bearing record into bits-per-round × t curves. One curve covers one
// (scheme, variant, family, size) point across the campaign's rounds axis;
// each curve point is the exact metered cost of the t-round execution —
// MaxPortBits is the largest single message of any round, i.e. the
// ⌈κ/t⌉-bit shard — so a curve whose MaxPortBits strictly decreases as t
// grows is the empirical form of the paper's space–time tradeoff. The file
// also counts how many distinct schemes and families contributed at least
// one strictly decreasing curve, which CI turns into an assertion: a
// metering or sharding regression that flattens the curves fails the build.
// Curves are sorted by scheme, variant, family, then size, and points by
// rounds, so the file is deterministic for a deterministic results stream.

// BenchTradeoffFile is the tradeoff aggregate's file name.
const BenchTradeoffFile = "BENCH_tradeoff.json"

// TradeoffPoint is one rounds value of a curve.
type TradeoffPoint struct {
	Rounds int `json:"rounds"`
	// BitsPerRound is the largest single message of any round (the shard
	// width ⌈κ/t⌉ for sharded schemes), maxed over the point's cells.
	BitsPerRound int `json:"bitsPerRound"`
	// AvgBitsPerEdge is the mean bits one directed edge carries in one
	// round, averaged over the point's cells.
	AvgBitsPerEdge float64 `json:"avgBitsPerEdge"`
	// TotalBits sums the wire bits of the point's cells (all rounds).
	TotalBits int64 `json:"totalBits"`
	Cells     int   `json:"cells"`
}

// TradeoffCurve is the bits-per-round × t curve of one scenario point.
type TradeoffCurve struct {
	Scheme  string          `json:"scheme"`
	Variant string          `json:"variant"`
	Family  string          `json:"family"`
	N       int             `json:"n"`
	Points  []TradeoffPoint `json:"points"` // sorted by rounds
	// StrictlyDecreasing reports that the curve has at least two points and
	// BitsPerRound strictly decreases along the whole rounds axis — the
	// tradeoff is visible at this point, not merely non-increasing.
	StrictlyDecreasing bool `json:"strictlyDecreasing"`
}

// BenchTradeoff is the BENCH_tradeoff.json layout.
type BenchTradeoff struct {
	Spec    string          `json:"spec"`
	Records int             `json:"records"` // comm-bearing ok records folded
	Curves  []TradeoffCurve `json:"curves"`
	// DecreasingCurves counts curves with StrictlyDecreasing set;
	// DecreasingSchemes / DecreasingFamilies count the distinct schemes and
	// families contributing at least one such curve (the CI assertion).
	DecreasingCurves   int `json:"decreasingCurves"`
	DecreasingSchemes  int `json:"decreasingSchemes"`
	DecreasingFamilies int `json:"decreasingFamilies"`
}

// AggregateTradeoff folds records into the κ/t tradeoff summary.
func AggregateTradeoff(specName string, recs []Record) BenchTradeoff {
	b := BenchTradeoff{Spec: specName}
	type curveKey struct {
		scheme, variant, family string
		n                       int
	}
	type pointKey struct {
		curveKey
		rounds int
	}
	points := map[pointKey]*TradeoffPoint{}
	curves := map[curveKey][]*TradeoffPoint{}
	for _, rec := range recs {
		if !commBearing(rec) {
			continue
		}
		b.Records++
		ck := curveKey{rec.Scheme, rec.Variant, rec.Family, rec.N}
		pk := pointKey{ck, rec.RoundCount()}
		p := points[pk]
		if p == nil {
			p = &TradeoffPoint{Rounds: pk.rounds}
			points[pk] = p
			curves[ck] = append(curves[ck], p)
		}
		p.AvgBitsPerEdge = (p.AvgBitsPerEdge*float64(p.Cells) + rec.AvgBitsPerEdge) / float64(p.Cells+1)
		p.Cells++
		p.TotalBits += rec.TotalBits
		if rec.MaxPortBits > p.BitsPerRound {
			p.BitsPerRound = rec.MaxPortBits
		}
	}

	// Iterate the curve keys in sorted order (never the map itself): the
	// curves land in their final scheme/variant/family/size order with no
	// order-sensitive pass over randomized map iteration, as plsvet's
	// maporder check requires.
	keys := make([]curveKey, 0, len(curves))
	for ck := range curves {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.scheme != kj.scheme {
			return ki.scheme < kj.scheme
		}
		if ki.variant != kj.variant {
			return ki.variant < kj.variant
		}
		if ki.family != kj.family {
			return ki.family < kj.family
		}
		return ki.n < kj.n
	})
	decSchemes, decFamilies := map[string]bool{}, map[string]bool{}
	for _, ck := range keys {
		ps := curves[ck]
		curve := TradeoffCurve{Scheme: ck.scheme, Variant: ck.variant, Family: ck.family, N: ck.n}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Rounds < ps[j].Rounds })
		for _, p := range ps {
			curve.Points = append(curve.Points, *p)
		}
		curve.StrictlyDecreasing = strictlyDecreasing(curve.Points)
		if curve.StrictlyDecreasing {
			b.DecreasingCurves++
			decSchemes[ck.scheme] = true
			decFamilies[ck.family] = true
		}
		b.Curves = append(b.Curves, curve)
	}
	b.DecreasingSchemes = len(decSchemes)
	b.DecreasingFamilies = len(decFamilies)
	return b
}

// strictlyDecreasing reports whether the curve spans at least two rounds
// values and its bits-per-round strictly decreases along all of them.
func strictlyDecreasing(ps []TradeoffPoint) bool {
	if len(ps) < 2 {
		return false
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].BitsPerRound >= ps[i-1].BitsPerRound {
			return false
		}
	}
	return true
}

// WriteBenchTradeoff regenerates BENCH_tradeoff.json from the directory's
// full results stream.
func WriteBenchTradeoff(dir, specName string) (BenchTradeoff, error) {
	recs, err := ReadRecords(dir)
	if err != nil {
		return BenchTradeoff{}, err
	}
	b := AggregateTradeoff(specName, recs)
	return b, writeBenchJSON(filepath.Join(dir, BenchTradeoffFile), b)
}

// ReadBenchTradeoff loads a campaign directory's tradeoff aggregate.
func ReadBenchTradeoff(dir string) (BenchTradeoff, error) {
	data, err := os.ReadFile(filepath.Join(dir, BenchTradeoffFile))
	if err != nil {
		return BenchTradeoff{}, fmt.Errorf("campaign: %w", err)
	}
	var b BenchTradeoff
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchTradeoff{}, fmt.Errorf("campaign: parse %s: %w", BenchTradeoffFile, err)
	}
	return b, nil
}
