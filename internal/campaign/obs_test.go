package campaign

import (
	"bufio"
	"bytes"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"

	"rpls/internal/obs"
)

// The no-influence guarantee at campaign scale: a run with the obs
// recorder fully live (metrics, spans, progress gauges) writes
// results.jsonl and BENCH_campaign.json byte-identical to a metrics-off
// run, at any parallelism and with the batched executor on the axis.

func obsSpec() Spec {
	s := testSpec()
	s.Name = "obsunit"
	s.Executors = []string{"sequential", "batched"}
	return s
}

func TestGoldenResultsWithMetricsOn(t *testing.T) {
	spec := obsSpec()
	obs.SetEnabled(false)
	offDir := t.TempDir()
	runInto(t, spec, offDir, 1)
	offResults := readFile(t, filepath.Join(offDir, ResultsFile))
	offBench := readFile(t, filepath.Join(offDir, BenchFile))

	for _, parallel := range []int{1, 4} {
		obs.Reset()
		obs.SetEnabled(true)
		onDir := t.TempDir()
		runInto(t, spec, onDir, parallel)
		snap := obs.TakeSnapshot()
		obs.SetEnabled(false)
		obs.Reset()

		if got := readFile(t, filepath.Join(onDir, ResultsFile)); !bytes.Equal(got, offResults) {
			t.Errorf("parallel=%d: results.jsonl differs between metrics on and off", parallel)
		}
		if got := readFile(t, filepath.Join(onDir, BenchFile)); !bytes.Equal(got, offBench) {
			t.Errorf("parallel=%d: %s differs between metrics on and off", parallel, BenchFile)
		}
		// The comparison is vacuous unless the run actually recorded.
		if snap.Counter("campaign.cells.ok") == 0 {
			t.Errorf("parallel=%d: metrics-on run recorded no ok cells", parallel)
		}
		if hv, _ := snap.Histogram("campaign.cell"); hv.Count == 0 {
			t.Errorf("parallel=%d: no cell durations recorded", parallel)
		}
		if w, _ := snap.Gauge("campaign.workers"); w != int64(parallel) {
			t.Errorf("parallel=%d: workers gauge reads %d", parallel, w)
		}
	}
}

// phases extracts the phase= attribute sequence from a TextHandler stream,
// collapsing consecutive repeats (progress repeats per tick).
func phases(t *testing.T, out []byte) []string {
	t.Helper()
	var seq []string
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "phase=")
		if i < 0 {
			t.Fatalf("log line without phase attribute: %q", line)
		}
		p := line[i+len("phase="):]
		if j := strings.IndexByte(p, ' '); j >= 0 {
			p = p[:j]
		}
		if len(seq) == 0 || seq[len(seq)-1] != p {
			seq = append(seq, p)
		}
	}
	return seq
}

// TestSchedulerPhaseSequence pins the structured progress contract the CI
// smoke greps: plan → execute → progress → aggregate → done on a fresh
// run, and plan → aggregate → done (no execute) on a completed resume.
func TestSchedulerPhaseSequence(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := (&Runner{Dir: dir, Parallel: 2, Log: &out}).Run(obsSpec()); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(phases(t, out.Bytes()), " ")
	if got != "plan execute progress aggregate done" {
		t.Errorf("fresh run phase sequence %q, want plan execute progress aggregate done", got)
	}
	for _, attr := range []string{"cellsPerSec=", "etaMs=", "spec=obsunit"} {
		if !strings.Contains(out.String(), attr) {
			t.Errorf("progress stream missing %s attribute", attr)
		}
	}

	out.Reset()
	if _, err := (&Runner{Dir: dir, Parallel: 2, Log: &out}).Run(obsSpec()); err != nil {
		t.Fatal(err)
	}
	got = strings.Join(phases(t, out.Bytes()), " ")
	if got != "plan aggregate done" {
		t.Errorf("resumed run phase sequence %q, want plan aggregate done", got)
	}
}

// TestRunnerLoggerResolution: a bare Log writer gets greppable slog text,
// an explicit Logger takes precedence, and the default safely discards.
func TestRunnerLoggerResolution(t *testing.T) {
	var viaWriter, viaLogger bytes.Buffer
	(&Runner{Log: &viaWriter}).logger().Info("campaign", "phase", "plan")
	if !strings.Contains(viaWriter.String(), "phase=plan") {
		t.Errorf("TextHandler output %q not greppable for phase=plan", viaWriter.String())
	}
	r := &Runner{Log: &viaWriter, Logger: slog.New(slog.NewTextHandler(&viaLogger, nil))}
	prev := viaWriter.Len()
	r.logger().Info("campaign", "phase", "execute")
	if viaLogger.Len() == 0 || viaWriter.Len() != prev {
		t.Error("explicit Logger must take precedence over Log")
	}
	(&Runner{}).logger().Info("campaign", "phase", "plan") // must not panic
}
