package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"rpls/internal/engine"
	"rpls/internal/graph"
)

// Variant names a scheme construction within a registry entry.
const (
	VariantDet      = "det"      // the deterministic scheme
	VariantRand     = "rand"     // the hand-built randomized scheme
	VariantCompiled = "compiled" // core.Compile of the deterministic scheme (Theorem 3.1)
)

// Measure names what a cell measures.
const (
	MeasureEstimate  = "estimate"  // completeness: prover labels, Monte-Carlo acceptance
	MeasureSoundness = "soundness" // worst-case acceptance under the standard adversaries
	MeasureComm      = "comm"      // wire accounting: exact bits per edge under honest labels
)

// CatalogFamily is the pseudo-family that sources instances from the
// experiments catalog (each predicate's own builder and corruptor) instead
// of the graph family registry.
const CatalogFamily = "catalog"

// SchemeAxis selects one registry entry and which of its variants to run.
// An empty Variants list selects every non-compiled variant the entry has.
type SchemeAxis struct {
	Name     string   `json:"name"`
	Variants []string `json:"variants,omitempty"`
}

// FamilyAxis selects one instance source: a registered graph family with
// optional shape knobs, or the "catalog" pseudo-family.
type FamilyAxis struct {
	Name string  `json:"name"`
	P    float64 `json:"p,omitempty"` // gnp edge probability
	D    int     `json:"d,omitempty"` // dregular degree
}

// String renders the axis for cell IDs: the name plus any set knobs.
func (f FamilyAxis) String() string {
	var knobs []string
	if f.P != 0 {
		knobs = append(knobs, fmt.Sprintf("p=%g", f.P))
	}
	if f.D != 0 {
		knobs = append(knobs, fmt.Sprintf("d=%d", f.D))
	}
	if len(knobs) == 0 {
		return f.Name
	}
	return f.Name + "(" + strings.Join(knobs, ",") + ")"
}

// Spec is the declarative description of a campaign: every axis is a list,
// and the plan is their cross product. The zero values of Trials,
// Assignments, and Executors select defaults (64, 4, ["sequential"]).
type Spec struct {
	Name     string       `json:"name"`
	Schemes  []SchemeAxis `json:"schemes"`
	Families []FamilyAxis `json:"families"`
	Sizes    []int        `json:"sizes"`
	Seeds    []uint64     `json:"seeds"`
	Measures []string     `json:"measures"`
	// Rounds is the t-PLS verification-round axis: each cell runs its
	// scheme variant sharded over t rounds of ⌈κ/t⌉ bits per port
	// (core.ShardCompile / core.ShardPLS). Empty selects [1], the classic
	// single round; every entry must be >= 1.
	Rounds []int `json:"rounds,omitempty"`
	// Multiplicity is the congestion axis: each cell caps the number of
	// distinct messages a node may mint per round at m (engine
	// WithMultiplicity). 0 is the classic unconstrained round (unicast),
	// 1 is broadcast. Empty selects [0]; every entry must be >= 0.
	Multiplicity []int    `json:"multiplicity,omitempty"`
	Executors    []string `json:"executors,omitempty"`
	Trials       int      `json:"trials,omitempty"`
	Assignments  int      `json:"assignments,omitempty"`
	MaxSE        float64  `json:"maxse,omitempty"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are errors so
// a typoed axis name cannot silently vanish from a campaign.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// withDefaults returns a copy with the optional axes filled in.
func (s Spec) withDefaults() Spec {
	if len(s.Executors) == 0 {
		s.Executors = []string{"sequential"}
	}
	if len(s.Rounds) == 0 {
		s.Rounds = []int{1}
	}
	if len(s.Multiplicity) == 0 {
		s.Multiplicity = []int{0}
	}
	if s.Trials <= 0 {
		s.Trials = 64
	}
	if s.Assignments <= 0 {
		s.Assignments = 4
	}
	return s
}

// Validate checks every axis against the registries: scheme names and
// variants against engine.Registry, family names against graph.Families,
// measures and executors against the known sets.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Schemes) == 0 || len(s.Families) == 0 || len(s.Sizes) == 0 ||
		len(s.Seeds) == 0 || len(s.Measures) == 0 {
		return fmt.Errorf("campaign: spec %q needs schemes, families, sizes, seeds, and measures", s.Name)
	}
	for _, ax := range s.Schemes {
		e, ok := engine.Lookup(ax.Name)
		if !ok {
			return fmt.Errorf("campaign: unknown scheme %q (registered: %s)", ax.Name, registeredSchemes())
		}
		for _, v := range ax.Variants {
			switch v {
			case VariantDet, VariantCompiled:
				if e.Det == nil {
					return fmt.Errorf("campaign: scheme %q has no deterministic variant for %q", ax.Name, v)
				}
			case VariantRand:
				if e.Rand == nil {
					return fmt.Errorf("campaign: scheme %q has no randomized variant", ax.Name)
				}
			default:
				return fmt.Errorf("campaign: unknown variant %q (det, rand, compiled)", v)
			}
		}
	}
	for _, f := range s.Families {
		if f.Name == CatalogFamily {
			// Knobs on the catalog pseudo-family would mint distinct cell IDs
			// for byte-identical work.
			if f.P != 0 || f.D != 0 {
				return fmt.Errorf("campaign: the %q instance source takes no p/d knobs", CatalogFamily)
			}
			continue
		}
		if _, ok := graph.LookupFamily(f.Name); !ok {
			return fmt.Errorf("campaign: unknown family %q (registered: %s, or %q)",
				f.Name, strings.Join(graph.FamilyNames(), ", "), CatalogFamily)
		}
		// Shape knobs are honest only where a builder reads them; anywhere
		// else they would fork cell IDs without changing the work. Out-of-
		// range values are rejected here, not silently defaulted by the
		// builder, so a cell ID never claims a shape that was not built.
		if f.P != 0 {
			if f.Name != "gnp" {
				return fmt.Errorf("campaign: family %q takes no p knob (only gnp does)", f.Name)
			}
			if f.P < 0 || f.P > 1 {
				return fmt.Errorf("campaign: gnp needs 0 < p <= 1, got %g", f.P)
			}
		}
		if f.D != 0 {
			if f.Name != "dregular" {
				return fmt.Errorf("campaign: family %q takes no d knob (only dregular does)", f.Name)
			}
			if f.D < 3 {
				return fmt.Errorf("campaign: dregular needs d >= 3, got %d", f.D)
			}
		}
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("campaign: size %d too small (need >= 2)", n)
		}
	}
	for _, m := range s.Measures {
		if m != MeasureEstimate && m != MeasureSoundness && m != MeasureComm {
			return fmt.Errorf("campaign: unknown measure %q (%s, %s, %s)",
				m, MeasureEstimate, MeasureSoundness, MeasureComm)
		}
	}
	for _, r := range s.Rounds {
		// t = 0 (and negative t) is rejected up front — a zero-round scheme
		// verifies nothing; t > κ is legal (late rounds carry empty shards).
		if r < 1 {
			return fmt.Errorf("campaign: rounds value %d invalid (need t >= 1)", r)
		}
	}
	for _, m := range s.Multiplicity {
		// m = 0 is the classic unconstrained round; negative caps are
		// rejected here with the same message the engine's validated
		// options layer would produce at run time.
		if m < 0 {
			return fmt.Errorf("campaign: multiplicity value %d invalid (need m >= 0; 0 = unconstrained)", m)
		}
	}
	for _, e := range s.Executors {
		if _, err := executorFor(e); err != nil {
			return err
		}
	}
	return nil
}

func registeredSchemes() string {
	var names []string
	for _, e := range engine.Entries() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

// variantsFor resolves an axis's variant list against the registry entry:
// an explicit list verbatim, otherwise every non-compiled variant the entry
// has, in det-then-rand order.
func variantsFor(ax SchemeAxis, e engine.Entry) []string {
	if len(ax.Variants) > 0 {
		return ax.Variants
	}
	var out []string
	if e.Det != nil {
		out = append(out, VariantDet)
	}
	if e.Rand != nil {
		out = append(out, VariantRand)
	}
	return out
}

// Cell is one fully resolved scenario: everything a worker needs to run it,
// and a pure function of these fields alone — no shared state, no clock.
type Cell struct {
	Index        int
	Scheme       string
	Variant      string
	Family       FamilyAxis
	N            int
	Seed         uint64
	Executor     string
	Measure      string
	Rounds       int // verification rounds t; 1 is the classic single round
	Multiplicity int // message-multiplicity cap m; 0 is unconstrained
	Trials       int
	Assignments  int
	MaxSE        float64
}

// ID is the cell's stable identity: the resolved axes plus the measurement
// budget, independent of position. A grown spec re-run in the same
// directory still recognizes its completed cells, while changing the
// budget (trials, soundness assignments, maxse) changes the IDs — those
// cells measure something different and must re-execute rather than be
// silently skipped as complete.
func (c Cell) ID() string {
	id := fmt.Sprintf("%s/%s/%s/n=%d/seed=%d/%s/%s/t=%d",
		c.Scheme, c.Variant, c.Family, c.N, c.Seed, c.Executor, c.Measure, c.Trials)
	// The classic single round writes no marker, so every pre-rounds
	// campaign directory resumes with its completed cells still recognized.
	if c.Rounds > 1 {
		id += fmt.Sprintf("/r=%d", c.Rounds)
	}
	// Likewise the unconstrained cap: pre-congestion directories resume
	// cleanly, and only genuinely capped cells carry the marker.
	if c.Multiplicity > 0 {
		id += fmt.Sprintf("/m=%d", c.Multiplicity)
	}
	if c.Measure == MeasureSoundness {
		id += fmt.Sprintf("/a=%d", c.Assignments)
	}
	if c.MaxSE != 0 {
		id += fmt.Sprintf("/se=%g", c.MaxSE)
	}
	return id
}

// Plan is a spec expanded into its cells, in fixed axis order.
type Plan struct {
	Spec  Spec
	Cells []Cell
}

// Breakdown is the per-axis factorization of a plan's cell count: the
// product of its fields equals len(Plan.Cells). It exists so a user can
// see where a distributed campaign's size comes from (and which axis to
// trim) before leasing cells to a worker fleet.
type Breakdown struct {
	SchemeVariants int // selected variants summed across scheme axes
	Families       int
	Sizes          int
	Seeds          int
	Executors      int
	Measures       int
	Rounds         int
	Multiplicity   int
	Cells          int // the product
}

func (b Breakdown) String() string {
	return fmt.Sprintf("%d scheme-variants × %d families × %d sizes × %d seeds × %d executors × %d measures × %d rounds × %d multiplicities = %d cells",
		b.SchemeVariants, b.Families, b.Sizes, b.Seeds, b.Executors, b.Measures, b.Rounds, b.Multiplicity, b.Cells)
}

// Breakdown factors the expanded cell count per axis. The plan's spec has
// its defaults filled in by Expand, so every axis length is the one that
// actually multiplied in.
func (p *Plan) Breakdown() Breakdown {
	b := Breakdown{
		Families:     len(p.Spec.Families),
		Sizes:        len(p.Spec.Sizes),
		Seeds:        len(p.Spec.Seeds),
		Executors:    len(p.Spec.Executors),
		Measures:     len(p.Spec.Measures),
		Rounds:       len(p.Spec.Rounds),
		Multiplicity: len(p.Spec.Multiplicity),
	}
	for _, ax := range p.Spec.Schemes {
		e, _ := engine.Lookup(ax.Name)
		b.SchemeVariants += len(variantsFor(ax, e))
	}
	b.Cells = b.SchemeVariants * b.Families * b.Sizes * b.Seeds * b.Executors * b.Measures * b.Rounds * b.Multiplicity
	return b
}

// Expand validates the spec and produces its plan. The nesting order —
// scheme, variant, family, size, seed, executor, measure, rounds,
// multiplicity — is part of the output contract: results.jsonl is written
// in this order. Each newly grown axis nests innermost (rounds, then
// multiplicity), so a spec that adds one keeps every existing cell's
// relative order.
func Expand(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	p := &Plan{Spec: spec}
	seen := map[string]bool{}
	for _, ax := range spec.Schemes {
		e, _ := engine.Lookup(ax.Name)
		for _, variant := range variantsFor(ax, e) {
			for _, fam := range spec.Families {
				for _, n := range spec.Sizes {
					for _, seed := range spec.Seeds {
						for _, exec := range spec.Executors {
							for _, measure := range spec.Measures {
								for _, rounds := range spec.Rounds {
									for _, mult := range spec.Multiplicity {
										c := Cell{
											Index:        len(p.Cells),
											Scheme:       ax.Name,
											Variant:      variant,
											Family:       fam,
											N:            n,
											Seed:         seed,
											Executor:     exec,
											Measure:      measure,
											Rounds:       rounds,
											Multiplicity: mult,
											Trials:       spec.Trials,
											Assignments:  spec.Assignments,
											MaxSE:        spec.MaxSE,
										}
										// Duplicate axis values (seeds [1, 1], a family
										// listed twice) would write duplicate records
										// under one ID; reject them at expansion.
										if seen[c.ID()] {
											return nil, fmt.Errorf("campaign: spec %q expands to duplicate cell %s (duplicate axis values)", spec.Name, c.ID())
										}
										seen[c.ID()] = true
										p.Cells = append(p.Cells, c)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return p, nil
}

func executorFor(name string) (func() engine.Executor, error) {
	switch name {
	case "sequential", "seq":
		return func() engine.Executor { return engine.NewSequential() }, nil
	case "pool":
		return func() engine.Executor { return engine.NewPool(0) }, nil
	case "goroutines", "go":
		return func() engine.Executor { return engine.NewGoroutines() }, nil
	case "batched":
		return func() engine.Executor { return engine.NewBatched() }, nil
	default:
		return nil, fmt.Errorf("campaign: unknown executor %q (sequential, pool, goroutines, batched)", name)
	}
}
