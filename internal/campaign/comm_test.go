package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rpls/internal/graph"
)

// commSpec crosses det and rand variants of two schemes over three graph
// families and growing sizes with the comm measure. uniform's payload (λ)
// scales with n, so this is the grid on which the per-edge det/rand gap
// must grow with instance size.
func commSpec() Spec {
	return Spec{
		Name: "comm-test",
		Schemes: []SchemeAxis{
			{Name: "uniform", Variants: []string{VariantDet, VariantRand}},
			{Name: "spanningtree", Variants: []string{VariantDet, VariantRand}},
		},
		Families: []FamilyAxis{{Name: "path"}, {Name: "cycle"}, {Name: "grid"}},
		Sizes:    []int{16, 128, 512},
		Seeds:    []uint64{1},
		Measures: []string{MeasureComm},
		Trials:   8,
	}
}

func TestCommMeasureRecordsWireCost(t *testing.T) {
	dir := t.TempDir()
	rep, err := (&Runner{Dir: dir, Parallel: 0}).Run(commSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 || rep.Incompatible > 0 {
		t.Fatalf("comm campaign not clean: %+v", rep)
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Measure != MeasureComm {
			t.Fatalf("unexpected measure %q in %s", r.Measure, r.Cell)
		}
		if r.TotalBits <= 0 || r.TotalMessages <= 0 || r.MaxPortBits <= 0 || r.AvgBitsPerEdge <= 0 {
			t.Errorf("%s: wire fields not measured: %+v", r.Cell, r)
		}
		// comm is pure communication: acceptance belongs to the estimate
		// measure and must stay unset.
		if r.Accepted != 0 || r.Acceptance != 0 || r.CIHigh != 0 {
			t.Errorf("%s: comm record carries acceptance fields", r.Cell)
		}
		// One message per directed edge per round: messages = trials × 2m.
		if r.TotalMessages != int64(r.Trials)*int64(2*r.M) {
			t.Errorf("%s: %d messages, want trials × 2m = %d", r.Cell, r.TotalMessages, r.Trials*2*r.M)
		}
	}
}

// TestBenchCommShowsGapGrowingWithSize is the acceptance criterion of the
// wire-accounting issue: BENCH_comm.json must show the per-edge det/rand
// gap growing with instance size on at least three graph families.
func TestBenchCommShowsGapGrowingWithSize(t *testing.T) {
	dir := t.TempDir()
	if _, err := (&Runner{Dir: dir, Parallel: 0}).Run(commSpec()); err != nil {
		t.Fatal(err)
	}
	bench, err := ReadBenchComm(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Records == 0 || len(bench.Rows) == 0 {
		t.Fatalf("empty comm aggregate: %+v", bench)
	}
	if bench.DetRandRatio <= 1 {
		t.Fatalf("overall det/rand per-edge ratio %v, want > 1", bench.DetRandRatio)
	}
	// Rows pair det and rand within one (scheme, family, size): both
	// variants must be present and every paired ratio must exceed 1.
	gaps := map[string][]float64{} // uniform's family → per-size det−rand gap, in size order
	for _, row := range bench.Rows {
		det, rand := row.Variants[VariantDet], row.Variants[VariantRand]
		if det == nil || rand == nil {
			t.Fatalf("row %s/%s n=%d missing a variant: %+v", row.Scheme, row.Family, row.N, row.Variants)
		}
		if row.DetRandRatio <= 1 {
			t.Errorf("%s/%s n=%d: det/rand ratio %v, want > 1", row.Scheme, row.Family, row.N, row.DetRandRatio)
		}
		// uniform is the λ-scaled scheme (payload grows with n), so its
		// rows are where the gap must grow with instance size.
		if row.Scheme == "uniform" {
			gaps[row.Family] = append(gaps[row.Family], det.AvgBitsPerEdge-rand.AvgBitsPerEdge)
		}
	}
	grown := 0
	for fam, g := range gaps {
		if len(g) != 3 {
			t.Fatalf("family %s: %d sizes, want 3", fam, len(g))
		}
		if g[2] > g[0] && g[2] > g[1] {
			grown++
		} else {
			t.Errorf("family %s: det−rand per-edge gap not growing with size: %v", fam, g)
		}
	}
	if grown < 3 {
		t.Errorf("gap grows on %d families, want at least 3", grown)
	}
}

// flakyFamily fails exactly when handed the raw cell seed and succeeds on
// any derived retry seed — the shape of a Steger–Wormald draw that happens
// to fail for one seed.
const flakySeed = 42

var registerFlaky sync.Once

func flakyFamilyName() string {
	registerFlaky.Do(func() {
		graph.RegisterFamily(graph.Family{
			Name:        "zz-flaky-test",
			Description: "test-only family failing on one specific seed",
			Random:      true,
			Build: func(p graph.FamilyParams) (*graph.Graph, error) {
				if p.Seed == flakySeed {
					return nil, fmt.Errorf("unlucky draw for seed %d", p.Seed)
				}
				return graph.Path(p.N), nil
			},
		})
	})
	return "zz-flaky-test"
}

func TestSeedDependentBuildFailureIsRetriedAndRecorded(t *testing.T) {
	fam := FamilyAxis{Name: flakyFamilyName()}

	// Direct build: the failing draw is retried with a derived seed and the
	// retry count is reported, not an incompatible hole.
	cfg, _, info, err := BuildLegalInfo("leader", fam, 8, flakySeed)
	if err != nil {
		t.Fatalf("retry did not rescue the seed-dependent failure: %v", err)
	}
	if info.Retries != 1 {
		t.Errorf("Retries = %d, want 1", info.Retries)
	}
	if cfg.G.N() != 8 {
		t.Errorf("built %d nodes, want 8", cfg.G.N())
	}

	// A lucky seed needs no retries.
	if _, _, info, err = BuildLegalInfo("leader", fam, 8, 7); err != nil || info.Retries != 0 {
		t.Errorf("clean seed: retries=%d err=%v, want 0 retries and no error", info.Retries, err)
	}

	// Determinism: the same cell builds the same graph both times.
	a, _, _, err := BuildLegalInfo("leader", fam, 8, flakySeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.N() != cfg.G.N() || a.G.M() != cfg.G.M() {
		t.Errorf("retried build not deterministic: %d/%d vs %d/%d nodes/edges",
			a.G.N(), a.G.M(), cfg.G.N(), cfg.G.M())
	}

	// Through the scheduler: the cell lands OK with the retry on record.
	rec := RunCell(Cell{
		Scheme: "leader", Variant: VariantDet, Family: fam, N: 8,
		Seed: flakySeed, Executor: "sequential", Measure: MeasureComm, Trials: 4,
	})
	if rec.Status != StatusOK {
		t.Fatalf("cell status %s (%s), want ok", rec.Status, rec.Reason)
	}
	if rec.Retries != 1 {
		t.Errorf("record retries = %d, want 1", rec.Retries)
	}
}

// TestDeterministicFamilyIsNotRetried pins the other half of the retry
// contract: a deterministic family fails identically for every seed, so it
// gets exactly one attempt and stays an incompatible hole.
func TestDeterministicFamilyIsNotRetried(t *testing.T) {
	// torus needs n >= 9; n=4 fails regardless of seed.
	_, _, info, err := BuildLegalInfo("leader", FamilyAxis{Name: "torus"}, 4, flakySeed)
	if !IsIncompatible(err) {
		t.Fatalf("err = %v, want incompatible", err)
	}
	if info.Retries != 0 {
		t.Errorf("deterministic family was retried %d times", info.Retries)
	}
}

func TestCommBenchWrittenEvenWithoutCommRecords(t *testing.T) {
	// A soundness-only campaign still writes a (empty-rowed) BENCH_comm.json
	// so tooling can rely on the file existing.
	dir := t.TempDir()
	spec := Spec{
		Name:        "soundness-only",
		Schemes:     []SchemeAxis{{Name: "leader", Variants: []string{VariantDet}}},
		Families:    []FamilyAxis{{Name: "path"}},
		Sizes:       []int{8},
		Seeds:       []uint64{1},
		Measures:    []string{MeasureSoundness},
		Trials:      4,
		Assignments: 2,
	}
	if _, err := (&Runner{Dir: dir, Parallel: 1}).Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, BenchCommFile)); err != nil {
		t.Fatalf("BENCH_comm.json missing: %v", err)
	}
	bench, err := ReadBenchComm(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Records != 0 || len(bench.Rows) != 0 {
		t.Errorf("soundness-only campaign folded comm records: %+v", bench)
	}
}
