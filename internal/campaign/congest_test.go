package campaign

import (
	"testing"
)

// crec builds a minimal comm-bearing record at a multiplicity point.
func crec(scheme, variant, family string, n, mult int, bits, distinct int64) Record {
	return Record{
		Scheme: scheme, Variant: variant, Family: family, N: n,
		Multiplicity: mult, Status: StatusOK, Measure: MeasureComm,
		TotalBits: bits, TotalDistinct: distinct,
		TotalMessages: 100, AvgBitsPerEdge: float64(bits) / 100,
	}
}

func TestAggregateCongestCurves(t *testing.T) {
	recs := []Record{
		// A merging scheme: bits fall strictly from broadcast (m=1) through
		// m=2 to the unconstrained unicast extreme (m=0, sorted last).
		crec("a", "rand", "path", 16, 1, 400, 100),
		crec("a", "rand", "path", 16, 2, 220, 200),
		crec("a", "rand", "path", 16, 0, 100, 400),
		// A flat replication-fallback curve: non-increasing but not separated.
		crec("b", "rand", "path", 16, 1, 50, 100),
		crec("b", "rand", "path", 16, 0, 50, 400),
		// A single-point curve can witness nothing.
		crec("c", "rand", "grid", 16, 1, 30, 10),
		// A violating curve: bits rise from m=1 to m=0.
		crec("d", "rand", "grid", 16, 1, 10, 10),
		crec("d", "rand", "grid", 16, 0, 20, 40),
		// Multi-round and non-comm records must not be folded.
		{Scheme: "a", Variant: "rand", Family: "path", N: 16, Rounds: 3, Status: StatusOK, Measure: MeasureComm, TotalBits: 999, TotalMessages: 1},
		{Scheme: "a", Variant: "rand", Family: "path", N: 16, Status: StatusOK, Measure: MeasureSoundness, TotalBits: 999, TotalMessages: 1},
	}
	b := AggregateCongest("spec", recs)
	if b.Records != 8 {
		t.Fatalf("folded %d records, want 8", b.Records)
	}
	if len(b.Curves) != 4 {
		t.Fatalf("%d curves, want 4", len(b.Curves))
	}
	byScheme := map[string]CongestCurve{}
	for _, c := range b.Curves {
		byScheme[c.Scheme] = c
	}
	a := byScheme["a"]
	if !a.NonIncreasing || !a.Separated {
		t.Errorf("curve a should be non-increasing and separated: %+v", a)
	}
	// Axis order: m=1 first, capped ascending, m=0 (unicast) last.
	if len(a.Points) != 3 || a.Points[0].Multiplicity != 1 ||
		a.Points[1].Multiplicity != 2 || a.Points[2].Multiplicity != 0 {
		t.Errorf("curve a axis order wrong: %+v", a.Points)
	}
	if a.Points[0].VerifiedBits != 400 || a.Points[2].DistinctMessages != 400 {
		t.Errorf("curve a point sums wrong: %+v", a.Points)
	}
	if bb := byScheme["b"]; !bb.NonIncreasing || bb.Separated {
		t.Errorf("flat curve b should be non-increasing but not separated: %+v", bb)
	}
	if cc := byScheme["c"]; cc.NonIncreasing || cc.Separated {
		t.Errorf("single-point curve c can witness nothing: %+v", cc)
	}
	if dd := byScheme["d"]; dd.NonIncreasing || dd.Separated {
		t.Errorf("violating curve d wrongly classified: %+v", dd)
	}
	if b.ViolatingCurves != 1 {
		t.Errorf("ViolatingCurves = %d, want 1 (curve d)", b.ViolatingCurves)
	}
	if b.SeparatedCurves != 1 || b.SeparatedSchemes != 1 || b.SeparatedFamilies != 1 {
		t.Errorf("separated counts = %d curves, %d schemes, %d families; want 1, 1, 1",
			b.SeparatedCurves, b.SeparatedSchemes, b.SeparatedFamilies)
	}
}

func TestSpecMultiplicityValidation(t *testing.T) {
	base := Spec{
		Name:     "m",
		Schemes:  []SchemeAxis{{Name: "spanningtree"}},
		Families: []FamilyAxis{{Name: "path"}},
		Sizes:    []int{8},
		Seeds:    []uint64{1},
		Measures: []string{MeasureComm},
	}
	for _, bad := range [][]int{{-1}, {2, -3}} {
		s := base
		s.Multiplicity = bad
		if err := s.Validate(); err == nil {
			t.Errorf("multiplicity %v accepted, want rejection", bad)
		}
	}
	s := base
	s.Multiplicity = []int{1, 2, 0} // 0 = unconstrained is legal
	if err := s.Validate(); err != nil {
		t.Errorf("multiplicity %v rejected: %v", s.Multiplicity, err)
	}
}

// TestCellIDMultiplicitySuffix pins resume compatibility: an unconstrained
// cell's ID is byte-identical to the pre-congestion engine, and capped
// cells get a distinct /m= marker.
func TestCellIDMultiplicitySuffix(t *testing.T) {
	c := Cell{Scheme: "s", Variant: "rand", Family: FamilyAxis{Name: "path"},
		N: 8, Seed: 1, Executor: "sequential", Measure: MeasureComm, Trials: 4, Rounds: 1}
	if got, want := c.ID(), "s/rand/path/n=8/seed=1/sequential/comm/t=4"; got != want {
		t.Errorf("m=0 cell ID %q, want the pre-congestion form %q", got, want)
	}
	c.Multiplicity = 2
	if got, want := c.ID(), "s/rand/path/n=8/seed=1/sequential/comm/t=4/m=2"; got != want {
		t.Errorf("m=2 cell ID %q, want %q", got, want)
	}
}

// TestExpandMultiplicityAxis checks the multiplicity axis nests innermost
// and defaults to the single unconstrained cell.
func TestExpandMultiplicityAxis(t *testing.T) {
	spec := Spec{
		Name:         "m",
		Schemes:      []SchemeAxis{{Name: "uniform", Variants: []string{VariantRand}}},
		Families:     []FamilyAxis{{Name: "path"}},
		Sizes:        []int{8},
		Seeds:        []uint64{1},
		Measures:     []string{MeasureComm},
		Multiplicity: []int{1, 2, 0},
	}
	plan, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(plan.Cells))
	}
	for i, want := range []int{1, 2, 0} {
		if plan.Cells[i].Multiplicity != want {
			t.Errorf("cell %d multiplicity = %d, want %d (innermost nesting)", i, plan.Cells[i].Multiplicity, want)
		}
	}

	spec.Multiplicity = nil
	plan, err = Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 1 || plan.Cells[0].Multiplicity != 0 {
		t.Fatalf("default multiplicity plan = %+v, want one unconstrained cell", plan.Cells)
	}
}

// TestRunCellMultiplicity executes the uniform randomized scheme at
// m ∈ {1, 2, 0} and checks the records chart the congestion axis:
// verified bits non-increasing toward unicast with a strict
// broadcast/unicast separation, distinct messages non-decreasing, and the
// conservation law TotalDistinct <= TotalMessages everywhere.
func TestRunCellMultiplicity(t *testing.T) {
	mk := func(m int) Cell {
		return Cell{Scheme: "uniform", Variant: VariantRand,
			Family: FamilyAxis{Name: CatalogFamily}, N: 12, Seed: 3,
			Executor: "sequential", Measure: MeasureComm, Rounds: 1, Trials: 8,
			Multiplicity: m}
	}
	var prev Record
	for i, m := range []int{1, 2, 0} {
		r := RunCell(mk(m))
		if r.Status != StatusOK {
			t.Fatalf("m=%d cell failed: %s (%s)", m, r.Status, r.Reason)
		}
		if r.Multiplicity != m {
			t.Errorf("m=%d record Multiplicity = %d", m, r.Multiplicity)
		}
		if r.TotalDistinct <= 0 || r.TotalDistinct > r.TotalMessages {
			t.Errorf("m=%d: distinct %d outside (0, messages=%d]", m, r.TotalDistinct, r.TotalMessages)
		}
		if i > 0 {
			if r.TotalBits > prev.TotalBits {
				t.Errorf("m=%d: verified bits %d rose above previous point's %d", m, r.TotalBits, prev.TotalBits)
			}
			if r.TotalDistinct < prev.TotalDistinct {
				t.Errorf("m=%d: distinct %d fell below previous point's %d", m, r.TotalDistinct, prev.TotalDistinct)
			}
		}
		prev = r
	}
	broadcast := RunCell(mk(1))
	if broadcast.TotalBits <= prev.TotalBits {
		t.Errorf("no separation: broadcast %d bits vs unicast %d", broadcast.TotalBits, prev.TotalBits)
	}
}
