package campaign

import (
	"testing"

	"rpls/internal/core"
)

// rec builds a minimal comm-bearing record for aggregation tests.
func rec(scheme, variant, family string, n, rounds, portBits int) Record {
	return Record{
		Scheme: scheme, Variant: variant, Family: family, N: n,
		Rounds: rounds, Status: StatusOK, Measure: MeasureComm,
		MaxPortBits: portBits, TotalBits: int64(portBits) * 100,
		TotalMessages: 100, AvgBitsPerEdge: float64(portBits),
	}
}

func TestAggregateTradeoffCurves(t *testing.T) {
	recs := []Record{
		// A strictly decreasing curve: 40 > 20 > 10. The t=1 record carries
		// Rounds 0 (the pre-rounds on-disk form) and must count as t=1.
		rec("a", "det", "path", 16, 0, 40),
		rec("a", "det", "path", 16, 2, 20),
		rec("a", "det", "path", 16, 4, 10),
		// A flat curve: sharding did nothing (κ = 1); not decreasing.
		rec("b", "rand", "path", 16, 1, 1),
		rec("b", "rand", "path", 16, 2, 1),
		// A single-point curve can never witness the tradeoff.
		rec("c", "rand", "grid", 16, 1, 30),
		// A non-monotone curve: 8 then 9.
		rec("d", "det", "grid", 16, 1, 16),
		rec("d", "det", "grid", 16, 2, 8),
		rec("d", "det", "grid", 16, 4, 9),
		// Errors and soundness records must not be folded.
		{Scheme: "a", Variant: "det", Family: "path", N: 16, Status: StatusError, Measure: MeasureComm, MaxPortBits: 999, TotalMessages: 1},
		{Scheme: "a", Variant: "det", Family: "path", N: 16, Status: StatusOK, Measure: MeasureSoundness, MaxPortBits: 999, TotalMessages: 1},
	}
	b := AggregateTradeoff("spec", recs)
	if b.Records != 9 {
		t.Fatalf("folded %d records, want 9", b.Records)
	}
	if len(b.Curves) != 4 {
		t.Fatalf("%d curves, want 4", len(b.Curves))
	}
	byScheme := map[string]TradeoffCurve{}
	for _, c := range b.Curves {
		byScheme[c.Scheme] = c
	}
	a := byScheme["a"]
	if !a.StrictlyDecreasing {
		t.Errorf("curve a not marked strictly decreasing: %+v", a)
	}
	if len(a.Points) != 3 || a.Points[0].Rounds != 1 || a.Points[0].BitsPerRound != 40 {
		t.Errorf("curve a points wrong (Rounds 0 must normalize to 1): %+v", a.Points)
	}
	for _, name := range []string{"b", "c", "d"} {
		if byScheme[name].StrictlyDecreasing {
			t.Errorf("curve %s wrongly marked strictly decreasing", name)
		}
	}
	if b.DecreasingCurves != 1 || b.DecreasingSchemes != 1 || b.DecreasingFamilies != 1 {
		t.Errorf("decreasing counts = %d curves, %d schemes, %d families; want 1, 1, 1",
			b.DecreasingCurves, b.DecreasingSchemes, b.DecreasingFamilies)
	}
}

func TestSpecRoundsValidation(t *testing.T) {
	base := Spec{
		Name:     "r",
		Schemes:  []SchemeAxis{{Name: "spanningtree"}},
		Families: []FamilyAxis{{Name: "path"}},
		Sizes:    []int{8},
		Seeds:    []uint64{1},
		Measures: []string{MeasureComm},
	}
	for _, bad := range [][]int{{0}, {-2}, {2, 0}} {
		s := base
		s.Rounds = bad
		if err := s.Validate(); err == nil {
			t.Errorf("rounds %v accepted, want rejection", bad)
		}
	}
	s := base
	s.Rounds = []int{1, 2, 1000} // t > κ is legal: late rounds are empty
	if err := s.Validate(); err != nil {
		t.Errorf("rounds %v rejected: %v", s.Rounds, err)
	}
}

// TestCellIDRoundsSuffix pins resume compatibility: a single-round cell's
// ID is byte-identical to the pre-rounds engine, and multi-round cells get
// a distinct /r= marker.
func TestCellIDRoundsSuffix(t *testing.T) {
	c := Cell{Scheme: "s", Variant: "det", Family: FamilyAxis{Name: "path"},
		N: 8, Seed: 1, Executor: "sequential", Measure: MeasureComm, Trials: 4}
	c.Rounds = 1
	if got, want := c.ID(), "s/det/path/n=8/seed=1/sequential/comm/t=4"; got != want {
		t.Errorf("t=1 cell ID %q, want the pre-rounds form %q", got, want)
	}
	c.Rounds = 3
	if got, want := c.ID(), "s/det/path/n=8/seed=1/sequential/comm/t=4/r=3"; got != want {
		t.Errorf("t=3 cell ID %q, want %q", got, want)
	}
}

// TestExpandRoundsAxis checks the rounds axis nests innermost and defaults
// to the classic single round.
func TestExpandRoundsAxis(t *testing.T) {
	spec := Spec{
		Name:     "r",
		Schemes:  []SchemeAxis{{Name: "spanningtree", Variants: []string{VariantDet}}},
		Families: []FamilyAxis{{Name: "path"}},
		Sizes:    []int{8},
		Seeds:    []uint64{1},
		Measures: []string{MeasureComm},
		Rounds:   []int{1, 2, 4},
	}
	plan, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(plan.Cells))
	}
	for i, want := range []int{1, 2, 4} {
		if plan.Cells[i].Rounds != want {
			t.Errorf("cell %d rounds = %d, want %d (innermost nesting)", i, plan.Cells[i].Rounds, want)
		}
	}

	spec.Rounds = nil
	plan, err = Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 1 || plan.Cells[0].Rounds != 1 {
		t.Fatalf("default rounds plan = %+v, want one single-round cell", plan.Cells)
	}
}

// TestRunCellRounds executes one scheme at t ∈ {1, 2, 4} and checks the
// records show the tradeoff: same verdict, per-round port bits exactly
// ⌈κ/t⌉, total bits conserved.
func TestRunCellRounds(t *testing.T) {
	mk := func(rounds int) Cell {
		return Cell{Scheme: "spanningtree", Variant: VariantDet,
			Family: FamilyAxis{Name: CatalogFamily}, N: 12, Seed: 3,
			Executor: "sequential", Measure: MeasureComm, Rounds: rounds, Trials: 8}
	}
	base := RunCell(mk(1))
	if base.Status != StatusOK {
		t.Fatalf("t=1 cell failed: %s (%s)", base.Status, base.Reason)
	}
	if base.Rounds != 0 {
		t.Errorf("t=1 record carries Rounds=%d; the classic cell must omit it", base.Rounds)
	}
	prev := base.MaxPortBits
	for _, rounds := range []int{2, 4} {
		r := RunCell(mk(rounds))
		if r.Status != StatusOK {
			t.Fatalf("t=%d cell failed: %s (%s)", rounds, r.Status, r.Reason)
		}
		if r.Rounds != rounds {
			t.Errorf("t=%d record Rounds = %d", rounds, r.Rounds)
		}
		if want := core.ShardWidth(base.MaxPortBits, rounds); r.MaxPortBits != want {
			t.Errorf("t=%d: port bits %d, want ⌈%d/%d⌉ = %d",
				rounds, r.MaxPortBits, base.MaxPortBits, rounds, want)
		}
		if r.MaxPortBits >= prev {
			t.Errorf("t=%d: bits-per-round %d not below t/2's %d", rounds, r.MaxPortBits, prev)
		}
		if r.TotalBits != base.TotalBits {
			t.Errorf("t=%d: total bits %d != base %d", rounds, r.TotalBits, base.TotalBits)
		}
		prev = r.MaxPortBits
	}
}
