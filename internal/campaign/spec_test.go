package campaign

import (
	"strings"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Name: "unit",
		Schemes: []SchemeAxis{
			{Name: "spanningtree"},
			{Name: "coloring", Variants: []string{VariantRand}},
			// Incompatible on the cyclic families (gnp, grid): those cells
			// must surface as documented holes, not errors.
			{Name: "acyclicity"},
		},
		Families: []FamilyAxis{{Name: "gnp", P: 0.2}, {Name: "grid"}, {Name: CatalogFamily}},
		Sizes:    []int{8, 12},
		Seeds:    []uint64{3},
		Measures: []string{MeasureEstimate, MeasureSoundness},
		Trials:   16,
	}
}

func TestParseSpecRejectsUnknownNames(t *testing.T) {
	cases := []struct{ name, doc, wantErr string }{
		{"unknown scheme", `{"name":"x","schemes":[{"name":"nope"}],"families":[{"name":"path"}],"sizes":[8],"seeds":[1],"measures":["estimate"]}`, "unknown scheme"},
		{"unknown family", `{"name":"x","schemes":[{"name":"leader"}],"families":[{"name":"nope"}],"sizes":[8],"seeds":[1],"measures":["estimate"]}`, "unknown family"},
		{"unknown measure", `{"name":"x","schemes":[{"name":"leader"}],"families":[{"name":"path"}],"sizes":[8],"seeds":[1],"measures":["nope"]}`, "unknown measure"},
		{"unknown variant", `{"name":"x","schemes":[{"name":"leader","variants":["nope"]}],"families":[{"name":"path"}],"sizes":[8],"seeds":[1],"measures":["estimate"]}`, "unknown variant"},
		{"unknown executor", `{"name":"x","schemes":[{"name":"leader"}],"families":[{"name":"path"}],"sizes":[8],"seeds":[1],"measures":["estimate"],"executors":["nope"]}`, "unknown executor"},
		{"unknown field", `{"name":"x","schemez":[]}`, "unknown field"},
		{"missing axes", `{"name":"x"}`, "needs schemes"},
		{"tiny size", `{"name":"x","schemes":[{"name":"leader"}],"families":[{"name":"path"}],"sizes":[1],"seeds":[1],"measures":["estimate"]}`, "too small"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestExpandOrderAndIDs(t *testing.T) {
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// spanningtree and acyclicity: det+rand (defaulted); coloring: rand only.
	// (2 + 1 + 2 variants) × 3 families × 2 sizes × 1 seed × 1 executor × 2 measures.
	want := 5 * 3 * 2 * 1 * 1 * 2
	if len(plan.Cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(plan.Cells), want)
	}
	if got := plan.Cells[0].ID(); got != "spanningtree/det/gnp(p=0.2)/n=8/seed=3/sequential/estimate/t=16" {
		t.Errorf("first cell ID = %q", got)
	}
	ids := make(map[string]bool, len(plan.Cells))
	for i, c := range plan.Cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if ids[c.ID()] {
			t.Fatalf("duplicate cell ID %q", c.ID())
		}
		ids[c.ID()] = true
		if c.Trials != 16 || c.Assignments != 4 {
			t.Fatalf("cell %d: defaults not applied: %+v", i, c)
		}
	}
	// Expansion is deterministic: same spec, same plan.
	again, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Cells {
		if plan.Cells[i] != again.Cells[i] {
			t.Fatalf("expansion unstable at cell %d", i)
		}
	}
}

func TestCompiledVariantRequiresDet(t *testing.T) {
	s := testSpec()
	s.Schemes = []SchemeAxis{{Name: "spanningtree", Variants: []string{VariantCompiled}}}
	plan, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Cells {
		if c.Variant != VariantCompiled {
			t.Fatalf("unexpected variant %q", c.Variant)
		}
	}
}

func TestExpandRejectsDuplicateCells(t *testing.T) {
	s := testSpec()
	s.Seeds = []uint64{1, 1}
	if _, err := Expand(s); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Errorf("duplicate seeds: got %v, want duplicate-cell error", err)
	}
	s = testSpec()
	s.Families = append(s.Families, FamilyAxis{Name: "grid"})
	if _, err := Expand(s); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Errorf("duplicate family: got %v, want duplicate-cell error", err)
	}
}

func TestValidateRejectsMeaninglessKnobs(t *testing.T) {
	s := testSpec()
	s.Families = []FamilyAxis{{Name: CatalogFamily, P: 0.5}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no p/d knobs") {
		t.Errorf("catalog with p: got %v", err)
	}
	s.Families = []FamilyAxis{{Name: "grid", P: 0.5}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no p knob") {
		t.Errorf("grid with p: got %v", err)
	}
	s.Families = []FamilyAxis{{Name: "gnp", D: 4}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no d knob") {
		t.Errorf("gnp with d: got %v", err)
	}
	// Out-of-range knobs are rejected up front, never silently defaulted
	// into a cell ID that lies about the built shape.
	s.Families = []FamilyAxis{{Name: "gnp", P: -0.5}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "0 < p <= 1") {
		t.Errorf("gnp with negative p: got %v", err)
	}
	s.Families = []FamilyAxis{{Name: "dregular", D: 2}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "d >= 3") {
		t.Errorf("dregular with d=2: got %v", err)
	}
	s.Families = []FamilyAxis{{Name: "gnp", P: 0.5}, {Name: "dregular", D: 4}}
	if err := s.Validate(); err != nil {
		t.Errorf("legitimate knobs rejected: %v", err)
	}
}

func TestFamilySizeMismatchIsIncompatible(t *testing.T) {
	// torus needs n >= 9; a smaller size in the cross product is a
	// documented hole, not a campaign failure.
	if _, _, err := BuildLegal("leader", FamilyAxis{Name: "torus"}, 4, 1); !IsIncompatible(err) {
		t.Errorf("torus at n=4: want ErrIncompatible, got %v", err)
	}
}

func TestBuildLegalIncompatibleScenarios(t *testing.T) {
	// acyclicity on a torus: no forest, so no legal instance.
	if _, _, err := BuildLegal("acyclicity", FamilyAxis{Name: "torus"}, 9, 1); err == nil {
		t.Error("acyclicity on torus should be incompatible")
	} else if !IsIncompatible(err) {
		t.Errorf("acyclicity on torus: want ErrIncompatible, got %v", err)
	}
	// flow has no generic legalizer.
	if _, _, err := BuildLegal("flow", FamilyAxis{Name: "gnp"}, 8, 1); !IsIncompatible(err) {
		t.Errorf("flow on gnp: want ErrIncompatible, got %v", err)
	}
	// but spanningtree on a torus is fine.
	cfg, _, err := BuildLegal("spanningtree", FamilyAxis{Name: "torus"}, 9, 1)
	if err != nil {
		t.Fatalf("spanningtree on torus: %v", err)
	}
	if cfg.G.N() != 9 {
		t.Errorf("torus n=9 built %d nodes", cfg.G.N())
	}
}
