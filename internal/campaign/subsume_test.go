package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// The migration proof for the hand-wired experiment tables: the shipped
// examples/campaign/e1_e6.json spec expresses the E1 compilation grid
// (scheme × size, deterministic labels vs compiled certificates) and the
// E5/E6 adversarial runs on the path family as campaign cells, and running
// it reproduces the tables' substance — compiled certificates exist,
// accept every honest trial (the compiler is one-sided), and are smaller
// than the deterministic labels they were compiled from (Theorem 3.1).

func loadE1E6Spec(t *testing.T) Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaign", "e1_e6.json"))
	if err != nil {
		t.Fatalf("shipped spec: %v", err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("shipped spec does not parse: %v", err)
	}
	return spec
}

func TestE1E6SpecCoversTheHandWiredGrid(t *testing.T) {
	spec := loadE1E6Spec(t)
	plan, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, c := range plan.Cells {
		have[c.ID()] = true
	}
	// E1's grid: every scheme × size must have a compiled-certificate
	// estimate and its deterministic-label baseline on catalog instances.
	for _, scheme := range []string{"spanningtree", "acyclicity", "mst", "biconnectivity"} {
		for _, n := range spec.Sizes {
			for _, variant := range []string{VariantDet, VariantCompiled} {
				id := Cell{Scheme: scheme, Variant: variant, Family: FamilyAxis{Name: CatalogFamily},
					N: n, Seed: spec.Seeds[0], Executor: "sequential", Measure: MeasureEstimate,
					Trials: spec.Trials}.ID()
				if !have[id] {
					t.Errorf("E1 grid cell missing from expansion: %s", id)
				}
			}
		}
	}
	// E5/E6's shape: adversarial (soundness) runs of acyclicity on the
	// Theorem 5.1 path family, deterministic and randomized.
	for _, variant := range []string{VariantDet, VariantRand} {
		id := Cell{Scheme: "acyclicity", Variant: variant, Family: FamilyAxis{Name: "path"},
			N: spec.Sizes[0], Seed: spec.Seeds[0], Executor: "sequential", Measure: MeasureSoundness,
			Trials: spec.Trials, Assignments: spec.Assignments}.ID()
		if !have[id] {
			t.Errorf("E5/E6 soundness cell missing from expansion: %s", id)
		}
	}
}

func TestE1E6SpecRunReproducesCompilation(t *testing.T) {
	spec := loadE1E6Spec(t)
	// Shrink the axes for test time; the cells keep their structure.
	spec.Sizes = []int{12}
	spec.Trials = 12
	dir := t.TempDir()
	rep, err := (&Runner{Dir: dir, Parallel: 0}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d cells errored", rep.Errors)
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	detLabelBits := map[string]int{}
	compiledCertBits := map[string]int{}
	for _, r := range recs {
		if r.Family != CatalogFamily || r.Measure != MeasureEstimate || r.Status != StatusOK {
			continue
		}
		switch r.Variant {
		case VariantDet:
			detLabelBits[r.Scheme] = r.LabelBits
		case VariantCompiled:
			compiledCertBits[r.Scheme] = r.CertBits
			if r.Accepted != r.Trials {
				t.Errorf("%s: compiled scheme accepted %d of %d honest trials; the compiler is one-sided", r.Cell, r.Accepted, r.Trials)
			}
		}
	}
	for _, scheme := range []string{"spanningtree", "acyclicity", "mst", "biconnectivity"} {
		kappa, ok1 := detLabelBits[scheme]
		cert, ok2 := compiledCertBits[scheme]
		if !ok1 || !ok2 {
			t.Errorf("%s: missing det (%v) or compiled (%v) catalog estimate", scheme, ok1, ok2)
			continue
		}
		// Theorem 3.1's substance, as E1 tabulates it: compiled certificates
		// are shorter than the deterministic labels they certify.
		if cert <= 0 || cert >= kappa {
			t.Errorf("%s: compiled certs %d bits vs det labels %d bits; expected 0 < certs < labels", scheme, cert, kappa)
		}
	}
}
