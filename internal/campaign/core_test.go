package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A crash mid-append leaves a partial final manifest line. Loading must
// keep every complete record and discard only the torn tail.
func TestLoadManifestToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestFile)
	content := `{"cell":"a","status":"ok"}` + "\n" +
		`{"cell":"b","status":"error"}` + "\n" +
		`{"cell":"c","sta` // crash mid-append: no closing JSON, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := loadManifest(path)
	if err != nil {
		t.Fatalf("torn tail must not fail the load: %v", err)
	}
	if len(done) != 2 || done["a"] != StatusOK || done["b"] != StatusError {
		t.Errorf("done = %v, want the two complete records", done)
	}
}

// Garbage anywhere before the final line is corruption, not a torn tail:
// skipping it would re-execute the cell and append a duplicate record.
func TestLoadManifestRejectsMidFileGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestFile)
	content := `{"cell":"a","status":"ok"}` + "\n" +
		`{"cell":"b","sta` + "\n" + // complete line, broken JSON
		`{"cell":"c","status":"ok"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(path); err == nil || !strings.Contains(err.Error(), "manifest line 2") {
		t.Errorf("got %v, want an error naming manifest line 2", err)
	}
}

// End to end: resuming over a manifest with a torn tail succeeds, repairs
// the file in place, and re-executes nothing whose record survived.
func TestResumeRepairsTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Sizes = []int{8}
	rep := runInto(t, spec, dir, 2)

	mpath := filepath.Join(dir, ManifestFile)
	before := readFile(t, mpath)
	f, err := os.OpenFile(mpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cell":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep2 := runInto(t, spec, dir, 2)
	if rep2.Executed != 0 || rep2.Skipped != rep.Cells {
		t.Fatalf("resume over torn manifest executed %d, skipped %d (want 0, %d)", rep2.Executed, rep2.Skipped, rep.Cells)
	}
	after := readFile(t, mpath)
	if string(after) != string(before) {
		t.Error("resume did not repair the torn manifest tail back to the complete records")
	}
}

// S2: the per-axis breakdown must multiply out to exactly the expanded
// plan size, variants included.
func TestPlanBreakdown(t *testing.T) {
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Breakdown()
	if b.Cells != len(plan.Cells) {
		t.Fatalf("breakdown cells = %d, plan has %d", b.Cells, len(plan.Cells))
	}
	product := b.SchemeVariants * b.Families * b.Sizes * b.Seeds * b.Executors * b.Measures
	if product != b.Cells {
		t.Errorf("axis product %d != cells %d (%+v)", product, b.Cells, b)
	}
	// testSpec: spanningtree det+rand, coloring rand, acyclicity det+rand.
	if b.SchemeVariants != 5 || b.Families != 3 || b.Sizes != 2 {
		t.Errorf("breakdown = %+v", b)
	}
	s := b.String()
	if !strings.Contains(s, "scheme-variants") || !strings.Contains(s, "= 60 cells") {
		t.Errorf("breakdown string = %q", s)
	}
}
