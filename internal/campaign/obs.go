package campaign

import "rpls/internal/obs"

// Telemetry handles for the scheduler. Write-only from this package (the
// obsflow analyzer enforces it): nothing recorded here may influence a
// record, a results line, or an aggregate — the metrics-on/off
// byte-compare test proves it stays that way.
var (
	obsCellsOK           = obs.NewCounter("campaign.cells.ok")
	obsCellsIncompatible = obs.NewCounter("campaign.cells.incompatible")
	obsCellsError        = obs.NewCounter("campaign.cells.error")
	obsCellsSkipped      = obs.NewCounter("campaign.cells.skipped")
	obsRetries           = obs.NewCounter("campaign.retries")

	obsCellNanos  = obs.NewHistogram("campaign.cell", "ns")
	obsWorkerBusy = obs.NewHistogram("campaign.worker.busy", "ns")

	obsWorkers      = obs.NewGauge("campaign.workers")
	obsReorderDepth = obs.NewGauge("campaign.reorder.depth.max")
	obsEtaMillis    = obs.NewGauge("campaign.eta_ms")
	obsRateMilli    = obs.NewGauge("campaign.cells_per_sec_x1000")
)
