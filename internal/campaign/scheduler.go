package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"rpls/internal/engine"
	"rpls/internal/obs"
)

// File names inside a campaign directory.
const (
	SpecFile     = "spec.json"
	ResultsFile  = "results.jsonl"
	ManifestFile = "manifest.jsonl"
	BenchFile    = "BENCH_campaign.json"
)

// Cell statuses recorded in results and manifest.
const (
	StatusOK           = "ok"
	StatusIncompatible = "incompatible"
	StatusError        = "error"
)

// AdversaryRecord is one engine.Soundness family's outcome inside a Record.
type AdversaryRecord struct {
	Name        string  `json:"name"`
	Assignments int     `json:"assignments"`
	WorstIndex  int     `json:"worstIndex"`
	Trials      int     `json:"trials"`
	Accepted    int     `json:"accepted"`
	Acceptance  float64 `json:"acceptance"`
}

// Record is one cell's result line in results.jsonl. Fields are a pure
// function of the cell, so the line is byte-identical across runs, worker
// counts, and executors.
//
// The wire-accounting fields (TotalBits, TotalMessages, MaxPortBits,
// AvgBitsPerEdge) are filled by the estimate and comm measures from
// engine.Summary: exact bits on the wire under honest labels, summed over
// the cell's executed trials. Retries counts derived-seed generator
// redraws (seed-dependent random-family failures), recorded rather than
// hidden.
type Record struct {
	Cell           string            `json:"cell"`
	Scheme         string            `json:"scheme"`
	Variant        string            `json:"variant"`
	Family         string            `json:"family"`
	N              int               `json:"n"`
	M              int               `json:"m,omitempty"`
	Seed           uint64            `json:"seed"`
	Executor       string            `json:"executor"`
	Measure        string            `json:"measure"`
	Rounds         int               `json:"rounds,omitempty"` // t-PLS rounds; omitted means 1 (see RoundCount)
	Status         string            `json:"status"`
	Reason         string            `json:"reason,omitempty"`
	Retries        int               `json:"retries,omitempty"`
	Trials         int               `json:"trials,omitempty"`
	Accepted       int               `json:"accepted,omitempty"`
	Acceptance     float64           `json:"acceptance,omitempty"`
	CILow          float64           `json:"ciLow,omitempty"`
	CIHigh         float64           `json:"ciHigh,omitempty"`
	LabelBits      int               `json:"labelBits,omitempty"`
	CertBits       int               `json:"certBits,omitempty"`
	TotalBits      int64             `json:"totalBits,omitempty"`
	TotalMessages  int64             `json:"totalMessages,omitempty"`
	MaxPortBits    int               `json:"maxPortBits,omitempty"`
	AvgBitsPerEdge float64           `json:"avgBitsPerEdge,omitempty"`
	Adversaries    []AdversaryRecord `json:"adversaries,omitempty"`
}

// RoundCount is the record's verification-round count: records written
// before the rounds axis existed (and classic single-round cells, whose
// field is omitted) count as one round.
func (r Record) RoundCount() int {
	if r.Rounds < 1 {
		return 1
	}
	return r.Rounds
}

// manifestLine marks one completed cell in manifest.jsonl.
type manifestLine struct {
	Cell   string `json:"cell"`
	Status string `json:"status"`
}

// Report summarizes one scheduler run.
type Report struct {
	Cells        int // cells in the expanded plan
	Executed     int // cells actually run this time
	Skipped      int // cells the manifest marked complete
	OK           int
	Incompatible int
	Errors       int
	// PriorErrors counts plan cells recorded with status "error" by earlier
	// runs. Cells are deterministic, so they are not retried — but a resumed
	// campaign must not look green while its results stream holds failures.
	PriorErrors int
}

func (r Report) String() string {
	s := fmt.Sprintf("executed %d of %d cells (%d already complete): %d ok, %d incompatible, %d errors",
		r.Executed, r.Cells, r.Skipped, r.OK, r.Incompatible, r.Errors)
	if r.PriorErrors > 0 {
		s += fmt.Sprintf("; %d error cells from earlier runs remain in results", r.PriorErrors)
	}
	return s
}

// Runner executes campaign plans into a directory.
type Runner struct {
	Dir      string
	Parallel int // worker count; <= 0 selects GOMAXPROCS
	// Log receives the progress stream as slog text records, one per phase
	// event, each carrying a phase=plan|execute|progress|aggregate|done
	// attribute (the CI smoke greps that sequence). Logger, when set, takes
	// precedence and receives the structured records directly.
	Log    io.Writer
	Logger *slog.Logger
}

// logger resolves the structured progress sink: Logger wins, a bare Log
// writer gets a TextHandler (so pre-slog consumers keep greppable
// key=value lines), and the default discards.
func (r *Runner) logger() *slog.Logger {
	switch {
	case r.Logger != nil:
		return r.Logger
	case r.Log != nil:
		return slog.New(slog.NewTextHandler(r.Log, nil))
	default:
		return slog.New(slog.DiscardHandler)
	}
}

func (r *Runner) workers() int {
	if r.Parallel <= 0 {
		return goruntime.GOMAXPROCS(0)
	}
	return r.Parallel
}

// Run expands the spec and executes every cell the manifest does not
// already mark complete, streaming records to results.jsonl in cell order
// (an in-order reorder buffer makes the file byte-identical for any worker
// count), appending manifest lines as cells finish, and rewriting the
// BENCH_campaign.json aggregate at the end.
func (r *Runner) Run(spec Spec) (Report, error) {
	plan, err := Expand(spec)
	if err != nil {
		return Report{}, err
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return Report{}, fmt.Errorf("campaign: %w", err)
	}
	if err := writeSpec(filepath.Join(r.Dir, SpecFile), plan.Spec); err != nil {
		return Report{}, err
	}
	done, err := loadManifest(filepath.Join(r.Dir, ManifestFile))
	if err != nil {
		return Report{}, err
	}
	// A crash mid-write can leave a torn trailing results line; drop it (its
	// cell has no manifest line yet and simply re-executes).
	if err := truncateTornTail(filepath.Join(r.Dir, ResultsFile)); err != nil {
		return Report{}, err
	}
	// A crash between the results flush and the manifest flush leaves a
	// record without a manifest line; treat recorded cells as complete too,
	// or the resume would append a duplicate record.
	recorded, err := ReadRecords(r.Dir)
	if err != nil {
		return Report{}, err
	}
	for _, rec := range recorded {
		if _, ok := done[rec.Cell]; !ok {
			done[rec.Cell] = rec.Status
		}
	}

	var todo []Cell
	priorErrors := 0
	for _, c := range plan.Cells {
		status, ok := done[c.ID()]
		if !ok {
			todo = append(todo, c)
		} else if status == StatusError {
			priorErrors++
		}
	}
	rep := Report{Cells: len(plan.Cells), Executed: len(todo), Skipped: len(plan.Cells) - len(todo), PriorErrors: priorErrors}
	log := r.logger()
	sp := obs.Begin("campaign.run")
	obsCellsSkipped.Add(uint64(rep.Skipped))
	log.Info("campaign", "phase", "plan", "spec", plan.Spec.Name,
		"cells", rep.Cells, "execute", rep.Executed, "skipped", rep.Skipped, "workers", r.workers())

	if len(todo) > 0 {
		if err := r.execute(todo, &rep, log); err != nil {
			return rep, err
		}
	}

	// One pass over the full results stream feeds both aggregates.
	finalRecs, err := ReadRecords(r.Dir)
	if err != nil {
		return rep, err
	}
	bench := Aggregate(plan.Spec.Name, finalRecs)
	if err := writeBenchJSON(filepath.Join(r.Dir, BenchFile), bench); err != nil {
		return rep, err
	}
	comm := AggregateComm(plan.Spec.Name, finalRecs)
	if err := writeBenchJSON(filepath.Join(r.Dir, BenchCommFile), comm); err != nil {
		return rep, err
	}
	tradeoff := AggregateTradeoff(plan.Spec.Name, finalRecs)
	if err := writeBenchJSON(filepath.Join(r.Dir, BenchTradeoffFile), tradeoff); err != nil {
		return rep, err
	}
	log.Info("campaign", "phase", "aggregate", "spec", plan.Spec.Name,
		"records", bench.Records, "file", BenchFile)
	if comm.Records > 0 {
		log.Info("campaign", "phase", "aggregate", "spec", plan.Spec.Name,
			"records", comm.Records, "file", BenchCommFile, "detRandRatio", comm.DetRandRatio)
	}
	if tradeoff.DecreasingCurves > 0 {
		log.Info("campaign", "phase", "aggregate", "spec", plan.Spec.Name,
			"records", tradeoff.Records, "file", BenchTradeoffFile,
			"decreasingCurves", tradeoff.DecreasingCurves,
			"decreasingSchemes", tradeoff.DecreasingSchemes,
			"decreasingFamilies", tradeoff.DecreasingFamilies)
	}
	sp.A, sp.B = int64(rep.Executed), int64(rep.Skipped)
	obs.End(sp)
	log.Info("campaign", "phase", "done", "spec", plan.Spec.Name, "report", rep.String())
	return rep, nil
}

// writeBenchJSON writes one aggregate file as indented JSON.
func writeBenchJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// execute runs the incomplete cells through the worker pool and streams
// their records out in plan order.
func (r *Runner) execute(todo []Cell, rep *Report, log *slog.Logger) error {
	results, err := os.OpenFile(filepath.Join(r.Dir, ResultsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer results.Close()
	manifest, err := os.OpenFile(filepath.Join(r.Dir, ManifestFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer manifest.Close()

	w := r.workers()
	if w > len(todo) {
		w = len(todo)
	}
	log.Info("campaign", "phase", "execute", "cells", len(todo), "workers", w)
	obsWorkers.Set(int64(w))
	lines := make([][]byte, len(todo))
	statuses := make([]string, len(todo))
	ready := make([]bool, len(todo))
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	var completed atomic.Int64 // cells finished by workers, for reorder depth

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(worker int) {
			defer wg.Done()
			var busy int64 // nanoseconds spent inside RunCell, for utilization
			for idx := range jobs {
				sp := obs.Begin("campaign.cell")
				sp.Tid, sp.A = int64(worker), int64(idx)
				t0 := obsCellNanos.Start()
				rec := RunCell(todo[idx])
				obsCellNanos.Stop(t0)
				busy += int64(obs.Since(t0))
				obs.End(sp)
				obsRetries.Add(uint64(rec.Retries))
				line, err := json.Marshal(rec)
				if err != nil { // a Record always marshals; keep it loud
					panic(fmt.Sprintf("campaign: marshal record: %v", err))
				}
				mu.Lock()
				lines[idx] = line
				statuses[idx] = rec.Status
				ready[idx] = true
				completed.Add(1)
				cond.Broadcast()
				mu.Unlock()
			}
			obsWorkerBusy.Observe(busy)
		}(i)
	}
	go func() {
		for idx := range todo {
			jobs <- idx
		}
		close(jobs)
	}()

	// The reorder buffer: write cell idx only once every earlier cell is
	// written, so the results stream is in plan order for any worker count.
	// progressEvery spaces the phase=progress records (and there is always
	// a final one when the last cell lands).
	progressEvery := len(todo) / 8
	if progressEvery < 1 {
		progressEvery = 1
	}
	start := obs.Clock()
	rw := bufio.NewWriter(results)
	mw := bufio.NewWriter(manifest)
	for idx := range todo {
		mu.Lock()
		for !ready[idx] {
			cond.Wait()
		}
		line, status := lines[idx], statuses[idx]
		lines[idx] = nil
		mu.Unlock()

		rw.Write(line)
		rw.WriteByte('\n')
		ml, _ := json.Marshal(manifestLine{Cell: todo[idx].ID(), Status: status})
		mw.Write(ml)
		mw.WriteByte('\n')
		// Flush both so an interrupted run resumes from its last whole cell.
		if err := rw.Flush(); err != nil {
			return fmt.Errorf("campaign: write results: %w", err)
		}
		if err := mw.Flush(); err != nil {
			return fmt.Errorf("campaign: write manifest: %w", err)
		}
		switch status {
		case StatusOK:
			rep.OK++
			obsCellsOK.Inc()
		case StatusIncompatible:
			rep.Incompatible++
			obsCellsIncompatible.Inc()
		default:
			rep.Errors++
			obsCellsError.Inc()
		}
		written := idx + 1
		// Reorder depth: cells finished by workers but not yet writable
		// because an earlier cell is still running.
		obsReorderDepth.SetMax(completed.Load() - int64(written))
		if written%progressEvery == 0 || written == len(todo) {
			elapsed := obs.Since(start)
			rate := 0.0
			if elapsed > 0 {
				rate = float64(written) / elapsed.Seconds()
			}
			etaMs := int64(0)
			if rate > 0 {
				etaMs = int64(float64(len(todo)-written) / rate * 1000)
			}
			obsRateMilli.Set(int64(rate * 1000))
			obsEtaMillis.Set(etaMs)
			log.Info("campaign", "phase", "progress",
				"done", written, "total", len(todo),
				"cellsPerSec", fmt.Sprintf("%.1f", rate), "etaMs", etaMs)
		}
	}
	wg.Wait()
	return nil
}

// RunCell executes one scenario cell. It never returns an error: failures
// land in the record's status and reason, so a campaign documents its holes
// instead of halting at them.
func RunCell(c Cell) Record {
	rec := Record{
		Cell:     c.ID(),
		Scheme:   c.Scheme,
		Variant:  c.Variant,
		Family:   c.Family.String(),
		N:        c.N,
		Seed:     c.Seed,
		Executor: c.Executor,
		Measure:  c.Measure,
		Status:   StatusOK,
	}
	fail := func(err error) Record {
		if errors.Is(err, ErrIncompatible) {
			rec.Status = StatusIncompatible
		} else {
			rec.Status = StatusError
		}
		rec.Reason = err.Error()
		return rec
	}

	legal, params, info, err := BuildLegalInfo(c.Scheme, c.Family, c.N, c.Seed)
	if err != nil {
		return fail(err)
	}
	rec.N, rec.M, rec.Retries = legal.G.N(), legal.G.M(), info.Retries
	s, err := BuildVariant(c.Scheme, c.Variant, params)
	if err != nil {
		return fail(err)
	}
	if c.Rounds > 1 {
		// The t-PLS cell: the variant runs sharded over t rounds of ⌈κ/t⌉
		// bits per port. A scheme the shard compiler cannot wrap is a
		// documented hole, not a failure.
		rec.Rounds = c.Rounds
		if s, err = engine.Shard(s, c.Rounds); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrIncompatible, err))
		}
	}
	newExec, err := executorFor(c.Executor)
	if err != nil {
		return fail(err)
	}

	trials := c.Trials
	if engine.IsCoinFree(s) {
		trials = 1 // a coin-free execution is the same every trial
	}
	opts := []engine.Option{
		engine.WithSeed(c.Seed),
		engine.WithTrials(trials),
		engine.WithExecutor(newExec()),
		engine.WithMaxSE(c.MaxSE),
	}

	switch c.Measure {
	case MeasureEstimate:
		sum, err := engine.Estimate(s, legal, opts...)
		if err != nil {
			return fail(err)
		}
		rec.Trials, rec.Accepted, rec.Acceptance = sum.Trials, sum.Accepted, sum.Acceptance
		rec.CILow, rec.CIHigh = sum.CILow, sum.CIHigh
		rec.LabelBits, rec.CertBits = sum.MaxLabelBits, sum.MaxCertBits
		fillComm(&rec, sum)
	case MeasureComm:
		// The dedicated wire-accounting measure: honest labels, exact bits.
		// Acceptance is deliberately not recorded — the estimate measure
		// owns it — so a comm record reads as pure communication cost.
		sum, err := engine.Estimate(s, legal, opts...)
		if err != nil {
			return fail(err)
		}
		rec.Trials = sum.Trials
		rec.LabelBits, rec.CertBits = sum.MaxLabelBits, sum.MaxCertBits
		fillComm(&rec, sum)
	case MeasureSoundness:
		illegal, err := IllegalTwin(c.Scheme, legal, c.Seed)
		if err != nil {
			return fail(err)
		}
		advs, err := engine.Soundness(s, legal, illegal,
			append(opts, engine.WithAssignments(c.Assignments))...)
		if err != nil {
			return fail(err)
		}
		for _, a := range advs {
			rec.Adversaries = append(rec.Adversaries, AdversaryRecord{
				Name:        a.Adversary,
				Assignments: a.Assignments,
				WorstIndex:  a.WorstIndex,
				Trials:      a.Worst.Trials,
				Accepted:    a.Worst.Accepted,
				Acceptance:  a.Worst.Acceptance,
			})
			if a.Worst.MaxCertBits > rec.CertBits {
				rec.CertBits = a.Worst.MaxCertBits
			}
			if a.Worst.MaxLabelBits > rec.LabelBits {
				rec.LabelBits = a.Worst.MaxLabelBits
			}
		}
	default:
		return fail(fmt.Errorf("campaign: unknown measure %q", c.Measure))
	}
	return rec
}

// fillComm copies the estimator's wire aggregates into the record.
func fillComm(rec *Record, sum engine.Summary) {
	rec.TotalBits, rec.TotalMessages = sum.TotalBits, sum.TotalMessages
	rec.MaxPortBits, rec.AvgBitsPerEdge = sum.MaxPortBits, sum.AvgBitsPerEdge
}

// writeSpec stores the effective spec for provenance and for `plscampaign
// resume`, which re-reads it from the directory.
func writeSpec(path string, spec Spec) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal spec: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// ReadSpec loads the spec stored in a campaign directory.
func ReadSpec(dir string) (Spec, error) {
	data, err := os.ReadFile(filepath.Join(dir, SpecFile))
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	return ParseSpec(data)
}

// loadManifest reads the completed-cell set of a campaign directory. A
// missing manifest is an empty one; a trailing partial line (a run killed
// mid-write) is ignored, which at worst re-executes that one cell.
func loadManifest(path string) (map[string]string, error) {
	done := map[string]string{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ml manifestLine
		if err := json.Unmarshal(sc.Bytes(), &ml); err != nil {
			continue // partial trailing line from an interrupted run
		}
		done[ml.Cell] = ml.Status
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	return done, nil
}

// truncateTornTail removes a partial trailing line (no terminating newline)
// left by a run killed mid-write, so the stream stays valid JSONL.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("campaign: repair torn results tail: %w", err)
	}
	return nil
}

// ReadRecords loads every record from a campaign directory's results file.
func ReadRecords(dir string) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, ResultsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("campaign: results line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read results: %w", err)
	}
	return out, nil
}
