package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sync"

	"rpls/internal/engine"
	"rpls/internal/obs"
)

// File names inside a campaign directory.
const (
	SpecFile     = "spec.json"
	ResultsFile  = "results.jsonl"
	ManifestFile = "manifest.jsonl"
	BenchFile    = "BENCH_campaign.json"
)

// Cell statuses recorded in results and manifest.
const (
	StatusOK           = "ok"
	StatusIncompatible = "incompatible"
	StatusError        = "error"
)

// AdversaryRecord is one engine.Soundness family's outcome inside a Record.
type AdversaryRecord struct {
	Name        string  `json:"name"`
	Assignments int     `json:"assignments"`
	WorstIndex  int     `json:"worstIndex"`
	Trials      int     `json:"trials"`
	Accepted    int     `json:"accepted"`
	Acceptance  float64 `json:"acceptance"`
}

// Record is one cell's result line in results.jsonl. Fields are a pure
// function of the cell, so the line is byte-identical across runs, worker
// counts, and executors.
//
// The wire-accounting fields (TotalBits, TotalMessages, MaxPortBits,
// AvgBitsPerEdge) are filled by the estimate and comm measures from
// engine.Summary: exact bits on the wire under honest labels, summed over
// the cell's executed trials. Retries counts derived-seed generator
// redraws (seed-dependent random-family failures), recorded rather than
// hidden.
type Record struct {
	Cell           string            `json:"cell"`
	Scheme         string            `json:"scheme"`
	Variant        string            `json:"variant"`
	Family         string            `json:"family"`
	N              int               `json:"n"`
	M              int               `json:"m,omitempty"`
	Seed           uint64            `json:"seed"`
	Executor       string            `json:"executor"`
	Measure        string            `json:"measure"`
	Rounds         int               `json:"rounds,omitempty"`       // t-PLS rounds; omitted means 1 (see RoundCount)
	Multiplicity   int               `json:"multiplicity,omitempty"` // message cap m; omitted means unconstrained
	Status         string            `json:"status"`
	Reason         string            `json:"reason,omitempty"`
	Retries        int               `json:"retries,omitempty"`
	Trials         int               `json:"trials,omitempty"`
	Accepted       int               `json:"accepted,omitempty"`
	Acceptance     float64           `json:"acceptance,omitempty"`
	CILow          float64           `json:"ciLow,omitempty"`
	CIHigh         float64           `json:"ciHigh,omitempty"`
	LabelBits      int               `json:"labelBits,omitempty"`
	CertBits       int               `json:"certBits,omitempty"`
	TotalBits      int64             `json:"totalBits,omitempty"`
	TotalMessages  int64             `json:"totalMessages,omitempty"`
	TotalDistinct  int64             `json:"totalDistinct,omitempty"` // structurally distinct messages (<= TotalMessages)
	MaxPortBits    int               `json:"maxPortBits,omitempty"`
	AvgBitsPerEdge float64           `json:"avgBitsPerEdge,omitempty"`
	Adversaries    []AdversaryRecord `json:"adversaries,omitempty"`
}

// RoundCount is the record's verification-round count: records written
// before the rounds axis existed (and classic single-round cells, whose
// field is omitted) count as one round.
func (r Record) RoundCount() int {
	if r.Rounds < 1 {
		return 1
	}
	return r.Rounds
}

// manifestLine marks one completed cell in manifest.jsonl.
type manifestLine struct {
	Cell   string `json:"cell"`
	Status string `json:"status"`
}

// Report summarizes one scheduler run.
type Report struct {
	Cells        int // cells in the expanded plan
	Executed     int // cells actually run this time
	Skipped      int // cells the manifest marked complete
	OK           int
	Incompatible int
	Errors       int
	// PriorErrors counts plan cells recorded with status "error" by earlier
	// runs. Cells are deterministic, so they are not retried — but a resumed
	// campaign must not look green while its results stream holds failures.
	PriorErrors int
}

func (r Report) String() string {
	s := fmt.Sprintf("executed %d of %d cells (%d already complete): %d ok, %d incompatible, %d errors",
		r.Executed, r.Cells, r.Skipped, r.OK, r.Incompatible, r.Errors)
	if r.PriorErrors > 0 {
		s += fmt.Sprintf("; %d error cells from earlier runs remain in results", r.PriorErrors)
	}
	return s
}

// Runner executes campaign plans into a directory with an in-process
// worker pool. It is the single-machine driver over the transport-agnostic
// core in core.go; the coordinator/worker fabric in campaign/fabric is the
// distributed one, and both produce byte-identical directories.
type Runner struct {
	Dir      string
	Parallel int // worker count; <= 0 selects GOMAXPROCS
	// Log receives the progress stream as slog text records, one per phase
	// event, each carrying a phase=plan|execute|progress|aggregate|done
	// attribute (the CI smoke greps that sequence). Logger, when set, takes
	// precedence and receives the structured records directly.
	Log    io.Writer
	Logger *slog.Logger
}

// logger resolves the structured progress sink: Logger wins, a bare Log
// writer gets a TextHandler (so pre-slog consumers keep greppable
// key=value lines), and the default discards.
func (r *Runner) logger() *slog.Logger {
	switch {
	case r.Logger != nil:
		return r.Logger
	case r.Log != nil:
		return slog.New(slog.NewTextHandler(r.Log, nil))
	default:
		return slog.New(slog.DiscardHandler)
	}
}

func (r *Runner) workers() int {
	if r.Parallel <= 0 {
		return goruntime.GOMAXPROCS(0)
	}
	return r.Parallel
}

// Run expands the spec and executes every cell the manifest does not
// already mark complete, streaming records to results.jsonl in cell order
// (the Sink's reorder buffer makes the file byte-identical for any worker
// count), appending manifest lines as cells finish, and rewriting the
// BENCH_*.json aggregates at the end.
func (r *Runner) Run(spec Spec) (Report, error) {
	p, err := Prepare(r.Dir, spec)
	if err != nil {
		return Report{}, err
	}
	rep := p.Report
	log := r.logger()
	sp := obs.Begin("campaign.run")
	log.Info("campaign", "phase", "plan", "spec", p.Plan.Spec.Name,
		"cells", rep.Cells, "execute", rep.Executed, "skipped", rep.Skipped, "workers", r.workers())

	if len(p.Todo) > 0 {
		if err := r.execute(p.Todo, &rep, log); err != nil {
			return rep, err
		}
	}

	if err := WriteAggregates(r.Dir, p.Plan.Spec.Name, log); err != nil {
		return rep, err
	}
	sp.A, sp.B = int64(rep.Executed), int64(rep.Skipped)
	obs.End(sp)
	log.Info("campaign", "phase", "done", "spec", p.Plan.Spec.Name, "report", rep.String())
	return rep, nil
}

// execute runs the incomplete cells through the worker pool and streams
// their records out in plan order through the Sink.
func (r *Runner) execute(todo []Cell, rep *Report, log *slog.Logger) error {
	sink, err := NewSink(r.Dir, todo, rep)
	if err != nil {
		return err
	}
	defer sink.Close()
	sink.SetProgress(ProgressFunc(log, len(todo)))

	w := r.workers()
	if w > len(todo) {
		w = len(todo)
	}
	log.Info("campaign", "phase", "execute", "cells", len(todo), "workers", w)
	obsWorkers.Set(int64(w))

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(worker int) {
			defer wg.Done()
			var busy int64 // nanoseconds spent inside RunCell, for utilization
			for idx := range jobs {
				sp := obs.Begin("campaign.cell")
				sp.Tid, sp.A = int64(worker), int64(idx)
				t0 := obsCellNanos.Start()
				rec := RunCell(todo[idx])
				obsCellNanos.Stop(t0)
				busy += int64(obs.Since(t0))
				obs.End(sp)
				obsRetries.Add(uint64(rec.Retries))
				sink.Put(idx, MarshalRecord(rec), rec.Status)
			}
			obsWorkerBusy.Observe(busy)
		}(i)
	}
	for idx := range todo {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return sink.Err()
}

// RunCell executes one scenario cell. It never returns an error: failures
// land in the record's status and reason, so a campaign documents its holes
// instead of halting at them.
func RunCell(c Cell) Record {
	rec := Record{
		Cell:     c.ID(),
		Scheme:   c.Scheme,
		Variant:  c.Variant,
		Family:   c.Family.String(),
		N:        c.N,
		Seed:     c.Seed,
		Executor: c.Executor,
		Measure:  c.Measure,
		Status:   StatusOK,
	}
	fail := func(err error) Record {
		if errors.Is(err, ErrIncompatible) {
			rec.Status = StatusIncompatible
		} else {
			rec.Status = StatusError
		}
		rec.Reason = err.Error()
		return rec
	}

	legal, params, info, err := BuildLegalInfo(c.Scheme, c.Family, c.N, c.Seed)
	if err != nil {
		return fail(err)
	}
	rec.N, rec.M, rec.Retries = legal.G.N(), legal.G.M(), info.Retries
	s, err := BuildVariant(c.Scheme, c.Variant, params)
	if err != nil {
		return fail(err)
	}
	if c.Rounds > 1 {
		// The t-PLS cell: the variant runs sharded over t rounds of ⌈κ/t⌉
		// bits per port. A scheme the shard compiler cannot wrap is a
		// documented hole, not a failure.
		rec.Rounds = c.Rounds
		if s, err = engine.Shard(s, c.Rounds); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrIncompatible, err))
		}
	}
	newExec, err := executorFor(c.Executor)
	if err != nil {
		return fail(err)
	}

	trials := c.Trials
	if engine.IsCoinFree(s) {
		trials = 1 // a coin-free execution is the same every trial
	}
	opts := []engine.Option{
		engine.WithSeed(c.Seed),
		engine.WithTrials(trials),
		engine.WithExecutor(newExec()),
		engine.WithMaxSE(c.MaxSE),
	}
	if c.Multiplicity > 0 {
		// The congestion cell: the scheme runs under a message-multiplicity
		// cap, degrading natively or by replication (engine withCap).
		rec.Multiplicity = c.Multiplicity
		opts = append(opts, engine.WithMultiplicity(c.Multiplicity))
	}

	switch c.Measure {
	case MeasureEstimate:
		sum, err := engine.Estimate(s, legal, opts...)
		if err != nil {
			return fail(err)
		}
		rec.Trials, rec.Accepted, rec.Acceptance = sum.Trials, sum.Accepted, sum.Acceptance
		rec.CILow, rec.CIHigh = sum.CILow, sum.CIHigh
		rec.LabelBits, rec.CertBits = sum.MaxLabelBits, sum.MaxCertBits
		fillComm(&rec, sum)
	case MeasureComm:
		// The dedicated wire-accounting measure: honest labels, exact bits.
		// Acceptance is deliberately not recorded — the estimate measure
		// owns it — so a comm record reads as pure communication cost.
		sum, err := engine.Estimate(s, legal, opts...)
		if err != nil {
			return fail(err)
		}
		rec.Trials = sum.Trials
		rec.LabelBits, rec.CertBits = sum.MaxLabelBits, sum.MaxCertBits
		fillComm(&rec, sum)
	case MeasureSoundness:
		illegal, err := IllegalTwin(c.Scheme, legal, c.Seed)
		if err != nil {
			return fail(err)
		}
		advs, err := engine.Soundness(s, legal, illegal,
			append(opts, engine.WithAssignments(c.Assignments))...)
		if err != nil {
			return fail(err)
		}
		for _, a := range advs {
			rec.Adversaries = append(rec.Adversaries, AdversaryRecord{
				Name:        a.Adversary,
				Assignments: a.Assignments,
				WorstIndex:  a.WorstIndex,
				Trials:      a.Worst.Trials,
				Accepted:    a.Worst.Accepted,
				Acceptance:  a.Worst.Acceptance,
			})
			if a.Worst.MaxCertBits > rec.CertBits {
				rec.CertBits = a.Worst.MaxCertBits
			}
			if a.Worst.MaxLabelBits > rec.LabelBits {
				rec.LabelBits = a.Worst.MaxLabelBits
			}
		}
	default:
		return fail(fmt.Errorf("campaign: unknown measure %q", c.Measure))
	}
	return rec
}

// fillComm copies the estimator's wire aggregates into the record.
func fillComm(rec *Record, sum engine.Summary) {
	rec.TotalBits, rec.TotalMessages = sum.TotalBits, sum.TotalMessages
	rec.TotalDistinct = sum.TotalDistinct
	rec.MaxPortBits, rec.AvgBitsPerEdge = sum.MaxPortBits, sum.AvgBitsPerEdge
}

// ReadSpec loads the spec stored in a campaign directory.
func ReadSpec(dir string) (Spec, error) {
	data, err := os.ReadFile(filepath.Join(dir, SpecFile))
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	return ParseSpec(data)
}

// ReadRecords loads every record from a campaign directory's results file.
func ReadRecords(dir string) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, ResultsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("campaign: results line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read results: %w", err)
	}
	return out, nil
}
