package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The wire-accounting aggregate: BENCH_comm.json condenses every
// comm-bearing record (estimate and comm measures under honest labels)
// into per-(scheme, family, size) rows comparing the det / rand /
// compiled variants on the paper's primary axis — bits per edge per
// round. The det column is Θ(λ) (labels travel whole), rand and compiled
// are O(log λ) (fingerprints travel), so DetRandRatio growing with N is
// the empirical form of the headline separation. Ratios are paired
// within a row — the same scheme, instance family, and size — never
// across schemes: a spec mixing a det-only scheme with a rand-only one
// must not mint a ratio comparing one scheme's labels to another's
// fingerprints. The top-level ratios are means over the paired rows.
// Rows are sorted by scheme, family, then size and means are folded in
// record order, so the file is deterministic for a deterministic
// results stream.

// BenchCommFile is the wire-accounting aggregate's file name.
const BenchCommFile = "BENCH_comm.json"

// CommCost aggregates the wire cost of the records sharing one key.
type CommCost struct {
	Cells          int     `json:"cells"`
	AvgBitsPerEdge float64 `json:"avgBitsPerEdge"` // mean per-edge-per-round bits over cells
	MaxPortBits    int     `json:"maxPortBits"`    // largest single message any cell observed
}

func (c *CommCost) fold(rec Record) {
	c.AvgBitsPerEdge = (c.AvgBitsPerEdge*float64(c.Cells) + rec.AvgBitsPerEdge) / float64(c.Cells+1)
	c.Cells++
	if rec.MaxPortBits > c.MaxPortBits {
		c.MaxPortBits = rec.MaxPortBits
	}
}

// CommRow compares the variants of one (scheme, family, size) point.
type CommRow struct {
	Scheme string `json:"scheme"`
	Family string `json:"family"`
	N      int    `json:"n"`
	// Variants maps det / rand / compiled to their aggregated cost.
	Variants map[string]*CommCost `json:"variants"`
	// DetRandRatio is det÷rand mean bits per edge — the measurable form of
	// the Θ(λ) vs O(log λ) separation; likewise DetCompiledRatio for the
	// Theorem 3.1 compiler. Zero when a side is missing.
	DetRandRatio     float64 `json:"detRandRatio,omitempty"`
	DetCompiledRatio float64 `json:"detCompiledRatio,omitempty"`
}

// BenchComm is the BENCH_comm.json layout.
type BenchComm struct {
	Spec    string    `json:"spec"`
	Records int       `json:"records"` // comm-bearing ok records folded
	Rows    []CommRow `json:"rows"`
	// Overall folds every comm-bearing record per variant (a population
	// view for display). The top-level ratios are NOT derived from it:
	// they are means over the per-row paired ratios, so an unpaired
	// scheme (det-only or rand-only) cannot skew them.
	Overall          map[string]*CommCost `json:"overall"`
	DetRandRatio     float64              `json:"detRandRatio,omitempty"`
	DetCompiledRatio float64              `json:"detCompiledRatio,omitempty"`
}

// commBearing reports whether the record carries honest-label wire
// measurements worth folding.
func commBearing(rec Record) bool {
	return rec.Status == StatusOK && rec.TotalMessages > 0 &&
		(rec.Measure == MeasureEstimate || rec.Measure == MeasureComm)
}

func ratio(vs map[string]*CommCost, num, den string) float64 {
	a, b := vs[num], vs[den]
	if a == nil || b == nil || b.AvgBitsPerEdge <= 0 {
		return 0
	}
	return a.AvgBitsPerEdge / b.AvgBitsPerEdge
}

// AggregateComm folds records into the wire-accounting summary. Only
// single-round records are folded: a multi-round (t > 1) cell's per-edge
// cost is the per-round shard, and averaging it into these rows would
// dilute the documented one-round det/rand comparison (and shift the CI
// -min-ratio assertion) — the rounds axis has its own aggregate in
// BENCH_tradeoff.json.
func AggregateComm(specName string, recs []Record) BenchComm {
	b := BenchComm{Spec: specName, Overall: map[string]*CommCost{}}
	type key struct {
		scheme string
		family string
		n      int
	}
	rows := map[key]*CommRow{}
	for _, rec := range recs {
		if !commBearing(rec) || rec.RoundCount() != 1 {
			continue
		}
		b.Records++
		k := key{rec.Scheme, rec.Family, rec.N}
		row := rows[k]
		if row == nil {
			row = &CommRow{Scheme: rec.Scheme, Family: rec.Family, N: rec.N, Variants: map[string]*CommCost{}}
			rows[k] = row
		}
		for _, vs := range []map[string]*CommCost{row.Variants, b.Overall} {
			c := vs[rec.Variant]
			if c == nil {
				c = &CommCost{}
				vs[rec.Variant] = c
			}
			c.fold(rec)
		}
	}
	// Iterate the row keys in sorted order (never the map itself): the rows
	// land in their final scheme/family/size order with no order-sensitive
	// pass over randomized map iteration, as plsvet's maporder check
	// requires.
	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.scheme != kj.scheme {
			return ki.scheme < kj.scheme
		}
		if ki.family != kj.family {
			return ki.family < kj.family
		}
		return ki.n < kj.n
	})
	for _, k := range keys {
		row := rows[k]
		row.DetRandRatio = ratio(row.Variants, VariantDet, VariantRand)
		row.DetCompiledRatio = ratio(row.Variants, VariantDet, VariantCompiled)
		b.Rows = append(b.Rows, *row)
	}
	b.DetRandRatio = meanRatio(b.Rows, func(r CommRow) float64 { return r.DetRandRatio })
	b.DetCompiledRatio = meanRatio(b.Rows, func(r CommRow) float64 { return r.DetCompiledRatio })
	return b
}

// meanRatio averages the nonzero (i.e. paired det-vs-variant) row ratios;
// zero when no row has both sides.
func meanRatio(rows []CommRow, get func(CommRow) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if v := get(r); v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteBenchComm regenerates BENCH_comm.json from the directory's full
// results stream.
func WriteBenchComm(dir, specName string) (BenchComm, error) {
	recs, err := ReadRecords(dir)
	if err != nil {
		return BenchComm{}, err
	}
	b := AggregateComm(specName, recs)
	return b, writeBenchJSON(filepath.Join(dir, BenchCommFile), b)
}

// ReadBenchComm loads a campaign directory's wire-accounting aggregate.
func ReadBenchComm(dir string) (BenchComm, error) {
	data, err := os.ReadFile(filepath.Join(dir, BenchCommFile))
	if err != nil {
		return BenchComm{}, fmt.Errorf("campaign: %w", err)
	}
	var b BenchComm
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchComm{}, fmt.Errorf("campaign: parse %s: %w", BenchCommFile, err)
	}
	return b, nil
}
