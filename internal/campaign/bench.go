package campaign

import (
	"path/filepath"
)

// The aggregate summary: one machine-readable JSON per campaign directory,
// regenerated from the full results stream after every run (resumed runs
// therefore fold earlier records in). Groups are maps keyed by scheme and
// by family; encoding/json sorts map keys, so the file is deterministic
// for a deterministic results stream.

// BenchGroup aggregates the records sharing one key.
type BenchGroup struct {
	Cells        int `json:"cells"`
	OK           int `json:"ok"`
	Incompatible int `json:"incompatible"`
	Errors       int `json:"errors"`
	// MeanAcceptance averages the acceptance of ok estimate cells (legal
	// instances, honest labels); 1.0 is the one-sided completeness target.
	MeanAcceptance float64 `json:"meanAcceptance"`
	// WorstSoundness is the highest adversary acceptance any ok soundness
	// cell observed; small is good.
	WorstSoundness float64 `json:"worstSoundness"`
	MaxLabelBits   int     `json:"maxLabelBits"`
	MaxCertBits    int     `json:"maxCertBits"`

	estimates int // internal: ok estimate cells folded into MeanAcceptance
}

// Bench is the BENCH_campaign.json layout.
type Bench struct {
	Spec       string                `json:"spec"`
	Records    int                   `json:"records"`
	OK         int                   `json:"ok"`
	Incompat   int                   `json:"incompatible"`
	Errors     int                   `json:"errors"`
	BySchemes  map[string]BenchGroup `json:"bySchemes"`
	ByFamilies map[string]BenchGroup `json:"byFamilies"`
	ByVariants map[string]BenchGroup `json:"byVariants"`
}

func (g BenchGroup) fold(rec Record) BenchGroup {
	g.Cells++
	switch rec.Status {
	case StatusOK:
		g.OK++
	case StatusIncompatible:
		g.Incompatible++
	default:
		g.Errors++
	}
	if rec.Status == StatusOK && rec.Measure == MeasureEstimate {
		g.MeanAcceptance = (g.MeanAcceptance*float64(g.estimates) + rec.Acceptance) / float64(g.estimates+1)
		g.estimates++
	}
	if rec.Status == StatusOK && rec.Measure == MeasureSoundness {
		for _, a := range rec.Adversaries {
			if a.Acceptance > g.WorstSoundness {
				g.WorstSoundness = a.Acceptance
			}
		}
	}
	if rec.LabelBits > g.MaxLabelBits {
		g.MaxLabelBits = rec.LabelBits
	}
	if rec.CertBits > g.MaxCertBits {
		g.MaxCertBits = rec.CertBits
	}
	return g
}

// Aggregate folds records into a Bench summary.
func Aggregate(specName string, recs []Record) Bench {
	b := Bench{
		Spec:       specName,
		BySchemes:  map[string]BenchGroup{},
		ByFamilies: map[string]BenchGroup{},
		ByVariants: map[string]BenchGroup{},
	}
	for _, rec := range recs {
		b.Records++
		switch rec.Status {
		case StatusOK:
			b.OK++
		case StatusIncompatible:
			b.Incompat++
		default:
			b.Errors++
		}
		b.BySchemes[rec.Scheme] = b.BySchemes[rec.Scheme].fold(rec)
		b.ByFamilies[rec.Family] = b.ByFamilies[rec.Family].fold(rec)
		b.ByVariants[rec.Variant] = b.ByVariants[rec.Variant].fold(rec)
	}
	return b
}

// WriteBench regenerates BENCH_campaign.json from the directory's full
// results stream.
func WriteBench(dir, specName string) (Bench, error) {
	recs, err := ReadRecords(dir)
	if err != nil {
		return Bench{}, err
	}
	b := Aggregate(specName, recs)
	return b, writeBenchJSON(filepath.Join(dir, BenchFile), b)
}
