package campaign

import (
	"errors"
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/biconn"
	"rpls/internal/schemes/coloring"
	"rpls/internal/schemes/leader"
	"rpls/internal/schemes/mst"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// Instance preparation: turning a (scheme, family, size, seed) tuple into a
// legal configuration, an illegal twin, and a constructed scheme variant.
//
// Not every scheme runs on every family — acyclicity has no legal instance
// on a torus, flow needs a semantic parameter no generic builder can guess.
// Those cells are not errors: they resolve to ErrIncompatible, and the
// scheduler records them with status "incompatible" so the results stream
// documents the full cross product, including the holes.

// ErrIncompatible marks a scenario cell whose (scheme, family) pair has no
// legal instance or no generic construction. Match with errors.Is.
var ErrIncompatible = errors.New("scenario incompatible")

// IsIncompatible reports whether err marks an incompatible scenario rather
// than a real failure.
func IsIncompatible(err error) bool { return errors.Is(err, ErrIncompatible) }

func incompatible(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrIncompatible, fmt.Sprintf(format, args...))
}

// legalizer makes a family-built configuration legal for one predicate.
type legalizer struct {
	pred core.Predicate
	// install mutates the fresh configuration toward legality (nil: the
	// graph structure alone decides). The predicate is always re-checked
	// afterwards, so an install that cannot succeed on this topology just
	// yields an incompatible cell, not a wrong measurement.
	install func(c *graph.Config, rng *prng.Rand) error
}

// legalizers maps registry scheme names to their generic family
// preparation. Schemes absent here (flow, stconn, cycle thresholds,
// symmetry) need per-instance semantic parameters and run only from the
// catalog pseudo-family.
var legalizers = map[string]legalizer{
	"spanningtree":       {pred: spanningtree.Predicate{}, install: installBFSParents},
	"acyclicity":         {pred: acyclicity.Predicate{}},
	"acyclicity-compact": {pred: acyclicity.Predicate{}},
	"mst":                {pred: mst.Predicate{}, install: installRandomMST},
	"biconnectivity":     {pred: biconn.Predicate{}},
	"leader":             {pred: leader.Predicate{}, install: installLeader},
	"uniform":            {pred: uniform.Predicate{}, install: installUniformPayload},
	"coloring":           {pred: coloring.Predicate{}, install: installGreedyColoring},
}

// catalogAlias maps registry names onto the experiments catalog entry that
// holds their instance builder and corruptor.
func catalogAlias(scheme string) string {
	if scheme == "acyclicity-compact" {
		return "acyclicity"
	}
	return scheme
}

func installBFSParents(c *graph.Config, _ *prng.Rand) error {
	if !c.G.IsConnected() {
		return incompatible("spanning tree needs a connected graph")
	}
	for v, p := range c.G.SpanningTreeParents(0) {
		c.States[v].Parent = p
	}
	return nil
}

func installRandomMST(c *graph.Config, rng *prng.Rand) error {
	n := int64(c.G.N())
	graph.AssignRandomWeights(c, n*n*4, rng)
	return experiments.InstallMST(c)
}

func installLeader(c *graph.Config, _ *prng.Rand) error {
	c.States[0].Flags |= graph.FlagLeader
	return nil
}

func installUniformPayload(c *graph.Config, rng *prng.Rand) error {
	// The payload is the λ of the Unif predicate — the axis on which the
	// paper's Θ(λ) vs O(log λ) separation lives. Scaling it with the
	// instance size makes the campaign's det/rand per-edge gap grow with n
	// instead of pinning every cell to the same constant.
	k := 16
	if n := c.G.N() / 4; n > k {
		k = n
	}
	payload := make([]byte, k)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	for v := range c.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		c.States[v].Data = d
	}
	return nil
}

func installGreedyColoring(c *graph.Config, _ *prng.Rand) error {
	experiments.GreedyColor(c)
	return nil
}

// paramsFor derives the semantic engine.Params a scheme's constructors need
// from the instance itself. Only coloring has a derivable parameter (its
// randomized fingerprint field is sized by the edge count).
func paramsFor(scheme string, c *graph.Config) engine.Params {
	if scheme == "coloring" {
		return engine.Params{M: c.G.M()}
	}
	return engine.Params{}
}

// buildRetryLimit is the number of derived-seed redraws a seed-dependent
// generator failure earns before the cell is declared incompatible. Only
// random families are retried: a deterministic builder fails identically
// for every seed, so redrawing it would just burn time.
const buildRetryLimit = 3

// BuildInfo documents how an instance was obtained. Retries counts the
// extra generator draws needed when a random family's draw failed for the
// cell seed (a Steger–Wormald pairing that never mixed, say); the derived
// seeds are a pure function of (seed, attempt), so the build stays a pure
// function of the cell.
type BuildInfo struct {
	Retries int
}

// retrySeed derives the generator seed for the given attempt: attempt 0 is
// the cell seed itself, later attempts fork a fresh deterministic stream.
func retrySeed(seed uint64, attempt int) uint64 {
	if attempt == 0 {
		return seed
	}
	return prng.New(seed).Fork(0x5eed).Fork(uint64(attempt)).Uint64()
}

// BuildLegal constructs a legal configuration of about n nodes for the
// scheme from the given instance source, plus the engine.Params its
// constructors need. The result is a pure function of the arguments.
func BuildLegal(scheme string, fam FamilyAxis, n int, seed uint64) (*graph.Config, engine.Params, error) {
	cfg, params, _, err := BuildLegalInfo(scheme, fam, n, seed)
	return cfg, params, err
}

// BuildLegalInfo is BuildLegal plus provenance: it additionally reports
// how many derived-seed retries a seed-dependent generator failure cost,
// so the scheduler can record the retry instead of surfacing a spurious
// incompatible hole.
func BuildLegalInfo(scheme string, fam FamilyAxis, n int, seed uint64) (*graph.Config, engine.Params, BuildInfo, error) {
	if fam.Name == CatalogFamily {
		entry, ok := experiments.LookupCatalog(catalogAlias(scheme))
		if !ok {
			return nil, engine.Params{}, BuildInfo{}, incompatible("scheme %q has no catalog entry", scheme)
		}
		cfg, err := entry.Build(n, seed)
		if err != nil {
			return nil, engine.Params{}, BuildInfo{}, fmt.Errorf("campaign: catalog build %s n=%d: %w", scheme, n, err)
		}
		return cfg, paramsFor(scheme, cfg), BuildInfo{}, nil
	}

	leg, ok := legalizers[scheme]
	if !ok {
		return nil, engine.Params{}, BuildInfo{}, incompatible("scheme %q has no family legalizer; use the %q instance source", scheme, CatalogFamily)
	}
	f, ok := graph.LookupFamily(fam.Name)
	if !ok {
		return nil, engine.Params{}, BuildInfo{}, fmt.Errorf("campaign: unknown family %q", fam.Name)
	}
	g, info, err := buildFamily(f, fam, n, seed)
	if err != nil {
		// A family that cannot realize this size/shape (torus below 3×3,
		// dregular with n <= d) is a documented hole in the cross product,
		// not a campaign failure — spec-level mistakes are caught by
		// Validate before any cell runs.
		return nil, engine.Params{}, info, incompatible("family %s cannot realize n=%d: %v", fam, n, err)
	}
	cfg := graph.NewConfig(g)
	rng := prng.New(seed).Fork(0xca4a16)
	cfg.AssignRandomIDs(rng)
	if leg.install != nil {
		if err := leg.install(cfg, rng); err != nil {
			return nil, engine.Params{}, info, err
		}
	}
	if !leg.pred.Eval(cfg) {
		return nil, engine.Params{}, info, incompatible("family %s yields no legal %s instance", fam, scheme)
	}
	return cfg, paramsFor(scheme, cfg), info, nil
}

// buildFamily draws the family graph, retrying a random family's
// seed-dependent failures with derived seeds. A deterministic family gets
// exactly one attempt.
func buildFamily(f graph.Family, fam FamilyAxis, n int, seed uint64) (*graph.Graph, BuildInfo, error) {
	attempts := 1
	if f.Random {
		attempts = 1 + buildRetryLimit
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		g, err := f.Build(graph.FamilyParams{N: n, Seed: retrySeed(seed, a), P: fam.P, D: fam.D})
		if err == nil {
			return g, BuildInfo{Retries: a}, nil
		}
		lastErr = err
	}
	return nil, BuildInfo{Retries: attempts - 1}, lastErr
}

// IllegalTwin corrupts a clone of a legal configuration into an illegal one
// using the scheme's catalog corruptor, verifying the predicate actually
// flipped.
func IllegalTwin(scheme string, legal *graph.Config, seed uint64) (*graph.Config, error) {
	entry, ok := experiments.LookupCatalog(catalogAlias(scheme))
	if !ok {
		return nil, incompatible("scheme %q has no catalog corruptor", scheme)
	}
	bad := legal.Clone()
	if err := entry.Corrupt(bad, prng.New(seed).Fork(0xbad)); err != nil {
		return nil, incompatible("corruptor failed on %s: %v", scheme, err)
	}
	if entry.Pred != nil && entry.Pred.Eval(bad) {
		return nil, incompatible("corruptor left a legal %s instance", scheme)
	}
	return bad, nil
}

// BuildVariant constructs the requested scheme variant from the registry
// with the given params. Parameterized constructors whose parameters were
// not derivable yield ErrIncompatible.
func BuildVariant(scheme, variant string, params engine.Params) (engine.Scheme, error) {
	e, ok := engine.Lookup(scheme)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown scheme %q", scheme)
	}
	zero := params == engine.Params{}
	switch variant {
	case VariantDet, VariantCompiled:
		if e.Det == nil {
			return nil, incompatible("scheme %q has no deterministic variant", scheme)
		}
		if e.DetParameterized && zero {
			return nil, incompatible("deterministic %q needs semantic params the builder cannot derive", scheme)
		}
		det := e.Det(params)
		if variant == VariantDet {
			return det, nil
		}
		pls, ok := engine.AsPLS(det)
		if !ok {
			return nil, incompatible("scheme %q is not a core.PLS; cannot compile", scheme)
		}
		return engine.FromRPLS(core.Compile(pls)), nil
	case VariantRand:
		if e.Rand == nil {
			return nil, incompatible("scheme %q has no randomized variant", scheme)
		}
		if e.RandParameterized && zero {
			return nil, incompatible("randomized %q needs semantic params the builder cannot derive", scheme)
		}
		return e.Rand(params), nil
	default:
		return nil, fmt.Errorf("campaign: unknown variant %q", variant)
	}
}
