package campaign

// The transport-agnostic campaign core. Prepare turns (directory, spec)
// into the exact set of cells still to execute — expanding the plan,
// writing the spec for provenance, repairing torn JSONL tails, and loading
// the manifest's done-set — and Sink restores plan order on the way back
// out: completed cells arrive in any order (local worker pool, remote
// fabric workers, crash-reclaimed re-executions) and leave as in-order
// appends to results.jsonl and manifest.jsonl. WriteAggregates rewrites
// the BENCH_*.json files from the full results stream afterwards.
//
// Every scheduling strategy — the in-process Runner in scheduler.go and
// the coordinator/worker fabric in campaign/fabric — is a driver over
// these primitives. That is the whole byte-identity argument: cells are
// pure functions of their fields, MarshalRecord is the one marshaler, the
// Sink is the one writer and it writes in plan order, so where and when a
// cell ran (and whether it ran twice, because a lease was reclaimed)
// cannot show up in the output.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"rpls/internal/obs"
)

// Prepared is a campaign directory reconciled against a spec: the expanded
// plan, the cells the directory does not already mark complete (in plan
// order), and a report skeleton with the plan-level counts filled in.
type Prepared struct {
	Plan *Plan
	Todo []Cell
	// Report carries Cells, Executed (= len(Todo)), Skipped, and
	// PriorErrors; the per-status execution counts land via the Sink.
	Report Report
}

// Prepare expands the spec, creates the campaign directory, repairs any
// torn JSONL tails left by a crash, and computes the cells still to
// execute. It is the shared front half of every driver: the local Runner
// and a fabric coordinator restart both resume through this one path.
func Prepare(dir string, spec Spec) (*Prepared, error) {
	plan, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := writeSpec(filepath.Join(dir, SpecFile), plan.Spec); err != nil {
		return nil, err
	}
	// A crash mid-write can leave a torn trailing line in either stream;
	// repair both before appending, or the next append would concatenate
	// onto the partial record and corrupt it and itself at once.
	if err := truncateTornTail(filepath.Join(dir, ResultsFile)); err != nil {
		return nil, err
	}
	if err := truncateTornTail(filepath.Join(dir, ManifestFile)); err != nil {
		return nil, err
	}
	done, err := loadManifest(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	// A crash between the results flush and the manifest flush leaves a
	// record without a manifest line; treat recorded cells as complete too,
	// or the resume would append a duplicate record.
	recorded, err := ReadRecords(dir)
	if err != nil {
		return nil, err
	}
	for _, rec := range recorded {
		if _, ok := done[rec.Cell]; !ok {
			done[rec.Cell] = rec.Status
		}
	}

	p := &Prepared{Plan: plan}
	priorErrors := 0
	for _, c := range plan.Cells {
		status, ok := done[c.ID()]
		if !ok {
			p.Todo = append(p.Todo, c)
		} else if status == StatusError {
			priorErrors++
		}
	}
	p.Report = Report{
		Cells:       len(plan.Cells),
		Executed:    len(p.Todo),
		Skipped:     len(plan.Cells) - len(p.Todo),
		PriorErrors: priorErrors,
	}
	obsCellsSkipped.Add(uint64(p.Report.Skipped))
	return p, nil
}

// MarshalRecord renders a record as its canonical results.jsonl line (no
// trailing newline). The local scheduler and fabric workers both use this
// one marshaler, so a record's bytes are identical no matter where the
// cell ran — the byte-identity contract rides on it.
func MarshalRecord(rec Record) []byte {
	line, err := json.Marshal(rec)
	if err != nil { // a Record always marshals; keep it loud
		panic(fmt.Sprintf("campaign: marshal record: %v", err))
	}
	return line
}

// Sink owns the append ends of results.jsonl and manifest.jsonl and
// restores plan order: Put accepts completed cells by todo index in any
// order, buffers the out-of-order ones, and appends every contiguous
// prefix as it forms, flushing after each batch so an interrupted run
// resumes from its last whole cell. Put is idempotent per index — the
// first record wins, and a duplicate (a reclaimed lease whose original
// owner raced the re-issue) is dropped — which, with cells being pure
// functions, keeps the output byte-identical under crashes and retries.
// Safe for concurrent use.
type Sink struct {
	mu       sync.Mutex
	results  *os.File
	manifest *os.File
	rw, mw   *bufio.Writer
	todo     []Cell
	lines    [][]byte
	statuses []string
	ready    []bool
	next     int // first index not yet written (the low-water mark)
	buffered int // cells received but not yet writable
	rep      *Report
	progress func(written int)
	err      error // sticky first write error
}

// NewSink opens the directory's results and manifest streams for
// appending. rep receives the per-status counts as cells are written; it
// may be nil.
func NewSink(dir string, todo []Cell, rep *Report) (*Sink, error) {
	results, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	manifest, err := os.OpenFile(filepath.Join(dir, ManifestFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		results.Close()
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if rep == nil {
		rep = &Report{}
	}
	return &Sink{
		results:  results,
		manifest: manifest,
		rw:       bufio.NewWriter(results),
		mw:       bufio.NewWriter(manifest),
		todo:     todo,
		lines:    make([][]byte, len(todo)),
		statuses: make([]string, len(todo)),
		ready:    make([]bool, len(todo)),
		rep:      rep,
	}, nil
}

// SetProgress installs a hook observing the write low-water mark after
// each in-order write. The hook runs with the sink's lock held: it must
// not call back into the sink or take locks ordered before it.
func (s *Sink) SetProgress(fn func(written int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress = fn
}

// Put delivers one completed cell by its todo index. Out-of-range indexes
// are errors; duplicates are silently dropped (the first record won).
func (s *Sink) Put(idx int, line []byte, status string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if idx < 0 || idx >= len(s.todo) {
		return fmt.Errorf("campaign: sink index %d out of range [0, %d)", idx, len(s.todo))
	}
	if idx < s.next || s.ready[idx] {
		return nil // duplicate delivery; the first record won
	}
	s.ready[idx] = true
	s.lines[idx] = line
	s.statuses[idx] = status
	s.buffered++
	// Reorder depth: cells finished but not yet writable because an
	// earlier cell is still outstanding.
	obsReorderDepth.SetMax(int64(s.buffered))

	wrote := false
	for s.next < len(s.todo) && s.ready[s.next] {
		l, st := s.lines[s.next], s.statuses[s.next]
		s.lines[s.next] = nil
		s.rw.Write(l)
		s.rw.WriteByte('\n')
		ml, _ := json.Marshal(manifestLine{Cell: s.todo[s.next].ID(), Status: st})
		s.mw.Write(ml)
		s.mw.WriteByte('\n')
		switch st {
		case StatusOK:
			s.rep.OK++
			obsCellsOK.Inc()
		case StatusIncompatible:
			s.rep.Incompatible++
			obsCellsIncompatible.Inc()
		default:
			s.rep.Errors++
			obsCellsError.Inc()
		}
		s.next++
		s.buffered--
		wrote = true
		if s.progress != nil {
			s.progress(s.next)
		}
	}
	if wrote {
		// Results flush first: a crash between the two leaves a record
		// without a manifest line, which Prepare treats as complete.
		if err := s.rw.Flush(); err != nil {
			s.err = fmt.Errorf("campaign: write results: %w", err)
			return s.err
		}
		if err := s.mw.Flush(); err != nil {
			s.err = fmt.Errorf("campaign: write manifest: %w", err)
			return s.err
		}
	}
	return nil
}

// Written returns the write low-water mark: every todo index below it is
// durably appended, in plan order.
func (s *Sink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Buffered returns the count of cells received but not yet writable (the
// current reorder-buffer depth).
func (s *Sink) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffered
}

// Done reports whether every todo cell has been written.
func (s *Sink) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next == len(s.todo)
}

// Err returns the sticky first write error, if any.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes both streams (already flushed per batch). Out-of-order
// cells still buffered at close are discarded: they cannot be written
// without violating plan order, and their cells simply re-execute on
// resume.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.results.Close()
	if merr := s.manifest.Close(); err == nil {
		err = merr
	}
	if err != nil && s.err == nil {
		s.err = fmt.Errorf("campaign: %w", err)
	}
	return err
}

// ProgressFunc returns a Sink progress hook that logs phase=progress
// records with throughput and ETA, spaced roughly eight times over the
// run and always firing when the last cell lands.
func ProgressFunc(log *slog.Logger, total int) func(written int) {
	every := total / 8
	if every < 1 {
		every = 1
	}
	start := obs.Clock()
	return func(written int) {
		if written%every != 0 && written != total {
			return
		}
		elapsed := obs.Since(start)
		rate := 0.0
		if elapsed > 0 {
			rate = float64(written) / elapsed.Seconds()
		}
		etaMs := int64(0)
		if rate > 0 {
			etaMs = int64(float64(total-written) / rate * 1000)
		}
		obsRateMilli.Set(int64(rate * 1000))
		obsEtaMillis.Set(etaMs)
		log.Info("campaign", "phase", "progress",
			"done", written, "total", total,
			"cellsPerSec", fmt.Sprintf("%.1f", rate), "etaMs", etaMs)
	}
}

// WriteAggregates re-reads the directory's full results stream and
// rewrites the four aggregate files, logging one phase=aggregate record
// per non-empty aggregate. Every driver calls it exactly once, after its
// last cell is written.
func WriteAggregates(dir, specName string, log *slog.Logger) error {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		return err
	}
	bench := Aggregate(specName, recs)
	if err := writeBenchJSON(filepath.Join(dir, BenchFile), bench); err != nil {
		return err
	}
	comm := AggregateComm(specName, recs)
	if err := writeBenchJSON(filepath.Join(dir, BenchCommFile), comm); err != nil {
		return err
	}
	tradeoff := AggregateTradeoff(specName, recs)
	if err := writeBenchJSON(filepath.Join(dir, BenchTradeoffFile), tradeoff); err != nil {
		return err
	}
	congest := AggregateCongest(specName, recs)
	if err := writeBenchJSON(filepath.Join(dir, BenchCongestFile), congest); err != nil {
		return err
	}
	log.Info("campaign", "phase", "aggregate", "spec", specName,
		"records", bench.Records, "file", BenchFile)
	if comm.Records > 0 {
		log.Info("campaign", "phase", "aggregate", "spec", specName,
			"records", comm.Records, "file", BenchCommFile, "detRandRatio", comm.DetRandRatio)
	}
	if tradeoff.DecreasingCurves > 0 {
		log.Info("campaign", "phase", "aggregate", "spec", specName,
			"records", tradeoff.Records, "file", BenchTradeoffFile,
			"decreasingCurves", tradeoff.DecreasingCurves,
			"decreasingSchemes", tradeoff.DecreasingSchemes,
			"decreasingFamilies", tradeoff.DecreasingFamilies)
	}
	if congest.Records > 0 {
		log.Info("campaign", "phase", "aggregate", "spec", specName,
			"records", congest.Records, "file", BenchCongestFile,
			"violatingCurves", congest.ViolatingCurves,
			"separatedCurves", congest.SeparatedCurves,
			"separatedSchemes", congest.SeparatedSchemes,
			"separatedFamilies", congest.SeparatedFamilies)
	}
	return nil
}

// writeBenchJSON writes one aggregate file as indented JSON.
func writeBenchJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// writeSpec stores the effective spec for provenance and for `plscampaign
// resume`, which re-reads it from the directory.
func writeSpec(path string, spec Spec) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal spec: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// loadManifest reads the completed-cell set of a campaign directory. A
// missing manifest is an empty one. A partial final record — a crash
// mid-append — is discarded, which at worst re-executes that one cell;
// garbage anywhere earlier is an error, because silently skipping a
// mid-file line would re-execute its cell and append a duplicate record.
func loadManifest(path string) (map[string]string, error) {
	done := map[string]string{}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, ln := range lines {
		if len(bytes.TrimSpace(ln)) == 0 {
			continue
		}
		var ml manifestLine
		if err := json.Unmarshal(ln, &ml); err != nil {
			if i == len(lines)-1 {
				continue // torn tail of a crash mid-append; the cell re-executes
			}
			return nil, fmt.Errorf("campaign: manifest line %d: %w", i+1, err)
		}
		done[ml.Cell] = ml.Status
	}
	return done, nil
}

// truncateTornTail removes a partial trailing line (no terminating newline)
// left by a run killed mid-write, so the stream stays valid JSONL and the
// next append starts on a fresh line.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("campaign: repair torn tail of %s: %w", filepath.Base(path), err)
	}
	return nil
}
