// Package campaign turns the verification engine into a workload machine:
// a declarative scenario spec expands into a deterministic plan of cells —
// the cross product of schemes × variants × graph families × sizes × seeds
// × executors × measures — and a parallel scheduler streams the cells
// through engine.Estimate and engine.Soundness into append-only JSONL
// results with a resumable manifest.
//
// The paper's headline claims are comparative (randomized certificates
// beat deterministic labels across graph families, scheme types, and
// adversaries), so the unit of work here is the scenario cell, not the
// single run. A Spec is plain JSON: schemes come from engine.Registry,
// graph families from graph.Families (plus the pseudo-family "catalog",
// which sources instances from the per-predicate builders and corruptors
// of internal/experiments), and everything else is a list of values to
// cross. Expansion order is fixed, so a spec always yields the same cells
// in the same order with the same IDs.
//
// Determinism is contractual end to end: every cell is a pure function of
// its resolved fields (the engine's Summary is bit-identical at any
// parallelism level, and instance construction derives only from the cell
// seed), and the scheduler writes records in cell order through an
// in-order reorder buffer — so results.jsonl is byte-identical for any
// worker count. The golden test in scheduler_test.go enforces this.
//
// The package is layered as a transport-agnostic core plus consumers:
// Prepare reconciles a directory against a spec (torn-tail repair,
// manifest load, todo computation), MarshalRecord is the one record
// marshaler, Sink is the in-order reorder buffer with idempotent
// first-write-wins delivery, and WriteAggregates rewrites the
// BENCH_*.json tail. Runner drives those four primitives with an
// in-process worker pool; the campaign/fabric sub-package drives the same
// four over HTTP, leasing cell ranges to remote workers with crash
// reclaim — and inherits byte-identity structurally instead of
// re-deriving it per transport. See DESIGN.md, "Distributed campaigns".
//
// Resume contract: a campaign directory holds spec.json (provenance),
// results.jsonl (one Record per executed cell, append-only),
// manifest.jsonl (one line per completed cell ID, append-only), and
// BENCH_campaign.json (the aggregate, rewritten after every run). A
// re-run loads the manifest and skips completed cells without re-executing
// or re-writing them; extending a spec (more sizes, more seeds) in the
// same directory executes only the new cells.
//
// Wire accounting: the estimate and comm measures record the engine's
// exact wire counters (TotalBits, MaxPortBits, AvgBitsPerEdge) per cell,
// and every run additionally rewrites BENCH_comm.json — per-(scheme,
// family, size) det / rand / compiled bits-per-edge with ratios paired
// within a scheme, the empirical Θ(λ) vs O(log λ) separation the paper
// is about. Seed-dependent
// generator failures (a d-regular pairing that never mixed) are retried
// with derived seeds and the retry count is recorded on the cell instead
// of surfacing a spurious incompatible hole.
//
// Congestion: specs may add a multiplicity axis (message-multiplicity
// caps, 0 = unconstrained unicast, 1 = broadcast), nested innermost so
// pre-congestion cell IDs — which carry no /m= marker — stay
// resume-compatible. Comm cells record the cap and the engine's
// distinct-message counter, and every run rewrites BENCH_congest.json:
// verified-bits vs m curves per (scheme, variant, family, size) ordered
// broadcast-first/unicast-last, with non-increase and
// broadcast-vs-unicast separation flags that `plscampaign congest` turns
// into CI assertions. See DESIGN.md, "Congestion-bounded verification".
//
// Observability: the scheduler narrates each run through a structured
// log/slog logger (phase=plan|execute|progress|aggregate|done records with
// throughput and ETA attributes — the CI smoke asserts the sequence) and
// records write-only telemetry into internal/obs: per-cell duration and
// per-status counters, worker busy time, reorder-buffer depth, and a
// campaign.run span. Neither stream can perturb results — the logger only
// wraps output writers, obs is write-only here by plsvet's obsflow
// analyzer, and TestGoldenResultsWithMetricsOn byte-compares results.jsonl
// metrics-on vs off. See DESIGN.md, "Observability contract".
package campaign
