package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func runInto(t *testing.T, spec Spec, dir string, parallel int) Report {
	t.Helper()
	rep, err := (&Runner{Dir: dir, Parallel: parallel}).Run(spec)
	if err != nil {
		t.Fatalf("run (parallel=%d): %v", parallel, err)
	}
	return rep
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The golden determinism contract: the same spec and seed yield
// byte-identical results.jsonl for every -parallel value.
func TestGoldenResultsAcrossParallelism(t *testing.T) {
	spec := testSpec()
	var golden []byte
	for _, parallel := range []int{1, 4, 0} {
		dir := filepath.Join(t.TempDir(), "campaign")
		rep := runInto(t, spec, dir, parallel)
		if rep.Executed != rep.Cells || rep.Skipped != 0 {
			t.Fatalf("parallel=%d: fresh run executed %d of %d", parallel, rep.Executed, rep.Cells)
		}
		if rep.Errors != 0 {
			t.Fatalf("parallel=%d: %d error cells", parallel, rep.Errors)
		}
		if rep.OK == 0 {
			t.Fatalf("parallel=%d: no ok cells", parallel)
		}
		got := readFile(t, filepath.Join(dir, ResultsFile))
		if golden == nil {
			golden = got
			continue
		}
		if !bytes.Equal(golden, got) {
			t.Fatalf("results.jsonl differs between parallel=1 and parallel=%d", parallel)
		}
	}
}

// The resume contract: completed cells are skipped, never re-executed or
// re-written; growing the spec executes only the new cells.
func TestResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	small := testSpec()
	small.Sizes = []int{8}
	rep1 := runInto(t, small, dir, 2)
	if rep1.Executed != rep1.Cells || rep1.Skipped != 0 {
		t.Fatalf("first run: %+v", rep1)
	}
	afterFirst := readFile(t, filepath.Join(dir, ResultsFile))

	// Identical re-run: everything skips, nothing is appended.
	rep2 := runInto(t, small, dir, 2)
	if rep2.Executed != 0 || rep2.Skipped != rep1.Cells {
		t.Fatalf("identical re-run executed %d, skipped %d (want 0, %d)", rep2.Executed, rep2.Skipped, rep1.Cells)
	}
	if got := readFile(t, filepath.Join(dir, ResultsFile)); !bytes.Equal(afterFirst, got) {
		t.Fatal("identical re-run modified results.jsonl")
	}

	// Grown spec (one more size): only the new cells execute, and the old
	// records survive untouched as the file's prefix.
	grown := testSpec() // sizes {8, 12}
	rep3 := runInto(t, grown, dir, 2)
	wantNew := rep3.Cells - rep1.Cells
	if rep3.Executed != wantNew || rep3.Skipped != rep1.Cells {
		t.Fatalf("grown run executed %d, skipped %d (want %d, %d)", rep3.Executed, rep3.Skipped, wantNew, rep1.Cells)
	}
	afterGrown := readFile(t, filepath.Join(dir, ResultsFile))
	if !bytes.HasPrefix(afterGrown, afterFirst) {
		t.Fatal("grown run rewrote earlier records")
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != rep3.Cells {
		t.Fatalf("results.jsonl holds %d records, want %d (no duplicates)", len(recs), rep3.Cells)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Cell] {
			t.Fatalf("cell %q recorded twice", r.Cell)
		}
		seen[r.Cell] = true
	}
}

// Changing the measurement budget changes cell IDs, so nothing is silently
// skipped as "complete" under a different budget.
func TestBudgetChangeReexecutes(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Sizes = []int{8}
	rep1 := runInto(t, spec, dir, 2)
	spec.Trials = 24
	rep2 := runInto(t, spec, dir, 2)
	if rep2.Executed != rep1.Cells || rep2.Skipped != 0 {
		t.Fatalf("after trials change: executed %d, skipped %d (want %d, 0)", rep2.Executed, rep2.Skipped, rep1.Cells)
	}
}

// A run killed between the results flush and the manifest flush (or mid
// results write) must not leave duplicate or torn records after resume.
func TestResumeRepairsCrashWindow(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Sizes = []int{8}
	rep := runInto(t, spec, dir, 2)

	results := filepath.Join(dir, ResultsFile)
	manifest := filepath.Join(dir, ManifestFile)
	// Simulate the crash: drop the last manifest line and tear the results
	// tail with a half-written record.
	mdata := readFile(t, manifest)
	lines := bytes.Split(bytes.TrimSuffix(mdata, []byte("\n")), []byte("\n"))
	if err := os.WriteFile(manifest, append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	whole := readFile(t, results)
	if err := os.WriteFile(results, append(whole, []byte(`{"cell":"torn`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	rep2 := runInto(t, spec, dir, 2)
	if rep2.Executed != 0 || rep2.Skipped != rep.Cells {
		t.Fatalf("resume after crash window executed %d, skipped %d (want 0, %d)", rep2.Executed, rep2.Skipped, rep.Cells)
	}
	if got := readFile(t, results); !bytes.Equal(got, whole) {
		t.Fatal("resume did not restore a clean results stream")
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Cell] {
			t.Fatalf("cell %q duplicated after crash resume", r.Cell)
		}
		seen[r.Cell] = true
	}
}

// A resumed campaign whose results hold error cells must not look green:
// prior errors are surfaced in the report even though deterministic cells
// are not retried.
func TestPriorErrorsSurfaceOnResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Sizes = []int{8}
	runInto(t, spec, dir, 2)

	// Rewrite one completed cell's manifest line as an error, as a failed
	// earlier run would have recorded it (the manifest drives the done-set).
	plan, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[0].ID()
	path := filepath.Join(dir, ManifestFile)
	old := []byte(`{"cell":"` + victim + `","status":"` + StatusOK + `"}`)
	data := readFile(t, path)
	if !bytes.Contains(data, old) {
		t.Fatalf("manifest holds no ok line for %s", victim)
	}
	data = bytes.Replace(data, old,
		[]byte(`{"cell":"`+victim+`","status":"`+StatusError+`"}`), 1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runInto(t, spec, dir, 2)
	if rep.PriorErrors == 0 {
		t.Fatalf("resume over an errored results stream reported no prior errors: %+v", rep)
	}
	if rep.Executed != 0 {
		t.Fatalf("deterministic error cells must not retry: %+v", rep)
	}
}

// Records measure what they claim: one-sided completeness on legal
// instances, low adversarial acceptance on soundness cells, and incompatible
// holes that are documented rather than silent.
func TestRecordSemantics(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	runInto(t, spec, dir, 4)
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	var estimates, soundness, incompat int
	for _, r := range recs {
		switch {
		case r.Status == StatusIncompatible:
			incompat++
			if r.Reason == "" {
				t.Errorf("%s: incompatible without a reason", r.Cell)
			}
		case r.Status == StatusOK && r.Measure == MeasureEstimate:
			estimates++
			if r.Accepted != r.Trials {
				t.Errorf("%s: one-sided scheme accepted %d of %d honest trials", r.Cell, r.Accepted, r.Trials)
			}
			// Some randomized schemes have empty labels (certificates derive
			// from the state directly), so label bits are asserted only where
			// labels are the message.
			if r.Variant == VariantDet && r.LabelBits <= 0 {
				t.Errorf("%s: no label bits measured", r.Cell)
			}
			if r.Variant != VariantDet && r.CertBits <= 0 {
				t.Errorf("%s: randomized estimate with no certificate bits", r.Cell)
			}
		case r.Status == StatusOK && r.Measure == MeasureSoundness:
			soundness++
			if len(r.Adversaries) == 0 {
				t.Errorf("%s: soundness cell with no adversaries", r.Cell)
			}
			for _, a := range r.Adversaries {
				if a.Trials <= 0 {
					t.Errorf("%s: adversary %s ran no trials", r.Cell, a.Name)
				}
			}
		}
	}
	if estimates == 0 || soundness == 0 {
		t.Fatalf("campaign exercised %d estimates and %d soundness cells", estimates, soundness)
	}
	if incompat == 0 {
		t.Fatal("expected documented incompatible holes (acyclicity on the cyclic families)")
	}

	bench := readFile(t, filepath.Join(dir, BenchFile))
	if len(bench) == 0 {
		t.Fatal("BENCH_campaign.json is empty")
	}
	agg := Aggregate(spec.Name, recs)
	if agg.Records != len(recs) || agg.OK == 0 {
		t.Fatalf("aggregate %+v over %d records", agg, len(recs))
	}
	for scheme, g := range agg.BySchemes {
		if g.MeanAcceptance != 0 && (g.MeanAcceptance < 0.99 || g.MeanAcceptance > 1) {
			t.Errorf("scheme %s: mean honest acceptance %.3f, want ~1 (one-sided)", scheme, g.MeanAcceptance)
		}
	}
}
