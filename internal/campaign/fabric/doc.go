// Package fabric distributes a campaign across machines without giving up
// one byte of the campaign's determinism contract: a coordinator owns a
// campaign directory and leases contiguous ranges of the plan's remaining
// cells to workers over HTTP; workers execute the cells with the ordinary
// engine (campaign.RunCell) and stream each record back as it completes;
// and the coordinator funnels everything through the campaign Sink, whose
// reorder buffer writes results.jsonl and manifest.jsonl in plan order —
// so the directory is byte-identical to a single-process `plscampaign
// run` for any worker count, any arrival order, and any crash pattern.
//
// The lease protocol (see DESIGN.md, "Distributed campaigns", for the
// full contract):
//
//   - Lease: POST /v1/lease grants the lowest contiguous run of unleased
//     cells, at most LeaseSize long, never reaching more than Window cells
//     past the write low-water mark. The window is the backpressure: it
//     bounds the coordinator's reorder buffer and the work lost to a
//     crash, and when it is full the response carries a retry delay
//     instead of a lease.
//   - Report: POST /v1/report delivers completed cells. The worker sends
//     the canonical results.jsonl line (campaign.MarshalRecord) and the
//     coordinator writes those bytes verbatim through the Sink. Reporting
//     renews the lease; the Sink drops duplicate indexes, so a reclaimed
//     lease's original owner racing the re-issue is harmless.
//   - Heartbeat: POST /v1/heartbeat renews every lease the worker holds.
//     A lease not renewed within its TTL — worker crash, stall, or
//     partition — is reclaimed: its unreported cells return to the pool
//     and are re-leased, which is safe because cells are pure functions
//     of their fields.
//   - Status: GET /v1/status is a read-only snapshot (plan size, written
//     low-water mark, live leases, reclaim count) for CI and dashboards.
//
// Crash recovery is layered on the same manifest contract as resume: the
// coordinator opens its directory through campaign.Prepare, so restarting
// a dead coordinator (or re-pointing one at a half-finished directory)
// skips every durably recorded cell and leases out only the rest.
//
// The package sits inside plsvet's deterministic zone (it is under
// internal/campaign/): ambient randomness, environment reads, and direct
// wall-clock calls are still forbidden. Lease deadlines are the one place
// that needs time, and they read it through the audited obs.Clock seam —
// timing decides only *scheduling* (which worker executes a cell, and
// when), never a record's bytes, and the Sink makes scheduling invisible
// in the output.
package fabric
