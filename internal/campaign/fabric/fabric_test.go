package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rpls/internal/campaign"
)

// fabricSpec is a small, fast plan: 4 scheme variants × 2 families ×
// 1 size × 1 seed × 1 measure = 8 cells.
func fabricSpec() campaign.Spec {
	return campaign.Spec{
		Name:     "fabric-unit",
		Schemes:  []campaign.SchemeAxis{{Name: "spanningtree"}, {Name: "acyclicity"}},
		Families: []campaign.FamilyAxis{{Name: "grid"}, {Name: campaign.CatalogFamily}},
		Sizes:    []int{8},
		Seeds:    []uint64{3},
		Measures: []string{campaign.MeasureEstimate},
		Trials:   8,
	}
}

func soloRun(t *testing.T, dir string, spec campaign.Spec) campaign.Report {
	t.Helper()
	rep, err := (&campaign.Runner{Dir: dir, Parallel: 2}).Run(spec)
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return rep
}

// runFabric drives a full coordinator+workers campaign over loopback HTTP
// and returns the finished report.
func runFabric(t *testing.T, dir string, spec campaign.Spec, workers, parallel int, opts Options) campaign.Report {
	t.Helper()
	c, err := NewCoordinator(dir, spec, opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w := &Worker{Coordinator: srv.URL, Name: fmt.Sprintf("w%d", i), Parallel: parallel}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- w.Run(ctx)
		}()
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator wait: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	rep, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return rep
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// compareDirs asserts the files a distributed run must reproduce exactly.
func compareDirs(t *testing.T, want, got string) {
	t.Helper()
	for _, name := range []string{campaign.ResultsFile, campaign.ManifestFile, campaign.BenchFile} {
		w := readFile(t, filepath.Join(want, name))
		g := readFile(t, filepath.Join(got, name))
		if !bytes.Equal(w, g) {
			t.Errorf("%s differs from single-process run (%d vs %d bytes)", name, len(w), len(g))
		}
	}
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	if err := post(context.Background(), http.DefaultClient, url, in, out); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
}

// The core contract: a fabric run — any worker count — produces the same
// bytes as a single-process `plscampaign run`.
func TestFabricMatchesSingleProcess(t *testing.T) {
	spec := fabricSpec()
	solo := filepath.Join(t.TempDir(), "solo")
	soloRep := soloRun(t, solo, spec)

	for _, workers := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("fabric-%d", workers))
		rep := runFabric(t, dir, spec, workers, 2, Options{LeaseSize: 2})
		if rep.Executed != soloRep.Cells || rep.Skipped != 0 {
			t.Fatalf("workers=%d: executed %d of %d, skipped %d", workers, rep.Executed, soloRep.Cells, rep.Skipped)
		}
		if rep.String() != soloRep.String() {
			t.Errorf("workers=%d: report %q, solo %q", workers, rep.String(), soloRep.String())
		}
		compareDirs(t, solo, dir)
	}
}

// S3: a worker that takes a lease and stalls forever. Its lease must
// expire, be reclaimed, and be re-issued to a live worker — and the
// output must still match a single-process run byte for byte.
func TestStalledWorkerLeaseReclaim(t *testing.T) {
	spec := fabricSpec()
	solo := filepath.Join(t.TempDir(), "solo")
	soloRun(t, solo, spec)

	dir := filepath.Join(t.TempDir(), "fabric")
	opts := Options{LeaseSize: 4, LeaseTTL: 200 * time.Millisecond}
	c, err := NewCoordinator(dir, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The staller grabs the first lease and never reports or heartbeats.
	var stalled LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "staller"}, &stalled)
	if stalled.Lease == nil {
		t.Fatalf("staller got no lease: %+v", stalled)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{Coordinator: srv.URL, Name: "live", Parallel: 2}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	if err := c.Wait(ctx); err != nil {
		t.Fatalf("campaign did not converge past the stalled lease: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("live worker: %v", err)
	}
	st := c.Status()
	if st.Reclaims < 1 {
		t.Errorf("reclaims = %d, want >= 1", st.Reclaims)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, solo, dir)
}

// S3: a worker killed mid-range — it reports half its lease, then
// vanishes. The remainder is reclaimed and finished elsewhere; a replay
// of the dead worker's report is answered Stale and changes nothing.
func TestKilledWorkerMidRange(t *testing.T) {
	spec := fabricSpec()
	solo := filepath.Join(t.TempDir(), "solo")
	soloRun(t, solo, spec)

	dir := filepath.Join(t.TempDir(), "fabric")
	opts := Options{LeaseSize: 4, LeaseTTL: 200 * time.Millisecond}
	c, err := NewCoordinator(dir, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The ghost executes and reports the first half of its lease at the
	// protocol level, then disappears without heartbeating.
	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "ghost"}, &lr)
	if lr.Lease == nil || len(lr.Lease.Cells) < 2 {
		t.Fatalf("ghost lease: %+v", lr)
	}
	half := len(lr.Lease.Cells) / 2
	var replay ReportRequest
	for i := 0; i < half; i++ {
		cell := lr.Lease.Cells[i]
		rec := campaign.RunCell(cell)
		req := ReportRequest{
			Worker: "ghost",
			Lease:  lr.Lease.ID,
			Records: []ReportRecord{{
				Index:  lr.Lease.Start + i,
				Cell:   cell.ID(),
				Status: rec.Status,
				Line:   campaign.MarshalRecord(rec),
			}},
		}
		var rr ReportResponse
		postJSON(t, srv.URL+PathReport, req, &rr)
		if !rr.OK || rr.Stale {
			t.Fatalf("ghost report %d: %+v", i, rr)
		}
		replay = req
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{Coordinator: srv.URL, Name: "live", Parallel: 2}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("campaign did not converge past the dead worker: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("live worker: %v", err)
	}

	// Replay the ghost's last report after completion: the lease is long
	// gone, so the answer is Stale, and the record is a no-op duplicate.
	var rr ReportResponse
	postJSON(t, srv.URL+PathReport, replay, &rr)
	if !rr.OK || !rr.Stale {
		t.Errorf("replayed report: %+v, want OK and Stale", rr)
	}

	st := c.Status()
	if st.Reclaims < 1 {
		t.Errorf("reclaims = %d, want >= 1", st.Reclaims)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, solo, dir)
	// No duplicate records: exactly one line per cell.
	lines := strings.Count(string(readFile(t, filepath.Join(dir, campaign.ResultsFile))), "\n")
	if lines != st.Cells {
		t.Errorf("results.jsonl has %d lines, want %d", lines, st.Cells)
	}
}

// The resume contract carries over: a coordinator pointed at a directory
// holding a completed smaller run executes only the new cells, and the
// result matches a single-process run resumed through the same sequence
// (small run, then grown spec).
func TestCoordinatorResume(t *testing.T) {
	small := fabricSpec()
	grown := fabricSpec()
	grown.Sizes = []int{8, 12}

	soloGrown := filepath.Join(t.TempDir(), "solo-grown")
	soloRun(t, soloGrown, small)
	soloRun(t, soloGrown, grown)

	dir := filepath.Join(t.TempDir(), "fabric")
	smallRep := soloRun(t, dir, small)

	rep := runFabric(t, dir, grown, 2, 2, Options{LeaseSize: 2})
	if rep.Skipped != smallRep.Cells {
		t.Errorf("skipped %d, want %d (the prior run)", rep.Skipped, smallRep.Cells)
	}
	if rep.Executed != rep.Cells-smallRep.Cells {
		t.Errorf("executed %d, want %d (only the new cells)", rep.Executed, rep.Cells-smallRep.Cells)
	}
	compareDirs(t, soloGrown, dir)
}

// Backpressure: with Window cells outstanding and unreported, the
// coordinator must refuse further leases and hand out a retry delay.
func TestLeaseWindowBounds(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCoordinator(dir, fabricSpec(), Options{LeaseSize: 2, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Finish()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	for i := 0; i < 2; i++ {
		var lr LeaseResponse
		postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "hog"}, &lr)
		if lr.Lease == nil || len(lr.Lease.Cells) != 2 {
			t.Fatalf("grant %d: %+v", i, lr)
		}
	}
	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "hog"}, &lr)
	if lr.Lease != nil || lr.Done {
		t.Fatalf("window-full grant: %+v, want retry", lr)
	}
	if lr.RetryMillis <= 0 {
		t.Errorf("RetryMillis = %d, want > 0", lr.RetryMillis)
	}

	// Status reflects the two live leases and the unwritten stream.
	st := c.Status()
	if st.Leased != 2 || st.Written != 0 || st.Done {
		t.Errorf("status = %+v", st)
	}
}

// Malformed reports are rejected without corrupting state.
func TestReportValidation(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCoordinator(dir, fabricSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Finish()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w"}, &lr)
	if lr.Lease == nil {
		t.Fatal("no lease")
	}
	bad := []ReportRequest{
		{Worker: "w", Lease: lr.Lease.ID, Records: []ReportRecord{{Index: -1, Cell: "x", Line: json.RawMessage(`{}`)}}},
		{Worker: "w", Lease: lr.Lease.ID, Records: []ReportRecord{{Index: 10 << 20, Cell: "x", Line: json.RawMessage(`{}`)}}},
		{Worker: "w", Lease: lr.Lease.ID, Records: []ReportRecord{{Index: lr.Lease.Start, Cell: "wrong-id", Line: json.RawMessage(`{}`)}}},
	}
	for i, req := range bad {
		var rr ReportResponse
		err := post(context.Background(), http.DefaultClient, srv.URL+PathReport, req, &rr)
		if err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("bad report %d: err = %v, want 400", i, err)
		}
	}
	if st := c.Status(); st.Written != 0 {
		t.Errorf("bad reports advanced the stream: %+v", st)
	}
}
