package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"rpls/internal/campaign"
	"rpls/internal/obs"
)

// Worker pulls leases from a coordinator and executes them with the
// ordinary campaign engine. It is stateless: everything it needs travels
// in the lease, and everything it produces is streamed back one record at
// a time, so killing a worker at any instant loses at most the cell it
// was executing — which the coordinator reclaims and re-issues.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://127.0.0.1:8799".
	Coordinator string
	// Name identifies this worker in leases, logs, and trace spans.
	Name string
	// Parallel is the number of concurrent lease loops (default 1). Each
	// loop identifies itself as Name-i so its leases are tracked apart.
	Parallel int
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logger receives per-lease progress records. Nil discards.
	Logger *slog.Logger
}

// maxConsecutiveFailures is how many protocol errors in a row a lease
// loop tolerates (coordinator restarting, transient network) before it
// gives up and reports the last error.
const maxConsecutiveFailures = 5

// Run executes leases until the coordinator reports the campaign done,
// the context ends, or the coordinator stays unreachable.
func (w *Worker) Run(ctx context.Context) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	log := w.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	parallel := w.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < parallel; i++ {
		name := w.Name
		if parallel > 1 {
			name = fmt.Sprintf("%s-%d", w.Name, i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.loop(ctx, client, log, name); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// loop is one lease-execute-report cycle, repeated until done.
func (w *Worker) loop(ctx context.Context, client *http.Client, log *slog.Logger, name string) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		if err := post(ctx, client, w.Coordinator+PathLease, LeaseRequest{Worker: name}, &resp); err != nil {
			failures++
			if failures >= maxConsecutiveFailures {
				return fmt.Errorf("fabric: worker %s: coordinator unreachable: %w", name, err)
			}
			if err := sleepCtx(ctx, 200*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		failures = 0
		switch {
		case resp.Done:
			log.Info("campaign", "phase", "worker", "worker", name, "event", "done")
			return nil
		case resp.Lease == nil:
			// Window full: back off for the delay the coordinator chose.
			if err := sleepCtx(ctx, time.Duration(resp.RetryMillis)*time.Millisecond); err != nil {
				return err
			}
		default:
			if err := w.executeLease(ctx, client, log, name, resp.Lease); err != nil {
				return err
			}
		}
	}
}

// executeLease runs the leased cells in order, reporting each record as
// it completes and heartbeating in the background at the interval the
// coordinator asked for.
func (w *Worker) executeLease(ctx context.Context, client *http.Client, log *slog.Logger, name string, l *Lease) error {
	log.Info("campaign", "phase", "worker", "worker", name,
		"lease", l.ID, "start", l.Start, "cells", len(l.Cells))

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		interval := time.Duration(l.HeartbeatMillis) * time.Millisecond
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				var hb HeartbeatResponse
				// Failures are deliberately ignored: a missed heartbeat at
				// worst lets the lease expire, and reclaim makes that safe.
				_ = post(hbCtx, client, w.Coordinator+PathHeartbeat, HeartbeatRequest{Worker: name}, &hb)
			}
		}
	}()
	defer func() {
		stopHB()
		hbWG.Wait()
	}()

	for i, cell := range l.Cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := obs.Begin("fabric.cell")
		sp.A = int64(l.Start + i)
		t0 := obs.Clock()
		rec := campaign.RunCell(cell)
		obsWorkerCellNanos.Observe(int64(obs.Since(t0)))
		obs.End(sp)

		req := ReportRequest{
			Worker: name,
			Lease:  l.ID,
			Records: []ReportRecord{{
				Index:  l.Start + i,
				Cell:   cell.ID(),
				Status: rec.Status,
				Line:   campaign.MarshalRecord(rec),
			}},
		}
		var rr ReportResponse
		if err := post(ctx, client, w.Coordinator+PathReport, req, &rr); err != nil {
			return fmt.Errorf("fabric: worker %s: report lease %d: %w", name, l.ID, err)
		}
		if rr.Stale {
			// The lease was reclaimed out from under us; the record we just
			// sent was still accepted if it was first, but the rest of the
			// range now belongs to someone else.
			log.Info("campaign", "phase", "worker", "worker", name,
				"lease", l.ID, "event", "stale")
			return nil
		}
	}
	return nil
}

// post sends a JSON request and decodes a JSON response. Non-2xx is an
// error carrying a bounded slice of the body.
func post(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
