package fabric

import (
	"encoding/json"

	"rpls/internal/campaign"
)

// Wire types of the lease protocol: JSON over HTTP, version-prefixed
// paths. The protocol is deliberately chatty-simple — every message is a
// small POST with a JSON body — because the expensive part of a campaign
// is executing cells, not talking about them.

// Protocol endpoints served by Coordinator.Handler.
const (
	PathLease     = "/v1/lease"
	PathReport    = "/v1/report"
	PathHeartbeat = "/v1/heartbeat"
	PathStatus    = "/v1/status"
)

// LeaseRequest asks the coordinator for the next contiguous cell range.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is one granted range: plan-order todo indexes
// [Start, Start+len(Cells)). The cells travel in the grant so a worker
// needs no copy of the spec; campaign.Cell round-trips JSON exactly.
type Lease struct {
	ID    uint64          `json:"id"`
	Start int             `json:"start"`
	Cells []campaign.Cell `json:"cells"`
	// TTLMillis is how long the lease survives without a heartbeat or a
	// report; HeartbeatMillis is the interval the coordinator wants
	// workers to renew at (a fraction of the TTL).
	TTLMillis       int64 `json:"ttlMillis"`
	HeartbeatMillis int64 `json:"heartbeatMillis"`
}

// LeaseResponse carries a grant, a backpressure delay, or completion.
type LeaseResponse struct {
	// Done means the campaign is complete (or will be completed by cells
	// already leased out); the worker should exit.
	Done bool `json:"done,omitempty"`
	// Lease is nil when the lease window is full; RetryMillis then says
	// how long to wait before asking again.
	Lease       *Lease `json:"lease,omitempty"`
	RetryMillis int64  `json:"retryMillis,omitempty"`
}

// ReportRecord is one completed cell. Line holds the canonical
// results.jsonl bytes produced by campaign.MarshalRecord on the worker;
// the coordinator writes them verbatim, which is what keeps a distributed
// run byte-identical to a single-process one.
type ReportRecord struct {
	Index  int             `json:"index"` // plan-order todo index
	Cell   string          `json:"cell"`  // cell ID, cross-checked against the coordinator's plan
	Status string          `json:"status"`
	Line   json.RawMessage `json:"line"`
}

// ReportRequest streams completed cells back under a lease.
type ReportRequest struct {
	Worker  string         `json:"worker"`
	Lease   uint64         `json:"lease"`
	Records []ReportRecord `json:"records"`
}

// ReportResponse acknowledges a report. Stale means the lease was already
// reclaimed or released; any still-pending records were accepted anyway
// (the work is valid wherever it ran), but the worker should abandon the
// rest of the range and ask for a fresh lease.
type ReportResponse struct {
	OK    bool `json:"ok"`
	Stale bool `json:"stale,omitempty"`
}

// HeartbeatRequest renews every lease the named worker holds.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse reports how many leases were renewed.
type HeartbeatResponse struct {
	Leases int  `json:"leases"`
	Done   bool `json:"done,omitempty"`
}

// Status is the coordinator's read-only state snapshot (GET /v1/status).
type Status struct {
	Spec     string `json:"spec"`
	Cells    int    `json:"cells"`   // expanded plan size
	Skipped  int    `json:"skipped"` // complete before this coordinator started
	Todo     int    `json:"todo"`    // cells this coordinator must see executed
	Written  int    `json:"written"` // of Todo, durably appended so far
	Leased   int    `json:"leased"`  // live leases
	Workers  int    `json:"workers"` // distinct workers ever seen
	Reclaims uint64 `json:"reclaims"`
	Done     bool   `json:"done"`
}
