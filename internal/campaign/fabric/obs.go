package fabric

import "rpls/internal/obs"

// Telemetry handles for the fabric. Write-only from this package (the
// obsflow analyzer enforces it): protocol decisions read coordinator
// state under its own mutex (Status, lease table), never these.
var (
	obsLeaseGrants = obs.NewCounter("fabric.lease.grants")
	obsLeaseCells  = obs.NewCounter("fabric.lease.cells")
	obsReclaims    = obs.NewCounter("fabric.lease.reclaims")
	obsHeartbeats  = obs.NewCounter("fabric.heartbeats")
	obsRecords     = obs.NewCounter("fabric.records")
	obsDuplicates  = obs.NewCounter("fabric.records.duplicate")
	obsWindowFull  = obs.NewCounter("fabric.lease.window_full")

	obsLeasesActive = obs.NewGauge("fabric.leases.active")
	obsWorkersSeen  = obs.NewGauge("fabric.workers.seen")

	obsWorkerCellNanos = obs.NewHistogram("fabric.worker.cell", "ns")
)
