package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"rpls/internal/campaign"
	"rpls/internal/obs"
)

// Options tunes a coordinator. The zero value selects the defaults.
type Options struct {
	// LeaseSize is the maximum cells per lease (default 8). Bigger leases
	// amortize protocol chatter; smaller ones lose less work to a crash.
	LeaseSize int
	// LeaseTTL is how long a lease survives without a heartbeat or report
	// before its unfinished cells are reclaimed (default 10s). Workers are
	// told to heartbeat at a third of it.
	LeaseTTL time.Duration
	// Window bounds how far past the write low-water mark cells may be
	// leased (default 4 leases' worth, floor one lease). It is the
	// backpressure knob: it caps the reorder buffer, so one stalled lease
	// can delay the stream but never balloon coordinator memory.
	Window int
	// Logger receives phase-attributed progress records (plan, execute,
	// lease, reclaim, progress, aggregate, done). Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.LeaseSize <= 0 {
		o.LeaseSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 4 * o.LeaseSize
	}
	if o.Window < o.LeaseSize {
		o.Window = o.LeaseSize
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Cell states in the coordinator's table, indexed by todo position.
const (
	cellFree   = uint8(iota) // not leased; eligible for the next grant
	cellLeased               // inside a live lease, not yet reported
	cellDone                 // delivered to the Sink (first record won)
)

// lease is one live grant over todo range [start, end).
type lease struct {
	id       uint64
	worker   string
	start    int
	end      int
	pending  int // cells of the range not yet processed through this lease
	deadline obs.Time
	span     obs.Span // per-lease trace span, Tid = worker ordinal
}

// Coordinator owns a campaign directory and leases its remaining cells to
// workers. Construct with NewCoordinator, expose Handler over HTTP, then
// Wait and Finish. All protocol handling is event-driven: expiry reclaim
// runs on every lease/heartbeat/report, so liveness needs no background
// timer — an idle coordinator with expired leases reclaims them the
// moment any worker next asks for work.
type Coordinator struct {
	opts Options
	dir  string
	prep *campaign.Prepared
	sink *campaign.Sink

	mu       sync.Mutex
	rep      campaign.Report
	state    []uint8
	leases   map[uint64]*lease
	nextID   uint64
	workers  map[string]int // worker name → ordinal, for span Tids
	reclaims uint64
	doneOnce sync.Once
	doneCh   chan struct{}
	finished bool
}

// NewCoordinator reconciles the directory against the spec (exactly like
// a local run or resume: completed cells are skipped) and opens the Sink.
// Call Finish to release the directory even if no worker ever connects.
func NewCoordinator(dir string, spec campaign.Spec, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	prep, err := campaign.Prepare(dir, spec)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:    opts,
		dir:     dir,
		prep:    prep,
		rep:     prep.Report,
		state:   make([]uint8, len(prep.Todo)),
		leases:  map[uint64]*lease{},
		workers: map[string]int{},
		doneCh:  make(chan struct{}),
	}
	c.sink, err = campaign.NewSink(dir, prep.Todo, &c.rep)
	if err != nil {
		return nil, err
	}
	c.sink.SetProgress(campaign.ProgressFunc(opts.Logger, len(prep.Todo)))
	opts.Logger.Info("campaign", "phase", "plan", "spec", prep.Plan.Spec.Name,
		"cells", c.rep.Cells, "execute", c.rep.Executed, "skipped", c.rep.Skipped,
		"lease", opts.LeaseSize, "ttl", opts.LeaseTTL, "window", opts.Window)
	opts.Logger.Info("campaign", "phase", "execute", "cells", len(prep.Todo), "transport", "fabric")
	if len(prep.Todo) == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathReport, c.handleReport)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return mux
}

// Wait blocks until every remaining cell is durably written, or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports whether every remaining cell is durably written.
func (c *Coordinator) Done() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

// Finish closes the Sink and rewrites the BENCH_*.json aggregates — the
// same tail a local run performs. Idempotent; call after Wait (or on
// abort, in which case the directory is left resumable).
func (c *Coordinator) Finish() (campaign.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return c.rep, nil
	}
	c.finished = true
	if err := c.sink.Close(); err != nil {
		return c.rep, err
	}
	if err := campaign.WriteAggregates(c.dir, c.prep.Plan.Spec.Name, c.opts.Logger); err != nil {
		return c.rep, err
	}
	c.opts.Logger.Info("campaign", "phase", "done", "spec", c.prep.Plan.Spec.Name, "report", c.rep.String())
	return c.rep, nil
}

// Status snapshots the coordinator's public state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Spec:     c.prep.Plan.Spec.Name,
		Cells:    c.rep.Cells,
		Skipped:  c.rep.Skipped,
		Todo:     len(c.prep.Todo),
		Written:  c.sink.Written(),
		Leased:   len(c.leases),
		Workers:  len(c.workers),
		Reclaims: c.reclaims,
		Done:     c.Done(),
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, c.grant(req.Worker))
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.accept(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, c.heartbeat(req.Worker))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}

// grant reclaims expired leases, then hands out the lowest contiguous run
// of free cells inside the lease window.
func (c *Coordinator) grant(worker string) LeaseResponse {
	now := obs.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	if c.doneLocked() {
		return LeaseResponse{Done: true}
	}
	low := c.sink.Written()
	bound := low + c.opts.Window
	if bound > len(c.prep.Todo) {
		bound = len(c.prep.Todo)
	}
	start := -1
	for i := low; i < bound; i++ {
		if c.state[i] == cellFree {
			start = i
			break
		}
	}
	if start < 0 {
		// Window full (or everything in it already leased): backpressure.
		// The retry delay keeps idle workers polling, which is also what
		// drives reclaim while a lease is stalling the window.
		obsWindowFull.Inc()
		return LeaseResponse{RetryMillis: c.retryMillis()}
	}
	end := start
	for end < bound && end-start < c.opts.LeaseSize && c.state[end] == cellFree {
		end++
	}
	c.nextID++
	l := &lease{
		id:       c.nextID,
		worker:   worker,
		start:    start,
		end:      end,
		pending:  end - start,
		deadline: now + obs.Time(c.opts.LeaseTTL),
	}
	sp := obs.Begin("fabric.lease")
	sp.Tid = int64(c.workerOrdinalLocked(worker))
	sp.A, sp.B = int64(start), int64(end-start)
	l.span = sp
	for i := start; i < end; i++ {
		c.state[i] = cellLeased
	}
	c.leases[l.id] = l
	obsLeaseGrants.Inc()
	obsLeaseCells.Add(uint64(end - start))
	obsLeasesActive.Set(int64(len(c.leases)))
	c.opts.Logger.Info("campaign", "phase", "lease", "worker", worker,
		"lease", l.id, "start", start, "cells", end-start)
	cells := make([]campaign.Cell, end-start)
	copy(cells, c.prep.Todo[start:end])
	return LeaseResponse{Lease: &Lease{
		ID:              l.id,
		Start:           start,
		Cells:           cells,
		TTLMillis:       c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: (c.opts.LeaseTTL / 3).Milliseconds(),
	}}
}

// accept validates and delivers reported records. Records for cells that
// are already done (a reclaimed lease's original owner racing its
// replacement) are counted and dropped; everything else flows through the
// Sink, which writes in plan order.
func (c *Coordinator) accept(req ReportRequest) (ReportResponse, error) {
	now := obs.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	l, live := c.leases[req.Lease]
	for _, rec := range req.Records {
		if rec.Index < 0 || rec.Index >= len(c.prep.Todo) {
			return ReportResponse{}, fmt.Errorf("fabric: record index %d out of range [0, %d)", rec.Index, len(c.prep.Todo))
		}
		if id := c.prep.Todo[rec.Index].ID(); id != rec.Cell {
			return ReportResponse{}, fmt.Errorf("fabric: record %d names cell %q, plan has %q", rec.Index, rec.Cell, id)
		}
		if live && rec.Index >= l.start && rec.Index < l.end {
			l.pending--
		}
		if c.state[rec.Index] == cellDone {
			obsDuplicates.Inc()
			continue
		}
		if err := c.sink.Put(rec.Index, rec.Line, rec.Status); err != nil {
			return ReportResponse{}, err
		}
		c.state[rec.Index] = cellDone
		obsRecords.Inc()
	}
	if live {
		l.deadline = now + obs.Time(c.opts.LeaseTTL) // a report renews like a heartbeat
		if l.pending <= 0 {
			c.releaseLocked(l)
		}
	}
	c.checkDoneLocked()
	return ReportResponse{OK: true, Stale: !live}, nil
}

// heartbeat renews every lease the worker holds.
func (c *Coordinator) heartbeat(worker string) HeartbeatResponse {
	now := obs.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	n := 0
	for _, l := range c.leases {
		if l.worker == worker {
			l.deadline = now + obs.Time(c.opts.LeaseTTL)
			n++
		}
	}
	obsHeartbeats.Inc()
	return HeartbeatResponse{Leases: n, Done: c.doneLocked()}
}

// reclaimExpiredLocked returns the unfinished cells of every expired
// lease to the free pool so they can be re-leased.
func (c *Coordinator) reclaimExpiredLocked(now obs.Time) {
	if len(c.leases) == 0 {
		return
	}
	var expired []uint64
	for id, l := range c.leases {
		if l.deadline < now {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		l := c.leases[id]
		freed := 0
		for i := l.start; i < l.end; i++ {
			if c.state[i] == cellLeased {
				c.state[i] = cellFree
				freed++
			}
		}
		c.reclaims++
		obsReclaims.Inc()
		c.releaseLocked(l)
		c.opts.Logger.Info("campaign", "phase", "reclaim", "worker", l.worker,
			"lease", id, "freed", freed)
	}
}

// releaseLocked retires a lease (completed or reclaimed).
func (c *Coordinator) releaseLocked(l *lease) {
	delete(c.leases, l.id)
	obs.End(l.span)
	obsLeasesActive.Set(int64(len(c.leases)))
}

func (c *Coordinator) doneLocked() bool {
	return c.sink.Written() == len(c.prep.Todo)
}

// checkDoneLocked closes the done channel the moment the last todo cell
// is durably written.
func (c *Coordinator) checkDoneLocked() {
	if c.doneLocked() {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// workerOrdinalLocked assigns each distinct worker name a stable small
// integer, used as the trace Tid so per-worker lease spans line up.
func (c *Coordinator) workerOrdinalLocked(worker string) int {
	if ord, ok := c.workers[worker]; ok {
		return ord
	}
	ord := len(c.workers)
	c.workers[worker] = ord
	obsWorkersSeen.Set(int64(len(c.workers)))
	return ord
}

// retryMillis is the backpressure delay handed out when the window is
// full: a quarter TTL, floored so sub-second test TTLs do not turn
// workers into busy-loops.
func (c *Coordinator) retryMillis() int64 {
	ms := c.opts.LeaseTTL.Milliseconds() / 4
	if ms < 10 {
		ms = 10
	}
	return ms
}

// decodeBody decodes a JSON request body, replying 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("fabric: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
