package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"rpls/internal/prng"
)

// The family registry: named graph builders the campaign subsystem, the
// conformance suite, and sweeps resolve by string. Where the generators in
// generators.go implement the exact constructions the paper's proofs need
// (chords, hubs, cycle chains), families are the scenario axis — each one is
// a topology class parameterized only by a target size, a seed, and at most
// two shape knobs, so a declarative spec can name it without writing Go.

// FamilyParams parameterizes one family build. N is a target node count:
// families whose structure quantizes sizes (grids, hypercubes, barbells)
// build the nearest realizable size at or near N, and the returned graph's
// N() is authoritative. Seed drives every random family; deterministic
// families ignore it.
type FamilyParams struct {
	N    int
	Seed uint64
	P    float64 // gnp edge probability; <= 0 selects the family default
	D    int     // dregular degree; <= 0 selects the family default
}

// Family is one registered graph family.
type Family struct {
	Name        string
	Description string
	// Random reports whether Seed changes the built graph.
	Random bool
	// Build constructs an instance near p.N nodes. Every built graph is
	// connected and passes Validate.
	Build func(p FamilyParams) (*Graph, error)
}

var (
	familyMu sync.RWMutex
	families = map[string]Family{}
)

// RegisterFamily adds a family to the registry. Like engine.Register it
// panics on an empty name or a duplicate — both are init-time programming
// errors.
func RegisterFamily(f Family) {
	if f.Name == "" {
		panic("graph: RegisterFamily with empty name")
	}
	if f.Build == nil {
		panic(fmt.Sprintf("graph: RegisterFamily(%q) with nil builder", f.Name))
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("graph: duplicate registration of family %q", f.Name))
	}
	families[f.Name] = f
}

// LookupFamily finds a registered family by name.
func LookupFamily(name string) (Family, bool) {
	familyMu.RLock()
	defer familyMu.RUnlock()
	f, ok := families[name]
	return f, ok
}

// Families returns every registered family, sorted by name.
func Families() []Family {
	familyMu.RLock()
	defer familyMu.RUnlock()
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Family, 0, len(names))
	for _, name := range names {
		out = append(out, families[name])
	}
	return out
}

// FamilyNames returns the sorted names of all registered families.
func FamilyNames() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

const (
	defaultGNPProb     = 0.1
	defaultRegularDeg  = 3
	maxHypercubeDim    = 20
	dRegularAttempts   = 200 // pairing-model restarts before giving up
	dRegularConnectTry = 50  // whole-graph redraws to find a connected one
)

func init() {
	RegisterFamily(Family{
		Name:        "path",
		Description: "the n-node path (Theorem 5.1 family)",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: path family needs n >= 2, got %d", p.N)
			}
			return Path(p.N), nil
		},
	})
	RegisterFamily(Family{
		Name:        "cycle",
		Description: "the n-node cycle with consistent ports",
		Build:       func(p FamilyParams) (*Graph, error) { return Cycle(p.N) },
	})
	RegisterFamily(Family{
		Name:        "complete",
		Description: "the complete graph K_n",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: complete family needs n >= 2, got %d", p.N)
			}
			return Complete(p.N), nil
		},
	})
	RegisterFamily(Family{
		Name:        "star",
		Description: "the n-node star with center 0",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: star family needs n >= 2, got %d", p.N)
			}
			return Star(p.N), nil
		},
	})
	RegisterFamily(Family{
		Name:        "randomtree",
		Description: "uniform-ish random tree (each node attaches to a uniform predecessor)",
		Random:      true,
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: randomtree family needs n >= 2, got %d", p.N)
			}
			return RandomTree(p.N, prng.New(p.Seed)), nil
		},
	})
	RegisterFamily(Family{
		Name:        "randomconnected",
		Description: "random tree plus n/2 extra random edges",
		Random:      true,
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: randomconnected family needs n >= 2, got %d", p.N)
			}
			return RandomConnected(p.N, p.N/2, prng.New(p.Seed)), nil
		},
	})
	RegisterFamily(Family{
		Name:        "gnp",
		Description: "connected Erdős–Rényi G(n,p): a random spanning tree plus each remaining pair with probability p (default 0.1)",
		Random:      true,
		Build: func(p FamilyParams) (*Graph, error) {
			prob := p.P
			if prob <= 0 {
				prob = defaultGNPProb
			}
			if prob > 1 {
				return nil, fmt.Errorf("graph: gnp family needs p <= 1, got %g", prob)
			}
			if p.N < 2 {
				return nil, fmt.Errorf("graph: gnp family needs n >= 2, got %d", p.N)
			}
			return GNPConnected(p.N, prob, prng.New(p.Seed)), nil
		},
	})
	RegisterFamily(Family{
		Name:        "grid",
		Description: "near-square 2D grid with about n nodes",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: grid family needs n >= 2, got %d", p.N)
			}
			rows := int(math.Sqrt(float64(p.N)))
			if rows < 1 {
				rows = 1
			}
			cols := (p.N + rows - 1) / rows
			return Grid(rows, cols)
		},
	})
	RegisterFamily(Family{
		Name:        "torus",
		Description: "near-square 2D torus (wraparound grid) with about n nodes",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 9 {
				return nil, fmt.Errorf("graph: torus family needs n >= 9, got %d", p.N)
			}
			rows := int(math.Sqrt(float64(p.N)))
			if rows < 3 {
				rows = 3
			}
			cols := (p.N + rows - 1) / rows
			if cols < 3 {
				cols = 3
			}
			return Torus(rows, cols)
		},
	})
	RegisterFamily(Family{
		Name:        "hypercube",
		Description: "the d-dimensional hypercube with 2^d ≈ n nodes",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: hypercube family needs n >= 2, got %d", p.N)
			}
			dim := 1
			for (1<<(dim+1)) <= p.N && dim < maxHypercubeDim {
				dim++
			}
			return Hypercube(dim)
		},
	})
	RegisterFamily(Family{
		Name:        "dregular",
		Description: "connected random d-regular graph via the pairing model (default d = 3)",
		Random:      true,
		Build: func(p FamilyParams) (*Graph, error) {
			d := p.D
			if d <= 0 {
				d = defaultRegularDeg
			}
			if d < 3 {
				return nil, fmt.Errorf("graph: dregular family needs d >= 3 for connectivity, got %d", d)
			}
			n := p.N
			if n*d%2 != 0 {
				n++ // n·d must be even; round the target up
			}
			if n <= d {
				return nil, fmt.Errorf("graph: dregular family needs n > d, got n=%d d=%d", n, d)
			}
			rng := prng.New(p.Seed)
			for try := 0; try < dRegularConnectTry; try++ {
				g, err := DRegular(n, d, rng)
				if err != nil {
					return nil, err
				}
				if g.IsConnected() {
					return g, nil
				}
			}
			return nil, fmt.Errorf("graph: no connected %d-regular graph on %d nodes after %d draws", d, n, dRegularConnectTry)
		},
	})
	RegisterFamily(Family{
		Name:        "powerlawtree",
		Description: "preferential-attachment tree (power-law degree distribution)",
		Random:      true,
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 2 {
				return nil, fmt.Errorf("graph: powerlawtree family needs n >= 2, got %d", p.N)
			}
			return PowerLawTree(p.N, prng.New(p.Seed)), nil
		},
	})
	RegisterFamily(Family{
		Name:        "barbell",
		Description: "two K_k cliques joined by a path, with 2k plus bridge ≈ n nodes",
		Build: func(p FamilyParams) (*Graph, error) {
			if p.N < 6 {
				return nil, fmt.Errorf("graph: barbell family needs n >= 6, got %d", p.N)
			}
			k := p.N / 3
			if k < 3 {
				k = 3
			}
			bridge := p.N - 2*k
			if bridge < 0 {
				bridge = 0
			}
			return Barbell(k, bridge)
		},
	})
}
