package graph

import (
	"testing"
	"testing/quick"

	"rpls/internal/prng"
)

// Structural property tests for the family registry and each scenario
// family: node/edge counts, connectivity, degree bounds, and Validate.

func TestFamilyRegistryResolves(t *testing.T) {
	want := []string{
		"barbell", "complete", "cycle", "dregular", "gnp", "grid",
		"hypercube", "path", "powerlawtree", "randomconnected",
		"randomtree", "star", "torus",
	}
	names := FamilyNames()
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("family %q not registered", n)
		}
	}
	if _, ok := LookupFamily("no-such-family"); ok {
		t.Error("LookupFamily resolved a name that was never registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("FamilyNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

// Every registered family builds a valid connected graph near the target
// size, and random families are deterministic per seed.
func TestFamiliesBuildValidConnectedGraphs(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for _, n := range []int{9, 16, 33} {
				for _, seed := range []uint64{1, 7} {
					g, err := fam.Build(FamilyParams{N: n, Seed: seed})
					if err != nil {
						t.Fatalf("build n=%d seed=%d: %v", n, seed, err)
					}
					if err := g.Validate(); err != nil {
						t.Fatalf("n=%d seed=%d: invalid graph: %v", n, seed, err)
					}
					if !g.IsConnected() {
						t.Fatalf("n=%d seed=%d: disconnected graph", n, seed)
					}
					// Quantized families stay within a factor of two of the target.
					if g.N() < n/2 || g.N() > 2*n+3 {
						t.Fatalf("n=%d: built %d nodes, too far from target", n, g.N())
					}
					again, err := fam.Build(FamilyParams{N: n, Seed: seed})
					if err != nil {
						t.Fatalf("rebuild: %v", err)
					}
					if !sameGraph(g, again) {
						t.Fatalf("n=%d seed=%d: build is not deterministic", n, seed)
					}
				}
			}
		})
	}
}

func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) {
			return false
		}
		for p := 1; p <= a.Degree(v); p++ {
			if a.Neighbor(v, p) != b.Neighbor(v, p) {
				return false
			}
		}
	}
	return true
}

func TestGNPEdgeBoundsAndExtremes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 4 + rng.Intn(40)
		p := rng.Float64()
		g := GNPConnected(n, p, prng.New(seed+1))
		if g.Validate() != nil || !g.IsConnected() {
			return false
		}
		return g.M() >= n-1 && g.M() <= n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// p = 0 is a tree, p = 1 the complete graph.
	if g := GNPConnected(12, 0, prng.New(3)); g.M() != 11 {
		t.Errorf("GNPConnected(12, 0) has %d edges, want 11", g.M())
	}
	if g := GNPConnected(12, 1, prng.New(3)); g.M() != 66 {
		t.Errorf("GNPConnected(12, 1) has %d edges, want 66", g.M())
	}
	// Pure GNP respects the same edge ceiling without the tree floor.
	if g := GNP(10, 0, prng.New(4)); g.M() != 0 {
		t.Errorf("GNP(10, 0) has %d edges, want 0", g.M())
	}
	if g := GNP(10, 1, prng.New(4)); g.M() != 45 {
		t.Errorf("GNP(10, 1) has %d edges, want 45", g.M())
	}
}

func TestGridShape(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{1, 2}, {2, 2}, {3, 5}, {4, 4}, {1, 9}} {
		g, err := Grid(tc.r, tc.c)
		if err != nil {
			t.Fatalf("Grid(%d,%d): %v", tc.r, tc.c, err)
		}
		if g.N() != tc.r*tc.c {
			t.Errorf("Grid(%d,%d): %d nodes", tc.r, tc.c, g.N())
		}
		wantM := tc.r*(tc.c-1) + tc.c*(tc.r-1)
		if g.M() != wantM {
			t.Errorf("Grid(%d,%d): %d edges, want %d", tc.r, tc.c, g.M(), wantM)
		}
		if !g.IsConnected() || g.Validate() != nil {
			t.Errorf("Grid(%d,%d): invalid or disconnected", tc.r, tc.c)
		}
		if g.MaxDegree() > 4 {
			t.Errorf("Grid(%d,%d): max degree %d > 4", tc.r, tc.c, g.MaxDegree())
		}
	}
	if _, err := Grid(0, 5); err == nil {
		t.Error("Grid(0,5) should fail")
	}
	if _, err := Grid(1, 1); err == nil {
		t.Error("Grid(1,1) should fail (single node)")
	}
}

func TestTorusIsFourRegular(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{3, 3}, {3, 5}, {4, 6}} {
		g, err := Torus(tc.r, tc.c)
		if err != nil {
			t.Fatalf("Torus(%d,%d): %v", tc.r, tc.c, err)
		}
		if g.N() != tc.r*tc.c || g.M() != 2*tc.r*tc.c {
			t.Errorf("Torus(%d,%d): n=%d m=%d, want n=%d m=%d",
				tc.r, tc.c, g.N(), g.M(), tc.r*tc.c, 2*tc.r*tc.c)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != 4 {
				t.Fatalf("Torus(%d,%d): node %d has degree %d, want 4", tc.r, tc.c, v, g.Degree(v))
			}
		}
		if !g.IsConnected() || g.Validate() != nil {
			t.Errorf("Torus(%d,%d): invalid or disconnected", tc.r, tc.c)
		}
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,5) should fail: wraparound would duplicate edges")
	}
}

func TestHypercubeShape(t *testing.T) {
	for dim := 1; dim <= 6; dim++ {
		g, err := Hypercube(dim)
		if err != nil {
			t.Fatalf("Hypercube(%d): %v", dim, err)
		}
		n := 1 << dim
		if g.N() != n || g.M() != dim*n/2 {
			t.Errorf("Hypercube(%d): n=%d m=%d, want n=%d m=%d", dim, g.N(), g.M(), n, dim*n/2)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != dim {
				t.Fatalf("Hypercube(%d): node %d has degree %d", dim, v, g.Degree(v))
			}
		}
		if !g.IsConnected() || g.Validate() != nil {
			t.Errorf("Hypercube(%d): invalid or disconnected", dim)
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) should fail")
	}
}

func TestDRegularIsRegularAndSimple(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		d := 3 + rng.Intn(3)
		n := d + 1 + rng.Intn(30)
		if n*d%2 != 0 {
			n++
		}
		g, err := DRegular(n, d, prng.New(seed+1))
		if err != nil {
			return false
		}
		if g.Validate() != nil || g.M() != n*d/2 {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	if _, err := DRegular(5, 3, prng.New(1)); err == nil {
		t.Error("DRegular(5,3) should fail: odd stub count")
	}
	if _, err := DRegular(3, 3, prng.New(1)); err == nil {
		t.Error("DRegular(3,3) should fail: n <= d")
	}
}

func TestPowerLawTreeIsATree(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 2 + rng.Intn(60)
		g := PowerLawTree(n, prng.New(seed+1))
		return g.Validate() == nil && g.IsConnected() && g.M() == n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Hubs: on a large instance the max degree should exceed the uniform
	// tree's typical logarithmic crowding by a comfortable margin.
	g := PowerLawTree(512, prng.New(9))
	if g.MaxDegree() < 8 {
		t.Errorf("PowerLawTree(512) max degree %d; expected a hub of >= 8", g.MaxDegree())
	}
}

func TestBarbellShape(t *testing.T) {
	for _, tc := range []struct{ k, bridge int }{{3, 0}, {3, 2}, {5, 4}} {
		g, err := Barbell(tc.k, tc.bridge)
		if err != nil {
			t.Fatalf("Barbell(%d,%d): %v", tc.k, tc.bridge, err)
		}
		n := 2*tc.k + tc.bridge
		wantM := tc.k*(tc.k-1) + tc.bridge + 1
		if g.N() != n || g.M() != wantM {
			t.Errorf("Barbell(%d,%d): n=%d m=%d, want n=%d m=%d",
				tc.k, tc.bridge, g.N(), g.M(), n, wantM)
		}
		if !g.IsConnected() || g.Validate() != nil {
			t.Errorf("Barbell(%d,%d): invalid or disconnected", tc.k, tc.bridge)
		}
		// Interior bridge nodes have degree exactly 2.
		for i := 0; i < tc.bridge; i++ {
			if d := g.Degree(tc.k + i); d != 2 {
				t.Errorf("Barbell(%d,%d): bridge node %d has degree %d", tc.k, tc.bridge, tc.k+i, d)
			}
		}
	}
	if _, err := Barbell(2, 0); err == nil {
		t.Error("Barbell(2,0) should fail: cliques need k >= 3")
	}
}
