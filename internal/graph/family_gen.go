package graph

import (
	"fmt"

	"rpls/internal/prng"
)

// Generators backing the scenario families of family.go. Unlike the
// paper-specific constructions in generators.go, these are the standard
// topology classes of the empirical literature: random, lattice, expander,
// heavy-tailed, and bottlenecked graphs.

// GNP returns a pure Erdős–Rényi G(n, p): every unordered pair becomes an
// edge independently with probability p. The result may be disconnected;
// the "gnp" family uses GNPConnected instead.
func GNP(n int, p float64, rng *prng.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// GNPConnected returns a connected G(n, p) variant: a uniform-ish random
// spanning tree guarantees connectivity, and every pair not already joined
// by a tree edge becomes an edge independently with probability p. For
// p = 0 it is exactly a random tree; for p = 1, the complete graph.
func GNPConnected(n int, p float64, rng *prng.Rand) *Graph {
	g := RandomTree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Grid returns the rows × cols 2D grid; node (r, c) is index r*cols + c.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graph: grid needs rows, cols >= 1 and >= 2 nodes, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.MustAddEdge(v, v+1)
			}
			if r+1 < rows {
				g.MustAddEdge(v, v+cols)
			}
		}
	}
	return g, nil
}

// Torus returns the rows × cols 2D torus: the grid with wraparound edges in
// both dimensions. Both dimensions must be at least 3, or the wraparound
// would duplicate a grid edge (the paper's graphs are simple).
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	g, err := Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		g.MustAddEdge(r*cols, r*cols+cols-1)
	}
	for c := 0; c < cols; c++ {
		g.MustAddEdge(c, (rows-1)*cols+c)
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes: u and v
// are adjacent iff their indices differ in exactly one bit.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > maxHypercubeDim {
		return nil, fmt.Errorf("graph: hypercube needs 1 <= dim <= %d, got %d", maxHypercubeDim, dim)
	}
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.MustAddEdge(v, u)
			}
		}
	}
	return g, nil
}

// DRegular returns a uniform-ish random d-regular simple graph on n nodes
// via incremental pairing (Steger–Wormald): legal stub pairs (no self-loop,
// no duplicate edge) are matched one at a time, and the attempt restarts
// only when no legal pair remains — far more reliable than redrawing whole
// matchings, whose success probability decays like e^(−Θ(d²)). Requires
// n > d >= 1 and n·d even. The result may be disconnected (the "dregular"
// family redraws until connected).
func DRegular(n, d int, rng *prng.Rand) (*Graph, error) {
	if d < 1 || n <= d {
		return nil, fmt.Errorf("graph: d-regular needs n > d >= 1, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: d-regular needs n*d even, got n=%d d=%d", n, d)
	}
	stubs := make([]int, 0, n*d)
	for attempt := 0; attempt < dRegularAttempts; attempt++ {
		g := New(n)
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		stuck := false
		for len(stubs) > 0 && !stuck {
			if i, j, ok := drawLegalPair(g, stubs, rng); ok {
				g.MustAddEdge(stubs[i], stubs[j])
				if i < j {
					i, j = j, i
				}
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
			} else {
				stuck = true
			}
		}
		if !stuck {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no simple %d-regular matching on %d nodes after %d attempts", d, n, dRegularAttempts)
}

// drawLegalPair picks a uniform legal stub pair, falling back to an
// exhaustive scan when random probing keeps missing (the endgame, where few
// legal pairs remain).
func drawLegalPair(g *Graph, stubs []int, rng *prng.Rand) (int, int, bool) {
	for try := 0; try < 64; try++ {
		i, j := rng.Intn(len(stubs)), rng.Intn(len(stubs))
		if i != j && stubs[i] != stubs[j] && !g.HasEdge(stubs[i], stubs[j]) {
			return i, j, true
		}
	}
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !g.HasEdge(stubs[i], stubs[j]) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// PowerLawTree returns a preferential-attachment tree: node v > 0 attaches
// to an existing node chosen with probability proportional to degree + 1,
// yielding a heavy-tailed degree distribution (hubs), in contrast to
// RandomTree's uniform attachment.
func PowerLawTree(n int, rng *prng.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	// Attachment by sampling from the endpoint list of existing edges: each
	// node appears once per incident edge plus once unconditionally, which
	// realizes degree+1 weighting without bookkeeping.
	targets := make([]int, 0, 2*n)
	g.MustAddEdge(0, 1)
	targets = append(targets, 0, 1)
	for v := 2; v < n; v++ {
		var u int
		if rng.Intn(v+len(targets)) < v {
			u = rng.Intn(v) // the "+1" uniform share
		} else {
			u = targets[rng.Intn(len(targets))]
		}
		g.MustAddEdge(u, v)
		targets = append(targets, u, v)
	}
	return g
}

// Barbell returns two K_k cliques joined through a path of bridge interior
// nodes (bridge may be 0: the cliques are then joined by a single edge).
// Nodes 0..k-1 form the first clique, k..k+bridge-1 the path, and the rest
// the second clique. The bridge is the classic bottleneck scenario for
// communication-heavy verification.
func Barbell(k, bridge int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: barbell needs cliques of k >= 3, got %d", k)
	}
	if bridge < 0 {
		return nil, fmt.Errorf("graph: barbell needs bridge >= 0, got %d", bridge)
	}
	n := 2*k + bridge
	g := New(n)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.MustAddEdge(u, v)
		}
	}
	for u := k + bridge; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	// Path from clique one's last node through the bridge into clique two's
	// first node.
	prev := k - 1
	for i := 0; i < bridge; i++ {
		g.MustAddEdge(prev, k+i)
		prev = k + i
	}
	g.MustAddEdge(prev, k+bridge)
	return g, nil
}
