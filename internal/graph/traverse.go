package graph

// BFSDist returns the distance (in edges) from src to every node, with -1
// for unreachable nodes.
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if g.N() == 0 {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adjView(v) {
			if dist[h.To] == -1 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected; the paper's family Fcon contains only connected
// graphs and generators uphold this.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFSDist(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the partition of nodes into connected components,
// each sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		members := []int{s}
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.adjView(v) {
				if comp[h.To] == -1 {
					comp[h.To] = id
					members = append(members, h.To)
					queue = append(queue, h.To)
				}
			}
		}
		out = append(out, members)
	}
	for _, c := range out {
		sortInts(c)
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// InducedSubgraph returns the subgraph induced by nodes (which must be
// distinct), plus the mapping from new indices to original ones. Port order
// among surviving edges is preserved, so the result of splitting a graph
// into components retains consistent local orderings.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	index := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
		orig[i] = v
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, h := range g.adjView(v) {
			if j, ok := index[h.To]; ok && i < j {
				sub.MustAddEdge(i, j)
			}
		}
	}
	return sub, orig
}

// RemoveEdge returns a copy of g with edge {u, v} deleted. Remaining edges
// are re-port-numbered compactly per node, preserving relative order.
func (g *Graph) RemoveEdge(u, v int) (*Graph, error) {
	if !g.HasEdge(u, v) {
		return nil, errNoEdge{u, v}
	}
	c := New(g.N())
	for _, e := range g.Edges() {
		if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
			continue
		}
		// Edges() is sorted by (U, V), which preserves a deterministic
		// port order; exact port identity is not needed by callers.
		c.MustAddEdge(e.U, e.V)
	}
	return c, nil
}

type errNoEdge [2]int

func (e errNoEdge) Error() string {
	return "graph: no edge {" + itoa(e[0]) + "," + itoa(e[1]) + "}"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SpanningTreeParents returns, for a connected graph, a BFS spanning tree
// rooted at root encoded as parent port numbers: parents[v] is the port at v
// of the edge to its parent, and 0 for the root. Returns nil if g is not
// connected.
func (g *Graph) SpanningTreeParents(root int) []int {
	if g.N() == 0 {
		return []int{}
	}
	parents := make([]int, g.N())
	visited := make([]bool, g.N())
	visited[root] = true
	queue := []int{root}
	seen := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, h := range g.adjView(v) {
			if !visited[h.To] {
				visited[h.To] = true
				seen++
				// Port at the child leading back to v.
				_ = i
				parents[h.To] = h.RevPort
				queue = append(queue, h.To)
			}
		}
	}
	if seen != g.N() {
		return nil
	}
	return parents
}
