package graph

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

// Flag bits used in State.Flags by the concrete schemes.
const (
	FlagLeader uint64 = 1 << iota // node claims to be the leader
	FlagSource                    // node is s in s-t problems
	FlagTarget                    // node is t in s-t problems
	FlagMarked                    // generic mark
)

// State is the full local input of a node (§2.1): its identity, and all
// problem-specific data the predicates of §5 read. Fields unused by a given
// predicate are left at their zero values and excluded from its state
// encoding by the scheme.
type State struct {
	ID      uint64  // node identity Id(v); unique across the configuration
	Parent  int     // port number (1-based) of the parent edge; 0 = root/none
	Weights []int64 // edge weights indexed by port-1; nil for unweighted
	Color   int64   // generic scalar: a color, a k parameter, a value
	Flags   uint64  // FlagLeader, FlagSource, ...
	Data    []byte  // arbitrary payload (Unif predicate, opaque inputs)
}

// Clone returns a deep copy.
func (s State) Clone() State {
	c := s
	if s.Weights != nil {
		c.Weights = make([]int64, len(s.Weights))
		copy(c.Weights, s.Weights)
	}
	if s.Data != nil {
		c.Data = make([]byte, len(s.Data))
		copy(c.Data, s.Data)
	}
	return c
}

// Encode serializes the state into w. The encoding is self-delimiting so
// the universal scheme (Lemma 3.3) can pack whole configurations.
func (s State) Encode(w *bitstring.Writer) {
	w.WriteUint(s.ID, 64)
	w.WriteUint(uint64(s.Parent), 16)
	w.WriteInt(s.Color, 63)
	w.WriteUint(s.Flags, 64)
	w.WriteUint(uint64(len(s.Weights)), 16)
	for _, wt := range s.Weights {
		w.WriteInt(wt, 63)
	}
	w.WriteUint(uint64(len(s.Data)), 32)
	w.WriteBytes(s.Data)
}

// EncodedBits returns the size of Encode's output in bits; this is the k of
// Lemma 3.3 and Corollary 3.4 for the configuration at hand.
func (s State) EncodedBits() int {
	return 64 + 16 + 64 + 64 + 16 + 64*len(s.Weights) + 32 + 8*len(s.Data)
}

// DecodeState reads a state written by Encode.
func DecodeState(r *bitstring.Reader) (State, error) {
	var s State
	var err error
	if s.ID, err = r.ReadUint(64); err != nil {
		return s, fmt.Errorf("state id: %w", err)
	}
	parent, err := r.ReadUint(16)
	if err != nil {
		return s, fmt.Errorf("state parent: %w", err)
	}
	s.Parent = int(parent)
	if s.Color, err = r.ReadInt(63); err != nil {
		return s, fmt.Errorf("state color: %w", err)
	}
	if s.Flags, err = r.ReadUint(64); err != nil {
		return s, fmt.Errorf("state flags: %w", err)
	}
	nw, err := r.ReadUint(16)
	if err != nil {
		return s, fmt.Errorf("state weight count: %w", err)
	}
	if nw > 0 {
		s.Weights = make([]int64, nw)
		for i := range s.Weights {
			if s.Weights[i], err = r.ReadInt(63); err != nil {
				return s, fmt.Errorf("state weight %d: %w", i, err)
			}
		}
	}
	nd, err := r.ReadUint(32)
	if err != nil {
		return s, fmt.Errorf("state data length: %w", err)
	}
	if nd > 0 {
		s.Data = make([]byte, nd)
		for i := range s.Data {
			b, err := r.ReadUint(8)
			if err != nil {
				return s, fmt.Errorf("state data byte %d: %w", i, err)
			}
			s.Data[i] = byte(b)
		}
	}
	return s, nil
}

// Config is a configuration Gs = (G, s): a graph together with a state
// assignment (§2.1).
type Config struct {
	G      *Graph
	States []State
}

// NewConfig pairs a graph with default states: ID(v) = v+1, everything else
// zero. IDs are distinct as the model requires.
func NewConfig(g *Graph) *Config {
	states := make([]State, g.N())
	for v := range states {
		states[v].ID = uint64(v + 1)
	}
	return &Config{G: g, States: states}
}

// Clone deep-copies the configuration (graph and states).
func (c *Config) Clone() *Config {
	states := make([]State, len(c.States))
	for i, s := range c.States {
		states[i] = s.Clone()
	}
	return &Config{G: c.G.Clone(), States: states}
}

// AssignRandomIDs replaces identities with distinct pseudo-random 63-bit
// values. Schemes must not depend on IDs being small or consecutive.
func (c *Config) AssignRandomIDs(rng *prng.Rand) {
	used := make(map[uint64]bool, len(c.States))
	for v := range c.States {
		for {
			id := rng.Uint64() >> 1
			if id != 0 && !used[id] {
				used[id] = true
				c.States[v].ID = id
				break
			}
		}
	}
}

// Validate checks configuration invariants: valid graph, one state per node,
// distinct IDs, weight arrays matching degrees where present, and symmetric
// edge weights (an edge weight is part of both endpoint states in §5.1).
func (c *Config) Validate() error {
	if err := c.G.Validate(); err != nil {
		return err
	}
	if len(c.States) != c.G.N() {
		return fmt.Errorf("config: %d states for %d nodes", len(c.States), c.G.N())
	}
	ids := make(map[uint64]int, len(c.States))
	for v, s := range c.States {
		if prev, dup := ids[s.ID]; dup {
			return fmt.Errorf("config: duplicate ID %d at nodes %d and %d", s.ID, prev, v)
		}
		ids[s.ID] = v
		if s.Parent < 0 || s.Parent > c.G.Degree(v) {
			return fmt.Errorf("config: node %d parent port %d out of range (degree %d)",
				v, s.Parent, c.G.Degree(v))
		}
		if s.Weights != nil && len(s.Weights) != c.G.Degree(v) {
			return fmt.Errorf("config: node %d has %d weights for degree %d",
				v, len(s.Weights), c.G.Degree(v))
		}
	}
	// Weight symmetry.
	for v := range c.States {
		if c.States[v].Weights == nil {
			continue
		}
		for i, h := range c.G.adjView(v) {
			if c.States[h.To].Weights == nil {
				return fmt.Errorf("config: weights present at %d but not at neighbor %d", v, h.To)
			}
			if c.States[v].Weights[i] != c.States[h.To].Weights[h.RevPort-1] {
				return fmt.Errorf("config: asymmetric weight on edge {%d,%d}", v, h.To)
			}
		}
	}
	return nil
}

// SetEdgeWeight records w as the weight of edge {u, v} in both endpoint
// states, allocating weight arrays on demand.
func (c *Config) SetEdgeWeight(u, v int, w int64) error {
	pu, ok := c.G.PortTo(u, v)
	if !ok {
		return errNoEdge{u, v}
	}
	pv, _ := c.G.PortTo(v, u)
	c.ensureWeights(u)
	c.ensureWeights(v)
	c.States[u].Weights[pu-1] = w
	c.States[v].Weights[pv-1] = w
	return nil
}

// EdgeWeight returns the weight of the edge at port p of u, or 0 if the
// configuration is unweighted.
func (c *Config) EdgeWeight(u, p int) int64 {
	if c.States[u].Weights == nil {
		return 0
	}
	return c.States[u].Weights[p-1]
}

func (c *Config) ensureWeights(v int) {
	if c.States[v].Weights == nil {
		c.States[v].Weights = make([]int64, c.G.Degree(v))
	}
}

// MaxStateBits returns max over nodes of the encoded state size: the k(n)
// of Lemma 3.3.
func (c *Config) MaxStateBits() int {
	max := 0
	for _, s := range c.States {
		if b := s.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// Encode serializes the whole configuration: n, the adjacency structure
// with ports, then each state. This is the representation R of the
// universal scheme (Appendix B).
func (c *Config) Encode() bitstring.String {
	var w bitstring.Writer
	n := c.G.N()
	w.WriteUint(uint64(n), 32)
	for v := 0; v < n; v++ {
		deg := c.G.Degree(v)
		w.WriteUint(uint64(deg), 16)
		for _, h := range c.G.adjView(v) {
			w.WriteUint(uint64(h.To), 32)
			w.WriteUint(uint64(h.RevPort), 16)
		}
	}
	for _, s := range c.States {
		s.Encode(&w)
	}
	return w.String()
}

// DecodeConfig reads a configuration written by Encode, validating
// structural integrity (adversarial labels may carry arbitrary bytes).
func DecodeConfig(s bitstring.String) (*Config, error) {
	r := bitstring.NewReader(s)
	n64, err := r.ReadUint(32)
	if err != nil {
		return nil, fmt.Errorf("config size: %w", err)
	}
	n := int(n64)
	if n > 1<<20 {
		return nil, fmt.Errorf("config: implausible node count %d", n)
	}
	g := &Graph{adj: make([][]Half, n)}
	for v := 0; v < n; v++ {
		deg64, err := r.ReadUint(16)
		if err != nil {
			return nil, fmt.Errorf("node %d degree: %w", v, err)
		}
		deg := int(deg64)
		if deg >= n && !(n == 0 && deg == 0) {
			return nil, fmt.Errorf("node %d: degree %d too large for %d nodes", v, deg, n)
		}
		g.adj[v] = make([]Half, deg)
		for i := 0; i < deg; i++ {
			to, err := r.ReadUint(32)
			if err != nil {
				return nil, fmt.Errorf("node %d port %d: %w", v, i+1, err)
			}
			rev, err := r.ReadUint(16)
			if err != nil {
				return nil, fmt.Errorf("node %d port %d revport: %w", v, i+1, err)
			}
			g.adj[v][i] = Half{To: int(to), RevPort: int(rev)}
		}
	}
	states := make([]State, n)
	for v := 0; v < n; v++ {
		st, err := DecodeState(r)
		if err != nil {
			return nil, fmt.Errorf("node %d state: %w", v, err)
		}
		states[v] = st
	}
	cfg := &Config{G: g, States: states}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("decoded config invalid: %w", err)
	}
	return cfg, nil
}
