package graph

import (
	"testing"

	"rpls/internal/prng"
)

func TestBFSDist(t *testing.T) {
	g := Path(5)
	dist := g.BFSDist(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	c, _ := Cycle(6)
	dist = c.BFSDist(0)
	for v, want := range []int{0, 1, 2, 3, 2, 1} {
		if dist[v] != want {
			t.Errorf("cycle dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	want := [][]int{{0, 1}, {2, 3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, orig := g.InducedSubgraph([]int{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: N=%d M=%d", sub.N(), sub.M())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 4 {
		t.Errorf("orig = %v", orig)
	}
}

func TestRemoveEdge(t *testing.T) {
	g, _ := Cycle(5)
	h, err := g.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 4 || h.HasEdge(0, 1) {
		t.Error("edge not removed")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.IsConnected() {
		t.Error("cycle minus an edge should stay connected")
	}
	if _, err := g.RemoveEdge(0, 2); err == nil {
		t.Error("removing a nonexistent edge should fail")
	}
}

func TestSpanningTreeParents(t *testing.T) {
	rng := prng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomConnected(n, rng.Intn(n), rng)
		root := rng.Intn(n)
		parents := g.SpanningTreeParents(root)
		if parents == nil {
			t.Fatal("nil parents for connected graph")
		}
		if parents[root] != 0 {
			t.Errorf("root parent port = %d, want 0", parents[root])
		}
		// Walking parent pointers from every node must reach the root
		// without revisiting.
		for v := 0; v < n; v++ {
			cur := v
			steps := 0
			for cur != root {
				p := parents[cur]
				if p < 1 || p > g.Degree(cur) {
					t.Fatalf("node %d: invalid parent port %d", cur, p)
				}
				cur = g.Neighbor(cur, p).To
				steps++
				if steps > n {
					t.Fatalf("parent pointers from %d loop", v)
				}
			}
		}
	}
}

func TestSpanningTreeParentsDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	if got := g.SpanningTreeParents(0); got != nil {
		t.Error("disconnected graph should yield nil spanning tree")
	}
}

func TestIsConnectedEmptyAndSingle(t *testing.T) {
	if !New(0).IsConnected() {
		t.Error("empty graph should count as connected")
	}
	if !New(1).IsConnected() {
		t.Error("single node should be connected")
	}
	if New(2).IsConnected() {
		t.Error("two isolated nodes are not connected")
	}
}
