package graph

// CSR is a flat, structure-of-arrays snapshot of a graph's adjacency: the
// directed half-edges of all nodes laid out contiguously in port order.
// Slot RowStart[v]+i holds port i+1 of node v, so node v's half-edges are
// the slots [RowStart[v], RowStart[v+1]).
//
// The snapshot exists for trial-batched verification: one traversal of the
// flat arrays serves every Monte-Carlo lane of a batch, with no per-node
// slice headers chased and no Adj copies made. RevEdge gives O(1) message
// exchange — the string sent on slot e is received on slot RevEdge[e] —
// which is what lets certificates live in flat per-lane planes indexed by
// slot.
//
// A CSR is a snapshot, not a live view: configurations are mutated in place
// by corruption helpers, so executors call Reset once per batch (an O(n+m)
// rebuild into reused storage) rather than caching across calls.
type CSR struct {
	// RowStart[v] is the first slot of node v; RowStart[N] is the total
	// number of slots (2m).
	RowStart []int
	// EdgeTo[e] is the neighbor the half-edge in slot e leads to.
	EdgeTo []int
	// PortOf[e] is the port number (1-based) this edge carries at EdgeTo[e].
	PortOf []int
	// RevEdge[e] is the slot of the reverse half-edge: the slot at EdgeTo[e]
	// whose edge leads back here. A message sent on slot e arrives on slot
	// RevEdge[e], and RevEdge[RevEdge[e]] == e.
	RevEdge []int
}

// N returns the number of nodes in the snapshot.
func (c *CSR) N() int { return len(c.RowStart) - 1 }

// Slots returns the number of directed half-edges (2m).
func (c *CSR) Slots() int {
	if len(c.RowStart) == 0 {
		return 0
	}
	return c.RowStart[len(c.RowStart)-1]
}

// Degree returns the degree of node v.
func (c *CSR) Degree(v int) int { return c.RowStart[v+1] - c.RowStart[v] }

// Reset rebuilds the snapshot from g, reusing the existing storage when it
// is large enough. The grows below are capacity-guarded: they fire only
// when a graph outgrows the snapshot, so steady-state batches never reach
// them.
//
//pls:hotpath
func (c *CSR) Reset(g *Graph) {
	n := g.N()
	if cap(c.RowStart) < n+1 {
		c.RowStart = make([]int, n+1) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
	}
	c.RowStart = c.RowStart[:n+1]
	total := 0
	for v := 0; v < n; v++ {
		c.RowStart[v] = total
		total += len(g.adj[v])
	}
	c.RowStart[n] = total
	if cap(c.EdgeTo) < total {
		c.EdgeTo = make([]int, total)  //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		c.PortOf = make([]int, total)  //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		c.RevEdge = make([]int, total) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
	}
	c.EdgeTo = c.EdgeTo[:total]
	c.PortOf = c.PortOf[:total]
	c.RevEdge = c.RevEdge[:total]
	for v := 0; v < n; v++ {
		base := c.RowStart[v]
		for i, h := range g.adj[v] {
			c.EdgeTo[base+i] = h.To
			c.PortOf[base+i] = h.RevPort
		}
	}
	for e := range c.RevEdge {
		c.RevEdge[e] = c.RowStart[c.EdgeTo[e]] + c.PortOf[e] - 1
	}
}
