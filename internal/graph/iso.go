package graph

import "sort"

// This file implements graph-isomorphism testing as used by the Symmetry
// predicate of Appendix C: a connected graph is symmetric when removing
// some edge splits it into two isomorphic components.
//
// The checker runs 1-dimensional Weisfeiler–Leman color refinement to
// partition the nodes, then a backtracking search guided by the refined
// classes. The components arising in the paper's constructions (G(z) — a
// path with pendant nodes and a triangle, Figure 3) are nearly rigid, so
// refinement alone usually decides the question; the backtracking handles
// the general case on the small graphs the tests use.

// Isomorphic reports whether g1 and g2 are isomorphic as unlabeled graphs
// (port numbers play no role, matching the definition in §2.1).
func Isomorphic(g1, g2 *Graph) bool {
	if g1.N() != g2.N() || g1.M() != g2.M() {
		return false
	}
	n := g1.N()
	if n == 0 {
		return true
	}
	c1 := refine(g1)
	c2 := refine(g2)
	if !sameColorHistogram(c1, c2) {
		return false
	}
	// Backtracking: map nodes of g1 in order of rarest color class first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	count1 := colorCounts(c1)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := count1[c1[order[a]]], count1[c1[order[b]]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	return matchNext(g1, g2, c1, c2, order, 0, mapping, used)
}

func matchNext(g1, g2 *Graph, c1, c2 []uint64, order []int, idx int, mapping []int, used []bool) bool {
	if idx == len(order) {
		return true
	}
	u := order[idx]
	for v := 0; v < g2.N(); v++ {
		if used[v] || c1[u] != c2[v] {
			continue
		}
		if !consistentMap(g1, g2, u, v, mapping) {
			continue
		}
		mapping[u] = v
		used[v] = true
		if matchNext(g1, g2, c1, c2, order, idx+1, mapping, used) {
			return true
		}
		mapping[u] = -1
		used[v] = false
	}
	return false
}

// consistentMap checks that mapping u→v preserves adjacency with every
// already-mapped node.
func consistentMap(g1, g2 *Graph, u, v int, mapping []int) bool {
	for w, mw := range mapping {
		if mw == -1 || w == u {
			continue
		}
		if g1.HasEdge(u, w) != g2.HasEdge(v, mw) {
			return false
		}
	}
	return true
}

// refine runs 1-WL color refinement to a fixed point and returns the final
// node colors. Colors are canonical across graphs: they hash the multiset
// of neighbor colors identically regardless of node numbering.
func refine(g *Graph) []uint64 {
	n := g.N()
	colors := make([]uint64, n)
	for v := range colors {
		colors[v] = uint64(g.Degree(v))
	}
	next := make([]uint64, n)
	for round := 0; round < n; round++ {
		changedPartition := false
		for v := 0; v < n; v++ {
			neigh := make([]uint64, 0, g.Degree(v))
			for _, h := range g.adjView(v) {
				neigh = append(neigh, colors[h.To])
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			h := colors[v]*0x100000001B3 + 0x9E3779B97F4A7C15
			for _, c := range neigh {
				h = (h ^ c) * 0x100000001B3
			}
			next[v] = h
		}
		if countDistinct(next) != countDistinct(colors) {
			changedPartition = true
		}
		colors, next = next, colors
		if !changedPartition && round > 0 {
			break
		}
	}
	return colors
}

func countDistinct(xs []uint64) int {
	set := make(map[uint64]bool, len(xs))
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

func colorCounts(colors []uint64) map[uint64]int {
	m := make(map[uint64]int, len(colors))
	for _, c := range colors {
		m[c]++
	}
	return m
}

func sameColorHistogram(a, b []uint64) bool {
	ma, mb := colorCounts(a), colorCounts(b)
	if len(ma) != len(mb) {
		return false
	}
	for c, n := range ma {
		if mb[c] != n {
			return false
		}
	}
	return true
}
