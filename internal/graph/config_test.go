package graph

import (
	"bytes"
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	states := []State{
		{},
		{ID: 42},
		{ID: 7, Parent: 3, Color: -17, Flags: FlagLeader | FlagSource},
		{ID: 1, Weights: []int64{5, -2, 1 << 40}},
		{ID: 2, Data: []byte("hello world")},
		{ID: 3, Parent: 65535, Color: 1<<62 - 1, Flags: ^uint64(0),
			Weights: []int64{0}, Data: bytes.Repeat([]byte{0xAB}, 100)},
	}
	for i, s := range states {
		var w bitstring.Writer
		s.Encode(&w)
		if w.Len() != s.EncodedBits() {
			t.Errorf("state %d: encoded %d bits, EncodedBits says %d", i, w.Len(), s.EncodedBits())
		}
		got, err := DecodeState(bitstring.NewReader(w.String()))
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if got.ID != s.ID || got.Parent != s.Parent || got.Color != s.Color || got.Flags != s.Flags {
			t.Errorf("state %d scalar fields mismatched: %+v vs %+v", i, got, s)
		}
		if len(got.Weights) != len(s.Weights) {
			t.Fatalf("state %d weights length %d vs %d", i, len(got.Weights), len(s.Weights))
		}
		for j := range s.Weights {
			if got.Weights[j] != s.Weights[j] {
				t.Errorf("state %d weight %d: %d vs %d", i, j, got.Weights[j], s.Weights[j])
			}
		}
		if !bytes.Equal(got.Data, s.Data) {
			t.Errorf("state %d data mismatch", i)
		}
	}
}

func TestStateCloneIsDeep(t *testing.T) {
	s := State{ID: 1, Weights: []int64{1, 2}, Data: []byte{3, 4}}
	c := s.Clone()
	c.Weights[0] = 99
	c.Data[0] = 99
	if s.Weights[0] == 99 || s.Data[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestNewConfigAssignsDistinctIDs(t *testing.T) {
	c := NewConfig(Path(10))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRandomIDsDistinct(t *testing.T) {
	c := NewConfig(Path(200))
	c.AssignRandomIDs(prng.New(5))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, s := range c.States {
		if s.ID == 0 {
			t.Errorf("node %d got zero ID", v)
		}
	}
}

func TestValidateRejectsDuplicateIDs(t *testing.T) {
	c := NewConfig(Path(3))
	c.States[2].ID = c.States[0].ID
	if err := c.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestValidateRejectsBadParentPort(t *testing.T) {
	c := NewConfig(Path(3))
	c.States[0].Parent = 5 // v0 has degree 1
	if err := c.Validate(); err == nil {
		t.Error("out-of-range parent port accepted")
	}
}

func TestValidateRejectsAsymmetricWeights(t *testing.T) {
	c := NewConfig(Path(3))
	c.States[0].Weights = []int64{7}
	c.States[1].Weights = []int64{8, 9}
	c.States[2].Weights = []int64{9}
	if err := c.Validate(); err == nil {
		t.Error("asymmetric weights accepted")
	}
}

func TestSetEdgeWeight(t *testing.T) {
	c := NewConfig(Path(3))
	if err := c.SetEdgeWeight(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetEdgeWeight(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	p, _ := c.G.PortTo(1, 0)
	if got := c.EdgeWeight(1, p); got != 5 {
		t.Errorf("weight at node 1 toward 0 = %d, want 5", got)
	}
	if err := c.SetEdgeWeight(0, 2, 9); err == nil {
		t.Error("weight on nonexistent edge accepted")
	}
}

func TestConfigEncodeDecodeRoundTrip(t *testing.T) {
	rng := prng.New(6)
	g := RandomConnected(12, 8, rng)
	c := NewConfig(g)
	c.AssignRandomIDs(rng)
	AssignRandomWeights(c, 1000, rng)
	c.States[3].Data = []byte{1, 2, 3}
	c.States[4].Flags = FlagLeader

	enc := c.Encode()
	got, err := DecodeConfig(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.N() != c.G.N() || got.G.M() != c.G.M() {
		t.Fatalf("decoded graph shape: %d/%d vs %d/%d", got.G.N(), got.G.M(), c.G.N(), c.G.M())
	}
	for v := range c.States {
		if got.States[v].ID != c.States[v].ID {
			t.Errorf("node %d ID mismatch", v)
		}
	}
	for v := 0; v < c.G.N(); v++ {
		for i, h := range c.G.adjView(v) {
			if got.G.adj[v][i] != h {
				t.Errorf("node %d port %d mismatch", v, i+1)
			}
		}
	}
}

func TestDecodeConfigRejectsGarbage(t *testing.T) {
	// Truncated streams and wild node counts must be rejected, not panic:
	// this data arrives inside adversarial labels.
	var w bitstring.Writer
	w.WriteUint(1<<20+1, 32)
	if _, err := DecodeConfig(w.String()); err == nil {
		t.Error("implausible node count accepted")
	}

	var w2 bitstring.Writer
	w2.WriteUint(3, 32)
	w2.WriteUint(2, 16) // node 0 claims degree 2, then stream ends
	if _, err := DecodeConfig(w2.String()); err == nil {
		t.Error("truncated adjacency accepted")
	}

	// Structurally inconsistent: reverse ports that do not match.
	var w3 bitstring.Writer
	w3.WriteUint(2, 32)
	// node 0: degree 1, to=1 revport=1
	w3.WriteUint(1, 16)
	w3.WriteUint(1, 32)
	w3.WriteUint(1, 16)
	// node 1: degree 1, to=0 revport=9 (bogus)
	w3.WriteUint(1, 16)
	w3.WriteUint(0, 32)
	w3.WriteUint(9, 16)
	// two zero states would follow; bogus revport must fail first or at Validate
	s0 := State{ID: 1}
	s0.Encode(&w3)
	s1 := State{ID: 2}
	s1.Encode(&w3)
	if _, err := DecodeConfig(w3.String()); err == nil {
		t.Error("inconsistent reverse port accepted")
	}
}

func TestMaxStateBits(t *testing.T) {
	c := NewConfig(Path(3))
	base := c.MaxStateBits()
	c.States[1].Data = make([]byte, 10)
	if got := c.MaxStateBits(); got != base+80 {
		t.Errorf("MaxStateBits = %d, want %d", got, base+80)
	}
}

func TestCloneConfigIsDeep(t *testing.T) {
	c := NewConfig(Path(4))
	c.States[0].Data = []byte{1}
	d := c.Clone()
	d.States[0].Data[0] = 9
	d.G.MustAddEdge(0, 3)
	if c.States[0].Data[0] == 9 {
		t.Error("Clone shares state data")
	}
	if c.G.HasEdge(0, 3) {
		t.Error("Clone shares graph")
	}
}
