package graph

import (
	"testing"

	"rpls/internal/prng"
)

func TestIsomorphicIdentical(t *testing.T) {
	g1 := Path(6)
	g2 := Path(6)
	if !Isomorphic(g1, g2) {
		t.Error("identical paths not isomorphic")
	}
}

func TestIsomorphicRelabeled(t *testing.T) {
	rng := prng.New(8)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		g1 := RandomConnected(n, rng.Intn(n), rng)
		// Relabel nodes by a random permutation.
		perm := rng.Perm(n)
		g2 := New(n)
		for _, e := range g1.Edges() {
			g2.MustAddEdge(perm[e.U], perm[e.V])
		}
		if !Isomorphic(g1, g2) {
			t.Fatalf("trial %d: relabeled graph not recognized as isomorphic", trial)
		}
	}
}

func TestNonIsomorphicDifferentShape(t *testing.T) {
	cases := []struct {
		name   string
		g1, g2 *Graph
	}{
		{"path vs star", Path(5), Star(5)},
		{"path vs cycle", Path(4), mustCycle(t, 4)},
		{"different sizes", Path(4), Path(5)},
	}
	for _, c := range cases {
		if Isomorphic(c.g1, c.g2) {
			t.Errorf("%s: reported isomorphic", c.name)
		}
	}
}

func TestNonIsomorphicSameDegreeSequence(t *testing.T) {
	// Two 6-node graphs, both 2-regular: C6 vs two triangles.
	c6 := mustCycle(t, 6)
	twoTriangles := New(6)
	twoTriangles.MustAddEdge(0, 1)
	twoTriangles.MustAddEdge(1, 2)
	twoTriangles.MustAddEdge(2, 0)
	twoTriangles.MustAddEdge(3, 4)
	twoTriangles.MustAddEdge(4, 5)
	twoTriangles.MustAddEdge(5, 3)
	if Isomorphic(c6, twoTriangles) {
		t.Error("C6 and 2×C3 reported isomorphic")
	}
}

func TestIsomorphicRegularPair(t *testing.T) {
	// 1-WL cannot split regular graphs; backtracking must still decide.
	// C5 vs C5 relabeled.
	g1 := mustCycle(t, 5)
	g2 := New(5)
	order := []int{2, 4, 1, 3, 0} // pentagram relabeling still a 5-cycle
	for i := 0; i < 5; i++ {
		g2.MustAddEdge(order[i], order[(i+1)%5])
	}
	if !Isomorphic(g1, g2) {
		t.Error("two 5-cycles not recognized as isomorphic")
	}
}

func TestIsomorphicEmpty(t *testing.T) {
	if !Isomorphic(New(0), New(0)) {
		t.Error("empty graphs should be isomorphic")
	}
	if !Isomorphic(New(3), New(3)) {
		t.Error("edgeless graphs of equal order should be isomorphic")
	}
	if Isomorphic(New(3), New(2)) {
		t.Error("different orders reported isomorphic")
	}
}

func mustCycle(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
