// Package graph implements the network model of §2.1 of the paper: connected
// graphs without self-loops or multi-edges, whose edges are locally numbered
// at each endpoint with port numbers 1..deg(v). An edge may carry different
// port numbers at its two endpoints.
//
// The package also provides node states and configurations Gs (§2.1), the
// graph generators used by the paper's constructions (Figures 2–5), the
// edge-crossing operator σ⋈(G) of Definition 4.2, and a graph-isomorphism
// checker used by the Symmetry predicate of Appendix C.
package graph

import (
	"fmt"
	"sort"
)

// Half is one directed half of an undirected edge as seen from a node: the
// neighbor it leads to and the port number the edge carries at that neighbor.
type Half struct {
	To      int // neighbor node index
	RevPort int // port number of this edge at To (1-based)
}

// Graph is an undirected port-numbered graph on nodes 0..N()-1. The zero
// value is an empty graph; use New to size one.
type Graph struct {
	adj [][]Half
}

// New returns an edgeless graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Half, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Neighbor returns the half-edge at port p of v (p is 1-based, as in §2.1).
// It panics on an out-of-range port; ports come from iterating Degree, so a
// violation is a programming error.
func (g *Graph) Neighbor(v, p int) Half {
	if p < 1 || p > len(g.adj[v]) {
		panic(fmt.Sprintf("graph: node %d has no port %d (degree %d)", v, p, len(g.adj[v])))
	}
	return g.adj[v][p-1]
}

// Adj returns a copy of v's adjacency list ordered by port number
// (index i holds port i+1).
func (g *Graph) Adj(v int) []Half {
	out := make([]Half, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// AdjView returns v's adjacency list ordered by port number without
// copying (index i holds port i+1). The slice aliases the graph's own
// storage: callers must not modify it and must not hold it across
// AddEdge. It exists for per-round verification loops, where the copy
// made by Adj is one allocation per node per round.
func (g *Graph) AdjView(v int) []Half { return g.adj[v] }

// adjView returns v's adjacency list without copying. For package-internal
// hot paths only; callers must not modify it.
func (g *Graph) adjView(v int) []Half { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.PortTo(u, v)
	return ok
}

// PortTo returns the port number at u of the edge leading to v.
func (g *Graph) PortTo(u, v int) (int, bool) {
	for i, h := range g.adj[u] {
		if h.To == v {
			return i + 1, true
		}
	}
	return 0, false
}

// AddEdge inserts the undirected edge {u, v}, assigning it the next free
// port number at each endpoint. It returns an error for self-loops,
// duplicate edges, or out-of-range nodes (the paper's graphs are simple).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	pu := len(g.adj[u]) + 1
	pv := len(g.adj[v]) + 1
	g.adj[u] = append(g.adj[u], Half{To: v, RevPort: pv})
	g.adj[v] = append(g.adj[v], Half{To: u, RevPort: pu})
	return nil
}

// MustAddEdge is AddEdge for statically correct constructions (generators);
// it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Edge identifies an undirected edge together with its two port numbers.
// U < V canonically.
type Edge struct {
	U, V         int
	PortU, PortV int // port at U and at V respectively
}

// Edges lists every undirected edge once, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := range g.adj {
		for i, h := range g.adj[u] {
			if u < h.To {
				out = append(out, Edge{U: u, V: h.To, PortU: i + 1, PortV: h.RevPort})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Half, len(g.adj))}
	for v, a := range g.adj {
		c.adj[v] = make([]Half, len(a))
		copy(c.adj[v], a)
	}
	return c
}

// Validate checks structural invariants: reverse-port consistency, no
// self-loops, no duplicate edges. Generators and the crossing operator call
// it in tests to certify they produce legal graphs.
func (g *Graph) Validate() error {
	for v, a := range g.adj {
		seen := make(map[int]bool, len(a))
		for i, h := range a {
			if h.To == v {
				return fmt.Errorf("graph: self-loop at node %d port %d", v, i+1)
			}
			if h.To < 0 || h.To >= g.N() {
				return fmt.Errorf("graph: node %d port %d points out of range (%d)", v, i+1, h.To)
			}
			if seen[h.To] {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", v, h.To)
			}
			seen[h.To] = true
			if h.RevPort < 1 || h.RevPort > len(g.adj[h.To]) {
				return fmt.Errorf("graph: node %d port %d: invalid reverse port %d", v, i+1, h.RevPort)
			}
			back := g.adj[h.To][h.RevPort-1]
			if back.To != v || back.RevPort != i+1 {
				return fmt.Errorf("graph: port mismatch on edge {%d,%d}: %d:%d -> %d:%d -> %d:%d",
					v, h.To, v, i+1, h.To, h.RevPort, back.To, back.RevPort)
			}
		}
	}
	return nil
}

// removeDirected deletes the half-edge at the given port without compacting
// port numbers (used only by crossing, which re-inserts at the same port).
func (g *Graph) setHalf(v, port int, h Half) {
	g.adj[v][port-1] = h
}
