package graph

import "fmt"

// This file implements the edge-crossing operator of Definition 4.2, the
// engine behind every lower bound in §4 and §5 of the paper.
//
// Given two independent isomorphic subgraphs H1, H2 of G with a
// port-preserving isomorphism σ, the crossing σ⋈(G) replaces every pair of
// edges {u,v} ∈ H1 and {σ(u),σ(v)} ∈ H2 by {u,σ(v)} and {σ(u),v}
// (Figure 1). The replacement reuses the original port slots, so every
// node's degree, port numbering, and — after a label collision — entire
// local view are unchanged.

// Independent reports whether the node sets a and b satisfy Definition 4.1:
// disjoint, with no edge of g between them.
func (g *Graph) Independent(a, b []int) bool {
	inA := make(map[int]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	for _, v := range b {
		if inA[v] {
			return false
		}
	}
	for _, u := range a {
		for _, h := range g.adjView(u) {
			for _, v := range b {
				if h.To == v {
					return false
				}
			}
		}
	}
	return true
}

// EdgePair names two edges of g to be crossed, each by its endpoints. The
// isomorphism maps U1→U2 and V1→V2, so after crossing the new edges are
// {U1,V2} and {U2,V1}.
type EdgePair struct {
	U1, V1 int
	U2, V2 int
}

// PortPreserving reports whether the pair respects a port-preserving
// isomorphism: the edge has the same port at U1 as at U2, and the same
// port at V1 as at V2.
func (g *Graph) PortPreserving(p EdgePair) bool {
	pu1, ok1 := g.PortTo(p.U1, p.V1)
	pu2, ok2 := g.PortTo(p.U2, p.V2)
	pv1, ok3 := g.PortTo(p.V1, p.U1)
	pv2, ok4 := g.PortTo(p.V2, p.U2)
	return ok1 && ok2 && ok3 && ok4 && pu1 == pu2 && pv1 == pv2
}

// Cross returns σ⋈(G) for single-edge subgraphs H1 = {U1,V1},
// H2 = {U2,V2}: a copy of g with the pair replaced by {U1,V2} and {U2,V1},
// ports preserved. It validates Definition 4.1 independence and the
// existence of both edges.
func (g *Graph) Cross(p EdgePair) (*Graph, error) {
	return g.CrossAll([]EdgePair{p})
}

// CrossAll applies a crossing over multi-edge subgraphs: every pair is
// replaced simultaneously. Pairs must involve existing edges; the union of
// H1 nodes must be independent from the union of H2 nodes.
func (g *Graph) CrossAll(pairs []EdgePair) (*Graph, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("graph: empty crossing")
	}
	var nodes1, nodes2 []int
	for _, p := range pairs {
		nodes1 = append(nodes1, p.U1, p.V1)
		nodes2 = append(nodes2, p.U2, p.V2)
	}
	if !g.Independent(nodes1, nodes2) {
		return nil, fmt.Errorf("graph: subgraphs are not independent (Definition 4.1)")
	}
	c := g.Clone()
	for _, p := range pairs {
		if err := c.crossOne(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (g *Graph) crossOne(p EdgePair) error {
	pu1, ok := g.PortTo(p.U1, p.V1)
	if !ok {
		return errNoEdge{p.U1, p.V1}
	}
	pu2, ok := g.PortTo(p.U2, p.V2)
	if !ok {
		return errNoEdge{p.U2, p.V2}
	}
	pv1, _ := g.PortTo(p.V1, p.U1)
	pv2, _ := g.PortTo(p.V2, p.U2)

	// New edge {U1, V2}: U1 keeps port pu1, V2 keeps port pv2.
	g.setHalf(p.U1, pu1, Half{To: p.V2, RevPort: pv2})
	g.setHalf(p.V2, pv2, Half{To: p.U1, RevPort: pu1})
	// New edge {U2, V1}: U2 keeps port pu2, V1 keeps port pv1.
	g.setHalf(p.U2, pu2, Half{To: p.V1, RevPort: pv1})
	g.setHalf(p.V1, pv1, Half{To: p.U2, RevPort: pu2})
	return nil
}

// CrossConfig crosses the underlying graph of a configuration, keeping all
// node states: the crossed configuration has identical states and local
// views, exactly the situation the lower-bound proofs exploit.
func (c *Config) CrossConfig(p EdgePair) (*Config, error) {
	return c.CrossConfigAll([]EdgePair{p})
}

// CrossConfigAll is CrossConfig over multi-edge subgraphs.
func (c *Config) CrossConfigAll(pairs []EdgePair) (*Config, error) {
	g2, err := c.G.CrossAll(pairs)
	if err != nil {
		return nil, err
	}
	states := make([]State, len(c.States))
	for i, s := range c.States {
		states[i] = s.Clone()
	}
	return &Config{G: g2, States: states}, nil
}
