package graph

import (
	"testing"

	"rpls/internal/prng"
)

// TestCSRMatchesAdjacency checks the snapshot against the graph it was
// built from: row extents are degrees, slot (v, i) is port i+1 of v, and
// RevEdge is the involution pairing the two halves of every edge.
func TestCSRMatchesAdjacency(t *testing.T) {
	rng := prng.New(11)
	for trial := 0; trial < 20; trial++ {
		g := RandomTree(2+rng.Intn(60), rng.Fork(uint64(trial)))
		for i := 0; i < 10; i++ {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		var csr CSR
		csr.Reset(g)
		if csr.N() != g.N() || csr.Slots() != 2*g.M() {
			t.Fatalf("trial %d: snapshot %d nodes/%d slots, graph %d/%d",
				trial, csr.N(), csr.Slots(), g.N(), 2*g.M())
		}
		for v := 0; v < g.N(); v++ {
			if csr.Degree(v) != g.Degree(v) {
				t.Fatalf("trial %d: node %d degree %d != %d", trial, v, csr.Degree(v), g.Degree(v))
			}
			for i, h := range g.AdjView(v) {
				e := csr.RowStart[v] + i
				if csr.EdgeTo[e] != h.To || csr.PortOf[e] != h.RevPort {
					t.Fatalf("trial %d: slot %d = (%d,%d), want (%d,%d)",
						trial, e, csr.EdgeTo[e], csr.PortOf[e], h.To, h.RevPort)
				}
				rev := csr.RevEdge[e]
				if csr.EdgeTo[rev] != v || csr.RevEdge[rev] != e {
					t.Fatalf("trial %d: RevEdge not an involution at slot %d", trial, e)
				}
			}
		}
	}
}

// TestCSRResetReuses checks that Reset to a smaller graph reuses storage
// and still describes the new graph, the in-place pattern executors rely on.
func TestCSRResetReuses(t *testing.T) {
	var csr CSR
	csr.Reset(RandomTree(64, prng.New(1)))
	big := cap(csr.EdgeTo)
	small := Path(5)
	csr.Reset(small)
	if cap(csr.EdgeTo) != big {
		t.Fatalf("Reset reallocated: cap %d -> %d", big, cap(csr.EdgeTo))
	}
	if csr.N() != 5 || csr.Slots() != 8 {
		t.Fatalf("snapshot %d nodes/%d slots after shrink, want 5/8", csr.N(), csr.Slots())
	}
}

// TestAdjViewAliases pins the zero-copy contract: AdjView returns the
// graph's own storage (no allocation), with the same content as Adj.
func TestAdjViewAliases(t *testing.T) {
	g := RandomTree(32, prng.New(3))
	for v := 0; v < g.N(); v++ {
		view := g.AdjView(v)
		cp := g.Adj(v)
		if len(view) != len(cp) {
			t.Fatalf("node %d: view len %d != copy len %d", v, len(view), len(cp))
		}
		for i := range view {
			if view[i] != cp[i] {
				t.Fatalf("node %d port %d: %+v != %+v", v, i+1, view[i], cp[i])
			}
		}
	}
	if n := testing.AllocsPerRun(20, func() { _ = g.AdjView(7) }); n != 0 {
		t.Fatalf("AdjView allocates %v times, want 0", n)
	}
}
