package graph

import (
	"testing"

	"rpls/internal/prng"
)

func TestPathStructure(t *testing.T) {
	g := Path(5)
	if g.M() != 4 || !g.IsConnected() {
		t.Fatalf("P5: M=%d connected=%v", g.M(), g.IsConnected())
	}
	// Interior nodes: port 1 toward v0, port 2 toward v4.
	for v := 1; v <= 3; v++ {
		if g.Neighbor(v, 1).To != v-1 {
			t.Errorf("node %d port 1 -> %d, want %d", v, g.Neighbor(v, 1).To, v-1)
		}
		if g.Neighbor(v, 2).To != v+1 {
			t.Errorf("node %d port 2 -> %d, want %d", v, g.Neighbor(v, 2).To, v+1)
		}
	}
}

func TestCycleStructure(t *testing.T) {
	g, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Fatalf("C6 has %d edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Consistent ordering at non-zero nodes: port 1 = predecessor.
	for v := 1; v <= 4; v++ {
		if g.Neighbor(v, 1).To != v-1 || g.Neighbor(v, 2).To != v+1 {
			t.Errorf("node %d ports: (%d, %d), want (%d, %d)",
				v, g.Neighbor(v, 1).To, g.Neighbor(v, 2).To, v-1, v+1)
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should fail")
	}
}

func TestCycleCrossingGadgetsArePortPreserving(t *testing.T) {
	// The Theorem 5.1 proof crosses edges {v_{3i}, v_{3i+1}}; the generator
	// must make those gadgets port-preserving pairs.
	g := Path(30)
	pair := EdgePair{U1: 3, V1: 4, U2: 9, V2: 10}
	if !g.PortPreserving(pair) {
		t.Error("path gadget {3,4}/{9,10} is not port-preserving")
	}
	c, err := Cycle(30)
	if err != nil {
		t.Fatal(err)
	}
	if !c.PortPreserving(pair) {
		t.Error("cycle gadget {3,4}/{9,10} is not port-preserving")
	}
}

func TestCycleWithChords(t *testing.T) {
	g, err := CycleWithChords(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// n cycle edges + (n-3) chords.
	if want := 8 + 5; g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
	if g.Degree(0) != 2+5 {
		t.Errorf("deg(v0) = %d, want 7", g.Degree(0))
	}
	// v1 and v_{n-1} have no chords.
	if g.Degree(1) != 2 || g.Degree(7) != 2 {
		t.Errorf("deg(v1)=%d deg(v7)=%d, want 2, 2", g.Degree(1), g.Degree(7))
	}
}

func TestCycleWithHub(t *testing.T) {
	g, err := CycleWithHub(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("CycleWithHub not connected")
	}
	// Satellite nodes 6..11 have degree 1.
	for v := 6; v < 12; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("satellite %d has degree %d", v, g.Degree(v))
		}
	}
	// Cycle nodes v2..v4 have degree 3 (two cycle edges + chord).
	for v := 2; v <= 4; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("cycle node %d has degree %d, want 3", v, g.Degree(v))
		}
	}
	// v1 and v_{c-1}=v5 keep degree 2.
	if g.Degree(1) != 2 || g.Degree(5) != 2 {
		t.Errorf("deg(v1)=%d deg(v5)=%d, want 2", g.Degree(1), g.Degree(5))
	}
	if _, err := CycleWithHub(5, 6); err == nil {
		t.Error("c > n should fail")
	}
}

func TestChainOfCycles(t *testing.T) {
	g, err := ChainOfCycles(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("chain not connected")
	}
	// 3 cycles of 8 edges plus 2 chain edges.
	if want := 24 + 2; g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
	bases := CycleBases(24, 8)
	if len(bases) != 3 || bases[0] != 0 || bases[1] != 8 || bases[2] != 16 {
		t.Errorf("bases = %v", bases)
	}
	// Chain edges connect the base nodes.
	if !g.HasEdge(0, 8) || !g.HasEdge(8, 16) {
		t.Error("chain edges missing")
	}

	// Remainder handling.
	if _, err := ChainOfCycles(9, 8); err == nil {
		t.Error("remainder 1 should fail")
	}
	g2, err := ChainOfCycles(11, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsConnected() || g2.Validate() != nil {
		t.Error("chain with remainder-3 cycle is broken")
	}
}

func TestTwoCyclesSharingNode(t *testing.T) {
	g, err := TwoCyclesSharingNode(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Errorf("N = %d, want 8", g.N())
	}
	if g.Degree(0) != 4 {
		t.Errorf("shared node degree = %d, want 4", g.Degree(0))
	}
	if g.M() != 9 {
		t.Errorf("M = %d, want 9", g.M())
	}
}

func TestRandomBiconnected(t *testing.T) {
	rng := prng.New(2)
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(30)
		g, err := RandomBiconnected(n, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Check 2-connectivity directly: removing any node leaves it connected.
		for v := 0; v < n; v++ {
			rest := make([]int, 0, n-1)
			for u := 0; u < n; u++ {
				if u != v {
					rest = append(rest, u)
				}
			}
			sub, _ := g.InducedSubgraph(rest)
			if !sub.IsConnected() {
				t.Fatalf("RandomBiconnected(n=%d): removing %d disconnects", n, v)
			}
		}
	}
}

func TestAssignRandomWeightsDistinctAndSymmetric(t *testing.T) {
	rng := prng.New(3)
	g := RandomConnected(20, 15, rng)
	c := NewConfig(g)
	AssignRandomWeights(c, 1_000_000, rng)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, e := range g.Edges() {
		w := c.EdgeWeight(e.U, e.PortU)
		if w <= 0 {
			t.Errorf("edge {%d,%d} weight %d not positive", e.U, e.V, w)
		}
		if seen[w] {
			t.Errorf("duplicate weight %d", w)
		}
		seen[w] = true
		if w2 := c.EdgeWeight(e.V, e.PortV); w2 != w {
			t.Errorf("asymmetric weight on {%d,%d}: %d vs %d", e.U, e.V, w, w2)
		}
	}
}
