package graph

import (
	"testing"

	"rpls/internal/prng"
)

func TestCrossPathMakesCycle(t *testing.T) {
	// The Theorem 5.1 construction: crossing edges {u_{3i},u_{3i+1}} and
	// {u_{3j},u_{3j+1}} of a path detaches the middle section as a cycle.
	g := Path(12)
	crossed, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := crossed.Validate(); err != nil {
		t.Fatal(err)
	}
	// New edges {3,10} and {9,4} replace {3,4} and {9,10}.
	if crossed.HasEdge(3, 4) || crossed.HasEdge(9, 10) {
		t.Error("original edges survived the crossing")
	}
	if !crossed.HasEdge(3, 10) || !crossed.HasEdge(9, 4) {
		t.Error("crossed edges missing")
	}
	comps := crossed.Components()
	if len(comps) != 2 {
		t.Fatalf("crossed path has %d components, want 2", len(comps))
	}
	// One component is the cycle 4..9, the other the path 0..3,10,11.
	var cycle []int
	for _, comp := range comps {
		if containsInt(comp, 4) {
			cycle = comp
		}
	}
	if len(cycle) != 6 {
		t.Fatalf("cycle component = %v, want the 6 nodes 4..9", cycle)
	}
	sub, _ := crossed.InducedSubgraph(cycle)
	for v := 0; v < sub.N(); v++ {
		if sub.Degree(v) != 2 {
			t.Errorf("cycle node %v has degree %d", cycle[v], sub.Degree(v))
		}
	}
}

func TestCrossPreservesDegreesAndPorts(t *testing.T) {
	g := Path(12)
	crossed, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != crossed.Degree(v) {
			t.Errorf("degree of %d changed: %d -> %d", v, g.Degree(v), crossed.Degree(v))
		}
	}
	// Node 3's port that pointed to 4 now points to 10 — same slot.
	p, ok := g.PortTo(3, 4)
	if !ok {
		t.Fatal("missing edge in original")
	}
	if got := crossed.Neighbor(3, p).To; got != 10 {
		t.Errorf("port %d of node 3 now leads to %d, want 10", p, got)
	}
	// And the local views of untouched nodes are bit-identical.
	for v := 0; v < g.N(); v++ {
		if v == 3 || v == 4 || v == 9 || v == 10 {
			continue
		}
		for i := range g.adjView(v) {
			if g.adj[v][i] != crossed.adj[v][i] {
				t.Errorf("untouched node %d changed its view", v)
			}
		}
	}
}

func TestCrossRejectsNonIndependent(t *testing.T) {
	// Adjacent gadgets violate Definition 4.1.
	g := Path(12)
	if _, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 4, V2: 5}); err == nil {
		t.Error("shared node accepted")
	}
	if _, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 5, V2: 6}); err == nil {
		t.Error("adjacent gadgets accepted (edge {4,5} joins them)")
	}
	// Distance >= 2 separation is fine.
	if _, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 6, V2: 7}); err != nil {
		t.Errorf("independent gadgets rejected: %v", err)
	}
}

func TestCrossRejectsMissingEdge(t *testing.T) {
	g := Path(12)
	if _, err := g.Cross(EdgePair{U1: 0, V1: 5, U2: 8, V2: 9}); err == nil {
		t.Error("nonexistent edge accepted")
	}
}

func TestCrossAllMultiEdge(t *testing.T) {
	// Cross two disjoint 2-edge subgraphs of a long cycle simultaneously.
	g, err := Cycle(20)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []EdgePair{
		{U1: 2, V1: 3, U2: 12, V2: 13},
		{U1: 3, V1: 4, U2: 13, V2: 14},
	}
	crossed, err := g.CrossAll(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if err := crossed.Validate(); err != nil {
		t.Fatal(err)
	}
	// H1 = path 2-3-4, H2 = path 12-13-14 crossed edge-wise: node 3's two
	// cycle edges now lead to 13's old neighbors and vice versa, i.e. 3 and
	// 13 swap places: still one big cycle of 20 nodes.
	if !crossed.IsConnected() {
		comps := crossed.Components()
		t.Fatalf("expected swap to preserve connectivity, got %d components", len(comps))
	}
	for v := 0; v < 20; v++ {
		if crossed.Degree(v) != 2 {
			t.Errorf("node %d degree %d", v, crossed.Degree(v))
		}
	}
	if !crossed.HasEdge(2, 13) || !crossed.HasEdge(12, 3) {
		t.Error("first pair not crossed")
	}
	if !crossed.HasEdge(3, 14) || !crossed.HasEdge(13, 4) {
		t.Error("second pair not crossed")
	}
}

func TestCrossConfigKeepsStates(t *testing.T) {
	g := Path(12)
	c := NewConfig(g)
	rng := prng.New(4)
	c.AssignRandomIDs(rng)
	AssignRandomWeights(c, 100, rng)
	crossed, err := c.CrossConfig(EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	for v := range c.States {
		if c.States[v].ID != crossed.States[v].ID {
			t.Errorf("node %d identity changed", v)
		}
		for i, w := range c.States[v].Weights {
			if crossed.States[v].Weights[i] != w {
				t.Errorf("node %d weight slot %d changed", v, i)
			}
		}
	}
	// Mutating the crossed config must not leak back.
	crossed.States[0].ID = 424242
	if c.States[0].ID == 424242 {
		t.Error("CrossConfig shares state storage with the original")
	}
}

func TestIndependent(t *testing.T) {
	g := Path(10)
	if !g.Independent([]int{0, 1}, []int{5, 6}) {
		t.Error("distant segments reported dependent")
	}
	if g.Independent([]int{0, 1}, []int{1, 2}) {
		t.Error("overlapping segments reported independent")
	}
	if g.Independent([]int{0, 1}, []int{2, 3}) {
		t.Error("adjacent segments (edge {1,2}) reported independent")
	}
}

func TestCrossOnCycleWithChordsBreaksBiconnectivity(t *testing.T) {
	// The Theorem 5.2 lower-bound construction: crossing two cycle edges of
	// Figure 2(a) splits the ring into two cycles joined only through v0,
	// making v0 an articulation point.
	g, err := CycleWithChords(16)
	if err != nil {
		t.Fatal(err)
	}
	// Gadgets H_i = {v_{3i}, v_{3i+1}}: cross i=1 (3,4) with j=2 (6,7) — wait,
	// adjacent; use i=1 (3,4) and j=3 (9,10).
	crossed, err := g.Cross(EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := crossed.Validate(); err != nil {
		t.Fatal(err)
	}
	if !crossed.IsConnected() {
		t.Fatal("crossed graph disconnected (chords should keep it connected)")
	}
	// v0 is now an articulation point: removing it disconnects {4..9} from the rest.
	rest := make([]int, 0, 15)
	for v := 1; v < 16; v++ {
		rest = append(rest, v)
	}
	sub, _ := crossed.InducedSubgraph(rest)
	if sub.IsConnected() {
		t.Error("crossing failed to create an articulation point at v0")
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
