package graph

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

// FuzzDecodeConfig hardens the configuration decoder against arbitrary
// bytes: decoded labels come from adversarial peers, so the decoder must
// either reject or produce a configuration that re-encodes consistently —
// and never panic.
func FuzzDecodeConfig(f *testing.F) {
	// Seed corpus: valid encodings plus structured garbage.
	rng := prng.New(1)
	for _, n := range []int{1, 3, 8} {
		c := NewConfig(RandomConnected(n, n, rng))
		c.AssignRandomIDs(rng)
		f.Add(c.Encode().Bytes())
	}
	// One representative of each scenario-family shape: lattice, wraparound,
	// hypercube, bottleneck, heavy-tailed, and dense random.
	grid, _ := Grid(3, 4)
	torus, _ := Torus(3, 3)
	cube, _ := Hypercube(3)
	barbell, _ := Barbell(3, 2)
	for _, g := range []*Graph{
		grid, torus, cube, barbell,
		PowerLawTree(9, prng.New(2)),
		GNPConnected(8, 0.3, prng.New(3)),
	} {
		c := NewConfig(g)
		c.AssignRandomIDs(rng)
		f.Add(c.Encode().Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeConfig(bitstring.FromBytes(data))
		if err != nil {
			return // rejection is fine
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid configuration: %v", err)
		}
		// Round trip must be stable from the decoded form onward.
		again, err := DecodeConfig(cfg.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.G.N() != cfg.G.N() || again.G.M() != cfg.G.M() {
			t.Fatal("re-decode changed the graph shape")
		}
	})
}

// FuzzDecodeState does the same for single states.
func FuzzDecodeState(f *testing.F) {
	var w bitstring.Writer
	(State{ID: 7, Parent: 1, Color: -3, Data: []byte("x")}).Encode(&w)
	f.Add(w.String().Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeState(bitstring.NewReader(bitstring.FromBytes(data)))
		if err != nil {
			return
		}
		var w bitstring.Writer
		s.Encode(&w)
		s2, err := DecodeState(bitstring.NewReader(w.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.ID != s.ID || s2.Parent != s.Parent {
			t.Fatal("state round trip unstable")
		}
	})
}
