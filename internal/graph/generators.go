package graph

import (
	"fmt"

	"rpls/internal/prng"
)

// Path returns the n-node path v0 − v1 − … − v_{n−1} with consistently
// ordered ports: at every interior node, port 1 leads toward v0 and port 2
// toward v_{n−1}. This is the configuration family used in the Theorem 5.1
// lower bound (lines and cycles).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Cycle returns the n-node cycle v0 − v1 − … − v_{n−1} − v0 with ports
// consistently ordered: at every node except v0, port 1 is the predecessor
// and port 2 the successor. n must be at least 3.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs >= 3 nodes, got %d", n)
	}
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(n-1, 0)
	return g, nil
}

// CycleWithChords returns the Figure 2(a) graph used in the lower bound of
// Theorem 5.2: an n-node cycle with port numbers consistently ordered, plus
// chord edges {v0, vj} for j = 2..n−2. Chords are appended after cycle
// edges, so cycle ports keep the path convention.
func CycleWithChords(n int) (*Graph, error) {
	g, err := Cycle(n)
	if err != nil {
		return nil, err
	}
	for j := 2; j <= n-2; j++ {
		g.MustAddEdge(0, j)
	}
	return g, nil
}

// CycleWithHub returns the graph of the Theorem 5.4 proof: a c-node cycle
// v0..v_{c−1}, plus edges {v0, vj} for every j = 2..n−1 with j ≠ c−1
// (v1 and v_{c−1} are already cycle-adjacent to v0). Nodes c..n−1 hang off
// v0 as a star. Requires 3 <= c <= n.
func CycleWithHub(n, c int) (*Graph, error) {
	if c < 3 || c > n {
		return nil, fmt.Errorf("graph: CycleWithHub needs 3 <= c <= n, got c=%d n=%d", c, n)
	}
	g := New(n)
	for i := 0; i+1 < c; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(c-1, 0)
	for j := 2; j < n; j++ {
		if j == c-1 {
			continue
		}
		g.MustAddEdge(0, j)
	}
	return g, nil
}

// ChainOfCycles returns the Figure 5 graph of Theorem 5.6: ⌈n/c⌉ disjoint
// cycles of c nodes each (the last possibly smaller, but at least 3), where
// consecutive cycles are connected by an edge between their index-0 nodes.
// Cycle edges are added before chain edges so each cycle keeps consistent
// port ordering.
func ChainOfCycles(n, c int) (*Graph, error) {
	if c < 3 {
		return nil, fmt.Errorf("graph: ChainOfCycles needs c >= 3, got %d", c)
	}
	if n < c {
		return nil, fmt.Errorf("graph: ChainOfCycles needs n >= c, got n=%d c=%d", n, c)
	}
	if r := n % c; r != 0 && r < 3 {
		return nil, fmt.Errorf("graph: ChainOfCycles remainder %d cannot form a cycle", r)
	}
	g := New(n)
	var bases []int
	for base := 0; base < n; {
		size := c
		if n-base < c {
			size = n - base
		}
		for i := 0; i+1 < size; i++ {
			g.MustAddEdge(base+i, base+i+1)
		}
		g.MustAddEdge(base+size-1, base)
		bases = append(bases, base)
		base += size
	}
	for i := 0; i+1 < len(bases); i++ {
		g.MustAddEdge(bases[i], bases[i+1])
	}
	return g, nil
}

// CycleBases returns the starting node of each cycle in a ChainOfCycles
// graph built with the same n and c.
func CycleBases(n, c int) []int {
	var bases []int
	for base := 0; base < n; {
		size := c
		if n-base < c {
			size = n - base
		}
		bases = append(bases, base)
		base += size
	}
	return bases
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Star returns the n-node star with center 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	return g
}

// TwoCyclesSharingNode returns a "figure eight": a cycle of a nodes and a
// cycle of b nodes sharing exactly node 0. Used as an adversarial instance
// for the cycle-at-least-c soundness tests: its longest simple cycle is
// max(a, b), not a+b−1.
func TwoCyclesSharingNode(a, b int) (*Graph, error) {
	if a < 3 || b < 3 {
		return nil, fmt.Errorf("graph: cycles need >= 3 nodes, got %d and %d", a, b)
	}
	g := New(a + b - 1)
	for i := 0; i+1 < a; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(a-1, 0)
	// Second cycle: 0, a, a+1, ..., a+b-2, back to 0.
	g.MustAddEdge(0, a)
	for i := a; i+1 < a+b-1; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(a+b-2, 0)
	return g, nil
}

// RandomTree returns a uniform-ish random tree on n nodes: each node v > 0
// attaches to a uniform node among 0..v−1.
func RandomTree(n int, rng *prng.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v)
	}
	return g
}

// RandomConnected returns a random connected graph: a random tree plus
// extra distinct random non-tree edges (as many as fit).
func RandomConnected(n, extraEdges int, rng *prng.Rand) *Graph {
	g := RandomTree(n, rng)
	maxExtra := n*(n-1)/2 - (n - 1)
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// RandomBiconnected returns a random 2-vertex-connected graph built as a
// cycle on a random permutation plus extra chords, which is biconnected by
// construction (a cycle is, and adding edges preserves it).
func RandomBiconnected(n, extraEdges int, rng *prng.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: biconnected graphs need >= 3 nodes, got %d", n)
	}
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(perm[i], perm[(i+1)%n])
	}
	maxExtra := n*(n-1)/2 - n
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g, nil
}

// AssignRandomWeights gives every edge of the configuration a distinct
// pseudo-random weight in [1, maxW]. Distinctness (when the range allows it)
// makes the MST unique, which the MST scheme's tests rely on; if the range
// is too small, duplicates are permitted and ties are broken by the scheme.
func AssignRandomWeights(c *Config, maxW int64, rng *prng.Rand) {
	edges := c.G.Edges()
	used := make(map[int64]bool, len(edges))
	for _, e := range edges {
		var w int64
		if int64(len(used)) < maxW {
			for {
				w = 1 + int64(rng.Uint64n(uint64(maxW)))
				if !used[w] {
					used[w] = true
					break
				}
			}
		} else {
			w = 1 + int64(rng.Uint64n(uint64(maxW)))
		}
		if err := c.SetEdgeWeight(e.U, e.V, w); err != nil {
			panic(err) // edges come from the graph itself
		}
	}
}
