package graph

import (
	"testing"
	"testing/quick"

	"rpls/internal/prng"
)

func TestAddEdgeAssignsSequentialPorts(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d, want 3", g.Degree(0))
	}
	for p := 1; p <= 3; p++ {
		h := g.Neighbor(0, p)
		if h.To != p {
			t.Errorf("Neighbor(0,%d).To = %d, want %d", p, h.To, p)
		}
		if h.RevPort != 1 {
			t.Errorf("Neighbor(0,%d).RevPort = %d, want 1", p, h.RevPort)
		}
	}
}

func TestPortsMayDifferAtEndpoints(t *testing.T) {
	// §2.1: an edge may have different port numbers on its two endpoints.
	g := New(3)
	g.MustAddEdge(0, 1) // port 1 at both
	g.MustAddEdge(1, 2) // port 2 at 1, port 1 at 2
	p12, _ := g.PortTo(1, 2)
	p21, _ := g.PortTo(2, 1)
	if p12 != 2 || p21 != 1 {
		t.Errorf("ports (1→2, 2→1) = (%d, %d), want (2, 1)", p12, p21)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 2); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(1, 0)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("len(Edges) = %d, want 2", len(edges))
	}
	if edges[0].U != 0 || edges[0].V != 1 {
		t.Errorf("edges[0] = {%d,%d}, want {0,1}", edges[0].U, edges[0].V)
	}
	if edges[1].U != 1 || edges[1].V != 2 {
		t.Errorf("edges[1] = {%d,%d}, want {1,2}", edges[1].U, edges[1].V)
	}
	// Port references must resolve back to the edge.
	for _, e := range edges {
		if h := g.Neighbor(e.U, e.PortU); h.To != e.V {
			t.Errorf("edge {%d,%d}: PortU resolves to %d", e.U, e.V, h.To)
		}
		if h := g.Neighbor(e.V, e.PortV); h.To != e.U {
			t.Errorf("edge {%d,%d}: PortV resolves to %d", e.U, e.V, h.To)
		}
	}
}

func TestMCountsEdges(t *testing.T) {
	if got := Complete(5).M(); got != 10 {
		t.Errorf("K5 has M = %d, want 10", got)
	}
	if got := Path(6).M(); got != 5 {
		t.Errorf("P6 has M = %d, want 5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Error("mutating clone affected original")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := Path(3)
	// Corrupt a reverse port.
	g.adj[0][0].RevPort = 2
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted inconsistent reverse port")
	}
}

func TestAdjReturnsCopy(t *testing.T) {
	g := Path(3)
	a := g.Adj(1)
	a[0].To = 99
	if g.Neighbor(1, 1).To == 99 {
		t.Error("Adj exposed internal storage")
	}
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := prng.New(1)
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(40)
		g := RandomConnected(n, rng.Intn(2*n), rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomConnected(n=%d) invalid: %v", n, err)
		}
		if !g.IsConnected() {
			t.Fatalf("RandomConnected(n=%d) is not connected", n)
		}
	}
}

func TestQuickRandomTreeHasNMinusOneEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%60
		g := RandomTree(n, prng.New(seed))
		return g.M() == n-1 && g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDegree(t *testing.T) {
	if got := Star(7).MaxDegree(); got != 6 {
		t.Errorf("Star(7).MaxDegree() = %d, want 6", got)
	}
	if got := New(3).MaxDegree(); got != 0 {
		t.Errorf("empty graph MaxDegree = %d, want 0", got)
	}
}
