package graph

import (
	"testing"
	"testing/quick"

	"rpls/internal/prng"
)

// Property-based tests on the structural invariants the lower-bound proofs
// depend on.

// Crossing the same pair twice restores the original graph.
func TestQuickCrossingIsInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 12 + rng.Intn(30)
		g := Path(n)
		// Two independent gadget edges at positions 3i, 3j.
		maxI := (n - 2) / 3
		if maxI < 3 {
			return true
		}
		i := 1 + rng.Intn(maxI-2)
		j := i + 2 + rng.Intn(maxI-i-2+1)
		if 3*j+1 >= n {
			return true
		}
		pair := EdgePair{U1: 3 * i, V1: 3*i + 1, U2: 3 * j, V2: 3*j + 1}
		once, err := g.Cross(pair)
		if err != nil {
			return false
		}
		// Crossing back: the crossed edges are {U1,V2},{U2,V1}; crossing the
		// pair ({U1,V2},{U2,V1}) with σ(U1)=U2, σ(V2)=V1 restores the graph.
		twice, err := once.Cross(EdgePair{U1: pair.U1, V1: pair.V2, U2: pair.U2, V2: pair.V1})
		if err != nil {
			return false
		}
		if twice.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			for p := 1; p <= g.Degree(v); p++ {
				if g.Neighbor(v, p) != twice.Neighbor(v, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Crossing preserves every node's degree and every port's reverse port.
func TestQuickCrossingPreservesLocalStructure(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 15 + rng.Intn(40)
		g := Path(n)
		i := 1
		j := 3 + rng.Intn((n-2)/3-3+1)
		if 3*j+1 >= n || j-i < 2 {
			return true
		}
		crossed, err := g.Cross(EdgePair{U1: 3 * i, V1: 3*i + 1, U2: 3 * j, V2: 3*j + 1})
		if err != nil {
			return false
		}
		if crossed.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != crossed.Degree(v) {
				return false
			}
		}
		// Total edges unchanged.
		return g.M() == crossed.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Config encode/decode is the identity on valid configurations.
func TestQuickConfigEncodeDecode(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 2 + rng.Intn(20)
		g := RandomConnected(n, rng.Intn(n), rng)
		c := NewConfig(g)
		c.AssignRandomIDs(rng)
		if rng.Bool() {
			AssignRandomWeights(c, 500, rng)
		}
		c.States[rng.Intn(n)].Data = []byte{byte(rng.Uint64())}
		got, err := DecodeConfig(c.Encode())
		if err != nil {
			return false
		}
		if got.G.N() != n || got.G.M() != g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			if got.States[v].ID != c.States[v].ID {
				return false
			}
			for p := 1; p <= g.Degree(v); p++ {
				if got.G.Neighbor(v, p) != g.Neighbor(v, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// BFS distances satisfy the triangle property along every edge.
func TestQuickBFSDistanceIsMetricAlongEdges(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 2 + rng.Intn(40)
		g := RandomConnected(n, rng.Intn(2*n), rng)
		dist := g.BFSDist(rng.Intn(n))
		for _, e := range g.Edges() {
			d := dist[e.U] - dist[e.V]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Isomorphism is invariant under node relabeling and detects edge edits.
func TestQuickIsomorphismInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 3 + rng.Intn(10)
		g := RandomConnected(n, rng.Intn(n), rng)
		perm := rng.Perm(n)
		h := New(n)
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e.U], perm[e.V])
		}
		if !Isomorphic(g, h) {
			return false
		}
		// Remove one edge: either non-isomorphic or there was an
		// automorphism-compatible edge (possible); removing changes M, so
		// definitely non-isomorphic.
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g2, err := g.RemoveEdge(e.U, e.V)
		if err != nil {
			return false
		}
		return !Isomorphic(g2, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
