package experiments

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// E19WireAccounting measures the paper's headline axis end to end: the
// exact bits one edge carries per verification round, metered by the
// engine's wire accounting, across every registered graph family. The
// Unif predicate makes λ (the payload length) a free knob, so the table
// shows per-edge cost Θ(λ) for the deterministic scheme versus O(log λ)
// for the randomized fingerprints — the separation growing without bound
// as λ grows — and checks the measured randomized cost against the
// analytic core.CompiledCertBits envelope bit for bit.
func E19WireAccounting(seed uint64, quick bool) (Table, error) {
	const n = 24
	lambdas := []int{64, 512, 4096}
	families := graph.FamilyNames()
	if quick {
		lambdas = []int{64, 512}
		families = []string{"cycle", "grid", "hypercube"}
	}
	t := Table{
		ID:    "E19",
		Title: "Wire accounting: per-edge det vs rand communication",
		Claim: "Per-edge verification cost is Θ(λ) deterministic vs O(log λ) randomized (Lemma C.3 / Theorem 3.1), on every graph family.",
		Headers: []string{"family", "n", "m", "λ", "det bits/edge",
			"rand bits/edge", "det/rand", "analytic O(log λ)"},
	}
	for _, fam := range families {
		f, ok := graph.LookupFamily(fam)
		if !ok {
			return t, fmt.Errorf("unknown family %q", fam)
		}
		for _, lambda := range lambdas {
			g, err := f.Build(graph.FamilyParams{N: n, Seed: seed + uint64(lambda)})
			if err != nil {
				return t, fmt.Errorf("family %s n=%d: %w", fam, n, err)
			}
			cfg := buildUniformOnGraph(g, lambda, seed+uint64(lambda))

			det := engine.FromPLS(uniform.NewPLS())
			detSum, err := engine.Estimate(det, cfg, engine.WithTrials(1), engine.WithSeed(seed))
			if err != nil {
				return t, fmt.Errorf("%s λ=%d det: %w", fam, lambda, err)
			}
			rand := engine.FromRPLS(uniform.NewRPLS())
			randSum, err := engine.Estimate(rand, cfg, engine.WithTrials(3), engine.WithSeed(seed))
			if err != nil {
				return t, fmt.Errorf("%s λ=%d rand: %w", fam, lambda, err)
			}

			analytic := core.CompiledCertBits(lambda)
			if randSum.MaxPortBits != analytic {
				return t, fmt.Errorf("%s λ=%d: measured rand port bits %d != analytic %d",
					fam, lambda, randSum.MaxPortBits, analytic)
			}
			if int(detSum.AvgBitsPerEdge) != lambda {
				return t, fmt.Errorf("%s λ=%d: det per-edge cost %v != λ",
					fam, lambda, detSum.AvgBitsPerEdge)
			}
			t.Rows = append(t.Rows, []string{
				fam, itoa(cfg.G.N()), itoa(cfg.G.M()), itoa(lambda),
				fmt.Sprintf("%.0f", detSum.AvgBitsPerEdge),
				fmt.Sprintf("%.1f", randSum.AvgBitsPerEdge),
				fmt.Sprintf("%.1f", detSum.AvgBitsPerEdge/randSum.AvgBitsPerEdge),
				itoa(analytic)})
		}
	}
	t.Notes = append(t.Notes,
		"det bits/edge equals λ exactly (the payload travels whole); rand bits/edge is the γ-prefixed (x, A(x)) fingerprint, identical on every topology.",
		"All four executors meter identical totals for the same seed — the golden-bits test in internal/engine enforces it.")
	return t, nil
}

// buildUniformOnGraph equips an arbitrary graph with identical λ-bit
// payloads drawn from the seed, yielding a legal Unif configuration.
func buildUniformOnGraph(g *graph.Graph, lambda int, seed uint64) *graph.Config {
	cfg := graph.NewConfig(g)
	rng := prng.New(seed)
	cfg.AssignRandomIDs(rng)
	payload := make([]byte, (lambda+7)/8)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	for v := range cfg.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		cfg.States[v].Data = d
	}
	return cfg
}
