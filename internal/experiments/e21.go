package experiments

import (
	"fmt"
	"reflect"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/uniform"
)

// E21Congestion reproduces the broadcast ⇄ unicast separation of
// Patt-Shamir & Perry: capping the number of distinct messages a node may
// send per round at m interpolates between broadcast (m = 1) and unicast
// (m = deg, here the unconstrained m = 0 cell). Schemes that degrade by
// payload merging pay Σ class² fingerprint bits per node, so their
// verified wire cost falls strictly from the broadcast end to the unicast
// end; the generic replication fallback is flat. The table sweeps the
// multiplicity axis for merging and non-merging schemes over several
// graph families, asserting the curve is monotone non-increasing, that
// verification stays complete under every cap, that the distinct-message
// meter obeys its conservation law, and that every point is byte-identical
// across all four executors at parallelism 1 and 4.
func E21Congestion(seed uint64, quick bool) (Table, error) {
	const n, lambda = 24, 512
	mults := []int{1, 2, 4, 0} // congestion-axis order: broadcast first, unicast (0) last
	families := graph.FamilyNames()
	if quick {
		families = []string{"grid", "hypercube"}
	}
	schemes := []struct {
		name    string
		trials  int
		merging bool // degrades by native payload merging (CappedRPLS)
		build   func() engine.Scheme
	}{
		{"unif rand", 3, true, func() engine.Scheme { return engine.FromRPLS(uniform.NewRPLS()) }},
		{"unif compiled", 3, true, func() engine.Scheme { return engine.FromRPLS(core.Compile(uniform.NewPLS())) }},
		{"unif det", 1, false, func() engine.Scheme { return engine.FromPLS(uniform.NewPLS()) }},
	}
	execs := []struct {
		name string
		mk   func() engine.Executor
	}{
		{"sequential", func() engine.Executor { return engine.NewSequential() }},
		{"pool", func() engine.Executor { return engine.NewPool(0) }},
		{"goroutines", func() engine.Executor { return engine.NewGoroutines() }},
		{"batched", func() engine.Executor { return engine.NewBatched() }},
	}

	t := Table{
		ID:    "E21",
		Title: "Congestion-bounded verification: broadcast ⇄ unicast",
		Claim: "Capping per-node message multiplicity at m trades congestion for proof traffic: merging schemes' verified bits fall monotonically from the broadcast extreme (m = 1) to unicast (m = deg), the replication fallback stays flat, and every point is byte-identical across all four executors.",
		Headers: []string{"family", "scheme", "n", "m",
			"total bits", "distinct msgs", "bits/edge", "accepted"},
	}

	for _, fam := range families {
		f, ok := graph.LookupFamily(fam)
		if !ok {
			return t, fmt.Errorf("unknown family %q", fam)
		}
		g, err := f.Build(graph.FamilyParams{N: n, Seed: seed})
		if err != nil {
			return t, fmt.Errorf("family %s n=%d: %w", fam, n, err)
		}
		cfg := buildUniformOnGraph(g, lambda, seed)

		for _, sc := range schemes {
			var first, prev engine.Summary
			for i, m := range mults {
				var base engine.Summary
				for j, ex := range execs {
					for _, par := range []int{1, 4} {
						sum, err := engine.Estimate(sc.build(), cfg,
							engine.WithTrials(sc.trials), engine.WithSeed(seed),
							engine.WithMultiplicity(m),
							engine.WithExecutor(ex.mk()), engine.WithParallelism(par))
						if err != nil {
							return t, fmt.Errorf("%s %s m=%d %s/p%d: %w", fam, sc.name, m, ex.name, par, err)
						}
						if j == 0 && par == 1 {
							base = sum
						} else if !reflect.DeepEqual(sum, base) {
							return t, fmt.Errorf("%s %s m=%d: %s/p%d summary diverges from sequential/p1 (%+v vs %+v)",
								fam, sc.name, m, ex.name, par, sum, base)
						}
					}
				}
				if base.Accepted != base.Trials {
					return t, fmt.Errorf("%s %s m=%d: capped verification rejected an honest instance (%d/%d)",
						fam, sc.name, m, base.Accepted, base.Trials)
				}
				if base.TotalDistinct > base.TotalMessages {
					return t, fmt.Errorf("%s %s m=%d: distinct messages %d exceed messages %d (conservation law)",
						fam, sc.name, m, base.TotalDistinct, base.TotalMessages)
				}
				if i == 0 {
					first = base
				} else {
					if base.TotalBits > prev.TotalBits {
						return t, fmt.Errorf("%s %s: verified bits rose along the congestion axis (m=%d: %d > m=%d: %d)",
							fam, sc.name, m, base.TotalBits, mults[i-1], prev.TotalBits)
					}
					if base.TotalDistinct < prev.TotalDistinct {
						return t, fmt.Errorf("%s %s: distinct messages fell along the congestion axis (m=%d: %d < m=%d: %d)",
							fam, sc.name, m, base.TotalDistinct, mults[i-1], prev.TotalDistinct)
					}
				}
				prev = base

				t.Rows = append(t.Rows, []string{
					fam, sc.name, itoa(cfg.G.N()), multLabel(m),
					fmt.Sprintf("%d", base.TotalBits),
					fmt.Sprintf("%d", base.TotalDistinct),
					fmt.Sprintf("%.1f", base.AvgBitsPerEdge),
					fmt.Sprintf("%d/%d", base.Accepted, base.Trials)})
			}
			if sc.merging && prev.TotalBits >= first.TotalBits {
				return t, fmt.Errorf("%s %s: no broadcast/unicast separation (m=1: %d vs unicast: %d)",
					fam, sc.name, first.TotalBits, prev.TotalBits)
			}
			if !sc.merging && prev.TotalBits != first.TotalBits {
				return t, fmt.Errorf("%s %s: replication fallback not flat (m=1: %d vs unicast: %d)",
					fam, sc.name, first.TotalBits, prev.TotalBits)
			}
		}
	}
	t.Notes = append(t.Notes,
		"m=∞ rows are the unconstrained classic round (the unicast extreme); rows are in congestion-axis order, broadcast first.",
		"unif rand and unif compiled implement core.CappedRPLS: a port class carries the γ-framed concatenation of its members' fingerprints, so bits fall like Σ class² as m grows. unif det degrades by core.CapReplicate and stays flat.",
		"Every row was computed 8 times (four executors × parallelism 1 and 4) and the summaries compared for byte identity; the campaign form of this table is BENCH_congest.json (plscampaign congest), which CI gates.")
	return t, nil
}

// multLabel renders a multiplicity cap for a table row: the unconstrained
// cell prints as ∞, matching the congestion axis's unicast extreme.
func multLabel(m int) string {
	if m == 0 {
		return "∞"
	}
	return itoa(m)
}
