package experiments

import (
	"fmt"

	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/mst"
)

// Shared configuration builders for the experiment sweeps.

// BuildTreeConfig returns a random connected graph whose parent pointers
// form a BFS spanning tree rooted at 0.
func BuildTreeConfig(n int, seed uint64) *graph.Config {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, n/2, rng)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	for v, p := range g.SpanningTreeParents(0) {
		c.States[v].Parent = p
	}
	return c
}

// BuildMSTConfig returns a weighted random connected graph whose parent
// pointers encode the canonical minimum spanning tree.
func BuildMSTConfig(n int, seed uint64) (*graph.Config, error) {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, n, rng)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	graph.AssignRandomWeights(c, int64(n)*int64(n)*4, rng)
	if err := InstallMST(c); err != nil {
		return nil, err
	}
	return c, nil
}

// InstallMST orients the canonical MST toward root 0 in the parent ports.
func InstallMST(c *graph.Config) error {
	tree, err := mst.Kruskal(c)
	if err != nil {
		return err
	}
	adj := make([][]int, c.G.N())
	for _, e := range tree {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range c.States {
		c.States[v].Parent = 0
	}
	visited := make([]bool, c.G.N())
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				p, ok := c.G.PortTo(u, v)
				if !ok {
					return fmt.Errorf("experiments: tree edge {%d,%d} missing", u, v)
				}
				c.States[u].Parent = p
				queue = append(queue, u)
			}
		}
	}
	return nil
}

// BuildBiconnConfig returns a random biconnected configuration.
func BuildBiconnConfig(n int, seed uint64) (*graph.Config, error) {
	rng := prng.New(seed)
	g, err := graph.RandomBiconnected(n, n/2, rng)
	if err != nil {
		return nil, err
	}
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	return c, nil
}

// BuildUniformConfig returns a connected configuration whose nodes all
// carry the same kBytes-byte payload.
func BuildUniformConfig(n, kBytes int, seed uint64) *graph.Config {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, n/2, rng)
	c := graph.NewConfig(g)
	payload := make([]byte, kBytes)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	for v := range c.States {
		d := make([]byte, kBytes)
		copy(d, payload)
		c.States[v].Data = d
	}
	return c
}

// BuildFlowConfig returns a random connected configuration with s = 0 and
// t = n−1 marked.
func BuildFlowConfig(n, extra int, seed uint64) *graph.Config {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, extra, rng)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	c.States[0].Flags |= graph.FlagSource
	c.States[n-1].Flags |= graph.FlagTarget
	return c
}

// ringCycleLengths traverses only the ring edges (the first two ports of
// the first c nodes of a CycleWithHub/CycleWithChords graph, which the
// generators lay down before any chord) and returns the cycle lengths the
// crossing operator has cut the ring into.
func ringCycleLengths(g *graph.Graph, c int) []int {
	onRing := func(v int) bool { return v < c }
	visited := make([]bool, g.N())
	var lengths []int
	for start := 0; start < c; start++ {
		if visited[start] {
			continue
		}
		length := 0
		prev := -1
		v := start
		for !visited[v] {
			visited[v] = true
			length++
			next := -1
			for p := 1; p <= 2 && p <= g.Degree(v); p++ {
				u := g.Neighbor(v, p).To
				if u != prev && onRing(u) {
					next = u
					break
				}
			}
			if next == -1 {
				break
			}
			prev, v = v, next
		}
		lengths = append(lengths, length)
	}
	return lengths
}
