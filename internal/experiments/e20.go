package experiments

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/uniform"
)

// E20RoundTradeoff reproduces the paper's space–time tradeoff end to end:
// allowing t verification rounds shrinks the per-round proof traffic to
// ⌈κ/t⌉ bits per port (the t-PLS model of Patt-Shamir & Perry, tightened
// by Filtser & Fischer). The Unif predicate pins κ exactly — λ for the
// deterministic label broadcast, the fingerprint envelope for the
// randomized scheme — so the table can check the metered bits-per-round
// against ⌈κ/t⌉ bit for bit, on every registered graph family, for both
// variants, while the total bits on the wire stay constant: sharding
// trades rounds for bandwidth, it never creates or destroys proof bits.
func E20RoundTradeoff(seed uint64, quick bool) (Table, error) {
	const n, lambda = 24, 512
	roundCounts := []int{1, 2, 4, 8}
	families := graph.FamilyNames()
	if quick {
		roundCounts = []int{1, 2, 4}
		families = []string{"cycle", "grid", "hypercube"}
	}
	t := Table{
		ID:    "E20",
		Title: "Multi-round verification: the κ/t tradeoff",
		Claim: "With t rounds of verification, per-round proof traffic drops to ⌈κ/t⌉ bits per port — for deterministic labels (κ = λ) and randomized fingerprints (κ = O(log λ)) alike — while total proof bits are conserved.",
		Headers: []string{"family", "n", "m", "t",
			"det bits/round", "det ⌈κ/t⌉", "rand bits/round", "rand ⌈κ/t⌉", "total det bits"},
	}
	for _, fam := range families {
		f, ok := graph.LookupFamily(fam)
		if !ok {
			return t, fmt.Errorf("unknown family %q", fam)
		}
		g, err := f.Build(graph.FamilyParams{N: n, Seed: seed})
		if err != nil {
			return t, fmt.Errorf("family %s n=%d: %w", fam, n, err)
		}
		cfg := buildUniformOnGraph(g, lambda, seed)
		detKappa, randKappa := lambda, core.CompiledCertBits(lambda)

		prevDet, prevRand := 0, 0
		var baseTotal int64
		for i, rounds := range roundCounts {
			det, err := engine.Shard(engine.FromPLS(uniform.NewPLS()), rounds)
			if err != nil {
				return t, err
			}
			rand, err := engine.Shard(engine.FromRPLS(uniform.NewRPLS()), rounds)
			if err != nil {
				return t, err
			}
			detSum, err := engine.Estimate(det, cfg, engine.WithTrials(1), engine.WithSeed(seed))
			if err != nil {
				return t, fmt.Errorf("%s t=%d det: %w", fam, rounds, err)
			}
			randSum, err := engine.Estimate(rand, cfg, engine.WithTrials(3), engine.WithSeed(seed))
			if err != nil {
				return t, fmt.Errorf("%s t=%d rand: %w", fam, rounds, err)
			}

			wantDet, wantRand := core.ShardWidth(detKappa, rounds), core.ShardWidth(randKappa, rounds)
			if detSum.MaxPortBits != wantDet {
				return t, fmt.Errorf("%s t=%d: det bits/round %d != ⌈κ/t⌉ = %d",
					fam, rounds, detSum.MaxPortBits, wantDet)
			}
			if randSum.MaxPortBits != wantRand {
				return t, fmt.Errorf("%s t=%d: rand bits/round %d != ⌈κ/t⌉ = %d",
					fam, rounds, randSum.MaxPortBits, wantRand)
			}
			if detSum.Accepted != detSum.Trials || randSum.Accepted != randSum.Trials {
				return t, fmt.Errorf("%s t=%d: sharded verification rejected an honest instance", fam, rounds)
			}
			if i == 0 {
				baseTotal = detSum.TotalBits
			} else {
				if detSum.MaxPortBits >= prevDet || randSum.MaxPortBits >= prevRand {
					return t, fmt.Errorf("%s t=%d: bits/round not strictly decreasing (det %d vs %d, rand %d vs %d)",
						fam, rounds, detSum.MaxPortBits, prevDet, randSum.MaxPortBits, prevRand)
				}
				if detSum.TotalBits != baseTotal {
					return t, fmt.Errorf("%s t=%d: total det bits %d != base %d (sharding must conserve bits)",
						fam, rounds, detSum.TotalBits, baseTotal)
				}
			}
			prevDet, prevRand = detSum.MaxPortBits, randSum.MaxPortBits

			t.Rows = append(t.Rows, []string{
				fam, itoa(cfg.G.N()), itoa(cfg.G.M()), itoa(rounds),
				itoa(detSum.MaxPortBits), itoa(wantDet),
				itoa(randSum.MaxPortBits), itoa(wantRand),
				fmt.Sprintf("%d", detSum.TotalBits)})
		}
	}
	t.Notes = append(t.Notes,
		"bits/round is the largest single message of any round (engine Stats.MaxPortBits): exactly the ⌈κ/t⌉ shard of the fixed layout in core/shard.go.",
		"Total det bits are identical for every t on a family — the tradeoff redistributes the proof across rounds without inflating it.",
		"The campaign form of this table is BENCH_tradeoff.json (plscampaign tradeoff), which CI asserts is strictly decreasing.")
	return t, nil
}
