package experiments_test

import (
	"strings"
	"testing"

	"rpls/internal/experiments"
	"rpls/internal/prng"
	"rpls/internal/selfstab"
)

// TestMonitorIntegrationAcrossCatalog runs the §1 deployment loop —
// certify, watch, corrupt, detect — for every catalogued scheme with a
// randomized verifier and a corruption recipe.
func TestMonitorIntegrationAcrossCatalog(t *testing.T) {
	for _, e := range experiments.Catalog() {
		if e.Rand == nil || e.Corrupt == nil || e.Pred == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(12, 71)
			if err != nil {
				t.Fatal(err)
			}
			m, err := selfstab.NewMonitor(e.Rand, cfg, 5)
			if err != nil {
				t.Fatal(err)
			}
			if rate := selfstab.FalseAlarmRate(m, 30); rate != 0 {
				t.Fatalf("false alarms on healthy %s system: %v", e.Name, rate)
			}
			before := cfg.G.N()
			// Apply the catalog corruption directly on the monitored config.
			if err := e.Corrupt(m.Config(), prng.New(9)); err != nil {
				t.Skipf("corruption unavailable: %v", err)
			}
			if m.Config().G.N() != before {
				t.Skip("corruption changes the node count; stale labels are trivially mismatched")
			}
			if e.Pred.Eval(m.Config()) {
				t.Skip("corruption kept the predicate true on this instance")
			}
			if _, ok := selfstab.DetectionLatency(m, 100); !ok {
				t.Errorf("%s: corruption never detected in 100 rounds", e.Name)
			}
		})
	}
}

// TestExperimentsAreReproducible re-runs a sample of experiments with the
// same seed and demands byte-identical tables — the reproducibility claim
// EXPERIMENTS.md makes.
func TestExperimentsAreReproducible(t *testing.T) {
	for _, id := range []string{"E2", "E5", "E12", "E18"} {
		spec, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		a, err := spec.Run(42, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Run(42, true)
		if err != nil {
			t.Fatal(err)
		}
		if a.Markdown() != b.Markdown() {
			t.Errorf("%s: same seed produced different tables", id)
		}
		c, err := spec.Run(43, true)
		if err != nil {
			t.Fatal(err)
		}
		// A different seed may legitimately coincide for purely structural
		// tables; only flag when the table embeds measured randomness.
		if strings.Contains(a.Markdown(), "0.") && a.Markdown() == c.Markdown() && id == "E12" {
			t.Logf("%s: seed 42 and 43 coincided (allowed but unusual)", id)
		}
	}
}
