package experiments_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/prng"
)

func TestCatalogEntriesAreSelfConsistent(t *testing.T) {
	for _, e := range experiments.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(12, 99)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("built config invalid: %v", err)
			}
			if e.Pred != nil && e.Det != nil {
				if !e.Pred.Eval(cfg) && e.Name != "cycleatleast" && e.Name != "flow" {
					t.Fatal("built config does not satisfy its predicate")
				}
			}
			if e.Det != nil {
				res, err := engine.Run(engine.FromPLS(e.Det), cfg)
				if err != nil {
					t.Fatalf("det run: %v", err)
				}
				if !res.Accepted {
					t.Error("deterministic scheme rejected its own legal config")
				}
			}
			if e.Rand != nil {
				labels, err := e.Rand.Label(cfg)
				if err != nil {
					t.Fatalf("rand prover: %v", err)
				}
				if rate := engine.Acceptance(engine.FromRPLS(e.Rand), cfg, labels, 10, 5); rate != 1.0 {
					t.Errorf("randomized acceptance %v on legal config", rate)
				}
			}
			if e.Corrupt != nil && e.Pred != nil && e.Name != "cycleatleast" && e.Name != "flow" {
				bad := cfg.Clone()
				if err := e.Corrupt(bad, prng.New(7)); err != nil {
					t.Fatalf("corrupt: %v", err)
				}
				if e.Pred.Eval(bad) {
					t.Error("corruption left the configuration legal")
				}
			}
		})
	}
}

func TestLookupCatalog(t *testing.T) {
	if _, ok := experiments.LookupCatalog("mst"); !ok {
		t.Error("mst missing from catalog")
	}
	if _, ok := experiments.LookupCatalog("nonsense"); ok {
		t.Error("lookup invented an entry")
	}
}
