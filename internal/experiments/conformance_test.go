package experiments_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/prng"
)

// The conformance suite drives every catalogued scheme through the same
// adversarial gauntlet: garbage labels, bit-flipped honest labels, and
// transplants, checking that verifiers reject without ever panicking —
// labels are attacker-controlled input in this model.

func fuzzLabels(rng *prng.Rand, n, maxBits int) []core.Label {
	out := make([]core.Label, n)
	for i := range out {
		bits := make([]byte, rng.Intn(maxBits+1))
		for j := range bits {
			bits[j] = rng.Bit()
		}
		out[i] = bitstring.FromBits(bits)
	}
	return out
}

func flipRandomBit(l core.Label, rng *prng.Rand) core.Label {
	if l.Len() == 0 {
		return bitstring.FromBits([]byte{1})
	}
	pos := rng.Intn(l.Len())
	bits := make([]byte, l.Len())
	for i := range bits {
		bits[i] = l.Bit(i)
	}
	bits[pos] ^= 1
	return bitstring.FromBits(bits)
}

func TestConformanceGarbageLabelsNeverPanic(t *testing.T) {
	for _, e := range experiments.Catalog() {
		if e.Det == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(10, 3)
			if err != nil {
				t.Fatal(err)
			}
			rng := prng.New(17)
			for trial := 0; trial < 50; trial++ {
				labels := fuzzLabels(rng, cfg.G.N(), 300)
				// A panic here fails the test via the testing framework.
				_ = engine.Verify(engine.FromPLS(e.Det), cfg, labels)
				if e.Rand != nil {
					_ = engine.Verify(engine.FromRPLS(e.Rand), cfg, labels, engine.WithSeed(uint64(trial)))
				}
			}
		})
	}
}

func TestConformanceIllegalConfigsRejectGarbage(t *testing.T) {
	for _, e := range experiments.Catalog() {
		if e.Det == nil || e.Corrupt == nil || e.Pred == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(10, 5)
			if err != nil {
				t.Fatal(err)
			}
			bad := cfg.Clone()
			if err := e.Corrupt(bad, prng.New(7)); err != nil {
				t.Skipf("corruption unavailable: %v", err)
			}
			if e.Pred.Eval(bad) {
				t.Skip("corruption did not flip the predicate for this instance")
			}
			rng := prng.New(23)
			for trial := 0; trial < 60; trial++ {
				labels := fuzzLabels(rng, bad.G.N(), 200)
				if engine.Verify(engine.FromPLS(e.Det), bad, labels).Accepted {
					t.Fatalf("garbage labels accepted on an illegal %s configuration", e.Name)
				}
			}
		})
	}
}

func TestConformanceBitFlippedHonestLabels(t *testing.T) {
	// Flip one bit of one honest label on an ILLEGAL configuration built by
	// transplant: still must reject. (On a legal configuration a flipped
	// bit may or may not matter; on an illegal one acceptance is a
	// soundness bug regardless.)
	for _, e := range experiments.Catalog() {
		if e.Det == nil || e.Corrupt == nil || e.Pred == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(10, 11)
			if err != nil {
				t.Fatal(err)
			}
			honest, err := e.Det.Label(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bad := cfg.Clone()
			if err := e.Corrupt(bad, prng.New(13)); err != nil {
				t.Skipf("corruption unavailable: %v", err)
			}
			if e.Pred.Eval(bad) || bad.G.N() != cfg.G.N() {
				t.Skip("corruption changed size or kept predicate")
			}
			rng := prng.New(29)
			for trial := 0; trial < 60; trial++ {
				labels := make([]core.Label, len(honest))
				copy(labels, honest)
				v := rng.Intn(len(labels))
				labels[v] = flipRandomBit(labels[v], rng)
				if engine.Verify(engine.FromPLS(e.Det), bad, labels).Accepted {
					t.Fatalf("bit-flipped transplant accepted on illegal %s config", e.Name)
				}
			}
		})
	}
}

func TestConformanceRandSchemesRejectGarbageCerts(t *testing.T) {
	// Feed each randomized verifier garbage *certificates* directly: must
	// reject (and not panic) — certificates cross the wire and are
	// attacker-visible in the fault model.
	for _, e := range experiments.Catalog() {
		if e.Rand == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(8, 31)
			if err != nil {
				t.Fatal(err)
			}
			labels, err := e.Rand.Label(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := prng.New(37)
			for v := 0; v < cfg.G.N(); v++ {
				view := core.ViewOf(cfg, v)
				garbage := make([]core.Cert, view.Deg)
				for i := range garbage {
					bits := make([]byte, rng.Intn(100))
					for j := range bits {
						bits[j] = rng.Bit()
					}
					garbage[i] = bitstring.FromBits(bits)
				}
				if view.Deg > 0 && e.Rand.Decide(view, labels[v], garbage) {
					// Unstructured garbage passing a fingerprint check is
					// astronomically unlikely; treat as failure.
					t.Fatalf("node %d accepted garbage certificates", v)
				}
			}
		})
	}
}

func TestConformanceStatsAreConsistent(t *testing.T) {
	// Wire statistics must match the declared topology: 2m messages, and
	// certificate bits within the measured maximum.
	for _, e := range experiments.Catalog() {
		if e.Det == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, err := e.Build(12, 41)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.Run(engine.FromPLS(e.Det), cfg, engine.WithStats(true))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Messages != 2*cfg.G.M() {
				t.Errorf("messages = %d, want 2m = %d", res.Stats.Messages, 2*cfg.G.M())
			}
			if res.Stats.TotalWireBits > int64(res.Stats.MaxLabelBits)*int64(res.Stats.Messages) {
				t.Error("total wire bits exceed messages × max label size")
			}
		})
	}
}
