package experiments

import (
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/schemes/acyclicity"
)

// E18LabelShape plots the actual growth curves behind Theorem 5.1's
// machinery: with self-delimiting label fields and poly(n) identities, the
// deterministic acyclicity labels grow like Θ(log n) while the compiled
// certificates grow like Θ(log log n). Fixed-width encodings (E1, E7–E9)
// hide this shape below their constants; this experiment removes them.
func E18LabelShape(seed uint64, quick bool) (Table, error) {
	sizes := []int{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14}
	if quick {
		sizes = []int{1 << 4, 1 << 6, 1 << 8}
	}
	t := Table{
		ID:    "E18",
		Title: "Label-shape scaling (gamma-coded acyclicity)",
		Claim: "Theorem 5.1 machinery: verifying acyclicity takes Θ(log n) deterministic bits and Θ(log log n) randomized bits; with self-delimiting fields the measured curves show it.",
		Headers: []string{"n", "det label bits", "4·log₂ n + 6 envelope",
			"rand cert bits", "growth det (Δbits)", "growth rand (Δbits)"},
	}
	det := acyclicity.NewCompactPLS()
	rand := acyclicity.NewCompactRPLS()
	prevDet, prevRand := 0, 0
	for _, n := range sizes {
		// The Theorem 5.1 family itself: paths, where the distance counter
		// genuinely reaches n−1. Consecutive identities keep ids within
		// poly(n), as the paper's O(log n)-bit identity model assumes.
		cfg := graph.NewConfig(graph.Path(n))
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		detBits := core.MaxBits(labels)
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		randBits := maxCertBits(rand, cfg, randLabels, 3, seed)
		dDet, dRand := "-", "-"
		if prevDet > 0 {
			dDet = itoa(detBits - prevDet)
			dRand = itoa(randBits - prevRand)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(detBits), itoa(4*log2ceil(n) + 6),
			itoa(randBits), dDet, dRand})
		prevDet, prevRand = detBits, randBits
	}
	t.Notes = append(t.Notes,
		"Each ×4 step in n adds ~4 bits of gamma-coded (id, dist) to the labels and O(1) bits to the certificates — the log n vs log log n separation in the raw data.")
	return t, nil
}
