package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"rpls/internal/experiments"
)

func runQuick(t *testing.T, id string) experiments.Table {
	t.Helper()
	spec, ok := experiments.Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	table, err := spec.Run(42, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, row := range table.Rows {
		if len(row) != len(table.Headers) {
			t.Fatalf("%s row %d has %d cells for %d headers", id, i, len(row), len(table.Headers))
		}
	}
	return table
}

func cellInt(t *testing.T, table experiments.Table, row, col int) int {
	t.Helper()
	v, err := strconv.Atoi(table.Rows[row][col])
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not an integer", row, col, table.Rows[row][col])
	}
	return v
}

func cellFloat(t *testing.T, table experiments.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not a float", row, col, table.Rows[row][col])
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	specs := experiments.All()
	if len(specs) != 21 {
		t.Fatalf("registered %d experiments, want 21", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate experiment %s", s.ID)
		}
		seen[s.ID] = true
	}
	if _, ok := experiments.Lookup("E0"); ok {
		t.Error("Lookup invented an experiment")
	}
}

func TestE1CompilerShape(t *testing.T) {
	table := runQuick(t, "E1")
	// Certificates must stay within the stated envelope on every row.
	for i := range table.Rows {
		cert := cellInt(t, table, i, 3)
		env := cellInt(t, table, i, 4)
		// Envelope covers the fingerprint; the gamma prefix adds <= 2logκ+1.
		kappa := cellInt(t, table, i, 2)
		if cert > env+2*log2(kappa)+1 {
			t.Errorf("row %d: cert %d exceeds envelope %d", i, cert, env)
		}
	}
}

func TestE2EqualityShape(t *testing.T) {
	table := runQuick(t, "E2")
	for i := range table.Rows {
		if e := cellFloat(t, table, i, 3); e != 0 {
			t.Errorf("row %d: one-sided protocol errs on equal inputs (%v)", i, e)
		}
		if e := cellFloat(t, table, i, 4); e >= 1.0/3 {
			t.Errorf("row %d: distinct-input error %v >= 1/3", i, e)
		}
		det := cellInt(t, table, i, 1)
		rand := cellInt(t, table, i, 2)
		if rand >= det && det > 32 {
			t.Errorf("row %d: randomized bits %d not below deterministic %d", i, rand, det)
		}
	}
}

func TestE3UniversalShape(t *testing.T) {
	table := runQuick(t, "E3")
	for i := range table.Rows {
		label := cellInt(t, table, i, 2)
		cert := cellInt(t, table, i, 3)
		if cert*16 > label {
			t.Errorf("row %d: cert bits %d not far below label bits %d", i, cert, label)
		}
		if rate := cellFloat(t, table, i, 4); rate != 1.0 {
			t.Errorf("row %d: legal acceptance %v", i, rate)
		}
	}
}

func TestE4LowerBoundShape(t *testing.T) {
	table := runQuick(t, "E4")
	// First row (4-bit field): perfect fooling.
	if rate := cellFloat(t, table, 0, 3); rate != 1.0 {
		t.Errorf("4-bit field acceptance %v, want 1.0", rate)
	}
	// Last row (properly sized): sound.
	last := len(table.Rows) - 1
	if rate := cellFloat(t, table, last, 3); rate > 1.0/3 {
		t.Errorf("full scheme acceptance %v > 1/3", rate)
	}
}

func TestE5E6CrossingShape(t *testing.T) {
	t5 := runQuick(t, "E5")
	// Rows with the pigeonhole forced must be fooled; honest row must not.
	for i := range t5.Rows {
		forced := t5.Rows[i][3] == "true"
		fooled := t5.Rows[i][6] == "true"
		if forced && !fooled {
			t.Errorf("E5 row %d: pigeonhole forced but not fooled", i)
		}
	}
	honest := t5.Rows[len(t5.Rows)-1]
	if honest[6] != "false" {
		t.Error("E5: honest scheme reported fooled")
	}

	t6 := runQuick(t, "E6")
	if t6.Rows[0][4] != "true" {
		t.Error("E6: weak compiled scheme not fooled")
	}
	if t6.Rows[1][4] != "false" {
		t.Error("E6: honest compiled scheme fooled")
	}
}

func TestE7MSTShape(t *testing.T) {
	table := runQuick(t, "E7")
	for i := range table.Rows {
		if table.Rows[i][5] != "true" {
			t.Errorf("row %d: deterministic scheme missed the corrupted MST", i)
		}
		if det := cellFloat(t, table, i, 6); det < 2.0/3 {
			t.Errorf("row %d: randomized detection %v < 2/3", i, det)
		}
	}
	// Rand cert bits must grow much slower than det label bits.
	if len(table.Rows) >= 2 {
		d0, d1 := cellInt(t, table, 0, 1), cellInt(t, table, len(table.Rows)-1, 1)
		c0, c1 := cellInt(t, table, 0, 3), cellInt(t, table, len(table.Rows)-1, 3)
		if d1-d0 <= c1-c0 {
			t.Errorf("det growth %d not larger than cert growth %d", d1-d0, c1-c0)
		}
	}
}

func TestE9CycleShape(t *testing.T) {
	table := runQuick(t, "E9")
	for i := range table.Rows {
		if table.Rows[i][4] != "true" {
			t.Errorf("row %d: weak mod-index scheme not fooled", i)
		}
		if table.Rows[i][5] != "false" {
			t.Errorf("row %d: honest scheme fooled", i)
		}
	}
}

func TestE10IteratedShape(t *testing.T) {
	table := runQuick(t, "E10")
	for i := range table.Rows {
		if table.Rows[i][3] != "true" {
			t.Errorf("step %d: weak verifier stopped accepting", i)
		}
	}
	// The final step must have shrunk the longest ring cycle below c−1.
	last := len(table.Rows) - 1
	if last == 0 {
		t.Fatal("no crossing steps recorded")
	}
	first := cellInt(t, table, 0, 2)
	final := cellInt(t, table, last, 2)
	if final >= first {
		t.Errorf("longest cycle did not shrink: %d -> %d", first, final)
	}
}

func TestE12BoostingShape(t *testing.T) {
	table := runQuick(t, "E12")
	prev := 1.1
	for i := range table.Rows {
		rate := cellFloat(t, table, i, 2)
		if rate > prev+0.03 {
			t.Errorf("row %d: illegal acceptance %v rose from %v", i, rate, prev)
		}
		prev = rate
		if legal := cellFloat(t, table, i, 4); legal != 1.0 {
			t.Errorf("row %d: legal acceptance %v under boosting", i, legal)
		}
	}
}

func TestE14SymmetryShape(t *testing.T) {
	table := runQuick(t, "E14")
	for i := range table.Rows {
		if table.Rows[i][4] != "true" {
			t.Errorf("row %d: equal strings rejected", i)
		}
		if rej := cellFloat(t, table, i, 5); rej < 2.0/3 {
			t.Errorf("row %d: distinct strings rejected only at %v", i, rej)
		}
	}
}

func TestE15SelfStabShape(t *testing.T) {
	table := runQuick(t, "E15")
	for i := range table.Rows {
		if alarms := cellFloat(t, table, i, 3); alarms != 0 {
			t.Errorf("row %d: false alarms %v", i, alarms)
		}
	}
	// Boosted latency must not exceed the unboosted one.
	if len(table.Rows) >= 2 {
		base := cellFloat(t, table, 0, 1)
		boosted := cellFloat(t, table, len(table.Rows)-1, 1)
		if boosted > base {
			t.Errorf("boosted mean latency %v exceeds base %v", boosted, base)
		}
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	for _, id := range []string{"E8", "E11", "E13"} {
		runQuick(t, id)
	}
}

func TestE16SharedShape(t *testing.T) {
	table := runQuick(t, "E16")
	for i := range table.Rows {
		priv := cellInt(t, table, i, 1)
		shared := cellInt(t, table, i, 2)
		if shared >= priv {
			t.Errorf("row %d: shared certs %d not below private %d", i, shared, priv)
		}
		if legal := cellFloat(t, table, i, 3); legal != 1.0 {
			t.Errorf("row %d: shared legal acceptance %v", i, legal)
		}
		if illegal := cellFloat(t, table, i, 4); illegal > 1.0/3 {
			t.Errorf("row %d: shared illegal acceptance %v > 1/3", i, illegal)
		}
	}
}

func TestE17STConnShape(t *testing.T) {
	table := runQuick(t, "E17")
	for i := range table.Rows {
		if table.Rows[i][4] != "true" || table.Rows[i][5] != "true" {
			t.Errorf("row %d: wrong-k transplant not rejected: %v", i, table.Rows[i])
		}
	}
}

func TestE18ShapeSeparation(t *testing.T) {
	table := runQuick(t, "E18")
	// Deterministic labels must grow measurably with n; certificates must
	// grow strictly slower.
	first := cellInt(t, table, 0, 1)
	last := cellInt(t, table, len(table.Rows)-1, 1)
	if last <= first {
		t.Errorf("det labels did not grow: %d -> %d", first, last)
	}
	cFirst := cellInt(t, table, 0, 3)
	cLast := cellInt(t, table, len(table.Rows)-1, 3)
	if cLast-cFirst >= last-first {
		t.Errorf("certs grew as fast as labels: Δ%d vs Δ%d", cLast-cFirst, last-first)
	}
	for i := range table.Rows {
		det := cellInt(t, table, i, 1)
		env := cellInt(t, table, i, 2)
		if det > env {
			t.Errorf("row %d: det labels %d exceed the 4log n envelope %d", i, det, env)
		}
	}
}

func TestE19WireAccountingGap(t *testing.T) {
	table := runQuick(t, "E19")
	// Quick mode: 3 families × 2 payload sizes, λ in column 3, per-edge
	// costs in columns 4 (det) and 5 (rand), ratio in column 6. E19 itself
	// verifies det == λ and rand == the analytic envelope; here we pin the
	// separation: the det/rand ratio must grow with λ within every family.
	if len(table.Rows) != 6 {
		t.Fatalf("quick E19 has %d rows, want 3 families × 2 λ", len(table.Rows))
	}
	for i := 0; i < len(table.Rows); i += 2 {
		small, large := table.Rows[i], table.Rows[i+1]
		if small[0] != large[0] {
			t.Fatalf("rows %d/%d mix families %s and %s", i, i+1, small[0], large[0])
		}
		rSmall := cellFloat(t, table, i, 6)
		rLarge := cellFloat(t, table, i+1, 6)
		if rSmall <= 1 || rLarge <= rSmall {
			t.Errorf("family %s: det/rand ratio not growing with λ: %v -> %v",
				small[0], rSmall, rLarge)
		}
	}
	// The per-edge rand cost is topology-independent: identical across
	// families for the same λ — checked at both payload sizes (rows
	// alternate small λ, large λ within each family).
	for i := 2; i < len(table.Rows); i++ {
		ref := i % 2 // row 0 = small λ, row 1 = large λ
		if table.Rows[i][5] != table.Rows[ref][5] {
			t.Errorf("λ row %d: rand bits/edge differ across families: %s vs %s",
				i, table.Rows[i][5], table.Rows[ref][5])
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	table := runQuick(t, "E2")
	md := table.Markdown()
	for _, want := range []string{"### E2", "| λ |", "Paper claim"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func log2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
