package experiments

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/stconn"
	"rpls/internal/schemes/uniform"
)

// E16SharedRandomness explores the open question of §6 ("the model that
// allows shared randomness between nodes"): with a public evaluation point,
// fingerprint certificates drop the point itself and shrink by roughly half,
// at the price of leaving the edge-independent class of Definition 4.5.
func E16SharedRandomness(seed uint64, quick bool) (Table, error) {
	kBytes := []int{8, 64, 512, 4096}
	trials := 1500
	if quick {
		kBytes = []int{8, 64}
		trials = 300
	}
	t := Table{
		ID:    "E16",
		Title: "Shared randomness (extension; §6 open question)",
		Claim: "Conclusion, open problems: 'what about the model that allows shared randomness between nodes?' — a public coin halves fingerprint certificates and abandons edge independence.",
		Headers: []string{"payload bits", "private-coin cert bits",
			"shared-coin cert bits", "shared legal acceptance", "shared illegal acceptance"},
	}
	for _, kb := range kBytes {
		cfg := BuildUniformConfig(8, kb, seed+uint64(kb))
		private := uniform.NewRPLS()
		shared := uniform.NewSharedRPLS()
		labels := make([]core.Label, cfg.G.N()) // both schemes are label-free
		privBits := maxCertBits(private, cfg, labels, 3, seed)
		sharedBits := core.VerifyShared(shared, cfg, labels, seed).Stats.MaxCertBits
		legal := core.EstimateAcceptanceShared(shared, cfg, labels, trials/5, seed+1)

		bad := cfg.Clone()
		bad.States[3].Data[0] ^= 0x01
		illegal := core.EstimateAcceptanceShared(shared, bad, labels, trials, seed+2)
		t.Rows = append(t.Rows, []string{
			itoa(kb * 8), itoa(privBits), itoa(sharedBits), ftoa(legal), ftoa(illegal)})
	}
	t.Notes = append(t.Notes,
		"Certificates on different edges are correlated by construction (same public x), so Theorem 4.7's lower bound machinery does not apply — exactly why the paper leaves the model open.")
	return t, nil
}

// E17STConnectivity measures the s-t k-vertex-connectivity scheme derived
// from §5.2: O(k log n) at the terminals, O(log n) elsewhere, compiled to
// O(log k + log log n).
func E17STConnectivity(seed uint64, quick bool) (Table, error) {
	type point struct{ n, extra int }
	points := []point{{12, 24}, {24, 60}, {48, 140}, {96, 300}}
	if quick {
		points = []point{{12, 24}, {24, 60}}
	}
	t := Table{
		ID:    "E17",
		Title: "s-t vertex connectivity (extension; §5.2)",
		Claim: "§5.2 via [31]: s-t k-connectivity verifiable with Θ(log n) labels (O(k log n) at the terminals); compilation gives O(log k + log log n) certificates.",
		Headers: []string{"n", "k = κ(s,t)", "det label bits",
			"rand cert bits", "underclaim k−1 rejected", "overclaim k+1 rejected"},
	}
	rng := prng.New(seed)
	for _, p := range points {
		cfg, k := buildSTConfig(p.n, p.extra, rng)
		if cfg == nil {
			continue
		}
		det := stconn.NewPLS(k)
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		rand := stconn.NewRPLS(k)
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		// Wrong-k claims must be unprovable: the honest labels of the true
		// k are the strongest available transplant.
		under := !engine.Verify(engine.FromPLS(stconn.NewPLS(k-1)), cfg, labels).Accepted
		over := !engine.Verify(engine.FromPLS(stconn.NewPLS(k+1)), cfg, labels).Accepted
		t.Rows = append(t.Rows, []string{
			itoa(p.n), itoa(k), itoa(core.MaxBits(labels)),
			itoa(maxCertBits(rand, cfg, randLabels, 2, seed)),
			fmt.Sprintf("%v", under), fmt.Sprintf("%v", over)})
	}
	return t, nil
}

// buildSTConfig finds a random configuration with non-adjacent terminals
// and connectivity >= 2.
func buildSTConfig(n, extra int, rng *prng.Rand) (*graph.Config, int) {
	for attempt := 0; attempt < 50; attempt++ {
		g := graph.RandomConnected(n, extra, rng)
		if g.HasEdge(0, n-1) {
			continue
		}
		cfg := graph.NewConfig(g)
		cfg.AssignRandomIDs(rng)
		cfg.States[0].Flags |= graph.FlagSource
		cfg.States[n-1].Flags |= graph.FlagTarget
		k, _, _, err := stconn.Connectivity(cfg)
		if err != nil || k < 2 {
			continue
		}
		return cfg, k
	}
	return nil, 0
}
