package experiments

import (
	"fmt"
	"sort"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/biconn"
	"rpls/internal/schemes/coloring"
	"rpls/internal/schemes/cycle"
	"rpls/internal/schemes/flow"
	"rpls/internal/schemes/leader"
	"rpls/internal/schemes/mst"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/symmetry"
	"rpls/internal/schemes/uniform"
)

// CatalogEntry bundles a predicate with its schemes and generators so the
// CLI tools can drive every scheme uniformly. Schemes are resolved by name
// through engine.Registry (each internal/schemes package self-registers);
// the catalog adds what the registry cannot know — how to build a legal
// instance, how to corrupt it, and the ground-truth predicate.
type CatalogEntry struct {
	Name        string
	Description string
	// Build returns a legal configuration of roughly n nodes.
	Build func(n int, seed uint64) (*graph.Config, error)
	// Corrupt mutates a legal configuration into an illegal one.
	Corrupt func(c *graph.Config, rng *prng.Rand) error
	Pred    core.Predicate
	// Det and Rand come from engine.Registry; they are nil when the variant
	// does not exist or needs per-instance parameters (drive those from Go).
	Det  core.PLS
	Rand core.RPLS
}

// registryDet resolves the deterministic scheme of a registry entry,
// returning nil for missing or parameterized variants.
func registryDet(name string) core.PLS {
	e, ok := engine.Lookup(name)
	if !ok || e.Det == nil || e.DetParameterized {
		return nil
	}
	s, ok := engine.AsPLS(e.Det(engine.Params{}))
	if !ok {
		return nil
	}
	return s
}

// registryRand resolves the randomized scheme of a registry entry,
// returning nil for missing or parameterized variants.
func registryRand(name string) core.RPLS {
	e, ok := engine.Lookup(name)
	if !ok || e.Rand == nil || e.RandParameterized {
		return nil
	}
	s, ok := engine.AsRPLS(e.Rand(engine.Params{}))
	if !ok {
		return nil
	}
	return s
}

// Catalog returns every certified predicate, sorted by name.
func Catalog() []CatalogEntry {
	entries := []CatalogEntry{
		{
			Name:        "spanningtree",
			Description: "parent pointers form a spanning tree (§1 example)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				return BuildTreeConfig(n, seed), nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				for attempt := 0; attempt < 100; attempt++ {
					v := rng.Intn(c.G.N())
					if c.States[v].Parent != 0 {
						c.States[v].Parent = 0 // second root: a forest now
						return nil
					}
				}
				return fmt.Errorf("no non-root node found")
			},
			Pred: spanningtree.Predicate{},
			Det:  registryDet("spanningtree"),
			Rand: registryRand("spanningtree"),
		},
		{
			Name:        "acyclicity",
			Description: "the network is a forest (Theorem 5.1 machinery)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				return graph.NewConfig(graph.RandomTree(n, prng.New(seed))), nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				n := c.G.N()
				for attempt := 0; attempt < 200; attempt++ {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v && !c.G.HasEdge(u, v) {
						return c.G.AddEdge(u, v) // closes a cycle in a tree
					}
				}
				return fmt.Errorf("could not add a cycle edge")
			},
			Pred: acyclicity.Predicate{},
			Det:  registryDet("acyclicity"),
			Rand: registryRand("acyclicity"),
		},
		{
			Name:        "mst",
			Description: "parent pointers form a minimum spanning tree (Theorem 5.1)",
			Build:       BuildMSTConfig,
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				corruptMSTWeight(c)
				if (mst.Predicate{}).Eval(c) {
					return fmt.Errorf("weight corruption kept the tree minimum")
				}
				return nil
			},
			Pred: mst.Predicate{},
			Det:  registryDet("mst"),
			Rand: registryRand("mst"),
		},
		{
			Name:        "biconnectivity",
			Description: "no articulation point (Theorem 5.2)",
			Build:       BuildBiconnConfig,
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				// Splice a pendant node onto node 0: 0 becomes articulation.
				g := graph.New(c.G.N() + 1)
				for _, e := range c.G.Edges() {
					g.MustAddEdge(e.U, e.V)
				}
				g.MustAddEdge(0, c.G.N())
				st := make([]graph.State, g.N())
				copy(st, c.States)
				st[g.N()-1] = graph.State{ID: maxID(c) + 1}
				c.G, c.States = g, st
				return nil
			},
			Pred: biconn.Predicate{},
			Det:  registryDet("biconnectivity"),
			Rand: registryRand("biconnectivity"),
		},
		{
			Name:        "cycleatleast",
			Description: "a simple cycle of >= n/2 nodes exists (Theorem 5.3)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				g, err := graph.CycleWithHub(n, n/2)
				if err != nil {
					return nil, err
				}
				c := graph.NewConfig(g)
				c.AssignRandomIDs(prng.New(seed))
				return c, nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				// Crossing two ring edges destroys every long cycle.
				crossed, err := c.CrossConfig(graph.EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
				if err != nil {
					return err
				}
				c.G, c.States = crossed.G, crossed.States
				return nil
			},
			Pred: cycle.AtLeastPredicate{C: 0}, // C fixed per run by the caller
			Det:  registryDet("cycleatleast"),  // nil: parameterized (Params.C)
			Rand: registryRand("cycleatleast"),
		},
		{
			Name:        "flow",
			Description: "maximum s-t flow equals k (§5.2)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				return BuildFlowConfig(n, 2*n, seed), nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				// Remove an edge incident to t: flow drops.
				t := -1
				for v, s := range c.States {
					if s.Flags&graph.FlagTarget != 0 {
						t = v
					}
				}
				if t == -1 || c.G.Degree(t) == 0 {
					return fmt.Errorf("no target edge to remove")
				}
				u := c.G.Neighbor(t, 1).To
				g, err := c.G.RemoveEdge(t, u)
				if err != nil {
					return err
				}
				c.G = g
				for v := range c.States {
					c.States[v].Weights = nil
				}
				return nil
			},
			Pred: flow.Predicate{K: 0},
			Det:  registryDet("flow"), // nil: parameterized (Params.K)
			Rand: registryRand("flow"),
		},
		{
			Name:        "uniform",
			Description: "all nodes carry identical payloads (Lemma C.3)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				return BuildUniformConfig(n, 32, seed), nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				v := rng.Intn(c.G.N())
				c.States[v].Data[0] ^= 0xFF
				return nil
			},
			Pred: uniform.Predicate{},
			Det:  registryDet("uniform"),
			Rand: registryRand("uniform"),
		},
		{
			Name:        "coloring",
			Description: "adjacent nodes have distinct colors (§1 example)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				rng := prng.New(seed)
				c := graph.NewConfig(graph.RandomConnected(n, n, rng))
				GreedyColor(c)
				return c, nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				v := rng.Intn(c.G.N())
				if c.G.Degree(v) == 0 {
					return fmt.Errorf("isolated node")
				}
				u := c.G.Neighbor(v, 1).To
				c.States[v].Color = c.States[u].Color
				return nil
			},
			Pred: coloring.Predicate{},
			Det:  registryDet("coloring"),
			Rand: registryRand("coloring"), // nil: parameterized (Params.M)
		},
		{
			Name:        "leader",
			Description: "exactly one node is flagged leader",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				rng := prng.New(seed)
				c := graph.NewConfig(graph.RandomConnected(n, n/2, rng))
				c.AssignRandomIDs(rng)
				c.States[rng.Intn(n)].Flags |= graph.FlagLeader
				return c, nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				for v := range c.States {
					c.States[v].Flags &^= graph.FlagLeader
				}
				return nil
			},
			Pred: leader.Predicate{},
			Det:  registryDet("leader"),
			Rand: registryRand("leader"),
		},
		{
			Name:        "symmetry",
			Description: "some edge splits the graph into isomorphic halves (Appendix C)",
			Build: func(n int, seed uint64) (*graph.Config, error) {
				lambda := n / 4
				if lambda < 1 {
					lambda = 1
				}
				rng := prng.New(seed)
				zb := make([]byte, lambda)
				for i := range zb {
					zb[i] = rng.Bit()
				}
				z := bitstring.FromBits(zb)
				g, err := symmetry.GZZ(z, z)
				if err != nil {
					return nil, err
				}
				return graph.NewConfig(g), nil
			},
			Corrupt: func(c *graph.Config, rng *prng.Rand) error {
				// Add one pendant node to half 0: halves stop being isomorphic.
				g := graph.New(c.G.N() + 1)
				for _, e := range c.G.Edges() {
					g.MustAddEdge(e.U, e.V)
				}
				g.MustAddEdge(0, c.G.N())
				st := make([]graph.State, g.N())
				copy(st, c.States)
				st[g.N()-1] = graph.State{ID: maxID(c) + 1}
				c.G, c.States = g, st
				return nil
			},
			Pred: symmetry.Predicate{},
			Det:  registryDet("symmetry"),
			Rand: registryRand("symmetry"),
		},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// LookupCatalog finds a catalog entry by name.
func LookupCatalog(name string) (CatalogEntry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogEntry{}, false
}

func maxID(c *graph.Config) uint64 {
	var max uint64
	for _, s := range c.States {
		if s.ID > max {
			max = s.ID
		}
	}
	return max
}

// GreedyColor assigns a proper coloring greedily in node order.
func GreedyColor(c *graph.Config) {
	for v := 0; v < c.G.N(); v++ {
		used := make(map[int64]bool)
		for _, h := range c.G.AdjView(v) {
			if h.To < v {
				used[c.States[h.To].Color] = true
			}
		}
		col := int64(0)
		for used[col] {
			col++
		}
		c.States[v].Color = col
	}
}
