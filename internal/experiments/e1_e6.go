package experiments

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/commcc"
	"rpls/internal/core"
	"rpls/internal/crossing"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/biconn"
	"rpls/internal/schemes/mst"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// E1Compiler measures Theorem 3.1: compiling a deterministic scheme with
// κ-bit labels yields certificates of O(log κ) bits, across four schemes
// and a sweep of network sizes.
func E1Compiler(seed uint64, quick bool) (Table, error) {
	sizes := []int{16, 64, 256, 1024}
	if quick {
		sizes = []int{16, 64}
	}
	t := Table{
		ID:    "E1",
		Title: "Det→Rand compilation",
		Claim: "Theorem 3.1: PLS with κ-bit labels ⇒ one-sided RPLS with O(log κ)-bit certificates.",
		Headers: []string{"scheme", "n", "κ = det label bits", "compiled cert bits",
			"2(log₂ κ + 3) envelope"},
	}
	type entry struct {
		name  string
		build func(n int) (*graph.Config, core.PLS, error)
	}
	entries := []entry{
		{"spanning-tree", func(n int) (*graph.Config, core.PLS, error) {
			return BuildTreeConfig(n, seed), spanningtree.NewPLS(), nil
		}},
		{"acyclicity", func(n int) (*graph.Config, core.PLS, error) {
			return graph.NewConfig(graph.RandomTree(n, prng.New(seed+7))), acyclicity.NewPLS(), nil
		}},
		{"mst", func(n int) (*graph.Config, core.PLS, error) {
			c, err := BuildMSTConfig(n, seed+13)
			return c, mst.NewPLS(), err
		}},
		{"biconnectivity", func(n int) (*graph.Config, core.PLS, error) {
			c, err := BuildBiconnConfig(n, seed+19)
			return c, biconn.NewPLS(), err
		}},
	}
	for _, e := range entries {
		for _, n := range sizes {
			cfg, det, err := e.build(n)
			if err != nil {
				return t, fmt.Errorf("%s n=%d: %w", e.name, n, err)
			}
			labels, err := det.Label(cfg)
			if err != nil {
				return t, fmt.Errorf("%s n=%d prover: %w", e.name, n, err)
			}
			kappa := core.MaxBits(labels)
			comp := core.Compile(det)
			compLabels, err := comp.Label(cfg)
			if err != nil {
				return t, err
			}
			cert := maxCertBits(comp, cfg, compLabels, 3, seed)
			envelope := 2 * (log2ceil(kappa) + 3)
			t.Rows = append(t.Rows, []string{
				e.name, itoa(n), itoa(kappa), itoa(cert), itoa(envelope)})
		}
	}
	t.Notes = append(t.Notes,
		"Certificates also carry an Elias-gamma length prefix, so the exact size is 2⌈log₂ p⌉ + (2⌊log₂ κ⌋+1) with 3κ < p < 6κ.")
	return t, nil
}

// E2Equality measures Lemmas 3.2/A.1: the randomized EQ protocol exchanges
// Θ(log λ) bits with one-sided error below 1/3, vs λ bits deterministically.
func E2Equality(seed uint64, quick bool) (Table, error) {
	lambdas := []int{8, 64, 512, 4096, 1 << 15}
	trials := 4000
	if quick {
		lambdas = []int{8, 64, 512}
		trials = 500
	}
	t := Table{
		ID:    "E2",
		Title: "Randomized EQ protocol",
		Claim: "Lemma 3.2/A.1: EQ over λ-bit strings costs Θ(log λ) bits randomized (error < 1/3, one-sided) vs λ bits deterministic.",
		Headers: []string{"λ", "deterministic bits", "randomized bits",
			"error on equal", "error on worst-case distinct"},
	}
	rng := prng.New(seed)
	det := commcc.Deterministic()
	rand := commcc.Randomized()
	for _, lambda := range lambdas {
		bits := make([]byte, lambda)
		for i := range bits {
			bits[i] = rng.Bit()
		}
		s := bitstring.FromBits(bits)
		_, trDet := det.Run(s, s, rng)
		_, trRand := rand.Run(s, s, rng)
		errEqual := commcc.MeasureError(rand, s, s, trials, seed+1)
		a, b := commcc.WorstCasePair(lambda)
		errDiff := commcc.MeasureError(rand, a, b, trials, seed+2)
		t.Rows = append(t.Rows, []string{
			itoa(lambda), itoa(trDet.Bits), itoa(trRand.Bits),
			ftoa(errEqual), ftoa(errDiff)})
	}
	t.Notes = append(t.Notes, "Error on equal inputs is exactly 0: the protocol is one-sided.")
	return t, nil
}

// E3Universal measures Lemma 3.3 and Corollary 3.4: universal labels of
// O(min(n², m log n) + nk) bits vs universal certificates of
// O(log n + log k) bits.
func E3Universal(seed uint64, quick bool) (Table, error) {
	type point struct{ n, kBytes int }
	points := []point{{8, 8}, {16, 8}, {32, 8}, {16, 64}, {16, 512}}
	if quick {
		points = []point{{8, 8}, {16, 8}, {16, 64}}
	}
	t := Table{
		ID:    "E3",
		Title: "Universal schemes",
		Claim: "Lemma 3.3: universal PLS with O(min(n²,m log n)+nk) bits; Corollary 3.4: universal RPLS with O(log n + log k) bits.",
		Headers: []string{"n", "k (state bits)", "universal label bits",
			"universal cert bits", "legal acceptance"},
	}
	for _, p := range points {
		cfg := BuildUniformConfig(p.n, p.kBytes, seed+uint64(p.n*p.kBytes))
		s := core.UniversalRPLS(uniform.Predicate{})
		labels, err := s.Label(cfg)
		if err != nil {
			return t, err
		}
		labelBits := core.MaxBits(labels)
		certBits := maxCertBits(s, cfg, labels, 3, seed)
		rate := estimateAcceptance(s, cfg, labels, 20, seed+3)
		t.Rows = append(t.Rows, []string{
			itoa(p.n), itoa(cfg.MaxStateBits()), itoa(labelBits),
			itoa(certBits), ftoa(rate)})
	}
	t.Notes = append(t.Notes,
		"Universal labels replicate the full configuration (Appendix B); the compiled certificates shrink to its logarithm.")
	return t, nil
}

// E4LowerBound makes Theorem 3.5 constructive: below ~log k certificate
// bits, there are state pairs the uniform scheme provably cannot
// distinguish (Fermat fooling pairs), and the verifier accepts an illegal
// configuration with probability 1.
func E4LowerBound(seed uint64, quick bool) (Table, error) {
	const lambda = 1024 // payload bits (so payloads need ~log₂ 3λ ≈ 12-bit fields)
	trials := 400
	if quick {
		trials = 100
	}
	t := Table{
		ID:    "E4",
		Title: "Ω(log n + log k) lower bound",
		Claim: "Theorem 3.5/Lemma C.3: any RPLS for Unif needs Ω(log k)-bit certificates; below the bound a fooling pair forces acceptance of an illegal configuration.",
		Headers: []string{"field bits", "cert bits", "below bound?",
			"acceptance of illegal config"},
	}
	p0 := commcc.TruncatedPrime(4)
	a, b, err := commcc.FoolingPair(lambda, p0)
	if err != nil {
		return t, err
	}
	cfg := graph.NewConfig(graph.Path(2))
	cfg.States[0].Data = bitsToBytes(a)
	cfg.States[1].Data = bitsToBytes(b)
	labels := make([]core.Label, 2)
	for _, fieldBits := range []int{4, 8, 12, 16} {
		s := uniform.NewTruncatedRPLS(fieldBits)
		rate := estimateAcceptance(s, cfg, labels, trials, seed)
		certBits := maxCertBits(s, cfg, labels, 3, seed)
		below := 1<<uint(fieldBits) < 3*lambda
		t.Rows = append(t.Rows, []string{
			itoa(fieldBits), itoa(certBits), fmt.Sprintf("%v", below), ftoa(rate)})
	}
	full := uniform.NewRPLS()
	rate := estimateAcceptance(full, cfg, labels, trials, seed+1)
	certBits := maxCertBits(full, cfg, labels, 3, seed)
	t.Rows = append(t.Rows, []string{
		"properly sized (3λ<p<6λ)", itoa(certBits), "false", ftoa(rate)})
	t.Notes = append(t.Notes,
		"The fooling pair (x vs x^p, Fermat) is indistinguishable over the 4-bit field: acceptance 1.0 on a NO instance.")
	return t, nil
}

// E5CrossingDet runs the Proposition 4.3 attack across label budgets on the
// Theorem 5.1 path family.
func E5CrossingDet(seed uint64, quick bool) (Table, error) {
	n := 210
	if quick {
		n = 120
	}
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	t := Table{
		ID:    "E5",
		Title: "Crossing attack on deterministic schemes",
		Claim: "Prop 4.3/Thm 4.4: κ < log(r)/2s forces a label collision; crossing the collided gadgets flips the predicate without changing any local view.",
		Headers: []string{"scheme", "κ (bits)", "r gadgets", "pigeonhole forced?",
			"collision found", "crossed legal", "verifier fooled"},
	}
	for _, bits := range []int{2, 3, 4, 8} {
		s := crossing.ModularDistPLS{Bits: bits}
		atk, err := crossing.AttackPLS(s, acyclicity.Predicate{}, cfg, gadgets)
		if err != nil {
			return t, err
		}
		forced := 1<<(2*bits) < atk.Gadgets
		t.Rows = append(t.Rows, []string{
			s.Name(), itoa(atk.LabelBits), itoa(atk.Gadgets),
			fmt.Sprintf("%v", forced), fmt.Sprintf("%v", atk.Collision),
			fmt.Sprintf("%v", atk.CrossedLegal), fmt.Sprintf("%v", atk.Fooled)})
	}
	honest := acyclicity.NewPLS()
	atk, err := crossing.AttackPLS(honest, acyclicity.Predicate{}, cfg, gadgets)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		honest.Name(), itoa(atk.LabelBits), itoa(atk.Gadgets), "false",
		fmt.Sprintf("%v", atk.Collision), "-", fmt.Sprintf("%v", atk.Fooled)})
	return t, nil
}

// E6CrossingRand runs the Proposition 4.8 support-collision attack on the
// compiled under-provisioned scheme and on the honest one.
func E6CrossingRand(seed uint64, quick bool) (Table, error) {
	n := 210
	samples, trials := 150, 80
	if quick {
		n, samples, trials = 120, 60, 30
	}
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	t := Table{
		ID:    "E6",
		Title: "Crossing attack on one-sided RPLS",
		Claim: "Prop 4.8/Thm 4.7: κ < (1/2s)·log log r forces a certificate-support collision; swapping supports shows the crossed (illegal) configuration accepted with probability 1.",
		Headers: []string{"scheme", "support collision", "crossed legal",
			"acceptance of crossed config", "fooled"},
	}
	weak := core.Compile(crossing.ModularDistPLS{Bits: 3})
	atk, err := crossing.AttackRPLSOneSided(weak, acyclicity.Predicate{}, cfg, gadgets, samples, trials, seed)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		weak.Name(), fmt.Sprintf("%v", atk.Collision), fmt.Sprintf("%v", atk.CrossedLegal),
		ftoa(atk.AcceptanceRate), fmt.Sprintf("%v", atk.Fooled)})
	honest := acyclicity.NewRPLS()
	atk, err = crossing.AttackRPLSOneSided(honest, acyclicity.Predicate{}, cfg, gadgets, samples/2, trials/2, seed+1)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		honest.Name(), fmt.Sprintf("%v", atk.Collision), "-",
		ftoa(atk.AcceptanceRate), fmt.Sprintf("%v", atk.Fooled)})
	return t, nil
}

func bitsToBytes(s bitstring.String) []byte {
	out := make([]byte, (s.Len()+7)/8)
	for i := 0; i < s.Len(); i++ {
		if s.Bit(i) == 1 {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
