package experiments

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/crossing"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/biconn"
	"rpls/internal/schemes/cycle"
	"rpls/internal/schemes/mst"
)

// E7MST measures Theorem 5.1: deterministic labels grow like log² n while
// the compiled certificates grow like log log n, and corrupted MSTs are
// detected.
func E7MST(seed uint64, quick bool) (Table, error) {
	sizes := []int{16, 64, 256, 1024}
	trials := 100
	if quick {
		sizes = []int{16, 64}
		trials = 30
	}
	t := Table{
		ID:    "E7",
		Title: "MST verification",
		Claim: "Theorem 5.1: randomized verification complexity of MST is Θ(log log n); the deterministic Borůvka-hierarchy scheme uses O(log² n) bits.",
		Headers: []string{"n", "det label bits", "log₂² n", "rand cert bits",
			"2·log₂ log₂ n", "corrupt detection (det)", "corrupt detection (rand)"},
	}
	for _, n := range sizes {
		cfg, err := BuildMSTConfig(n, seed+uint64(n))
		if err != nil {
			return t, err
		}
		det := mst.NewPLS()
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		detBits := core.MaxBits(labels)
		rand := mst.NewRPLS()
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		certBits := maxCertBits(rand, cfg, randLabels, 3, seed)

		// Corruption: make a non-tree edge the cheapest, so the certified
		// tree is stale.
		bad := cfg.Clone()
		corruptMSTWeight(bad)
		detCaught := !engine.Verify(engine.FromPLS(det), bad, labels).Accepted
		randRate := estimateAcceptance(rand, bad, randLabels, trials, seed+2)

		logn := log2ceil(n)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(detBits), itoa(logn * logn), itoa(certBits),
			itoa(2 * log2ceil(logn)), fmt.Sprintf("%v", detCaught),
			ftoa(1 - randRate)})
	}
	t.Notes = append(t.Notes,
		"Shape check: doubling n four times multiplies det labels by ≈(log 2n / log n)², while rand certificates gain O(1) bits.")
	return t, nil
}

func corruptMSTWeight(c *graph.Config) {
	for _, e := range c.G.Edges() {
		pu, _ := c.G.PortTo(e.U, e.V)
		pv, _ := c.G.PortTo(e.V, e.U)
		isTree := c.States[e.U].Parent == pu || c.States[e.V].Parent == pv
		if !isTree {
			_ = c.SetEdgeWeight(e.U, e.V, -1)
			return
		}
	}
}

// E8Biconnectivity measures Theorem 5.2 and replays its Figure 2 lower
// bound construction.
func E8Biconnectivity(seed uint64, quick bool) (Table, error) {
	sizes := []int{16, 64, 256, 1024}
	trials := 100
	if quick {
		sizes = []int{16, 64}
		trials = 30
	}
	t := Table{
		ID:    "E8",
		Title: "Biconnectivity",
		Claim: "Theorem 5.2: deterministic verification Θ(log n), randomized Θ(log log n); crossing Figure 2(a) creates an articulation point.",
		Headers: []string{"n", "det label bits", "rand cert bits",
			"crossed Fig-2 still biconnected?", "honest det fooled by crossing?", "rand rejection of crossed"},
	}
	for _, n := range sizes {
		g, err := graph.CycleWithChords(n)
		if err != nil {
			return t, err
		}
		cfg := graph.NewConfig(g)
		det := biconn.NewPLS()
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		rand := biconn.NewRPLS()
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		crossed, err := cfg.CrossConfig(graph.EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
		if err != nil {
			return t, err
		}
		crossedLegal := (biconn.Predicate{}).Eval(crossed)
		fooled := engine.Verify(engine.FromPLS(det), crossed, labels).Accepted
		rejRate := 1 - estimateAcceptance(rand, crossed, randLabels, trials, seed)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(core.MaxBits(labels)),
			itoa(maxCertBits(rand, cfg, randLabels, 3, seed)),
			fmt.Sprintf("%v", crossedLegal), fmt.Sprintf("%v", fooled), ftoa(rejRate)})
	}
	return t, nil
}

// E9CycleAtLeast measures Theorems 5.3/5.4: honest O(log n)/O(log log n)
// upper bounds, and the Ω(log c) lower bound via the mod-index attack on
// the hub construction.
func E9CycleAtLeast(seed uint64, quick bool) (Table, error) {
	cs := []int{16, 32, 64}
	if quick {
		cs = []int{16, 32}
	}
	t := Table{
		ID:    "E9",
		Title: "cycle-at-least-c",
		Claim: "Thm 5.3: O(log n) det / O(log log n) rand upper bounds; Thm 5.4: Ω(log c) det / Ω(log log c) rand — an index counter too small to count to c is crossed into accepting short cycles.",
		Headers: []string{"c", "honest det bits", "honest cert bits",
			"weak scheme bits", "weak fooled", "honest fooled"},
	}
	for _, c := range cs {
		n := c + 8
		g, err := graph.CycleWithHub(n, c)
		if err != nil {
			return t, err
		}
		cfg := graph.NewConfig(g)
		pred := cycle.AtLeastPredicate{C: c}
		gadgets := crossing.RingGadgets(c)

		honestDet := cycle.NewPLS(c)
		labels, err := honestDet.Label(cfg)
		if err != nil {
			return t, err
		}
		honestRand := cycle.NewRPLS(c)
		randLabels, err := honestRand.Label(cfg)
		if err != nil {
			return t, err
		}
		certBits := maxCertBits(honestRand, cfg, randLabels, 3, seed)

		// Weak scheme: index modulo M with M | c and M small enough that
		// the ring gadget family (r ≈ c/3) must collide.
		bits := weakIndexBits(c)
		weak := crossing.ModularIndexCyclePLS{C: c, Bits: bits, FindCycle: cycle.FindCycleAtLeast}
		weakAtk, err := crossing.AttackPLS(weak, pred, cfg, gadgets)
		if err != nil {
			return t, err
		}
		honestAtk, err := crossing.AttackPLS(honestDet, pred, cfg, gadgets)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(c), itoa(core.MaxBits(labels)), itoa(certBits),
			itoa(weakAtk.LabelBits), fmt.Sprintf("%v", weakAtk.Fooled),
			fmt.Sprintf("%v", honestAtk.Fooled)})
	}
	t.Notes = append(t.Notes,
		"The weak scheme stores the cycle index mod 2^b with 2^b | c; crossing two ring edges whose positions agree mod 2^b yields cycles of length ≡ 0 (mod 2^b), all shorter than c yet accepted.")
	return t, nil
}

// weakIndexBits picks the largest b with 2^b | c such that two gadget
// indices congruent mod 2^b exist (so the pigeonhole collision is forced
// within the ring family).
func weakIndexBits(c int) int {
	maxI := (c - 2) / 3 // gadget indices run 1..maxI
	b := 1
	for c%(1<<(b+1)) == 0 && (1<<(b+1))+1 <= maxI {
		b++
	}
	return b
}

// E10IteratedCrossing replays Theorem 5.5: repeated crossings shrink every
// ring cycle below c−1 while the under-provisioned verifier keeps
// accepting with the original labels.
func E10IteratedCrossing(seed uint64, quick bool) (Table, error) {
	const c = 96
	const bits = 3 // M = 8 divides 96 and all arc lengths used
	n := c + 6
	g, err := graph.CycleWithHub(n, c)
	if err != nil {
		return Table{}, err
	}
	cfg := graph.NewConfig(g)
	weak := crossing.ModularIndexCyclePLS{C: c, Bits: bits, FindCycle: cycle.FindCycleAtLeast}
	labels, err := weak.Label(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "E10",
		Title: "Iterated crossing",
		Claim: "Theorem 5.5: applying the crossing iteratively yields a graph whose cycles are all shorter than c−1, still accepted with the original labels.",
		Headers: []string{"step", "ring cycle lengths", "longest ring cycle",
			"weak verifier accepts", "all cycles < c−1"},
	}
	// Gadget pairs spaced 8 apart in index: positions ≡ (mod 24), so each
	// excised arc has length divisible by M = 8.
	pairs := [][2]int{{1, 9}, {17, 25}}
	if quick {
		pairs = pairs[:1]
	}
	gadgets := crossing.RingGadgets(c)
	cur := cfg
	record := func(step int) {
		lengths := ringCycleLengths(cur.G, c)
		longest := 0
		for _, l := range lengths {
			if l > longest {
				longest = l
			}
		}
		accepted := engine.Verify(engine.FromPLS(weak), cur, labels).Accepted
		t.Rows = append(t.Rows, []string{
			itoa(step), fmt.Sprintf("%v", lengths), itoa(longest),
			fmt.Sprintf("%v", accepted), fmt.Sprintf("%v", longest < c-1)})
	}
	record(0)
	for step, p := range pairs {
		next, err := cur.CrossConfigAll([]graph.EdgePair{
			crossing.Pair(gadgets[p[0]], gadgets[p[1]])})
		if err != nil {
			return t, err
		}
		cur = next
		record(step + 1)
	}
	t.Notes = append(t.Notes,
		"Simple cycles through the hub can exceed a ring piece by at most one node, so 'longest ring cycle < c−1' certifies cycle-at-least-c is false.")
	return t, nil
}

// E11CycleAtMost measures Theorem 5.6 on the Figure 5 chain-of-cycles
// family: the universal scheme's sizes, and the crossing that fuses two
// c-cycles into a 2c-cycle.
func E11CycleAtMost(seed uint64, quick bool) (Table, error) {
	type point struct{ n, c int }
	points := []point{{16, 4}, {24, 4}, {24, 8}, {48, 8}}
	if quick {
		points = []point{{16, 4}, {24, 8}}
	}
	t := Table{
		ID:    "E11",
		Title: "cycle-at-most-c on cycle chains",
		Claim: "Theorem 5.6: Ω(log n/c) det and Ω(log log n/c) rand; the universal scheme is the best known (an efficient one would give NP = co-NP). Crossing two cycles fuses them into a 2c-cycle.",
		Headers: []string{"n", "c", "r = n/c gadgets", "universal label bits",
			"universal cert bits", "fused cycle after crossing", "stale labels rejected",
			"weak id bits", "weak fooled"},
	}
	for _, p := range points {
		g, err := graph.ChainOfCycles(p.n, p.c)
		if err != nil {
			return t, err
		}
		cfg := graph.NewConfig(g)
		det := cycle.NewAtMostPLS(p.c)
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		rand := cycle.NewAtMostRPLS(p.c)
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		gadgets := crossing.ChainGadgets(p.n, p.c)
		crossed, err := cfg.CrossConfigAll([]graph.EdgePair{
			crossing.Pair(gadgets[0], gadgets[1])})
		if err != nil {
			return t, err
		}
		fused := cycle.LongestCycle(crossed.G)
		rejected := !engine.Verify(engine.FromPLS(det), crossed, labels).Accepted

		// The Ω(log n/c) bound made constructive: cycle ids modulo 2^b
		// with fewer than log₂ r bits collide, and the splice hides.
		weakBits := 1
		for 1<<(weakBits+1) < len(gadgets) {
			weakBits++
		}
		weak := crossing.ModularChainCyclePLS{C: p.c, Bits: weakBits}
		atk, err := crossing.AttackPLS(weak, cycle.AtMostPredicate{C: p.c}, cfg, gadgets)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(p.n), itoa(p.c), itoa(len(gadgets)), itoa(core.MaxBits(labels)),
			itoa(maxCertBits(rand, cfg, randLabels, 2, seed)),
			itoa(fused), fmt.Sprintf("%v", rejected),
			itoa(atk.LabelBits), fmt.Sprintf("%v", atk.Fooled)})
	}
	t.Notes = append(t.Notes,
		"The weak scheme labels each constituent cycle with its index mod 2^b; with 2^b < r two cycles collide and the crossing's splice is locally invisible.")
	return t, nil
}
