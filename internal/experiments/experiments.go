// Package experiments regenerates, as measured tables, every quantitative
// claim of the paper (its "evaluation" is a set of theorems; see DESIGN.md
// for the experiment index E1–E15). Each experiment is a pure function of a
// seed, so cmd/experiments, the benchmarks in bench_test.go, and the test
// suite all reproduce identical numbers.
package experiments

import (
	"fmt"
	"strings"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being exercised
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Spec names a runnable experiment.
type Spec struct {
	ID    string
	Title string
	// Run executes the experiment; quick mode shrinks sweeps for use under
	// the benchmark harness.
	Run func(seed uint64, quick bool) (Table, error)
}

// All returns every experiment in index order.
func All() []Spec {
	return []Spec{
		{ID: "E1", Title: "Det→Rand compilation (Theorem 3.1)", Run: E1Compiler},
		{ID: "E2", Title: "Randomized EQ protocol (Lemmas 3.2/A.1)", Run: E2Equality},
		{ID: "E3", Title: "Universal schemes (Lemma 3.3, Corollary 3.4)", Run: E3Universal},
		{ID: "E4", Title: "Ω(log n + log k) lower bound (Theorem 3.5)", Run: E4LowerBound},
		{ID: "E5", Title: "Crossing attack on deterministic schemes (Prop 4.3/Thm 4.4)", Run: E5CrossingDet},
		{ID: "E6", Title: "Crossing attack on one-sided RPLS (Prop 4.8/Thm 4.7)", Run: E6CrossingRand},
		{ID: "E7", Title: "MST verification (Theorem 5.1)", Run: E7MST},
		{ID: "E8", Title: "Biconnectivity (Theorem 5.2, Figure 2)", Run: E8Biconnectivity},
		{ID: "E9", Title: "cycle-at-least-c (Theorems 5.3/5.4)", Run: E9CycleAtLeast},
		{ID: "E10", Title: "Iterated crossing (Theorem 5.5)", Run: E10IteratedCrossing},
		{ID: "E11", Title: "cycle-at-most-c on cycle chains (Theorem 5.6, Figure 5)", Run: E11CycleAtMost},
		{ID: "E12", Title: "Confidence boosting (footnote 1)", Run: E12Boosting},
		{ID: "E13", Title: "k-flow (§5.2)", Run: E13KFlow},
		{ID: "E14", Title: "Sym and the EQ reduction (Lemma C.1, Claim C.2)", Run: E14Symmetry},
		{ID: "E15", Title: "Self-stabilizing detection (§1)", Run: E15SelfStab},
		{ID: "E16", Title: "Shared randomness (extension; §6 open question)", Run: E16SharedRandomness},
		{ID: "E17", Title: "s-t vertex connectivity (extension; §5.2)", Run: E17STConnectivity},
		{ID: "E18", Title: "Label-shape scaling (gamma-coded acyclicity)", Run: E18LabelShape},
		{ID: "E19", Title: "Wire accounting: per-edge det vs rand cost across graph families", Run: E19WireAccounting},
		{ID: "E20", Title: "Multi-round verification: the κ/t tradeoff (t-PLS)", Run: E20RoundTradeoff},
		{ID: "E21", Title: "Congestion-bounded verification: broadcast ⇄ unicast (multiplicity cap)", Run: E21Congestion},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ftoa(v float64) string { return fmt.Sprintf("%.3f", v) }

// estimateAcceptance is the trial-parallel Monte-Carlo acceptance estimate
// every experiment uses: trials are sharded across GOMAXPROCS workers and
// the result is bit-identical to a serial run for the same seed, so tables
// stay reproducible while sweeps use all cores.
func estimateAcceptance(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) float64 {
	sum, err := engine.Estimate(engine.FromRPLS(s), c, engine.WithLabels(labels),
		engine.WithTrials(trials), engine.WithSeed(seed), engine.WithParallelism(0))
	if err != nil {
		// With explicit labels the only failure is a label/node count
		// mismatch — a programming error; keep it loud.
		panic(err)
	}
	return sum.Acceptance
}

// maxCertBits measures the Definition 2.1 verification complexity over
// `trials` coin draws, tracked inside the estimator's trial loop.
func maxCertBits(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) int {
	return engine.MaxCertBits(engine.FromRPLS(s), c, labels, trials, seed)
}
