package experiments

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/flow"
	"rpls/internal/schemes/symmetry"
	"rpls/internal/schemes/uniform"
	"rpls/internal/selfstab"
)

// E12Boosting measures footnote 1: t-fold repetition drives the acceptance
// of an illegal configuration down exponentially while certificates grow
// linearly in t.
func E12Boosting(seed uint64, quick bool) (Table, error) {
	reps := []int{1, 2, 3, 4, 6, 8}
	trials := 6000
	if quick {
		reps = []int{1, 2, 4}
		trials = 1000
	}
	t := Table{
		ID:    "E12",
		Title: "Confidence boosting",
		Claim: "Footnote 1: repeating the verification t times and combining outcomes boosts correctness to 1−δ with t = O(log 1/δ).",
		Headers: []string{"t", "cert bits", "acceptance of illegal config",
			"(1/4)^t reference", "acceptance of legal config"},
	}
	// A single-edge configuration over GF(2) fingerprints: the payloads
	// 0x00.. vs (bit 1 set) collide exactly when x = 0, so each round
	// accepts with probability (1/2)² = 1/4 — large enough to watch decay.
	base := uniform.NewTruncatedRPLS(2)
	illegal := graph.NewConfig(graph.Path(2))
	illegal.States[0].Data = []byte{0x00}
	illegal.States[1].Data = []byte{0x40} // bit index 1 set
	legal := graph.NewConfig(graph.Path(2))
	legal.States[0].Data = []byte{0x37}
	legal.States[1].Data = []byte{0x37}
	labels := make([]core.Label, 2)
	ref := 1.0
	for _, r := range reps {
		s := core.Boost(base, r)
		rate := estimateAcceptance(s, illegal, labels, trials, seed)
		legalRate := estimateAcceptance(s, legal, labels, trials/10, seed+1)
		bits := maxCertBits(s, illegal, labels, 3, seed)
		ref = pow(0.25, r)
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(bits), ftoa(rate), ftoa(ref), ftoa(legalRate)})
	}
	t.Notes = append(t.Notes,
		"One-sided conjunction boosting: legal acceptance stays exactly 1; illegal acceptance tracks (1/4)^t.")
	return t, nil
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// E13KFlow measures the §5.2 remark: k-flow labels grow like O(k log n)
// deterministically and O(log k + log log n) after compilation.
func E13KFlow(seed uint64, quick bool) (Table, error) {
	type point struct{ n, extra int }
	points := []point{{8, 12}, {16, 30}, {32, 64}, {64, 128}}
	if quick {
		points = []point{{8, 12}, {16, 30}}
	}
	t := Table{
		ID:    "E13",
		Title: "k-flow",
		Claim: "§5.2: deterministic k-flow verification in O(k log n) bits; compiled randomized verification in O(log k + log log n) bits.",
		Headers: []string{"n", "k = max s-t flow", "det label bits",
			"rand cert bits", "legal acceptance"},
	}
	for i, p := range points {
		cfg := BuildFlowConfig(p.n, p.extra, seed+uint64(i))
		k, _, _, err := flow.MaxFlowUnit(cfg)
		if err != nil {
			return t, err
		}
		det := flow.NewPLS(k)
		labels, err := det.Label(cfg)
		if err != nil {
			return t, err
		}
		rand := flow.NewRPLS(k)
		randLabels, err := rand.Label(cfg)
		if err != nil {
			return t, err
		}
		rate := estimateAcceptance(rand, cfg, randLabels, 20, seed)
		t.Rows = append(t.Rows, []string{
			itoa(p.n), itoa(k), itoa(core.MaxBits(labels)),
			itoa(maxCertBits(rand, cfg, randLabels, 2, seed)),
			ftoa(rate)})
	}
	return t, nil
}

// E14Symmetry replays Appendix C: Claim C.2 (Sym(G(z,z′)) ⟺ z = z′) and
// the Lemma C.1 reduction turning the universal Sym RPLS into an EQ
// protocol whose transcript is exponentially below λ.
func E14Symmetry(seed uint64, quick bool) (Table, error) {
	lambdas := []int{2, 4, 8}
	rounds := 20
	if quick {
		lambdas = []int{2, 4}
		rounds = 8
	}
	t := Table{
		ID:    "E14",
		Title: "Sym and the EQ reduction",
		Claim: "Lemma C.1: an RPLS for Sym with κ-bit certificates yields a 2-party EQ protocol with O(κ) bits, hence κ = Ω(log n).",
		Headers: []string{"λ", "graph nodes", "trivial EQ bits",
			"reduction transcript bits", "accept(x=x)", "reject(x≠y) rate"},
	}
	rng := prng.New(seed)
	s := symmetry.NewRPLS()
	for _, lambda := range lambdas {
		xb := make([]byte, lambda)
		for i := range xb {
			xb[i] = rng.Bit()
		}
		x := bitstring.FromBits(xb)
		yb := make([]byte, lambda)
		copy(yb, xb)
		yb[lambda-1] = 1 - yb[lambda-1]
		y := bitstring.FromBits(yb)

		eqAccept, bits, err := symmetry.EQFromRPLS(s, x, x, seed)
		if err != nil {
			return t, err
		}
		// Batched: one combined instance, `rounds` coin draws — run r is
		// bit-identical to EQFromRPLS(s, x, y, seed+1+r).
		rejected, err := symmetry.EQRejectionRate(s, x, y, rounds, seed+1)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(lambda), itoa(2 * (2*lambda + 3)), itoa(lambda),
			itoa(bits), fmt.Sprintf("%v", eqAccept),
			ftoa(float64(rejected) / float64(rounds))})
	}
	t.Notes = append(t.Notes,
		"Claim C.2 is verified exhaustively in the symmetry package tests; here the reduction runs end to end.")
	return t, nil
}

// E15SelfStab measures the §1 deployment story: detection latency of a
// corrupted state under periodic randomized verification, with and without
// boosting.
func E15SelfStab(seed uint64, quick bool) (Table, error) {
	faults := 50
	if quick {
		faults = 15
	}
	t := Table{
		ID:    "E15",
		Title: "Self-stabilizing detection",
		Claim: "§1: a node outputting FALSE launches recovery; with one-sided schemes there are no false alarms and detection latency is geometric with success ≥ 1 − 3^−t.",
		Headers: []string{"boost t", "mean detection latency (rounds)",
			"max latency", "false alarms / 200 rounds"},
	}
	// Adversarial fault on a single link: over GF(2) fingerprints, payloads
	// 0x00 vs bit-1-set agree exactly at x = 0, so each of the two directed
	// tests passes with probability 1/2 and a round misses the fault with
	// probability 1/4 — making the geometric latency (and boosting's
	// (1/4)^t speedup) visible.
	for _, reps := range []int{1, 2, 4} {
		scheme := core.Boost(uniform.NewTruncatedRPLS(2), reps)
		sum, max := 0, 0
		for f := 0; f < faults; f++ {
			cfg := graph.NewConfig(graph.Path(2))
			cfg.States[0].Data = []byte{0x00}
			cfg.States[1].Data = []byte{0x00}
			m, err := selfstab.NewMonitor(scheme, cfg, seed+uint64(f)*977)
			if err != nil {
				return t, err
			}
			m.Corrupt(func(c *graph.Config) {
				c.States[1].Data[0] = 0x40 // bit index 1 set
			})
			lat, ok := selfstab.DetectionLatency(m, 5000)
			if !ok {
				return t, fmt.Errorf("fault %d undetected", f)
			}
			sum += lat
			if lat > max {
				max = lat
			}
		}
		// False alarms on a healthy system (one-sided: exactly zero).
		cfg := BuildUniformConfig(10, 4, seed+12345)
		m, err := selfstab.NewMonitor(core.Boost(uniform.NewRPLS(), reps), cfg, seed)
		if err != nil {
			return t, err
		}
		alarms := selfstab.FalseAlarmRate(m, 200)
		t.Rows = append(t.Rows, []string{
			itoa(reps), ftoa(float64(sum) / float64(faults)), itoa(max), ftoa(alarms)})
	}
	t.Notes = append(t.Notes,
		"The fault is tuned so one unboosted round misses it with probability 1/4; expected latencies are 1/(1−1/4^t): ≈1.333, ≈1.067, ≈1.004.")
	return t, nil
}
