package engine_test

// The registry-driven conformance suite: every name in engine.Registry gets
// a small legal and illegal fixture and runs the full schemetest battery —
// completeness, prover refusal, and the engine.Soundness adversary fan-out.
// A scheme that registers but ships no fixture (or no tests of its own)
// fails here, so registration implies conformance coverage.

import (
	"fmt"
	"testing"

	"rpls/internal/campaign"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/schemetest"

	// Every scheme package must be linked in so the registry is complete.
	_ "rpls/internal/schemes/all"
)

// conformanceFixture is a small legal/illegal instance pair plus the
// semantic parameters the entry's constructors need for it.
type conformanceFixture struct {
	legal, illegal *graph.Config
	params         engine.Params
}

// catalogFixture builds a fixture from the experiments catalog: the legal
// instance from its builder, the illegal one from its corruptor.
func catalogFixture(name string, n int, seed uint64) (conformanceFixture, error) {
	entry, ok := experiments.LookupCatalog(name)
	if !ok {
		return conformanceFixture{}, fmt.Errorf("no catalog entry %q", name)
	}
	legal, err := entry.Build(n, seed)
	if err != nil {
		return conformanceFixture{}, fmt.Errorf("build: %w", err)
	}
	illegal := legal.Clone()
	if err := entry.Corrupt(illegal, prng.New(seed+1)); err != nil {
		return conformanceFixture{}, fmt.Errorf("corrupt: %w", err)
	}
	return conformanceFixture{legal: legal, illegal: illegal}, nil
}

// stFixture marks s = 0 and t = n−1 in a configuration of graph g.
func stFixture(g *graph.Graph, seed uint64) *graph.Config {
	c := graph.NewConfig(g)
	c.AssignRandomIDs(prng.New(seed))
	c.States[0].Flags |= graph.FlagSource
	c.States[g.N()-1].Flags |= graph.FlagTarget
	return c
}

// conformanceFixtures maps every registered scheme name to its fixture
// builder. Adding a scheme to the registry without adding a fixture here
// fails TestRegistryConformance.
var conformanceFixtures = map[string]func() (conformanceFixture, error){
	"spanningtree": func() (conformanceFixture, error) { return catalogFixture("spanningtree", 12, 3) },
	"acyclicity":   func() (conformanceFixture, error) { return catalogFixture("acyclicity", 12, 4) },
	"acyclicity-compact": func() (conformanceFixture, error) {
		// Same predicate as acyclicity; reuse its instances.
		return catalogFixture("acyclicity", 12, 5)
	},
	"mst":     func() (conformanceFixture, error) { return catalogFixture("mst", 12, 6) },
	"uniform": func() (conformanceFixture, error) { return catalogFixture("uniform", 10, 7) },
	"leader":  func() (conformanceFixture, error) { return catalogFixture("leader", 10, 8) },
	"symmetry": func() (conformanceFixture, error) {
		// The catalog corruptor adds a pendant node, so the illegal twin has
		// one node more; Soundness then runs the random adversary only.
		return catalogFixture("symmetry", 12, 9)
	},
	"coloring": func() (conformanceFixture, error) {
		fx, err := catalogFixture("coloring", 10, 10)
		if err != nil {
			return fx, err
		}
		fx.params = engine.Params{M: fx.legal.G.M()} // field sized by edge count
		return fx, nil
	},
	"biconnectivity": func() (conformanceFixture, error) {
		// A same-size illegal twin (unlike the catalog's pendant-node
		// corruptor): every interior node of a path is an articulation point.
		legal, err := experiments.BuildBiconnConfig(10, 11)
		if err != nil {
			return conformanceFixture{}, err
		}
		illegal := graph.NewConfig(graph.Path(10))
		illegal.AssignRandomIDs(prng.New(12))
		return conformanceFixture{legal: legal, illegal: illegal}, nil
	},
	"cycleatleast": func() (conformanceFixture, error) {
		g, err := graph.CycleWithHub(12, 6)
		if err != nil {
			return conformanceFixture{}, err
		}
		legal := graph.NewConfig(g)
		legal.AssignRandomIDs(prng.New(13))
		illegal := graph.NewConfig(graph.RandomTree(12, prng.New(14)))
		illegal.AssignRandomIDs(prng.New(15))
		return conformanceFixture{legal: legal, illegal: illegal, params: engine.Params{C: 6}}, nil
	},
	"cycleatmost": func() (conformanceFixture, error) {
		g, err := graph.ChainOfCycles(12, 4)
		if err != nil {
			return conformanceFixture{}, err
		}
		legal := graph.NewConfig(g)
		ring, err := graph.Cycle(12)
		if err != nil {
			return conformanceFixture{}, err
		}
		illegal := graph.NewConfig(ring) // one 12-cycle > 4
		return conformanceFixture{legal: legal, illegal: illegal, params: engine.Params{C: 4}}, nil
	},
	"flow": func() (conformanceFixture, error) {
		legal := stFixture(graph.Complete(4), 16) // s-t flow 3
		illegal := stFixture(graph.Path(4), 17)   // s-t flow 1
		return conformanceFixture{legal: legal, illegal: illegal, params: engine.Params{K: 3}}, nil
	},
	"stconn": func() (conformanceFixture, error) {
		ring, err := graph.Cycle(8)
		if err != nil {
			return conformanceFixture{}, err
		}
		// The terminals must be non-adjacent: antipodal on the ring.
		legal := graph.NewConfig(ring) // s-t vertex connectivity 2
		legal.AssignRandomIDs(prng.New(18))
		legal.States[0].Flags |= graph.FlagSource
		legal.States[4].Flags |= graph.FlagTarget
		illegal := graph.NewConfig(graph.Path(8)) // s-t vertex connectivity 1
		illegal.AssignRandomIDs(prng.New(19))
		illegal.States[0].Flags |= graph.FlagSource
		illegal.States[4].Flags |= graph.FlagTarget
		return conformanceFixture{legal: legal, illegal: illegal, params: engine.Params{K: 2}}, nil
	},
}

// TestRegistryConformance runs the battery on every registered scheme, in
// both variants, on every executor family — registration alone is enough to
// get a scheme checked.
func TestRegistryConformance(t *testing.T) {
	entries := engine.Entries()
	if len(entries) == 0 {
		t.Fatal("scheme registry is empty")
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		seen[e.Name] = true
		e := e
		t.Run(e.Name, func(t *testing.T) {
			build, ok := conformanceFixtures[e.Name]
			if !ok {
				t.Fatalf("registered scheme %q has no conformance fixture; add a legal/illegal pair to conformanceFixtures", e.Name)
			}
			fx, err := build()
			if err != nil {
				t.Fatalf("fixture: %v", err)
			}
			if e.Det == nil && e.Rand == nil {
				t.Fatalf("registered scheme %q has no constructors", e.Name)
			}
			spec := schemetest.BatterySpec{Trials: 48, MaxAccepted: 36}
			h := schemetest.New(21)
			h.Parallelism = 4 // summaries are bit-identical at any level
			// Every variant also runs with its certificates sharded over
			// t = 3 rounds: the t-PLS reassembly must preserve the whole
			// battery (completeness, prover refusal, soundness fan-out).
			battery := func(t *testing.T, s engine.Scheme) {
				t.Helper()
				h.Battery(t, s, fx.legal, fx.illegal, spec)
				t.Run("shard3", func(t *testing.T) {
					sharded, err := engine.Shard(s, 3)
					if err != nil {
						// Every registry scheme is a core PLS/RPLS adapter, so
						// unshardable means the adapter detection regressed.
						t.Fatalf("registered scheme is not shardable: %v", err)
					}
					h.Battery(t, sharded, fx.legal, fx.illegal, spec)
				})
				// The congestion axis: the whole battery must survive any
				// message-multiplicity cap — broadcast, an interior point,
				// and the per-port extreme (m = max degree, where capped
				// rounds carry exactly one class per port).
				deg := maxDegree(fx.legal)
				for _, m := range []int{1, 2, deg} {
					m := m
					t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
						hm := *h
						hm.Multiplicity = m
						hm.Battery(t, s, fx.legal, fx.illegal, spec)
					})
				}
			}
			if e.Det != nil {
				t.Run("det", func(t *testing.T) {
					battery(t, e.Det(fx.params))
				})
			}
			if e.Rand != nil {
				t.Run("rand", func(t *testing.T) {
					battery(t, e.Rand(fx.params))
				})
			}
		})
	}
	// Stale fixtures point at names no longer registered.
	for name := range conformanceFixtures {
		if !seen[name] {
			t.Errorf("conformance fixture %q matches no registered scheme", name)
		}
	}
}

// TestFamilyConformance crosses every registered graph family with every
// registered scheme: wherever the campaign preparation layer can build a
// legal instance, both variants must be complete on it. Registering a new
// family (or a new scheme with a legalizer) extends this matrix
// automatically — no per-family fixtures to maintain.
func TestFamilyConformance(t *testing.T) {
	entries := engine.Entries()
	families := graph.Families()
	if len(families) == 0 {
		t.Fatal("family registry is empty")
	}
	compatible, ran := 0, 0
	for _, fam := range families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for _, e := range entries {
				e := e
				t.Run(e.Name, func(t *testing.T) {
					ran++
					const n, seed = 10, 23
					legal, params, err := campaign.BuildLegal(e.Name, campaign.FamilyAxis{Name: fam.Name}, n, seed)
					if campaign.IsIncompatible(err) {
						t.Skipf("incompatible: %v", err)
					}
					if err != nil {
						t.Fatalf("BuildLegal: %v", err)
					}
					illegal, err := campaign.IllegalTwin(e.Name, legal, seed)
					if campaign.IsIncompatible(err) {
						// e.g. MST on a tree family: the only spanning tree is
						// trivially minimum, so no weight corruption works.
						t.Skipf("no illegal twin: %v", err)
					}
					if err != nil {
						t.Fatalf("IllegalTwin: %v", err)
					}
					compatible++
					h := schemetest.New(seed)
					spec := schemetest.BatterySpec{Trials: 24, MaxAccepted: 18, Assignments: 2}
					for _, variant := range []string{campaign.VariantDet, campaign.VariantRand} {
						s, err := campaign.BuildVariant(e.Name, variant, params)
						if campaign.IsIncompatible(err) {
							continue
						}
						if err != nil {
							t.Fatalf("BuildVariant %s: %v", variant, err)
						}
						t.Run(variant, func(t *testing.T) {
							h.Battery(t, s, legal, illegal, spec)
						})
					}
				})
			}
		})
	}
	// The coverage floor only means something when the whole matrix ran
	// (not under a -run filter that skips most subtests).
	if ran == len(families)*len(entries) && compatible < 20 {
		t.Errorf("only %d compatible (family, scheme) pairs; the preparation layer lost coverage", compatible)
	}
}

// maxDegree is the largest node degree in a configuration (at least 1,
// so m = maxDegree is always a valid cap).
func maxDegree(c *graph.Config) int {
	deg := 1
	for v := 0; v < c.G.N(); v++ {
		if d := c.G.Degree(v); d > deg {
			deg = d
		}
	}
	return deg
}
