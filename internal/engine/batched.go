package engine

import (
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// batchPlaneBudget bounds the certificate plane to lanes × slots entries,
// so huge graphs narrow the batch instead of exploding memory. Lane width
// is invisible in results: outcomes are per trial, so any chunking of the
// trial range produces the same Summary.
const batchPlaneBudget = 1 << 21

// Batched is the trial-batched executor: it snapshots the configuration's
// adjacency into a CSR layout once per batch and runs up to 64 Monte-Carlo
// trials ("lanes") through a single graph traversal. Certificates live in
// a flat lane-major plane indexed by CSR slot, so the exchange is one
// RevEdge lookup per (lane, port) and per-node votes are 64-wide bitmasks
// AND-reduced into per-trial acceptance.
//
// The batch path engages for single-round randomized schemes whose
// underlying RPLS implements core.LaneRPLS; everything else — deterministic
// schemes, multi-round schemes, lane-unaware schemes — falls back to the
// embedded Sequential executor, and coin-free schemes collapse to one
// execution replicated across the batch. Votes and Stats are bit-identical
// to Sequential for every trial at any lane width: lane l of a batch
// starting at trial t runs node streams prng.New(seed+t+l).Fork(v), the
// exact coins a sequential trial would draw.
type Batched struct {
	seq Sequential // fallback paths share the classic executor

	csr      graph.CSR
	plane    []core.Cert   // lane-major send plane: slot e of lane l at [l*slots+e]
	planeTop [][]core.Cert // per-lane CertsLanes output views, reused
	recv     []core.Cert   // lane-major receive windows, maxDeg per lane
	recvTop  [][]core.Cert // per-lane receive views passed to DecideLanes
	rngs     []*prng.Rand  // rngs[l] points into rngVals: reseated per node, never reallocated
	roots    []*prng.Rand  // roots[l] points into rootVals: reseated per batch
	rngVals  []prng.Rand
	rootVals []prng.Rand
	votes    []bool

	// Per-lane counters of the last runLanes call. The structural
	// distinct-message count is lane-invariant (it depends on degrees and
	// the cap, not coins), so one counter covers the whole batch.
	accept   uint64
	wire     [64]int64
	maxCert  [64]int
	distinct int64
}

// NewBatched returns a batched executor with empty scratch.
func NewBatched() *Batched { return &Batched{} }

// Name implements Executor.
func (e *Batched) Name() string { return "batched" }

// Clone implements Cloneable: a fresh batched executor with empty scratch.
func (e *Batched) Clone() Executor { return NewBatched() }

// laneScheme returns the LaneRPLS behind s when the batch path applies: a
// single-round, non-deterministic scheme adapting a lane-aware RPLS. A
// multiplicity cap using the generic replication fallback rides the lane
// path — the transform is applied to each lane's plane rows, byte-for-byte
// what capScheme.Certs does sequentially — and its cap is returned; a
// scheme with a native CapCerts degradation has no generic lane transform
// and falls back to the embedded Sequential.
func laneScheme(s Scheme) (core.LaneRPLS, int, bool) {
	m := 0
	if w, ok := s.(capScheme); ok {
		if w.capped != nil {
			return nil, 0, false
		}
		m, s = w.m, w.inner
	}
	if s.Deterministic() || Rounds(s) > 1 {
		return nil, 0, false
	}
	r, ok := AsRPLS(s)
	if !ok {
		return nil, 0, false
	}
	lr, ok := r.(core.LaneRPLS)
	return lr, m, ok
}

// laneWidth returns the widest batch the plane budget allows for a graph
// with the given slot count.
func laneWidth(slots int) int {
	if slots == 0 {
		return 64
	}
	w := batchPlaneBudget / slots
	if w > 64 {
		w = 64
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Round implements Executor. Lane-aware randomized schemes run as a
// one-lane batch — the same CSR + plane path the wide batches take, so
// parity tests exercise it — and everything else delegates to the
// embedded Sequential.
func (e *Batched) Round(s Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	lane, mult, ok := laneScheme(s)
	if !ok {
		obsBatchFallback.Inc()
		return e.seq.Round(s, c, labels, seed)
	}
	e.runLanes(lane, mult, c, labels, seed, 1, true)
	return e.votes, Stats{
		Rounds:           1,
		MaxLabelBits:     core.MaxBits(labels),
		MaxCertBits:      e.maxCert[0],
		MaxPortBits:      e.maxCert[0],
		TotalWireBits:    e.wire[0],
		Messages:         e.csr.Slots(),
		DistinctMessages: e.distinct,
	}
}

// runBatch executes trials [lo, hi) at seeds seed+lo … seed+hi−1 and
// writes outcome t to out[t-lo]. It is the estimator's batched inner loop:
// coin-free schemes run once and replicate, lane-aware schemes run in
// plane-budgeted lanes, and anything else iterates the sequential path.
//
//pls:hotpath
func (e *Batched) runBatch(s Scheme, c *graph.Config, labels []core.Label, seed uint64, lo, hi int, out []trialOutcome) {
	if IsCoinFree(s) {
		// Every trial of a coin-free scheme is the same execution.
		obsBatchCoinFree.Inc()
		votes, st := e.seq.Round(s, c, labels, seed+uint64(lo))
		o := trialOutcome{
			accepted:    AllTrue(votes),
			rounds:      st.Rounds,
			maxCertBits: st.MaxCertBits,
			maxPortBits: st.MaxPortBits,
			wireBits:    st.TotalWireBits,
			messages:    st.Messages,
			distinct:    st.DistinctMessages,
		}
		for t := lo; t < hi; t++ {
			out[t-lo] = o
		}
		return
	}
	lane, mult, ok := laneScheme(s)
	if !ok {
		obsBatchFallback.Inc()
		for t := lo; t < hi; t++ {
			t0 := obsTrialSequential.Start()
			votes, st := e.seq.Round(s, c, labels, seed+uint64(t))
			obsTrialSequential.Stop(t0)
			out[t-lo] = trialOutcome{
				accepted:    AllTrue(votes),
				rounds:      st.Rounds,
				maxCertBits: st.MaxCertBits,
				maxPortBits: st.MaxPortBits,
				wireBits:    st.TotalWireBits,
				messages:    st.Messages,
				distinct:    st.DistinctMessages,
			}
		}
		return
	}
	maxW := laneWidth(2 * c.G.M())
	if maxW < 64 {
		// The plane budget, not the trial count, capped the lane width.
		obsBatchNarrowed.Inc()
	}
	for t := lo; t < hi; {
		w := maxW
		if hi-t < w {
			w = hi - t
		}
		t0 := obsBatchNanos.Start()
		e.runLanes(lane, mult, c, labels, seed+uint64(t), w, false)
		obsBatchNanos.Stop(t0)
		obsBatches.Inc()
		obsBatchLanes.Observe(int64(w))
		slots := e.csr.Slots()
		for l := 0; l < w; l++ {
			out[t-lo+l] = trialOutcome{
				accepted:    e.accept&(1<<uint(l)) != 0,
				rounds:      1,
				maxCertBits: e.maxCert[l],
				maxPortBits: e.maxCert[l],
				wireBits:    e.wire[l],
				messages:    slots,
				distinct:    e.distinct,
			}
		}
		t += w
	}
}

// ensure sizes the plane, windows, and per-lane views for a batch of the
// given width over the current CSR snapshot. The makes are capacity-guarded
// grows: steady-state batches reuse everything.
//
//pls:hotpath
func (e *Batched) ensure(width int) {
	n, slots := e.csr.N(), e.csr.Slots()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := e.csr.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if cap(e.plane) < width*slots {
		e.plane = make([]core.Cert, width*slots) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
	}
	e.plane = e.plane[:width*slots]
	if cap(e.recv) < width*maxDeg {
		e.recv = make([]core.Cert, width*maxDeg) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
	}
	e.recv = e.recv[:width*maxDeg]
	if cap(e.planeTop) < width {
		e.planeTop = make([][]core.Cert, width) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		e.recvTop = make([][]core.Cert, width)  //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		e.rngs = make([]*prng.Rand, width)      //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		e.roots = make([]*prng.Rand, width)     //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		e.rngVals = make([]prng.Rand, width)    //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		e.rootVals = make([]prng.Rand, width)   //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
		for l := 0; l < width; l++ {
			e.rngs[l] = &e.rngVals[l]
			e.roots[l] = &e.rootVals[l]
		}
	}
	e.planeTop = e.planeTop[:width]
	e.recvTop = e.recvTop[:width]
	e.rngs = e.rngs[:width]
	e.roots = e.roots[:width]
	if cap(e.votes) < n {
		e.votes = make([]bool, n) //plsvet:allow hotalloc — capacity-guarded grow, amortized across batches
	}
	e.votes = e.votes[:n]
}

// runLanes is the batch core: one CSR rebuild, one certificate-generation
// traversal writing straight into the lane-major plane, one metering scan,
// and one decide traversal gathering via RevEdge and AND-reducing the
// per-node vote masks. Lane l draws the node streams of trial firstSeed+l.
// When needVotes is set, per-node votes of lane 0 land in e.votes. Under a
// multiplicity cap (mult >= 1, always the generic replication fallback —
// laneScheme rejects native degradations), each node's plane row of every
// lane is rewritten by core.CapReplicate right after generation: the same
// in-place transform capScheme.Certs applies on the sequential path, so
// planes — and therefore votes and stats — stay byte-identical.
//
//pls:hotpath
func (e *Batched) runLanes(lane core.LaneRPLS, mult int, c *graph.Config, labels []core.Label, firstSeed uint64, width int, needVotes bool) {
	e.csr.Reset(c.G)
	e.ensure(width)
	n, slots := e.csr.N(), e.csr.Slots()
	for l := 0; l < width; l++ {
		*e.roots[l] = *prng.New(firstSeed + uint64(l))
	}

	e.distinct = 0
	for v := 0; v < n; v++ {
		base, deg := e.csr.RowStart[v], e.csr.Degree(v)
		for l := 0; l < width; l++ {
			*e.rngs[l] = *e.roots[l].Fork(uint64(v))
			e.planeTop[l] = e.plane[l*slots+base : l*slots+base+deg]
		}
		lane.CertsLanes(core.ViewOf(c, v), labels[v], e.rngs, e.planeTop)
		if mult > 0 {
			for l := 0; l < width; l++ {
				core.CapReplicate(e.planeTop[l], mult)
			}
		}
		e.distinct += distinctCount(false, mult, deg)
	}

	for l := 0; l < width; l++ {
		wire, mx := int64(0), 0
		for _, cert := range e.plane[l*slots : (l+1)*slots] {
			b := cert.Len()
			wire += int64(b)
			if b > mx {
				mx = b
			}
		}
		e.wire[l], e.maxCert[l] = wire, mx
	}

	accept := core.LaneMask(width)
	maxDeg := len(e.recv) / max(width, 1)
	for v := 0; v < n; v++ {
		base, deg := e.csr.RowStart[v], e.csr.Degree(v)
		for l := 0; l < width; l++ {
			w := e.recv[l*maxDeg : l*maxDeg+deg]
			lanePlane := e.plane[l*slots : (l+1)*slots]
			for i := 0; i < deg; i++ {
				w[i] = lanePlane[e.csr.RevEdge[base+i]]
			}
			e.recvTop[l] = w
		}
		mask := lane.DecideLanes(core.ViewOf(c, v), labels[v], e.recvTop)
		accept &= mask
		if needVotes {
			e.votes[v] = mask&1 != 0
		}
	}
	if n == 0 {
		accept = 0 // an empty configuration accepts nowhere (AllTrue is false)
	}
	e.accept = accept
}
