package engine

import (
	"math"
	"testing"
)

// Whitebox coverage of the Wilson interval math at the degenerate counts
// the estimator actually produces: an empty run, a unanimous run, a
// unanimous rejection, and a single trial.

func TestWilsonEdgeCases(t *testing.T) {
	// trials == 0: the vacuous interval, centered with full half-width.
	if c, h := wilson(0, 0); c != 0.5 || h != 0.5 {
		t.Errorf("wilson(0,0) = (%v, %v), want (0.5, 0.5)", c, h)
	}
	if lo, hi := WilsonInterval(0, 0); lo != 0 || hi != 1 {
		t.Errorf("WilsonInterval(0,0) = [%v, %v], want [0, 1]", lo, hi)
	}

	for _, trials := range []int{1, 2, 10, 1000} {
		// accepted == 0: the interval must hug 0 but keep a nonzero upper
		// end — "never accepted" is not "acceptance probability is 0".
		lo, hi := WilsonInterval(0, trials)
		if lo != 0 {
			t.Errorf("WilsonInterval(0,%d) lower = %v, want 0", trials, lo)
		}
		if hi <= 0 || hi >= 1 {
			t.Errorf("WilsonInterval(0,%d) upper = %v, want in (0,1)", trials, hi)
		}

		// accepted == trials: the mirror image at 1.
		lo, hi = WilsonInterval(trials, trials)
		if hi != 1 {
			t.Errorf("WilsonInterval(%d,%d) upper = %v, want 1", trials, trials, hi)
		}
		if lo <= 0 || lo >= 1 {
			t.Errorf("WilsonInterval(%d,%d) lower = %v, want in (0,1)", trials, trials, lo)
		}

		// Symmetry: the one-sided intervals at 0 and at 1 mirror each other.
		lo0, hi0 := WilsonInterval(0, trials)
		lo1, hi1 := WilsonInterval(trials, trials)
		if math.Abs(hi0-(1-lo1)) > 1e-12 || math.Abs(lo0-(1-hi1)) > 1e-12 {
			t.Errorf("trials=%d: intervals not mirrored: [%v,%v] vs [%v,%v]",
				trials, lo0, hi0, lo1, hi1)
		}
	}

	// trials == 1 is the widest informative interval; it must still leave
	// room on both sides of an interior estimate and stay clamped.
	lo, hi := WilsonInterval(1, 1)
	if lo < 0 || hi != 1 || hi-lo < 0.5 {
		t.Errorf("WilsonInterval(1,1) = [%v, %v]: want a wide clamped interval", lo, hi)
	}

	// The unclamped center always sits strictly inside (0, 1) — the shrink
	// toward 1/2 is what keeps the interval informative at the boundary.
	for _, tc := range []struct{ acc, trials int }{{0, 1}, {1, 1}, {0, 50}, {50, 50}} {
		c, h := wilson(tc.acc, tc.trials)
		if c <= 0 || c >= 1 {
			t.Errorf("wilson(%d,%d) center = %v, want in (0,1)", tc.acc, tc.trials, c)
		}
		if h <= 0 || h > 0.5+1e-12 {
			t.Errorf("wilson(%d,%d) half-width = %v, want in (0, 0.5]", tc.acc, tc.trials, h)
		}
	}

	// Monotonicity in trials: more unanimous evidence tightens the bound.
	prev := 0.0
	for _, trials := range []int{1, 4, 16, 64, 256} {
		lo, _ := WilsonInterval(trials, trials)
		if lo <= prev {
			t.Errorf("lower bound did not tighten at trials=%d: %v <= %v", trials, lo, prev)
		}
		prev = lo
	}
}
