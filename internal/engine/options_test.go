package engine_test

import (
	"errors"
	"testing"

	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// The validated options layer: every error-returning batch entry point
// rejects a bad option combination with a typed *OptionError that unwraps
// to ErrOption and names the offending With* option, before any round
// runs.

func TestOptionValidation(t *testing.T) {
	cfg := experiments.BuildUniformConfig(8, 16, 1)
	rand := engine.FromRPLS(uniform.NewRPLS())
	det := engine.FromPLS(spanningtree.NewPLS())

	cases := []struct {
		name   string
		option string // expected OptionError.Option
		run    func() error
	}{
		{"negative trials", "WithTrials", func() error {
			_, err := engine.Estimate(rand, cfg, engine.WithTrials(-1))
			return err
		}},
		{"negative parallelism", "WithParallelism", func() error {
			_, err := engine.Estimate(rand, cfg, engine.WithTrials(2), engine.WithParallelism(-2))
			return err
		}},
		{"zero assignments", "WithAssignments", func() error {
			_, err := engine.Estimate(rand, cfg, engine.WithTrials(2), engine.WithAssignments(0))
			return err
		}},
		{"negative maxSE", "WithMaxSE", func() error {
			_, err := engine.Estimate(rand, cfg, engine.WithTrials(2), engine.WithMaxSE(-0.1))
			return err
		}},
		{"negative multiplicity", "WithMultiplicity", func() error {
			_, err := engine.Estimate(rand, cfg, engine.WithTrials(2), engine.WithMultiplicity(-1))
			return err
		}},
		{"maxSE on coin-free scheme", "WithMaxSE", func() error {
			_, err := engine.Estimate(det, experiments.BuildTreeConfig(8, 1),
				engine.WithTrials(2), engine.WithMaxSE(0.05))
			return err
		}},
		{"run rejects too", "WithMultiplicity", func() error {
			_, err := engine.Run(rand, cfg, engine.WithMultiplicity(-3))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("invalid option accepted")
			}
			if !errors.Is(err, engine.ErrOption) {
				t.Fatalf("error %v does not unwrap to ErrOption", err)
			}
			var oe *engine.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not a *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Errorf("blamed option %q, want %q (reason: %s)", oe.Option, tc.option, oe.Reason)
			}
		})
	}
}

// TestOptionValidationAcceptsBoundaries pins the permissive edges: zero
// trials, zero parallelism (GOMAXPROCS), and multiplicity zero
// (unconstrained) are all valid.
func TestOptionValidationAcceptsBoundaries(t *testing.T) {
	cfg := experiments.BuildUniformConfig(8, 16, 1)
	rand := engine.FromRPLS(uniform.NewRPLS())
	if _, err := engine.Estimate(rand, cfg, engine.WithTrials(0)); err != nil {
		t.Errorf("zero trials rejected: %v", err)
	}
	if _, err := engine.Estimate(rand, cfg,
		engine.WithTrials(2), engine.WithParallelism(0), engine.WithMultiplicity(0)); err != nil {
		t.Errorf("boundary options rejected: %v", err)
	}
}
