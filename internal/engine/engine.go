// Package engine is the unified verification API of this repository: one
// Scheme abstraction covering both deterministic and randomized
// proof-labeling schemes, pluggable round executors, and batch entry points.
//
// The paper's verification round has the same shape in both models — every
// node sends one string per incident port, receives one string per port, and
// outputs a boolean. Only the message differs: a randomized scheme sends
// coin-derived certificates (§2.2), a deterministic scheme sends its label
// on every port (the degenerate certificate). Scheme captures exactly that
// round; FromPLS and FromRPLS adapt the core model types onto it, so a
// single round implementation serves both models and every executor.
//
// Executors trade model fidelity for speed:
//
//   - Sequential — allocation-amortized fast path; cert and receive buffers
//     are reused across rounds (Monte-Carlo estimation, self-stabilization
//     monitors, benchmarks).
//   - Pool — a fixed worker pool sharding nodes across GOMAXPROCS workers,
//     with no per-edge channels (large configurations).
//   - Goroutines — the model-faithful goroutine-per-node execution with one
//     channel per directed edge, kept for fidelity tests: a verifier
//     physically cannot read anything but its own state, its own label, and
//     what arrived on its ports.
//   - Batched — the Monte-Carlo throughput path: a CSR adjacency snapshot
//     plus per-port certificate bit-planes push up to 64 trials through one
//     graph traversal, AND-reducing per-node vote masks (see batched.go for
//     the lane contract). Estimate detects it and hands whole trial chunks
//     to RunBatch; outside a batch it behaves exactly like Sequential.
//
// All four executors produce identical votes and stats for the same seed;
// the parity property test in this package enforces that.
//
// Entry points: Run (label and verify once), Verify (verify under arbitrary,
// possibly adversarial labels), Estimate (trial-parallel Monte-Carlo
// acceptance with a Wilson confidence interval and early stopping — see
// WithParallelism, WithMaxSE, WithStopOnReject), Soundness (worst-case
// acceptance under the transplant / random / bit-flip adversaries), Sweep
// (measure across instance sizes, sharded over workers), and MaxCertBits
// (the Definition 2.1 verification complexity, tracked inside the trial
// loop). Estimate shards trials seed..seed+T−1 across workers that each own
// a cloned executor and merges outcomes by trial index, so every Summary is
// bit-identical for any parallelism level and any executor. Schemes are
// discovered by name through the Registry, which each internal/schemes
// package populates from its init function.
//
// Wire accounting: every executor meters exactly what the round puts on
// the wire — bits per port per message, at the sender — into Stats, and
// Estimate folds the per-trial counters into Summary (TotalBits,
// TotalMessages, MaxPortBits, AvgBitsPerEdge) under the same
// bit-identical-under-parallelism guarantee as acceptance — the parity
// property test requires bit-identical Stats from all four executors.
// This is the paper's primary axis of comparison: per-edge verification
// cost Θ(λ) deterministic vs O(log λ) randomized.
//
// Congestion: WithMultiplicity(m) caps how many distinct messages a node
// may send per round (Patt-Shamir–Perry's broadcast ⇄ unicast axis; m=1
// is broadcast, 0 leaves classic unicast). Ports are partitioned
// round-robin into core.PortClass classes; schemes implementing
// core.CappedRPLS merge their certificates natively (core.CapMerge wire
// format), others degrade through max-length replication
// (core.CapReplicate), and deterministic label broadcast satisfies every
// cap as is. Stats.DistinctMessages / Summary.TotalDistinct meter the
// constrained quantity under the same byte-identity guarantee as the
// other counters. See DESIGN.md, "Congestion-bounded verification".
//
// Observability: the estimator, the batched lanes, and the soundness
// fan-out record write-only telemetry into internal/obs (per-executor
// trial timing, lane occupancy, early-stop and chunk events, spans). The
// recorder is off by default and allocation-free when on; nothing in this
// package may read telemetry back (plsvet's obsflow analyzer rejects it),
// and the metrics-on/off golden tests in obs_test.go prove a live recorder
// leaves every Summary, vote, and Stats field bit-identical. See DESIGN.md,
// "Observability contract".
package engine

import (
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Scheme is the unified round abstraction. A deterministic scheme reports
// Deterministic() == true and never has Certs called: executors send the
// node's label on every port instead, which keeps the deterministic hot
// path free of certificate allocations.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Label assigns labels to all nodes of a configuration assumed legal.
	Label(c *graph.Config) ([]core.Label, error)
	// Deterministic reports whether the round exchanges labels themselves
	// rather than coin-derived certificates.
	Deterministic() bool
	// OneSided reports whether legal, honestly labeled configurations are
	// accepted with probability 1.
	OneSided() bool
	// Certs generates one certificate per port (index i = port i+1) from the
	// node's label and private coins. Unused for deterministic schemes.
	Certs(view core.View, own core.Label, rng *prng.Rand) []core.Cert
	// Decide is the node's output given the strings received on its ports.
	Decide(view core.View, own core.Label, received []core.Cert) bool
}

// plsScheme adapts a deterministic PLS: the "certificate" on every port is
// the node's own label.
type plsScheme struct{ s core.PLS }

// FromPLS adapts a deterministic scheme onto the unified round.
func FromPLS(s core.PLS) Scheme { return plsScheme{s} }

func (a plsScheme) Name() string                                { return a.s.Name() }
func (a plsScheme) Label(c *graph.Config) ([]core.Label, error) { return a.s.Label(c) }
func (a plsScheme) Deterministic() bool                         { return true }
func (a plsScheme) OneSided() bool                              { return true }

func (a plsScheme) Certs(view core.View, own core.Label, _ *prng.Rand) []core.Cert {
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		certs[i] = own
	}
	return certs
}

func (a plsScheme) Decide(view core.View, own core.Label, received []core.Cert) bool {
	return a.s.Verify(view, own, received)
}

// rplsScheme adapts a randomized RPLS verbatim.
type rplsScheme struct{ s core.RPLS }

// FromRPLS adapts a randomized scheme onto the unified round.
func FromRPLS(s core.RPLS) Scheme { return rplsScheme{s} }

func (a rplsScheme) Name() string                                { return a.s.Name() }
func (a rplsScheme) Label(c *graph.Config) ([]core.Label, error) { return a.s.Label(c) }
func (a rplsScheme) Deterministic() bool                         { return false }
func (a rplsScheme) OneSided() bool                              { return a.s.OneSided() }

func (a rplsScheme) Certs(view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	return a.s.Certs(view, own, rng)
}

func (a rplsScheme) Decide(view core.View, own core.Label, received []core.Cert) bool {
	return a.s.Decide(view, own, received)
}

// AsPLS recovers the underlying deterministic scheme from a FromPLS
// adapter; ok is false for any other Scheme.
func AsPLS(s Scheme) (core.PLS, bool) {
	a, ok := s.(plsScheme)
	if !ok {
		return nil, false
	}
	return a.s, true
}

// AsRPLS recovers the underlying randomized scheme from a FromRPLS
// adapter; ok is false for any other Scheme.
func AsRPLS(s Scheme) (core.RPLS, bool) {
	a, ok := s.(rplsScheme)
	if !ok {
		return nil, false
	}
	return a.s, true
}

// Stats records the measured communication cost of one verification round.
//
// The wire-accounting contract (see DESIGN.md): a "bit on the wire" is one
// bit of one message crossing one directed edge, measured at the sender.
// Every node sends exactly one message per incident port per round — its
// label for a deterministic scheme, a coin-derived certificate otherwise —
// so Messages is the number of directed edges (2m) and TotalWireBits is the
// sum of the message lengths. MaxPortBits is the largest single message;
// MaxCertBits is the verification complexity κ of Definition 2.1, i.e. the
// largest string a node sends on any port. For deterministic schemes the
// string sent is the label itself, so κ is the max label bits actually
// transmitted, not zero. All counters are exact and executor-independent:
// the parity property test requires bit-identical Stats from all four
// executors for the same seed.
// A multi-round (t-PLS) scheme runs Rounds > 1 synchronous rounds: every
// counter then covers all rounds of the execution — Messages is rounds × 2m
// and TotalWireBits sums every round — while MaxCertBits and MaxPortBits
// remain per-message maxima, i.e. the exact bits-per-round of the κ/t
// tradeoff (a sharded scheme's largest message is the ⌈κ/t⌉-bit shard).
//
// DistinctMessages is the congestion axis counter: per node and per round
// it adds the number of distinct payloads the scheme structurally
// guarantees — 1 for a deterministic broadcast, min(m, deg) under a
// WithMultiplicity cap, deg for an unconstrained randomized round — never
// a byte comparison of what happened to coincide. The conservation law is
// DistinctMessages <= Messages, with equality exactly in the unicast
// regime; the per-round count is DistinctMessages / Rounds, since the
// structural count of a node is round-invariant. Like every other counter
// it is exact and bit-identical across executors, parallelism, and lanes.
type Stats struct {
	Rounds           int // verification rounds executed (1 for classic schemes)
	MaxLabelBits     int
	MaxCertBits      int   // κ of Definition 2.1: largest string sent on any port in any round
	MaxPortBits      int   // largest message that crossed a single port in any round
	TotalWireBits    int64 // sum of bits crossing all directed edges, all rounds
	Messages         int   // number of point-to-point messages (rounds × 2m)
	DistinctMessages int64 // structurally distinct payloads minted, all rounds (<= Messages)
}

// Result is the outcome of one verification round. Votes is populated only
// when the round ran with WithStats(true).
type Result struct {
	Accepted bool   // all nodes output true
	Votes    []bool // per-node outputs
	Stats    Stats
}

// AllTrue is the scheme acceptance rule: every node voted true and the
// configuration is nonempty.
func AllTrue(votes []bool) bool {
	for _, v := range votes {
		if !v {
			return false
		}
	}
	return len(votes) > 0
}
