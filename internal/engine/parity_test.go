package engine_test

import (
	"fmt"
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/schemetest"
	"rpls/internal/schemes/uniform"
)

// executors returns one fresh instance of every executor. Scratch reuse is
// part of what the parity test exercises, so the same instances are used
// across all rounds of a subtest.
func executors() []engine.Executor {
	return []engine.Executor{
		engine.NewSequential(),
		engine.NewPool(0),
		engine.NewPool(3), // deliberately unaligned with GOMAXPROCS
		engine.NewGoroutines(),
		engine.NewBatched(),
	}
}

func TestExecutorParity(t *testing.T) {
	rng := prng.New(2026)
	schemes := []struct {
		name string
		s    engine.Scheme
	}{
		{"acyclicity-det", engine.FromPLS(acyclicity.NewPLS())},
		{"acyclicity-rand", engine.FromRPLS(acyclicity.NewRPLS())},
	}
	execs := executors()
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		cfg := graph.NewConfig(graph.RandomTree(n, rng.Fork(uint64(trial))))
		for _, sc := range schemes {
			honest, err := sc.s.Label(cfg)
			if err != nil {
				t.Fatalf("trial %d: %s prover: %v", trial, sc.name, err)
			}
			seed := uint64(100 + trial)
			checkParity(t, execs, sc.s, cfg, honest, seed, fmt.Sprintf("trial %d %s honest", trial, sc.name))

			// Adversarial labels: rejection decisions must agree too.
			adv := schemetest.RandomLabels(rng, n, 24)
			checkParity(t, execs, sc.s, cfg, adv, seed+1, fmt.Sprintf("trial %d %s adversarial", trial, sc.name))

			// Illegal configuration under stale honest labels (transplant).
			if n >= 4 {
				bad := cfg.Clone()
				for attempt := 0; attempt < 50; attempt++ {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v && !bad.G.HasEdge(u, v) {
						if err := bad.G.AddEdge(u, v); err == nil {
							break
						}
					}
				}
				checkParity(t, execs, sc.s, bad, honest, seed+2, fmt.Sprintf("trial %d %s corrupted", trial, sc.name))
			}
		}
	}
}

// TestExecutorParityUniform covers a second randomized scheme whose
// certificates are payload fingerprints rather than compiled label hashes.
func TestExecutorParityUniform(t *testing.T) {
	rng := prng.New(7)
	s := engine.FromRPLS(uniform.NewRPLS())
	execs := executors()
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(30)
		cfg := experiments.BuildUniformConfig(n, 16, uint64(trial+1))
		labels, err := s.Label(cfg)
		if err != nil {
			t.Fatalf("trial %d: prover: %v", trial, err)
		}
		checkParity(t, execs, s, cfg, labels, uint64(trial), fmt.Sprintf("trial %d uniform honest", trial))

		bad := cfg.Clone()
		bad.States[rng.Intn(n)].Data[0] ^= 0xFF
		checkParity(t, execs, s, bad, labels, uint64(trial), fmt.Sprintf("trial %d uniform corrupted", trial))
	}
}

// checkParity runs the same round on every executor and requires identical
// votes and stats. The first executor is the reference.
func checkParity(t *testing.T, execs []engine.Executor, s engine.Scheme, c *graph.Config, labels []core.Label, seed uint64, desc string) {
	t.Helper()
	ref := engine.Verify(s, c, labels, engine.WithSeed(seed),
		engine.WithExecutor(execs[0]), engine.WithStats(true))
	for _, ex := range execs[1:] {
		got := engine.Verify(s, c, labels, engine.WithSeed(seed),
			engine.WithExecutor(ex), engine.WithStats(true))
		if got.Accepted != ref.Accepted {
			t.Fatalf("%s: %s accepted=%v, %s accepted=%v",
				desc, execs[0].Name(), ref.Accepted, ex.Name(), got.Accepted)
		}
		if got.Stats != ref.Stats {
			t.Fatalf("%s: %s stats=%+v, %s stats=%+v",
				desc, execs[0].Name(), ref.Stats, ex.Name(), got.Stats)
		}
		if len(got.Votes) != len(ref.Votes) {
			t.Fatalf("%s: vote lengths differ: %d vs %d", desc, len(ref.Votes), len(got.Votes))
		}
		for v := range ref.Votes {
			if got.Votes[v] != ref.Votes[v] {
				t.Fatalf("%s: node %d votes %v under %s but %v under %s",
					desc, v, ref.Votes[v], execs[0].Name(), got.Votes[v], ex.Name())
			}
		}
	}
}
