package engine_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// Port-exactness tests for the goroutine-per-node executor: each node runs
// concurrently and messages travel per directed edge, so a scheme that
// plants its expected neighbor IDs by port catches any wiring slip.

// echoPLS checks that the runtime delivers exactly the right label on
// exactly the right port: the label of v is its 64-bit ID, and the expected
// neighbor IDs are planted in State.Weights indexed by port.
type echoPLS struct{}

func (echoPLS) Name() string { return "echo" }

func (echoPLS) Label(c *graph.Config) ([]core.Label, error) {
	out := make([]core.Label, c.G.N())
	for v := range out {
		var w bitstring.Writer
		w.WriteUint(c.States[v].ID, 64)
		out[v] = w.String()
	}
	return out, nil
}

func (echoPLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	r := bitstring.NewReader(own)
	id, err := r.ReadUint(64)
	if err != nil || id != view.State.ID {
		return false
	}
	if len(nbrs) != view.Deg {
		return false
	}
	for i, nl := range nbrs {
		nr := bitstring.NewReader(nl)
		nid, err := nr.ReadUint(64)
		if err != nil {
			return false
		}
		if int64(nid) != view.State.Weights[i] {
			return false
		}
	}
	return true
}

// echoRPLS does the same over the certificate path.
type echoRPLS struct{}

func (echoRPLS) Name() string   { return "echo-rand" }
func (echoRPLS) OneSided() bool { return true }

func (echoRPLS) Label(c *graph.Config) ([]core.Label, error) {
	return make([]core.Label, c.G.N()), nil
}

func (echoRPLS) Certs(view core.View, _ core.Label, _ *prng.Rand) []core.Cert {
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		var w bitstring.Writer
		w.WriteUint(view.State.ID, 64)
		certs[i] = w.String()
	}
	return certs
}

func (echoRPLS) Decide(view core.View, _ core.Label, received []core.Cert) bool {
	if len(received) != view.Deg {
		return false
	}
	for i, cert := range received {
		r := bitstring.NewReader(cert)
		nid, err := r.ReadUint(64)
		if err != nil {
			return false
		}
		if int64(nid) != view.State.Weights[i] {
			return false
		}
	}
	return true
}

// wiredConfig plants each node's neighbor IDs into its Weights by port, so
// the echo schemes can verify exact port-level delivery.
func wiredConfig(g *graph.Graph, rng *prng.Rand) *graph.Config {
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	for v := 0; v < g.N(); v++ {
		ws := make([]int64, g.Degree(v))
		for i, h := range g.Adj(v) {
			ws[i] = int64(c.States[h.To].ID)
		}
		c.States[v].Weights = ws
	}
	return c
}

func goroutineOpts(extra ...engine.Option) []engine.Option {
	return append([]engine.Option{
		engine.WithExecutor(engine.NewGoroutines()), engine.WithStats(true)}, extra...)
}

func TestGoroutinesDeliverLabelsOnCorrectPorts(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		c := wiredConfig(g, rng)
		res, err := engine.Run(engine.FromPLS(echoPLS{}), c, goroutineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d (n=%d): port wiring broken, votes = %v", trial, n, res.Votes)
		}
	}
}

func TestGoroutinesDeliverCertsOnCorrectPorts(t *testing.T) {
	rng := prng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		c := wiredConfig(g, rng)
		res, err := engine.Run(engine.FromRPLS(echoRPLS{}), c,
			goroutineOpts(engine.WithSeed(uint64(trial)))...)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d (n=%d): certificate wiring broken", trial, n)
		}
	}
}

func TestGoroutinesStatsCountMessagesAndBits(t *testing.T) {
	g := graph.Path(4) // 3 edges
	c := wiredConfig(g, prng.New(3))
	res, err := engine.Run(engine.FromPLS(echoPLS{}), c, goroutineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 6 { // 2m directed messages
		t.Errorf("Messages = %d, want 6", res.Stats.Messages)
	}
	if res.Stats.MaxLabelBits != 64 {
		t.Errorf("MaxLabelBits = %d, want 64", res.Stats.MaxLabelBits)
	}
	if res.Stats.TotalWireBits != 6*64 {
		t.Errorf("TotalWireBits = %d, want %d", res.Stats.TotalWireBits, 6*64)
	}

	rres, err := engine.Run(engine.FromRPLS(echoRPLS{}), c, goroutineOpts(engine.WithSeed(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Stats.MaxCertBits != 64 {
		t.Errorf("MaxCertBits = %d, want 64", rres.Stats.MaxCertBits)
	}
	if rres.Stats.Messages != 6 {
		t.Errorf("Messages = %d, want 6", rres.Stats.Messages)
	}
}

func TestGoroutinesMatchSequentialEstimate(t *testing.T) {
	// Acceptance (sequential path) and the goroutine executor must agree
	// for identical seeds.
	rng := prng.New(5)
	g := graph.RandomConnected(12, 6, rng)
	c := graph.NewConfig(g)
	for v := range c.States {
		c.States[v].Data = []byte("u")
	}
	c.States[7].Data = []byte("v") // illegal: outcomes now depend on coins
	s := engine.FromRPLS(uniform.NewRPLS())
	labels := make([]core.Label, 12)
	for seed := uint64(0); seed < 50; seed++ {
		concurrent := engine.Verify(s, c, labels, goroutineOpts(engine.WithSeed(seed))...).Accepted
		sequential := engine.Acceptance(s, c, labels, 1, seed) == 1.0
		if concurrent != sequential {
			t.Fatalf("seed %d: concurrent=%v sequential=%v", seed, concurrent, sequential)
		}
	}
}

func TestAcceptanceZeroTrials(t *testing.T) {
	c := graph.NewConfig(graph.Path(2))
	s := engine.FromRPLS(uniform.NewRPLS())
	if got := engine.Acceptance(s, c, make([]core.Label, 2), 0, 0); got != 0 {
		t.Errorf("zero trials should return 0, got %v", got)
	}
}

func TestVotesPinpointRejectingNode(t *testing.T) {
	c := graph.NewConfig(graph.Path(5))
	for v := range c.States {
		c.States[v].Data = []byte("same")
	}
	c.States[2].Data = []byte("diff")
	labels := []core.Label{
		bitstring.FromBytes([]byte("same")),
		bitstring.FromBytes([]byte("same")),
		bitstring.FromBytes([]byte("same")), // claims "same" but state says "diff"
		bitstring.FromBytes([]byte("same")),
		bitstring.FromBytes([]byte("same")),
	}
	res := engine.Verify(engine.FromPLS(uniform.NewPLS()), c, labels, goroutineOpts()...)
	if res.Accepted {
		t.Fatal("inconsistent label accepted")
	}
	if res.Votes[2] {
		t.Error("node 2 should reject: its label does not match its state")
	}
	for _, v := range []int{0, 1, 3, 4} {
		if !res.Votes[v] {
			t.Errorf("node %d should accept (its local view is consistent)", v)
		}
	}
}

func TestSingleNodeGraphAccepts(t *testing.T) {
	// A single node has no neighbors; verification is purely local.
	c := graph.NewConfig(graph.New(1))
	c.States[0].Data = []byte("x")
	res, err := engine.Run(engine.FromPLS(uniform.NewPLS()), c, goroutineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Error("single-node legal config rejected")
	}
}

func TestMaxCertBitsBoundsRoundTransmission(t *testing.T) {
	c := graph.NewConfig(graph.Path(3))
	for v := range c.States {
		c.States[v].Data = []byte{0xAB, 0xCD}
	}
	s := engine.FromRPLS(uniform.NewRPLS())
	labels := make([]core.Label, 3)
	bits := engine.MaxCertBits(s, c, labels, 5, 7)
	if bits <= 0 {
		t.Fatal("no certificate bits measured")
	}
	// Must match what a verification round actually transmits.
	res := engine.Verify(s, c, labels, goroutineOpts(engine.WithSeed(7))...)
	if res.Stats.MaxCertBits > bits {
		t.Errorf("round transmitted %d bits but MaxCertBits reported %d",
			res.Stats.MaxCertBits, bits)
	}
}
