package engine_test

import (
	"strings"
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/spanningtree"
)

func treeConfig(n int, seed uint64) *graph.Config {
	return experiments.BuildTreeConfig(n, seed)
}

func TestRunAcceptsLegalConfiguration(t *testing.T) {
	cfg := treeConfig(32, 5)
	for _, s := range []engine.Scheme{
		engine.FromPLS(spanningtree.NewPLS()),
		engine.FromRPLS(spanningtree.NewRPLS()),
	} {
		res, err := engine.Run(s, cfg, engine.WithStats(true))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !res.Accepted {
			t.Fatalf("%s rejected a legal configuration; votes = %v", s.Name(), res.Votes)
		}
		if len(res.Votes) != cfg.G.N() {
			t.Fatalf("%s: %d votes for %d nodes", s.Name(), len(res.Votes), cfg.G.N())
		}
		if res.Stats.Messages != 2*cfg.G.M() {
			t.Fatalf("%s: %d messages, want %d", s.Name(), res.Stats.Messages, 2*cfg.G.M())
		}
	}
}

func TestVotesOmittedWithoutStats(t *testing.T) {
	cfg := treeConfig(16, 5)
	res, err := engine.Run(engine.FromPLS(spanningtree.NewPLS()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Votes != nil {
		t.Fatalf("votes returned without WithStats: %v", res.Votes)
	}
}

func TestEstimateMatchesSeededRounds(t *testing.T) {
	cfg := treeConfig(24, 9)
	s := engine.FromRPLS(spanningtree.NewRPLS())
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
		engine.WithTrials(50), engine.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Acceptance != 1.0 {
		t.Fatalf("legal acceptance %v, want 1.0 (one-sided)", sum.Acceptance)
	}
	// Trial t must use seed+t: re-run each round explicitly and compare.
	accepted := 0
	for trial := 0; trial < 50; trial++ {
		if engine.Verify(s, cfg, labels, engine.WithSeed(3+uint64(trial))).Accepted {
			accepted++
		}
	}
	if accepted != sum.Accepted {
		t.Fatalf("Estimate accepted %d, explicit rounds accepted %d", sum.Accepted, accepted)
	}
}

func TestEstimateZeroTrials(t *testing.T) {
	cfg := treeConfig(8, 1)
	s := engine.FromRPLS(spanningtree.NewRPLS())
	sum, err := engine.Estimate(s, cfg, engine.WithTrials(0))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 0 || sum.Acceptance != 0 {
		t.Fatalf("zero-trial summary = %+v", sum)
	}
}

func TestLabelCountMismatch(t *testing.T) {
	cfg := treeConfig(8, 1)
	s := engine.FromRPLS(spanningtree.NewRPLS())
	short := make([]core.Label, 3)
	if _, err := engine.Run(s, cfg, engine.WithLabels(short)); err == nil {
		t.Fatal("Run accepted a 3-label assignment for an 8-node configuration")
	}
	if _, err := engine.Estimate(s, cfg, engine.WithLabels(short)); err == nil {
		t.Fatal("Estimate accepted a 3-label assignment for an 8-node configuration")
	}
}

func TestSweep(t *testing.T) {
	s := engine.FromRPLS(spanningtree.NewRPLS())
	build := func(n int, seed uint64) (*graph.Config, error) { return treeConfig(n, seed), nil }
	points, err := engine.Sweep(engine.Fixed(s), build, []int{8, 16, 32},
		engine.WithTrials(5), engine.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	for i, p := range points {
		if p.Summary.Acceptance != 1.0 {
			t.Errorf("point %d: acceptance %v, want 1.0", i, p.Summary.Acceptance)
		}
		if p.Summary.MaxCertBits <= 0 {
			t.Errorf("point %d: no certificate bits measured", i)
		}
		if i > 0 && p.N <= points[i-1].N {
			t.Errorf("point %d: sizes not increasing: %d after %d", i, p.N, points[i-1].N)
		}
	}
}

func TestMaxCertBitsDeterministicIsLabelBits(t *testing.T) {
	// Executors send the node's label on every port, so the Definition 2.1
	// verification complexity of a deterministic scheme is the largest label
	// actually transmitted — not zero (the historic silent-zero bug).
	cfg := treeConfig(8, 1)
	s := engine.FromPLS(spanningtree.NewPLS())
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := core.MaxBits(labels)
	if got := engine.MaxCertBits(s, cfg, labels, 3, 1); got != want {
		t.Fatalf("deterministic MaxCertBits = %d, want max label bits %d", got, want)
	}
}

func TestAdapters(t *testing.T) {
	det := spanningtree.NewPLS()
	rand := spanningtree.NewRPLS()
	ds, rs := engine.FromPLS(det), engine.FromRPLS(rand)
	if !ds.Deterministic() || rs.Deterministic() {
		t.Fatal("Deterministic flags wrong")
	}
	if got, ok := engine.AsPLS(ds); !ok || got.Name() != det.Name() {
		t.Fatal("AsPLS does not round-trip")
	}
	if got, ok := engine.AsRPLS(rs); !ok || got.Name() != rand.Name() {
		t.Fatal("AsRPLS does not round-trip")
	}
	if _, ok := engine.AsPLS(rs); ok {
		t.Fatal("AsPLS accepted a randomized adapter")
	}
	if _, ok := engine.AsRPLS(ds); ok {
		t.Fatal("AsRPLS accepted a deterministic adapter")
	}
	// The degenerate certificate: the label on every port.
	cfg := treeConfig(8, 1)
	labels, err := ds.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view := core.ViewOf(cfg, 0)
	certs := ds.Certs(view, labels[0], prng.New(1))
	if len(certs) != view.Deg {
		t.Fatalf("%d certs for degree %d", len(certs), view.Deg)
	}
	for _, c := range certs {
		if !c.Equal(labels[0]) {
			t.Fatal("deterministic cert differs from label")
		}
	}
}

func TestRegistry(t *testing.T) {
	entries := engine.Entries()
	if len(entries) < 11 {
		t.Fatalf("only %d registered schemes", len(entries))
	}
	for i, e := range entries {
		if e.Name == "" || e.Description == "" {
			t.Errorf("entry %d has empty name or description", i)
		}
		if i > 0 && entries[i-1].Name >= e.Name {
			t.Errorf("entries not sorted: %q before %q", entries[i-1].Name, e.Name)
		}
	}
	for _, name := range []string{
		"spanningtree", "acyclicity", "acyclicity-compact", "mst", "biconnectivity",
		"cycleatleast", "cycleatmost", "flow", "stconn", "leader", "uniform",
		"coloring", "symmetry",
	} {
		if _, ok := engine.Lookup(name); !ok {
			t.Errorf("scheme %q not registered", name)
		}
	}
	if _, ok := engine.Lookup("nonsense"); ok {
		t.Error("Lookup found a scheme that should not exist")
	}
	// Parameterized constructors build with explicit Params.
	e, _ := engine.Lookup("cycleatleast")
	if !e.DetParameterized || !e.RandParameterized {
		t.Error("cycleatleast should be parameterized")
	}
	if s := e.Det(engine.Params{C: 8}); !strings.Contains(s.Name(), "8") {
		t.Errorf("cycleatleast Det(C=8) named %q, want the threshold in the name", s.Name())
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(desc string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", desc)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() {
		engine.Register(engine.Entry{Name: "spanningtree"})
	})
	mustPanic("empty name", func() {
		engine.Register(engine.Entry{})
	})
}
