package engine_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// The batched executor's performance contract, asserted dynamically: the
// deterministic fallback stays zero-alloc once warm (the //pls:hotpath
// static half is plsvet's hotalloc analyzer), the lane path amortizes the
// schemes' per-certificate allocations across a whole batch, and batching
// actually delivers a wall-clock multiple over Sequential on the
// estimator workload the E14/E15 benchmarks are built from.

// TestBatchedRoundAllocs mirrors TestSequentialRoundAllocs for the fourth
// executor: a deterministic scheme rides the embedded Sequential, so a warm
// batched round must allocate nothing.
func TestBatchedRoundAllocs(t *testing.T) {
	cfg := graph.NewConfig(graph.RandomTree(128, prng.New(3)))
	s := flatScheme{}
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.NewBatched()
	exec.Round(s, cfg, labels, 1) // warm the scratch buffers
	if n := testing.AllocsPerRun(20, func() { exec.Round(s, cfg, labels, 2) }); n != 0 {
		t.Fatalf("warm deterministic Batched round allocates %v times, want 0", n)
	}
}

// batchedWorkload is the estimator call the amortization and speedup
// assertions compare across executors: a boosted uniform scheme — the
// E15 false-alarm workload — on a small legal configuration.
func batchedWorkload(t testing.TB, exec engine.Executor, trials int) engine.Summary {
	s := core.Boost(uniform.NewRPLS(), 2)
	cfg := graph.NewConfig(graph.RandomTree(12, prng.New(9)))
	for v := range cfg.States {
		cfg.States[v].Data = []byte{0xC3, 0x5A, 0x96, 0x0F}
	}
	scheme := engine.FromRPLS(s)
	labels, err := scheme.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := engine.Estimate(scheme, cfg, engine.WithLabels(labels),
		engine.WithTrials(trials), engine.WithSeed(5),
		engine.WithExecutor(exec), engine.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestBatchedAllocAmortization asserts the point of the bit-plane batch:
// certificate framing allocates per slab, not per (trial, node, port), so
// a 64-trial estimate under Batched must spend well under half of
// Sequential's allocations for the same workload (in practice it is far
// lower; the bound leaves room for runtime noise).
func TestBatchedAllocAmortization(t *testing.T) {
	const trials = 64
	seqExec := engine.NewSequential()
	batExec := engine.NewBatched()
	seq := testing.AllocsPerRun(5, func() { batchedWorkload(t, seqExec, trials) })
	bat := testing.AllocsPerRun(5, func() { batchedWorkload(t, batExec, trials) })
	if bat > seq/2 {
		t.Fatalf("batched estimate allocates %v times vs sequential %v; want < half", bat, seq)
	}
}

// batchedSpeedupFloor is the asserted Sequential/Batched wall-clock ratio.
// The E14/E15 benchgate targets claim ≥10x against the pre-batching
// baseline; executor-vs-executor on identical code the conservative floor
// is 2x, far enough below the measured multiple (~3x) to hold on noisy CI.
const batchedSpeedupFloor = 2.0

// TestBatchedSpeedupFloor is the benchmark-backed regression guard: it
// measures the same estimator workload under Sequential and Batched with
// testing.Benchmark and asserts the speedup floor, retrying to shrug off
// scheduler noise before declaring a regression.
func TestBatchedSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	const trials = 256
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		seq := testing.Benchmark(func(b *testing.B) {
			exec := engine.NewSequential()
			for i := 0; i < b.N; i++ {
				batchedWorkload(b, exec, trials)
			}
		})
		bat := testing.Benchmark(func(b *testing.B) {
			exec := engine.NewBatched()
			for i := 0; i < b.N; i++ {
				batchedWorkload(b, exec, trials)
			}
		})
		if ratio := float64(seq.NsPerOp()) / float64(bat.NsPerOp()); ratio > best {
			best = ratio
		}
		if best >= batchedSpeedupFloor {
			break
		}
	}
	if best < batchedSpeedupFloor {
		t.Fatalf("Sequential/Batched speedup %.2fx, want >= %.1fx", best, batchedSpeedupFloor)
	}
	t.Logf("Sequential/Batched speedup: %.2fx", best)
}
