package engine_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// The golden-bits contract: wire accounting is part of the determinism
// guarantee. For the same seed, all four executors must report identical
// TotalBits/MaxPortBits/AvgBitsPerEdge, at every parallelism level, for
// deterministic and randomized schemes alike — and the numbers must be
// nonzero, or the det-vs-rand communication gap is unmeasurable.

func wireSchemes(t *testing.T) []struct {
	name   string
	s      engine.Scheme
	cfg    *graph.Config
	labels []core.Label
} {
	t.Helper()
	out := []struct {
		name   string
		s      engine.Scheme
		cfg    *graph.Config
		labels []core.Label
	}{}
	add := func(name string, s engine.Scheme, cfg *graph.Config) {
		labels, err := s.Label(cfg)
		if err != nil {
			t.Fatalf("%s prover: %v", name, err)
		}
		out = append(out, struct {
			name   string
			s      engine.Scheme
			cfg    *graph.Config
			labels []core.Label
		}{name, s, cfg, labels})
	}
	add("spanningtree-det", engine.FromPLS(spanningtree.NewPLS()), experiments.BuildTreeConfig(36, 3))
	add("uniform-det", engine.FromPLS(uniform.NewPLS()), experiments.BuildUniformConfig(24, 32, 5))
	add("uniform-rand", engine.FromRPLS(uniform.NewRPLS()), experiments.BuildUniformConfig(24, 32, 5))
	add("spanningtree-compiled", engine.FromRPLS(core.Compile(spanningtree.NewPLS())), experiments.BuildTreeConfig(36, 3))
	return out
}

// TestGoldenWireBitsAcrossExecutors pins the satellite fix: the same seed
// yields bit-identical wire counters on every executor at every
// parallelism level, and the counters are nonzero for det and rand alike.
func TestGoldenWireBitsAcrossExecutors(t *testing.T) {
	// The multiplicity dimension: every cell of the executor × parallelism
	// matrix must also be byte-identical under every message-multiplicity
	// cap, and the distinct-message meter must obey its conservation law
	// (DistinctMessages <= Messages, with equality only at unicast).
	for _, sc := range wireSchemes(t) {
		for _, mult := range []int{0, 1, 2, 4} {
			var ref engine.Summary
			first := true
			for _, mkExec := range []func() engine.Executor{
				func() engine.Executor { return engine.NewSequential() },
				func() engine.Executor { return engine.NewPool(0) },
				func() engine.Executor { return engine.NewGoroutines() },
				func() engine.Executor { return engine.NewBatched() },
			} {
				for _, p := range []int{1, 4, 16} {
					exec := mkExec()
					sum, err := engine.Estimate(sc.s, sc.cfg, engine.WithLabels(sc.labels),
						engine.WithTrials(24), engine.WithSeed(9),
						engine.WithMultiplicity(mult),
						engine.WithExecutor(exec), engine.WithParallelism(p))
					if err != nil {
						t.Fatal(err)
					}
					if first {
						ref, first = sum, false
						if ref.TotalBits <= 0 || ref.MaxPortBits <= 0 || ref.AvgBitsPerEdge <= 0 {
							t.Fatalf("%s m=%d: wire counters not measured: %+v", sc.name, mult, ref)
						}
						if ref.TotalMessages != int64(ref.Trials)*int64(2*sc.cfg.G.M()) {
							t.Fatalf("%s m=%d: %d messages, want trials × 2m = %d",
								sc.name, mult, ref.TotalMessages, ref.Trials*2*sc.cfg.G.M())
						}
						if ref.MaxCertBits != ref.MaxPortBits {
							t.Fatalf("%s m=%d: κ %d != max port bits %d (one message per port per round)",
								sc.name, mult, ref.MaxCertBits, ref.MaxPortBits)
						}
						if ref.TotalDistinct <= 0 || ref.TotalDistinct > ref.TotalMessages {
							t.Fatalf("%s m=%d: distinct messages %d outside (0, messages=%d]",
								sc.name, mult, ref.TotalDistinct, ref.TotalMessages)
						}
						continue
					}
					if sum != ref {
						t.Fatalf("%s m=%d: %s p=%d wire summary %+v != reference %+v",
							sc.name, mult, exec.Name(), p, sum, ref)
					}
				}
			}
		}
	}
}

// TestDetWireCostIsLabelBroadcast checks the deterministic convention: a
// det round ships labels[v] over every one of v's ports, so the exact total
// is Σ_v deg(v)·|label(v)| and κ is the largest transmitted label.
func TestDetWireCostIsLabelBroadcast(t *testing.T) {
	cfg := experiments.BuildTreeConfig(20, 7)
	s := engine.FromPLS(spanningtree.NewPLS())
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	wantPort := 0
	for v := 0; v < cfg.G.N(); v++ {
		deg := cfg.G.Degree(v)
		want += int64(deg * labels[v].Len())
		if deg > 0 && labels[v].Len() > wantPort {
			wantPort = labels[v].Len()
		}
	}
	res := engine.Verify(s, cfg, labels, engine.WithExecutor(engine.NewSequential()))
	if res.Stats.TotalWireBits != want {
		t.Errorf("TotalWireBits = %d, want Σ deg·|label| = %d", res.Stats.TotalWireBits, want)
	}
	if res.Stats.MaxPortBits != wantPort || res.Stats.MaxCertBits != wantPort {
		t.Errorf("port/cert bits = %d/%d, want %d",
			res.Stats.MaxPortBits, res.Stats.MaxCertBits, wantPort)
	}
	if res.Stats.Messages != 2*cfg.G.M() {
		t.Errorf("Messages = %d, want 2m = %d", res.Stats.Messages, 2*cfg.G.M())
	}
}

// TestDetRandGapMeasurable is the headline measurement in miniature: on
// the same instance, the uniform scheme's deterministic per-edge cost is
// the payload λ while the randomized fingerprint costs O(log λ) — the
// engine must expose a strictly larger deterministic AvgBitsPerEdge.
func TestDetRandGapMeasurable(t *testing.T) {
	cfg := experiments.BuildUniformConfig(16, 128, 11) // λ = 1024 bits
	det := engine.FromPLS(uniform.NewPLS())
	rand := engine.FromRPLS(uniform.NewRPLS())
	detSum, err := engine.Estimate(det, cfg, engine.WithTrials(1), engine.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	randSum, err := engine.Estimate(rand, cfg, engine.WithTrials(16), engine.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if detSum.AvgBitsPerEdge != 1024 {
		t.Errorf("det per-edge cost %v, want the 1024-bit payload", detSum.AvgBitsPerEdge)
	}
	if randSum.AvgBitsPerEdge <= 0 || randSum.AvgBitsPerEdge*8 > detSum.AvgBitsPerEdge {
		t.Errorf("rand per-edge cost %v not ≪ det %v", randSum.AvgBitsPerEdge, detSum.AvgBitsPerEdge)
	}
}

// flatScheme is a deterministic scheme whose Decide allocates nothing, so
// the warm Sequential round isolates the executor's own hot path: scratch
// reuse plus the wire counters must not allocate at all.
type flatScheme struct{}

func (flatScheme) Name() string        { return "flat" }
func (flatScheme) Deterministic() bool { return true }
func (flatScheme) OneSided() bool      { return true }
func (flatScheme) Label(c *graph.Config) ([]core.Label, error) {
	labels := make([]core.Label, c.G.N())
	for v := range labels {
		labels[v] = bitstring.FromBits([]byte{1, 0, 1})
	}
	return labels, nil
}
func (flatScheme) Certs(core.View, core.Label, *prng.Rand) []core.Cert { return nil }
func (flatScheme) Decide(view core.View, own core.Label, received []core.Cert) bool {
	ok := true
	for _, r := range received {
		ok = ok && r.Len() == own.Len()
	}
	return ok
}

// TestSequentialRoundAllocs is the dynamic half of the hot-path contract:
// once scratch is warm, a deterministic Sequential round — wire metering
// included — performs zero allocations. The static half is plsvet's
// hotalloc analyzer over the //pls:hotpath annotations, and the benchgate
// allocation band locks the measured value in CI.
func TestSequentialRoundAllocs(t *testing.T) {
	cfg := graph.NewConfig(graph.RandomTree(128, prng.New(3)))
	s := flatScheme{}
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.NewSequential()
	exec.Round(s, cfg, labels, 1) // warm the scratch buffers
	if n := testing.AllocsPerRun(20, func() { exec.Round(s, cfg, labels, 2) }); n != 0 {
		t.Fatalf("warm deterministic Sequential round allocates %v times, want 0", n)
	}
}
