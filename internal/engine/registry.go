package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Params parameterizes scheme construction for predicates that need more
// than the configuration itself. Fields are zero unless the driver supplies
// them; entries whose constructors require a semantic parameter set the
// corresponding *Parameterized flag so generic drivers can skip them.
type Params struct {
	K int // flow value (flow) or connectivity (stconn)
	C int // cycle-length threshold (cycleatleast, cycleatmost)
	M int // edge count (coloring's randomized scheme sizes its field by m)
}

// Entry describes one registered predicate: constructors for its
// deterministic and randomized schemes, either of which may be nil.
type Entry struct {
	Name        string
	Description string
	// Det constructs the deterministic scheme (nil when none exists).
	Det func(p Params) Scheme
	// Rand constructs the randomized scheme (nil when none exists).
	Rand func(p Params) Scheme
	// DetParameterized / RandParameterized report that the constructor
	// requires semantic Params (K, C, M) chosen per instance; generic
	// drivers should skip those variants unless they can supply them.
	DetParameterized  bool
	RandParameterized bool
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Entry{}
)

// Register adds an entry to the scheme registry. Each internal/schemes
// package self-registers from its init function, so any binary importing a
// scheme package can resolve it by name. It panics on an empty name or a
// duplicate registration — both are programming errors caught at init.
func Register(e Entry) {
	if e.Name == "" {
		panic("engine: Register with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of scheme %q", e.Name))
	}
	registry[e.Name] = e
}

// Lookup finds a registered entry by name.
func Lookup(name string) (Entry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Entries returns every registered entry, sorted by name.
func Entries() []Entry {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Entry, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
