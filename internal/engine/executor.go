package engine

import (
	goruntime "runtime"
	"sync"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Executor runs one synchronous verification round: every node sends one
// string per incident port, receives one string per port, and outputs a
// boolean. Implementations may keep scratch buffers between rounds, so a
// single Executor value must not be shared between concurrent callers.
type Executor interface {
	// Name identifies the executor in reports and benchmarks.
	Name() string
	// Round executes the round. The returned votes slice is scratch owned by
	// the executor, valid only until the next Round call.
	Round(s Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats)
}

// scratch holds the buffers an executor reuses across rounds: one receive
// window per node carved out of a single flat slice, the per-node cert
// slices, and the vote vector. Reusing them keeps steady-state rounds free
// of per-round allocations on the executor side.
type scratch struct {
	offs  []int // offs[v] is the start of v's receive window; offs[n] = 2m
	recv  []core.Cert
	certs [][]core.Cert
	votes []bool
}

// ensure resizes the scratch for the graph. Offsets are recomputed every
// round because configurations are mutated in place by corruption helpers.
// The makes below are capacity-guarded grows: they fire only when the graph
// outgrows the scratch, so steady-state rounds never reach them.
//
//pls:hotpath
func (sc *scratch) ensure(g *graph.Graph) {
	n := g.N()
	if cap(sc.offs) < n+1 {
		sc.offs = make([]int, n+1) //plsvet:allow hotalloc — capacity-guarded grow, amortized across rounds
	}
	sc.offs = sc.offs[:n+1]
	total := 0
	for v := 0; v < n; v++ {
		sc.offs[v] = total
		total += g.Degree(v)
	}
	sc.offs[n] = total
	if cap(sc.recv) < total {
		sc.recv = make([]core.Cert, total) //plsvet:allow hotalloc — capacity-guarded grow, amortized across rounds
	}
	sc.recv = sc.recv[:total]
	if cap(sc.certs) < n {
		sc.certs = make([][]core.Cert, n) //plsvet:allow hotalloc — capacity-guarded grow, amortized across rounds
	}
	sc.certs = sc.certs[:n]
	if cap(sc.votes) < n {
		sc.votes = make([]bool, n) //plsvet:allow hotalloc — capacity-guarded grow, amortized across rounds
	}
	sc.votes = sc.votes[:n]
}

// window returns node v's receive buffer, sized to its degree.
//
//pls:hotpath
func (sc *scratch) window(v int) []core.Cert {
	return sc.recv[sc.offs[v]:sc.offs[v+1]]
}

// gather fills node v's receive window from the generated certificates (or,
// for deterministic schemes, from the neighbors' labels) and returns it.
//
//pls:hotpath
func (sc *scratch) gather(det bool, c *graph.Config, labels []core.Label, v int) []core.Cert {
	recv := sc.window(v)
	for i := range recv {
		h := c.G.Neighbor(v, i+1)
		if det {
			recv[i] = labels[h.To]
			continue
		}
		certs := sc.certs[h.To]
		if h.RevPort-1 < len(certs) {
			recv[i] = certs[h.RevPort-1]
		} else {
			recv[i] = core.Cert{}
		}
	}
	return recv
}

// sendStats accumulates the cost of everything node v puts on the wire.
// It only bumps scalar counters on the caller's Stats. mult is the
// scheme's multiplicity cap (0 = unconstrained); the structural
// distinct-message count is derived from it, never from payload bytes.
//
//pls:hotpath
func sendStats(det bool, mult int, c *graph.Config, labels []core.Label, certs []core.Cert, v int, st *Stats) {
	deg := c.G.Degree(v)
	st.Messages += deg
	st.DistinctMessages += distinctCount(det, mult, deg)
	if det {
		// The message on every port is the node's label: κ (Definition 2.1)
		// is the largest label actually transmitted, not zero.
		b := labels[v].Len()
		st.TotalWireBits += int64(deg * b)
		if deg > 0 {
			if b > st.MaxCertBits {
				st.MaxCertBits = b
			}
			if b > st.MaxPortBits {
				st.MaxPortBits = b
			}
		}
		return
	}
	if len(certs) > deg {
		certs = certs[:deg]
	}
	for _, cert := range certs {
		b := cert.Len()
		st.TotalWireBits += int64(b)
		if b > st.MaxCertBits {
			st.MaxCertBits = b
		}
		if b > st.MaxPortBits {
			st.MaxPortBits = b
		}
	}
}

// Sequential is the allocation-amortized fast path: one goroutine, buffers
// reused across rounds. It backs Monte-Carlo estimation, monitors, and
// benchmarks.
type Sequential struct{ sc scratch }

// NewSequential returns a sequential executor with empty scratch.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Executor.
func (e *Sequential) Name() string { return "sequential" }

// Clone implements Cloneable: a fresh sequential executor with empty scratch.
func (e *Sequential) Clone() Executor { return NewSequential() }

// Round implements Executor. This is the Sequential det hot path: the
// plsvet hotalloc analyzer rejects allocating constructs in every
// //pls:hotpath function at the AST level, and the benchgate allocation
// band locks the measured zero-alloc steady state in CI — together they
// replace the old ad-hoc "stays 0-alloc" assertion comments.
//
//pls:hotpath
func (e *Sequential) Round(s Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	if t := Rounds(s); t > 1 {
		return e.multiRound(s.(MultiRound), t, c, labels, seed)
	}
	n := c.G.N()
	e.sc.ensure(c.G)
	st := Stats{Rounds: 1, MaxLabelBits: core.MaxBits(labels)}
	det, mult := s.Deterministic(), Multiplicity(s)
	if !det {
		root := prng.New(seed)
		for v := 0; v < n; v++ {
			e.sc.certs[v] = s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
		}
	}
	for v := 0; v < n; v++ {
		sendStats(det, mult, c, labels, e.sc.certs[v], v, &st)
	}
	for v := 0; v < n; v++ {
		recv := e.sc.gather(det, c, labels, v)
		e.sc.votes[v] = s.Decide(core.ViewOf(c, v), labels[v], recv)
	}
	return e.sc.votes, st
}

// multiRound runs the t-round lockstep: per round, every node derives its
// round strings (from a per-round identical coin stream), the metered
// messages land in the receivers' windows, and each received string is
// appended to its directed edge's shard list; after the last round every
// node decides from the per-port concatenations. The shard lists are
// allocated per call — the zero-alloc guarantee covers only the classic
// single-round deterministic path.
func (e *Sequential) multiRound(mr MultiRound, rounds int, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	n := c.G.N()
	e.sc.ensure(c.G)
	st := Stats{Rounds: rounds, MaxLabelBits: core.MaxBits(labels)}
	mult := Multiplicity(mr)
	shards := newShardAcc(e.sc.offs[n], rounds)
	root := prng.New(seed)
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			e.sc.certs[v] = mr.RoundCerts(r, core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
		}
		for v := 0; v < n; v++ {
			sendStats(false, mult, c, labels, e.sc.certs[v], v, &st)
			shards.gather(&e.sc, c, v)
		}
	}
	for v := 0; v < n; v++ {
		recv := shards.reassemble(&e.sc, v)
		e.sc.votes[v] = mr.Decide(core.ViewOf(c, v), labels[v], recv)
	}
	return e.sc.votes, st
}

// shardAcc accumulates, per directed edge, the strings received across the
// rounds of a multi-round execution, in round order.
type shardAcc [][]core.Cert

func newShardAcc(edges, rounds int) shardAcc {
	acc := make(shardAcc, edges)
	for i := range acc {
		acc[i] = make([]core.Cert, 0, rounds)
	}
	return acc
}

// gather appends the current round's messages arriving at node v (read
// from the senders' cert slices) to v's windows. Distinct receivers own
// disjoint windows, so concurrent gathers for distinct v are race-free.
func (acc shardAcc) gather(sc *scratch, c *graph.Config, v int) {
	recv := sc.gather(false, c, nil, v)
	base := sc.offs[v]
	for i, msg := range recv {
		acc[base+i] = append(acc[base+i], msg)
	}
}

// reassemble concatenates each of v's per-port shard lists, in round
// order, into v's receive window and returns it.
func (acc shardAcc) reassemble(sc *scratch, v int) []core.Cert {
	recv := sc.window(v)
	base := sc.offs[v]
	for i := range recv {
		recv[i] = bitstring.Concat(acc[base+i]...)
	}
	return recv
}

// Pool shards nodes across a fixed set of workers with no per-edge
// channels: a cert-generation phase, a barrier, and a decide phase. Votes
// and stats are identical to the other executors for the same seed because
// node v's coins are always prng.New(seed).Fork(v).
type Pool struct {
	workers int
	sc      scratch
	parts   []Stats // per-shard partial stats, merged after the decide phase
}

// NewPool returns a pool executor with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Name implements Executor.
func (e *Pool) Name() string { return "pool" }

// Clone implements Cloneable: same worker count, independent scratch.
func (e *Pool) Clone() Executor { return &Pool{workers: e.workers} }

// shardWorkers clamps the worker count to the node count and sizes the
// per-shard partial stats.
func (e *Pool) shardWorkers(n int) int {
	w := e.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if cap(e.parts) < w {
		e.parts = make([]Stats, w)
	}
	e.parts = e.parts[:w]
	return w
}

// mergeParts folds the per-shard partial stats into a final Stats.
func (e *Pool) mergeParts(st Stats) Stats {
	for _, p := range e.parts {
		st.Messages += p.Messages
		st.DistinctMessages += p.DistinctMessages
		st.TotalWireBits += p.TotalWireBits
		if p.MaxCertBits > st.MaxCertBits {
			st.MaxCertBits = p.MaxCertBits
		}
		if p.MaxPortBits > st.MaxPortBits {
			st.MaxPortBits = p.MaxPortBits
		}
	}
	return st
}

// Round implements Executor.
func (e *Pool) Round(s Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	if t := Rounds(s); t > 1 {
		return e.multiRound(s.(MultiRound), t, c, labels, seed)
	}
	n := c.G.N()
	e.sc.ensure(c.G)
	w := e.shardWorkers(n)
	det, mult := s.Deterministic(), Multiplicity(s)

	var wg sync.WaitGroup
	if !det {
		wg.Add(w)
		for shard := 0; shard < w; shard++ {
			go func(shard int) {
				defer wg.Done()
				root := prng.New(seed)
				for v := shard * n / w; v < (shard+1)*n/w; v++ {
					e.sc.certs[v] = s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
				}
			}(shard)
		}
		wg.Wait() // barrier: deciding needs every node's certificates
	}

	wg.Add(w)
	for shard := 0; shard < w; shard++ {
		go func(shard int) {
			defer wg.Done()
			st := Stats{}
			for v := shard * n / w; v < (shard+1)*n/w; v++ {
				sendStats(det, mult, c, labels, e.sc.certs[v], v, &st)
				recv := e.sc.gather(det, c, labels, v)
				e.sc.votes[v] = s.Decide(core.ViewOf(c, v), labels[v], recv)
			}
			e.parts[shard] = st
		}(shard)
	}
	wg.Wait()

	return e.sc.votes, e.mergeParts(Stats{Rounds: 1, MaxLabelBits: core.MaxBits(labels)})
}

// multiRound runs the t-round lockstep with the pool's phase structure,
// once per round: a cert-generation phase, a barrier (gathering needs every
// sender's strings), then a metering + gather phase sharded by receiver
// (windows partition the directed edges, so shard appends are race-free).
// A final parallel phase reassembles and decides.
func (e *Pool) multiRound(mr MultiRound, rounds int, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	n := c.G.N()
	e.sc.ensure(c.G)
	w := e.shardWorkers(n)
	mult := Multiplicity(mr)
	for i := range e.parts {
		e.parts[i] = Stats{}
	}
	shards := newShardAcc(e.sc.offs[n], rounds)

	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(w)
		for shard := 0; shard < w; shard++ {
			go func(shard, r int) {
				defer wg.Done()
				root := prng.New(seed)
				for v := shard * n / w; v < (shard+1)*n/w; v++ {
					e.sc.certs[v] = mr.RoundCerts(r, core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
				}
			}(shard, r)
		}
		wg.Wait() // barrier: gathering needs every node's round strings

		wg.Add(w)
		for shard := 0; shard < w; shard++ {
			go func(shard int) {
				defer wg.Done()
				st := &e.parts[shard]
				for v := shard * n / w; v < (shard+1)*n/w; v++ {
					sendStats(false, mult, c, labels, e.sc.certs[v], v, st)
					shards.gather(&e.sc, c, v)
				}
			}(shard)
		}
		wg.Wait() // barrier: the next round overwrites the cert slices
	}

	wg.Add(w)
	for shard := 0; shard < w; shard++ {
		go func(shard int) {
			defer wg.Done()
			for v := shard * n / w; v < (shard+1)*n/w; v++ {
				recv := shards.reassemble(&e.sc, v)
				e.sc.votes[v] = mr.Decide(core.ViewOf(c, v), labels[v], recv)
			}
		}(shard)
	}
	wg.Wait()

	return e.sc.votes, e.mergeParts(Stats{Rounds: rounds, MaxLabelBits: core.MaxBits(labels)})
}

// Goroutines is the model-faithful execution of §2.1: each node runs as its
// own goroutine and messages travel over one buffered channel per directed
// edge, so a verifier physically cannot read anything but its own state,
// its own label, and what arrived on its ports. Kept for fidelity tests;
// Sequential and Pool are the fast paths.
type Goroutines struct {
	sc       scratch
	certMax  []int
	wireSent []int64
}

// NewGoroutines returns the goroutine-per-node executor.
func NewGoroutines() *Goroutines { return &Goroutines{} }

// Name implements Executor.
func (e *Goroutines) Name() string { return "goroutines" }

// Clone implements Cloneable: a fresh goroutine-per-node executor.
func (e *Goroutines) Clone() Executor { return NewGoroutines() }

// ensureCounters sizes the per-node send counters.
func (e *Goroutines) ensureCounters(n int) {
	if cap(e.certMax) < n {
		e.certMax = make([]int, n)
		e.wireSent = make([]int64, n)
	}
	e.certMax = e.certMax[:n]
	e.wireSent = e.wireSent[:n]
}

// Round implements Executor.
func (e *Goroutines) Round(s Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	if t := Rounds(s); t > 1 {
		return e.multiRound(s.(MultiRound), t, c, labels, seed)
	}
	n := c.G.N()
	e.sc.ensure(c.G)
	e.ensureCounters(n)
	in := buildChannels(c.G)
	det := s.Deterministic()
	root := prng.New(seed)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			view := core.ViewOf(c, v)
			var certs []core.Cert
			if !det {
				certs = s.Certs(view, labels[v], root.Fork(uint64(v)))
			}
			maxCert, wire := 0, int64(0)
			for i, h := range c.G.AdjView(v) {
				var msg core.Cert
				if det {
					msg = labels[v]
				} else if i < len(certs) {
					msg = certs[i]
				}
				if b := msg.Len(); b > maxCert {
					maxCert = b
				}
				wire += int64(msg.Len())
				in[h.To][h.RevPort-1] <- msg
			}
			e.certMax[v], e.wireSent[v] = maxCert, wire
			recv := e.sc.window(v)
			for i := range recv {
				recv[i] = <-in[v][i]
			}
			e.sc.votes[v] = s.Decide(view, labels[v], recv)
		}(v)
	}
	wg.Wait()

	st := Stats{Rounds: 1, MaxLabelBits: core.MaxBits(labels)}
	mult := Multiplicity(s)
	for v := 0; v < n; v++ {
		st.Messages += c.G.Degree(v)
		st.DistinctMessages += distinctCount(det, mult, c.G.Degree(v))
		st.TotalWireBits += e.wireSent[v]
		// certMax[v] is the largest message v sent — the label for
		// deterministic schemes — so it feeds κ and the port maximum alike.
		if e.certMax[v] > st.MaxCertBits {
			st.MaxCertBits = e.certMax[v]
		}
		if e.certMax[v] > st.MaxPortBits {
			st.MaxPortBits = e.certMax[v]
		}
	}
	return e.sc.votes, st
}

// multiRound keeps the model-faithful shape over t rounds: every node runs
// as its own goroutine, alternating a send-all phase and a receive-all
// phase per round over the same one-channel-per-directed-edge fabric. The
// capacity-1 buffers cannot deadlock: the node at the minimum round has
// already had all its inputs sent and all its output channels drained (any
// neighbor past that round consumed them), so it always progresses.
func (e *Goroutines) multiRound(mr MultiRound, rounds int, c *graph.Config, labels []core.Label, seed uint64) ([]bool, Stats) {
	n := c.G.N()
	e.sc.ensure(c.G)
	e.ensureCounters(n)
	in := buildChannels(c.G)
	root := prng.New(seed)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			view := core.ViewOf(c, v)
			acc := make([][]core.Cert, view.Deg)
			for i := range acc {
				acc[i] = make([]core.Cert, 0, rounds)
			}
			maxCert, wire := 0, int64(0)
			for r := 0; r < rounds; r++ {
				// The same coin stream every round: shards of one draw.
				certs := mr.RoundCerts(r, view, labels[v], root.Fork(uint64(v)))
				for i, h := range c.G.AdjView(v) {
					var msg core.Cert
					if i < len(certs) {
						msg = certs[i]
					}
					if b := msg.Len(); b > maxCert {
						maxCert = b
					}
					wire += int64(msg.Len())
					in[h.To][h.RevPort-1] <- msg
				}
				for i := range acc {
					acc[i] = append(acc[i], <-in[v][i])
				}
			}
			recv := e.sc.window(v)
			for i := range recv {
				recv[i] = bitstring.Concat(acc[i]...)
			}
			e.certMax[v], e.wireSent[v] = maxCert, wire
			e.sc.votes[v] = mr.Decide(view, labels[v], recv)
		}(v)
	}
	wg.Wait()

	st := Stats{Rounds: rounds, MaxLabelBits: core.MaxBits(labels)}
	mult := Multiplicity(mr)
	for v := 0; v < n; v++ {
		st.Messages += rounds * c.G.Degree(v)
		st.DistinctMessages += int64(rounds) * distinctCount(false, mult, c.G.Degree(v))
		st.TotalWireBits += e.wireSent[v]
		if e.certMax[v] > st.MaxCertBits {
			st.MaxCertBits = e.certMax[v]
		}
		if e.certMax[v] > st.MaxPortBits {
			st.MaxPortBits = e.certMax[v]
		}
	}
	return e.sc.votes, st
}

// buildChannels wires one buffered channel per directed edge;
// in[v][p-1] carries messages arriving at v on port p.
func buildChannels(g *graph.Graph) [][]chan bitstring.String {
	in := make([][]chan bitstring.String, g.N())
	for v := range in {
		in[v] = make([]chan bitstring.String, g.Degree(v))
		for i := range in[v] {
			in[v][i] = make(chan bitstring.String, 1)
		}
	}
	return in
}
