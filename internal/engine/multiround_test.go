package engine_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// The t-round golden-bits contract: sharded execution is part of the same
// determinism guarantee as the single round. For the same seed and any
// t ∈ {1, 2, 4}, all four executors at any parallelism level must report
// bit-identical Summaries; the per-message maxima must be exactly the
// ⌈κ/t⌉ shard width; totals must be conserved (sharding moves bits between
// rounds, it does not create or destroy them); and the votes must equal
// the base scheme's votes for the same seed, because the reassembled
// strings are the base strings.

func shardFixtures(t *testing.T) []struct {
	name   string
	base   engine.Scheme
	cfg    *graph.Config
	labels []core.Label
} {
	t.Helper()
	out := []struct {
		name   string
		base   engine.Scheme
		cfg    *graph.Config
		labels []core.Label
	}{}
	add := func(name string, s engine.Scheme, cfg *graph.Config) {
		labels, err := s.Label(cfg)
		if err != nil {
			t.Fatalf("%s prover: %v", name, err)
		}
		out = append(out, struct {
			name   string
			base   engine.Scheme
			cfg    *graph.Config
			labels []core.Label
		}{name, s, cfg, labels})
	}
	add("spanningtree-det", engine.FromPLS(spanningtree.NewPLS()), experiments.BuildTreeConfig(30, 5))
	add("uniform-det", engine.FromPLS(uniform.NewPLS()), experiments.BuildUniformConfig(20, 24, 6))
	add("uniform-rand", engine.FromRPLS(uniform.NewRPLS()), experiments.BuildUniformConfig(20, 24, 6))
	return out
}

// TestGoldenWireBitsSharded is the satellite golden test: per executor and
// per t ∈ {1, 2, 4}, the wire Summary is bit-identical across executors
// and parallelism levels, the per-round port maximum is exactly
// ⌈base κ/t⌉, and the total bits and acceptance equal the base run's.
func TestGoldenWireBitsSharded(t *testing.T) {
	makeExecs := []func() engine.Executor{
		func() engine.Executor { return engine.NewSequential() },
		func() engine.Executor { return engine.NewPool(0) },
		func() engine.Executor { return engine.NewGoroutines() },
		func() engine.Executor { return engine.NewBatched() },
	}
	for _, fx := range shardFixtures(t) {
		base, err := engine.Estimate(fx.base, fx.cfg, engine.WithLabels(fx.labels),
			engine.WithTrials(12), engine.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		for _, rounds := range []int{1, 2, 4} {
			s, err := engine.Shard(fx.base, rounds)
			if err != nil {
				t.Fatalf("%s: Shard(t=%d): %v", fx.name, rounds, err)
			}
			if got := engine.Rounds(s); got != rounds {
				t.Fatalf("%s: Rounds = %d, want %d", fx.name, got, rounds)
			}
			var ref engine.Summary
			first := true
			for _, mkExec := range makeExecs {
				for _, p := range []int{1, 4} {
					sum, err := engine.Estimate(s, fx.cfg, engine.WithLabels(fx.labels),
						engine.WithTrials(12), engine.WithSeed(5),
						engine.WithExecutor(mkExec()), engine.WithParallelism(p))
					if err != nil {
						t.Fatal(err)
					}
					if first {
						ref, first = sum, false
						continue
					}
					if sum != ref {
						t.Fatalf("%s t=%d: %T p=%d summary %+v != reference %+v",
							fx.name, rounds, mkExec(), p, sum, ref)
					}
				}
			}
			if rounds == 1 {
				// t = 1 must be the classic engine, bit for bit.
				if ref != base {
					t.Fatalf("%s: t=1 summary %+v != base %+v", fx.name, ref, base)
				}
				continue
			}
			if ref.Rounds != rounds {
				t.Errorf("%s t=%d: Summary.Rounds = %d", fx.name, rounds, ref.Rounds)
			}
			if want := core.ShardWidth(base.MaxCertBits, rounds); ref.MaxPortBits != want {
				t.Errorf("%s t=%d: bits-per-round %d, want ⌈κ/t⌉ = ⌈%d/%d⌉ = %d",
					fx.name, rounds, ref.MaxPortBits, base.MaxCertBits, rounds, want)
			}
			if ref.MaxCertBits != ref.MaxPortBits {
				t.Errorf("%s t=%d: κ %d != max port bits %d (one shard per port per round)",
					fx.name, rounds, ref.MaxCertBits, ref.MaxPortBits)
			}
			// Trial budgets may differ (coin-free sharded det collapses to one
			// trial elsewhere; here both ran 12), so compare per-trial totals.
			if ref.TotalBits != base.TotalBits {
				t.Errorf("%s t=%d: total bits %d != base %d (sharding must conserve bits)",
					fx.name, rounds, ref.TotalBits, base.TotalBits)
			}
			if ref.TotalMessages != int64(rounds)*base.TotalMessages {
				t.Errorf("%s t=%d: messages %d, want rounds × base = %d",
					fx.name, rounds, ref.TotalMessages, int64(rounds)*base.TotalMessages)
			}
			if ref.Accepted != base.Accepted {
				t.Errorf("%s t=%d: accepted %d/%d != base %d/%d",
					fx.name, rounds, ref.Accepted, ref.Trials, base.Accepted, base.Trials)
			}
		}
	}
}

// TestShardedVotesMatchBase pins the strongest form of the equivalence: on
// honest and adversarial labels alike, per seed, the sharded scheme's
// per-node votes equal the base scheme's — the reassembled strings are the
// base strings, so the decisions cannot differ.
func TestShardedVotesMatchBase(t *testing.T) {
	cfg := experiments.BuildUniformConfig(18, 16, 9)
	base := engine.FromRPLS(uniform.NewRPLS())
	honest, err := base.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An adversarial assignment: node 0's payload flipped after labeling.
	bad := append([]core.Label(nil), honest...)
	bad[0] = honest[0].Truncate(honest[0].Len() - 1)
	sharded, err := engine.Shard(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, labels := range [][]core.Label{honest, bad} {
		for seed := uint64(1); seed <= 8; seed++ {
			want := engine.Verify(base, cfg, labels, engine.WithSeed(seed), engine.WithStats(true))
			got := engine.Verify(sharded, cfg, labels, engine.WithSeed(seed), engine.WithStats(true))
			if len(got.Votes) != len(want.Votes) {
				t.Fatalf("vote vector length %d != %d", len(got.Votes), len(want.Votes))
			}
			for v := range got.Votes {
				if got.Votes[v] != want.Votes[v] {
					t.Fatalf("seed %d node %d: sharded vote %v != base vote %v",
						seed, v, got.Votes[v], want.Votes[v])
				}
			}
		}
	}
}

// TestShardEdgeCases covers the round-count edge cases at the engine
// boundary: t <= 0 is rejected, t = 1 is the identity, and t far beyond κ
// still verifies correctly with empty late rounds.
func TestShardEdgeCases(t *testing.T) {
	base := engine.FromPLS(spanningtree.NewPLS())
	if _, err := engine.Shard(base, 0); err == nil {
		t.Error("Shard(t=0) accepted, want error")
	}
	if _, err := engine.Shard(base, -3); err == nil {
		t.Error("Shard(t=-3) accepted, want error")
	}
	same, err := engine.Shard(base, 1)
	if err != nil || same != base {
		t.Errorf("Shard(t=1) = (%v, %v), want the scheme unchanged", same, err)
	}

	cfg := experiments.BuildTreeConfig(12, 2)
	labels, err := base.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kappa := core.MaxBits(labels)
	huge, err := engine.Shard(base, kappa+50) // t > κ: late rounds are empty
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Verify(huge, cfg, labels, engine.WithSeed(2))
	if !res.Accepted {
		t.Fatalf("t=%d > κ=%d rejects an honest instance", kappa+50, kappa)
	}
	if res.Stats.MaxPortBits != 1 {
		t.Errorf("t > κ: bits-per-round %d, want 1", res.Stats.MaxPortBits)
	}
	if res.Stats.Rounds != kappa+50 {
		t.Errorf("Stats.Rounds = %d, want %d", res.Stats.Rounds, kappa+50)
	}
}

// TestIsCoinFree pins the trial-collapse rule: deterministic schemes and
// sharded deterministic schemes are coin-free; randomized schemes, sharded
// or not, are not.
func TestIsCoinFree(t *testing.T) {
	det := engine.FromPLS(spanningtree.NewPLS())
	rand := engine.FromRPLS(uniform.NewRPLS())
	shardedDet, err := engine.Shard(det, 4)
	if err != nil {
		t.Fatal(err)
	}
	shardedRand, err := engine.Shard(rand, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		s    engine.Scheme
		want bool
	}{
		{"det", det, true},
		{"rand", rand, false},
		{"sharded-det", shardedDet, true},
		{"sharded-rand", shardedRand, false},
	} {
		if got := engine.IsCoinFree(tc.s); got != tc.want {
			t.Errorf("IsCoinFree(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestShardedEstimateParallelDeterminism extends the estimator determinism
// guarantee to the rounds axis with early stopping in play.
func TestShardedEstimateParallelDeterminism(t *testing.T) {
	cfg := experiments.BuildUniformConfig(16, 16, 3)
	base := engine.FromRPLS(uniform.NewRPLS())
	s, err := engine.Shard(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ref engine.Summary
	for i, p := range []int{1, 2, 5, 16} {
		sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
			engine.WithTrials(100), engine.WithSeed(17),
			engine.WithParallelism(p), engine.WithMaxSE(0.08))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = sum
			continue
		}
		if sum != ref {
			t.Fatalf("p=%d sharded summary %+v != p=1 %+v", p, sum, ref)
		}
	}
}
