package engine

import (
	"math"
	"sync"

	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/obs"
)

// The trial-parallel Monte-Carlo estimator.
//
// Estimate shards trials seed..seed+T−1 across WithParallelism workers,
// each owning a private executor (the caller's executor plus clones with
// independent scratch). Trial t's coins depend only on seed+t, and
// per-trial outcomes are merged by trial index, so the resulting Summary is
// bit-identical for every parallelism level and every executor.
//
// Early stopping keeps that guarantee: trials are computed ahead in fixed
// chunks of estimateChunk (independent of the worker count) and then folded
// in serial trial order, applying the stopping rule after each trial — the
// stopping trial is exactly the one a serial run would stop at, and any
// speculatively computed later trials are discarded.

// estimateChunk caps the number of trials computed ahead of the serial
// stopping scan when an early-stop rule is active. Chunks follow the fixed
// schedule estimateFirstChunk, 2×, 4×, … capped at estimateChunk — a
// deterministic sequence never derived from the worker count — so the
// stopping decision, and hence the Summary, cannot depend on parallelism.
// The geometric ramp keeps runs that stop almost immediately (detection
// latency of a freshly corrupted monitor) from speculating a full 64-trial
// batch, while long runs still amortize toward full-width batches.
const estimateChunk = 64

// estimateFirstChunk is the first chunk size of the early-stop schedule.
const estimateFirstChunk = 8

// wilsonZ is the two-sided 95% normal quantile used for Summary's interval.
const wilsonZ = 1.959963984540054

// Cloneable is implemented by executors that can produce fresh instances
// with the same configuration but independent scratch buffers. The
// trial-parallel estimator clones the caller's executor once per extra
// worker; a non-cloneable executor degrades gracefully to the serial path.
type Cloneable interface {
	// Clone returns a new executor of the same kind and configuration whose
	// scratch is independent of the receiver's.
	Clone() Executor
}

// Summary aggregates a Monte-Carlo estimate over a batch of trials.
// CILow and CIHigh bound the acceptance probability with the 95% Wilson
// score interval, which stays informative at the boundary rates 0 and 1
// where the normal-approximation interval collapses.
//
// The wire-accounting fields aggregate the executors' exact per-round
// counters over the executed trials: TotalBits and TotalMessages are sums,
// MaxCertBits and MaxPortBits are maxima, and AvgBitsPerEdge is
// TotalBits/TotalMessages — the mean bits one directed edge carries in one
// round, the paper's per-edge verification cost. Every field is folded
// from the per-trial outcome slice in serial trial order, so a Summary is
// bit-identical for any parallelism level and any executor.
type Summary struct {
	Trials         int
	Rounds         int     // verification rounds per trial (1 for classic schemes)
	Accepted       int     // trials in which every node output true
	Acceptance     float64 // Accepted / Trials (0 when Trials == 0)
	CILow          float64 // lower end of the 95% Wilson interval
	CIHigh         float64 // upper end of the 95% Wilson interval
	MaxLabelBits   int
	MaxCertBits    int     // max κ (largest string sent on a port) across all trials
	MaxPortBits    int     // largest single message observed across all trials
	TotalBits      int64   // bits on the wire summed over all executed trials
	TotalMessages  int64   // messages (directed-edge sends) over all executed trials
	TotalDistinct  int64   // structurally distinct payloads minted over all trials (<= TotalMessages)
	AvgBitsPerEdge float64 // TotalBits / TotalMessages (0 when no messages)
}

// WilsonInterval returns the 95% Wilson score interval for accepted
// successes out of trials Bernoulli trials, clamped to [0, 1]. For
// trials == 0 it returns the vacuous interval [0, 1].
func WilsonInterval(accepted, trials int) (lo, hi float64) {
	center, half := wilson(accepted, trials)
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// wilson returns the unclamped center and half-width of the 95% Wilson
// interval; the half-width is the quantity WithMaxSE compares against.
func wilson(accepted, trials int) (center, half float64) {
	if trials == 0 {
		return 0.5, 0.5
	}
	n := float64(trials)
	phat := float64(accepted) / n
	z2 := wilsonZ * wilsonZ
	denom := 1 + z2/n
	center = (phat + z2/(2*n)) / denom
	half = wilsonZ / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	return center, half
}

// Estimate runs up to WithTrials independent rounds at seeds seed, seed+1,
// … and aggregates acceptance, a Wilson confidence interval, and
// communication cost. Labels come from the prover unless WithLabels
// supplies an (adversarial) assignment. WithParallelism shards the trials
// across workers; WithMaxSE and WithStopOnReject stop the run early. The
// Summary is bit-identical for any parallelism level and any executor.
func Estimate(s Scheme, c *graph.Config, opts ...Option) (Summary, error) {
	o, err := buildValidated(s, opts)
	if err != nil {
		return Summary{}, err
	}
	labels, err := o.resolveLabels(s, c)
	if err != nil {
		return Summary{}, err
	}
	return o.estimateLabels(withCap(s, o.multiplicity), c, labels), nil
}

// trialOutcome is the per-trial data the merge needs: the acceptance vote
// and the trial's exact wire counters. Outcomes are stored by trial index,
// so folding them in serial order yields the same Summary for any worker
// count.
type trialOutcome struct {
	accepted    bool
	rounds      int
	maxCertBits int
	maxPortBits int
	wireBits    int64
	messages    int
	distinct    int64
}

// estimateLabels is the estimator core shared by Estimate, Soundness,
// Sweep, and MaxCertBits: labels are already resolved.
func (o *options) estimateLabels(s Scheme, c *graph.Config, labels []core.Label) Summary {
	sum := Summary{MaxLabelBits: core.MaxBits(labels)}
	if o.trials <= 0 {
		sum.CILow, sum.CIHigh = WilsonInterval(0, 0)
		return sum
	}
	obsEstimates.Inc()
	sp := obs.Begin("engine.estimate")
	execs := o.shardExecutors()

	// With an early-stop rule active, compute trials ahead on the fixed
	// geometric chunk schedule; otherwise one chunk covers the whole run.
	chunk := o.trials
	if o.maxSE > 0 || o.stopOnReject {
		chunk = estimateFirstChunk
	}
	out := make([]trialOutcome, min(chunk, o.trials))

	accepted, certMax, portMax, done, rounds := 0, 0, 0, 0, 0
	totalBits, totalMsgs, totalDistinct := int64(0), int64(0), int64(0)
scan:
	for lo := 0; lo < o.trials; {
		hi := min(lo+chunk, o.trials)
		if cap(out) < hi-lo {
			out = make([]trialOutcome, hi-lo)
		}
		out = out[:hi-lo]
		runTrials(execs, s, c, labels, o.seed, lo, hi, out)
		obsChunkTrials.Observe(int64(hi - lo))
		// Fold outcomes in serial trial order; the stopping rule sees
		// exactly the prefix a serial run would have seen.
		for t := lo; t < hi; t++ {
			res := out[t-lo]
			done++
			if res.accepted {
				accepted++
			}
			if res.rounds > rounds {
				rounds = res.rounds
			}
			if res.maxCertBits > certMax {
				certMax = res.maxCertBits
			}
			if res.maxPortBits > portMax {
				portMax = res.maxPortBits
			}
			totalBits += res.wireBits
			totalMsgs += int64(res.messages)
			totalDistinct += res.distinct
			if o.stopOnReject && !res.accepted {
				obsStopReject.Inc()
				break scan
			}
			if o.maxSE > 0 {
				if _, half := wilson(accepted, done); half <= o.maxSE {
					obsStopMaxSE.Inc()
					break scan
				}
			}
		}
		lo = hi
		if chunk < estimateChunk {
			chunk *= 2
		}
	}
	sum.Trials, sum.Accepted, sum.MaxCertBits = done, accepted, certMax
	sum.Rounds = rounds
	sum.MaxPortBits, sum.TotalBits, sum.TotalMessages = portMax, totalBits, totalMsgs
	sum.TotalDistinct = totalDistinct
	if totalMsgs > 0 {
		sum.AvgBitsPerEdge = float64(totalBits) / float64(totalMsgs)
	}
	sum.Acceptance = float64(accepted) / float64(done)
	sum.CILow, sum.CIHigh = WilsonInterval(accepted, done)
	obsEstimateTrials.Add(uint64(done))
	sp.A, sp.B = int64(done), int64(accepted)
	obs.End(sp)
	return sum
}

// shardExecutors resolves the worker executors: the caller's executor
// first, then one clone per extra worker. A non-cloneable executor cannot
// be sharded safely, so it runs the whole estimate alone.
func (o *options) shardExecutors() []Executor {
	base := o.executor()
	p := o.workers()
	if p <= 1 {
		return []Executor{base}
	}
	cl, ok := base.(Cloneable)
	if !ok {
		return []Executor{base}
	}
	execs := make([]Executor, p)
	execs[0] = base
	for i := 1; i < p; i++ {
		execs[i] = cl.Clone()
	}
	return execs
}

// runTrials executes trials [lo, hi), writing outcome t to out[t-lo].
// Workers take contiguous trial ranges; since every slot is indexed by
// trial, the merge is order-independent and the result identical for any
// worker count.
func runTrials(execs []Executor, s Scheme, c *graph.Config, labels []core.Label, seed uint64, lo, hi int, out []trialOutcome) {
	span := hi - lo
	w := len(execs)
	if w > span {
		w = span
	}
	if w <= 1 {
		oneWorker(execs[0], s, c, labels, seed, lo, hi, out)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			start := lo + i*span/w
			end := lo + (i+1)*span/w
			oneWorker(execs[i], s, c, labels, seed, start, end, out[start-lo:end-lo])
		}(i)
	}
	wg.Wait()
}

// oneWorker runs trials [lo, hi) on a single executor. This is the
// estimator's inner loop — every Monte-Carlo trial of every campaign cell
// passes through it — so it carries the hotalloc contract: per-trial work
// must stay on the executor's reused scratch.
//
//pls:hotpath
func oneWorker(exec Executor, s Scheme, c *graph.Config, labels []core.Label, seed uint64, lo, hi int, out []trialOutcome) {
	if b, ok := exec.(*Batched); ok {
		// The batched executor consumes the whole range at once: chunks of
		// up to 64 trials share one graph traversal. Outcomes are written
		// per trial index, so the Summary is unchanged.
		b.runBatch(s, c, labels, seed, lo, hi, out)
		return
	}
	h := trialHistogram(exec)
	for t := lo; t < hi; t++ {
		t0 := h.Start()
		votes, st := exec.Round(s, c, labels, seed+uint64(t))
		h.Stop(t0)
		out[t-lo] = trialOutcome{
			accepted:    AllTrue(votes),
			rounds:      st.Rounds,
			maxCertBits: st.MaxCertBits,
			maxPortBits: st.MaxPortBits,
			wireBits:    st.TotalWireBits,
			messages:    st.Messages,
			distinct:    st.DistinctMessages,
		}
	}
}

// MaxCertBits measures the verification complexity of Definition 2.1: the
// maximum length of a string sent on a port from the given labels over
// `trials` coin draws. It rides the same trial loop as Estimate —
// certificate sizes are tracked per round, not re-drawn — so it costs
// exactly `trials` rounds. A deterministic scheme sends its label on every
// port, so its verification complexity is the largest label transmitted
// (one round suffices: the round is coin-free).
func MaxCertBits(s Scheme, c *graph.Config, labels []core.Label, trials int, seed uint64) int {
	if IsCoinFree(s) {
		trials = 1 // a coin-free execution is identical every trial
	}
	o := buildOptions([]Option{WithSeed(seed), WithTrials(trials)})
	return o.estimateLabels(s, c, labels).MaxCertBits
}

// Acceptance is the one-call Monte-Carlo acceptance estimator: the
// fraction of `trials` independent rounds (seeds seed, seed+1, …) the
// scheme accepts under the given (possibly adversarial) labels. Zero
// trials report 0. With explicit labels the only Estimate failure is a
// label/node count mismatch — a programming error that fails loudly
// rather than reading as zero acceptance.
func Acceptance(s Scheme, c *graph.Config, labels []core.Label, trials int, seed uint64) float64 {
	sum, err := Estimate(s, c, WithLabels(labels), WithTrials(trials), WithSeed(seed))
	if err != nil {
		panic(err)
	}
	return sum.Acceptance
}
