package engine_test

import (
	"fmt"
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
)

// corruptedUniform returns a uniform-payload configuration with one node's
// payload flipped plus the honest labels of the healthy twin — an instance
// whose acceptance rate is strictly between 0 and 1, which exercises the
// interval math and the early-stop rules.
func corruptedUniform(t *testing.T, n int, seed uint64) (engine.Scheme, *graph.Config, []core.Label) {
	t.Helper()
	s := engine.FromRPLS(uniform.NewRPLS())
	cfg := experiments.BuildUniformConfig(n, 8, seed)
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg.Clone()
	bad.States[n/2].Data[0] ^= 0x01
	return s, bad, labels
}

// TestEstimateParallelDeterminism extends the executor-parity guarantee to
// the batch layer: the same seed must yield a bit-identical Summary for
// every parallelism level crossed with every executor — with and without
// the early-stop rules.
func TestEstimateParallelDeterminism(t *testing.T) {
	schemes := []struct {
		name   string
		s      engine.Scheme
		cfg    *graph.Config
		labels []core.Label
	}{}

	// A deterministic scheme under honest labels.
	det := engine.FromPLS(spanningtree.NewPLS())
	detCfg := experiments.BuildTreeConfig(40, 5)
	detLabels, err := det.Label(detCfg)
	if err != nil {
		t.Fatal(err)
	}
	schemes = append(schemes, struct {
		name   string
		s      engine.Scheme
		cfg    *graph.Config
		labels []core.Label
	}{"spanningtree-det", det, detCfg, detLabels})

	// A randomized scheme with interior acceptance rate.
	s, bad, labels := corruptedUniform(t, 30, 7)
	schemes = append(schemes, struct {
		name   string
		s      engine.Scheme
		cfg    *graph.Config
		labels []core.Label
	}{"uniform-corrupted", s, bad, labels})

	extraOpts := map[string][]engine.Option{
		"full":         nil,
		"maxse":        {engine.WithMaxSE(0.12)},
		"stoponreject": {engine.WithStopOnReject(true)},
	}

	for _, sc := range schemes {
		for optName, extra := range extraOpts {
			if optName == "maxse" && engine.IsCoinFree(sc.s) {
				// The validated options layer rejects early stopping on a
				// coin-free scheme (every trial is the same execution);
				// TestOptionValidation pins the typed error.
				continue
			}
			var ref engine.Summary
			first := true
			for _, mkExec := range []func() engine.Executor{
				func() engine.Executor { return engine.NewSequential() },
				func() engine.Executor { return engine.NewPool(0) },
				func() engine.Executor { return engine.NewGoroutines() },
				func() engine.Executor { return engine.NewBatched() },
			} {
				for _, p := range []int{1, 4, 16} {
					exec := mkExec()
					opts := append([]engine.Option{
						engine.WithLabels(sc.labels), engine.WithTrials(200),
						engine.WithSeed(11), engine.WithExecutor(exec),
						engine.WithParallelism(p),
					}, extra...)
					sum, err := engine.Estimate(sc.s, sc.cfg, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if first {
						ref, first = sum, false
						continue
					}
					if sum != ref {
						t.Fatalf("%s/%s: %s p=%d Summary %+v != reference %+v",
							sc.name, optName, exec.Name(), p, sum, ref)
					}
				}
			}
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := engine.WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("vacuous interval = [%v, %v], want [0, 1]", lo, hi)
	}
	// The interval contains the point estimate and stays inside [0, 1].
	for _, tc := range []struct{ acc, trials int }{
		{0, 10}, {10, 10}, {5, 10}, {1, 400}, {399, 400},
	} {
		lo, hi := engine.WilsonInterval(tc.acc, tc.trials)
		phat := float64(tc.acc) / float64(tc.trials)
		if lo < 0 || hi > 1 || lo > phat || hi < phat {
			t.Errorf("WilsonInterval(%d, %d) = [%v, %v] does not bracket %v",
				tc.acc, tc.trials, lo, hi, phat)
		}
	}
	// More trials at the same rate tighten the interval.
	lo1, hi1 := engine.WilsonInterval(50, 100)
	lo2, hi2 := engine.WilsonInterval(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestEstimateMaxSEStopsEarly(t *testing.T) {
	s, bad, labels := corruptedUniform(t, 24, 3)
	full, err := engine.Estimate(s, bad, engine.WithLabels(labels),
		engine.WithTrials(5000), engine.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	early, err := engine.Estimate(s, bad, engine.WithLabels(labels),
		engine.WithTrials(5000), engine.WithSeed(2), engine.WithMaxSE(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if early.Trials >= full.Trials {
		t.Fatalf("maxSE did not stop early: %d trials of %d", early.Trials, full.Trials)
	}
	if half := (early.CIHigh - early.CILow) / 2; half > 0.11 {
		t.Errorf("stopped with a loose interval: half-width %v", half)
	}
	// The early summary must be the exact prefix of the full run.
	prefix, err := engine.Estimate(s, bad, engine.WithLabels(labels),
		engine.WithTrials(early.Trials), engine.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if prefix != early {
		t.Errorf("early stop diverged from the serial prefix: %+v vs %+v", early, prefix)
	}
}

func TestEstimateStopOnReject(t *testing.T) {
	// A legal instance under honest labels never rejects: the full budget runs.
	s := engine.FromRPLS(uniform.NewRPLS())
	cfg := experiments.BuildUniformConfig(16, 8, 9)
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
		engine.WithTrials(150), engine.WithStopOnReject(true))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 150 || sum.Accepted != 150 {
		t.Fatalf("legal run stopped early: %+v", sum)
	}

	// A corrupted instance stops at its first rejection with exact counts.
	bs, bad, blabels := corruptedUniform(t, 16, 9)
	sum, err = engine.Estimate(bs, bad, engine.WithLabels(blabels),
		engine.WithTrials(5000), engine.WithSeed(4), engine.WithStopOnReject(true))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials == 5000 {
		t.Fatalf("corrupted run never rejected in %d trials", sum.Trials)
	}
	if sum.Accepted != sum.Trials-1 {
		t.Fatalf("stop-on-reject counts off: accepted %d of %d", sum.Accepted, sum.Trials)
	}
}

// TestMaxCertBitsMatchesEstimate pins the satellite fix: MaxCertBits rides
// the same trial loop as Estimate instead of re-drawing certificates.
func TestMaxCertBitsMatchesEstimate(t *testing.T) {
	s := engine.FromRPLS(uniform.NewRPLS())
	cfg := experiments.BuildUniformConfig(20, 16, 6)
	labels, err := s.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := engine.MaxCertBits(s, cfg, labels, 5, 31)
	sum, err := engine.Estimate(s, cfg, engine.WithLabels(labels),
		engine.WithTrials(5), engine.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if got != sum.MaxCertBits {
		t.Fatalf("MaxCertBits = %d, Estimate tracked %d", got, sum.MaxCertBits)
	}
	if got <= 0 {
		t.Fatalf("MaxCertBits = %d, want > 0 for a randomized scheme", got)
	}
	// Deterministic schemes report the max label bits they transmit.
	if db := engine.MaxCertBits(engine.FromPLS(spanningtree.NewPLS()), cfg, labels, 5, 31); db != core.MaxBits(labels) {
		t.Fatalf("deterministic MaxCertBits = %d, want max label bits %d", db, core.MaxBits(labels))
	}
}

// nonCloneableExec wraps Sequential but hides the Clone method: the
// estimator must degrade to the serial path rather than share scratch.
type nonCloneableExec struct{ inner *engine.Sequential }

func (e nonCloneableExec) Name() string { return "noclone" }
func (e nonCloneableExec) Round(s engine.Scheme, c *graph.Config, labels []core.Label, seed uint64) ([]bool, engine.Stats) {
	return e.inner.Round(s, c, labels, seed)
}

func TestEstimateNonCloneableExecutorFallsBackToSerial(t *testing.T) {
	s, bad, labels := corruptedUniform(t, 20, 13)
	ref, err := engine.Estimate(s, bad, engine.WithLabels(labels),
		engine.WithTrials(100), engine.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.Estimate(s, bad, engine.WithLabels(labels),
		engine.WithTrials(100), engine.WithSeed(8), engine.WithParallelism(8),
		engine.WithExecutor(nonCloneableExec{inner: engine.NewSequential()}))
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("non-cloneable fallback diverged: %+v vs %+v", got, ref)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	s := engine.FromRPLS(spanningtree.NewRPLS())
	build := func(n int, seed uint64) (*graph.Config, error) {
		return experiments.BuildTreeConfig(n, seed), nil
	}
	sizes := []int{8, 12, 16, 24, 32, 48}
	serial, err := engine.Sweep(engine.Fixed(s), build, sizes,
		engine.WithTrials(20), engine.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 16} {
		par, err := engine.Sweep(engine.Fixed(s), build, sizes,
			engine.WithTrials(20), engine.WithSeed(3), engine.WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("p=%d: %d points, want %d", p, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("p=%d point %d: %+v != %+v", p, i, par[i], serial[i])
			}
		}
	}
	// A failing builder surfaces the error and the points before it.
	failAt := sizes[3]
	failing := func(n int, seed uint64) (*graph.Config, error) {
		if n == failAt {
			return nil, fmt.Errorf("boom")
		}
		return experiments.BuildTreeConfig(n, seed), nil
	}
	pts, err := engine.Sweep(engine.Fixed(s), failing, sizes,
		engine.WithTrials(5), engine.WithSeed(3), engine.WithParallelism(4))
	if err == nil {
		t.Fatal("sweep swallowed the builder error")
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points before the failure, want 3", len(pts))
	}
}

func TestSoundnessReportsAllAdversaries(t *testing.T) {
	// Spanning tree with a second root: a classic illegal twin of the same
	// size, so all three adversary families run.
	s := engine.FromRPLS(spanningtree.NewRPLS())
	legal := experiments.BuildTreeConfig(24, 5)
	illegal := legal.Clone()
	for v := 1; v < illegal.G.N(); v++ {
		if illegal.States[v].Parent != 0 {
			illegal.States[v].Parent = 0
			break
		}
	}
	results, err := engine.Soundness(s, legal, illegal,
		engine.WithTrials(60), engine.WithSeed(2), engine.WithAssignments(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{engine.AdversaryTransplant, engine.AdversaryRandom, engine.AdversaryBitFlip}
	if len(results) != len(want) {
		t.Fatalf("got %d adversaries, want %d: %+v", len(results), len(want), results)
	}
	for i, r := range results {
		if r.Adversary != want[i] {
			t.Fatalf("adversary %d = %q, want %q", i, r.Adversary, want[i])
		}
		if r.Worst.Trials == 0 {
			t.Fatalf("%s: empty estimate", r.Adversary)
		}
		// Soundness of the paper's schemes: acceptance stays below 1/2 per
		// adversary with margin (the estimate uses 60 trials).
		if r.Worst.Acceptance > 0.5 {
			t.Errorf("%s: worst acceptance %v > 0.5 (summary %+v)",
				r.Adversary, r.Worst.Acceptance, r.Worst)
		}
	}
	// Deterministic: the same options give the same report.
	again, err := engine.Soundness(s, legal, illegal,
		engine.WithTrials(60), engine.WithSeed(2), engine.WithAssignments(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if again[i] != results[i] {
			t.Fatalf("soundness not reproducible: %+v vs %+v", again[i], results[i])
		}
	}

	// Without a legal twin only the random adversary runs.
	solo, err := engine.Soundness(s, nil, illegal,
		engine.WithTrials(20), engine.WithSeed(2), engine.WithAssignments(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0].Adversary != engine.AdversaryRandom {
		t.Fatalf("nil legal twin: %+v", solo)
	}
}
