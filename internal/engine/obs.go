package engine

import "rpls/internal/obs"

// Telemetry handles. Every call site in this package is write-only — the
// obsflow analyzer rejects any read of these values from engine code, and
// the metrics-on/off golden tests prove recording never perturbs a
// Summary, vote, or Stats field. Names are stable: the -metrics snapshot
// schema and plsrun's human output key on them.
var (
	// Estimator shape: runs, executed trials, chunk schedule, early stops.
	obsEstimates      = obs.NewCounter("engine.estimate.runs")
	obsEstimateTrials = obs.NewCounter("engine.estimate.trials")
	obsStopMaxSE      = obs.NewCounter("engine.estimate.earlystop.maxse")
	obsStopReject     = obs.NewCounter("engine.estimate.earlystop.reject")
	obsChunkTrials    = obs.NewHistogram("engine.estimate.chunk", "trials")

	// Per-executor trial timing (one observation per Monte-Carlo trial;
	// Batched times whole lane batches instead, see obsBatchNanos).
	obsTrialSequential = obs.NewHistogram("engine.trial.sequential", "ns")
	obsTrialPool       = obs.NewHistogram("engine.trial.pool", "ns")
	obsTrialGoroutines = obs.NewHistogram("engine.trial.goroutines", "ns")
	obsTrialOther      = obs.NewHistogram("engine.trial.other", "ns")

	// Batched-executor shape: lane occupancy, plane-budget narrowing,
	// fallback and coin-free collapses. plsrun surfaces these so an
	// executor choice is explainable.
	obsBatches       = obs.NewCounter("engine.batched.batches")
	obsBatchLanes    = obs.NewHistogram("engine.batched.lanes", "lanes")
	obsBatchNarrowed = obs.NewCounter("engine.batched.narrowed")
	obsBatchFallback = obs.NewCounter("engine.batched.fallback")
	obsBatchCoinFree = obs.NewCounter("engine.batched.coinfree")
	obsBatchNanos    = obs.NewHistogram("engine.batched.batch", "ns")

	// Soundness adversary fan-out.
	obsSoundnessRuns        = obs.NewCounter("engine.soundness.runs")
	obsSoundnessAssignments = obs.NewCounter("engine.soundness.assignments")
)

// trialHistogram picks the per-trial timing histogram for an executor.
// Called from the estimator's hot loop, so it must stay allocation-free.
//
//pls:hotpath
func trialHistogram(exec Executor) *obs.Histogram {
	switch exec.(type) {
	case *Sequential:
		return obsTrialSequential
	case *Pool:
		return obsTrialPool
	case *Goroutines:
		return obsTrialGoroutines
	default:
		return obsTrialOther
	}
}
