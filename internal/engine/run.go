package engine

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// options collects the functional options of the batch entry points.
type options struct {
	seed   uint64
	trials int
	exec   Executor
	stats  bool
	labels []core.Label
}

// Option configures Run, Verify, Estimate, and Sweep.
type Option func(*options)

// WithSeed sets the root seed; node v's private coins in trial t are the
// stream prng.New(seed+t).Fork(v), so every measurement is reproducible.
// The default seed is 1.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithTrials sets the number of Monte-Carlo rounds Estimate and Sweep run
// (default 1). Trial t uses seed+t.
func WithTrials(trials int) Option { return func(o *options) { o.trials = trials } }

// WithExecutor selects the round executor (default: a fresh Sequential).
// Pass a long-lived executor to amortize its scratch buffers across calls.
func WithExecutor(e Executor) Option { return func(o *options) { o.exec = e } }

// WithStats requests the per-node vote vector in Result.Votes. Aggregate
// stats are always collected; the vote vector costs an O(n) copy per round,
// so it is off by default.
func WithStats(v bool) Option { return func(o *options) { o.stats = v } }

// WithLabels verifies under the given (possibly adversarial) label
// assignment instead of invoking the scheme's prover.
func WithLabels(labels []core.Label) Option {
	return func(o *options) { o.labels = labels }
}

func buildOptions(opts []Option) options {
	o := options{seed: 1, trials: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *options) executor() Executor {
	if o.exec == nil {
		return NewSequential()
	}
	return o.exec
}

// resolveLabels returns the labels to verify under: WithLabels if given
// (validated against the node count), the scheme's prover otherwise.
func (o *options) resolveLabels(s Scheme, c *graph.Config) ([]core.Label, error) {
	labels := o.labels
	if labels == nil {
		var err error
		labels, err = s.Label(c)
		if err != nil {
			return nil, fmt.Errorf("prover %s: %w", s.Name(), err)
		}
	}
	if len(labels) != c.G.N() {
		return nil, fmt.Errorf("prover %s: %d labels for %d nodes", s.Name(), len(labels), c.G.N())
	}
	return labels, nil
}

// Run labels the configuration (or uses WithLabels) and executes one
// verification round.
func Run(s Scheme, c *graph.Config, opts ...Option) (Result, error) {
	o := buildOptions(opts)
	labels, err := o.resolveLabels(s, c)
	if err != nil {
		return Result{}, err
	}
	return o.round(s, c, labels), nil
}

// Verify executes one round under an arbitrary (possibly adversarial) label
// assignment. It is Run without the prover and without an error path;
// WithLabels is ignored in favor of the explicit argument.
func Verify(s Scheme, c *graph.Config, labels []core.Label, opts ...Option) Result {
	o := buildOptions(opts)
	return o.round(s, c, labels)
}

func (o *options) round(s Scheme, c *graph.Config, labels []core.Label) Result {
	votes, st := o.executor().Round(s, c, labels, o.seed)
	res := Result{Accepted: AllTrue(votes), Stats: st}
	if o.stats {
		res.Votes = append([]bool(nil), votes...)
	}
	return res
}

// Summary aggregates a Monte-Carlo estimate over WithTrials rounds.
type Summary struct {
	Trials       int
	Accepted     int     // rounds in which every node output true
	Acceptance   float64 // Accepted / Trials (0 when Trials == 0)
	MaxLabelBits int
	MaxCertBits  int // max certificate bits observed across all trials
}

// Estimate runs WithTrials independent rounds at seeds seed, seed+1, … and
// aggregates acceptance and communication cost. Labels come from the
// prover unless WithLabels supplies an (adversarial) assignment.
func Estimate(s Scheme, c *graph.Config, opts ...Option) (Summary, error) {
	o := buildOptions(opts)
	labels, err := o.resolveLabels(s, c)
	if err != nil {
		return Summary{}, err
	}
	sum := Summary{MaxLabelBits: core.MaxBits(labels)}
	if o.trials <= 0 {
		return sum, nil
	}
	sum.Trials = o.trials
	exec := o.executor()
	for t := 0; t < o.trials; t++ {
		votes, st := exec.Round(s, c, labels, o.seed+uint64(t))
		if AllTrue(votes) {
			sum.Accepted++
		}
		if st.MaxCertBits > sum.MaxCertBits {
			sum.MaxCertBits = st.MaxCertBits
		}
	}
	sum.Acceptance = float64(sum.Accepted) / float64(sum.Trials)
	return sum, nil
}

// SweepPoint is one instance size of a Sweep.
type SweepPoint struct {
	N, M    int // nodes and edges of the built configuration
	Summary Summary
}

// Sweep measures a scheme across instance sizes: for each n it builds a
// configuration, constructs the scheme for it (letting parameterized
// schemes read the instance), labels it with the prover, and runs Estimate.
// The builder's seed is derived from WithSeed and n, so sweeps are
// reproducible point by point.
func Sweep(scheme func(c *graph.Config) (Scheme, error), build func(n int, seed uint64) (*graph.Config, error), sizes []int, opts ...Option) ([]SweepPoint, error) {
	o := buildOptions(opts)
	points := make([]SweepPoint, 0, len(sizes))
	for _, n := range sizes {
		cfg, err := build(n, o.seed+uint64(n))
		if err != nil {
			return points, fmt.Errorf("sweep build n=%d: %w", n, err)
		}
		s, err := scheme(cfg)
		if err != nil {
			return points, fmt.Errorf("sweep scheme n=%d: %w", n, err)
		}
		sum, err := Estimate(s, cfg, opts...)
		if err != nil {
			return points, fmt.Errorf("sweep n=%d: %w", n, err)
		}
		points = append(points, SweepPoint{N: cfg.G.N(), M: cfg.G.M(), Summary: sum})
	}
	return points, nil
}

// Fixed wraps a size-independent scheme for Sweep.
func Fixed(s Scheme) func(c *graph.Config) (Scheme, error) {
	return func(*graph.Config) (Scheme, error) { return s, nil }
}

// MaxCertBits measures the verification complexity of Definition 2.1: the
// maximum certificate length generated from the given labels over `trials`
// coin draws. Deterministic schemes exchange no certificates, so it
// returns 0 for them.
func MaxCertBits(s Scheme, c *graph.Config, labels []core.Label, trials int, seed uint64) int {
	if s.Deterministic() {
		return 0
	}
	max := 0
	for t := 0; t < trials; t++ {
		root := prng.New(seed + uint64(t))
		for v := 0; v < c.G.N(); v++ {
			certs := s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
			if b := core.MaxBits(certs); b > max {
				max = b
			}
		}
	}
	return max
}
