package engine

import (
	"fmt"
	goruntime "runtime"
	"sync"

	"rpls/internal/core"
	"rpls/internal/graph"
)

// options collects the functional options of the batch entry points.
type options struct {
	seed         uint64
	trials       int
	exec         Executor
	stats        bool
	labels       []core.Label
	parallelism  int     // trial/sweep workers; 0 selects GOMAXPROCS
	maxSE        float64 // stop when the Wilson half-width is at most this
	stopOnReject bool    // stop at the first rejected trial
	assignments  int     // adversarial assignments per Soundness adversary
	multiplicity int     // message-multiplicity cap m; 0 = unconstrained
}

// Option configures Run, Verify, Estimate, and Sweep.
type Option func(*options)

// WithSeed sets the root seed; node v's private coins in trial t are the
// stream prng.New(seed+t).Fork(v), so every measurement is reproducible.
// The default seed is 1.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithTrials sets the number of Monte-Carlo rounds Estimate and Sweep run
// (default 1). Trial t uses seed+t.
func WithTrials(trials int) Option { return func(o *options) { o.trials = trials } }

// WithExecutor selects the round executor (default: a fresh Sequential).
// Pass a long-lived executor to amortize its scratch buffers across calls.
func WithExecutor(e Executor) Option { return func(o *options) { o.exec = e } }

// WithStats requests the per-node vote vector in Result.Votes. Aggregate
// stats are always collected; the vote vector costs an O(n) copy per round,
// so it is off by default.
func WithStats(v bool) Option { return func(o *options) { o.stats = v } }

// WithLabels verifies under the given (possibly adversarial) label
// assignment instead of invoking the scheme's prover.
func WithLabels(labels []core.Label) Option {
	return func(o *options) { o.labels = labels }
}

// WithParallelism shards Estimate's trials (and Sweep's sizes) across p
// workers, each owning a private executor with independent scratch.
// p <= 0 selects GOMAXPROCS; the default is 1 (serial). Trial t's coins
// depend only on seed+t and outcomes are merged by trial index, so the
// resulting Summary is bit-identical for every p.
func WithParallelism(p int) Option { return func(o *options) { o.parallelism = p } }

// WithMaxSE stops an estimate as soon as the half-width of the 95% Wilson
// interval around the acceptance rate is at most se — "the interval is
// tight enough" — instead of always burning the full trial budget.
// se <= 0 (the default) disables the rule. The stopping trial is computed
// in serial trial order, so early-stopped summaries remain bit-identical
// across parallelism levels and executors.
func WithMaxSE(se float64) Option { return func(o *options) { o.maxSE = se } }

// WithStopOnReject stops an estimate at the first rejected trial. One-sided
// completeness runs ("a legal configuration is accepted with probability
// 1") are resolved by a single rejection, so there is no point continuing;
// Summary.Accepted < Summary.Trials signals the failure with exact counts.
func WithStopOnReject(v bool) Option { return func(o *options) { o.stopOnReject = v } }

// WithAssignments sets how many label assignments Soundness draws per
// randomized adversary (default 8).
func WithAssignments(k int) Option { return func(o *options) { o.assignments = k } }

// WithMultiplicity caps the number of distinct messages a node may send
// per verification round (the congestion axis of core/congestion.go):
// m = 1 is the broadcast model, m >= deg is classic unicast, 0 (the
// default) disables the cap entirely. Randomized schemes degrade via
// core.CappedRPLS when they implement it and by payload replication
// (core.CapReplicate) otherwise; deterministic schemes already broadcast
// and are unaffected. Negative m is rejected by the validated entry
// points.
func WithMultiplicity(m int) Option { return func(o *options) { o.multiplicity = m } }

func buildOptions(opts []Option) options {
	o := options{seed: 1, trials: 1, parallelism: 1, assignments: 8}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *options) executor() Executor {
	if o.exec == nil {
		return NewSequential()
	}
	return o.exec
}

// workers resolves the effective parallelism level.
func (o *options) workers() int {
	if o.parallelism <= 0 {
		return goruntime.GOMAXPROCS(0)
	}
	return o.parallelism
}

// resolveLabels returns the labels to verify under: WithLabels if given
// (validated against the node count), the scheme's prover otherwise.
func (o *options) resolveLabels(s Scheme, c *graph.Config) ([]core.Label, error) {
	labels := o.labels
	if labels == nil {
		var err error
		labels, err = s.Label(c)
		if err != nil {
			return nil, fmt.Errorf("prover %s: %w", s.Name(), err)
		}
	}
	if len(labels) != c.G.N() {
		return nil, fmt.Errorf("prover %s: %d labels for %d nodes", s.Name(), len(labels), c.G.N())
	}
	return labels, nil
}

// Run labels the configuration (or uses WithLabels) and executes one
// verification round. Option combinations are validated up front; a
// rejected combination returns an error matching ErrOption.
func Run(s Scheme, c *graph.Config, opts ...Option) (Result, error) {
	o, err := buildValidated(s, opts)
	if err != nil {
		return Result{}, err
	}
	labels, err := o.resolveLabels(s, c)
	if err != nil {
		return Result{}, err
	}
	return o.round(withCap(s, o.multiplicity), c, labels), nil
}

// Verify executes one round under an arbitrary (possibly adversarial) label
// assignment. It is Run without the prover and without an error path;
// WithLabels is ignored in favor of the explicit argument, and options are
// clamped rather than validated (m <= 0 runs uncapped).
func Verify(s Scheme, c *graph.Config, labels []core.Label, opts ...Option) Result {
	o := buildOptions(opts)
	return o.round(withCap(s, o.multiplicity), c, labels)
}

func (o *options) round(s Scheme, c *graph.Config, labels []core.Label) Result {
	votes, st := o.executor().Round(s, c, labels, o.seed)
	res := Result{Accepted: AllTrue(votes), Stats: st}
	if o.stats {
		res.Votes = append([]bool(nil), votes...)
	}
	return res
}

// SweepPoint is one instance size of a Sweep.
type SweepPoint struct {
	N, M    int // nodes and edges of the built configuration
	Summary Summary
}

// Sweep measures a scheme across instance sizes: for each n it builds a
// configuration, constructs the scheme for it (letting parameterized
// schemes read the instance), labels it with the prover, and runs the
// estimator. The builder's seed is derived from WithSeed and n, so sweeps
// are reproducible point by point. Each point's Summary carries the wire
// aggregates (TotalBits, MaxPortBits, AvgBitsPerEdge), so a sweep doubles
// as a communication-cost curve across sizes.
//
// WithParallelism shards the points across workers (each with a private
// executor clone); every point then estimates its trials serially, so the
// worker count stays bounded. Points are fully independent and stored by
// index, so the result is bit-identical to a serial sweep. On error, the
// points before the first failing size are returned with it.
func Sweep(scheme func(c *graph.Config) (Scheme, error), build func(n int, seed uint64) (*graph.Config, error), sizes []int, opts ...Option) ([]SweepPoint, error) {
	// Schemes are constructed per point, so only the scheme-independent
	// option checks can run at entry.
	o, err := buildValidated(nil, opts)
	if err != nil {
		return nil, err
	}
	w := o.workers()
	if w > len(sizes) {
		w = len(sizes)
	}
	if w > 1 {
		if _, ok := o.executor().(Cloneable); !ok {
			w = 1 // cannot give each worker its own scratch; stay serial
		}
	}
	points := make([]SweepPoint, len(sizes))
	errs := make([]error, len(sizes))
	if w <= 1 {
		for i, n := range sizes {
			points[i], errs[i] = o.sweepPoint(scheme, build, n)
			if errs[i] != nil {
				return points[:i], errs[i]
			}
		}
		return points, nil
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		// Each worker owns one executor and runs its points' trials serially.
		po := o
		po.parallelism = 1
		if i > 0 {
			po.exec = o.executor().(Cloneable).Clone()
		}
		go func(i int, po options) {
			defer wg.Done()
			for idx := i; idx < len(sizes); idx += w {
				points[idx], errs[idx] = po.sweepPoint(scheme, build, sizes[idx])
			}
		}(i, po)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return points[:i], err
		}
	}
	return points, nil
}

// sweepPoint builds, labels, and estimates one instance size.
func (o *options) sweepPoint(scheme func(c *graph.Config) (Scheme, error), build func(n int, seed uint64) (*graph.Config, error), n int) (SweepPoint, error) {
	cfg, err := build(n, o.seed+uint64(n))
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep build n=%d: %w", n, err)
	}
	s, err := scheme(cfg)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep scheme n=%d: %w", n, err)
	}
	labels, err := o.resolveLabels(s, cfg)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep n=%d: %w", n, err)
	}
	s = withCap(s, o.multiplicity)
	return SweepPoint{N: cfg.G.N(), M: cfg.G.M(), Summary: o.estimateLabels(s, cfg, labels)}, nil
}

// Fixed wraps a size-independent scheme for Sweep.
func Fixed(s Scheme) func(c *graph.Config) (Scheme, error) {
	return func(*graph.Config) (Scheme, error) { return s, nil }
}
