package engine

import (
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// The engine half of the congestion axis (see core/congestion.go for the
// model). WithMultiplicity(m) lands here: the validated entry points wrap
// the scheme in a capScheme, whose Certs output satisfies the port-class
// contract, so executors route and gather exactly as before. Executors
// read the cap back through Multiplicity to meter the structural
// distinct-message count (Stats.DistinctMessages) without inspecting
// payloads.

// capScheme caps a randomized scheme's per-round message multiplicity. It
// transforms the certificate vector — natively via core.CappedRPLS when
// the scheme degrades itself, by core.CapReplicate otherwise — and
// delegates everything else, so votes and wire accounting flow through
// the unchanged executor paths. Deterministic schemes are never wrapped:
// they broadcast their label on every port already, satisfying every cap.
type capScheme struct {
	inner  Scheme
	capped core.CappedRPLS // non-nil when the underlying RPLS degrades natively
	m      int
}

// withCap wraps s to respect multiplicity cap m. m <= 0 (uncapped) and
// deterministic schemes return s unchanged, so the classic engine is the
// degenerate point of the axis, bit for bit.
func withCap(s Scheme, m int) Scheme {
	if m <= 0 || s.Deterministic() {
		return s
	}
	w := capScheme{inner: s, m: m}
	// Native degradation applies to single-round schemes only: the t-PLS
	// shard wrapper re-chunks the wire format, so a sharded scheme always
	// takes the CapReplicate path (Rounds(s) > 1 never reaches here via
	// AsRPLS, but guard it anyway — a mismatch would desync CapDecide from
	// the replicated unicast format RoundCerts emits).
	if r, ok := AsRPLS(s); ok && Rounds(s) == 1 {
		if cr, ok := r.(core.CappedRPLS); ok {
			w.capped = cr
		}
	}
	return w
}

// Multiplicity reports the message-multiplicity cap a scheme runs under:
// m >= 1 for a capped scheme, 0 for the classic unconstrained round.
func Multiplicity(s Scheme) int {
	if w, ok := s.(capScheme); ok {
		return w.m
	}
	return 0
}

func (w capScheme) Name() string                                { return w.inner.Name() }
func (w capScheme) Label(c *graph.Config) ([]core.Label, error) { return w.inner.Label(c) }
func (w capScheme) Deterministic() bool                         { return false }
func (w capScheme) OneSided() bool                              { return w.inner.OneSided() }

func (w capScheme) Certs(view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	if w.capped != nil {
		return w.capped.CapCerts(w.m, view, own, rng)
	}
	return core.CapReplicate(w.inner.Certs(view, own, rng), w.m)
}

// Decide routes to the native CapDecide when the scheme degrades itself:
// merged class messages are a different wire format than unicast
// certificates, so the unicast Decide cannot read them. The CapReplicate
// fallback keeps the unicast format (a replicated certificate is still a
// well-formed certificate), so the inner Decide applies unchanged.
func (w capScheme) Decide(view core.View, own core.Label, received []core.Cert) bool {
	if w.capped != nil {
		return w.capped.CapDecide(w.m, view, own, received)
	}
	return w.inner.Decide(view, own, received)
}

// Rounds delegates the t-PLS hook, so capping composes with sharding (the
// cap is applied per round: every round's shard vector is class-uniform).
func (w capScheme) Rounds() int {
	if mr, ok := w.inner.(MultiRound); ok {
		return mr.Rounds()
	}
	return 1
}

func (w capScheme) RoundCerts(round int, view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	if mr, ok := w.inner.(MultiRound); ok {
		return core.CapReplicate(mr.RoundCerts(round, view, own, rng), w.m)
	}
	return w.Certs(view, own, rng)
}

// distinctCount is the structural distinct-message count of one node in
// one round: the number of payload classes the scheme GUARANTEES, not the
// number of payloads that happened to differ. A deterministic scheme
// broadcasts its label (one class); a capped scheme mints at most m; an
// unconstrained randomized scheme may use every port. Structural counting
// is what makes the counter conserved and byte-identical across executors,
// parallelism, and lanes without comparing payload bytes on the hot path.
//
//pls:hotpath
func distinctCount(det bool, mult, deg int) int64 {
	if deg == 0 {
		return 0
	}
	d := deg
	if det {
		d = 1
	} else if mult > 0 && mult < deg {
		d = mult
	}
	return int64(d)
}
