package engine

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/obs"
	"rpls/internal/prng"
)

// Soundness: fan adversarial label assignments against an illegal
// configuration through the trial-parallel estimator and report the
// worst-case acceptance each adversary family achieved. The three families
// are the standard ones of the conformance suite: honest labels
// transplanted from a legal twin, uniformly random labels, and honest
// labels with a single flipped bit.

// Adversary names reported by Soundness.
const (
	AdversaryTransplant = "transplant"
	AdversaryRandom     = "random"
	AdversaryBitFlip    = "bitflip"
)

// AdversaryResult reports how one adversary family fared: the number of
// label assignments it tried and the estimate of the worst (highest
// acceptance) assignment among them.
type AdversaryResult struct {
	Adversary   string
	Assignments int
	WorstIndex  int     // index of the worst assignment within the family
	Worst       Summary // acceptance estimate of that assignment
}

// Soundness measures a scheme's soundness on an illegal configuration.
// legal, when non-nil, is a legal twin whose honest labels feed the
// transplant and bit-flip adversaries (transplant additionally requires
// matching node counts); the random adversary always runs. Per assignment,
// acceptance is estimated with the trial-parallel estimator under the
// caller's WithTrials / WithSeed / WithParallelism / WithExecutor /
// WithMaxSE options; WithAssignments sets the number of random and
// bit-flip assignments. WithStopOnReject is ignored — a soundness run
// wants the acceptance rate, not the first rejection. Results are listed
// in transplant, random, bitflip order.
func Soundness(s Scheme, legal, illegal *graph.Config, opts ...Option) ([]AdversaryResult, error) {
	o, err := buildValidated(s, opts)
	if err != nil {
		return nil, err
	}
	o.stopOnReject = false
	s = withCap(s, o.multiplicity)
	n := illegal.G.N()
	obsSoundnessRuns.Inc()

	var honest []core.Label
	if legal != nil {
		var err error
		honest, err = s.Label(legal)
		if err != nil {
			return nil, fmt.Errorf("prover %s on legal twin: %w", s.Name(), err)
		}
	}

	var out []AdversaryResult
	if honest != nil && legal.G.N() == n {
		out = append(out, AdversaryResult{
			Adversary:   AdversaryTransplant,
			Assignments: 1,
			Worst:       o.estimateLabels(s, illegal, honest),
		})
	}

	maxBits := 32
	if b := core.MaxBits(honest); b > 0 {
		maxBits = b
	}
	rng := prng.New(o.seed).Fork(0xadee5a27)
	out = append(out, o.worstAssignment(s, illegal, AdversaryRandom, func() []core.Label {
		return RandomLabels(rng, n, maxBits)
	}))

	if honest != nil && len(honest) == n {
		out = append(out, o.worstAssignment(s, illegal, AdversaryBitFlip, func() []core.Label {
			return BitFlippedLabels(rng, honest)
		}))
	}
	return out, nil
}

// worstAssignment estimates acceptance for o.assignments draws of the
// adversary and keeps the one with the highest acceptance rate.
func (o *options) worstAssignment(s Scheme, illegal *graph.Config, name string, draw func() []core.Label) AdversaryResult {
	sp := obs.Begin("engine.soundness." + name)
	obsSoundnessAssignments.Add(uint64(o.assignments))
	r := AdversaryResult{Adversary: name, Assignments: o.assignments}
	for a := 0; a < o.assignments; a++ {
		sum := o.estimateLabels(s, illegal, draw())
		if a == 0 || sum.Acceptance > r.Worst.Acceptance {
			r.WorstIndex, r.Worst = a, sum
		}
	}
	sp.A = int64(o.assignments)
	obs.End(sp)
	return r
}

// RandomLabels draws n labels of up to maxBits uniform bits each — the
// unstructured adversary every scheme must defeat.
func RandomLabels(rng *prng.Rand, n, maxBits int) []core.Label {
	out := make([]core.Label, n)
	for i := range out {
		bits := make([]byte, rng.Intn(maxBits+1))
		for j := range bits {
			bits[j] = rng.Bit()
		}
		out[i] = bitstring.FromBits(bits)
	}
	return out
}

// BitFlippedLabels copies labels and flips one uniformly random bit of one
// uniformly random node's label — the minimal-perturbation adversary. A
// node with an empty label gains a single 1 bit instead.
func BitFlippedLabels(rng *prng.Rand, labels []core.Label) []core.Label {
	out := append([]core.Label(nil), labels...)
	if len(out) == 0 {
		return out
	}
	v := rng.Intn(len(out))
	l := out[v]
	if l.Len() == 0 {
		out[v] = bitstring.FromBits([]byte{1})
		return out
	}
	pos := rng.Intn(l.Len())
	bits := make([]byte, l.Len())
	for i := range bits {
		bits[i] = l.Bit(i)
	}
	bits[pos] ^= 1
	out[v] = bitstring.FromBits(bits)
	return out
}
