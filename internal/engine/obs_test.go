package engine_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/obs"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// The no-influence guarantee, dynamically enforced: running the estimator
// with the obs recorder on (metrics, histograms, spans all live) must
// produce golden Summary values identical to a metrics-off run, for every
// executor and parallelism level. The static half is plsvet's obsflow
// analyzer, which forbids engine code from reading telemetry back.

// obsWorkload is one full estimator run on the E15-style boosted-uniform
// workload plus a soundness fan-out, exercising the sequential, lane, and
// adversary instrumentation sites.
func obsWorkload(t testing.TB, exec engine.Executor, parallel int) engine.Summary {
	s := core.Boost(uniform.NewRPLS(), 2)
	cfg := graph.NewConfig(graph.RandomTree(12, prng.New(9)))
	for v := range cfg.States {
		cfg.States[v].Data = []byte{0xC3, 0x5A, 0x96, 0x0F}
	}
	scheme := engine.FromRPLS(s)
	labels, err := scheme.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := engine.Estimate(scheme, cfg, engine.WithLabels(labels),
		engine.WithTrials(96), engine.WithSeed(5),
		engine.WithExecutor(exec), engine.WithParallelism(parallel))
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestSummaryUnchangedByMetrics(t *testing.T) {
	execs := map[string]func() engine.Executor{
		"sequential": func() engine.Executor { return engine.NewSequential() },
		"pool":       func() engine.Executor { return engine.NewPool(0) },
		"goroutines": func() engine.Executor { return engine.NewGoroutines() },
		"batched":    func() engine.Executor { return engine.NewBatched() },
	}
	for name, mk := range execs {
		for _, parallel := range []int{1, 4} {
			obs.SetEnabled(false)
			off := obsWorkload(t, mk(), parallel)

			obs.Reset()
			obs.SetEnabled(true)
			on := obsWorkload(t, mk(), parallel)
			snap := obs.TakeSnapshot()
			obs.SetEnabled(false)
			obs.Reset()

			if on != off {
				t.Errorf("%s/parallel=%d: Summary with metrics on %+v != off %+v", name, parallel, on, off)
			}
			// The run must actually have been recorded, or the comparison
			// proves nothing.
			if snap.Counter("engine.estimate.runs") == 0 || snap.Counter("engine.estimate.trials") == 0 {
				t.Errorf("%s/parallel=%d: metrics-on run recorded nothing", name, parallel)
			}
			if name == "batched" && snap.Counter("engine.batched.batches") == 0 {
				t.Errorf("batched run recorded no batches")
			}
		}
	}
}

// TestSoundnessUnchangedByMetrics covers the adversary fan-out sites.
func TestSoundnessUnchangedByMetrics(t *testing.T) {
	run := func() []engine.AdversaryResult {
		scheme := engine.FromRPLS(uniform.NewRPLS())
		legal := graph.NewConfig(graph.RandomTree(10, prng.New(4)))
		for v := range legal.States {
			legal.States[v].Data = []byte{0x42}
		}
		illegal := graph.NewConfig(graph.RandomTree(10, prng.New(4)))
		illegal.States[3].Data = []byte{0x43}
		advs, err := engine.Soundness(scheme, legal, illegal,
			engine.WithTrials(32), engine.WithSeed(11), engine.WithAssignments(4))
		if err != nil {
			t.Fatal(err)
		}
		return advs
	}
	obs.SetEnabled(false)
	off := run()
	obs.Reset()
	obs.SetEnabled(true)
	on := run()
	snap := obs.TakeSnapshot()
	obs.SetEnabled(false)
	obs.Reset()

	if len(on) != len(off) {
		t.Fatalf("adversary count changed: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("adversary %s: result with metrics on %+v != off %+v", on[i].Adversary, on[i], off[i])
		}
	}
	if snap.Counter("engine.soundness.runs") == 0 || snap.Counter("engine.soundness.assignments") == 0 {
		t.Error("metrics-on soundness run recorded nothing")
	}
}

// TestEstimateAllocParityWithMetrics is the hot-path half of the
// observability contract at estimator scale: a warm metrics-on estimate
// allocates no more than a metrics-off one — every Record call on the
// trial path is allocation-free (the per-call assertions live in
// internal/obs's TestRecordAllocs).
func TestEstimateAllocParityWithMetrics(t *testing.T) {
	exec := engine.NewBatched()
	defer func() {
		obs.SetEnabled(false)
		obs.Reset()
	}()
	// The workload itself has ±1 run-to-run allocation jitter, so measure
	// both sides per attempt and retry before declaring a regression.
	var off, on float64
	for attempt := 0; attempt < 3; attempt++ {
		obs.SetEnabled(false)
		off = testing.AllocsPerRun(5, func() { obsWorkload(t, exec, 1) })
		obs.Reset()
		obs.SetEnabled(true)
		obsWorkload(t, exec, 1) // warm the trace ring
		on = testing.AllocsPerRun(5, func() { obsWorkload(t, exec, 1) })
		if on <= off {
			return
		}
	}
	t.Fatalf("metrics-on estimate allocates %v times vs %v off; recording must be allocation-free", on, off)
}
