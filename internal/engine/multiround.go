package engine

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Multi-round (t-PLS) verification. A MultiRound scheme spreads its
// per-port strings over Rounds() synchronous rounds; the executors run the
// rounds in lockstep, meter every round's messages into the same Stats
// counters (MaxPortBits is therefore the exact bits-per-round of the
// tradeoff), and hand Decide the per-port concatenation, in round order, of
// everything that arrived on that port.
//
// The coin contract keeps the rounds stateless and the execution
// deterministic: in every round of trial seed, node v's rng is a fresh
// prng.New(seed).Fork(v) — the same stream each round — so a scheme
// re-derives its base certificates identically per round and slices out
// the round's shard. All four executors produce identical votes and Stats
// for the same seed at any parallelism level, exactly as in the one-round
// case; the golden-bits test at t ∈ {1, 2, 4} enforces it.

// MultiRound is the optional t-round extension of Scheme. A Scheme that
// does not implement it runs the classic single round.
type MultiRound interface {
	Scheme
	// Rounds is the number of verification rounds t >= 1.
	Rounds() int
	// RoundCerts generates the round-r string per port (index i = port
	// i+1). The executor recreates the rng identically for every round of
	// one trial.
	RoundCerts(round int, view core.View, own core.Label, rng *prng.Rand) []core.Cert
}

// Rounds reports the number of verification rounds a scheme runs: t for a
// MultiRound scheme, 1 otherwise.
func Rounds(s Scheme) int {
	if mr, ok := s.(MultiRound); ok {
		if t := mr.Rounds(); t > 1 {
			return t
		}
	}
	return 1
}

// IsCoinFree reports whether every round of the scheme is coin-free, so a
// single trial measures it exactly: deterministic schemes, and multi-round
// schemes that declare themselves CoinFree (a sharded deterministic
// scheme). Drivers use it to collapse the trial budget the way they already
// do for Deterministic schemes.
func IsCoinFree(s Scheme) bool {
	if s.Deterministic() {
		return true
	}
	if a, ok := s.(multiScheme); ok {
		if cf, ok := a.s.(core.CoinFree); ok {
			return cf.CoinFree()
		}
	}
	return false
}

// multiScheme adapts a core.MultiRPLS onto the unified Scheme plus the
// MultiRound hook. It reports Deterministic() == false so executors drive
// the RoundCerts path — even for a sharded deterministic base, whose
// "certificates" are label shards rather than whole labels.
type multiScheme struct{ s core.MultiRPLS }

// FromMultiRPLS adapts a t-round scheme onto the unified round abstraction.
func FromMultiRPLS(s core.MultiRPLS) Scheme { return multiScheme{s} }

func (a multiScheme) Name() string                                { return a.s.Name() }
func (a multiScheme) Label(c *graph.Config) ([]core.Label, error) { return a.s.Label(c) }
func (a multiScheme) Deterministic() bool                         { return false }
func (a multiScheme) OneSided() bool                              { return a.s.OneSided() }
func (a multiScheme) Rounds() int                                 { return a.s.Rounds() }

// Certs is the single-round entry: a t-round scheme run by a single-round
// driver sends its round-0 strings (for t == 1 that is the whole scheme).
func (a multiScheme) Certs(view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	return a.s.RoundCerts(0, view, own, rng)
}

func (a multiScheme) RoundCerts(round int, view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	return a.s.RoundCerts(round, view, own, rng)
}

func (a multiScheme) Decide(view core.View, own core.Label, received []core.Cert) bool {
	return a.s.Decide(view, own, received)
}

// Shard wraps a registered scheme into its t-round sharded form (the
// constructive direction of the κ/t tradeoff): per port and per round it
// sends ⌈κ/t⌉ bits, and the receiver's reassembly feeds the base decision.
// t == 1 returns the scheme unchanged, so the rounds axis degenerates to
// the classic engine exactly; t < 1 is rejected. Only schemes adapted from
// the core model types (FromPLS / FromRPLS) can be sharded — everything in
// the registry is.
func Shard(s Scheme, t int) (Scheme, error) {
	if t == 1 {
		return s, nil
	}
	if t < 1 {
		return nil, fmt.Errorf("engine: shard %s into %d rounds: need t >= 1", s.Name(), t)
	}
	if pls, ok := AsPLS(s); ok {
		m, err := core.ShardPLS(pls, t)
		if err != nil {
			return nil, err
		}
		return FromMultiRPLS(m), nil
	}
	if rpls, ok := AsRPLS(s); ok {
		m, err := core.ShardCompile(rpls, t)
		if err != nil {
			return nil, err
		}
		return FromMultiRPLS(m), nil
	}
	return nil, fmt.Errorf("engine: scheme %s is not a core PLS/RPLS adapter; cannot shard", s.Name())
}
