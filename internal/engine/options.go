package engine

import (
	"errors"
	"fmt"
)

// The validated options layer. The With* functional options only record
// values; every error-returning batch entry point (Run, Estimate, Sweep,
// Soundness) resolves them through buildValidated, which cross-checks the
// combination against the scheme before any work starts and returns a
// typed *OptionError instead of silently misbehaving. Verify keeps its
// no-error signature: it clamps rather than rejects (an uncapped round for
// m <= 0), as its callers are adversarial fan-outs that never pass
// caller-controlled options.

// ErrOption is the sentinel wrapped by every option-validation failure;
// match with errors.Is.
var ErrOption = errors.New("engine: invalid option")

// OptionError reports which option was rejected and why. It unwraps to
// ErrOption.
type OptionError struct {
	Option string // the offending With* option, e.g. "WithMaxSE"
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("engine: invalid option %s: %s", e.Option, e.Reason)
}

func (e *OptionError) Unwrap() error { return ErrOption }

func optionErr(option, format string, args ...any) error {
	return &OptionError{Option: option, Reason: fmt.Sprintf(format, args...)}
}

// buildValidated resolves the options and cross-checks them against the
// scheme. s may be nil when no scheme is known at entry (Sweep constructs
// its schemes per point); scheme-dependent checks are then skipped.
func buildValidated(s Scheme, opts []Option) (options, error) {
	o := buildOptions(opts)
	if o.trials < 0 {
		return o, optionErr("WithTrials", "negative trial count %d", o.trials)
	}
	if o.parallelism < 0 {
		return o, optionErr("WithParallelism", "negative worker count %d (use 0 for GOMAXPROCS)", o.parallelism)
	}
	if o.assignments <= 0 {
		return o, optionErr("WithAssignments", "non-positive assignment count %d", o.assignments)
	}
	if o.maxSE < 0 {
		return o, optionErr("WithMaxSE", "negative interval half-width %g", o.maxSE)
	}
	if o.multiplicity < 0 {
		return o, optionErr("WithMultiplicity", "negative multiplicity cap %d (use 0 for unconstrained)", o.multiplicity)
	}
	if s != nil {
		if o.maxSE > 0 && IsCoinFree(s) {
			return o, optionErr("WithMaxSE",
				"scheme %s is coin-free: every trial is the same execution — collapse the budget to one trial instead of early-stopping", s.Name())
		}
	}
	return o, nil
}
