package runtime

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// RunShared labels the configuration and runs one shared-randomness
// verification round.
func RunShared(s core.SharedRPLS, c *graph.Config, seed uint64) (Result, error) {
	labels, err := s.Label(c)
	if err != nil {
		return Result{}, fmt.Errorf("prover %s: %w", s.Name(), err)
	}
	return VerifyShared(s, c, labels, seed), nil
}

// VerifyShared runs one round of the shared-coin model: every node receives
// an identically seeded public stream plus a private fork.
func VerifyShared(s core.SharedRPLS, c *graph.Config, labels []core.Label, seed uint64) Result {
	n := c.G.N()
	root := prng.New(seed)
	all := make([][]core.Cert, n)
	certBits := 0
	for v := 0; v < n; v++ {
		certs := s.CertsShared(core.ViewOf(c, v), labels[v], core.SharedCoins(seed), root.Fork(uint64(v)))
		all[v] = certs
		if b := core.MaxBits(certs); b > certBits {
			certBits = b
		}
	}
	votes := make([]bool, n)
	// The shared-coin model is the one round shape the engine's executors do
	// not run (SharedRPLS needs the public stream), so this compat path is
	// the sole metering authority for its own round.
	//plsvet:allow meterflow — shared-coin rounds are executed here, not by an engine executor; this is their metering source, not a consumer cooking engine numbers
	stats := Stats{MaxLabelBits: core.MaxBits(labels), MaxCertBits: certBits}
	for v := 0; v < n; v++ {
		deg := c.G.Degree(v)
		received := make([]core.Cert, deg)
		for i := 0; i < deg; i++ {
			h := c.G.Neighbor(v, i+1)
			if h.RevPort-1 < len(all[h.To]) {
				received[i] = all[h.To][h.RevPort-1]
				//plsvet:allow meterflow — see above: this function executes the shared-coin round itself
				stats.TotalWireBits += int64(received[i].Len())
			}
		}
		//plsvet:allow meterflow — see above: this function executes the shared-coin round itself
		stats.Messages += deg
		votes[v] = s.DecideShared(core.ViewOf(c, v), labels[v], received, core.SharedCoins(seed))
	}
	return Result{Accepted: engine.AllTrue(votes), Votes: votes, Stats: stats}
}

// EstimateAcceptanceShared is the Monte-Carlo acceptance estimator for the
// shared-coin model.
func EstimateAcceptanceShared(s core.SharedRPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	accepted := 0
	for t := 0; t < trials; t++ {
		if VerifyShared(s, c, labels, seed+uint64(t)).Accepted {
			accepted++
		}
	}
	return float64(accepted) / float64(trials)
}
