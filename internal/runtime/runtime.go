// Package runtime is the compatibility layer over rpls/internal/engine,
// preserving the original entry points of the goroutine-per-node
// verification runtime. New code should use the engine package directly:
// its unified Scheme abstraction serves both models with one round
// implementation, and its Sequential and Pool executors amortize buffers
// across rounds.
//
// VerifyPLS and VerifyRPLS keep the model-faithful goroutine-per-node
// semantics (engine.Goroutines): each node runs as its own goroutine and
// messages travel over per-directed-edge channels, so a verifier physically
// cannot read anything but its own state, its own label, and what arrived
// on its ports. The Monte-Carlo estimator uses the sequential fast path
// with identical semantics, as before.
package runtime

import (
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
)

// Stats records the measured communication cost of one verification round.
type Stats = engine.Stats

// Result is the outcome of one verification round.
type Result = engine.Result

// RunPLS labels the configuration with the scheme's prover and runs the
// deterministic verification round.
func RunPLS(s core.PLS, c *graph.Config) (Result, error) {
	return engine.Run(engine.FromPLS(s), c,
		engine.WithExecutor(engine.NewGoroutines()), engine.WithStats(true))
}

// VerifyPLS runs the deterministic round under an arbitrary (possibly
// adversarial) label assignment: nodes exchange labels over channels and
// decide concurrently.
func VerifyPLS(s core.PLS, c *graph.Config, labels []core.Label) Result {
	return engine.Verify(engine.FromPLS(s), c, labels,
		engine.WithExecutor(engine.NewGoroutines()), engine.WithStats(true))
}

// RunRPLS labels the configuration with the scheme's prover and runs one
// randomized verification round with the given seed.
func RunRPLS(s core.RPLS, c *graph.Config, seed uint64) (Result, error) {
	return engine.Run(engine.FromRPLS(s), c, engine.WithSeed(seed),
		engine.WithExecutor(engine.NewGoroutines()), engine.WithStats(true))
}

// VerifyRPLS runs one randomized round under an arbitrary label assignment.
// Node v's private coins are the stream prng.New(seed).Fork(v); schemes fork
// further per port for edge independence.
func VerifyRPLS(s core.RPLS, c *graph.Config, labels []core.Label, seed uint64) Result {
	return engine.Verify(engine.FromRPLS(s), c, labels, engine.WithSeed(seed),
		engine.WithExecutor(engine.NewGoroutines()), engine.WithStats(true))
}

// EstimateAcceptance runs `trials` independent randomized rounds and returns
// the fraction accepted. Seeds are seed, seed+1, … so estimates are
// reproducible.
func EstimateAcceptance(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) float64 {
	sum, err := engine.Estimate(engine.FromRPLS(s), c,
		engine.WithLabels(labels), engine.WithTrials(trials), engine.WithSeed(seed))
	if err != nil {
		// With explicit labels the only failure is a label/node count
		// mismatch — a programming error that used to fail loudly as an
		// index panic; keep it loud rather than report 0 acceptance.
		panic(err)
	}
	return sum.Acceptance
}

// MaxCertBitsOver measures the verification complexity of Definition 2.1:
// the maximum certificate length the verifier generates from the prover's
// labels on the given (legal) configuration, over `trials` coin draws.
func MaxCertBitsOver(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) int {
	return engine.MaxCertBits(engine.FromRPLS(s), c, labels, trials, seed)
}
