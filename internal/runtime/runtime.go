// Package runtime executes proof-labeling-scheme verification rounds on a
// configuration, faithfully to the model of §2.1: one synchronous round in
// which every node sends a value to each neighbor and then computes a
// boolean output.
//
// Each node runs as its own goroutine; messages travel over per-directed-
// edge channels, so a verifier physically cannot read anything but its own
// state, its own label, and what arrived on its ports. A sequential fast
// path with identical semantics backs the Monte-Carlo acceptance estimator.
package runtime

import (
	"fmt"
	"sync"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Stats records the measured communication cost of one verification round.
// MaxLabelBits is the prover's label size; MaxCertBits is the verification
// complexity κ of Definition 2.1 (0 for deterministic schemes, where labels
// themselves are exchanged and MaxLabelBits is the κ of the PLS model).
type Stats struct {
	MaxLabelBits  int
	MaxCertBits   int
	TotalWireBits int64 // sum of bits crossing all directed edges
	Messages      int   // number of point-to-point messages (2m)
}

// Result is the outcome of one verification round.
type Result struct {
	Accepted bool   // all nodes output true
	Votes    []bool // per-node outputs
	Stats    Stats
}

// RunPLS labels the configuration with the scheme's prover and runs the
// deterministic verification round.
func RunPLS(s core.PLS, c *graph.Config) (Result, error) {
	labels, err := s.Label(c)
	if err != nil {
		return Result{}, fmt.Errorf("prover %s: %w", s.Name(), err)
	}
	if len(labels) != c.G.N() {
		return Result{}, fmt.Errorf("prover %s: %d labels for %d nodes", s.Name(), len(labels), c.G.N())
	}
	return VerifyPLS(s, c, labels), nil
}

// VerifyPLS runs the deterministic round under an arbitrary (possibly
// adversarial) label assignment: nodes exchange labels over channels and
// decide concurrently.
func VerifyPLS(s core.PLS, c *graph.Config, labels []core.Label) Result {
	n := c.G.N()
	in := buildChannels(c.G)
	votes := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			// Send our label on every incident edge.
			for i, h := range c.G.Adj(v) {
				_ = i
				in[h.To][h.RevPort-1] <- labels[v]
			}
			// Receive the neighbor labels, indexed by our port.
			deg := c.G.Degree(v)
			nbrs := make([]core.Label, deg)
			for i := 0; i < deg; i++ {
				nbrs[i] = <-in[v][i]
			}
			votes[v] = s.Verify(core.ViewOf(c, v), labels[v], nbrs)
		}(v)
	}
	wg.Wait()
	stats := Stats{MaxLabelBits: core.MaxBits(labels)}
	for v := 0; v < n; v++ {
		deg := c.G.Degree(v)
		stats.Messages += deg
		stats.TotalWireBits += int64(deg * labels[v].Len())
	}
	return Result{Accepted: allTrue(votes), Votes: votes, Stats: stats}
}

// RunRPLS labels the configuration with the scheme's prover and runs one
// randomized verification round with the given seed.
func RunRPLS(s core.RPLS, c *graph.Config, seed uint64) (Result, error) {
	labels, err := s.Label(c)
	if err != nil {
		return Result{}, fmt.Errorf("prover %s: %w", s.Name(), err)
	}
	if len(labels) != c.G.N() {
		return Result{}, fmt.Errorf("prover %s: %d labels for %d nodes", s.Name(), len(labels), c.G.N())
	}
	return VerifyRPLS(s, c, labels, seed), nil
}

// VerifyRPLS runs one randomized round under an arbitrary label assignment.
// Node v's private coins are the stream prng.New(seed).Fork(v); schemes fork
// further per port for edge independence.
func VerifyRPLS(s core.RPLS, c *graph.Config, labels []core.Label, seed uint64) Result {
	n := c.G.N()
	in := buildChannels(c.G)
	votes := make([]bool, n)
	certBits := make([]int, n) // max cert bits sent by node v
	root := prng.New(seed)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			view := core.ViewOf(c, v)
			certs := s.Certs(view, labels[v], root.Fork(uint64(v)))
			for i, h := range c.G.Adj(v) {
				var cert core.Cert
				if i < len(certs) {
					cert = certs[i]
				}
				if cert.Len() > certBits[v] {
					certBits[v] = cert.Len()
				}
				in[h.To][h.RevPort-1] <- cert
			}
			deg := c.G.Degree(v)
			received := make([]core.Cert, deg)
			for i := 0; i < deg; i++ {
				received[i] = <-in[v][i]
			}
			votes[v] = s.Decide(view, labels[v], received)
		}(v)
	}
	wg.Wait()
	stats := Stats{MaxLabelBits: core.MaxBits(labels)}
	for v := 0; v < n; v++ {
		if certBits[v] > stats.MaxCertBits {
			stats.MaxCertBits = certBits[v]
		}
		stats.Messages += c.G.Degree(v)
	}
	stats.TotalWireBits = totalCertBits(s, c, labels, seed)
	return Result{Accepted: allTrue(votes), Votes: votes, Stats: stats}
}

// verifyRPLSSequential produces the same votes as VerifyRPLS for the same
// seed, without goroutines; the Monte-Carlo estimator uses it.
func verifyRPLSSequential(s core.RPLS, c *graph.Config, labels []core.Label, seed uint64) bool {
	n := c.G.N()
	root := prng.New(seed)
	all := make([][]core.Cert, n)
	for v := 0; v < n; v++ {
		all[v] = s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
	}
	for v := 0; v < n; v++ {
		deg := c.G.Degree(v)
		received := make([]core.Cert, deg)
		for i := 0; i < deg; i++ {
			h := c.G.Neighbor(v, i+1)
			certs := all[h.To]
			if h.RevPort-1 < len(certs) {
				received[i] = certs[h.RevPort-1]
			}
		}
		if !s.Decide(core.ViewOf(c, v), labels[v], received) {
			return false
		}
	}
	return true
}

func totalCertBits(s core.RPLS, c *graph.Config, labels []core.Label, seed uint64) int64 {
	root := prng.New(seed)
	var total int64
	for v := 0; v < c.G.N(); v++ {
		certs := s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
		for _, cert := range certs {
			total += int64(cert.Len())
		}
	}
	return total
}

// EstimateAcceptance runs `trials` independent randomized rounds and returns
// the fraction accepted. Seeds are seed, seed+1, … so estimates are
// reproducible.
func EstimateAcceptance(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	accepted := 0
	for t := 0; t < trials; t++ {
		if verifyRPLSSequential(s, c, labels, seed+uint64(t)) {
			accepted++
		}
	}
	return float64(accepted) / float64(trials)
}

// MaxCertBitsOver measures the verification complexity of Definition 2.1:
// the maximum certificate length the verifier generates from the prover's
// labels on the given (legal) configuration, over `trials` coin draws.
func MaxCertBitsOver(s core.RPLS, c *graph.Config, labels []core.Label, trials int, seed uint64) int {
	max := 0
	for t := 0; t < trials; t++ {
		root := prng.New(seed + uint64(t))
		for v := 0; v < c.G.N(); v++ {
			certs := s.Certs(core.ViewOf(c, v), labels[v], root.Fork(uint64(v)))
			if b := core.MaxBits(certs); b > max {
				max = b
			}
		}
	}
	return max
}

// buildChannels wires one buffered channel per directed edge;
// in[v][p-1] carries messages arriving at v on port p.
func buildChannels(g *graph.Graph) [][]chan bitstring.String {
	in := make([][]chan bitstring.String, g.N())
	for v := range in {
		in[v] = make([]chan bitstring.String, g.Degree(v))
		for i := range in[v] {
			in[v][i] = make(chan bitstring.String, 1)
		}
	}
	return in
}

func allTrue(votes []bool) bool {
	for _, v := range votes {
		if !v {
			return false
		}
	}
	return len(votes) > 0
}
