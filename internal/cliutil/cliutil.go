// Package cliutil holds flag wiring shared by the repository's CLIs, so
// plsrun and every plscampaign subcommand expose identical observability
// flags with identical help text. The flags drive internal/obs: -metrics
// and -trace write post-run artifacts, -debug-addr serves the live debug
// endpoints (expvar, pprof, /metrics, /trace) for the run's duration, and
// -debug-hold keeps them up afterwards for profiling. Telemetry never
// changes results — the engine's metrics-on/off byte-compare tests and
// the campaign smoke enforce it — so every command can offer the full set
// unconditionally.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rpls/internal/obs"
)

// ObsFlags is the shared observability flag block. Register it on a
// command's FlagSet, call Start after parsing and Finish on the way out:
//
//	o := cliutil.RegisterObs(fs, true)
//	...fs.Parse...
//	if err := o.Start(); err != nil { return err }
//	...run...
//	return o.Finish(runErr)
type ObsFlags struct {
	Metrics   string        // -metrics: obs snapshot JSON path
	Trace     string        // -trace: Chrome trace_event JSON path
	DebugAddr string        // -debug-addr: live debug endpoints (when registered)
	DebugHold time.Duration // -debug-hold: linger after the run (when registered)

	srv *obs.DebugServer
}

// RegisterObs registers the shared flags on fs. withDebug additionally
// registers -debug-addr/-debug-hold; commands that cannot host a debug
// server (a worker loop bound to a coordinator, say) pass false and keep
// the artifact flags only.
func RegisterObs(fs *flag.FlagSet, withDebug bool) *ObsFlags {
	o := &ObsFlags{}
	fs.StringVar(&o.Metrics, "metrics", "", "write an obs metrics snapshot (JSON) to this file after the run")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome trace_event JSON of the run's spans to this file")
	if withDebug {
		fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/vars, /debug/pprof, /metrics, and /trace on this address during the run")
		fs.DurationVar(&o.DebugHold, "debug-hold", 0, "keep the debug server alive this long after the run finishes (for live profiling)")
	}
	return o
}

// Requested reports whether any observability flag was set, i.e. whether
// the run wants the recorder on.
func (o *ObsFlags) Requested() bool {
	return o.Metrics != "" || o.Trace != "" || o.DebugAddr != ""
}

// Start enables the obs recorder if any flag asked for it and brings up
// the debug server when -debug-addr is set. Call once, after flag parsing.
func (o *ObsFlags) Start() error {
	if o.Requested() {
		obs.SetEnabled(true)
	}
	if o.DebugAddr != "" {
		dbg, err := obs.ServeDebug(o.DebugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		o.srv = dbg
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/vars (pprof, /metrics, /trace)\n", dbg.Addr)
	}
	return nil
}

// Finish writes the requested artifacts, holds the debug server for
// -debug-hold, and shuts it down. Artifacts are written even when the run
// errored — a failed run is exactly when the metrics are wanted — and the
// run's own error takes precedence over a write failure.
func (o *ObsFlags) Finish(runErr error) error {
	if o.Metrics != "" {
		if err := obs.WriteSnapshotFile(o.Metrics); err != nil && runErr == nil {
			runErr = fmt.Errorf("write metrics: %w", err)
		}
	}
	if o.Trace != "" {
		if err := obs.WriteTraceFile(o.Trace); err != nil && runErr == nil {
			runErr = fmt.Errorf("write trace: %w", err)
		}
	}
	if o.srv != nil {
		if o.DebugHold > 0 {
			fmt.Fprintf(os.Stderr, "holding debug server for %v\n", o.DebugHold)
			time.Sleep(o.DebugHold)
		}
		o.srv.Close()
		o.srv = nil
	}
	return runErr
}
