// Package prng provides a deterministic, splittable pseudo-random number
// generator used for the private coins of each node in a randomized
// proof-labeling scheme.
//
// The paper's model gives every node access to independent random bits
// (§2.2) and defines edge-independent RPLSs (Definition 4.5) in which each
// per-port certificate is generated from independent bits. Fork derives a
// statistically independent child stream per (node, port, trial), so
// experiments are exactly reproducible from a single seed while honoring
// edge independence.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state
// advanced by a Weyl sequence and finalized with a strong mixer. It is not
// cryptographic; the adversary in our experiments is the label assignment,
// not the coin source, matching the paper's model.
//
// Nearby seeds are safe: the estimator seeds trial t with seed+t, so the
// batched executor runs lanes whose root states differ by 1. New stores
// the raw seed as state, but no raw state ever reaches an output — every
// draw passes the mix64 finalizer and every Fork mixes both the parent
// state and the child id — so unit-distance streams decorrelate at the
// first draw (about half of all 64 output bits flip; audited by
// TestNearbySeedAvalanche). No seed premixing is needed, which keeps all
// golden summaries pinned.
package prng

// Rand is a SplitMix64 stream. It is not safe for concurrent use; fork a
// child per goroutine instead.
type Rand struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

const (
	gamma = 0x9E3779B97F4A7C15 // golden-ratio increment
	mix1  = 0xBF58476D1CE4E5B9
	mix2  = 0x94D049BB133111EB
)

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mix1
	z = (z ^ (z >> 27)) * mix2
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += gamma
	return mix64(r.state)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0. Rejection
// sampling removes modulo bias, which matters because fingerprint soundness
// bounds assume exactly uniform field elements.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Largest multiple of n that fits in 64 bits.
	limit := -n % n // == (2^64 - n) mod n; threshold trick from Lemire
	for {
		v := r.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Bit returns a single uniform bit.
func (r *Rand) Bit() byte {
	return byte(r.Uint64() >> 63)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Bit() == 1 }

// Fork derives an independent child stream identified by id without
// perturbing the parent. Children with distinct ids (or from parents with
// distinct states) are statistically independent under the SplitMix64 mixer.
func (r *Rand) Fork(id uint64) *Rand {
	const gamma3 = 0xDAA66D2C7DDF743F // 3·gamma mod 2^64
	return &Rand{state: mix64(r.state+gamma3) ^ mix64(id*gamma+1)}
}

// Perm returns a uniform permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements via the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
