package prng

import (
	"math"
	"math/bits"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds coincided %d/100 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared check over 8 buckets: with 80k samples the statistic has
	// 7 degrees of freedom; 40 is far beyond any plausible quantile.
	r := New(99)
	const buckets = 8
	const samples = 80000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 40 {
		t.Errorf("chi-squared = %.1f, distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	c1again := parent.Fork(1)

	// Same id forked from same parent state gives the same stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatal("Fork with same id is not deterministic")
		}
	}
	// Different ids give (almost surely) different streams.
	c1 = parent.Fork(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams with different ids coincided %d/100 times", same)
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.Fork(3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork perturbed the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBitBalance(t *testing.T) {
	r := New(23)
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bit() == 1 {
			ones++
		}
	}
	if ones < n/2-300 || ones > n/2+300 {
		t.Errorf("Bit() produced %d ones out of %d", ones, n)
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

// TestNearbySeedAvalanche audits the estimator's seed schedule: trial t
// runs on prng.New(seed+t), so adjacent trials (and, under the batched
// executor, adjacent lanes of one batch) use seeds differing by 1. The
// SplitMix64 mixer finalizes every draw, so even unit-distance states must
// decorrelate at the first output: across nearby-seed pairs the first
// draws should differ in about half their 64 bits, both for the root
// stream and for the node/port fork chains the executors derive. A failure
// here would mean batched lanes share coin structure — the correlation the
// nearby-seed audit was looking for (it found none, hence no seed
// premixing compat flag).
func TestNearbySeedAvalanche(t *testing.T) {
	pairs := 0
	total := 0
	check := func(name string, a, b uint64) {
		d := bits.OnesCount64(a ^ b)
		if d < 12 || d > 52 {
			t.Errorf("%s: first draws %#x vs %#x differ in only %d/64 bits", name, a, b, d)
		}
		total += d
		pairs++
	}
	for base := uint64(0); base < 512; base++ {
		// Adjacent trial seeds, as Estimate derives them.
		check("root", New(base).Uint64(), New(base+1).Uint64())
		// Same node stream of adjacent lanes: New(seed+l).Fork(v).
		check("fork-node", New(base).Fork(7).Uint64(), New(base+1).Fork(7).Uint64())
		// Adjacent port forks within one lane: rng.Fork(i), rng.Fork(i+1).
		r := New(base)
		check("fork-port", r.Fork(3).Uint64(), r.Fork(4).Uint64())
	}
	mean := float64(total) / float64(pairs)
	if mean < 30 || mean > 34 {
		t.Errorf("mean avalanche distance %.2f bits, want ~32", mean)
	}
}
