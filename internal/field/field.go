// Package field implements arithmetic over prime fields GF(p) and the
// polynomial fingerprints at the heart of every randomized certificate in
// the paper.
//
// Lemma A.1 views a λ-bit string a = a₀a₁…a_{λ−1} as the polynomial
// A(x) = a₀ + a₁x + … + a_{λ−1}x^{λ−1} over GF(p) for a prime 3λ < p < 6λ,
// and certifies equality by exchanging (x, A(x)) for a uniform x. Two
// distinct strings agree on at most λ−1 of the p > 3λ points, so the
// one-sided error is below 1/3. This package provides the prime selection,
// the Horner evaluation, and a generalized error knob (choose p > λ/ε for
// per-test error ε) supporting the paper's observation that all schemes are
// oblivious to the confidence parameter.
package field

import (
	"fmt"
	"math/bits"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

// MulMod returns a*b mod m without overflow for any 64-bit operands.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// AddMod returns (a + b) mod m without overflow.
func AddMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= m-b {
		return a - (m - b)
	}
	return a + b
}

// PowMod returns a^e mod m by square-and-multiply.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is a deterministic witness set for all 64-bit integers
// (Sinclair 2011).
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range millerRabinBases {
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// NextPrime returns the smallest prime >= n. It panics on overflow, which
// cannot occur for the field sizes used by the schemes (p = O(n·λ)).
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for {
		if IsPrime(n) {
			return n
		}
		if n > n+2 {
			panic("field: prime search overflow")
		}
		n += 2
	}
}

// PrimeForLength returns a prime p with 3λ < p < 6λ as in Lemma A.1.
// Bertrand's postulate guarantees one exists for λ >= 1; for tiny λ the
// range is padded so the field is never trivially small.
func PrimeForLength(lambda int) uint64 {
	if lambda < 2 {
		lambda = 2
	}
	lo := uint64(3*lambda) + 1
	p := NextPrime(lo)
	if p >= uint64(6*lambda) && lambda > 2 {
		// Cannot happen by Bertrand (there is a prime in (3λ, 6λ)), but the
		// invariant is cheap to defend.
		panic(fmt.Sprintf("field: no prime in (3*%d, 6*%d)", lambda, lambda))
	}
	return p
}

// PrimeForError returns a prime p > λ/ε, so a polynomial fingerprint of a
// λ-bit string errs with probability < ε. This is the ε-obliviousness knob
// of §1: confidence is tuned purely through the field size.
func PrimeForError(lambda int, eps float64) uint64 {
	if lambda < 1 {
		lambda = 1
	}
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("field: error rate %v out of (0,1)", eps))
	}
	target := float64(lambda) / eps
	if target < 5 {
		target = 5
	}
	return NextPrime(uint64(target) + 1)
}

// Poly is a polynomial over GF(p) whose coefficients are the bits of a
// string: coefficient i is bit i.
type Poly struct {
	bits bitstring.String
	p    uint64
}

// NewPoly interprets s as a polynomial over GF(p).
func NewPoly(s bitstring.String, p uint64) Poly {
	return Poly{bits: s, p: p}
}

// Eval returns the polynomial evaluated at x via Horner's rule, treating
// bit 0 as the constant coefficient: A(x) = a₀ + a₁x + … .
//
// Every scheme in this module uses p = O(n·λ) ≪ 2³¹, so the fast path with
// native 64-bit products covers them; the 128-bit path keeps the function
// correct for arbitrary moduli.
func (poly Poly) Eval(x uint64) uint64 {
	p := poly.p
	n := poly.bits.Len()
	if p < 1<<31 {
		x %= p
		acc := uint64(0)
		for i := n - 1; i >= 0; i-- {
			acc = acc * x % p
			if poly.bits.Bit(i) == 1 {
				acc++
				if acc == p {
					acc = 0
				}
			}
		}
		return acc
	}
	acc := uint64(0)
	for i := n - 1; i >= 0; i-- {
		acc = MulMod(acc, x, p)
		if poly.bits.Bit(i) == 1 {
			acc = AddMod(acc, 1, p)
		}
	}
	return acc
}

// Fingerprint is an evaluation point with the value of a string's polynomial
// there: the pair (x, A(x)) exchanged by Lemma A.1's protocol.
type Fingerprint struct {
	X, Y uint64
	P    uint64 // field modulus, fixed by the scheme, not transmitted
}

// NewFingerprint draws a uniform x in GF(p) with rng and evaluates s there.
func NewFingerprint(s bitstring.String, p uint64, rng *prng.Rand) Fingerprint {
	x := rng.Uint64n(p)
	return Fingerprint{X: x, Y: NewPoly(s, p).Eval(x), P: p}
}

// Matches reports whether the string t is consistent with the fingerprint,
// i.e. whether t's polynomial passes through (X, Y).
func (f Fingerprint) Matches(t bitstring.String) bool {
	return NewPoly(t, f.P).Eval(f.X) == f.Y
}

// Bits returns the number of bits needed to transmit the fingerprint:
// 2·⌈log₂ p⌉ (the modulus is part of the scheme description, not the
// message). This is the quantity Definition 2.1 measures.
func (f Fingerprint) Bits() int {
	return 2 * bitstring.UintBits(f.P-1)
}

// Encode serializes the fingerprint into w using 2·⌈log₂ p⌉ bits.
func (f Fingerprint) Encode(w *bitstring.Writer) {
	width := bitstring.UintBits(f.P - 1)
	w.WriteUint(f.X, width)
	w.WriteUint(f.Y, width)
}

// DecodeFingerprint reads a fingerprint produced by Encode for modulus p.
func DecodeFingerprint(r *bitstring.Reader, p uint64) (Fingerprint, error) {
	width := bitstring.UintBits(p - 1)
	x, err := r.ReadUint(width)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("fingerprint x: %w", err)
	}
	y, err := r.ReadUint(width)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("fingerprint y: %w", err)
	}
	if x >= p || y >= p {
		return Fingerprint{}, fmt.Errorf("fingerprint out of field range (p=%d)", p)
	}
	return Fingerprint{X: x, Y: y, P: p}, nil
}
