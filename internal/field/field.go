// Package field implements arithmetic over prime fields GF(p) and the
// polynomial fingerprints at the heart of every randomized certificate in
// the paper.
//
// Lemma A.1 views a λ-bit string a = a₀a₁…a_{λ−1} as the polynomial
// A(x) = a₀ + a₁x + … + a_{λ−1}x^{λ−1} over GF(p) for a prime 3λ < p < 6λ,
// and certifies equality by exchanging (x, A(x)) for a uniform x. Two
// distinct strings agree on at most λ−1 of the p > 3λ points, so the
// one-sided error is below 1/3. This package provides the prime selection,
// the Horner evaluation, and a generalized error knob (choose p > λ/ε for
// per-test error ε) supporting the paper's observation that all schemes are
// oblivious to the confidence parameter.
package field

import (
	"fmt"
	"math/bits"
	"sync"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

// MulMod returns a*b mod m without overflow for any 64-bit operands.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// AddMod returns (a + b) mod m without overflow.
func AddMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= m-b {
		return a - (m - b)
	}
	return a + b
}

// PowMod returns a^e mod m by square-and-multiply.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is a deterministic witness set for all 64-bit integers
// (Sinclair 2011).
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range millerRabinBases {
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// NextPrime returns the smallest prime >= n. It panics on overflow, which
// cannot occur for the field sizes used by the schemes (p = O(n·λ)).
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for {
		if IsPrime(n) {
			return n
		}
		if n > n+2 {
			panic("field: prime search overflow")
		}
		n += 2
	}
}

// primeForLengthCache memoizes PrimeForLength. Schemes call it once per
// Certs and once per Decide — i.e. per node per trial — but only ever for
// the handful of distinct label lengths an experiment produces, so the
// Miller-Rabin search used to dominate estimator-heavy profiles (60% of
// E15) while computing the same few primes over and over.
var primeForLengthCache sync.Map // clamped lambda (int) -> p (uint64)

// PrimeForLength returns a prime p with 3λ < p < 6λ as in Lemma A.1.
// Bertrand's postulate guarantees one exists for λ >= 1; for tiny λ the
// range is padded so the field is never trivially small. Results are
// memoized: the prime is a pure function of λ, and hot verification loops
// ask for the same lengths on every trial.
func PrimeForLength(lambda int) uint64 {
	if lambda < 2 {
		lambda = 2
	}
	if v, ok := primeForLengthCache.Load(lambda); ok {
		return v.(uint64)
	}
	lo := uint64(3*lambda) + 1
	p := NextPrime(lo)
	if p >= uint64(6*lambda) && lambda > 2 {
		// Cannot happen by Bertrand (there is a prime in (3λ, 6λ)), but the
		// invariant is cheap to defend.
		panic(fmt.Sprintf("field: no prime in (3*%d, 6*%d)", lambda, lambda))
	}
	primeForLengthCache.Store(lambda, p)
	return p
}

// PrimeForError returns a prime p > λ/ε, so a polynomial fingerprint of a
// λ-bit string errs with probability < ε. This is the ε-obliviousness knob
// of §1: confidence is tuned purely through the field size.
func PrimeForError(lambda int, eps float64) uint64 {
	if lambda < 1 {
		lambda = 1
	}
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("field: error rate %v out of (0,1)", eps))
	}
	target := float64(lambda) / eps
	if target < 5 {
		target = 5
	}
	return NextPrime(uint64(target) + 1)
}

// Poly is a polynomial over GF(p) whose coefficients are the bits of a
// string: coefficient i is bit i.
type Poly struct {
	bits bitstring.String
	p    uint64
}

// NewPoly interprets s as a polynomial over GF(p).
func NewPoly(s bitstring.String, p uint64) Poly {
	return Poly{bits: s, p: p}
}

// barrettM returns the Barrett constant ⌊(2^64−1)/p⌋. For z < 2^63 and
// q = ⌊z·m / 2^64⌋, q underestimates ⌊z/p⌋ by at most 2, so z − q·p lands
// in [z mod p, z mod p + 2p) and at most two subtractions of p finish the
// reduction — replacing the hardware division that otherwise serializes
// every step of the Horner recurrence.
func barrettM(p uint64) uint64 { return ^uint64(0) / p }

// barrettReduce returns z mod p given m = barrettM(p), for z < 2^63.
func barrettReduce(z, p, m uint64) uint64 {
	q, _ := bits.Mul64(z, m)
	r := z - q*p
	for r >= p {
		r -= p
	}
	return r
}

// Eval returns the polynomial evaluated at x via Horner's rule, treating
// bit 0 as the constant coefficient: A(x) = a₀ + a₁x + … .
//
// Every scheme in this module uses p = O(n·λ) ≪ 2³¹, so the fast path with
// native 64-bit products and Barrett reduction covers them; the 128-bit
// path keeps the function correct for arbitrary moduli.
func (poly Poly) Eval(x uint64) uint64 {
	p := poly.p
	n := poly.bits.Len()
	if p < 1<<31 {
		x %= p
		m := barrettM(p)
		if n >= evalChunkMin {
			return poly.evalChunked(x, p, m)
		}
		acc := uint64(0)
		// Coefficients high to low, one storage byte at a time: bit index i
		// sits in byte i>>3 at position 7−(i&7).
		for b := (n - 1) >> 3; b >= 0; b-- {
			hi := 8*b + 7
			if hi > n-1 {
				hi = n - 1
			}
			byteVal := poly.bits.ByteAt(b)
			for i := hi; i >= 8*b; i-- {
				bit := uint64(byteVal>>(7-uint(i&7))) & 1
				acc = barrettReduce(acc*x+bit, p, m)
			}
		}
		return acc
	}
	acc := uint64(0)
	for i := n - 1; i >= 0; i-- {
		acc = MulMod(acc, x, p)
		if poly.bits.Bit(i) == 1 {
			acc = AddMod(acc, 1, p)
		}
	}
	return acc
}

// evalChunkMin is the coefficient count from which the nibble-chunked
// Horner walk pays for its table build (3 multiplications plus 15 table
// reductions per evaluation point).
const evalChunkMin = 64

// revNib[v] is the bit-reversal of the 4-bit value v. Coefficients are
// stored MSB-first within a byte while Horner consumes them high index
// first, so a storage nibble maps to its chunk index by reversal.
var revNib = [16]byte{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

// nibTable fills t with the 16 values c₃x³+c₂x²+c₁x+c₀ mod p indexed by
// the chunk bits c₃c₂c₁c₀, plus x⁴ mod p in t[16] — the constants one
// Horner step of four coefficients needs: acc ← acc·x⁴ + t[c].
func nibTable(x, p, m uint64, t *[17]uint64) {
	x2 := barrettReduce(x*x, p, m)
	x3 := barrettReduce(x2*x, p, m)
	t[16] = barrettReduce(x2*x2, p, m)
	for c := 1; c < 16; c++ {
		v := uint64(0)
		if c&8 != 0 {
			v += x3
		}
		if c&4 != 0 {
			v += x2
		}
		if c&2 != 0 {
			v += x
		}
		if c&1 != 0 {
			v++
		}
		t[c] = barrettReduce(v, p, m) // v < 4p < 2^33
	}
}

// evalChunked is the Horner walk four coefficients at a time:
// acc ← acc·x⁴ + (a₃x³+a₂x²+a₁x+a₀), with the 16 possible chunk values
// tabulated once. The congruence is exact — the result equals the
// bit-at-a-time walk's for every input — with a quarter of the reductions.
func (poly Poly) evalChunked(x, p, m uint64) uint64 {
	n := poly.bits.Len()
	var t [17]uint64
	nibTable(x, p, m, &t)
	x4 := t[16]
	acc := uint64(0)
	head := n & 3
	for i := n - 1; i >= n-head; i-- {
		bit := uint64(poly.bits.Bit(i))
		acc = barrettReduce(acc*x+bit, p, m)
	}
	// Aligned coefficient groups {4g..4g+3}, high to low: group g sits in
	// byte g>>1, even groups in the high storage nibble.
	for g := (n-head)/4 - 1; g >= 0; g-- {
		b := poly.bits.ByteAt(g >> 1)
		var nib byte
		if g&1 == 0 {
			nib = b >> 4
		} else {
			nib = b & 0xF
		}
		acc = barrettReduce(acc*x4+t[revNib[nib]], p, m)
	}
	return acc
}

// EvalMany evaluates the polynomial at every xs[i], writing A(xs[i]) into
// out[i]. It is the batched form of Eval for trial-lane execution: the
// coefficient bits are walked once for all evaluation points, so the bit
// extraction amortizes across lanes and the independent per-lane Horner
// chains overlap in the CPU pipeline instead of serializing on one
// accumulator. Results are exactly Eval(xs[i]) — same field, same
// arithmetic — at any lane count, including 1.
func (poly Poly) EvalMany(xs, out []uint64) {
	if len(out) < len(xs) {
		panic(fmt.Sprintf("field: EvalMany out[%d] shorter than xs[%d]", len(out), len(xs)))
	}
	out = out[:len(xs)]
	p := poly.p
	n := poly.bits.Len()
	if p >= 1<<31 {
		for l, x := range xs {
			out[l] = poly.Eval(x)
		}
		return
	}
	for _, x := range xs {
		if x >= p {
			// Unreduced points are legal for Eval; keep the batched form
			// bit-identical without mutating the caller's slice.
			for l, x := range xs {
				out[l] = poly.Eval(x)
			}
			return
		}
	}
	m := barrettM(p)
	for l := range out {
		out[l] = 0
	}
	if n >= evalChunkMin {
		poly.evalManyChunked(xs, out, p, m)
		return
	}
	for b := (n - 1) >> 3; b >= 0; b-- {
		hi := 8*b + 7
		if hi > n-1 {
			hi = n - 1
		}
		byteVal := poly.bits.ByteAt(b)
		for i := hi; i >= 8*b; i-- {
			bit := uint64(byteVal>>(7-uint(i&7))) & 1
			for l := range out {
				out[l] = barrettReduce(out[l]*xs[l]+bit, p, m)
			}
		}
	}
}

// evalManyChunked is the batched form of evalChunked: one nibble table per
// lane, then a single coefficient walk feeding every lane's Horner chain
// four coefficients per step. Results equal the bit-at-a-time walk exactly.
func (poly Poly) evalManyChunked(xs, out []uint64, p, m uint64) {
	n := poly.bits.Len()
	tabs := make([][17]uint64, len(xs))
	for l, x := range xs {
		nibTable(x, p, m, &tabs[l])
	}
	head := n & 3
	for i := n - 1; i >= n-head; i-- {
		bit := uint64(poly.bits.Bit(i))
		for l := range out {
			out[l] = barrettReduce(out[l]*xs[l]+bit, p, m)
		}
	}
	for g := (n-head)/4 - 1; g >= 0; g-- {
		b := poly.bits.ByteAt(g >> 1)
		var nib byte
		if g&1 == 0 {
			nib = b >> 4
		} else {
			nib = b & 0xF
		}
		c := revNib[nib]
		for l := range out {
			t := &tabs[l]
			out[l] = barrettReduce(out[l]*t[16]+t[c], p, m)
		}
	}
}

// Fingerprint is an evaluation point with the value of a string's polynomial
// there: the pair (x, A(x)) exchanged by Lemma A.1's protocol.
type Fingerprint struct {
	X, Y uint64
	P    uint64 // field modulus, fixed by the scheme, not transmitted
}

// NewFingerprint draws a uniform x in GF(p) with rng and evaluates s there.
func NewFingerprint(s bitstring.String, p uint64, rng *prng.Rand) Fingerprint {
	x := rng.Uint64n(p)
	return Fingerprint{X: x, Y: NewPoly(s, p).Eval(x), P: p}
}

// Matches reports whether the string t is consistent with the fingerprint,
// i.e. whether t's polynomial passes through (X, Y).
func (f Fingerprint) Matches(t bitstring.String) bool {
	return NewPoly(t, f.P).Eval(f.X) == f.Y
}

// Bits returns the number of bits needed to transmit the fingerprint:
// 2·⌈log₂ p⌉ (the modulus is part of the scheme description, not the
// message). This is the quantity Definition 2.1 measures.
func (f Fingerprint) Bits() int {
	return 2 * bitstring.UintBits(f.P-1)
}

// Encode serializes the fingerprint into w using 2·⌈log₂ p⌉ bits.
func (f Fingerprint) Encode(w *bitstring.Writer) {
	width := bitstring.UintBits(f.P - 1)
	w.WriteUint(f.X, width)
	w.WriteUint(f.Y, width)
}

// DecodeFingerprint reads a fingerprint produced by Encode for modulus p.
func DecodeFingerprint(r *bitstring.Reader, p uint64) (Fingerprint, error) {
	width := bitstring.UintBits(p - 1)
	x, err := r.ReadUint(width)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("fingerprint x: %w", err)
	}
	y, err := r.ReadUint(width)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("fingerprint y: %w", err)
	}
	if x >= p || y >= p {
		return Fingerprint{}, fmt.Errorf("fingerprint out of field range (p=%d)", p)
	}
	return Fingerprint{X: x, Y: y, P: p}, nil
}
