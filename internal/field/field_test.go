package field

import (
	"testing"
	"testing/quick"

	"rpls/internal/bitstring"
	"rpls/internal/prng"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		17: true, 19: true, 23: true, 97: true, 101: true,
		0: false, 1: false, 4: false, 9: false, 15: false, 21: false,
		25: false, 49: false, 91: false, // 91 = 7*13
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	cases := map[uint64]bool{
		(1 << 61) - 1:                true,  // Mersenne prime
		(1 << 31) - 1:                true,  // Mersenne prime
		1_000_000_007:                true,  // common prime
		1_000_000_007 * 3:            false, // composite with large factor
		4294967295:                   false, // 2^32-1 = 3*5*17*257*65537
		18446744073709551557:         true,  // largest 64-bit prime
		18446744073709551615:         false, // 2^64-1
		2147483647 * 2147483647 >> 1: false,
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {90, 97},
	}
	for _, c := range cases {
		if got := NextPrime(c.in); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPrimeForLengthInRange(t *testing.T) {
	for _, lambda := range []int{1, 2, 3, 5, 10, 64, 1000, 1 << 16} {
		p := PrimeForLength(lambda)
		if !IsPrime(p) {
			t.Errorf("PrimeForLength(%d) = %d is not prime", lambda, p)
		}
		if lambda >= 2 && (p <= uint64(3*lambda) || p >= uint64(6*lambda)) {
			t.Errorf("PrimeForLength(%d) = %d outside (3λ, 6λ)", lambda, p)
		}
	}
}

func TestPrimeForError(t *testing.T) {
	for _, c := range []struct {
		lambda int
		eps    float64
	}{{10, 1.0 / 3}, {100, 0.01}, {1000, 0.001}} {
		p := PrimeForError(c.lambda, c.eps)
		if !IsPrime(p) {
			t.Errorf("PrimeForError(%d, %v) = %d not prime", c.lambda, c.eps, p)
		}
		if float64(c.lambda)/float64(p) >= c.eps {
			t.Errorf("PrimeForError(%d, %v) = %d gives error %v >= eps",
				c.lambda, c.eps, p, float64(c.lambda)/float64(p))
		}
	}
}

func TestMulModAgainstWideMultiply(t *testing.T) {
	f := func(a, b uint64) bool {
		const m = 1_000_000_007
		want := (a % m) * (b % m) % m // fits: (1e9)^2 < 2^63
		return MulMod(a, b, m) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulModLargeModulus(t *testing.T) {
	// With modulus near 2^63 the naive product overflows; MulMod must not.
	m := uint64(9223372036854775783) // largest prime < 2^63
	a := m - 1
	b := m - 2
	// (m-1)(m-2) mod m = (−1)(−2) mod m = 2
	if got := MulMod(a, b, m); got != 2 {
		t.Errorf("MulMod((m-1),(m-2),m) = %d, want 2", got)
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct{ a, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{5, 1, 7, 5},
		{2, 61, (1 << 61) - 1, 1}, // Fermat: 2^(p-1) ≡ 1... actually 2^61 mod M61 = 2
	}
	// fix the last case properly: 2^61 mod (2^61 - 1) = 1... no: 2^61 = (2^61-1)+1 ≡ 1.
	cases[3].want = 1
	for _, c := range cases {
		if got := PowMod(c.a, c.e, c.m); got != c.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", c.a, c.e, c.m, got, c.want)
		}
	}
}

func TestPolyEvalKnown(t *testing.T) {
	// bits 1,0,1 → A(x) = 1 + x². Over GF(7): A(3) = 1+9 = 10 ≡ 3.
	s := bitstring.FromBits([]byte{1, 0, 1})
	poly := NewPoly(s, 7)
	if got := poly.Eval(3); got != 3 {
		t.Errorf("A(3) = %d, want 3", got)
	}
	if got := poly.Eval(0); got != 1 {
		t.Errorf("A(0) = %d, want 1", got)
	}
}

func TestFingerprintEqualStringsAlwaysMatch(t *testing.T) {
	// One-sidedness (Lemma A.1): equal strings never produce a mismatch.
	rng := prng.New(8)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = rng.Bit()
		}
		s := bitstring.FromBits(bits)
		p := PrimeForLength(n)
		fp := NewFingerprint(s, p, rng)
		if !fp.Matches(s) {
			t.Fatalf("fingerprint of a string failed to match itself (n=%d)", n)
		}
	}
}

func TestFingerprintDistinctStringsErrorBelowThird(t *testing.T) {
	// Soundness: distinct λ-bit strings collide with probability < 1/3 when
	// p ∈ (3λ, 6λ). Empirically the rate should be well below 1/3.
	rng := prng.New(9)
	const lambda = 64
	const trials = 3000
	p := PrimeForLength(lambda)
	collisions := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]byte, lambda)
		b := make([]byte, lambda)
		for i := range a {
			a[i] = rng.Bit()
			b[i] = rng.Bit()
		}
		// Force difference in at least one position.
		pos := rng.Intn(lambda)
		b[pos] = 1 - a[pos]
		sa, sb := bitstring.FromBits(a), bitstring.FromBits(b)
		fp := NewFingerprint(sa, p, rng)
		if fp.Matches(sb) {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	if rate >= 1.0/3 {
		t.Errorf("collision rate %v >= 1/3", rate)
	}
}

func TestFingerprintAdversarialWorstCase(t *testing.T) {
	// Worst case: strings differing in exactly the high coefficient produce
	// polynomials differing by x^{λ−1}, which has λ−1 roots... only x=0 is a
	// root of x^{λ-1}, so collision happens only at x = 0: rate ≈ 1/p.
	// A denser disagreement pattern: a = 0^λ, b = 1^λ. A−B = -(1+x+...+x^{λ-1})
	// has at most λ−1 roots in GF(p); measure the exact collision count.
	const lambda = 32
	p := PrimeForLength(lambda)
	zero := bitstring.FromBits(make([]byte, lambda))
	ones := make([]byte, lambda)
	for i := range ones {
		ones[i] = 1
	}
	one := bitstring.FromBits(ones)
	pa, pb := NewPoly(zero, p), NewPoly(one, p)
	agree := 0
	for x := uint64(0); x < p; x++ {
		if pa.Eval(x) == pb.Eval(x) {
			agree++
		}
	}
	if agree > lambda-1 {
		t.Errorf("polynomials agree on %d points, bound is λ−1 = %d", agree, lambda-1)
	}
	if float64(agree)/float64(p) >= 1.0/3 {
		t.Errorf("agreement fraction %d/%d >= 1/3", agree, p)
	}
}

func TestFingerprintEncodeDecodeRoundTrip(t *testing.T) {
	rng := prng.New(10)
	s := bitstring.FromBits([]byte{1, 1, 0, 1, 0, 0, 1})
	p := PrimeForLength(s.Len())
	fp := NewFingerprint(s, p, rng)
	var w bitstring.Writer
	fp.Encode(&w)
	if w.Len() != fp.Bits() {
		t.Errorf("encoded length %d != Bits() %d", w.Len(), fp.Bits())
	}
	got, err := DecodeFingerprint(bitstring.NewReader(w.String()), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.X != fp.X || got.Y != fp.Y {
		t.Errorf("round trip: got (%d,%d), want (%d,%d)", got.X, got.Y, fp.X, fp.Y)
	}
}

func TestDecodeFingerprintRejectsOutOfField(t *testing.T) {
	var w bitstring.Writer
	p := uint64(11)
	width := bitstring.UintBits(p - 1) // 4 bits
	w.WriteUint(13, width)             // 13 >= 11: invalid
	w.WriteUint(3, width)
	if _, err := DecodeFingerprint(bitstring.NewReader(w.String()), p); err == nil {
		t.Error("decoding an out-of-field element should fail")
	}
}

func TestFingerprintBitsIsLogarithmic(t *testing.T) {
	// 2·⌈log₂ p⌉ with p < 6λ means certificate size ≈ 2(log₂ λ + 3).
	for _, lambda := range []int{16, 256, 4096, 1 << 16} {
		p := PrimeForLength(lambda)
		fp := Fingerprint{X: 0, Y: 0, P: p}
		maxBits := 2 * (bitstring.UintBits(uint64(lambda)) + 3)
		if fp.Bits() > maxBits {
			t.Errorf("λ=%d: fingerprint %d bits, want <= %d", lambda, fp.Bits(), maxBits)
		}
	}
}

func TestAddMod(t *testing.T) {
	m := uint64(9223372036854775783)
	if got := AddMod(m-1, m-1, m); got != m-2 {
		t.Errorf("AddMod(m-1, m-1, m) = %d, want m-2", got)
	}
	if got := AddMod(0, 0, 5); got != 0 {
		t.Errorf("AddMod(0,0,5) = %d", got)
	}
	if got := AddMod(7, 8, 5); got != 0 {
		t.Errorf("AddMod(7,8,5) = %d, want 0", got)
	}
}

// TestEvalManyMatchesEval pins the lane contract: EvalMany is bit-identical
// to per-point Eval at every lane count, for reduced and unreduced points,
// small and large moduli, and ragged string lengths.
func TestEvalManyMatchesEval(t *testing.T) {
	rng := prng.New(99)
	primes := []uint64{2, 7, 61, PrimeForLength(200), PrimeForLength(4096), NextPrime(1 << 40)}
	for _, p := range primes {
		for _, n := range []int{0, 1, 7, 8, 9, 63, 200, 515} {
			raw := make([]byte, n)
			for i := range raw {
				raw[i] = rng.Bit()
			}
			s := bitstring.FromBits(raw)
			poly := NewPoly(s, p)
			for _, lanes := range []int{1, 2, 8, 64} {
				xs := make([]uint64, lanes)
				for l := range xs {
					if l%3 == 2 {
						xs[l] = rng.Uint64() // unreduced point
					} else {
						xs[l] = rng.Uint64n(p)
					}
				}
				out := make([]uint64, lanes)
				poly.EvalMany(xs, out)
				for l, x := range xs {
					if want := poly.Eval(x); out[l] != want {
						t.Fatalf("p=%d n=%d lanes=%d lane %d: EvalMany=%d Eval=%d (x=%d)",
							p, n, lanes, l, out[l], want, x)
					}
				}
			}
		}
	}
}

// TestPrimeForLengthCached checks the memo returns the same prime as a
// fresh search and that repeated calls are allocation-free after warmup.
func TestPrimeForLengthCached(t *testing.T) {
	for _, lambda := range []int{0, 1, 2, 3, 17, 100, 4096} {
		want := NextPrime(uint64(3*max(lambda, 2)) + 1)
		if got := PrimeForLength(lambda); got != want {
			t.Fatalf("PrimeForLength(%d) = %d, want %d", lambda, got, want)
		}
		if got := PrimeForLength(lambda); got != want {
			t.Fatalf("cached PrimeForLength(%d) = %d, want %d", lambda, got, want)
		}
	}
}
