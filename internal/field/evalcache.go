package field

import (
	"sync"

	"rpls/internal/bitstring"
)

// maxTablePrime bounds the fields worth tabulating: past it the table build
// (p Horner walks) would dwarf any realistic lookup count. The schemes that
// share one polynomial across every node pick p = Θ(λ) per Lemma A.1, far
// below this.
const maxTablePrime = 1 << 12

// minTableBatch is the evaluation-batch size below which the cache skips
// the table: the per-call fixed costs (keying, locking) beat a handful of
// direct Horner walks.
const minTableBatch = 8

// EvalCache memoizes the full value table of one polynomial over a small
// field. The uniform schemes fingerprint a single shared payload at
// thousands of (node, port, trial) points drawn from a field of size O(λ);
// once the number of evaluations passes p, tabulating A(x) for every
// x ∈ GF(p) and looking points up is strictly cheaper than re-running
// Horner per point. The cache holds one (polynomial, field) entry and
// rebuilds on mismatch, so it belongs to schemes whose polynomial is
// globally shared — per-node polynomials would thrash it.
//
// The table is a pure memo: lookups return exactly Poly.EvalMany's values,
// so cached and direct evaluation are bit-identical. It is safe for
// concurrent use by the estimator's trial workers.
type EvalCache struct {
	mu    sync.Mutex
	key   string
	p     uint64
	table []uint64
}

// EvalMany is Poly.EvalMany through the cache: out[k] = A(xs[k]) for the
// polynomial whose coefficients are the bits of s, over GF(p). Every
// xs[k] must be < p, as fingerprint draws and decoded fingerprints are.
// A nil cache, a large field, or a tiny batch evaluates directly.
func (c *EvalCache) EvalMany(s bitstring.String, p uint64, xs, out []uint64) {
	if c == nil || p > maxTablePrime || len(xs) < minTableBatch {
		NewPoly(s, p).EvalMany(xs, out)
		return
	}
	table := c.lookup(s, p)
	for k, x := range xs {
		out[k] = table[x]
	}
}

// lookup returns the value table for (s, p), rebuilding the entry when the
// cached polynomial differs. A published table is immutable — rebuilds swap
// in a fresh slice — so the lock guards only the pointer exchange and two
// racing rebuilds merely duplicate work.
func (c *EvalCache) lookup(s bitstring.String, p uint64) []uint64 {
	key := s.Key()
	c.mu.Lock()
	if c.p == p && c.key == key {
		t := c.table
		c.mu.Unlock()
		return t
	}
	c.mu.Unlock()
	xs := make([]uint64, p)
	for x := range xs {
		xs[x] = uint64(x)
	}
	t := make([]uint64, p)
	NewPoly(s, p).EvalMany(xs, t)
	c.mu.Lock()
	c.key, c.p, c.table = key, p, t
	c.mu.Unlock()
	return t
}
