package obs

import "time"

// The clock seam: the one place in the module where wall-clock time is
// read. Every other package is barred from time.Now/Since/Until by the
// detrand and obsflow analyzers, so any timing a future change needs must
// come through here — where it is visibly telemetry, never an input to a
// verdict or a result.

// clockBase anchors Time at process start so readings stay small and
// monotonic (time.Since uses the monotonic clock reading of its argument).
var clockBase = time.Now() //plsvet:allow detrand — the audited clock seam: this is the one sanctioned wall-clock read site of the module

// A Time is an opaque reading of the obs clock: nanoseconds since process
// start, offset by one so the zero Time is never a valid reading. Zero
// means "recorder disabled" — Histogram.Start returns it and Stop treats
// it as a no-op — so gated timing costs one branch when off.
type Time int64

// Clock reads the obs clock. It is always live (ungated): the seam itself
// must work whether or not recording is on, because CLIs use it for
// progress/ETA display even without -metrics.
func Clock() Time {
	return Time(time.Since(clockBase) + 1) //plsvet:allow detrand — the audited clock seam: this is the one sanctioned wall-clock read site of the module
}

// Since returns the elapsed duration since an earlier Clock reading; zero
// for the zero Time, so disabled measurements stay inert.
func Since(t Time) time.Duration {
	if t == 0 {
		return 0
	}
	return time.Duration(Clock() - t)
}
