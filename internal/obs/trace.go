package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// Span-style tracing. Spans mark coarse phases — one per estimate, per
// campaign cell, per adversary sweep — never per-trial work, so the
// recording path can afford a mutex-protected ring: it stays simple,
// passes the race detector on merit, and appends nothing after the ring's
// one lazy allocation. Export is the Chrome trace_event JSON array format,
// loadable in chrome://tracing and Perfetto.

// traceCapacity bounds the buffered span count; later spans are counted as
// dropped rather than grown into (a long campaign would otherwise
// accumulate without bound).
const traceCapacity = 1 << 14

// traceEvent is one buffered complete ("ph":"X") event.
type traceEvent struct {
	name  string
	tid   int64
	start Time
	dur   int64 // nanoseconds
	a, b  int64
}

var tracer struct {
	sync.Mutex
	events  []traceEvent
	dropped uint64
}

// A Span is an in-flight trace region. It is a plain value: Begin fills
// Name and the start time, the caller may set Tid (a worker index) and the
// free-form A and B annotation fields, and End buffers it. The zero Span
// (returned by Begin when recording is off) makes End a no-op.
type Span struct {
	Name  string
	Tid   int64
	A, B  int64
	start Time
}

// Begin opens a span. Allocation-free; when recording is disabled it
// returns the zero Span and the paired End does nothing.
//
//pls:hotpath
func Begin(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{Name: name, start: Clock()}
}

// End closes and buffers a span begun with Begin.
func End(sp Span) {
	if sp.start == 0 || !enabled.Load() {
		return
	}
	dur := int64(Clock() - sp.start)
	tracer.Lock()
	if tracer.events == nil {
		tracer.events = make([]traceEvent, 0, traceCapacity)
	}
	if len(tracer.events) < traceCapacity {
		tracer.events = append(tracer.events, traceEvent{
			name: sp.Name, tid: sp.Tid, start: sp.start, dur: dur, a: sp.A, b: sp.B,
		})
	} else {
		tracer.dropped++
	}
	tracer.Unlock()
}

// traceCounts reports the buffered and dropped event counts (read side).
func traceCounts() (buffered int, dropped uint64) {
	tracer.Lock()
	defer tracer.Unlock()
	return len(tracer.events), tracer.dropped
}

func resetTrace() {
	tracer.Lock()
	tracer.events = tracer.events[:0]
	tracer.dropped = 0
	tracer.Unlock()
}

// chromeEvent is one trace_event record: a complete event with explicit
// duration, timestamps in microseconds as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON Object Format of the trace_event spec.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Dropped     uint64        `json:"droppedEvents,omitempty"`
}

// WriteTrace exports every buffered span as Chrome trace_event JSON,
// sorted by start time.
func WriteTrace(w io.Writer) error {
	tracer.Lock()
	events := make([]traceEvent, len(tracer.events))
	copy(events, tracer.events)
	dropped := tracer.dropped
	tracer.Unlock()

	sort.Slice(events, func(i, j int) bool { return events[i].start < events[j].start })
	out := chromeTrace{TraceEvents: make([]chromeEvent, len(events)), Dropped: dropped}
	for i, ev := range events {
		ce := chromeEvent{
			Name: ev.name,
			Ph:   "X",
			Pid:  1,
			Tid:  ev.tid,
			Ts:   float64(ev.start) / 1e3,
			Dur:  float64(ev.dur) / 1e3,
		}
		if ev.a != 0 || ev.b != 0 {
			ce.Args = map[string]any{"a": ev.a, "b": ev.b}
		}
		out.TraceEvents[i] = ce
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTraceFile writes the Chrome trace to a file, creating or
// truncating it.
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
