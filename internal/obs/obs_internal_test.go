package obs

import "testing"

// The bucket layout is part of the snapshot schema: bucket 0 holds v <= 0,
// bucket i >= 1 holds values with bit length i, i.e. [2^(i-1), 2^i - 1].
func TestBucketLayout(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if bucketLo(0) != 0 || bucketLo(1) != 1 || bucketLo(4) != 8 {
		t.Errorf("bucketLo layout wrong: %d %d %d", bucketLo(0), bucketLo(1), bucketLo(4))
	}
	for i := 1; i < histBuckets; i++ {
		if got := bucketOf(bucketLo(i)); got != i {
			t.Errorf("bucketOf(bucketLo(%d)) = %d, want %d", i, got, i)
		}
	}
}
