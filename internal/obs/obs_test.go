package obs_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"rpls/internal/obs"
)

// record enables the recorder for one test and restores the disabled
// default (plus clean metric values) afterward.
func record(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.Reset()
	})
}

func TestCounterExactUnderSharding(t *testing.T) {
	record(t)
	c := obs.NewCounter("test.counter.exact")
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if got := c.Value(); got != 1024 {
		t.Fatalf("counter total %d, want 1024 (shard sums must be exact)", got)
	}
}

func TestDisabledRecorderDropsEverything(t *testing.T) {
	obs.Reset()
	t.Cleanup(obs.Reset)
	c := obs.NewCounter("test.counter.disabled")
	g := obs.NewGauge("test.gauge.disabled")
	h := obs.NewHistogram("test.hist.disabled", "ns")
	c.Add(7)
	g.Set(7)
	g.SetMax(7)
	h.Observe(7)
	h.Stop(h.Start())
	obs.End(obs.Begin("test.span.disabled"))
	snap := obs.TakeSnapshot()
	if snap.Enabled {
		t.Fatal("recorder reports enabled; default must be off")
	}
	if v := snap.Counter("test.counter.disabled"); v != 0 {
		t.Errorf("disabled counter recorded %d", v)
	}
	if v, _ := snap.Gauge("test.gauge.disabled"); v != 0 {
		t.Errorf("disabled gauge recorded %d", v)
	}
	if hv, ok := snap.Histogram("test.hist.disabled"); !ok || hv.Count != 0 {
		t.Errorf("disabled histogram recorded %+v", hv)
	}
	if snap.TraceEvents != 0 {
		t.Errorf("disabled tracer buffered %d spans", snap.TraceEvents)
	}
}

func TestGaugeSetMax(t *testing.T) {
	record(t)
	g := obs.NewGauge("test.gauge.max")
	g.SetMax(5)
	g.SetMax(3)
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax high-water mark %d, want 9", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	record(t)
	h := obs.NewHistogram("test.hist.snap", "widgets")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	hv, ok := obs.TakeSnapshot().Histogram("test.hist.snap")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 4 || hv.Sum != 106 || hv.Max != 100 || hv.Unit != "widgets" {
		t.Fatalf("snapshot %+v, want count=4 sum=106 max=100 unit=widgets", hv)
	}
	if hv.Mean != 26.5 {
		t.Fatalf("mean %v, want 26.5", hv.Mean)
	}
	var buckets uint64
	for _, b := range hv.Buckets {
		buckets += b.Count
	}
	if buckets != hv.Count {
		t.Fatalf("bucket counts sum to %d, want %d", buckets, hv.Count)
	}
}

func TestHistogramStartStop(t *testing.T) {
	record(t)
	h := obs.NewHistogram("test.hist.timing", "ns")
	tm := h.Start()
	if tm == 0 {
		t.Fatal("Start returned the disabled sentinel while enabled")
	}
	time.Sleep(time.Millisecond)
	h.Stop(tm)
	hv, _ := obs.TakeSnapshot().Histogram("test.hist.timing")
	if hv.Count != 1 || hv.Max < int64(time.Millisecond) {
		t.Fatalf("timed observation %+v, want one reading >= 1ms", hv)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	record(t)
	obs.NewCounter("test.snapshot.counter").Add(3)
	var buf bytes.Buffer
	if err := obs.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counter("test.snapshot.counter") != 3 {
		t.Fatalf("round-tripped snapshot lost the counter: %+v", snap.Counters)
	}
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name > snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %q > %q", snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}
}

// TestRecordAllocs is the hot-path contract of the tentpole: once the
// recorder is warm, every recording call — counter add, gauge set,
// histogram observe, timed start/stop, span begin/end — allocates nothing.
// The static half of the same contract is plsvet's hotalloc analyzer over
// the //pls:hotpath-annotated methods.
func TestRecordAllocs(t *testing.T) {
	record(t)
	c := obs.NewCounter("test.allocs.counter")
	g := obs.NewGauge("test.allocs.gauge")
	h := obs.NewHistogram("test.allocs.hist", "ns")
	obs.End(obs.Begin("test.allocs.warm")) // allocate the trace ring up front
	assert := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", name, n)
		}
	}
	assert("Counter.Add", func() { c.Add(2) })
	assert("Counter.Inc", func() { c.Inc() })
	assert("Gauge.Set", func() { g.Set(4) })
	assert("Gauge.SetMax", func() { g.SetMax(4) })
	assert("Histogram.Observe", func() { h.Observe(17) })
	assert("Histogram.Start/Stop", func() { h.Stop(h.Start()) })
	assert("Begin/End", func() { obs.End(obs.Begin("test.allocs.span")) })
}

// TestDisabledRecordAllocs pins the disabled fast path: one branch, zero
// allocations — the price every uninstrumented run pays.
func TestDisabledRecordAllocs(t *testing.T) {
	obs.Reset()
	t.Cleanup(obs.Reset)
	c := obs.NewCounter("test.allocs.off.counter")
	h := obs.NewHistogram("test.allocs.off.hist", "ns")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Stop(h.Start())
		obs.End(obs.Begin("test.allocs.off.span"))
	}); n != 0 {
		t.Fatalf("disabled recording allocates %v times per call, want 0", n)
	}
}

// TestRecorderRaceStress hammers one recorder from many goroutines while a
// reader snapshots and exports concurrently. Run under -race (CI's race
// job does) this is the data-race proof; the exact counter total proves
// sharded adds lose nothing.
func TestRecorderRaceStress(t *testing.T) {
	record(t)
	const workers, perWorker = 16, 5000
	c := obs.NewCounter("test.race.counter")
	g := obs.NewGauge("test.race.gauge")
	h := obs.NewHistogram("test.race.hist", "ns")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: snapshots and trace exports
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				obs.TakeSnapshot()
				obs.WriteTrace(&bytes.Buffer{})
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i))
				if i%100 == 0 {
					sp := obs.Begin("test.race.span")
					sp.Tid = int64(w)
					obs.End(sp)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	snap := obs.TakeSnapshot()
	if got := snap.Counter("test.race.counter"); got != workers*perWorker {
		t.Fatalf("counter total %d under contention, want %d", got, workers*perWorker)
	}
	if hv, _ := snap.Histogram("test.race.hist"); hv.Count != workers*perWorker {
		t.Fatalf("histogram count %d under contention, want %d", hv.Count, workers*perWorker)
	}
}
