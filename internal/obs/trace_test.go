package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"rpls/internal/obs"
)

// chrome mirrors the trace_event JSON Object Format for decoding.
type chrome struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Ph   string           `json:"ph"`
		Pid  int              `json:"pid"`
		Tid  int64            `json:"tid"`
		Ts   float64          `json:"ts"`
		Dur  float64          `json:"dur"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
	Dropped uint64 `json:"droppedEvents"`
}

func TestTraceExportIsChromeFormat(t *testing.T) {
	record(t)
	sp := obs.Begin("phase.one")
	sp.Tid = 3
	sp.A, sp.B = 17, 4
	obs.End(sp)
	obs.End(obs.Begin("phase.two"))

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chrome
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(tr.TraceEvents))
	}
	first := tr.TraceEvents[0]
	if first.Name != "phase.one" || first.Ph != "X" || first.Tid != 3 {
		t.Fatalf("first event %+v, want name=phase.one ph=X tid=3", first)
	}
	if first.Args["a"] != 17 || first.Args["b"] != 4 {
		t.Fatalf("annotation args %+v, want a=17 b=4", first.Args)
	}
	if first.Ts > tr.TraceEvents[1].Ts {
		t.Fatal("events not sorted by start time")
	}
	if first.Dur < 0 {
		t.Fatalf("negative duration %v", first.Dur)
	}
}

func TestTraceRingDropsBeyondCapacity(t *testing.T) {
	record(t)
	const extra = 50
	// traceCapacity is 1<<14; overfill and require exact drop accounting.
	for i := 0; i < (1<<14)+extra; i++ {
		obs.End(obs.Begin("flood"))
	}
	snap := obs.TakeSnapshot()
	if snap.TraceEvents != 1<<14 {
		t.Fatalf("buffered %d events, want the %d capacity", snap.TraceEvents, 1<<14)
	}
	if snap.TraceDropped != extra {
		t.Fatalf("dropped %d events, want %d", snap.TraceDropped, extra)
	}
}

func TestResetDropsTrace(t *testing.T) {
	record(t)
	obs.End(obs.Begin("gone"))
	obs.Reset()
	if snap := obs.TakeSnapshot(); snap.TraceEvents != 0 || snap.TraceDropped != 0 {
		t.Fatalf("reset left %d events, %d dropped", snap.TraceEvents, snap.TraceDropped)
	}
}
