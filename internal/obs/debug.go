package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The -debug-addr surface: a private HTTP mux (never the default ServeMux,
// so importing this package does not silently expose handlers on servers
// the caller owns) serving the standard Go debug endpoints plus this
// package's snapshot and trace exports:
//
//	/debug/vars           expvar, including an "obs" var with the live snapshot
//	/debug/pprof/...      the full net/http/pprof suite
//	/metrics              the JSON Snapshot (same schema as -metrics files)
//	/trace                the Chrome trace_event JSON of buffered spans

// publishOnce guards the process-global expvar registration.
var publishOnce sync.Once

// A DebugServer is a running debug endpoint listener.
type DebugServer struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	lis net.Listener
	srv *http.Server
}

// ServeDebug starts the debug HTTP server on addr and returns immediately;
// the caller owns the returned server and should Close it when done.
func ServeDebug(addr string) (*DebugServer, error) {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return TakeSnapshot() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteSnapshot(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		Addr: lis.Addr().String(),
		lis:  lis,
		srv:  &http.Server{Handler: mux},
	}
	go d.srv.Serve(lis) //nolint:errcheck // Serve always returns non-nil on Close
	return d, nil
}

// Close stops the server and releases its listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
