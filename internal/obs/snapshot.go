package obs

import (
	"encoding/json"
	"io"
	"os"
)

// Snapshots: the read side of the metric registry, serialized as indented
// JSON so a -metrics file sits naturally next to the BENCH_*.json
// aggregates. Everything is sorted slices, never maps, so the bytes are
// stable for a given set of values.

// CounterValue is one counter's total at snapshot time.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge's level at snapshot time.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one non-empty histogram bucket: Lo is the smallest value
// the bucket covers (power-of-two buckets; the next bucket's Lo is the
// exclusive upper bound).
type BucketValue struct {
	Lo    int64  `json:"lo"`
	Count uint64 `json:"count"`
}

// HistogramValue is one histogram's distribution at snapshot time.
type HistogramValue struct {
	Name    string        `json:"name"`
	Unit    string        `json:"unit,omitempty"`
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets []BucketValue `json:"buckets,omitempty"`
}

// A Snapshot is a point-in-time copy of every registered metric, sorted by
// name.
type Snapshot struct {
	Enabled      bool             `json:"enabled"`
	Counters     []CounterValue   `json:"counters"`
	Gauges       []GaugeValue     `json:"gauges"`
	Histograms   []HistogramValue `json:"histograms"`
	TraceEvents  int              `json:"traceEvents"`
	TraceDropped uint64           `json:"traceDropped,omitempty"`
}

// TakeSnapshot copies the current value of every registered metric.
func TakeSnapshot() Snapshot {
	registry.Lock()
	counters, gauges, hists := registry.counters, registry.gauges, registry.hists
	registry.Unlock()

	s := Snapshot{Enabled: Enabled()}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		hv := HistogramValue{
			Name:  h.name,
			Unit:  h.unit,
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
			Max:   h.max.Load(),
		}
		if hv.Count > 0 {
			hv.Mean = float64(hv.Sum) / float64(hv.Count)
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hv.Buckets = append(hv.Buckets, BucketValue{Lo: bucketLo(i), Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sortCounters(s.Counters)
	sortGauges(s.Gauges)
	sortHists(s.Histograms)
	s.TraceEvents, s.TraceDropped = traceCounts()
	return s
}

// Counter returns the snapshot total of the named counter (0 if absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshot level of the named gauge.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshot distribution of the named histogram.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// WriteSnapshot serializes a fresh snapshot as indented JSON.
func WriteSnapshot(w io.Writer) error {
	data, err := json.MarshalIndent(TakeSnapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteSnapshotFile writes a fresh snapshot to a file, creating or
// truncating it — the -metrics flag's implementation.
func WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
