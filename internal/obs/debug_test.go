package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"rpls/internal/obs"
)

// TestDebugServerEndpoints is the hermetic half of the CI pprof smoke: the
// -debug-addr server comes up on a loopback port and every documented
// endpoint answers 200 with plausible content.
func TestDebugServerEndpoints(t *testing.T) {
	record(t)
	obs.NewCounter("test.debug.counter").Add(5)
	srv, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %.200s", path, resp.StatusCode, body)
		}
		return body
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a JSON snapshot: %v", err)
	}
	if snap.Counter("test.debug.counter") != 5 {
		t.Fatalf("/metrics snapshot missing the counter: %+v", snap.Counters)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["obs"]; !ok {
		t.Fatal("/debug/vars does not publish the obs snapshot")
	}
	var trace map[string]json.RawMessage
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if _, ok := trace["traceEvents"]; !ok {
		t.Fatal("/trace missing traceEvents")
	}
	get("/debug/pprof/")
	get("/debug/pprof/cmdline")
	if testing.Short() {
		t.Skip("skipping the 1s CPU profile in -short")
	}
	if body := get("/debug/pprof/profile?seconds=1"); len(body) == 0 {
		t.Fatal("empty CPU profile")
	}
}
