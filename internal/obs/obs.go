// Package obs is the determinism-safe observability layer: sharded atomic
// counters, gauges, and fixed-bucket histograms with allocation-free
// recording on //pls:hotpath code, span-style trace events exported as
// Chrome trace_event JSON, and JSON metric snapshots written alongside the
// BENCH_*.json aggregates.
//
// The layer is built around one contract, the no-influence guarantee: no
// value recorded here may ever flow back into a verdict, a certificate, a
// Summary, or a results line. Instrumented packages treat the obs API as
// write-only — plsvet's obsflow analyzer enforces that statically, and the
// metrics-on/off byte-compare tests in engine and campaign enforce it
// dynamically. Recording is disabled by default: every Record call behind a
// disabled recorder is a single predictable atomic-load branch, so
// uninstrumented runs pay nothing measurable and golden byte-compares run
// against exactly the code they always ran against.
//
// Wall-clock time enters the module only through this package's clock seam
// (see clock.go); everywhere else time.Now is banned by detrand and obsflow.
//
// Concurrency: counters shard their adds across cache-line-padded slots
// whose index is drawn from the runtime's per-P fastrand, so many workers
// hammering one counter do not serialize on one cache line; gauges and
// histogram cells are plain atomics. All recording methods are safe for
// concurrent use and allocation-free once the recorder is enabled.
package obs

import (
	"math/bits"
	"math/rand/v2" //plsvet:allow detrand — shard-index selection only: the chosen shard is invisible (values are shard sums) and nothing here flows into results
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the recorder master switch. Disabled (the default), every
// recording call returns after one atomic load — the "no-op recorder" is
// the same recorder with this flag off, so call sites never branch on nil.
var enabled atomic.Bool

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches recording on or off. Flip it before the workload:
// values recorded while disabled are dropped, not buffered.
func SetEnabled(on bool) { enabled.Store(on) }

// counterShards is the number of cache-line-padded cells a counter spreads
// its adds over. Power of two, so the shard pick is one mask.
const counterShards = 16

// counterShard pads each cell to its own cache line.
type counterShard struct {
	v atomic.Uint64
	_ [56]byte
}

// A Counter is a monotonically increasing event count. Add and Inc are
// allocation-free and safe for concurrent use; the total is the sum over
// shards, so it is exact even though the shard choice is random.
type Counter struct {
	name   string
	shards [counterShards]counterShard
}

// NewCounter registers and returns a counter. Call it from package var
// initialization; names must be unique per process.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.Lock()
	registry.counters = append(registry.counters, c)
	registry.Unlock()
	return c
}

// Add records n occurrences.
//
//pls:hotpath
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(n)
}

// Inc records one occurrence.
//
//pls:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total. This is the read side of the API:
// obsflow forbids calling it from the instrumented deterministic packages.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// A Gauge is a last-written (or maximum) level: queue depths, worker
// counts, ETA estimates.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers and returns a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.Lock()
	registry.gauges = append(registry.gauges, g)
	registry.Unlock()
	return g
}

// Set records the current level.
//
//pls:hotpath
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the recorded level — the
// high-water-mark idiom (peak reorder-buffer depth).
//
//pls:hotpath
func (g *Gauge) SetMax(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level (read side; see Counter.Value).
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets is the fixed bucket count of every histogram: power-of-two
// buckets 0, [1,1], [2,3], [4,7], … — bucket 39 starts at 2^38 (≈4.6 min
// in nanoseconds), wide enough for every duration this module measures.
const histBuckets = 40

// A Histogram is a fixed-bucket distribution of non-negative int64
// observations (durations in nanoseconds, sizes, widths). Observation is
// allocation-free: one count increment, one sum add, one bucket increment,
// one max CAS loop.
type Histogram struct {
	name    string
	unit    string
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram registers and returns a histogram; unit is documentation
// carried into snapshots ("ns", "lanes", "trials").
func NewHistogram(name, unit string) *Histogram {
	h := &Histogram{name: name, unit: unit}
	registry.Lock()
	registry.hists = append(registry.hists, h)
	registry.Unlock()
	return h
}

// bucketOf maps an observation to its power-of-two bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketLo is the smallest value bucket i covers.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one value.
//
//pls:hotpath
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Start begins a duration measurement, returning the zero Time when the
// recorder is disabled so the paired Stop is a no-op. The hot-path timing
// idiom: t := h.Start(); work(); h.Stop(t).
//
//pls:hotpath
func (h *Histogram) Start() Time {
	if !enabled.Load() {
		return 0
	}
	return Clock()
}

// Stop completes a Start, recording the elapsed nanoseconds.
//
//pls:hotpath
func (h *Histogram) Stop(t Time) {
	if t == 0 {
		return
	}
	h.Observe(int64(Clock() - t))
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// registry holds every metric registered in this process. Registration
// happens from package var initialization; the mutex covers late dynamic
// registration (tests) and snapshot iteration.
var registry struct {
	sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// Reset zeroes every registered metric and drops buffered trace events.
// Tests and multi-phase CLI runs use it to scope what a snapshot covers;
// registration is permanent.
func Reset() {
	registry.Lock()
	counters, gauges, hists := registry.counters, registry.gauges, registry.hists
	registry.Unlock()
	for _, c := range counters {
		c.reset()
	}
	for _, g := range gauges {
		g.reset()
	}
	for _, h := range hists {
		h.reset()
	}
	resetTrace()
}

// sortedByName returns names in stable order for snapshots; the metric
// slices themselves stay in registration order.
func sortCounters(cs []CounterValue) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
}

func sortGauges(gs []GaugeValue) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
}

func sortHists(hs []HistogramValue) {
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
}
