// Package bitstring implements bit-exact binary strings used as
// proof-labeling-scheme labels and certificates.
//
// The verification complexity of a proof-labeling scheme (Definition 2.1 in
// the paper) is the maximum length, in bits, of the strings exchanged between
// neighbors. Byte-granular encodings would distort measurements by up to 7
// bits per field, so labels are built with a bit-level writer and decoded
// with a bit-level reader.
package bitstring

import (
	"fmt"
	"math/bits"
)

// String is an immutable sequence of bits. The zero value is the empty
// string. Bits are stored most-significant-first within each byte.
type String struct {
	data []byte
	n    int // number of valid bits
}

// FromBytes wraps b as a bit string of 8*len(b) bits. The slice is copied.
func FromBytes(b []byte) String {
	d := make([]byte, len(b))
	copy(d, b)
	return String{data: d, n: 8 * len(b)}
}

// FromBits builds a String from individual bits (0 or 1 values).
func FromBits(bits []byte) String {
	var w Writer
	for _, b := range bits {
		w.WriteBit(b & 1)
	}
	return w.String()
}

// Len returns the length in bits.
func (s String) Len() int { return s.n }

// Bytes returns a copy of the underlying storage. The final byte is
// zero-padded if Len is not a multiple of 8.
func (s String) Bytes() []byte {
	d := make([]byte, len(s.data))
	copy(d, s.data)
	return d
}

// ByteAt returns byte i of the underlying storage without copying: bits
// 8i..8i+7 of the string, most significant first, with any bits past Len
// zero. It exists for batched polynomial evaluation, where per-bit Bit
// calls dominate the Horner loop; ordinary decoding should use a Reader.
func (s String) ByteAt(i int) byte { return s.data[i] }

// Bit returns the i-th bit (0-indexed). It panics if i is out of range;
// callers index only within Len, which is an invariant of decoding.
func (s String) Bit(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstring: bit index %d out of range [0,%d)", i, s.n))
	}
	return (s.data[i>>3] >> (7 - uint(i&7))) & 1
}

// Equal reports whether two strings have identical length and content.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	full := s.n >> 3
	for i := 0; i < full; i++ {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	if rem := uint(s.n & 7); rem != 0 {
		mask := byte(0xFF) << (8 - rem)
		if s.data[full]&mask != t.data[full]&mask {
			return false
		}
	}
	return true
}

// Truncate returns the prefix of s of at most n bits. Truncation models an
// adversarially constrained label budget in the lower-bound experiments.
func (s String) Truncate(n int) String {
	if n >= s.n {
		return s
	}
	if n < 0 {
		n = 0
	}
	nb := (n + 7) / 8
	d := make([]byte, nb)
	copy(d, s.data[:nb])
	if rem := uint(n & 7); rem != 0 {
		d[nb-1] &= byte(0xFF) << (8 - rem)
	}
	return String{data: d, n: n}
}

// Slice returns the bits [lo, hi) of s as a new String. Bounds are clamped
// to [0, Len], so a slice reaching past the end is simply shorter — the
// behavior certificate sharding relies on for the final, partial shard.
// The copy is byte-wise (one shift-and-or per output byte), since sharding
// calls this once per port per round inside the estimator's trial loop.
func (s String) Slice(lo, hi int) String {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return String{}
	}
	if lo == 0 {
		return s.Truncate(hi)
	}
	n := hi - lo
	d := make([]byte, (n+7)/8)
	start, off := lo>>3, uint(lo&7)
	if off == 0 {
		copy(d, s.data[start:start+len(d)])
	} else {
		for i := range d {
			b := s.data[start+i] << off
			if start+i+1 < len(s.data) {
				b |= s.data[start+i+1] >> (8 - off)
			}
			d[i] = b
		}
	}
	if rem := uint(n & 7); rem != 0 {
		d[len(d)-1] &= byte(0xFF) << (8 - rem)
	}
	return String{data: d, n: n}
}

// Concat returns the concatenation of s followed by t.
func Concat(ss ...String) String {
	var w Writer
	for _, s := range ss {
		w.WriteString(s)
	}
	return w.String()
}

// String renders the bits as a 0/1 text string, for diagnostics.
func (s String) String() string {
	out := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = '0' + s.Bit(i)
	}
	return string(out)
}

// Key returns a comparable representation usable as a map key. Two strings
// have equal keys iff Equal reports true.
func (s String) Key() string {
	// Normalize trailing padding before converting.
	t := s.Truncate(s.n)
	return fmt.Sprintf("%d:%s", t.n, string(t.data))
}

// UintBits returns the minimum number of bits needed to represent v,
// with UintBits(0) == 1.
func UintBits(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}

// Writer incrementally assembles a String. The zero value is ready to use.
type Writer struct {
	data []byte
	n    int
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b byte) {
	if w.n&7 == 0 {
		w.data = append(w.data, 0)
	}
	if b&1 == 1 {
		w.data[w.n>>3] |= 1 << (7 - uint(w.n&7))
	}
	w.n++
}

// writeBits appends the width lowest bits of v, most significant first,
// one byte-aligned chunk at a time. This is the shared fast path of
// WriteUint and WriteString: appends work in up-to-8-bit chunks instead of
// single bits, which matters because certificate framing (gamma prefixes,
// fingerprint fields) runs inside the estimator's trial loop.
func (w *Writer) writeBits(v uint64, width int) {
	for width > 0 {
		if w.n&7 == 0 {
			w.data = append(w.data, 0)
		}
		free := 8 - (w.n & 7)
		k := free
		if width < k {
			k = width
		}
		chunk := byte(v>>uint(width-k)) & (0xFF >> (8 - uint(k)))
		w.data[w.n>>3] |= chunk << uint(free-k)
		w.n += k
		width -= k
	}
}

// WriteUint appends the width lowest bits of v, most significant first.
// It panics if v does not fit in width bits; label layouts are fixed by the
// scheme designer and a misfit is a programming error, not an input error.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitstring: invalid width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bitstring: value %d does not fit in %d bits", v, width))
	}
	w.writeBits(v, width)
}

// WriteInt appends a signed value as a sign bit followed by width magnitude
// bits.
func (w *Writer) WriteInt(v int64, width int) {
	if v < 0 {
		w.WriteBit(1)
		w.WriteUint(uint64(-v), width)
		return
	}
	w.WriteBit(0)
	w.WriteUint(uint64(v), width)
}

// WriteString appends another bit string, byte-wise.
func (w *Writer) WriteString(s String) {
	full := s.n >> 3
	for i := 0; i < full; i++ {
		w.writeBits(uint64(s.data[i]), 8)
	}
	if rem := s.n & 7; rem != 0 {
		w.writeBits(uint64(s.data[full]>>(8-uint(rem))), rem)
	}
}

// WriteBytes appends 8*len(b) bits.
func (w *Writer) WriteBytes(b []byte) {
	for _, x := range b {
		w.WriteUint(uint64(x), 8)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// String finalizes the writer into an immutable String. The writer may
// continue to be used; the returned value is a snapshot.
func (w *Writer) String() String {
	d := make([]byte, len(w.data))
	copy(d, w.data)
	return String{data: d, n: w.n}
}

// ResetInto redirects the writer to assemble its next String inside buf's
// storage, starting empty. A caller that carves disjoint regions out of one
// slab — with full slice expressions, buf[k:k:k+size], so appends cannot
// bleed into a neighboring region — builds many Strings with a single
// allocation. Writing past the region's capacity falls back to a fresh
// allocation: still correct, just no longer zero-copy.
func (w *Writer) ResetInto(buf []byte) {
	w.data, w.n = buf[:0], 0
}

// TakeString finalizes the writer into a String that takes ownership of the
// writer's storage without copying, and resets the writer to empty. The
// writer remains usable; its next write allocates (or reuses the buffer of
// a following ResetInto). The certificate hot paths pair it with ResetInto
// so framing a batch costs one slab allocation instead of one per String.
func (w *Writer) TakeString() String {
	s := String{data: w.data, n: w.n}
	w.data, w.n = nil, 0
	return s
}

// Reader consumes a String sequentially. Reads past the end return an error
// rather than panicking: decoded labels come from (possibly adversarial)
// peers and must be rejected, not crash the verifier.
type Reader struct {
	s   String
	pos int
}

// NewReader returns a Reader positioned at the first bit of s.
func NewReader(s String) *Reader { return &Reader{s: s} }

// Reset repositions the reader at the first bit of s. It lets decode hot
// paths keep value Readers in reused flat scratch instead of allocating one
// per (lane, port).
func (r *Reader) Reset(s String) {
	r.s, r.pos = s, 0
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.n - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (byte, error) {
	if r.pos >= r.s.n {
		return 0, fmt.Errorf("bitstring: read past end at bit %d", r.pos)
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b, nil
}

// ReadUint consumes width bits as an unsigned integer.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitstring: invalid read width %d", width)
	}
	if r.Remaining() < width {
		return 0, fmt.Errorf("bitstring: need %d bits, have %d", width, r.Remaining())
	}
	var v uint64
	pos, rem := r.pos, width
	for rem > 0 {
		avail := 8 - (pos & 7)
		k := avail
		if rem < k {
			k = rem
		}
		chunk := (r.s.data[pos>>3] >> uint(avail-k)) & (0xFF >> (8 - uint(k)))
		v = v<<uint(k) | uint64(chunk)
		pos += k
		rem -= k
	}
	r.pos = pos
	return v, nil
}

// ReadInt consumes a sign bit plus width magnitude bits.
func (r *Reader) ReadInt(width int) (int64, error) {
	sign, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	mag, err := r.ReadUint(width)
	if err != nil {
		return 0, err
	}
	if sign == 1 {
		return -int64(mag), nil
	}
	return int64(mag), nil
}

// ReadString consumes n bits as a sub-string (byte-wise, via Slice).
func (r *Reader) ReadString(n int) (String, error) {
	if r.Remaining() < n {
		return String{}, fmt.Errorf("bitstring: need %d bits, have %d", n, r.Remaining())
	}
	if n <= 0 {
		return String{}, nil
	}
	out := r.s.Slice(r.pos, r.pos+n)
	r.pos += n
	return out, nil
}

// ReadStringInto consumes n bits like ReadString but assembles the result
// inside buf when its capacity suffices, so a decode loop that unframes many
// sub-certificates can hold them all in one reused slab. The returned
// String aliases buf and is valid only until buf's next reuse; content and
// padding are identical to ReadString's. A too-small buf degrades to the
// allocating path.
func (r *Reader) ReadStringInto(n int, buf []byte) (String, error) {
	if r.Remaining() < n {
		return String{}, fmt.Errorf("bitstring: need %d bits, have %d", n, r.Remaining())
	}
	if n <= 0 {
		return String{}, nil
	}
	nb := (n + 7) / 8
	if cap(buf) < nb {
		return r.ReadString(n)
	}
	d := buf[:nb]
	start, off := r.pos>>3, uint(r.pos&7)
	if off == 0 {
		copy(d, r.s.data[start:start+nb])
	} else {
		for i := 0; i < nb; i++ {
			b := r.s.data[start+i] << off
			if start+i+1 < len(r.s.data) {
				b |= r.s.data[start+i+1] >> (8 - off)
			}
			d[i] = b
		}
	}
	if rem := uint(n & 7); rem != 0 {
		d[nb-1] &= byte(0xFF) << (8 - rem)
	}
	r.pos += n
	return String{data: d, n: n}, nil
}
