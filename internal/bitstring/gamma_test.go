package bitstring

import (
	"testing"
	"testing/quick"
)

func TestGammaRoundTripSmall(t *testing.T) {
	for v := uint64(0); v < 1000; v++ {
		var w Writer
		w.WriteGamma(v)
		if got := w.Len(); got != GammaBits(v) {
			t.Fatalf("GammaBits(%d) = %d but encoder wrote %d", v, GammaBits(v), got)
		}
		r := NewReader(w.String())
		got, err := r.ReadGamma()
		if err != nil {
			t.Fatalf("ReadGamma(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
		if r.Remaining() != 0 {
			t.Fatalf("gamma(%d) left %d bits unread", v, r.Remaining())
		}
	}
}

func TestGammaRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		if v == ^uint64(0) {
			return true // documented overflow panic case
		}
		var w Writer
		w.WriteGamma(v)
		got, err := NewReader(w.String()).ReadGamma()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaSelfDelimiting(t *testing.T) {
	// Several gamma codes followed by payload bits decode unambiguously.
	var w Writer
	vals := []uint64{0, 1, 7, 255, 100000}
	for _, v := range vals {
		w.WriteGamma(v)
	}
	w.WriteUint(0b1011, 4)
	r := NewReader(w.String())
	for _, v := range vals {
		got, err := r.ReadGamma()
		if err != nil || got != v {
			t.Fatalf("decode %d: got %d err %v", v, got, err)
		}
	}
	tail, err := r.ReadUint(4)
	if err != nil || tail != 0b1011 {
		t.Fatalf("payload after gammas: got %d err %v", tail, err)
	}
}

func TestGammaBitsIsLogarithmic(t *testing.T) {
	if GammaBits(0) != 1 {
		t.Errorf("GammaBits(0) = %d, want 1", GammaBits(0))
	}
	for _, c := range []struct {
		v    uint64
		want int
	}{{1, 3}, {2, 3}, {3, 5}, {7, 7}, {255, 17}} {
		if got := GammaBits(c.v); got != c.want {
			t.Errorf("GammaBits(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestReadGammaRejectsGarbage(t *testing.T) {
	// All-zero prefix with no terminating one.
	r := NewReader(FromBits(make([]byte, 70)))
	if _, err := r.ReadGamma(); err == nil {
		t.Error("70 zero bits decoded as a gamma code")
	}
	// Truncated suffix.
	var w Writer
	w.WriteGamma(1000)
	trunc := w.String().Truncate(w.Len() - 3)
	if _, err := NewReader(trunc).ReadGamma(); err == nil {
		t.Error("truncated gamma code decoded")
	}
	// Empty input.
	if _, err := NewReader(String{}).ReadGamma(); err == nil {
		t.Error("empty input decoded")
	}
}

func TestWriteGammaPanicsOnMaxUint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteGamma(MaxUint64) should panic (v+1 overflows)")
		}
	}()
	var w Writer
	w.WriteGamma(^uint64(0))
}
