package bitstring

import "fmt"

// Elias-gamma coding of non-negative integers. A value v is stored as
// gamma(v+1): ⌊log₂(v+1)⌋ zeros, then the binary expansion of v+1. The code
// is self-delimiting and costs 2⌊log₂(v+1)⌋+1 bits, which keeps the
// O(log κ) certificate bound of Theorem 3.1 intact when certificates must
// carry the length of the string they fingerprint.

// WriteGamma appends the Elias-gamma code of v (v >= 0).
func (w *Writer) WriteGamma(v uint64) {
	if v == ^uint64(0) {
		panic("bitstring: gamma value overflow")
	}
	x := v + 1
	n := UintBits(x)
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteUint(x, n)
}

// GammaBits returns the encoded size of v in bits.
func GammaBits(v uint64) int {
	return 2*UintBits(v+1) - 1
}

// ReadGamma consumes an Elias-gamma code.
func (r *Reader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("gamma prefix: %w", err)
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, fmt.Errorf("gamma prefix too long (%d zeros)", zeros)
		}
	}
	// The leading 1 already read is the top bit of x.
	x := uint64(1)
	for i := 0; i < zeros; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("gamma suffix: %w", err)
		}
		x = x<<1 | uint64(b)
	}
	return x - 1, nil
}
