package bitstring

import (
	"fmt"
	"math/bits"
)

// Elias-gamma coding of non-negative integers. A value v is stored as
// gamma(v+1): ⌊log₂(v+1)⌋ zeros, then the binary expansion of v+1. The code
// is self-delimiting and costs 2⌊log₂(v+1)⌋+1 bits, which keeps the
// O(log κ) certificate bound of Theorem 3.1 intact when certificates must
// carry the length of the string they fingerprint.

// WriteGamma appends the Elias-gamma code of v (v >= 0).
func (w *Writer) WriteGamma(v uint64) {
	if v == ^uint64(0) {
		panic("bitstring: gamma value overflow")
	}
	x := v + 1
	n := UintBits(x)
	if n <= 32 {
		// The n−1 zeros followed by the n bits of x are just x in a
		// 2n−1-bit window (the top bit of x lands at position n−1). One
		// chunked append instead of a per-bit loop: gamma prefixes frame
		// every certificate, so this runs per port per trial.
		w.writeBits(x, 2*n-1)
		return
	}
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteUint(x, n)
}

// GammaBits returns the encoded size of v in bits.
func GammaBits(v uint64) int {
	return 2*UintBits(v+1) - 1
}

// ReadGamma consumes an Elias-gamma code. The zero prefix is scanned one
// storage byte at a time and the suffix read as one chunked ReadUint —
// the per-bit loop it replaces showed up at the top of estimator profiles.
func (r *Reader) ReadGamma() (uint64, error) {
	pos, end := r.pos, r.s.n
	zeros := 0
	for {
		if pos >= end {
			return 0, fmt.Errorf("gamma prefix: bitstring: read past end at bit %d", pos)
		}
		avail := 8 - (pos & 7)
		if left := end - pos; left < avail {
			avail = left
		}
		// The next avail bits, left-aligned in a byte; storage past Len is
		// zero-padded, so mask to the valid window.
		chunk := r.s.data[pos>>3] << uint(pos&7)
		chunk &= 0xFF << uint(8-avail)
		if chunk == 0 {
			zeros += avail
			pos += avail
		} else {
			lz := bits.LeadingZeros8(chunk)
			zeros += lz
			pos += lz + 1
			break
		}
		if zeros > 64 {
			return 0, fmt.Errorf("gamma prefix too long (%d zeros)", zeros)
		}
	}
	if zeros > 64 {
		return 0, fmt.Errorf("gamma prefix too long (%d zeros)", zeros)
	}
	r.pos = pos
	if zeros == 0 {
		return 0, nil // x == 1
	}
	rest, err := r.ReadUint(zeros)
	if err != nil {
		return 0, fmt.Errorf("gamma suffix: %w", err)
	}
	// The leading 1 already consumed is the top bit of x. zeros == 64 can
	// only come from adversarial input; the shift then wraps exactly like
	// the bit-loop this replaces, preserving decode decisions.
	x := uint64(1)<<uint(zeros) | rest
	return x - 1, nil
}
