package bitstring

import (
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTripUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9}, {1 << 40, 41},
		{^uint64(0), 64}, {0, 64}, {12345, 17},
	}
	var w Writer
	for _, c := range cases {
		w.WriteUint(c.v, c.width)
	}
	r := NewReader(w.String())
	for _, c := range cases {
		got, err := r.ReadUint(c.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", c.width, err)
		}
		if got != c.v {
			t.Errorf("round trip width %d: got %d want %d", c.width, got, c.v)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining() = %d after reading everything", r.Remaining())
	}
}

func TestWriteReadRoundTripInt(t *testing.T) {
	vals := []int64{0, 1, -1, 42, -42, 1 << 30, -(1 << 30)}
	var w Writer
	for _, v := range vals {
		w.WriteInt(v, 40)
	}
	r := NewReader(w.String())
	for _, v := range vals {
		got, err := r.ReadInt(40)
		if err != nil {
			t.Fatalf("ReadInt: %v", err)
		}
		if got != v {
			t.Errorf("round trip: got %d want %d", got, v)
		}
	}
}

func TestLenCountsBitsExactly(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	w.WriteBit(1)
	if got := w.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	s := w.String()
	if s.Len() != 3 {
		t.Errorf("String().Len() = %d, want 3", s.Len())
	}
}

func TestBitIndexing(t *testing.T) {
	s := FromBits([]byte{1, 0, 1, 1, 0, 0, 0, 1, 1})
	want := []byte{1, 0, 1, 1, 0, 0, 0, 1, 1}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for i, b := range want {
		if got := s.Bit(i); got != b {
			t.Errorf("Bit(%d) = %d, want %d", i, got, b)
		}
	}
}

func TestEqualIgnoresPadding(t *testing.T) {
	var w1 Writer
	w1.WriteUint(5, 3)
	a := w1.String()

	// Same three bits but reached via a different construction path.
	b := FromBits([]byte{1, 0, 1})
	if !a.Equal(b) {
		t.Errorf("equal bit content compared unequal: %v vs %v", a, b)
	}

	c := FromBits([]byte{1, 0, 1, 0})
	if a.Equal(c) {
		t.Error("strings of different lengths compared equal")
	}
	d := FromBits([]byte{1, 1, 1})
	if a.Equal(d) {
		t.Error("different bit content compared equal")
	}
}

func TestTruncate(t *testing.T) {
	s := FromBits([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	for _, n := range []int{0, 1, 7, 8, 9, 10, 11, 100} {
		got := s.Truncate(n)
		wantLen := n
		if wantLen > 10 {
			wantLen = 10
		}
		if got.Len() != wantLen {
			t.Errorf("Truncate(%d).Len() = %d, want %d", n, got.Len(), wantLen)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Bit(i) != 1 {
				t.Errorf("Truncate(%d).Bit(%d) = 0, want 1", n, i)
			}
		}
	}
	if s.Truncate(-3).Len() != 0 {
		t.Error("negative truncation should yield empty string")
	}
}

func TestSlice(t *testing.T) {
	s := FromBits([]byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1})
	cases := []struct {
		lo, hi int
		want   string
	}{
		{0, 11, "10110010111"},
		{0, 0, ""},
		{3, 7, "1001"},
		{8, 11, "111"},
		{9, 100, "11"}, // hi clamps to Len
		{-5, 2, "10"},  // lo clamps to 0
		{7, 3, ""},     // inverted range is empty
		{11, 11, ""},
	}
	for _, c := range cases {
		if got := s.Slice(c.lo, c.hi).String(); got != c.want {
			t.Errorf("Slice(%d, %d) = %q, want %q", c.lo, c.hi, got, c.want)
		}
	}
	// A slice round-trip: any split point reassembles the original.
	for cut := 0; cut <= s.Len(); cut++ {
		if got := Concat(s.Slice(0, cut), s.Slice(cut, s.Len())); !got.Equal(s) {
			t.Errorf("split at %d does not reassemble", cut)
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromBits([]byte{1, 0})
	b := FromBits([]byte{1, 1, 1})
	c := Concat(a, b)
	want := FromBits([]byte{1, 0, 1, 1, 1})
	if !c.Equal(want) {
		t.Errorf("Concat = %v, want %v", c, want)
	}
	if Concat().Len() != 0 {
		t.Error("empty Concat should be empty")
	}
}

func TestKeyUniquelyIdentifies(t *testing.T) {
	a := FromBits([]byte{1, 0, 1})
	b := FromBits([]byte{1, 0, 1})
	c := FromBits([]byte{1, 0, 1, 0})
	d := FromBits([]byte{0, 0, 1})
	if a.Key() != b.Key() {
		t.Error("equal strings should have equal keys")
	}
	if a.Key() == c.Key() {
		t.Error("prefix should have a distinct key")
	}
	if a.Key() == d.Key() {
		t.Error("different content should have a distinct key")
	}
}

func TestUintBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {^uint64(0), 64}}
	for _, c := range cases {
		if got := UintBits(c.v); got != c.want {
			t.Errorf("UintBits(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestReaderPastEnd(t *testing.T) {
	r := NewReader(FromBits([]byte{1, 0}))
	if _, err := r.ReadUint(3); err == nil {
		t.Error("reading 3 bits from a 2-bit string should fail")
	}
	r2 := NewReader(FromBits([]byte{1}))
	if _, err := r2.ReadBit(); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadBit(); err == nil {
		t.Error("second ReadBit on 1-bit string should fail")
	}
	r3 := NewReader(FromBits(nil))
	if _, err := r3.ReadInt(4); err == nil {
		t.Error("ReadInt on empty string should fail")
	}
	if _, err := r3.ReadString(1); err == nil {
		t.Error("ReadString on empty string should fail")
	}
}

func TestReadString(t *testing.T) {
	var w Writer
	w.WriteUint(0b10110, 5)
	w.WriteUint(0b001, 3)
	r := NewReader(w.String())
	first, err := r.ReadString(5)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(FromBits([]byte{1, 0, 1, 1, 0})) {
		t.Errorf("first = %v", first)
	}
	second, err := r.ReadString(3)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Equal(FromBits([]byte{0, 0, 1})) {
		t.Errorf("second = %v", second)
	}
}

func TestFromBytes(t *testing.T) {
	s := FromBytes([]byte{0xA5})
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	for i, b := range want {
		if s.Bit(i) != b {
			t.Errorf("Bit(%d) = %d, want %d", i, s.Bit(i), b)
		}
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		var w Writer
		for _, v := range vals {
			w.WriteUint(uint64(v), 16)
		}
		r := NewReader(w.String())
		for _, v := range vals {
			got, err := r.ReadUint(16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Concat length is the sum of lengths and preserves content.
func TestQuickConcat(t *testing.T) {
	f := func(a, b []bool) bool {
		toBits := func(xs []bool) []byte {
			out := make([]byte, len(xs))
			for i, x := range xs {
				if x {
					out[i] = 1
				}
			}
			return out
		}
		sa, sb := FromBits(toBits(a)), FromBits(toBits(b))
		c := Concat(sa, sb)
		if c.Len() != sa.Len()+sb.Len() {
			return false
		}
		for i := 0; i < sa.Len(); i++ {
			if c.Bit(i) != sa.Bit(i) {
				return false
			}
		}
		for i := 0; i < sb.Len(); i++ {
			if c.Bit(sa.Len()+i) != sb.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteUintPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteUint(4, 2) should panic: 4 needs 3 bits")
		}
	}()
	var w Writer
	w.WriteUint(4, 2)
}
