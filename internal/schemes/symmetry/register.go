package symmetry

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "symmetry",
		Description: "some edge splits the graph into isomorphic halves (Appendix C)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
