package symmetry_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/schemetest"
	"rpls/internal/schemes/symmetry"
)

func bits(pattern string) bitstring.String {
	out := make([]byte, len(pattern))
	for i, ch := range pattern {
		if ch == '1' {
			out[i] = 1
		}
	}
	return bitstring.FromBits(out)
}

func TestGZShape(t *testing.T) {
	z := bits("10011")
	g, err := symmetry.GZ(z)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2*5+3 {
		t.Fatalf("N = %d, want 13", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("G(z) must be connected")
	}
	// λ−1 path edges + 3 triangle edges + 1 anchor + λ pendant edges.
	if want := 4 + 3 + 1 + 5; g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
	// z_0 = 1: w_0 attached to u_0; z_1 = 0: w_1 attached to t_1.
	if !g.HasEdge(5+0, 0) {
		t.Error("w0 should attach to u0 (z0=1)")
	}
	if !g.HasEdge(5+1, 2*5+1) {
		t.Error("w1 should attach to t1 (z1=0)")
	}
}

func TestClaimC2SymmetryIffEqual(t *testing.T) {
	// Claim C.2: Sym(G(z, z′)) ⟺ z = z′.
	rng := prng.New(1)
	for trial := 0; trial < 12; trial++ {
		lambda := 1 + rng.Intn(7)
		zb := make([]byte, lambda)
		for i := range zb {
			zb[i] = rng.Bit()
		}
		z := bitstring.FromBits(zb)

		same, err := symmetry.GZZ(z, z)
		if err != nil {
			t.Fatal(err)
		}
		if !(symmetry.Predicate{}).Eval(graph.NewConfig(same)) {
			t.Fatalf("trial %d: G(z,z) not symmetric for z=%v", trial, z)
		}

		// Flip one bit for the unequal case.
		yb := make([]byte, lambda)
		copy(yb, zb)
		pos := rng.Intn(lambda)
		yb[pos] = 1 - yb[pos]
		y := bitstring.FromBits(yb)
		diff, err := symmetry.GZZ(z, y)
		if err != nil {
			t.Fatal(err)
		}
		if (symmetry.Predicate{}).Eval(graph.NewConfig(diff)) {
			t.Fatalf("trial %d: G(z,y) symmetric for z=%v y=%v", trial, z, y)
		}
	}
}

func TestClaimC2SingleBit(t *testing.T) {
	// The λ = 1 case the proof handles separately: G('0') vs G('1').
	g0, err := symmetry.GZ(bits("0"))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := symmetry.GZ(bits("1"))
	if err != nil {
		t.Fatal(err)
	}
	if graph.Isomorphic(g0, g1) {
		t.Error("G('0') and G('1') must not be isomorphic")
	}
}

func TestGZReversalNotIsomorphic(t *testing.T) {
	// The anchor edge e_0 exists precisely to break string reversal.
	z := bits("1100")
	zr := bits("0011")
	gz, err := symmetry.GZ(z)
	if err != nil {
		t.Fatal(err)
	}
	gzr, err := symmetry.GZ(zr)
	if err != nil {
		t.Fatal(err)
	}
	if graph.Isomorphic(gz, gzr) {
		t.Error("G(z) and G(reverse(z)) must differ")
	}
}

func TestSymmetricEdgeOnKnownGraphs(t *testing.T) {
	// A path of even length splits at its middle edge.
	if symmetry.SymmetricEdge(graph.Path(6)) < 0 {
		t.Error("P6 should be symmetric")
	}
	if symmetry.SymmetricEdge(graph.Path(5)) >= 0 {
		t.Error("P5 has no splitting edge into equal halves")
	}
	// A cycle stays connected after any single-edge removal.
	cyc, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if symmetry.SymmetricEdge(cyc) >= 0 {
		t.Error("C6 should not be symmetric (no cut edge)")
	}
}

func TestUniversalSchemeOnSym(t *testing.T) {
	z := bits("101")
	g, err := symmetry.GZZ(z, z)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	h := schemetest.New(1)
	h.LegalAccepted(t, symmetry.NewPLS(), c)
	h.LegalAcceptedRPLS(t, symmetry.NewRPLS(), c, 5)
}

func TestEQFromRPLSEqualStrings(t *testing.T) {
	// Lemma C.1 forward direction: equal inputs are accepted (probability 1
	// for the compiled universal scheme, which is one-sided).
	s := symmetry.NewRPLS()
	x := bits("1011")
	eq, bitsUsed, err := symmetry.EQFromRPLS(s, x, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("protocol rejected equal strings")
	}
	if bitsUsed <= 0 {
		t.Error("no bits crossed the bridge")
	}
}

func TestEQFromRPLSDistinctStrings(t *testing.T) {
	// Reverse direction: distinct inputs are rejected with probability
	// >= 2/3; measure over seeds.
	s := symmetry.NewRPLS()
	x := bits("1011")
	y := bits("1010")
	accepted := 0
	const trials = 30
	for seed := uint64(0); seed < trials; seed++ {
		eq, _, err := symmetry.EQFromRPLS(s, x, y, seed)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			accepted++
		}
	}
	if rate := float64(accepted) / trials; rate > 1.0/3 {
		t.Errorf("distinct strings accepted at rate %v", rate)
	}
}

func TestEQFromRPLSTranscriptIsLogarithmic(t *testing.T) {
	// The transcript is two certificates: O(log n + log k) = O(log λ) bits,
	// exponentially below the λ bits of the trivial protocol.
	s := symmetry.NewRPLS()
	prev := 0
	for _, lambda := range []int{2, 4, 8} {
		x := bitstring.FromBits(make([]byte, lambda))
		_, bitsUsed, err := symmetry.EQFromRPLS(s, x, x, 3)
		if err != nil {
			t.Fatal(err)
		}
		if bitsUsed >= lambda*100 && lambda >= 8 {
			t.Errorf("λ=%d: transcript %d bits is not sublinear territory", lambda, bitsUsed)
		}
		if prev > 0 && bitsUsed > prev+40 {
			t.Errorf("λ=%d: transcript jumped %d -> %d", lambda, prev, bitsUsed)
		}
		prev = bitsUsed
	}
}
