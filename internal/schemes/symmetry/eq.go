package symmetry

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// EQFromRPLS is the reduction in the proof of Lemma C.1: any RPLS for Sym
// with κ-bit certificates yields a 2-party protocol for EQ over λ-bit
// strings exchanging O(κ) bits — so κ = Ω(log λ) by Lemma 3.2.
//
// Alice holds x and builds G(x,x); Bob holds y and builds G(y,y). Each runs
// the prover locally and simulates the verifier on their half of the
// combined graph G(x,y); the only communication is the pair of certificates
// crossing the bridge edge {u⁰_{λ−1}, u¹_{λ−1}}. By Claim C.2, G(x,y) is
// symmetric iff x = y, so the scheme's guarantees transfer: accept with the
// scheme's completeness when x = y, reject with probability ≥ 2/3 when
// x ≠ y.
//
// It returns the protocol's decision and the number of bits exchanged (the
// two bridge certificates).
func EQFromRPLS(s core.RPLS, x, y bitstring.String, seed uint64) (equal bool, bits int, err error) {
	combined, labels, err := eqInstance(s, x, y)
	if err != nil {
		return false, 0, err
	}

	// Simulate the verification round on the combined configuration. Only
	// the two certificates on the bridge edge cross the Alice/Bob boundary.
	res := engine.Verify(engine.FromRPLS(s), combined, labels, engine.WithSeed(seed))

	ua, ub := BridgeEndpoints(x.Len())
	bits = bridgeCertBits(s, combined, labels, ua, ub, seed) +
		bridgeCertBits(s, combined, labels, ub, ua, seed)
	return res.Accepted, bits, nil
}

// EQRejectionRate runs the Lemma C.1 protocol's verification `rounds`
// times over the same inputs with fresh coins per run — seeds seed,
// seed+1, … — and returns how many runs rejected. The combined instance
// and the stitched labels are built once and the runs go through the
// trial-batched estimator, so run r's decision is bit-identical to
// EQFromRPLS(s, x, y, seed+r) at a fraction of its cost.
func EQRejectionRate(s core.RPLS, x, y bitstring.String, rounds int, seed uint64) (int, error) {
	combined, labels, err := eqInstance(s, x, y)
	if err != nil {
		return 0, err
	}
	sum, err := engine.Estimate(engine.FromRPLS(s), combined,
		engine.WithLabels(labels), engine.WithTrials(rounds),
		engine.WithSeed(seed), engine.WithExecutor(engine.NewBatched()))
	if err != nil {
		return 0, err
	}
	return sum.Trials - sum.Accepted, nil
}

// eqInstance builds the protocol's combined configuration G(x,y) and the
// stitched Alice/Bob label assignment: Alice labels G(x,x) and keeps her
// V0 half, Bob labels G(y,y) and keeps his V1 half.
func eqInstance(s core.RPLS, x, y bitstring.String) (*graph.Config, []core.Label, error) {
	if x.Len() != y.Len() || x.Len() == 0 {
		return nil, nil, fmt.Errorf("symmetry: EQ inputs must be nonempty equal-length strings")
	}
	lambda := x.Len()

	combinedGraph, err := GZZ(x, y)
	if err != nil {
		return nil, nil, err
	}
	combined := graph.NewConfig(combinedGraph)

	// Alice: G(x,x) shares the combined node numbering on V0 (0..nu−1),
	// so her labels for V0 are exactly what the prover would emit there.
	aGraph, err := GZZ(x, x)
	if err != nil {
		return nil, nil, err
	}
	aLabels, err := s.Label(graph.NewConfig(aGraph))
	if err != nil {
		return nil, nil, fmt.Errorf("alice prover: %w", err)
	}
	// Bob: G(y,y); his V1 half (nu..2nu−1) matches the combined graph.
	bGraph, err := GZZ(y, y)
	if err != nil {
		return nil, nil, err
	}
	bLabels, err := s.Label(graph.NewConfig(bGraph))
	if err != nil {
		return nil, nil, fmt.Errorf("bob prover: %w", err)
	}

	nu := 2*lambda + 3
	labels := make([]core.Label, 2*nu)
	copy(labels[:nu], aLabels[:nu])
	copy(labels[nu:], bLabels[nu:])
	return combined, labels, nil
}

// bridgeCertBits returns the size of the certificate from to via their
// shared edge under the same coins the simulation used.
func bridgeCertBits(s core.RPLS, c *graph.Config, labels []core.Label, from, to int, seed uint64) int {
	port, ok := c.G.PortTo(from, to)
	if !ok {
		return 0
	}
	root := prng.New(seed)
	certs := s.Certs(core.ViewOf(c, from), labels[from], root.Fork(uint64(from)))
	if port-1 < len(certs) {
		return certs[port-1].Len()
	}
	return 0
}
