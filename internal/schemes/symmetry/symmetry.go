// Package symmetry implements the Sym predicate of Appendix C: a connected
// graph is symmetric when it has an edge whose removal splits it into
// exactly two isomorphic connected components.
//
// Sym is the paper's example of a predicate whose deterministic
// verification is brutally expensive (Ω(n²) bits, [21]) while the universal
// randomized scheme needs only O(log n) bits. It also powers the Ω(log n)
// lower bound for randomized schemes (Lemma C.1) through the string-to-
// graph encodings G(z) and G(z, z′) of Figures 3 and 4, which this package
// constructs, together with the reduction turning any RPLS for Sym into a
// 2-party EQ protocol.
package symmetry

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Predicate decides Sym.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "symmetry" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	return SymmetricEdge(c.G) >= 0
}

// SymmetricEdge returns the index (into g.Edges()) of an edge whose removal
// splits g into two isomorphic components, or -1 if none exists.
func SymmetricEdge(g *graph.Graph) int {
	if !g.IsConnected() || g.N() == 0 {
		return -1
	}
	for i, e := range g.Edges() {
		h, err := g.RemoveEdge(e.U, e.V)
		if err != nil {
			continue
		}
		comps := h.Components()
		if len(comps) != 2 {
			continue
		}
		if len(comps[0]) != len(comps[1]) {
			continue
		}
		g1, _ := h.InducedSubgraph(comps[0])
		g2, _ := h.InducedSubgraph(comps[1])
		if graph.Isomorphic(g1, g2) {
			return i
		}
	}
	return -1
}

// NewPLS returns the universal deterministic scheme for Sym. Per [21] no
// substantially better deterministic scheme exists (Ω(n²) bits).
func NewPLS() core.PLS { return core.UniversalPLS(Predicate{}) }

// NewRPLS returns the compiled universal scheme: O(log n)-bit certificates,
// which Lemma C.1 proves optimal.
func NewRPLS() core.RPLS { return core.UniversalRPLS(Predicate{}) }

// GZ builds the graph G(z) of Figure 3 for a λ-bit string z: a path
// u_0..u_{λ−1}, pendant nodes w_0..w_{λ−1} attached to u_i when z_i = 1 and
// to the triangle node t_1 when z_i = 0, a triangle {t_0, t_1, t_2}, and
// the anchor edge {t_0, u_0}. Node layout: u_i at index i, w_i at λ+i,
// t_j at 2λ+j.
func GZ(z bitstring.String) (*graph.Graph, error) {
	lambda := z.Len()
	if lambda == 0 {
		return nil, fmt.Errorf("symmetry: empty string")
	}
	g := graph.New(2*lambda + 3)
	u := func(i int) int { return i }
	w := func(i int) int { return lambda + i }
	t := func(j int) int { return 2*lambda + j }
	for i := 0; i+1 < lambda; i++ {
		g.MustAddEdge(u(i), u(i+1))
	}
	g.MustAddEdge(t(0), t(1))
	g.MustAddEdge(t(0), t(2))
	g.MustAddEdge(t(1), t(2))
	g.MustAddEdge(t(0), u(0))
	for i := 0; i < lambda; i++ {
		if z.Bit(i) == 1 {
			g.MustAddEdge(w(i), u(i))
		} else {
			g.MustAddEdge(w(i), t(1))
		}
	}
	return g, nil
}

// GZZ builds the graph G(z, z′) of Figure 4: disjoint copies of G(z) and
// G(z′) joined by the bridge {u^0_{λ−1}, u^1_{λ−1}}. The first copy
// occupies indices 0..2λ+2, the second 2λ+3..4λ+5.
func GZZ(z, zp bitstring.String) (*graph.Graph, error) {
	if z.Len() != zp.Len() {
		return nil, fmt.Errorf("symmetry: strings must have equal length")
	}
	lambda := z.Len()
	g0, err := GZ(z)
	if err != nil {
		return nil, err
	}
	g1, err := GZ(zp)
	if err != nil {
		return nil, err
	}
	nu := g0.N()
	g := graph.New(2 * nu)
	for _, e := range g0.Edges() {
		g.MustAddEdge(e.U, e.V)
	}
	for _, e := range g1.Edges() {
		g.MustAddEdge(nu+e.U, nu+e.V)
	}
	// Bridge between the two path ends u_{λ−1}.
	g.MustAddEdge(lambda-1, nu+lambda-1)
	return g, nil
}

// BridgeEndpoints returns the endpoints of the bridge edge of GZZ for
// strings of length lambda.
func BridgeEndpoints(lambda int) (int, int) {
	return lambda - 1, (2*lambda + 3) + lambda - 1
}
