// Package schemetest provides the shared conformance checks every concrete
// scheme must pass: completeness on legal configurations (probability 1 for
// the one-sided schemes of this repository), prover refusal on illegal
// configurations, and soundness against the adversaries the paper itself
// considers — transplanted legal labels and random labels.
package schemetest

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/runtime"
)

// LegalAccepted asserts the deterministic scheme accepts a legal
// configuration with honest labels.
func LegalAccepted(t *testing.T, s core.PLS, c *graph.Config) {
	t.Helper()
	res, err := runtime.RunPLS(s, c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if !res.Accepted {
		t.Fatalf("%s rejected a legal configuration; votes = %v", s.Name(), res.Votes)
	}
}

// LegalAcceptedRPLS asserts a one-sided randomized scheme accepts a legal
// configuration with probability 1 over the given trials.
func LegalAcceptedRPLS(t *testing.T, s core.RPLS, c *graph.Config, trials int) {
	t.Helper()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if rate := runtime.EstimateAcceptance(s, c, labels, trials, 17); rate != 1.0 {
		t.Fatalf("%s accepted legal configuration at rate %v, want 1.0", s.Name(), rate)
	}
}

// ProverRefuses asserts the prover errors on an illegal configuration.
func ProverRefuses(t *testing.T, s core.Prover, c *graph.Config) {
	t.Helper()
	if _, err := s.Label(c); err == nil {
		t.Error("prover labeled an illegal configuration")
	}
}

// TransplantRejected asserts a deterministic scheme rejects an illegal
// configuration labeled with the honest labels of a legal twin (a standard
// adversary: both configurations have the same node count).
func TransplantRejected(t *testing.T, s core.PLS, legal, illegal *graph.Config) {
	t.Helper()
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatalf("%s prover on legal twin: %v", s.Name(), err)
	}
	if runtime.VerifyPLS(s, illegal, labels).Accepted {
		t.Errorf("%s fooled by labels transplanted from a legal twin", s.Name())
	}
}

// TransplantRejectedRPLS is the randomized analogue: acceptance of the
// illegal configuration under transplanted labels must not exceed maxRate
// (1/3 for the paper's parameters).
func TransplantRejectedRPLS(t *testing.T, s core.RPLS, legal, illegal *graph.Config, trials int, maxRate float64) {
	t.Helper()
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatalf("%s prover on legal twin: %v", s.Name(), err)
	}
	if rate := runtime.EstimateAcceptance(s, illegal, labels, trials, 23); rate > maxRate {
		t.Errorf("%s accepted illegal configuration at rate %v > %v under transplant",
			s.Name(), rate, maxRate)
	}
}

// RandomLabelsRejected asserts a deterministic scheme rejects an illegal
// configuration under many random label assignments.
func RandomLabelsRejected(t *testing.T, s core.PLS, illegal *graph.Config, attempts, maxLabelBits int, seed uint64) {
	t.Helper()
	rng := prng.New(seed)
	for a := 0; a < attempts; a++ {
		labels := RandomLabels(rng, illegal.G.N(), maxLabelBits)
		if runtime.VerifyPLS(s, illegal, labels).Accepted {
			t.Fatalf("%s fooled by random labels on attempt %d", s.Name(), a)
		}
	}
}

// RandomLabelsRejectedRPLS is the randomized analogue with an acceptance
// budget per assignment.
func RandomLabelsRejectedRPLS(t *testing.T, s core.RPLS, illegal *graph.Config, attempts, trials, maxLabelBits int, maxRate float64, seed uint64) {
	t.Helper()
	rng := prng.New(seed)
	for a := 0; a < attempts; a++ {
		labels := RandomLabels(rng, illegal.G.N(), maxLabelBits)
		if rate := runtime.EstimateAcceptance(s, illegal, labels, trials, seed+uint64(a)); rate > maxRate {
			t.Fatalf("%s accepted illegal configuration at rate %v under random labels", s.Name(), rate)
		}
	}
}

// RandomLabels builds n labels of up to maxBits random bits each.
func RandomLabels(rng *prng.Rand, n, maxBits int) []core.Label {
	out := make([]core.Label, n)
	for i := range out {
		bits := make([]byte, rng.Intn(maxBits+1))
		for j := range bits {
			bits[j] = rng.Bit()
		}
		out[i] = bitstring.FromBits(bits)
	}
	return out
}

// LabelBitsAtMost asserts the honest labels stay within bound bits.
func LabelBitsAtMost(t *testing.T, s core.PLS, c *graph.Config, bound int) {
	t.Helper()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if got := core.MaxBits(labels); got > bound {
		t.Errorf("%s labels are %d bits, want <= %d", s.Name(), got, bound)
	}
}

// CertBitsAtMost asserts the certificates generated from honest labels stay
// within bound bits over a few coin draws.
func CertBitsAtMost(t *testing.T, s core.RPLS, c *graph.Config, bound int) {
	t.Helper()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if got := runtime.MaxCertBitsOver(s, c, labels, 5, 31); got > bound {
		t.Errorf("%s certificates are %d bits, want <= %d", s.Name(), got, bound)
	}
}

// Log2Ceil returns ⌈log₂ n⌉ with Log2Ceil(1) = 1, used in size envelopes.
func Log2Ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
