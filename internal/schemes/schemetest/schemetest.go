// Package schemetest provides the shared conformance checks every concrete
// scheme must pass: completeness on legal configurations (probability 1 for
// the one-sided schemes of this repository), prover refusal on illegal
// configurations, and soundness against the standard adversaries —
// transplanted legal labels, random labels, and single-bit flips.
//
// All checks run through the engine batch entry points on a Harness that
// makes the executor, the root seed, and the parallelism level explicit.
// Randomized acceptance is asserted with exact accepted/trial counts (the
// estimator stops a completeness run at the first rejection), never with
// float rate comparisons.
package schemetest

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Harness binds the conformance helpers to a root seed, a round executor,
// and a parallelism level. The zero value is usable (seed 0, the engine's
// default executor, serial); New names the seed explicitly so a scheme's
// test battery states its randomness instead of inheriting hardcoded
// constants.
type Harness struct {
	Seed uint64
	// Exec, when non-nil, runs every round on this executor. Estimates may
	// clone it (see engine.Cloneable) when Parallelism > 1.
	Exec engine.Executor
	// Parallelism is forwarded to the engine estimator; 0 or 1 is serial.
	// Summaries are bit-identical at every level, so tests may crank this
	// up freely for speed.
	Parallelism int
	// Multiplicity, when >= 1, runs every round under that message-
	// multiplicity cap (engine.WithMultiplicity): m = 1 is the broadcast
	// model, m >= deg is classic unicast. 0 leaves rounds unconstrained.
	Multiplicity int
}

// New returns a harness rooted at seed on the engine's default executor.
func New(seed uint64) *Harness { return &Harness{Seed: seed} }

// OnExecutor returns a copy of h whose checks run on e.
func (h *Harness) OnExecutor(e engine.Executor) *Harness {
	c := *h
	c.Exec = e
	return &c
}

// opts assembles the engine options for one check.
func (h *Harness) opts(extra ...engine.Option) []engine.Option {
	opts := []engine.Option{engine.WithSeed(h.Seed)}
	if h.Exec != nil {
		opts = append(opts, engine.WithExecutor(h.Exec))
	}
	if h.Parallelism > 1 {
		opts = append(opts, engine.WithParallelism(h.Parallelism))
	}
	if h.Multiplicity >= 1 {
		opts = append(opts, engine.WithMultiplicity(h.Multiplicity))
	}
	return append(opts, extra...)
}

// LegalAccepted asserts the deterministic scheme accepts a legal
// configuration with honest labels.
func (h *Harness) LegalAccepted(t *testing.T, s core.PLS, c *graph.Config) {
	t.Helper()
	res, err := engine.Run(engine.FromPLS(s), c, h.opts(engine.WithStats(true))...)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if !res.Accepted {
		t.Fatalf("%s rejected a legal configuration; votes = %v", s.Name(), res.Votes)
	}
}

// LegalAcceptedRPLS asserts a one-sided randomized scheme accepts a legal
// configuration in every one of the given trials. The estimate stops at the
// first rejection, so a failing scheme reports the exact trial that broke.
func (h *Harness) LegalAcceptedRPLS(t *testing.T, s core.RPLS, c *graph.Config, trials int) {
	t.Helper()
	sum, err := engine.Estimate(engine.FromRPLS(s), c,
		h.opts(engine.WithTrials(trials), engine.WithStopOnReject(true))...)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if sum.Accepted != sum.Trials {
		t.Fatalf("%s accepted %d of %d trials on a legal configuration (first rejection at trial %d, trial seed %d)",
			s.Name(), sum.Accepted, sum.Trials, sum.Trials-1, h.Seed+uint64(sum.Trials-1))
	}
}

// ProverRefuses asserts the prover errors on an illegal configuration.
func (h *Harness) ProverRefuses(t *testing.T, s core.Prover, c *graph.Config) {
	t.Helper()
	if _, err := s.Label(c); err == nil {
		t.Error("prover labeled an illegal configuration")
	}
}

// TransplantRejected asserts a deterministic scheme rejects an illegal
// configuration labeled with the honest labels of a legal twin (a standard
// adversary: both configurations have the same node count).
func (h *Harness) TransplantRejected(t *testing.T, s core.PLS, legal, illegal *graph.Config) {
	t.Helper()
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatalf("%s prover on legal twin: %v", s.Name(), err)
	}
	if engine.Verify(engine.FromPLS(s), illegal, labels, h.opts()...).Accepted {
		t.Errorf("%s fooled by labels transplanted from a legal twin", s.Name())
	}
}

// TransplantRejectedRPLS is the randomized analogue: out of the given
// trials on the illegal configuration under transplanted labels, at most
// maxAccepted may accept (trials/3 for the paper's parameters).
func (h *Harness) TransplantRejectedRPLS(t *testing.T, s core.RPLS, legal, illegal *graph.Config, trials, maxAccepted int) {
	t.Helper()
	labels, err := s.Label(legal)
	if err != nil {
		t.Fatalf("%s prover on legal twin: %v", s.Name(), err)
	}
	sum, err := engine.Estimate(engine.FromRPLS(s), illegal,
		h.opts(engine.WithLabels(labels), engine.WithTrials(trials))...)
	if err != nil {
		t.Fatalf("%s estimate: %v", s.Name(), err)
	}
	if sum.Accepted > maxAccepted {
		t.Errorf("%s accepted %d of %d trials (> %d) under transplant; ci95 = [%.3f, %.3f]",
			s.Name(), sum.Accepted, sum.Trials, maxAccepted, sum.CILow, sum.CIHigh)
	}
}

// RandomLabelsRejected asserts a deterministic scheme rejects an illegal
// configuration under many random label assignments drawn from the harness
// seed.
func (h *Harness) RandomLabelsRejected(t *testing.T, s core.PLS, illegal *graph.Config, attempts, maxLabelBits int) {
	t.Helper()
	rng := prng.New(h.Seed)
	for a := 0; a < attempts; a++ {
		labels := RandomLabels(rng, illegal.G.N(), maxLabelBits)
		if engine.Verify(engine.FromPLS(s), illegal, labels, h.opts()...).Accepted {
			t.Fatalf("%s fooled by random labels on attempt %d (seed %d)", s.Name(), a, h.Seed)
		}
	}
}

// RandomLabelsRejectedRPLS is the randomized analogue with an exact
// acceptance budget per assignment.
func (h *Harness) RandomLabelsRejectedRPLS(t *testing.T, s core.RPLS, illegal *graph.Config, attempts, trials, maxLabelBits, maxAccepted int) {
	t.Helper()
	rng := prng.New(h.Seed)
	for a := 0; a < attempts; a++ {
		labels := RandomLabels(rng, illegal.G.N(), maxLabelBits)
		sum, err := engine.Estimate(engine.FromRPLS(s), illegal,
			h.opts(engine.WithLabels(labels), engine.WithTrials(trials), engine.WithSeed(h.Seed+uint64(a)))...)
		if err != nil {
			t.Fatalf("%s estimate: %v", s.Name(), err)
		}
		if sum.Accepted > maxAccepted {
			t.Fatalf("%s accepted %d of %d trials (> %d) under random labels on attempt %d",
				s.Name(), sum.Accepted, sum.Trials, maxAccepted, a)
		}
	}
}

// LabelBitsAtMost asserts the honest labels stay within bound bits.
func (h *Harness) LabelBitsAtMost(t *testing.T, s core.PLS, c *graph.Config, bound int) {
	t.Helper()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if got := core.MaxBits(labels); got > bound {
		t.Errorf("%s labels are %d bits, want <= %d", s.Name(), got, bound)
	}
}

// CertBitsAtMost asserts the certificates generated from honest labels stay
// within bound bits over a few coin draws.
func (h *Harness) CertBitsAtMost(t *testing.T, s core.RPLS, c *graph.Config, bound int) {
	t.Helper()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatalf("%s prover: %v", s.Name(), err)
	}
	if got := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 5, h.Seed); got > bound {
		t.Errorf("%s certificates are %d bits, want <= %d", s.Name(), got, bound)
	}
}

// BatterySpec parameterizes the full conformance battery.
type BatterySpec struct {
	// Trials is the Monte-Carlo budget per estimate for randomized schemes.
	Trials int
	// MaxAccepted is the acceptance budget per adversarial estimate for
	// randomized schemes; deterministic schemes must always reject.
	MaxAccepted int
	// Assignments is the number of random / bit-flip label assignments the
	// soundness fan-out draws (default 4 when zero).
	Assignments int
}

// Battery runs the full conformance suite on one scheme: completeness on
// the legal configuration, prover refusal on the illegal one, and the
// engine.Soundness fan-out (transplant, random labels, single-bit flips)
// against the illegal one. It covers deterministic and randomized schemes
// uniformly, so registry-driven tests can exercise every entry without
// scheme-specific code.
func (h *Harness) Battery(t *testing.T, s engine.Scheme, legal, illegal *graph.Config, spec BatterySpec) {
	t.Helper()
	trials := spec.Trials
	if engine.IsCoinFree(s) {
		trials = 1 // every trial of a coin-free execution is identical
	}

	// Completeness. One-sided schemes must accept every trial, so the run
	// stops at the first rejection; two-sided schemes get the paper's 2/3
	// budget.
	if s.OneSided() {
		sum, err := engine.Estimate(s, legal,
			h.opts(engine.WithTrials(trials), engine.WithStopOnReject(true))...)
		if err != nil {
			t.Fatalf("%s prover on legal instance: %v", s.Name(), err)
		}
		if sum.Accepted != sum.Trials {
			t.Fatalf("%s accepted %d of %d trials on the legal instance", s.Name(), sum.Accepted, sum.Trials)
		}
	} else {
		sum, err := engine.Estimate(s, legal, h.opts(engine.WithTrials(trials))...)
		if err != nil {
			t.Fatalf("%s prover on legal instance: %v", s.Name(), err)
		}
		if 3*sum.Accepted < 2*sum.Trials {
			t.Fatalf("%s accepted only %d of %d trials on the legal instance (want >= 2/3)",
				s.Name(), sum.Accepted, sum.Trials)
		}
	}

	// The prover must refuse to certify the illegal instance.
	if _, err := s.Label(illegal); err == nil {
		t.Errorf("%s prover labeled the illegal instance", s.Name())
	}

	// Soundness fan-out across the adversary families.
	assignments := spec.Assignments
	if assignments == 0 {
		assignments = 4
	}
	results, err := engine.Soundness(s, legal, illegal,
		h.opts(engine.WithTrials(trials), engine.WithAssignments(assignments))...)
	if err != nil {
		t.Fatalf("%s soundness: %v", s.Name(), err)
	}
	if len(results) == 0 {
		t.Fatalf("%s: soundness ran no adversaries", s.Name())
	}
	for _, r := range results {
		budget := spec.MaxAccepted
		if engine.IsCoinFree(s) {
			budget = 0
		}
		if r.Worst.Accepted > budget {
			t.Errorf("%s: adversary %s assignment %d accepted %d of %d trials (budget %d)",
				s.Name(), r.Adversary, r.WorstIndex, r.Worst.Accepted, r.Worst.Trials, budget)
		}
	}
}

// RandomLabels builds n labels of up to maxBits random bits each.
func RandomLabels(rng *prng.Rand, n, maxBits int) []core.Label {
	return engine.RandomLabels(rng, n, maxBits)
}

// Log2Ceil returns ⌈log₂ n⌉ with Log2Ceil(1) = 1, used in size envelopes.
func Log2Ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
