package uniform_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

func TestSharedCompleteness(t *testing.T) {
	c := uniformConfig(graph.RandomConnected(15, 10, prng.New(1)), []byte("shared payload"))
	s := uniform.NewSharedRPLS()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	if rate := core.EstimateAcceptanceShared(s, c, labels, 200, 3); rate != 1.0 {
		t.Errorf("legal acceptance %v, want 1.0 (one-sided)", rate)
	}
}

func TestSharedSoundness(t *testing.T) {
	c := uniformConfig(graph.Path(6), []byte("aaaaaaaa"))
	c.States[3].Data = []byte("aaaaaaab")
	s := uniform.NewSharedRPLS()
	labels := make([]core.Label, 6)
	if rate := core.EstimateAcceptanceShared(s, c, labels, 2000, 5); rate > 1.0/3 {
		t.Errorf("illegal acceptance %v, want <= 1/3", rate)
	}
}

func TestSharedCertificatesAreSmaller(t *testing.T) {
	// The public evaluation point need not be transmitted: shared-coin
	// certificates drop the x component.
	c := uniformConfig(graph.Path(4), make([]byte, 64))
	shared := uniform.NewSharedRPLS()
	private := uniform.NewRPLS()
	labels := make([]core.Label, 4)

	sharedBits := core.VerifyShared(shared, c, labels, 7).Stats.MaxCertBits
	privateBits := engine.MaxCertBits(engine.FromRPLS(private), c, labels, 5, 7)
	if sharedBits >= privateBits {
		t.Errorf("shared certs %d bits, private %d bits; shared should be smaller", sharedBits, privateBits)
	}
	// Specifically: private ≈ gamma + 2·⌈log p⌉, shared ≈ gamma + ⌈log p⌉.
	if sharedBits*2 > privateBits+24 {
		t.Errorf("shared %d bits not close to half of private %d bits", sharedBits, privateBits)
	}
}

func TestSharedCoinsAreIdenticalAcrossNodes(t *testing.T) {
	// All nodes must draw the same public point; two independently built
	// SharedCoins streams for the same round agree.
	a := core.SharedCoins(42)
	b := core.SharedCoins(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("shared streams diverged")
		}
	}
	c := core.SharedCoins(43)
	if core.SharedCoins(42).Uint64() == c.Uint64() {
		t.Error("different rounds produced identical public coins")
	}
}

func TestSharedRejectsGarbage(t *testing.T) {
	c := uniformConfig(graph.Path(2), []byte("zz"))
	s := uniform.NewSharedRPLS()
	view := core.ViewOf(c, 0)
	if s.DecideShared(view, core.Label{}, []core.Cert{{}}, core.SharedCoins(1)) {
		t.Error("empty certificate accepted")
	}
	if s.DecideShared(view, core.Label{}, nil, core.SharedCoins(1)) {
		t.Error("missing certificates accepted")
	}
}
