package uniform

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "uniform",
		Description: "all nodes carry identical payloads (Lemma C.3)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
