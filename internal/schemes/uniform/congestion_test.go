package uniform_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

// The native congestion degradation of the uniform scheme: CapCerts merges
// the unicast fingerprints per port class, CapDecide checks every member of
// every received class message. These tests pin the wire-format contract
// the engine's capScheme relies on.

func cappedUniform(t *testing.T) core.CappedRPLS {
	t.Helper()
	cr, ok := uniform.NewRPLS().(core.CappedRPLS)
	if !ok {
		t.Fatal("uniform rand scheme no longer implements core.CappedRPLS")
	}
	return cr
}

func uniformStar(n int, payload []byte) *graph.Config {
	c := graph.NewConfig(graph.Star(n))
	for v := range c.States {
		c.States[v].Data = append([]byte(nil), payload...)
	}
	return c
}

// TestCapCertsClassUniform checks the port-class contract: under cap m all
// ports of one round-robin class carry byte-identical payloads, and the
// members recovered from a class message are exactly the unicast
// fingerprints (same coins, rng.Fork per port).
func TestCapCertsClassUniform(t *testing.T) {
	s := cappedUniform(t)
	c := uniformStar(7, []byte("payload"))
	view := core.ViewOf(c, 0) // hub: degree 6
	var labels []core.Label
	labels = make([]core.Label, c.G.N())
	for m := 1; m <= view.Deg+1; m++ {
		unicast := s.Certs(view, labels[0], prng.New(9).Fork(0))
		capped := s.CapCerts(m, view, labels[0], prng.New(9).Fork(0))
		if len(capped) != view.Deg {
			t.Fatalf("m=%d: %d certs, want one per port (%d)", m, len(capped), view.Deg)
		}
		for i := range capped {
			k := core.PortClass(i, m)
			if !capped[i].Equal(capped[k]) {
				t.Fatalf("m=%d: port %d differs from class representative %d", m, i, k)
			}
			members, err := core.CapSplit(capped[k])
			if err != nil {
				t.Fatalf("m=%d class %d: %v", m, k, err)
			}
			pos := 0
			for j := k; j < i; j += m {
				pos++
			}
			if !members[pos].Equal(unicast[i]) {
				t.Fatalf("m=%d: class member for port %d is not the unicast fingerprint", m, i)
			}
		}
	}
}

// TestCapDecideCompleteAndSound: honest merged messages are always
// accepted (one-sided completeness at every m), and tampering with any
// single member of a class message — or its framing — is caught.
func TestCapDecideCompleteAndSound(t *testing.T) {
	s := cappedUniform(t)
	c := uniformStar(7, []byte("payload"))
	labels := make([]core.Label, c.G.N())
	hub := core.ViewOf(c, 0)

	for m := 1; m <= 3; m++ {
		// The hub receives, from each leaf, the class message that leaf
		// minted for the class containing its single port back to the hub.
		received := make([]core.Cert, hub.Deg)
		for i := 0; i < hub.Deg; i++ {
			leaf := core.ViewOf(c, i+1)
			leafCerts := s.CapCerts(m, leaf, labels[i+1], prng.New(3).Fork(uint64(i+1)))
			received[i] = leafCerts[0] // the leaf's only port leads to the hub
		}
		if !s.CapDecide(m, hub, labels[0], received) {
			t.Fatalf("m=%d: honest class messages rejected", m)
		}

		// Tamper: replace one member with a fingerprint of different data.
		other := uniformStar(7, []byte("tampered"))
		badLeaf := core.ViewOf(other, 1)
		bad := s.CapCerts(m, badLeaf, labels[1], prng.New(3).Fork(1))[0]
		tampered := append([]core.Cert(nil), received...)
		tampered[2] = bad
		if s.CapDecide(m, hub, labels[0], tampered) {
			t.Fatalf("m=%d: mismatched member fingerprint accepted", m)
		}

		// Malformed framing: raw unicast certs are not class messages.
		raw := s.Certs(hub, labels[0], prng.New(3).Fork(9))
		if s.CapDecide(m, hub, labels[0], raw[:hub.Deg]) {
			t.Fatalf("m=%d: unframed unicast certificates accepted", m)
		}

		// Trailing garbage.
		var w bitstring.Writer
		w.WriteString(received[0])
		w.WriteUint(1, 1)
		garbled := append([]core.Cert(nil), received...)
		garbled[0] = w.String()
		if s.CapDecide(m, hub, labels[0], garbled) {
			t.Fatalf("m=%d: trailing bits accepted", m)
		}
	}
}

// TestCompiledCapDecide: the §3.1 compiler's generic capped path — merged
// label-replica fingerprints — must satisfy the same contract, so every
// compiled scheme degrades natively too.
func TestCompiledCapDecide(t *testing.T) {
	pls := uniform.NewPLS()
	rp := core.Compile(pls)
	cr, ok := rp.(core.CappedRPLS)
	if !ok {
		t.Fatal("compiled scheme does not implement core.CappedRPLS")
	}
	c := uniformStar(5, []byte("xy"))
	labels, err := rp.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	hub := core.ViewOf(c, 0)
	for m := 1; m <= 2; m++ {
		received := make([]core.Cert, hub.Deg)
		for i := 0; i < hub.Deg; i++ {
			leaf := core.ViewOf(c, i+1)
			received[i] = cr.CapCerts(m, leaf, labels[i+1], prng.New(4).Fork(uint64(i+1)))[0]
		}
		if !cr.CapDecide(m, hub, labels[0], received) {
			t.Fatalf("m=%d: compiled honest class messages rejected", m)
		}
		// A member fingerprinting a different (same-length) label must be
		// caught against the stored replica.
		wrongCfg := uniformStar(5, []byte("zz"))
		wrongLabels, err := rp.Label(wrongCfg)
		if err != nil {
			t.Fatal(err)
		}
		tampered := append([]core.Cert(nil), received...)
		tampered[0] = cr.CapCerts(m, core.ViewOf(wrongCfg, 1), wrongLabels[1], prng.New(4).Fork(1))[0]
		if cr.CapDecide(m, hub, labels[0], tampered) {
			t.Fatalf("m=%d: compiled fingerprint of a different label accepted", m)
		}
	}
}
