package uniform_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
)

func uniformConfig(g *graph.Graph, payload []byte) *graph.Config {
	c := graph.NewConfig(g)
	for v := range c.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		c.States[v].Data = d
	}
	return c
}

func TestPredicate(t *testing.T) {
	c := uniformConfig(graph.Path(5), []byte("abc"))
	if !(uniform.Predicate{}).Eval(c) {
		t.Error("uniform config rejected by predicate")
	}
	c.States[3].Data = []byte("abd")
	if (uniform.Predicate{}).Eval(c) {
		t.Error("non-uniform config accepted by predicate")
	}
}

func TestPLSAcceptsLegal(t *testing.T) {
	c := uniformConfig(graph.RandomConnected(20, 10, prng.New(1)), []byte("payload"))
	res, err := engine.Run(engine.FromPLS(uniform.NewPLS()), c, engine.WithStats(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("legal config rejected; votes = %v", res.Votes)
	}
	if want := 8 * 7; res.Stats.MaxLabelBits != want {
		t.Errorf("label bits = %d, want %d", res.Stats.MaxLabelBits, want)
	}
}

func TestPLSProverRefusesIllegal(t *testing.T) {
	c := uniformConfig(graph.Path(4), []byte("x"))
	c.States[2].Data = []byte("y")
	if _, err := uniform.NewPLS().Label(c); err == nil {
		t.Error("prover labeled an illegal configuration")
	}
}

func TestPLSSoundAgainstTransplantedLabels(t *testing.T) {
	// Take honest labels from a legal config and run them on an illegal one:
	// at least one node must reject, deterministically.
	legal := uniformConfig(graph.Path(6), []byte("aaaa"))
	labels, err := uniform.NewPLS().Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	illegal := legal.Clone()
	illegal.States[3].Data = []byte("aaab")
	res := engine.Verify(engine.FromPLS(uniform.NewPLS()), illegal, labels)
	if res.Accepted {
		t.Error("transplanted labels fooled the deterministic verifier")
	}
}

func TestPLSSoundAgainstRandomLabels(t *testing.T) {
	rng := prng.New(2)
	illegal := uniformConfig(graph.Path(5), []byte("aaaa"))
	illegal.States[2].Data = []byte("bbbb")
	for trial := 0; trial < 100; trial++ {
		labels := randomLabels(rng, 5, 64)
		if engine.Verify(engine.FromPLS(uniform.NewPLS()), illegal, labels).Accepted {
			t.Fatal("random labels fooled the deterministic verifier")
		}
	}
}

func TestRPLSOneSidedCompleteness(t *testing.T) {
	// Legal configurations must be accepted with probability exactly 1.
	c := uniformConfig(graph.RandomConnected(15, 10, prng.New(3)), []byte("hello world"))
	s := uniform.NewRPLS()
	labels, err := s.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 300, 10); rate != 1.0 {
		t.Errorf("acceptance on legal config = %v, want 1.0 (one-sided)", rate)
	}
}

func TestRPLSSoundness(t *testing.T) {
	// An adjacent disagreement must be detected with probability >= 2/3.
	c := uniformConfig(graph.Path(6), []byte("aaaaaaaa"))
	c.States[3].Data = []byte("aaaaaaab")
	s := uniform.NewRPLS()
	labels := make([]core.Label, 6) // scheme is label-free
	rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 2000, 20)
	if rate > 1.0/3 {
		t.Errorf("acceptance on illegal config = %v, want <= 1/3", rate)
	}
}

func TestRPLSCertificateSizeLogarithmic(t *testing.T) {
	// k doubles 9 times; certificates must grow by O(1) bits per doubling.
	s := uniform.NewRPLS()
	prev := 0
	for _, kBytes := range []int{1, 8, 64, 512} {
		c := uniformConfig(graph.Path(4), make([]byte, kBytes))
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		bits := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 5, 30)
		k := kBytes * 8
		if bits > 6*log2ceil(k)+20 {
			t.Errorf("k=%d bits: certificate %d bits, want O(log k)", k, bits)
		}
		if prev > 0 && bits > prev+16 {
			t.Errorf("k=%d: certificate jumped from %d to %d bits", k, prev, bits)
		}
		prev = bits
	}
}

func TestRPLSDetectsMostDisagreements(t *testing.T) {
	// Spot-check rejection across many random illegal instances.
	rng := prng.New(4)
	s := uniform.NewRPLS()
	fooled := 0
	const instances = 50
	for i := 0; i < instances; i++ {
		n := 4 + rng.Intn(10)
		c := uniformConfig(graph.RandomConnected(n, rng.Intn(n), rng), []byte("basebase"))
		v := rng.Intn(n)
		c.States[v].Data = []byte("basebasf")
		labels := make([]core.Label, n)
		if engine.Acceptance(engine.FromRPLS(s), c, labels, 30, uint64(100+i)) > 1.0/3 {
			fooled++
		}
	}
	if fooled > 0 {
		t.Errorf("%d/%d illegal instances accepted too often", fooled, instances)
	}
}

func TestRPLSRejectsMalformedCertificates(t *testing.T) {
	c := uniformConfig(graph.Path(2), []byte("zz"))
	s := uniform.NewRPLS()
	view := core.ViewOf(c, 0)
	if s.Decide(view, core.Label{}, []core.Cert{{}}) {
		t.Error("empty certificate accepted")
	}
	if s.Decide(view, core.Label{}, nil) {
		t.Error("missing certificates accepted")
	}
}

func randomLabels(rng *prng.Rand, n, maxBits int) []core.Label {
	out := make([]core.Label, n)
	for i := range out {
		bits := make([]byte, rng.Intn(maxBits+1))
		for j := range bits {
			bits[j] = rng.Bit()
		}
		out[i] = bitstring.FromBits(bits)
	}
	return out
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
