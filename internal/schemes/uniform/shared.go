package uniform

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// NewSharedRPLS returns the Unif scheme in the shared-randomness model (the
// open question in §6 of the paper): all nodes evaluate their payload
// polynomial at one public point x, so a certificate is just the value
// A(x) — about half the bits of the private-coin fingerprint, which must
// ship x itself. Still label-free, one-sided, and sound with error
// ≤ (k−1)/p < 1/3 per illegal edge; certificates on different edges are
// deliberately correlated (all use the same x), stepping outside the
// edge-independent class of Definition 4.5.
func NewSharedRPLS() core.SharedRPLS { return sharedRPLS{} }

type sharedRPLS struct{}

var _ core.SharedRPLS = sharedRPLS{}

func (sharedRPLS) Name() string   { return "uniform-shared" }
func (sharedRPLS) OneSided() bool { return true }

func (sharedRPLS) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	return make([]core.Label, c.G.N()), nil
}

func (sharedRPLS) CertsShared(view core.View, _ core.Label, shared, _ *prng.Rand) []core.Cert {
	data := bitstring.FromBytes(view.State.Data)
	p := field.PrimeForLength(data.Len())
	x := shared.Uint64n(p) // identical draw at every node
	y := field.NewPoly(data, p).Eval(x)
	var w bitstring.Writer
	w.WriteGamma(uint64(data.Len()))
	w.WriteUint(y, bitstring.UintBits(p-1))
	cert := w.String()
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		certs[i] = cert
	}
	return certs
}

func (sharedRPLS) DecideShared(view core.View, _ core.Label, received []core.Cert, shared *prng.Rand) bool {
	data := bitstring.FromBytes(view.State.Data)
	p := field.PrimeForLength(data.Len())
	x := shared.Uint64n(p) // replay the public draw
	want := field.NewPoly(data, p).Eval(x)
	if len(received) != view.Deg {
		return false
	}
	for _, cert := range received {
		r := bitstring.NewReader(cert)
		n, err := r.ReadGamma()
		if err != nil || int(n) != data.Len() {
			return false
		}
		y, err := r.ReadUint(bitstring.UintBits(p - 1))
		if err != nil || r.Remaining() != 0 {
			return false
		}
		if y != want {
			return false
		}
	}
	return true
}
