package uniform_test

import (
	"testing"

	"rpls/internal/commcc"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/schemes/uniform"
)

// bitsToBytes packs a bit string into a byte payload (length multiple of 8
// for exactness).
func bitsToBytes(t *testing.T, s interface {
	Len() int
	Bit(int) byte
}) []byte {
	t.Helper()
	if s.Len()%8 != 0 {
		t.Fatal("payload bit length must be a multiple of 8")
	}
	out := make([]byte, s.Len()/8)
	for i := 0; i < s.Len(); i++ {
		if s.Bit(i) == 1 {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out
}

func TestTruncatedFieldIsPerfectlyFooled(t *testing.T) {
	// Lemma C.3 made constructive: with a field of 4 bits, the payload pair
	// (e₁, e_p) is indistinguishable by every fingerprint, so the illegal
	// two-node configuration is accepted with probability 1 — the scheme
	// has ceased to verify anything.
	const lambda = 256 // payload bits
	fieldBits := 4
	p := commcc.TruncatedPrime(fieldBits)
	a, b, err := commcc.FoolingPair(lambda, p)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(graph.Path(2))
	c.States[0].Data = bitsToBytes(t, a)
	c.States[1].Data = bitsToBytes(t, b)
	if (uniform.Predicate{}).Eval(c) {
		t.Fatal("setup: payloads must differ")
	}
	s := uniform.NewTruncatedRPLS(fieldBits)
	labels := make([]core.Label, 2)
	if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 300, 1); rate != 1.0 {
		t.Errorf("acceptance %v, want 1.0 (perfect fooling below the bound)", rate)
	}
	// The properly sized scheme is immune on the same configuration.
	full := uniform.NewRPLS()
	if rate := engine.Acceptance(engine.FromRPLS(full), c, labels, 300, 2); rate > 1.0/3 {
		t.Errorf("full scheme accepted the fooling pair at rate %v", rate)
	}
}

func TestTruncatedFieldStillCompleteOnLegal(t *testing.T) {
	// Truncation hurts soundness, never completeness: equal payloads still
	// always match.
	c := graph.NewConfig(graph.Path(4))
	for v := range c.States {
		c.States[v].Data = []byte{0xAA, 0xBB}
	}
	s := uniform.NewTruncatedRPLS(4)
	labels := make([]core.Label, 4)
	if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 100, 3); rate != 1.0 {
		t.Errorf("legal acceptance %v under truncation, want 1.0", rate)
	}
}
