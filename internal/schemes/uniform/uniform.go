// Package uniform implements the Unif predicate of Appendix C (Lemma C.3):
// every node carries the same k-bit payload in its state.
//
// Unif is the cleanest witness of the paper's exponential separation.
// Deterministically, verification requires the payload itself to travel
// between neighbors — the PLS here uses k-bit labels (and Lemma C.3 shows
// Ω(log k) is required even with randomness). The direct RPLS needs *no
// labels at all*: each node fingerprints its own payload per Lemma A.1 and
// sends the O(log k)-bit fingerprint; any adjacent disagreement is caught
// with probability > 2/3.
package uniform

import (
	"bytes"
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Predicate decides Unif: all node Data payloads are equal. On a connected
// graph this is equivalent to all adjacent pairs agreeing.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "uniform" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	for v := 1; v < c.G.N(); v++ {
		if !bytes.Equal(c.States[v].Data, c.States[0].Data) {
			return false
		}
	}
	return true
}

// NewPLS returns the deterministic scheme: the label of v is its payload,
// and v accepts when its label matches its own payload and every neighbor
// label matches its own label. Verification complexity k.
func NewPLS() core.PLS { return detPLS{} }

type detPLS struct{}

var _ core.PLS = detPLS{}

func (detPLS) Name() string { return "uniform-det" }

func (detPLS) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	out := make([]core.Label, c.G.N())
	for v := range out {
		out[v] = bitstring.FromBytes(c.States[v].Data)
	}
	return out, nil
}

func (detPLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	if !own.Equal(bitstring.FromBytes(view.State.Data)) {
		return false
	}
	for _, nl := range nbrs {
		if !nl.Equal(own) {
			return false
		}
	}
	return true
}

// NewRPLS returns the direct randomized scheme: labels are empty;
// certificates are fingerprints of the node's own payload. One-sided and
// edge-independent; verification complexity O(log k).
func NewRPLS() core.RPLS {
	return randRPLS{name: "uniform-rand", prime: field.PrimeForLength, cache: &field.EvalCache{}}
}

// NewTruncatedRPLS returns the direct scheme with an adversarially small
// fingerprint field of the given bit width, regardless of the payload
// length. It realizes the Ω(log k) lower bound of Lemma C.3 constructively:
// when 2^fieldBits ≪ 3k there exist distinct payloads (commcc.FoolingPair)
// the scheme can never tell apart, so an illegal configuration built from
// them is accepted with probability 1.
func NewTruncatedRPLS(fieldBits int) core.RPLS {
	if fieldBits < 2 {
		fieldBits = 2
	}
	p := field.NextPrime(1 << uint(fieldBits-1))
	return randRPLS{
		name:  fmt.Sprintf("uniform-rand-truncated(%d-bit field)", fieldBits),
		prime: func(int) uint64 { return p },
		cache: &field.EvalCache{},
	}
}

type randRPLS struct {
	name  string
	prime func(lambda int) uint64
	// cache memoizes the payload polynomial's value table over the small
	// fingerprint field. Every node of a legal configuration carries the
	// same payload — the predicate being verified — so the memo is shared
	// by all (node, port, trial) evaluations of a run. Lookups are
	// bit-identical to direct evaluation.
	cache *field.EvalCache
}

var _ core.RPLS = randRPLS{}

func (r randRPLS) Name() string { return r.name }

func (randRPLS) OneSided() bool { return true }

func (randRPLS) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	return make([]core.Label, c.G.N()), nil // label-free
}

func (r randRPLS) Certs(view core.View, _ core.Label, rng *prng.Rand) []core.Cert {
	data := bitstring.FromBytes(view.State.Data)
	p := r.prime(data.Len())
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		fp := field.NewFingerprint(data, p, rng.Fork(uint64(i)))
		var w bitstring.Writer
		w.WriteGamma(uint64(data.Len()))
		fp.Encode(&w)
		certs[i] = w.String()
	}
	return certs
}

var _ core.LaneRPLS = randRPLS{}

// CertsLanes implements core.LaneRPLS: the payload's polynomial is shared
// by every lane and port, so one batched evaluation replaces
// lanes × deg Horner walks.
func (r randRPLS) CertsLanes(view core.View, _ core.Label, rngs []*prng.Rand, out [][]core.Cert) {
	data := bitstring.FromBytes(view.State.Data)
	core.FingerprintLanes(data, r.prime(data.Len()), rngs, view.Deg, r.cache, out)
}

// DecideLanes implements core.LaneRPLS. Certificates are parsed per lane
// (lanes fail independently), then all surviving fingerprints — every lane,
// every port, one shared payload polynomial — are checked in a single
// batched evaluation.
func (r randRPLS) DecideLanes(view core.View, _ core.Label, recv [][]core.Cert) uint64 {
	data := bitstring.FromBytes(view.State.Data)
	p := r.prime(data.Len())
	lanes := len(recv)
	live := core.LaneMask(lanes)
	slots := lanes * view.Deg
	buf := make([]uint64, 3*slots)
	xs := buf[:0:slots]
	ys := buf[slots : slots : 2*slots]
	owner := make([]int, 0, slots)
	for l := 0; l < lanes; l++ {
		if len(recv[l]) != view.Deg {
			live &^= 1 << uint(l)
			continue
		}
		for _, cert := range recv[l] {
			rd := bitstring.NewReader(cert)
			n, err := rd.ReadGamma()
			if err != nil || int(n) != data.Len() {
				live &^= 1 << uint(l)
				break
			}
			fp, err := field.DecodeFingerprint(rd, p)
			if err != nil || rd.Remaining() != 0 {
				live &^= 1 << uint(l)
				break
			}
			xs = append(xs, fp.X)
			ys = append(ys, fp.Y)
			owner = append(owner, l)
		}
	}
	got := buf[2*slots : 2*slots+len(xs)]
	r.cache.EvalMany(data, p, xs, got)
	for k, l := range owner {
		if got[k] != ys[k] {
			live &^= 1 << uint(l)
		}
	}
	return live
}

var _ core.CappedRPLS = randRPLS{}

// CapCerts implements core.CappedRPLS by payload merging: the unicast
// fingerprints — same coins, rng.Fork(port) each — are concatenated per
// round-robin port class into one self-delimiting class message
// (core.CapMerge). Broadcast (m=1) therefore ships all deg fingerprints on
// every port, deg² · O(log k) bits in total, falling to deg framed
// singletons at unicast: the verified-bits-vs-m curve E21 charts.
func (r randRPLS) CapCerts(m int, view core.View, own core.Label, rng *prng.Rand) []core.Cert {
	return core.CapMerge(r.Certs(view, own, rng), m)
}

// CapDecide checks every member fingerprint of every received class
// message against the node's own payload. A class message from the
// neighbor on port i bundles fingerprints the neighbor minted for all
// ports of one of its classes — each one fingerprints the neighbor's own
// payload, so under the Unif predicate all of them must match here.
// Checking the whole bundle keeps the scheme one-sided (equal payloads
// always match) and at least as sound as unicast (the reverse edge's own
// fingerprint is among the members).
func (r randRPLS) CapDecide(_ int, view core.View, _ core.Label, received []core.Cert) bool {
	data := bitstring.FromBytes(view.State.Data)
	if len(received) != view.Deg {
		return false
	}
	for _, msg := range received {
		members, err := core.CapSplit(msg)
		if err != nil || len(members) == 0 {
			return false // the reverse edge's fingerprint must be present
		}
		for _, cert := range members {
			rd := bitstring.NewReader(cert)
			n, err := rd.ReadGamma()
			if err != nil || int(n) != data.Len() {
				return false
			}
			fp, err := field.DecodeFingerprint(rd, r.prime(int(n)))
			if err != nil || rd.Remaining() != 0 {
				return false
			}
			if !fp.Matches(data) {
				return false
			}
		}
	}
	return true
}

func (r randRPLS) Decide(view core.View, _ core.Label, received []core.Cert) bool {
	data := bitstring.FromBytes(view.State.Data)
	if len(received) != view.Deg {
		return false
	}
	for _, cert := range received {
		rd := bitstring.NewReader(cert)
		n, err := rd.ReadGamma()
		if err != nil || int(n) != data.Len() {
			return false
		}
		fp, err := field.DecodeFingerprint(rd, r.prime(int(n)))
		if err != nil || rd.Remaining() != 0 {
			return false
		}
		if !fp.Matches(data) {
			return false
		}
	}
	return true
}
