package coloring

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "coloring",
		Description: "adjacent nodes have distinct colors (§1 example)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		// The randomized scheme sizes its fingerprint field by the edge
		// count, so drivers must supply Params.M.
		Rand:              func(p engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS(p.M)) },
		RandParameterized: true,
	})
}
