package coloring_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/coloring"
	"rpls/internal/schemes/schemetest"
)

// greedyColor assigns a proper coloring to the configuration.
func greedyColor(c *graph.Config) {
	for v := 0; v < c.G.N(); v++ {
		used := make(map[int64]bool)
		for _, h := range c.G.Adj(v) {
			if h.To < v {
				used[c.States[h.To].Color] = true
			}
		}
		col := int64(0)
		for used[col] {
			col++
		}
		c.States[v].Color = col
	}
}

func TestPredicate(t *testing.T) {
	c := graph.NewConfig(graph.Path(4))
	greedyColor(c)
	if !(coloring.Predicate{}).Eval(c) {
		t.Error("greedy coloring rejected")
	}
	c.States[1].Color = c.States[0].Color
	if (coloring.Predicate{}).Eval(c) {
		t.Error("monochromatic edge accepted")
	}
}

func TestDeterministicCompleteness(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		c := graph.NewConfig(graph.RandomConnected(n, rng.Intn(2*n), rng))
		greedyColor(c)
		schemetest.New(uint64(trial)).LegalAccepted(t, coloring.NewPLS(), c)
	}
}

func TestDeterministicSoundness(t *testing.T) {
	c := graph.NewConfig(graph.Path(5))
	greedyColor(c)
	illegal := c.Clone()
	illegal.States[2].Color = illegal.States[1].Color
	h := schemetest.New(2)
	h.TransplantRejected(t, coloring.NewPLS(), c, illegal)
	h.RandomLabelsRejected(t, coloring.NewPLS(), illegal, 200, 80)
}

func TestRandomizedCompletenessAboveTwoThirds(t *testing.T) {
	// Two-sided scheme: legal configurations accepted with probability
	// >= 2/3 thanks to the union-bound field tuning.
	rng := prng.New(3)
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(20)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		c := graph.NewConfig(g)
		greedyColor(c)
		s := coloring.NewRPLS(g.M())
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 400, uint64(trial)); rate < 2.0/3 {
			t.Errorf("trial %d: legal acceptance %v < 2/3", trial, rate)
		}
	}
}

func TestRandomizedPerfectSoundness(t *testing.T) {
	// A monochromatic edge always produces matching fingerprints: rejection
	// with probability 1.
	c := graph.NewConfig(graph.Path(6))
	greedyColor(c)
	c.States[3].Color = c.States[2].Color
	s := coloring.NewRPLS(c.G.M())
	labels := make([]core.Label, 6)
	if rate := engine.Acceptance(engine.FromRPLS(s), c, labels, 300, 5); rate != 0 {
		t.Errorf("illegal coloring accepted at rate %v, want 0", rate)
	}
}

func TestRandomizedNotOneSided(t *testing.T) {
	if coloring.NewRPLS(10).OneSided() {
		t.Error("the coloring RPLS errs on legal instances; it must report two-sided")
	}
}

func TestUnionBoundTuning(t *testing.T) {
	// An UNDER-provisioned field (built for 1 edge) on a large graph must
	// show visibly worse completeness than the properly tuned one.
	rng := prng.New(7)
	g := graph.RandomConnected(60, 120, rng)
	c := graph.NewConfig(g)
	greedyColor(c)
	labels := make([]core.Label, g.N())

	tuned := coloring.NewRPLS(g.M())
	bad := coloring.NewRPLS(1)
	rateTuned := engine.Acceptance(engine.FromRPLS(tuned), c, labels, 300, 11)
	rateBad := engine.Acceptance(engine.FromRPLS(bad), c, labels, 300, 12)
	if rateTuned < 2.0/3 {
		t.Errorf("tuned scheme acceptance %v < 2/3", rateTuned)
	}
	if rateBad >= rateTuned {
		t.Errorf("under-provisioned field should hurt completeness: %v vs %v", rateBad, rateTuned)
	}
}

func TestBoostingRecoversConfidence(t *testing.T) {
	// Footnote 1 applied to a two-sided scheme: majority voting lifts
	// per-node confidence.
	rng := prng.New(9)
	g := graph.RandomConnected(30, 40, rng)
	c := graph.NewConfig(g)
	greedyColor(c)
	labels := make([]core.Label, g.N())
	base := coloring.NewRPLS(g.M())
	boosted := core.Boost(base, 7)
	rBase := engine.Acceptance(engine.FromRPLS(base), c, labels, 300, 13)
	rBoost := engine.Acceptance(engine.FromRPLS(boosted), c, labels, 300, 14)
	if rBoost < rBase {
		t.Errorf("boosting lowered legal acceptance: %v -> %v", rBase, rBoost)
	}
	// Soundness unaffected: monochromatic edge still always rejected.
	c.States[1].Color = c.States[0].Color
	if rate := engine.Acceptance(engine.FromRPLS(boosted), c, labels, 200, 15); rate != 0 {
		t.Errorf("boosted scheme accepted illegal coloring at %v", rate)
	}
}

func TestCertificateSizeLogarithmicInM(t *testing.T) {
	rng := prng.New(10)
	prev := 0
	for _, n := range []int{10, 40, 160} {
		g := graph.RandomConnected(n, n, rng)
		c := graph.NewConfig(g)
		greedyColor(c)
		s := coloring.NewRPLS(g.M())
		labels, err := s.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		bits := engine.MaxCertBits(engine.FromRPLS(s), c, labels, 3, 3)
		if prev > 0 && bits > prev+20 {
			t.Errorf("n=%d: certificate jumped %d -> %d bits", n, prev, bits)
		}
		prev = bits
	}
}
