// Package coloring certifies proper vertex coloring, the paper's very first
// example of a locally checkable predicate (§1). Each node's color is part
// of its state; deterministically the label simply repeats the color so
// neighbors can compare (O(log C) bits for C colors).
//
// The direct randomized scheme is instructive in the opposite direction
// from equality-based schemes: acceptance requires certifying *inequality*
// on every edge. A fingerprint match now signals the bad event, and since a
// legal configuration must survive tests on all m edges, the per-test
// error must be driven below 1/(3·2m) — the union-bound tuning the paper's
// ε-obliviousness remark describes. The resulting scheme is one-sided in
// reverse: illegal configurations are rejected with probability 1, legal
// ones accepted with probability ≥ 2/3, and certificates still take only
// O(log C + log m) bits.
package coloring

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/field"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// Predicate decides proper coloring: adjacent nodes have distinct Colors.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "proper-coloring" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	for v := 0; v < c.G.N(); v++ {
		for _, h := range c.G.AdjView(v) {
			if c.States[v].Color == c.States[h.To].Color {
				return false
			}
		}
	}
	return true
}

const colorBits = 64

func colorString(col int64) bitstring.String {
	var w bitstring.Writer
	w.WriteUint(uint64(col), colorBits)
	return w.String()
}

// NewPLS returns the deterministic scheme: labels repeat the color.
func NewPLS() core.PLS { return pls{} }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "coloring-det" }

func (pls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	out := make([]core.Label, c.G.N())
	for v := range out {
		out[v] = colorString(c.States[v].Color)
	}
	return out, nil
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	if !own.Equal(colorString(view.State.Color)) {
		return false
	}
	if len(nbrs) != view.Deg {
		return false
	}
	for _, nl := range nbrs {
		if nl.Equal(own) {
			return false
		}
	}
	return true
}

// NewRPLS returns the label-free randomized scheme tuned for a
// configuration with at most m edges: the fingerprint field has
// p > 6·m·colorBits so that, by a union bound over the 2m directed tests,
// a properly colored configuration is accepted with probability ≥ 2/3.
// Illegal configurations are rejected with probability 1.
func NewRPLS(m int) core.RPLS {
	if m < 1 {
		m = 1
	}
	return rpls{p: field.NextPrime(uint64(6*m*colorBits) + 1)}
}

type rpls struct {
	p uint64
}

var _ core.RPLS = rpls{}

func (r rpls) Name() string { return fmt.Sprintf("coloring-rand(p=%d)", r.p) }

// OneSided reports false: this scheme errs (only) on legal instances.
func (rpls) OneSided() bool { return false }

func (rpls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	return make([]core.Label, c.G.N()), nil
}

func (r rpls) Certs(view core.View, _ core.Label, rng *prng.Rand) []core.Cert {
	col := colorString(view.State.Color)
	certs := make([]core.Cert, view.Deg)
	for i := range certs {
		fp := field.NewFingerprint(col, r.p, rng.Fork(uint64(i)))
		var w bitstring.Writer
		fp.Encode(&w)
		certs[i] = w.String()
	}
	return certs
}

func (r rpls) Decide(view core.View, _ core.Label, received []core.Cert) bool {
	col := colorString(view.State.Color)
	if len(received) != view.Deg {
		return false
	}
	for _, cert := range received {
		fp, err := field.DecodeFingerprint(bitstring.NewReader(cert), r.p)
		if err != nil {
			return false
		}
		// A matching fingerprint means the neighbor's color is (almost
		// surely) equal to mine — the illegal event.
		if fp.Matches(col) {
			return false
		}
	}
	return true
}
