package leader_test

import (
	"testing"

	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/leader"
	"rpls/internal/schemes/schemetest"
)

func leaderConfig(g *graph.Graph, who int) *graph.Config {
	c := graph.NewConfig(g)
	c.States[who].Flags |= graph.FlagLeader
	return c
}

func TestPredicate(t *testing.T) {
	c := leaderConfig(graph.Path(5), 2)
	if !(leader.Predicate{}).Eval(c) {
		t.Error("single leader rejected")
	}
	c.States[4].Flags |= graph.FlagLeader
	if (leader.Predicate{}).Eval(c) {
		t.Error("two leaders accepted")
	}
	if (leader.Predicate{}).Eval(graph.NewConfig(graph.Path(5))) {
		t.Error("zero leaders accepted")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(1)
	det := leader.NewPLS()
	rand := leader.NewRPLS()
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(30)
		g := graph.RandomConnected(n, rng.Intn(n), rng)
		c := leaderConfig(g, rng.Intn(n))
		c.States[rng.Intn(n)].Flags |= 0 // no-op; leaders stay unique
		c.AssignRandomIDs(rng)
		h := schemetest.New(uint64(trial))
		h.LegalAccepted(t, det, c)
		h.LegalAcceptedRPLS(t, rand, c, 30)
	}
}

func TestProverRefusesIllegal(t *testing.T) {
	h := schemetest.New(1)
	h.ProverRefuses(t, leader.NewPLS(), graph.NewConfig(graph.Path(4)))
	two := leaderConfig(graph.Path(4), 0)
	two.States[3].Flags |= graph.FlagLeader
	h.ProverRefuses(t, leader.NewPLS(), two)
}

func TestSoundnessZeroLeaders(t *testing.T) {
	g := graph.RandomConnected(10, 5, prng.New(2))
	legal := leaderConfig(g, 3)
	illegal := legal.Clone()
	illegal.States[3].Flags &^= graph.FlagLeader
	h := schemetest.New(3)
	h.TransplantRejected(t, leader.NewPLS(), legal, illegal)
	h.TransplantRejectedRPLS(t, leader.NewRPLS(), legal, illegal, 300, 100)
	h.RandomLabelsRejected(t, leader.NewPLS(), illegal, 200, 100)
}

func TestSoundnessTwoLeaders(t *testing.T) {
	g := graph.RandomConnected(10, 5, prng.New(4))
	legal := leaderConfig(g, 3)
	illegal := legal.Clone()
	illegal.States[7].Flags |= graph.FlagLeader
	h := schemetest.New(5)
	h.TransplantRejected(t, leader.NewPLS(), legal, illegal)
	h.TransplantRejectedRPLS(t, leader.NewRPLS(), legal, illegal, 300, 100)
	h.RandomLabelsRejected(t, leader.NewPLS(), illegal, 200, 100)
}

func TestLabelAndCertSizes(t *testing.T) {
	rng := prng.New(6)
	for _, n := range []int{8, 64, 512} {
		g := graph.RandomConnected(n, n/3, rng)
		c := leaderConfig(g, 0)
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, leader.NewPLS(), c, 96)
		h.CertBitsAtMost(t, leader.NewRPLS(), c, 40)
	}
}

func TestSingleNodeLeader(t *testing.T) {
	c := leaderConfig(graph.New(1), 0)
	schemetest.New(1).LegalAccepted(t, leader.NewPLS(), c)
}
