// Package leader certifies leader-election validity: exactly one node in
// the (connected) network carries the leader flag. This is the kind of
// output-checking predicate the paper's introduction motivates — the
// election algorithm produces the flag, and the scheme certifies it.
//
// The deterministic scheme roots a spanning tree at the leader: every node
// is labeled with the leader's identity and its distance to the leader.
// Locally, nodes agree on the leader identity with every neighbor, a node
// flags itself as leader iff its distance is 0 and the named leader is
// itself, and a positive-distance node has some neighbor one step closer.
// No leader ⇒ the minimum-distance node rejects; two leaders ⇒ they name
// different identities (identities are unique), and some edge on the path
// between them sees the disagreement.
package leader

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Predicate decides whether exactly one node has FlagLeader set.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "one-leader" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	leaders := 0
	for _, s := range c.States {
		if s.Flags&graph.FlagLeader != 0 {
			leaders++
		}
	}
	return leaders == 1
}

const distBits = 32

// NewPLS returns the deterministic O(log n) scheme.
func NewPLS() core.PLS { return pls{} }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "one-leader-det" }

func (pls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) || !c.G.IsConnected() {
		return nil, core.ErrIllegalConfig
	}
	leaderNode := -1
	for v, s := range c.States {
		if s.Flags&graph.FlagLeader != 0 {
			leaderNode = v
		}
	}
	dist := c.G.BFSDist(leaderNode)
	labels := make([]core.Label, c.G.N())
	for v := range labels {
		var w bitstring.Writer
		w.WriteUint(c.States[leaderNode].ID, 64)
		w.WriteUint(uint64(dist[v]), distBits)
		labels[v] = w.String()
	}
	return labels, nil
}

type decoded struct {
	leaderID uint64
	dist     uint64
}

func decode(l core.Label) (decoded, bool) {
	r := bitstring.NewReader(l)
	id, err := r.ReadUint(64)
	if err != nil {
		return decoded{}, false
	}
	dist, err := r.ReadUint(distBits)
	if err != nil || r.Remaining() != 0 {
		return decoded{}, false
	}
	return decoded{leaderID: id, dist: dist}, true
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	isLeader := view.State.Flags&graph.FlagLeader != 0
	if isLeader != (me.dist == 0) {
		return false
	}
	if me.dist == 0 && me.leaderID != view.State.ID {
		return false
	}
	closer := false
	for _, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		if n.leaderID != me.leaderID {
			return false
		}
		if n.dist+1 == me.dist {
			closer = true
		}
	}
	return me.dist == 0 || closer
}

// NewRPLS returns the compiled randomized scheme.
func NewRPLS() core.RPLS { return core.Compile(NewPLS()) }
