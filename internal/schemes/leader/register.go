package leader

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "leader",
		Description: "exactly one node is flagged leader",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
