package biconn

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// White-box attacks on the P1–P8 verifier: decode honest labels, forge one
// field, and confirm the specific predicate that should catch it does.

func whiteboxSetup(t *testing.T) (*graph.Config, []label) {
	t.Helper()
	rng := prng.New(5)
	g, err := graph.RandomBiconnected(12, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	raw, err := NewPLS().Label(c)
	if err != nil {
		t.Fatal(err)
	}
	decoded := make([]label, len(raw))
	for v, l := range raw {
		d, ok := decode(l)
		if !ok {
			t.Fatal("honest label failed to decode")
		}
		decoded[v] = d
	}
	return c, decoded
}

func verifyAll(c *graph.Config, decoded []label) bool {
	labels := make([]core.Label, len(decoded))
	for v, d := range decoded {
		labels[v] = d.encode()
	}
	return engine.Verify(engine.FromPLS(NewPLS()), c, labels).Accepted
}

func TestWhiteboxHonestRoundTrip(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	if !verifyAll(c, decoded) {
		t.Fatal("re-encoded honest labels rejected")
	}
}

func TestWhiteboxForgedRootID(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	decoded[3].rootID ^= 1 // P1: root agreement
	if verifyAll(c, decoded) {
		t.Error("forged root identity accepted (P1)")
	}
}

func TestWhiteboxForgedDepth(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	decoded[4].dist += 2 // P3/P5/P6 territory
	if verifyAll(c, decoded) {
		t.Error("forged depth accepted (P3/P5/P6)")
	}
}

func TestWhiteboxForgedSpan(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	// Shrink a non-root subtree span: P4's partition at the parent breaks.
	victim := -1
	for v, d := range decoded {
		if d.dist > 0 && d.spanHi > d.spanLo {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("no internal subtree with a wide span")
	}
	decoded[victim].spanHi--
	if verifyAll(c, decoded) {
		t.Error("forged span accepted (P4/P6)")
	}
}

func TestWhiteboxForgedLowpt(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	// Understate a lowpt: P7 recomputes it from children and neighbors.
	victim := -1
	for v, d := range decoded {
		if d.lowpt > 0 {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("all lowpts are zero")
	}
	decoded[victim].lowpt--
	if verifyAll(c, decoded) {
		t.Error("forged lowpt accepted (P7)")
	}
}

func TestWhiteboxPreorderCollision(t *testing.T) {
	c, decoded := whiteboxSetup(t)
	// Give two nodes the same preorder; spans or P4 partitions must clash.
	decoded[5].preo = decoded[6].preo
	decoded[5].spanLo = decoded[6].spanLo
	decoded[5].spanHi = decoded[6].spanHi
	if verifyAll(c, decoded) {
		t.Error("duplicated preorder accepted")
	}
}

func TestWhiteboxArticulationSmuggling(t *testing.T) {
	// The headline attack: take a graph WITH an articulation point, craft
	// DFS labels that are honest except lowpt values inflated to pretend
	// biconnectivity. P7 pins lowpt to the computed minimum, so the lie
	// must surface.
	g, err := graph.TwoCyclesSharingNode(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	d := dfs(c.G, 0)
	decoded := make([]label, c.G.N())
	for v := 0; v < c.G.N(); v++ {
		decoded[v] = label{
			rootID: c.States[0].ID,
			dist:   uint64(d.depth[v]),
			preo:   uint64(d.preo[v]),
			spanLo: uint64(d.preo[v]),
			spanHi: uint64(d.preo[v] + d.size[v] - 1),
			lowpt:  uint64(d.lowP7[v]),
		}
	}
	// Honest labels of a non-biconnected graph must already be rejected
	// (P8 at the articulation point).
	if verifyAll(c, decoded) {
		t.Fatal("honest DFS labels of a figure-eight accepted")
	}
	// Inflate every lowpt to 0 ("everyone reaches the root"): P7 rejects.
	for v := range decoded {
		decoded[v].lowpt = 0
	}
	if verifyAll(c, decoded) {
		t.Error("smuggled lowpt=0 labels accepted (P7 failed)")
	}
}
