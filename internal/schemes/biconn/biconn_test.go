package biconn_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/biconn"
	"rpls/internal/schemes/schemetest"
)

// bruteArticulation finds articulation points by removal, the unarguable
// ground truth the fast algorithm is checked against.
func bruteArticulation(g *graph.Graph) []int {
	var out []int
	n := g.N()
	for v := 0; v < n; v++ {
		rest := make([]int, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				rest = append(rest, u)
			}
		}
		sub, _ := g.InducedSubgraph(rest)
		if !sub.IsConnected() {
			out = append(out, v)
		}
	}
	return out
}

func TestArticulationPointsMatchBruteForce(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		fast := biconn.ArticulationPoints(g)
		brute := bruteArticulation(g)
		if len(fast) != len(brute) {
			t.Fatalf("trial %d: fast %v vs brute %v", trial, fast, brute)
		}
		for i := range fast {
			if fast[i] != brute[i] {
				t.Fatalf("trial %d: fast %v vs brute %v", trial, fast, brute)
			}
		}
	}
}

func TestPredicate(t *testing.T) {
	cyc, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if !(biconn.Predicate{}).Eval(graph.NewConfig(cyc)) {
		t.Error("cycle rejected")
	}
	if (biconn.Predicate{}).Eval(graph.NewConfig(graph.Path(5))) {
		t.Error("path accepted (interior nodes are articulation points)")
	}
	if !(biconn.Predicate{}).Eval(graph.NewConfig(graph.Complete(5))) {
		t.Error("K5 rejected")
	}
	if !(biconn.Predicate{}).Eval(graph.NewConfig(graph.Path(2))) {
		t.Error("K2 rejected (removing either node leaves a connected graph)")
	}
	eight, err := graph.TwoCyclesSharingNode(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if (biconn.Predicate{}).Eval(graph.NewConfig(eight)) {
		t.Error("figure-eight accepted (shared node is an articulation point)")
	}
	fig2a, err := graph.CycleWithChords(12)
	if err != nil {
		t.Fatal(err)
	}
	if !(biconn.Predicate{}).Eval(graph.NewConfig(fig2a)) {
		t.Error("Figure 2(a) graph rejected (the paper uses it as a YES instance)")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(2)
	det := biconn.NewPLS()
	rand := biconn.NewRPLS()
	h := schemetest.New(2)
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		g, err := graph.RandomBiconnected(n, rng.Intn(2*n), rng)
		if err != nil {
			t.Fatal(err)
		}
		c := graph.NewConfig(g)
		c.AssignRandomIDs(rng)
		h.LegalAccepted(t, det, c)
		h.LegalAcceptedRPLS(t, rand, c, 20)
	}
	// The exact topologies from the paper.
	fig2a, err := graph.CycleWithChords(16)
	if err != nil {
		t.Fatal(err)
	}
	h.LegalAccepted(t, det, graph.NewConfig(fig2a))
	k2 := graph.NewConfig(graph.Path(2))
	h.LegalAccepted(t, det, k2)
}

func TestProverRefusesIllegal(t *testing.T) {
	schemetest.New(1).ProverRefuses(t, biconn.NewPLS(), graph.NewConfig(graph.Path(4)))
}

func TestSoundnessCrossedFigure2(t *testing.T) {
	// The paper's own lower-bound scenario (Figure 2): crossing two cycle
	// edges of the chorded ring creates an articulation point at v0. The
	// honest Θ(log n) scheme must reject the crossed configuration under
	// the original labels.
	g, err := graph.CycleWithChords(16)
	if err != nil {
		t.Fatal(err)
	}
	legal := graph.NewConfig(g)
	det := biconn.NewPLS()
	labels, err := det.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	crossed, err := legal.CrossConfig(graph.EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if (biconn.Predicate{}).Eval(crossed) {
		t.Fatal("crossing should have broken biconnectivity")
	}
	if engine.Verify(engine.FromPLS(det), crossed, labels).Accepted {
		t.Error("crossed Figure 2 accepted with original labels")
	}
	rand := biconn.NewRPLS()
	randLabels, err := rand.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	if rate := engine.Acceptance(engine.FromRPLS(rand), crossed, randLabels, 300, 3); rate > 1.0/3 {
		t.Errorf("randomized scheme accepted crossed Figure 2 at rate %v", rate)
	}
}

func TestSoundnessTransplant(t *testing.T) {
	rng := prng.New(4)
	g, err := graph.RandomBiconnected(12, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	legal := graph.NewConfig(g)
	// Illegal twin: a path (every interior node is an articulation point)
	// with the same node count.
	illegal := graph.NewConfig(graph.Path(12))
	h := schemetest.New(4)
	h.TransplantRejected(t, biconn.NewPLS(), legal, illegal)
	h.TransplantRejectedRPLS(t, biconn.NewRPLS(), legal, illegal, 200, 66)
}

func TestSoundnessFigureEightRandomLabels(t *testing.T) {
	g, err := graph.TwoCyclesSharingNode(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	schemetest.New(5).RandomLabelsRejected(t, biconn.NewPLS(), illegal, 150, 300)
}

func TestSoundnessForgedLowpt(t *testing.T) {
	// Take a figure-eight (articulation at node 0) and honest DFS labels
	// except lowpt values forged to claim biconnectivity. P7 pins lowpt to
	// the children/neighbor values, so some node must notice.
	g, err := graph.TwoCyclesSharingNode(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	// Build labels via the prover of a legal graph of the same size, then
	// probe many random perturbations; none may be accepted.
	cyc, err := graph.Cycle(7)
	if err != nil {
		t.Fatal(err)
	}
	legalLabels, err := biconn.NewPLS().Label(graph.NewConfig(cyc))
	if err != nil {
		t.Fatal(err)
	}
	if engine.Verify(engine.FromPLS(biconn.NewPLS()), illegal, legalLabels).Accepted {
		t.Error("cycle labels fooled the figure-eight")
	}
}

func TestLabelAndCertSizes(t *testing.T) {
	rng := prng.New(6)
	for _, n := range []int{8, 64, 512} {
		g, err := graph.RandomBiconnected(n, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		c := graph.NewConfig(g)
		// Θ(log n): 64-bit root identity + five 32-bit counters.
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, biconn.NewPLS(), c, 64+5*32)
		h.CertBitsAtMost(t, biconn.NewRPLS(), c, 44)
	}
}

func TestSingleNode(t *testing.T) {
	c := graph.NewConfig(graph.New(1))
	if !(biconn.Predicate{}).Eval(c) {
		t.Skip("single node counted as non-biconnected by this implementation")
	}
	schemetest.New(1).LegalAccepted(t, biconn.NewPLS(), c)
}
