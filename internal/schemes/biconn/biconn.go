// Package biconn implements Theorem 5.2: certifying vertex biconnectivity
// (removing any single node leaves the graph connected) with Θ(log n)-bit
// deterministic labels and Θ(log log n)-bit randomized certificates.
//
// The deterministic scheme follows the paper exactly. The prover runs a
// depth-first search (Hopcroft–Tarjan [22, 37]) and labels every node with
//
//	id-root — the identity of the DFS root,
//	dist    — its depth in the DFS tree,
//	preo    — its preorder number,
//	span    — the preorder interval of its subtree,
//	lowpt   — the smallest preorder number reachable from its subtree
//	          using one (possibly tree) edge, i.e. min over children's
//	          lowpt and over all neighbors' preorder numbers (P7).
//
// The verifier is the conjunction of predicates P1–P8 of the paper: P1–P6
// certify that the labels describe a genuine DFS tree, P7 certifies the
// lowpt values, and P8 is Tarjan's articulation-point criterion — the root
// has at most one child, and every child u of a non-root v has
// lowpt(u) < preo(v).
package biconn

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Predicate decides vertex biconnectivity: the graph is connected and has
// no articulation point.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "biconnectivity" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	if !c.G.IsConnected() || c.G.N() == 0 {
		return false
	}
	return len(ArticulationPoints(c.G)) == 0
}

// ArticulationPoints returns the articulation points of a connected graph
// via the linear-time lowpoint algorithm [37].
func ArticulationPoints(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	d := dfs(g, 0)
	isArt := make([]bool, n)
	rootChildren := 0
	for v := 0; v < n; v++ {
		if v == 0 {
			continue
		}
		p := d.parent[v]
		if p == 0 {
			rootChildren++
		}
		// Standard criterion with low values that exclude the parent edge.
		if p != 0 && d.lowStd[v] >= d.preo[p] {
			isArt[p] = true
		}
	}
	if rootChildren >= 2 {
		isArt[0] = true
	}
	var out []int
	for v, a := range isArt {
		if a {
			out = append(out, v)
		}
	}
	return out
}

// dfsResult carries everything the prover and the ground-truth algorithm
// need from one traversal.
type dfsResult struct {
	parent []int // parent node (self for the root)
	depth  []int
	preo   []int
	size   []int // subtree size
	lowP7  []int // lowpt per the paper's P7 (includes the parent edge)
	lowStd []int // standard low value (tree edge to parent excluded)
	order  []int // nodes in preorder
}

// dfs runs an iterative depth-first search from root.
func dfs(g *graph.Graph, root int) *dfsResult {
	n := g.N()
	d := &dfsResult{
		parent: make([]int, n),
		depth:  make([]int, n),
		preo:   make([]int, n),
		size:   make([]int, n),
		lowP7:  make([]int, n),
		lowStd: make([]int, n),
	}
	visited := make([]bool, n)
	nextPort := make([]int, n) // next port to explore, 0-based
	d.parent[root] = root
	visited[root] = true
	counter := 0
	d.preo[root] = counter
	counter++
	d.order = append(d.order, root)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if nextPort[v] < g.Degree(v) {
			h := g.Neighbor(v, nextPort[v]+1)
			nextPort[v]++
			if !visited[h.To] {
				visited[h.To] = true
				d.parent[h.To] = v
				d.depth[h.To] = d.depth[v] + 1
				d.preo[h.To] = counter
				counter++
				d.order = append(d.order, h.To)
				stack = append(stack, h.To)
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
	// Bottom-up passes in reverse preorder.
	for i := n - 1; i >= 0; i-- {
		v := d.order[i]
		d.size[v] = 1
		d.lowP7[v] = d.preo[v]
		d.lowStd[v] = d.preo[v]
	}
	for i := n - 1; i >= 0; i-- {
		v := d.order[i]
		for p := 1; p <= g.Degree(v); p++ {
			u := g.Neighbor(v, p).To
			if d.parent[u] == v && u != v {
				d.size[v] += d.size[u]
				if d.lowP7[u] < d.lowP7[v] {
					d.lowP7[v] = d.lowP7[u]
				}
				if d.lowStd[u] < d.lowStd[v] {
					d.lowStd[v] = d.lowStd[u]
				}
				continue
			}
			// Neighbor preorder contributes to P7 lowpt unconditionally.
			if d.preo[u] < d.lowP7[v] {
				d.lowP7[v] = d.preo[u]
			}
			// Standard low: back edges only (not the tree edge to parent).
			if u != d.parent[v] && d.preo[u] < d.lowStd[v] {
				d.lowStd[v] = d.preo[u]
			}
		}
	}
	return d
}

const numBits = 32

// NewPLS returns the deterministic Θ(log n) scheme of Theorem 5.2.
func NewPLS() core.PLS { return pls{} }

// NewRPLS returns the compiled Θ(log log n) randomized scheme.
func NewRPLS() core.RPLS { return core.Compile(NewPLS()) }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "biconnectivity-det" }

type label struct {
	rootID uint64
	dist   uint64
	preo   uint64
	spanLo uint64 // inclusive
	spanHi uint64 // inclusive
	lowpt  uint64
}

func (l label) encode() core.Label {
	var w bitstring.Writer
	w.WriteUint(l.rootID, 64)
	w.WriteUint(l.dist, numBits)
	w.WriteUint(l.preo, numBits)
	w.WriteUint(l.spanLo, numBits)
	w.WriteUint(l.spanHi, numBits)
	w.WriteUint(l.lowpt, numBits)
	return w.String()
}

func decode(s core.Label) (label, bool) {
	r := bitstring.NewReader(s)
	var l label
	var err error
	if l.rootID, err = r.ReadUint(64); err != nil {
		return l, false
	}
	for _, field := range []*uint64{&l.dist, &l.preo, &l.spanLo, &l.spanHi, &l.lowpt} {
		if *field, err = r.ReadUint(numBits); err != nil {
			return l, false
		}
	}
	if r.Remaining() != 0 {
		return l, false
	}
	return l, l.spanLo <= l.spanHi && l.preo >= l.spanLo && l.preo <= l.spanHi
}

func (pls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	d := dfs(c.G, 0)
	out := make([]core.Label, c.G.N())
	for v := 0; v < c.G.N(); v++ {
		out[v] = label{
			rootID: c.States[0].ID,
			dist:   uint64(d.depth[v]),
			preo:   uint64(d.preo[v]),
			spanLo: uint64(d.preo[v]),
			spanHi: uint64(d.preo[v] + d.size[v] - 1),
			lowpt:  uint64(d.lowP7[v]),
		}.encode()
	}
	return out, nil
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]label, view.Deg)
	for i, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		ns[i] = n
	}

	// P1: agreement on the root identity.
	for _, n := range ns {
		if n.rootID != me.rootID {
			return false
		}
	}
	// P2: dist(v) >= 0 holds by the unsigned encoding.
	// P3: the root names itself; a non-root has exactly one neighbor one
	// level up (its parent).
	if me.dist == 0 {
		if me.rootID != view.State.ID {
			return false
		}
	} else {
		parents := 0
		for _, n := range ns {
			if n.dist == me.dist-1 {
				parents++
			}
		}
		if parents != 1 {
			return false
		}
	}
	// P5: no neighbor shares my depth.
	for _, n := range ns {
		if n.dist == me.dist {
			return false
		}
	}
	// P6: shallower neighbors are ancestors (their span contains mine
	// properly); deeper neighbors are descendants.
	for _, n := range ns {
		if n.dist < me.dist {
			if !properSubInterval(me.spanLo, me.spanHi, n.spanLo, n.spanHi) {
				return false
			}
		} else {
			if !properSubInterval(n.spanLo, n.spanHi, me.spanLo, me.spanHi) {
				return false
			}
		}
	}
	// P4: children's spans partition span(v) \ {preo(v)}, with
	// preo(v) = spanLo(v) at its left end.
	if me.preo != me.spanLo {
		return false
	}
	var children []label
	for _, n := range ns {
		if n.dist == me.dist+1 {
			children = append(children, n)
		}
	}
	if !spansPartition(me, children) {
		return false
	}
	// P7: lowpt(v) = min(childmin, neighbormin).
	min := ^uint64(0)
	for _, n := range children {
		if n.lowpt < min {
			min = n.lowpt
		}
	}
	for _, n := range ns {
		if n.preo < min {
			min = n.preo
		}
	}
	if view.Deg > 0 && me.lowpt != min {
		return false
	}
	if view.Deg == 0 {
		// An isolated node cannot be part of a biconnected graph of size
		// > 1; accept only the trivial single-node graph.
		return me.dist == 0 && me.rootID == view.State.ID
	}
	// P8: the root has at most one child; children of a non-root hook
	// strictly above it.
	if me.dist == 0 {
		if len(children) > 1 {
			return false
		}
	} else {
		for _, n := range children {
			if n.lowpt >= me.preo {
				return false
			}
		}
	}
	return true
}

func properSubInterval(aLo, aHi, bLo, bHi uint64) bool {
	// [aLo, aHi] strictly inside [bLo, bHi].
	return bLo <= aLo && aHi <= bHi && (bLo < aLo || aHi < bHi)
}

func spansPartition(me label, children []label) bool {
	// The children's intervals must tile [preo+1, spanHi] without overlap.
	if len(children) == 0 {
		return me.spanHi == me.preo
	}
	// Insertion sort by spanLo (degrees are small).
	sorted := make([]label, len(children))
	copy(sorted, children)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].spanLo < sorted[j-1].spanLo; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	next := me.preo + 1
	for _, ch := range sorted {
		if ch.spanLo != next {
			return false
		}
		next = ch.spanHi + 1
	}
	return next == me.spanHi+1
}
