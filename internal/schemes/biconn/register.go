package biconn

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "biconnectivity",
		Description: "no articulation point (Theorem 5.2)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
