package mst

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "mst",
		Description: "parent pointers form a minimum spanning tree (Theorem 5.1)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
