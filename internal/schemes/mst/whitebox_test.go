package mst

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
)

// White-box attacks: decode the honest Borůvka-hierarchy labels, forge
// specific fields, and check that some verifier predicate (F1–F5 in
// scheme.go) catches each forgery. These pin down which check carries which
// part of the soundness argument.

func whiteboxConfig(t *testing.T) (*graph.Config, []core.Label, []*mstLabel) {
	t.Helper()
	rng := prng.New(77)
	g := graph.RandomConnected(14, 16, rng)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	graph.AssignRandomWeights(c, 1_000_000, rng)
	// Install the canonical MST.
	tree, err := Kruskal(c)
	if err != nil {
		t.Fatal(err)
	}
	adj := make([][]int, c.G.N())
	for _, e := range tree {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	visited := make([]bool, c.G.N())
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				p, _ := c.G.PortTo(u, v)
				c.States[u].Parent = p
				queue = append(queue, u)
			}
		}
	}
	labels, err := NewPLS().Label(c)
	if err != nil {
		t.Fatal(err)
	}
	decoded := make([]*mstLabel, len(labels))
	for v, l := range labels {
		d, err := decodeLabel(l)
		if err != nil {
			t.Fatal(err)
		}
		decoded[v] = d
	}
	return c, labels, decoded
}

func reencode(t *testing.T, decoded []*mstLabel) []core.Label {
	t.Helper()
	out := make([]core.Label, len(decoded))
	for v, d := range decoded {
		out[v] = d.encode()
	}
	return out
}

func TestWhiteboxHonestLabelsRoundTrip(t *testing.T) {
	c, labels, decoded := whiteboxConfig(t)
	again := reencode(t, decoded)
	for v := range labels {
		if !labels[v].Equal(again[v]) {
			t.Fatalf("node %d: decode/encode not a round trip", v)
		}
	}
	if !engine.Verify(engine.FromPLS(NewPLS()), c, again).Accepted {
		t.Fatal("re-encoded honest labels rejected")
	}
}

func TestWhiteboxForgedFragmentID(t *testing.T) {
	// Claiming membership in a different fragment at some phase must trip
	// the chain (F1) or mate-consistency (F2) checks.
	c, _, decoded := whiteboxConfig(t)
	victim := -1
	for v, d := range decoded {
		if d.phases >= 2 {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("no multi-phase node in this instance")
	}
	decoded[victim].fragID[1] ^= 0xDEADBEEF
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("forged fragment identity accepted")
	}
}

func TestWhiteboxForgedChosenWeight(t *testing.T) {
	// Understating the fragment's chosen edge weight must trip the
	// incidence check (F4) at the inside endpoint or the coverage check
	// (F5): the claimed cheaper edge does not exist.
	c, _, decoded := whiteboxConfig(t)
	target := decoded[0]
	if !target.hasChosen[0] {
		t.Skip("node 0's phase-0 fragment chose nothing")
	}
	// Understate the weight for node 0 only: mates still carry the true
	// record, so F2 (mate equality) must also fire somewhere.
	target.chosenW[0] -= 1000
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("understated chosen weight accepted")
	}
}

func TestWhiteboxForgedChosenWeightWholeFragment(t *testing.T) {
	// Understate the phase-0 chosen weight for EVERY member of node 0's
	// fragment consistently (defeating F2); now only F4's weight/incidence
	// check stands between the forgery and acceptance.
	c, _, decoded := whiteboxConfig(t)
	if !decoded[0].hasChosen[0] {
		t.Skip("node 0's phase-0 fragment chose nothing")
	}
	frag := decoded[0].fragID[0]
	w := decoded[0].chosenW[0]
	for _, d := range decoded {
		if d.phases > 0 && d.fragID[0] == frag && d.hasChosen[0] && d.chosenW[0] == w {
			d.chosenW[0] = w - 777
		}
	}
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("fragment-wide weight lie accepted (F4 failed to bind the edge)")
	}
}

func TestWhiteboxDroppedCoverage(t *testing.T) {
	// Erasing the chosen-edge record that covers some tree edge must trip
	// coverage (F5) at its child endpoint — provided the record is the
	// edge's ONLY coverage (a mutual-minimum edge may be recorded by both
	// endpoint fragments, and erasing one copy legitimately keeps the
	// other; the configuration here is legal, so that is not a soundness
	// issue).
	c, _, decoded := whiteboxConfig(t)
	victim := -1
	for v, d := range decoded {
		if !d.hasParent {
			continue
		}
		selfCovers := false
		for f := 0; f < d.phases; f++ {
			if d.hasChosen[f] && d.chosenIn[f] == d.id && d.chosenOut[f] == d.parentID {
				selfCovers = true
			}
		}
		if !selfCovers {
			continue
		}
		// Check the parent's list does NOT also cover the edge.
		parent := decoded[c.G.Neighbor(v, c.States[v].Parent).To]
		parentCovers := false
		for f := 0; f < parent.phases; f++ {
			if parent.hasChosen[f] && parent.chosenIn[f] == parent.id && parent.chosenOut[f] == d.id {
				parentCovers = true
			}
		}
		if !parentCovers {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("every tree edge is doubly covered in this instance")
	}
	d := decoded[victim]
	for f := 0; f < d.phases; f++ {
		if d.hasChosen[f] && d.chosenIn[f] == d.id && d.chosenOut[f] == d.parentID {
			d.hasChosen[f] = false
			d.chosenW[f] = 0
			d.chosenIn[f] = 0
			d.chosenOut[f] = 0
		}
	}
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("erased sole coverage accepted (F5 failed)")
	}
}

func TestWhiteboxForgedSpanningTreeDistance(t *testing.T) {
	// The embedded spanning-tree sub-certificate must reject a distance
	// bump even when the Borůvka layers are untouched.
	c, _, decoded := whiteboxConfig(t)
	for v, d := range decoded {
		if d.hasParent {
			decoded[v].stDist += 2
			break
		}
	}
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("forged spanning-tree distance accepted")
	}
}

func TestWhiteboxPhaseCountMismatch(t *testing.T) {
	// Truncating one node's phase list desynchronizes it from its
	// fragment mates (F2 compares phase counts).
	c, _, decoded := whiteboxConfig(t)
	victim := -1
	for v, d := range decoded {
		if d.phases >= 2 {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("no multi-phase node")
	}
	d := decoded[victim]
	d.phases--
	d.fragID = d.fragID[:d.phases]
	d.dist = d.dist[:d.phases]
	d.hasChosen = d.hasChosen[:d.phases]
	d.chosenW = d.chosenW[:d.phases]
	d.chosenIn = d.chosenIn[:d.phases]
	d.chosenOut = d.chosenOut[:d.phases]
	if engine.Verify(engine.FromPLS(NewPLS()), c, reencode(t, decoded)).Accepted {
		t.Error("truncated phase list accepted")
	}
}
