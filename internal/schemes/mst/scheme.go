package mst

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// NewPLS returns the deterministic O(log² n)-bit MST scheme.
func NewPLS() core.PLS { return pls{} }

// NewRPLS returns the compiled randomized scheme with O(log log n)-bit
// certificates (Theorem 5.1 upper bound).
func NewRPLS() core.RPLS { return core.Compile(NewPLS()) }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "mst-det" }

const (
	distBits  = 32
	phaseBits = 8
	maxPhases = 64
)

// mstLabel is the decoded form of a node's proof.
type mstLabel struct {
	id        uint64
	hasParent bool
	parentID  uint64
	stRootID  uint64 // spanning-tree sub-certificate: root identity
	stDist    uint64 // and distance to the root in the tree
	phases    int    // F: number of Borůvka phases recorded
	fragID    []uint64
	dist      []uint64
	hasChosen []bool
	chosenW   []int64
	chosenIn  []uint64
	chosenOut []uint64
}

func (l *mstLabel) encode() core.Label {
	var w bitstring.Writer
	w.WriteUint(l.id, 64)
	if l.hasParent {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteUint(l.parentID, 64)
	w.WriteUint(l.stRootID, 64)
	w.WriteUint(l.stDist, distBits)
	w.WriteUint(uint64(l.phases), phaseBits)
	for f := 1; f < l.phases; f++ {
		w.WriteUint(l.fragID[f], 64)
		w.WriteUint(l.dist[f], distBits)
	}
	for f := 0; f < l.phases; f++ {
		if l.hasChosen[f] {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
		w.WriteInt(l.chosenW[f], 63)
		w.WriteUint(l.chosenIn[f], 64)
		w.WriteUint(l.chosenOut[f], 64)
	}
	return w.String()
}

func decodeLabel(s core.Label) (*mstLabel, error) {
	r := bitstring.NewReader(s)
	l := &mstLabel{}
	var err error
	if l.id, err = r.ReadUint(64); err != nil {
		return nil, err
	}
	hp, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	l.hasParent = hp == 1
	if l.parentID, err = r.ReadUint(64); err != nil {
		return nil, err
	}
	if l.stRootID, err = r.ReadUint(64); err != nil {
		return nil, err
	}
	if l.stDist, err = r.ReadUint(distBits); err != nil {
		return nil, err
	}
	phases, err := r.ReadUint(phaseBits)
	if err != nil {
		return nil, err
	}
	if phases > maxPhases {
		return nil, fmt.Errorf("mst label: %d phases exceeds maximum", phases)
	}
	l.phases = int(phases)
	l.fragID = make([]uint64, l.phases)
	l.dist = make([]uint64, l.phases)
	l.hasChosen = make([]bool, l.phases)
	l.chosenW = make([]int64, l.phases)
	l.chosenIn = make([]uint64, l.phases)
	l.chosenOut = make([]uint64, l.phases)
	if l.phases > 0 {
		l.fragID[0] = l.id // phase-0 fragments are singletons
		l.dist[0] = 0
	}
	for f := 1; f < l.phases; f++ {
		if l.fragID[f], err = r.ReadUint(64); err != nil {
			return nil, err
		}
		if l.dist[f], err = r.ReadUint(distBits); err != nil {
			return nil, err
		}
	}
	for f := 0; f < l.phases; f++ {
		hc, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		l.hasChosen[f] = hc == 1
		if l.chosenW[f], err = r.ReadInt(63); err != nil {
			return nil, err
		}
		if l.chosenIn[f], err = r.ReadUint(64); err != nil {
			return nil, err
		}
		if l.chosenOut[f], err = r.ReadUint(64); err != nil {
			return nil, err
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("mst label: trailing bits")
	}
	return l, nil
}

// Label runs Borůvka's algorithm under the canonical edge order and records
// the fragment hierarchy. It fails if the parent pointers are not the
// canonical minimum spanning tree (for distinct weights: not *the* MST).
func (pls) Label(c *graph.Config) ([]core.Label, error) {
	n := c.G.N()
	if !isSpanningTree(c) {
		return nil, core.ErrIllegalConfig
	}
	for v := 0; v < n; v++ {
		if c.G.Degree(v) > 0 && c.States[v].Weights == nil {
			return nil, fmt.Errorf("mst: node %d has no edge weights", v)
		}
	}
	tree := treeEdgeSet(c)

	// Tree adjacency (ports of tree edges per node).
	treeAdj := make([][]int, n) // neighbor node indices over tree edges
	root := -1
	for v := 0; v < n; v++ {
		p := c.States[v].Parent
		if p == 0 {
			root = v
			continue
		}
		u := c.G.Neighbor(v, p).To
		treeAdj[v] = append(treeAdj[v], u)
		treeAdj[u] = append(treeAdj[u], v)
	}
	_ = root

	labels := make([]*mstLabel, n)
	for v := 0; v < n; v++ {
		labels[v] = &mstLabel{
			id:        c.States[v].ID,
			hasParent: c.States[v].Parent != 0,
		}
		if p := c.States[v].Parent; p != 0 {
			labels[v].parentID = c.States[c.G.Neighbor(v, p).To].ID
		}
	}
	// Spanning-tree sub-certificate.
	stRoot := -1
	for v := 0; v < n; v++ {
		if c.States[v].Parent == 0 {
			stRoot = v
		}
	}
	for v := 0; v < n; v++ {
		d := 0
		for cur := v; cur != stRoot; cur = c.G.Neighbor(cur, c.States[cur].Parent).To {
			d++
		}
		labels[v].stRootID = c.States[stRoot].ID
		labels[v].stDist = uint64(d)
	}

	// Borůvka phases.
	uf := newUnionFind(n)
	for phase := 0; phase < maxPhases; phase++ {
		// Collect fragments.
		members := make(map[int][]int)
		for v := 0; v < n; v++ {
			r := uf.find(v)
			members[r] = append(members[r], v)
		}
		if len(members) == 1 {
			break
		}
		// Record fragment info (leader = member with minimum identity;
		// distance = tree distance to the leader within the fragment).
		//plsvet:allow maporder — fragments partition the nodes, so each labels[v] gets exactly one append per phase; iteration order cannot reorder any node's label
		for _, ms := range members {
			leader := ms[0]
			for _, v := range ms {
				if c.States[v].ID < c.States[leader].ID {
					leader = v
				}
			}
			dist := fragmentDistances(c, treeAdj, uf, leader)
			for _, v := range ms {
				labels[v].fragID = append(labels[v].fragID, c.States[leader].ID)
				labels[v].dist = append(labels[v].dist, uint64(dist[v]))
			}
		}
		// Choose the minimum outgoing edge per fragment.
		type choice struct {
			ok      bool
			key     edgeKey
			w       int64
			in, out uint64
			u, v    int
		}
		chosen := make(map[int]choice)
		for _, e := range c.G.Edges() {
			ru, rv := uf.find(e.U), uf.find(e.V)
			if ru == rv {
				continue
			}
			w := c.EdgeWeight(e.U, e.PortU)
			k := keyOf(w, c.States[e.U].ID, c.States[e.V].ID)
			for _, side := range []struct {
				root    int
				in, out uint64
				u, v    int
			}{
				{ru, c.States[e.U].ID, c.States[e.V].ID, e.U, e.V},
				{rv, c.States[e.V].ID, c.States[e.U].ID, e.V, e.U},
			} {
				cur, exists := chosen[side.root]
				if !exists || !cur.ok || k.less(cur.key) {
					chosen[side.root] = choice{ok: true, key: k, w: w, in: side.in, out: side.out, u: side.u, v: side.v}
				}
			}
		}
		// Every chosen edge must be a tree edge, or T is not the canonical MST.
		for _, ch := range chosen {
			if !tree[keyOf(ch.w, ch.in, ch.out)] {
				return nil, fmt.Errorf("mst: parent pointers are not the canonical minimum spanning tree: %w", core.ErrIllegalConfig)
			}
		}
		// Record choices and merge.
		//plsvet:allow maporder — fragments partition the nodes, so each labels[v] gets exactly one append per phase; iteration order cannot reorder any node's label
		for r, ms := range members {
			ch := chosen[r]
			for _, v := range ms {
				labels[v].hasChosen = append(labels[v].hasChosen, ch.ok)
				labels[v].chosenW = append(labels[v].chosenW, ch.w)
				labels[v].chosenIn = append(labels[v].chosenIn, ch.in)
				labels[v].chosenOut = append(labels[v].chosenOut, ch.out)
			}
		}
		for _, ch := range chosen {
			if ch.ok {
				uf.union(ch.u, ch.v)
			}
		}
	}
	out := make([]core.Label, n)
	for v := 0; v < n; v++ {
		labels[v].phases = len(labels[v].hasChosen)
		out[v] = labels[v].encode()
	}
	return out, nil
}

// fragmentDistances BFSes from the leader over tree edges restricted to the
// leader's fragment, returning tree distances (-1 outside the fragment).
func fragmentDistances(c *graph.Config, treeAdj [][]int, uf *unionFind, leader int) []int {
	n := c.G.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	r := uf.find(leader)
	dist[leader] = 0
	queue := []int{leader}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range treeAdj[v] {
			if dist[u] == -1 && uf.find(u) == r {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// fragAt returns the fragment identity of a decoded label at phase f, and
// whether the label defines that phase at all.
func fragAt(l *mstLabel, f int) (uint64, bool) {
	if f >= l.phases {
		return 0, false
	}
	return l.fragID[f], true
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, err := decodeLabel(own)
	if err != nil {
		return false
	}
	if me.id != view.State.ID {
		return false
	}
	if me.hasParent != (view.State.Parent != 0) {
		return false
	}
	if len(nbrs) != view.Deg {
		return false
	}
	if view.Deg > 0 && view.State.Weights == nil {
		return false
	}
	ns := make([]*mstLabel, view.Deg)
	for i, nl := range nbrs {
		n, err := decodeLabel(nl)
		if err != nil {
			return false
		}
		ns[i] = n
	}

	// Spanning-tree sub-certificate (§1): agreement on the root, distance
	// decreasing along the parent pointer, root self-consistent.
	for _, n := range ns {
		if n.stRootID != me.stRootID {
			return false
		}
	}
	if !me.hasParent {
		if me.stDist != 0 || me.stRootID != me.id {
			return false
		}
	} else {
		p := view.State.Parent
		if p < 1 || p > view.Deg {
			return false
		}
		parent := ns[p-1]
		if parent.id != me.parentID {
			return false
		}
		if me.stDist == 0 || parent.stDist != me.stDist-1 {
			return false
		}
	}

	// Borůvka hierarchy checks, phase by phase.
	for f := 0; f < me.phases; f++ {
		myFrag := me.fragID[f]

		// F1: fragment chain to the leader.
		if f >= 1 {
			if me.dist[f] == 0 {
				if myFrag != me.id {
					return false
				}
			} else {
				found := false
				for _, n := range ns {
					if fid, ok := fragAt(n, f); ok && fid == myFrag && n.dist[f] == me.dist[f]-1 {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}

		// F2: fragment-mates agree on the chosen edge and on the next
		// fragment identity.
		for _, n := range ns {
			fid, ok := fragAt(n, f)
			if !ok || fid != myFrag {
				continue
			}
			if n.phases != me.phases {
				return false
			}
			if n.hasChosen[f] != me.hasChosen[f] ||
				n.chosenW[f] != me.chosenW[f] ||
				n.chosenIn[f] != me.chosenIn[f] ||
				n.chosenOut[f] != me.chosenOut[f] {
				return false
			}
			if f+1 < me.phases && n.fragID[f+1] != me.fragID[f+1] {
				return false
			}
		}

		if !me.hasChosen[f] {
			continue
		}
		chosenKey := keyOf(me.chosenW[f], me.chosenIn[f], me.chosenOut[f])

		// F3: every incident outgoing edge is at least the chosen edge.
		for i, n := range ns {
			fid, ok := fragAt(n, f)
			if ok && fid == myFrag {
				continue // internal edge
			}
			k := keyOf(view.State.Weights[i], me.id, n.id)
			if k.less(chosenKey) {
				return false
			}
		}

		// F4: the inside endpoint vouches for the chosen edge: it exists,
		// has the claimed weight, leaves the fragment, is a tree edge, and
		// its endpoints merge.
		if me.chosenIn[f] == me.id {
			ok := false
			for i, n := range ns {
				if n.id != me.chosenOut[f] || view.State.Weights[i] != me.chosenW[f] {
					continue
				}
				if fid, def := fragAt(n, f); def && fid == myFrag {
					continue // not outgoing
				}
				isTree := view.State.Parent == i+1 || (n.hasParent && n.parentID == me.id)
				if !isTree {
					continue
				}
				if f+1 < me.phases {
					if nf, def := fragAt(n, f+1); !def || nf != me.fragID[f+1] {
						continue // endpoints must merge
					}
				}
				ok = true
				break
			}
			if !ok {
				return false
			}
		}
	}

	// F5: the parent edge is chosen at some phase, recorded by its inside
	// endpoint.
	if me.hasParent {
		p := view.State.Parent
		parent := ns[p-1]
		w := view.State.Weights[p-1]
		covered := false
		for f := 0; f < me.phases && !covered; f++ {
			if me.hasChosen[f] && me.chosenIn[f] == me.id && me.chosenOut[f] == parent.id && me.chosenW[f] == w {
				covered = true
			}
		}
		for f := 0; f < parent.phases && !covered; f++ {
			if parent.hasChosen[f] && parent.chosenIn[f] == parent.id && parent.chosenOut[f] == me.id && parent.chosenW[f] == w {
				covered = true
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
