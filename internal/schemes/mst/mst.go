// Package mst implements Theorem 5.1 of the paper: certifying that the
// spanning tree given by the parent pointers is a minimum-weight spanning
// tree. Deterministically the scheme uses O(log² n)-bit labels in the style
// of Korman–Kutten [29, 31]; compiling it (Theorem 3.1) yields the
// O(log log n)-bit randomized certificates whose optimality §5.1 proves.
//
// The label of a node encodes a Borůvka fragment hierarchy: for each of the
// ≤ ⌈log₂ n⌉ phases it records the node's fragment (leader identity plus
// distance to the leader inside the fragment) and the minimum outgoing edge
// its fragment chose. Local checks force every tree edge to be the strict
// minimum edge crossing some verified cut, which by the cut property places
// it in the unique minimum spanning tree under the canonical total order.
//
// Edges are ordered by (weight, smaller endpoint identity, larger endpoint
// identity); with this total order the MST is unique, and for distinct
// weights it coincides with every textbook MST.
package mst

import (
	"fmt"
	"sort"

	"rpls/internal/core"
	"rpls/internal/graph"
)

// edgeKey is the canonical total order on edges.
type edgeKey struct {
	w    int64
	a, b uint64 // endpoint identities, a < b
}

func keyOf(w int64, id1, id2 uint64) edgeKey {
	if id1 > id2 {
		id1, id2 = id2, id1
	}
	return edgeKey{w: w, a: id1, b: id2}
}

func (k edgeKey) less(o edgeKey) bool {
	if k.w != o.w {
		return k.w < o.w
	}
	if k.a != o.a {
		return k.a < o.a
	}
	return k.b < o.b
}

// unionFind is a standard disjoint-set forest with path compression and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(x, y int) bool {
	rx, ry := uf.find(x), uf.find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	return true
}

// Kruskal computes the minimum spanning tree under the canonical total
// order and returns its edges; the configuration must be connected and
// weighted.
func Kruskal(c *graph.Config) ([]graph.Edge, error) {
	edges := c.G.Edges()
	for _, e := range edges {
		if c.States[e.U].Weights == nil {
			return nil, fmt.Errorf("mst: node %d has no edge weights", e.U)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		ki := keyOf(c.EdgeWeight(edges[i].U, edges[i].PortU), c.States[edges[i].U].ID, c.States[edges[i].V].ID)
		kj := keyOf(c.EdgeWeight(edges[j].U, edges[j].PortU), c.States[edges[j].U].ID, c.States[edges[j].V].ID)
		return ki.less(kj)
	})
	uf := newUnionFind(c.G.N())
	var tree []graph.Edge
	for _, e := range edges {
		if uf.union(e.U, e.V) {
			tree = append(tree, e)
		}
	}
	if len(tree) != c.G.N()-1 {
		return nil, fmt.Errorf("mst: graph is not connected (%d tree edges for %d nodes)", len(tree), c.G.N())
	}
	return tree, nil
}

// Prim computes the MST weight with a different algorithm; tests cross-check
// it against Kruskal.
func Prim(c *graph.Config) (int64, error) {
	n := c.G.N()
	if n == 0 {
		return 0, fmt.Errorf("mst: empty graph")
	}
	inTree := make([]bool, n)
	best := make([]int64, n)
	const inf = int64(1) << 62
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	var total int64
	for count := 0; count < n; count++ {
		v := -1
		for u := 0; u < n; u++ {
			if !inTree[u] && (v == -1 || best[u] < best[v]) {
				v = u
			}
		}
		if best[v] == inf {
			return 0, fmt.Errorf("mst: graph is not connected")
		}
		inTree[v] = true
		total += best[v]
		for i, h := range c.G.AdjView(v) {
			w := c.EdgeWeight(v, i+1)
			if !inTree[h.To] && w < best[h.To] {
				best[h.To] = w
			}
		}
	}
	return total, nil
}

// TreeWeight sums the weights of the parent-pointer edges.
func TreeWeight(c *graph.Config) int64 {
	var total int64
	for v := 0; v < c.G.N(); v++ {
		if p := c.States[v].Parent; p != 0 {
			total += c.EdgeWeight(v, p)
		}
	}
	return total
}

// treeEdgeSet returns the set of parent-pointer edges keyed canonically.
func treeEdgeSet(c *graph.Config) map[edgeKey]bool {
	set := make(map[edgeKey]bool, c.G.N())
	for v := 0; v < c.G.N(); v++ {
		if p := c.States[v].Parent; p != 0 {
			u := c.G.Neighbor(v, p).To
			set[keyOf(c.EdgeWeight(v, p), c.States[v].ID, c.States[u].ID)] = true
		}
	}
	return set
}

// isSpanningTree reports whether parent pointers form a spanning tree
// (single root, all nodes reach it acyclically).
func isSpanningTree(c *graph.Config) bool {
	n := c.G.N()
	if n == 0 {
		return false
	}
	root := -1
	for v := 0; v < n; v++ {
		p := c.States[v].Parent
		if p == 0 {
			if root != -1 {
				return false
			}
			root = v
		} else if p < 1 || p > c.G.Degree(v) {
			return false
		}
	}
	if root == -1 {
		return false
	}
	status := make([]int8, n)
	status[root] = 1
	for v := 0; v < n; v++ {
		var path []int
		cur := v
		for status[cur] == 0 {
			status[cur] = 2
			path = append(path, cur)
			cur = c.G.Neighbor(cur, c.States[cur].Parent).To
			if status[cur] == 2 {
				return false
			}
		}
		if status[cur] != 1 {
			return false
		}
		for _, u := range path {
			status[u] = 1
		}
	}
	return true
}

// Predicate decides MST: the parent pointers form a spanning tree whose
// total weight equals the minimum spanning tree weight.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "mst" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	if !isSpanningTree(c) {
		return false
	}
	tree, err := Kruskal(c)
	if err != nil {
		return false
	}
	var minWeight int64
	for _, e := range tree {
		minWeight += c.EdgeWeight(e.U, e.PortU)
	}
	return TreeWeight(c) == minWeight
}
