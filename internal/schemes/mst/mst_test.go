package mst_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/mst"
	"rpls/internal/schemes/schemetest"
)

// mstConfig builds a weighted random connected graph whose parent pointers
// encode the (unique) MST, rooted at the MST edge structure's node 0.
func mstConfig(t *testing.T, n, extra int, rng *prng.Rand) *graph.Config {
	t.Helper()
	g := graph.RandomConnected(n, extra, rng)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	graph.AssignRandomWeights(c, 1_000_000, rng)
	installMST(t, c)
	return c
}

// installMST sets parent pointers to the canonical MST rooted at node 0.
func installMST(t *testing.T, c *graph.Config) {
	t.Helper()
	tree, err := mst.Kruskal(c)
	if err != nil {
		t.Fatal(err)
	}
	adj := make([][]int, c.G.N())
	for _, e := range tree {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	// BFS orientation toward root 0.
	for v := range c.States {
		c.States[v].Parent = 0
	}
	visited := make([]bool, c.G.N())
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				p, ok := c.G.PortTo(u, v)
				if !ok {
					t.Fatal("tree edge missing from graph")
				}
				c.States[u].Parent = p
				queue = append(queue, u)
			}
		}
	}
}

func TestKruskalMatchesPrim(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := graph.RandomConnected(n, rng.Intn(3*n), rng)
		c := graph.NewConfig(g)
		c.AssignRandomIDs(rng)
		graph.AssignRandomWeights(c, 10_000, rng)
		tree, err := mst.Kruskal(c)
		if err != nil {
			t.Fatal(err)
		}
		var kw int64
		for _, e := range tree {
			kw += c.EdgeWeight(e.U, e.PortU)
		}
		pw, err := mst.Prim(c)
		if err != nil {
			t.Fatal(err)
		}
		if kw != pw {
			t.Fatalf("trial %d: Kruskal weight %d != Prim weight %d", trial, kw, pw)
		}
	}
}

func TestPredicateAcceptsMST(t *testing.T) {
	rng := prng.New(2)
	for trial := 0; trial < 15; trial++ {
		c := mstConfig(t, 2+rng.Intn(25), rng.Intn(30), rng)
		if !(mst.Predicate{}).Eval(c) {
			t.Fatalf("trial %d: MST rejected by predicate", trial)
		}
	}
}

func TestPredicateRejectsHeavierTree(t *testing.T) {
	// Build a triangle where the heaviest edge obviously does not belong.
	g := graph.Complete(3)
	c := graph.NewConfig(g)
	c.SetEdgeWeight(0, 1, 1)
	c.SetEdgeWeight(1, 2, 2)
	c.SetEdgeWeight(0, 2, 10)
	// Tree {0-2, 1-2}: weight 12, MST is {0-1, 1-2} with weight 3.
	p02, _ := c.G.PortTo(2, 0)
	c.States[2].Parent = p02
	p12, _ := c.G.PortTo(1, 2)
	c.States[1].Parent = p12
	if (mst.Predicate{}).Eval(c) {
		t.Error("non-minimum tree accepted by predicate")
	}
}

func TestPredicateRejectsNonTree(t *testing.T) {
	c := mstConfig(t, 8, 6, prng.New(3))
	c.States[3].Parent = 0 // second root
	if (mst.Predicate{}).Eval(c) {
		t.Error("forest accepted as MST")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(4)
	det := mst.NewPLS()
	rand := mst.NewRPLS()
	for trial := 0; trial < 10; trial++ {
		c := mstConfig(t, 2+rng.Intn(30), rng.Intn(40), rng)
		h := schemetest.New(uint64(trial))
		h.LegalAccepted(t, det, c)
		h.LegalAcceptedRPLS(t, rand, c, 20)
	}
}

func TestCompletenessDenseGraph(t *testing.T) {
	rng := prng.New(5)
	g := graph.Complete(12)
	c := graph.NewConfig(g)
	c.AssignRandomIDs(rng)
	graph.AssignRandomWeights(c, 1_000_000, rng)
	installMST(t, c)
	h := schemetest.New(5)
	h.LegalAccepted(t, mst.NewPLS(), c)
	h.LegalAcceptedRPLS(t, mst.NewRPLS(), c, 30)
}

func TestProverRefusesNonMST(t *testing.T) {
	c := mstConfig(t, 10, 12, prng.New(6))
	swapToNonMSTTree(t, c)
	schemetest.New(6).ProverRefuses(t, mst.NewPLS(), c)
}

// swapToNonMSTTree replaces the tree with a spanning tree that is not
// minimum: it reroutes one node through a strictly heavier non-tree edge.
func swapToNonMSTTree(t *testing.T, c *graph.Config) {
	t.Helper()
	tree, err := mst.Kruskal(c)
	if err != nil {
		t.Fatal(err)
	}
	inTree := make(map[[2]int]bool)
	for _, e := range tree {
		inTree[[2]int{e.U, e.V}] = true
	}
	for _, e := range c.G.Edges() {
		if inTree[[2]int{e.U, e.V}] {
			continue
		}
		// Non-tree edge {U,V}: make V's parent U if that keeps a tree:
		// V's old parent edge is dropped, {U,V} added. This keeps a
		// spanning tree iff U is not in V's old subtree; rerooting the
		// whole tree at V first guarantees V has no parent, then we give
		// it one: the result is a spanning tree containing {U,V}, which
		// the unique MST does not contain, so it is strictly heavier.
		rerootTree(c, e.V)
		c.States[e.V].Parent = e.PortV
		if !(mst.Predicate{}).Eval(c) {
			return
		}
		t.Fatal("swap produced an MST; weights not distinct?")
	}
	t.Skip("no non-tree edge available")
}

// rerootTree reverses parent pointers along the path from newRoot to the
// old root.
func rerootTree(c *graph.Config, newRoot int) {
	var path []int
	cur := newRoot
	for c.States[cur].Parent != 0 {
		path = append(path, cur)
		cur = c.G.Neighbor(cur, c.States[cur].Parent).To
	}
	path = append(path, cur)
	for i := len(path) - 1; i > 0; i-- {
		parent, child := path[i], path[i-1]
		p, _ := c.G.PortTo(parent, child)
		c.States[parent].Parent = p
	}
	c.States[newRoot].Parent = 0
}

func TestSoundnessTransplantOntoNonMST(t *testing.T) {
	rng := prng.New(7)
	for trial := 0; trial < 5; trial++ {
		legal := mstConfig(t, 8+rng.Intn(10), 10+rng.Intn(10), rng)
		illegal := legal.Clone()
		swapToNonMSTTree(t, illegal)
		h := schemetest.New(uint64(trial))
		h.TransplantRejected(t, mst.NewPLS(), legal, illegal)
		h.TransplantRejectedRPLS(t, mst.NewRPLS(), legal, illegal, 100, 33)
	}
}

func TestSoundnessWeightLie(t *testing.T) {
	// The adversary keeps the honest labels but the configuration's weights
	// changed after labeling (e.g. the MST is stale): detection must follow.
	legal := mstConfig(t, 12, 14, prng.New(8))
	labels, err := mst.NewPLS().Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	stale := legal.Clone()
	// Make some non-tree edge cheaper than everything: the old tree is no
	// longer minimum.
	for _, e := range stale.G.Edges() {
		p, _ := stale.G.PortTo(e.U, e.V)
		isTree := stale.States[e.U].Parent == p
		pv, _ := stale.G.PortTo(e.V, e.U)
		isTree = isTree || stale.States[e.V].Parent == pv
		if !isTree {
			stale.SetEdgeWeight(e.U, e.V, -1_000_000)
			break
		}
	}
	if (mst.Predicate{}).Eval(stale) {
		t.Fatal("stale config unexpectedly still an MST")
	}
	if engine.Verify(engine.FromPLS(mst.NewPLS()), stale, labels).Accepted {
		t.Error("stale labels accepted after weight change")
	}
}

func TestSoundnessRandomLabels(t *testing.T) {
	illegal := mstConfig(t, 9, 10, prng.New(9))
	swapToNonMSTTree(t, illegal)
	schemetest.New(10).RandomLabelsRejected(t, mst.NewPLS(), illegal, 100, 400)
}

func TestLabelSizeGrowsAsLogSquared(t *testing.T) {
	// O(log² n): doubling n adds O(log n) bits (one more phase of
	// O(log n + log W) bits). Check the label stays under c·log²n for a
	// generous constant, and that certificates stay under c·log log n-ish.
	rng := prng.New(10)
	for _, n := range []int{8, 32, 128, 512} {
		c := mstConfig(t, n, n, rng)
		logn := schemetest.Log2Ceil(n)
		labels, err := mst.NewPLS().Label(c)
		if err != nil {
			t.Fatal(err)
		}
		labelBits := 0
		for _, l := range labels {
			if l.Len() > labelBits {
				labelBits = l.Len()
			}
		}
		// Per phase: 96 bits of fragment info + 193 bits of chosen edge;
		// plus ~300 bits of fixed header. Phases <= log2 n.
		if labelBits > 300*(logn+3) {
			t.Errorf("n=%d: label %d bits, exceeds O(log² n) envelope", n, labelBits)
		}
		certBound := 6*schemetest.Log2Ceil(labelBits) + 20
		schemetest.New(uint64(n)).CertBitsAtMost(t, mst.NewRPLS(), c, certBound)
	}
}

func TestLineAndCycleFamily(t *testing.T) {
	// The Theorem 5.1 lower-bound family: lines with unit weights. The MST
	// of a line is the line itself.
	c := graph.NewConfig(graph.Path(10))
	c.AssignRandomIDs(prng.New(11))
	for _, e := range c.G.Edges() {
		c.SetEdgeWeight(e.U, e.V, 1)
	}
	for v := 1; v < 10; v++ {
		p, _ := c.G.PortTo(v, v-1)
		c.States[v].Parent = p
	}
	c.States[0].Parent = 0
	if !(mst.Predicate{}).Eval(c) {
		t.Fatal("line with unit weights: line is an MST")
	}
	// Unit weights are tied; the canonical-order prover may or may not
	// certify this orientation. The predicate must hold regardless.
}

func TestSingleEdge(t *testing.T) {
	c := graph.NewConfig(graph.Path(2))
	c.SetEdgeWeight(0, 1, 5)
	p, _ := c.G.PortTo(1, 0)
	c.States[1].Parent = p
	if !(mst.Predicate{}).Eval(c) {
		t.Fatal("single edge tree rejected")
	}
	h := schemetest.New(2)
	h.LegalAccepted(t, mst.NewPLS(), c)
	h.LegalAcceptedRPLS(t, mst.NewRPLS(), c, 20)
}
